// Parallel engine tests: pool sanity, work distribution, exception
// propagation, parallel_for ordering, and the jobs-resolution contract.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace cicmon::support {
namespace {

TEST(TaskPool, RunsEverySubmittedTask) {
  TaskPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(TaskPool, WaitIsReusableAcrossBatches) {
  TaskPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 50 * (batch + 1));
  }
}

TEST(TaskPool, StealingBalancesUnevenTasks) {
  // One long task pins one worker; the short tasks must migrate to the
  // other worker instead of queueing behind it. Observed via the set of
  // thread ids that ran short tasks.
  TaskPool pool(2);
  std::atomic<bool> release{false};
  std::mutex mutex;
  std::set<std::thread::id> short_task_threads;
  pool.submit([&release] {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  for (int i = 0; i < 64; ++i) {
    pool.submit([&mutex, &short_task_threads] {
      std::lock_guard lock(mutex);
      short_task_threads.insert(std::this_thread::get_id());
    });
  }
  // Let the short tasks finish first, then unblock the long one.
  while (true) {
    {
      std::lock_guard lock(mutex);
      if (!short_task_threads.empty()) break;
    }
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  pool.wait();
  EXPECT_GE(short_task_threads.size(), 1U);
}

TEST(TaskPool, WaitRethrowsFirstTaskException) {
  TaskPool pool(3);
  for (int i = 0; i < 20; ++i) {
    pool.submit([i] {
      if (i == 7) throw CicError("task 7 failed");
    });
  }
  EXPECT_THROW(pool.wait(), CicError);
  // The pool is usable again after the failed batch.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1U, 2U, 5U}) {
    std::vector<int> visits(337, 0);
    parallel_for(visits.size(), jobs, [&](std::size_t i) { ++visits[i]; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 337) << jobs << " jobs";
    for (const int count : visits) EXPECT_EQ(count, 1);
  }
}

TEST(ParallelFor, ResultsLandInInputOrderRegardlessOfJobs) {
  auto run = [](unsigned jobs) {
    std::vector<std::uint64_t> out(512);
    parallel_for(out.size(), jobs, [&](std::size_t i) {
      out[i] = Rng(derive_stream_seed(99, i)).next_u64();
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelFor, ZeroAndSingleElementRanges) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0U);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 42) throw CicError("cell 42");
                   }),
      CicError);
}

TEST(ResolveJobs, ExplicitRequestWins) {
  EXPECT_EQ(resolve_jobs(3), 3U);
  EXPECT_EQ(resolve_jobs(1), 1U);
}

TEST(ResolveJobs, DefaultsAreNeverZero) { EXPECT_GE(resolve_jobs(0), 1U); }

TEST(ResolveJobs, AbsurdRequestsAreCapped) {
  EXPECT_EQ(resolve_jobs(100'000), kMaxJobs);
  ::setenv("CICMON_JOBS", "999999", 1);
  EXPECT_EQ(resolve_jobs(0), kMaxJobs);
  ::unsetenv("CICMON_JOBS");
}

TEST(ResolveJobs, EnvOverrideApplies) {
  ::setenv("CICMON_JOBS", "5", 1);
  EXPECT_EQ(resolve_jobs(0), 5U);
  EXPECT_EQ(resolve_jobs(2), 2U);  // explicit request still wins
  ::setenv("CICMON_JOBS", "not-a-number", 1);
  EXPECT_GE(resolve_jobs(0), 1U);  // malformed env falls back
  ::unsetenv("CICMON_JOBS");
}

TEST(DeriveStreamSeed, StreamsDiffer) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 1000; ++t) seeds.insert(derive_stream_seed(2026, t));
  EXPECT_EQ(seeds.size(), 1000U);
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

}  // namespace
}  // namespace cicmon::support
