// Assembler front-end tests: the text assembler, the builder API, label
// fixups, pseudo-instruction expansion, and the data section.
#include <gtest/gtest.h>

#include "casm/assembler.h"
#include "casm/builder.h"
#include "isa/instruction.h"
#include "support/error.h"

namespace cicmon::casm_ {
namespace {

TEST(TextAssembler, BasicProgram) {
  const Image image = assemble(R"(
    .text
    main:
      addiu $t0, $zero, 5
      addu  $t1, $t0, $t0
      jr    $ra
  )");
  ASSERT_EQ(image.text.size(), 3U);
  EXPECT_EQ(isa::disassemble(image.text[0]), "addiu $t0, $zero, 5");
  EXPECT_EQ(isa::disassemble(image.text[2]), "jr $ra");
}

TEST(TextAssembler, LabelsAndBranches) {
  const Image image = assemble(R"(
    loop:
      addiu $t0, $t0, -1
      bne   $t0, $zero, loop
  )");
  const isa::Instruction bne = isa::decode(image.text[1]);
  EXPECT_EQ(bne.branch_target(image.text_base + 4), image.text_base);
}

TEST(TextAssembler, ForwardReferences) {
  const Image image = assemble(R"(
      beq $zero, $zero, end
      addu $t0, $t0, $t0
    end:
      jr $ra
  )");
  const isa::Instruction beq = isa::decode(image.text[0]);
  EXPECT_EQ(beq.branch_target(image.text_base), image.text_base + 8);
}

TEST(TextAssembler, DataDirectives) {
  const Image image = assemble(R"(
    .data
    table: .word 1, 2, 3
    msg:   .asciiz "hi"
    buf:   .space 8
    .text
      jr $ra
  )");
  EXPECT_EQ(image.symbols.at("table"), image.data_base);
  EXPECT_EQ(image.data[0], 1U);
  EXPECT_EQ(image.data[4], 2U);
  const std::uint32_t msg = image.symbols.at("msg") - image.data_base;
  EXPECT_EQ(image.data[msg], 'h');
  EXPECT_EQ(image.data[msg + 2], '\0');
}

TEST(TextAssembler, CommentsIgnored) {
  const Image image = assemble("# comment\n  jr $ra // trailing\n");
  EXPECT_EQ(image.text.size(), 1U);
}

TEST(TextAssembler, ErrorsCarryLineNumbers) {
  try {
    assemble("  jr $ra\n  bogus $t0\n");
    FAIL() << "expected CicError";
  } catch (const support::CicError& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos) << e.what();
  }
}

TEST(TextAssembler, UnboundLabelRejected) {
  EXPECT_THROW(assemble("  j nowhere\n"), support::CicError);
}

TEST(Builder, LoopProgramLayout) {
  Asm a;
  a.func("main");
  a.li(isa::kT0, 3);
  Label loop = a.bound_label();
  a.addiu(isa::kT0, isa::kT0, -1);
  a.bne(isa::kT0, isa::kZero, loop);
  a.sys_exit(0);
  const Image image = a.finalize();
  EXPECT_EQ(image.entry, image.text_base);
  const isa::Instruction bne = isa::decode(image.text[2]);
  EXPECT_EQ(bne.mnemonic, isa::Mnemonic::kBne);
  EXPECT_EQ(bne.branch_target(image.text_base + 8), image.text_base + 4);
}

TEST(Builder, EntryIsMainEvenWhenNotFirst) {
  Asm a;
  a.func("helper");
  a.jr(isa::kRa);
  a.func("main");
  a.sys_exit(0);
  const Image image = a.finalize();
  EXPECT_EQ(image.entry, image.text_base + 4);
}

TEST(Builder, LiExpansion) {
  Asm a;
  a.li(isa::kT0, 5);            // addiu
  a.li(isa::kT1, 0x12340000);   // lui
  a.li(isa::kT2, 0x12345678);   // lui + ori
  a.jr(isa::kRa);
  const Image image = a.finalize();
  EXPECT_EQ(isa::decode(image.text[0]).mnemonic, isa::Mnemonic::kAddiu);
  EXPECT_EQ(isa::decode(image.text[1]).mnemonic, isa::Mnemonic::kLui);
  EXPECT_EQ(isa::decode(image.text[2]).mnemonic, isa::Mnemonic::kLui);
  EXPECT_EQ(isa::decode(image.text[3]).mnemonic, isa::Mnemonic::kOri);
}

TEST(Builder, ConditionalPseudosUseAt) {
  Asm a;
  Label l = a.bound_label();
  a.blt(isa::kT0, isa::kT1, l);
  a.jr(isa::kRa);
  const Image image = a.finalize();
  const isa::Instruction slt = isa::decode(image.text[0]);
  EXPECT_EQ(slt.mnemonic, isa::Mnemonic::kSlt);
  EXPECT_EQ(slt.rd, isa::kAt);
}

TEST(Builder, DataSymbolsAndLa) {
  Asm a;
  a.data_symbol("tbl");
  a.data_words({10, 20, 30});
  a.func("main");
  a.la(isa::kT0, "tbl");
  a.sys_exit(0);
  const Image image = a.finalize();
  EXPECT_EQ(a.data_address("tbl"), image.data_base);
  EXPECT_EQ(image.symbols.at("tbl"), image.data_base);
}

TEST(Builder, UnknownDataSymbolThrows) {
  Asm a;
  EXPECT_THROW(a.la(isa::kT0, "missing"), support::CicError);
}

TEST(Builder, UndefinedFunctionRejectedAtFinalize) {
  Asm a;
  a.func("main");
  a.call("ghost");
  a.sys_exit(0);
  EXPECT_THROW(a.finalize(), support::CicError);
}

TEST(Builder, JalForwardReferencePatched) {
  Asm a;
  a.func("main");
  a.call("late");
  a.sys_exit(0);
  a.func("late");
  a.ret();
  const Image image = a.finalize();
  const isa::Instruction jal = isa::decode(image.text[0]);
  EXPECT_EQ(jal.mnemonic, isa::Mnemonic::kJal);
  EXPECT_EQ(jal.jump_target(image.text_base), image.symbols.at("late"));
}

TEST(Builder, PushPopPair) {
  Asm a;
  a.push(isa::kRa);
  a.pop(isa::kRa);
  a.jr(isa::kRa);
  const Image image = a.finalize();
  ASSERT_EQ(image.text.size(), 5U);  // addiu/sw + lw/addiu + jr
  EXPECT_EQ(isa::decode(image.text[0]).mnemonic, isa::Mnemonic::kAddiu);
  EXPECT_EQ(isa::decode(image.text[1]).mnemonic, isa::Mnemonic::kSw);
}

TEST(Builder, FinalizeTwiceRejected) {
  Asm a;
  a.sys_exit(0);
  a.finalize();
  EXPECT_THROW(a.finalize(), support::CicError);
}

TEST(Image, TextContainsAndWordAt) {
  Asm a;
  a.nop();
  a.sys_exit(0);
  const Image image = a.finalize();
  EXPECT_TRUE(image.contains_text(image.text_base));
  EXPECT_FALSE(image.contains_text(image.text_base - 4));
  EXPECT_FALSE(image.contains_text(image.text_end()));
  EXPECT_FALSE(image.contains_text(image.text_base + 2));  // misaligned
  EXPECT_EQ(image.word_at(image.text_base), image.text[0]);
}

TEST(CrossCheck, TextAndBuilderAgree) {
  // The same tiny program through both front ends must produce identical
  // encodings.
  const Image text_image = assemble(R"(
    main:
      addiu $t0, $zero, 7
      sll   $t1, $t0, 2
      sw    $t1, 0($sp)
      lw    $t2, 0($sp)
      jr    $ra
  )");
  Asm a;
  a.func("main");
  a.addiu(isa::kT0, isa::kZero, 7);
  a.sll(isa::kT1, isa::kT0, 2);
  a.sw(isa::kT1, 0, isa::kSp);
  a.lw(isa::kT2, 0, isa::kSp);
  a.jr(isa::kRa);
  const Image built = a.finalize();
  ASSERT_EQ(text_image.text.size(), built.text.size());
  for (std::size_t i = 0; i < built.text.size(); ++i) {
    EXPECT_EQ(text_image.text[i], built.text[i]) << "word " << i;
  }
}

}  // namespace
}  // namespace cicmon::casm_
