// Tests for cicmon-golden-v1 (fault/golden_ser.h): key canonicalization,
// the encode/decode round trip (re-encoding is byte-identical, an imported
// runner is behaviorally identical to a derived one), strict rejection of
// corruption — any flipped byte, truncation, trailing garbage, or key skew
// fails validation — and the content-addressed on-disk cache, which must
// treat a bad entry as a miss, never as truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

#include "casm/builder.h"
#include "fault/campaign.h"
#include "fault/golden_ser.h"
#include "support/error.h"

namespace cicmon::fault {
namespace {

using namespace cicmon::isa;

// The same self-checked loop test_fault.cc attacks: small enough that the
// golden run (and therefore encode/decode) is cheap to repeat.
casm_::Image checked_loop_program() {
  casm_::Asm a;
  a.func("main");
  a.li(kT0, 20);
  a.li(kT1, 0);
  casm_::Label loop = a.bound_label();
  a.addu(kT1, kT1, kT0);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, loop);
  a.check_eq(kT1, 210);
  a.sys_exit(0);
  return a.finalize();
}

cpu::CpuConfig monitored_config() {
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  return config;
}

const std::string& test_key() {
  static const std::string key =
      golden_key({{"workload", "loop"}, {"trials", "48"}, {"seed", "9"}});
  return key;
}

// One derivation + encode, shared by every test below.
const std::string& golden_blob() {
  static const std::string blob = [] {
    CampaignRunner runner(checked_loop_program(), monitored_config());
    return encode_golden(runner.export_golden(), test_key());
  }();
  return blob;
}

std::string make_test_dir(const char* tag) {
  const std::string dir = testing::TempDir() + "cicmon_golden_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(GoldenKey, CanonicalDeterministicAndSensitiveToEveryField) {
  const std::string key = test_key();
  ASSERT_EQ(key.size(), 16U);
  for (const char c : key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  // Same fields, same key; any value or name change, a different key.
  EXPECT_EQ(key, golden_key({{"workload", "loop"}, {"trials", "48"}, {"seed", "9"}}));
  EXPECT_NE(key, golden_key({{"workload", "loop"}, {"trials", "49"}, {"seed", "9"}}));
  EXPECT_NE(key, golden_key({{"workload", "dijkstra"}, {"trials", "48"}, {"seed", "9"}}));
  EXPECT_NE(key, golden_key({{"workload", "loop"}, {"trials", "48"}}));
}

TEST(GoldenSer, RoundTripIsByteIdenticalAndImportsAnEquivalentRunner) {
  const std::string& blob = golden_blob();
  ASSERT_TRUE(golden_blob_valid(blob, test_key()));
  const GoldenState decoded = decode_golden(blob, test_key());
  // Deterministic encoding: decode -> encode reproduces the exact bytes,
  // which is what makes the shipped blob itself byte-diffable.
  EXPECT_EQ(encode_golden(decoded, test_key()), blob);

  // A runner rebuilt from the decoded state skips the golden run but must be
  // indistinguishable: same golden facts, same campaign summary.
  CampaignRunner derived(checked_loop_program(), monitored_config());
  CampaignRunner imported(checked_loop_program(), monitored_config(), {}, decoded);
  EXPECT_EQ(imported.golden_instructions(), derived.golden_instructions());
  EXPECT_EQ(imported.golden_console(), derived.golden_console());
  EXPECT_EQ(imported.snapshot_count(), derived.snapshot_count());
  EXPECT_EQ(imported.checkpoint_stride(), derived.checkpoint_stride());
  const CampaignSummary a = derived.run_random(FaultSite::kMemoryText, 1, 48, 9, 1);
  const CampaignSummary b = imported.run_random(FaultSite::kMemoryText, 1, 48, 9, 1);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.detected_mismatch, b.detected_mismatch);
  EXPECT_EQ(a.detected_miss, b.detected_miss);
  EXPECT_EQ(a.detected_baseline, b.detected_baseline);
  EXPECT_EQ(a.wrong_output, b.wrong_output);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.hang, b.hang);
}

TEST(GoldenSer, AnyFlippedByteFailsValidation) {
  const std::string& blob = golden_blob();
  // The trailing FNV-1a64 checksum covers every preceding byte and is itself
  // the last field, so a flip anywhere must invalidate the blob. Sweep the
  // whole record at a stride (plus both ends densely) to keep the test fast
  // without leaving an untested region.
  const std::size_t step = std::max<std::size_t>(1, blob.size() / 2048);
  auto expect_rejected = [&](std::size_t i) {
    std::string mutant = blob;
    mutant[i] ^= 0x40;
    EXPECT_FALSE(golden_blob_valid(mutant, test_key())) << "flip at byte " << i;
  };
  for (std::size_t i = 0; i < blob.size(); i += step) expect_rejected(i);
  for (std::size_t i = 0; i < 64 && i < blob.size(); ++i) {
    expect_rejected(i);                    // magic + key region
    expect_rejected(blob.size() - 1 - i);  // checksum region
  }
  // decode_golden is at least as strict as the cheap check.
  std::string mutant = blob;
  mutant[blob.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_golden(mutant, test_key()), support::CicError);
}

TEST(GoldenSer, TruncationTrailingGarbageAndKeySkewAreRejected) {
  const std::string& blob = golden_blob();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{15}, std::size_t{16},
                                 std::size_t{31}, blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(golden_blob_valid(blob.substr(0, keep), test_key())) << keep;
    EXPECT_THROW(decode_golden(blob.substr(0, keep), test_key()), support::CicError) << keep;
  }
  EXPECT_FALSE(golden_blob_valid(blob + "x", test_key()));
  EXPECT_THROW(decode_golden(blob + "x", test_key()), support::CicError);
  // The right bytes under the wrong key is config skew, not a valid blob.
  const std::string other = golden_key({{"workload", "loop"}, {"trials", "49"}});
  EXPECT_FALSE(golden_blob_valid(blob, other));
  EXPECT_THROW(decode_golden(blob, other), support::CicError);
}

TEST(GoldenCache, ContentAddressedHitMissAndRoundTrip) {
  const std::string dir = make_test_dir("cache");
  // Empty cache: a miss, not an error.
  EXPECT_TRUE(load_cached_golden(dir, test_key()).empty());
  store_cached_golden(dir, test_key(), golden_blob());
  EXPECT_EQ(load_cached_golden(dir, test_key()), golden_blob());
  // A changed campaign parameter produces a different key — and a miss, even
  // though another entry sits right next to it.
  const std::string other = golden_key({{"workload", "loop"}, {"trials", "49"}});
  ASSERT_NE(other, test_key());
  EXPECT_TRUE(load_cached_golden(dir, other).empty());
}

TEST(GoldenCache, TruncatedEntryIsIgnoredAndRewritten) {
  const std::string dir = make_test_dir("cache_trunc");
  // A half-written entry (crashed process, full disk): must read as a miss.
  const std::string path = golden_cache_path(dir, test_key());
  {
    std::ofstream out(path, std::ios::binary);
    out << golden_blob().substr(0, golden_blob().size() / 3);
  }
  EXPECT_TRUE(load_cached_golden(dir, test_key()).empty());
  // The re-derivation path overwrites it with a valid entry.
  store_cached_golden(dir, test_key(), golden_blob());
  EXPECT_EQ(load_cached_golden(dir, test_key()), golden_blob());
}

}  // namespace
}  // namespace cicmon::fault
