// ISA tests: catalogue integrity, encode/decode round trips, disassembly,
// and the flow-control classification the monitor depends on.
#include <gtest/gtest.h>

#include <set>

#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/registers.h"

namespace cicmon::isa {
namespace {

TEST(Opcodes, TableIndexedByMnemonic) {
  for (const OpcodeInfo& row : opcode_table()) {
    EXPECT_EQ(&info(row.mnemonic), &row) << row.name;
  }
}

TEST(Opcodes, NamesAreUniqueAndLookupable) {
  std::set<std::string_view> names;
  for (const OpcodeInfo& row : opcode_table()) {
    if (row.mnemonic == Mnemonic::kInvalid) continue;
    EXPECT_TRUE(names.insert(row.name).second) << "duplicate " << row.name;
    const auto found = mnemonic_by_name(row.name);
    ASSERT_TRUE(found.has_value()) << row.name;
    EXPECT_EQ(*found, row.mnemonic);
  }
  EXPECT_FALSE(mnemonic_by_name("bogus").has_value());
}

TEST(Opcodes, FlowControlClassification) {
  EXPECT_TRUE(is_flow_control(InstrClass::kBranch));
  EXPECT_TRUE(is_flow_control(InstrClass::kJump));
  EXPECT_TRUE(is_flow_control(InstrClass::kJumpReg));
  EXPECT_FALSE(is_flow_control(InstrClass::kAlu));
  EXPECT_FALSE(is_flow_control(InstrClass::kLoad));
  EXPECT_FALSE(is_flow_control(InstrClass::kSyscall));
}

// Every catalogue instruction must survive an encode → decode round trip.
class RoundTrip : public ::testing::TestWithParam<OpcodeInfo> {};

TEST_P(RoundTrip, EncodeDecode) {
  const OpcodeInfo& row = GetParam();
  std::uint32_t word = 0;
  switch (row.format) {
    case Format::kR:
      word = encode_r(row.mnemonic, 3, 4, 5, 6);
      break;
    case Format::kI:
      word = encode_i(row.mnemonic, 7, 8, 0x1234);
      break;
    case Format::kJ:
      word = encode_j(row.mnemonic, 0x00400040 >> 2);
      break;
  }
  const Instruction decoded = decode(word);
  EXPECT_EQ(decoded.mnemonic, row.mnemonic) << row.name;
  EXPECT_TRUE(decoded.valid());
  EXPECT_EQ(decoded.flow_control(), is_flow_control(row.cls));
}

std::vector<OpcodeInfo> real_rows() {
  std::vector<OpcodeInfo> rows;
  for (const OpcodeInfo& row : opcode_table()) {
    if (row.mnemonic != Mnemonic::kInvalid) rows.push_back(row);
  }
  return rows;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTrip, ::testing::ValuesIn(real_rows()),
                         [](const ::testing::TestParamInfo<OpcodeInfo>& info) {
                           return std::string(info.param.name);
                         });

TEST(Decode, IsTotal) {
  // No word may crash the decoder; garbage decodes to kInvalid.
  EXPECT_EQ(decode(0xFFFFFFFF).mnemonic, Mnemonic::kInvalid);
  EXPECT_FALSE(decode(0xFFFFFFFF).valid());
}

TEST(Decode, FieldExtraction) {
  const Instruction i = decode(encode_r(Mnemonic::kAddu, /*rd=*/10, /*rs=*/11, /*rt=*/12));
  EXPECT_EQ(i.rd, 10);
  EXPECT_EQ(i.rs, 11);
  EXPECT_EQ(i.rt, 12);
}

TEST(Decode, SignedImmediate) {
  const Instruction i = decode(encode_i(Mnemonic::kAddiu, 1, 2, 0xFFFF));
  EXPECT_EQ(i.simm(), -1);
  const Instruction j = decode(encode_i(Mnemonic::kAddiu, 1, 2, 0x7FFF));
  EXPECT_EQ(j.simm(), 32767);
}

TEST(Decode, BranchTargetArithmetic) {
  // beq offset is in words relative to PC+4.
  const Instruction i = decode(encode_i(Mnemonic::kBeq, 0, 0, 0xFFFF));  // offset -1
  EXPECT_EQ(i.branch_target(0x00400010), 0x00400010U + 4 - 4);
  const Instruction fwd = decode(encode_i(Mnemonic::kBeq, 0, 0, 3));
  EXPECT_EQ(fwd.branch_target(0x00400000), 0x00400000U + 4 + 12);
}

TEST(Decode, JumpTargetInRegion) {
  const Instruction i = decode(encode_j(Mnemonic::kJ, 0x00400100 >> 2));
  EXPECT_EQ(i.jump_target(0x00400000), 0x00400100U);
}

TEST(Disassemble, CanonicalForms) {
  EXPECT_EQ(disassemble(encode_r(Mnemonic::kAddu, 8, 9, 10)), "addu $t0, $t1, $t2");
  EXPECT_EQ(disassemble(encode_r(Mnemonic::kJr, 0, 31, 0)), "jr $ra");
  EXPECT_EQ(disassemble(encode_r(Mnemonic::kSyscall, 0, 0, 0)), "syscall");
}

TEST(Disassemble, EveryOpcodeProducesItsName) {
  for (const OpcodeInfo& row : real_rows()) {
    std::uint32_t word = 0;
    switch (row.format) {
      case Format::kR: word = encode_r(row.mnemonic, 1, 2, 3, 4); break;
      case Format::kI: word = encode_i(row.mnemonic, 1, 2, 8); break;
      case Format::kJ: word = encode_j(row.mnemonic, 0x100); break;
    }
    EXPECT_EQ(disassemble(word).substr(0, row.name.size()), row.name);
  }
}

TEST(Registers, NamesRoundTrip) {
  for (unsigned r = 0; r < kNumGpr; ++r) {
    const auto parsed = parse_reg(reg_name(r));
    ASSERT_TRUE(parsed.has_value()) << reg_name(r);
    EXPECT_EQ(*parsed, r);
  }
}

TEST(Registers, ParseVariants) {
  EXPECT_EQ(parse_reg("$t0"), 8U);
  EXPECT_EQ(parse_reg("t0"), 8U);
  EXPECT_EQ(parse_reg("$5"), 5U);
  EXPECT_EQ(parse_reg("$sp"), 29U);
  EXPECT_FALSE(parse_reg("$t99").has_value());
  EXPECT_FALSE(parse_reg("").has_value());
}

}  // namespace
}  // namespace cicmon::isa
