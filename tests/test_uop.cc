// Microoperation-layer tests: canonical programs, the monitoring-embedding
// pass (Figures 3 and 4), paper-notation rendering, and the interpreter.
#include <gtest/gtest.h>

#include "casm/builder.h"
#include "cpu/cpu.h"
#include "isa/instruction.h"
#include "mem/fetch_path.h"
#include "support/error.h"
#include "support/rng.h"
#include "uop/interp.h"
#include "uop/monitor_pass.h"
#include "uop/threaded.h"
#include "uop/translate_cache.h"
#include "uop/uop.h"

namespace cicmon::uop {
namespace {

unsigned count_kind(const std::vector<Uop>& ops, UopKind kind) {
  unsigned n = 0;
  for (const Uop& op : ops) n += op.kind == kind ? 1 : 0;
  return n;
}

TEST(UopBuild, FetchProgramMatchesFigure1) {
  const IsaUopSpec spec = build_isa_uops();
  // CPC.read, IMAU.read, IReg.write, const4, add, CPC.write.
  ASSERT_EQ(spec.fetch.size(), 6U);
  EXPECT_EQ(spec.fetch[0].kind, UopKind::kReadSpecial);
  EXPECT_EQ(spec.fetch[0].special, SpecialReg::kCpc);
  EXPECT_EQ(spec.fetch[1].kind, UopKind::kFetchInstr);
  EXPECT_EQ(spec.fetch[2].kind, UopKind::kWriteSpecial);
  EXPECT_EQ(spec.fetch[2].special, SpecialReg::kIReg);
  EXPECT_FALSE(spec.monitoring_embedded);
}

TEST(UopBuild, EveryInstructionHasAProgram) {
  const IsaUopSpec spec = build_isa_uops();
  for (const isa::OpcodeInfo& row : isa::opcode_table()) {
    if (row.mnemonic == isa::Mnemonic::kInvalid) continue;
    EXPECT_FALSE(spec.program(row.mnemonic).ops.empty()) << row.name;
  }
}

TEST(UopBuild, FlowControlEndsWithSetPc) {
  const IsaUopSpec spec = build_isa_uops();
  for (const isa::OpcodeInfo& row : isa::opcode_table()) {
    if (row.mnemonic == isa::Mnemonic::kInvalid || !isa::is_flow_control(row.cls)) continue;
    EXPECT_EQ(count_kind(spec.program(row.mnemonic).ops, UopKind::kSetPc), 1U) << row.name;
  }
}

TEST(MonitorPass, ExtendsFetchWithFigure3b) {
  IsaUopSpec spec = build_isa_uops();
  const std::size_t before = spec.fetch.size();
  embed_monitoring(&spec);
  EXPECT_TRUE(spec.monitoring_embedded);
  ASSERT_EQ(spec.fetch.size(), before + 5);  // STA.read, guarded STA.write, RHASH.read, hash, RHASH.write
  EXPECT_EQ(count_kind(spec.fetch, UopKind::kHashStep), 1U);
  // The STA write must be guarded on start==0 (conditional microoperation).
  bool guarded_sta_write = false;
  for (const Uop& op : spec.fetch) {
    if (op.kind == UopKind::kWriteSpecial && op.special == SpecialReg::kSta) {
      guarded_sta_write = op.guard == GuardKind::kIfZero;
    }
  }
  EXPECT_TRUE(guarded_sta_write);
}

TEST(MonitorPass, OnlyFlowControlIdExtended) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  for (const isa::OpcodeInfo& row : isa::opcode_table()) {
    if (row.mnemonic == isa::Mnemonic::kInvalid) continue;
    const unsigned lookups = count_kind(spec.program(row.mnemonic).ops, UopKind::kIhtLookup);
    const unsigned excs = count_kind(spec.program(row.mnemonic).ops, UopKind::kRaiseExc);
    if (isa::is_flow_control(row.cls)) {
      EXPECT_EQ(lookups, 1U) << row.name;
      EXPECT_EQ(excs, 2U) << row.name;  // exception0 and exception1
    } else {
      EXPECT_EQ(lookups, 0U) << row.name;
      EXPECT_EQ(excs, 0U) << row.name;
    }
  }
}

TEST(MonitorPass, MonitoringOpsAreTagged) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  unsigned tagged = 0;
  for (const Uop& op : spec.fetch) tagged += op.monitoring ? 1 : 0;
  EXPECT_EQ(tagged, 5U);
}

TEST(MonitorPass, RejectsDoubleEmbedding) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  EXPECT_THROW(embed_monitoring(&spec), support::CicError);
  EXPECT_THROW(embed_monitoring(nullptr), support::CicError);
}

TEST(MonitorPass, IdExtensionPrependsBeforeSetPc) {
  // Figure 4: the lookup/reset run before the control transfer executes.
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  const auto& ops = spec.program(isa::Mnemonic::kJr).ops;
  std::size_t lookup_at = ops.size(), setpc_at = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == UopKind::kIhtLookup) lookup_at = i;
    if (ops[i].kind == UopKind::kSetPc) setpc_at = i;
  }
  EXPECT_LT(lookup_at, setpc_at);
}

TEST(UopBuild, StageSlicesPartitionEveryProgram) {
  // The slices must cover the stage-sorted ops vector exactly, and every op
  // must sit in the slice of its own stage tag — for both the canonical and
  // the monitored spec.
  for (const bool monitored : {false, true}) {
    IsaUopSpec spec = build_isa_uops();
    if (monitored) embed_monitoring(&spec);
    for (const isa::OpcodeInfo& row : isa::opcode_table()) {
      const InstrUops& prog = spec.program(row.mnemonic);
      std::size_t covered = 0;
      for (unsigned s = 0; s < kNumStages; ++s) {
        for (const Uop& op : prog.stage(static_cast<Stage>(s))) {
          EXPECT_EQ(op.stage, static_cast<Stage>(s)) << row.name;
          ++covered;
        }
      }
      EXPECT_EQ(covered, prog.ops.size()) << row.name;
    }
  }
}

TEST(UopBuild, StageSliceMatchesStageFilter) {
  // The contiguous slice and the old stage-tag filter must agree on both
  // membership and order (the execution-order contract of the refactor).
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  for (const isa::OpcodeInfo& row : isa::opcode_table()) {
    const InstrUops& prog = spec.program(row.mnemonic);
    for (unsigned s = 0; s < kNumStages; ++s) {
      std::vector<UopKind> filtered;
      for (const Uop& op : prog.ops) {
        if (op.stage == static_cast<Stage>(s)) filtered.push_back(op.kind);
      }
      std::vector<UopKind> sliced;
      for (const Uop& op : prog.stage(static_cast<Stage>(s))) sliced.push_back(op.kind);
      EXPECT_EQ(filtered, sliced) << row.name << " stage " << s;
    }
  }
}

TEST(UopBuild, IhtLookupUsesSrcC) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  for (const Uop& op : spec.program(isa::Mnemonic::kJr).ops) {
    if (op.kind != UopKind::kIhtLookup) continue;
    EXPECT_NE(op.src_c, kNoTemp);
    EXPECT_EQ(op.src_c, MonitorTemps::kHashV);
    return;
  }
  FAIL() << "jr has no IHT lookup after embedding";
}

InstrUops malformed_single(Uop op) {
  InstrUops prog;
  prog.ops.push_back(op);
  finalize_program(&prog);
  return prog;
}

TEST(UopValidate, RejectsGuardWithoutGuardTmp) {
  IsaUopSpec spec = build_isa_uops();
  Uop op;
  op.kind = UopKind::kRaiseExc;
  op.stage = Stage::kID;
  op.guard = GuardKind::kIfZero;  // guard_tmp left at kNoTemp
  spec.per_instr[0] = malformed_single(op);
  EXPECT_THROW(validate_spec(spec), support::CicError);
}

TEST(UopValidate, RejectsOutOfRangeTempIndex) {
  IsaUopSpec spec = build_isa_uops();
  Uop op;
  op.kind = UopKind::kAlu;
  op.stage = Stage::kEX;
  op.dst = kMaxTemps;  // one past the temp file
  op.src_a = 0;        // defined by the fetch program
  spec.per_instr[0] = malformed_single(op);
  EXPECT_THROW(validate_spec(spec), support::CicError);
}

TEST(UopValidate, RejectsTempReadBeforeWritten) {
  IsaUopSpec spec = build_isa_uops();
  Uop op;
  op.kind = UopKind::kWriteGpr;
  op.stage = Stage::kWB;
  op.sel = GprSel::kRd;
  op.src_a = 12;  // never written by fetch or this program
  spec.per_instr[0] = malformed_single(op);
  EXPECT_THROW(validate_spec(spec), support::CicError);
}

TEST(UopValidate, RejectsMissingRequiredOperand) {
  IsaUopSpec spec = build_isa_uops();
  Uop op;
  op.kind = UopKind::kLoad;  // needs dst and src_a, has neither
  op.stage = Stage::kMEM;
  spec.per_instr[0] = malformed_single(op);
  EXPECT_THROW(validate_spec(spec), support::CicError);
}

TEST(UopValidate, AcceptsCanonicalAndMonitoredSpecs) {
  IsaUopSpec spec = build_isa_uops();
  EXPECT_NO_THROW(validate_spec(spec));
  embed_monitoring(&spec);
  EXPECT_NO_THROW(validate_spec(spec));
}

TEST(UopPrint, PaperNotation) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  const std::string fetch_text = dump_stage(spec.fetch, Stage::kIF);
  // The paper's conditional-microoperation syntax of Figure 3(b).
  EXPECT_NE(fetch_text.find("[start==0]"), std::string::npos) << fetch_text;
  EXPECT_NE(fetch_text.find("HASHFU"), std::string::npos);
  EXPECT_NE(fetch_text.find("RHASH"), std::string::npos);
}

TEST(Interp, AluEvalBasics) {
  EXPECT_EQ(alu_eval(AluOp::kAdd, 2, 3), 5U);
  EXPECT_EQ(alu_eval(AluOp::kSub, 2, 3), 0xFFFFFFFFU);
  EXPECT_EQ(alu_eval(AluOp::kSra, 0x80000000, 31), 0xFFFFFFFFU);
  EXPECT_EQ(alu_eval(AluOp::kSrl, 0x80000000, 31), 1U);
  EXPECT_EQ(alu_eval(AluOp::kSltSigned, 0xFFFFFFFF, 0), 1U);   // -1 < 0
  EXPECT_EQ(alu_eval(AluOp::kSltUnsigned, 0xFFFFFFFF, 0), 0U); // big > 0
  EXPECT_EQ(alu_eval(AluOp::kNor, 0, 0), 0xFFFFFFFFU);
  EXPECT_EQ(alu_eval(AluOp::kCmpLtZ, 0x80000000, 0), 1U);
  EXPECT_EQ(alu_eval(AluOp::kCmpGeZ, 0, 0), 1U);
}

TEST(Interp, MulDivEval) {
  HiLo r = muldiv_eval(MulDivOp::kMult, 0xFFFFFFFF, 2);  // -1 * 2
  EXPECT_EQ(r.lo, 0xFFFFFFFEU);
  EXPECT_EQ(r.hi, 0xFFFFFFFFU);
  r = muldiv_eval(MulDivOp::kMultu, 0xFFFFFFFF, 2);
  EXPECT_EQ(r.lo, 0xFFFFFFFEU);
  EXPECT_EQ(r.hi, 1U);
  r = muldiv_eval(MulDivOp::kDiv, 7, static_cast<std::uint32_t>(-2));
  EXPECT_EQ(static_cast<std::int32_t>(r.lo), -3);
  EXPECT_EQ(static_cast<std::int32_t>(r.hi), 1);
  r = muldiv_eval(MulDivOp::kDivu, 7, 2);
  EXPECT_EQ(r.lo, 3U);
  EXPECT_EQ(r.hi, 1U);
}

TEST(Interp, DivByZeroIsDeterministic) {
  const HiLo r = muldiv_eval(MulDivOp::kDivu, 42, 0);
  EXPECT_EQ(r.lo, 0xFFFFFFFFU);
  EXPECT_EQ(r.hi, 42U);
  const HiLo s = muldiv_eval(MulDivOp::kDiv, 42, 0);
  EXPECT_EQ(s.lo, 0xFFFFFFFFU);
  EXPECT_EQ(s.hi, 42U);
}

TEST(Interp, DivOverflowWraps) {
  const HiLo r = muldiv_eval(MulDivOp::kDiv, 0x80000000, static_cast<std::uint32_t>(-1));
  EXPECT_EQ(r.lo, 0x80000000U);
  EXPECT_EQ(r.hi, 0U);
}

// Minimal datapath that records microoperation effects.
class RecordingDatapath : public Datapath {
 public:
  std::uint32_t read_special(SpecialReg r) override {
    return specials[static_cast<int>(r)];
  }
  void write_special(SpecialReg r, std::uint32_t v) override {
    specials[static_cast<int>(r)] = v;
  }
  std::uint32_t read_gpr(unsigned i) override { return gpr[i]; }
  void write_gpr(unsigned i, std::uint32_t v) override { gpr[i] = v; }
  std::uint32_t fetch_instr(std::uint32_t) override { return fetched_word; }
  std::uint32_t load(std::uint32_t, MemWidth, bool) override { return 0; }
  void store(std::uint32_t, MemWidth, std::uint32_t) override {}
  std::uint32_t hash_step(std::uint32_t h, std::uint32_t w) override { return h ^ w; }
  IhtLookupResult iht_lookup(std::uint32_t, std::uint32_t, std::uint32_t) override {
    ++lookups;
    return lookup_result;
  }
  void raise_monitor_exception(std::uint8_t code) override { exceptions.push_back(code); }
  void set_pc(std::uint32_t t) override { specials[static_cast<int>(SpecialReg::kCpc)] = t; }
  void syscall() override {}
  void illegal_instruction() override { ++illegals; }

  std::uint32_t specials[8]{};
  std::uint32_t gpr[32]{};
  std::uint32_t fetched_word = 0;
  IhtLookupResult lookup_result;
  std::vector<std::uint8_t> exceptions;
  unsigned lookups = 0;
  unsigned illegals = 0;
};

TEST(Interp, MonitoredFetchAccumulatesHash) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  RecordingDatapath dp;
  dp.specials[static_cast<int>(SpecialReg::kCpc)] = 0x00400000;
  dp.fetched_word = 0xAAAA5555;

  ExecContext ctx;
  ctx.instr_addr = 0x00400000;
  execute_stage(spec.fetch, Stage::kIF, ctx, dp);

  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kSta)], 0x00400000U);  // latched
  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kRhash)], 0xAAAA5555U);
  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kCpc)], 0x00400004U);

  // Second fetch: STA stays (guard fails), hash folds.
  dp.fetched_word = 0x0000FFFF;
  ExecContext ctx2;
  ctx2.instr_addr = 0x00400004;
  execute_stage(spec.fetch, Stage::kIF, ctx2, dp);
  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kSta)], 0x00400000U);
  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kRhash)], 0xAAAA5555U ^ 0x0000FFFFU);
}

TEST(Interp, IdExtensionRaisesMissAndResets) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  RecordingDatapath dp;
  dp.specials[static_cast<int>(SpecialReg::kSta)] = 0x00400000;
  dp.specials[static_cast<int>(SpecialReg::kPpc)] = 0x00400010;
  dp.specials[static_cast<int>(SpecialReg::kRhash)] = 0x12345678;
  dp.lookup_result = {false, false};

  ExecContext ctx;
  ctx.instr = isa::decode(isa::encode_r(isa::Mnemonic::kJr, 0, 31, 0));
  ctx.instr_addr = 0x00400010;
  execute_stage(spec.program(isa::Mnemonic::kJr).ops, Stage::kID, ctx, dp);

  EXPECT_EQ(dp.lookups, 1U);
  ASSERT_EQ(dp.exceptions.size(), 1U);
  EXPECT_EQ(dp.exceptions[0], kExcHashMiss);
  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kSta)], 0U);    // reset
  EXPECT_EQ(dp.specials[static_cast<int>(SpecialReg::kRhash)], 0U);  // reset
}

TEST(Interp, IdExtensionRaisesMismatchOnlyWhenFoundAndHashDiffers) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  for (const bool match : {true, false}) {
    RecordingDatapath dp;
    dp.lookup_result = {true, match};
    ExecContext ctx;
    ctx.instr = isa::decode(isa::encode_r(isa::Mnemonic::kJr, 0, 31, 0));
    execute_stage(spec.program(isa::Mnemonic::kJr).ops, Stage::kID, ctx, dp);
    if (match) {
      EXPECT_TRUE(dp.exceptions.empty());
    } else {
      ASSERT_EQ(dp.exceptions.size(), 1U);
      EXPECT_EQ(dp.exceptions[0], kExcHashMismatch);
    }
  }
}

TEST(Interp, UnmonitoredSpecNeverTouchesMonitorPorts) {
  const IsaUopSpec spec = build_isa_uops();
  RecordingDatapath dp;
  dp.specials[static_cast<int>(SpecialReg::kCpc)] = 0x00400000;
  ExecContext ctx;
  execute_stage(spec.fetch, Stage::kIF, ctx, dp);
  ctx.instr = isa::decode(isa::encode_i(isa::Mnemonic::kBeq, 0, 0, 4));
  for (Stage s : {Stage::kID, Stage::kEX, Stage::kMEM, Stage::kWB}) {
    execute_stage(spec.program(ctx.instr.mnemonic).ops, s, ctx, dp);
  }
  EXPECT_EQ(dp.lookups, 0U);
  EXPECT_TRUE(dp.exceptions.empty());
}

// --- Threaded engine: fused classification --------------------------------

TEST(FusedClassifier, EveryMnemonicFusesNonGeneric) {
  // Every canonical builder program — monitored or not — must match a fused
  // shape: a kGeneric here means the classifier and the builder drifted apart
  // and the threaded engine silently forfeits its speedup for that mnemonic.
  for (const bool monitored : {false, true}) {
    IsaUopSpec spec = build_isa_uops();
    if (monitored) embed_monitoring(&spec);
    const FusedTable table = build_fused_table(spec);
    for (const isa::OpcodeInfo& row : isa::opcode_table()) {
      if (row.mnemonic == isa::Mnemonic::kInvalid) continue;
      EXPECT_NE(table[static_cast<std::size_t>(row.mnemonic)].kind, FusedKind::kGeneric)
          << row.name << (monitored ? " (monitored)" : " (unmonitored)");
    }
    // The illegal-trap program of the invalid word terminates blocks.
    EXPECT_EQ(table[static_cast<std::size_t>(isa::Mnemonic::kInvalid)].kind,
              FusedKind::kIllegal);
  }
}

TEST(FusedClassifier, MonitorHeadRecognizedExactly) {
  IsaUopSpec spec = build_isa_uops();
  embed_monitoring(&spec);
  const auto id = spec.program(isa::Mnemonic::kJ).stage(Stage::kID);
  ASSERT_GE(id.size(), 11U);
  EXPECT_TRUE(is_monitor_head(id.first(11)));
  EXPECT_FALSE(is_monitor_head(id.first(10)));   // truncated head
  EXPECT_FALSE(is_monitor_head(id.subspan(1)));  // misaligned head
}

TEST(FusedClassifier, FlowControlWithoutMonitoringHeadIsGeneric) {
  // When monitoring is embedded, a flow-control program that lacks the
  // Figure-4 head must not fuse: the handler would skip the block-end check.
  const IsaUopSpec plain = build_isa_uops();
  const FusedOp op = classify_program(plain.program(isa::Mnemonic::kJ),
                                      isa::info(isa::Mnemonic::kJ).cls,
                                      /*monitoring_embedded=*/true);
  EXPECT_EQ(op.kind, FusedKind::kGeneric);
}

TEST(FusedClassifier, MutatedProgramFallsBackToGeneric) {
  // Any deviation from the verified canonical shape — here an extra ID-stage
  // microoperation — must classify kGeneric and run through the interpreter.
  const IsaUopSpec spec = build_isa_uops();
  InstrUops prog = spec.program(isa::Mnemonic::kAddu);
  Uop extra;
  extra.kind = UopKind::kReadSpecial;
  extra.special = SpecialReg::kCpc;
  extra.stage = Stage::kID;
  extra.dst = 4;
  prog.ops.push_back(extra);
  finalize_program(&prog);
  const FusedOp op = classify_program(prog, isa::info(isa::Mnemonic::kAddu).cls,
                                      /*monitoring_embedded=*/false);
  EXPECT_EQ(op.kind, FusedKind::kGeneric);
}

// --- Threaded engine: translation-cache tamper safety ----------------------
//
// Mirrors the PredecodeCache.* suite one level up: the block-level
// translation cache is keyed by per-entry word tags, so any divergence
// between the translated word and the word the pipeline actually carries
// (bus tamper, memory rewrite, post-ID latch fault) must invalidate the
// block, fall back to the interpreter for that instruction, and leave every
// observable result bit-identical with the switch engine.

casm_::Image checked_sum_loop() {
  casm_::Asm a;
  a.func("main");
  a.li(isa::kT0, 20);
  a.li(isa::kT1, 0);
  casm_::Label loop = a.bound_label();
  a.addu(isa::kT1, isa::kT1, isa::kT0);
  a.addiu(isa::kT0, isa::kT0, -1);
  a.bnez(isa::kT0, loop);
  a.check_eq(isa::kT1, 210);
  a.sys_exit(0);
  return a.finalize();
}

cpu::CpuConfig engine_config(cpu::Engine engine, bool translate_cache, bool chain = true) {
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  config.engine = engine;
  config.translate_cache = translate_cache;
  config.chain = chain;
  return config;
}

// Every observable field the experiment layers consume.
void expect_runs_identical(const cpu::RunResult& a, const cpu::RunResult& b) {
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.monitor_cause, b.monitor_cause);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.monitor_cycles, b.monitor_cycles);
  EXPECT_EQ(a.branch_bubbles, b.branch_bubbles);
  EXPECT_EQ(a.load_use_stalls, b.load_use_stalls);
  EXPECT_EQ(a.muldiv_stalls, b.muldiv_stalls);
  EXPECT_EQ(a.icache_stall_cycles, b.icache_stall_cycles);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.iht.lookups, b.iht.lookups);
  EXPECT_EQ(a.iht.hits, b.iht.hits);
  EXPECT_EQ(a.iht.misses, b.iht.misses);
  EXPECT_EQ(a.iht.mismatches, b.iht.mismatches);
  EXPECT_EQ(a.os.miss_exceptions, b.os.miss_exceptions);
  EXPECT_EQ(a.os.mismatch_exceptions, b.os.mismatch_exceptions);
  EXPECT_EQ(a.os.refills, b.os.refills);
  EXPECT_EQ(a.os.records_loaded, b.os.records_loaded);
  EXPECT_EQ(a.os.fht_probes, b.os.fht_probes);
  EXPECT_EQ(a.os.cycles_charged, b.os.cycles_charged);
  EXPECT_EQ(a.console, b.console);
  EXPECT_EQ(a.check_observed, b.check_observed);
  EXPECT_EQ(a.check_expected, b.check_expected);
}

// Bus tamper that corrupts one specific dynamic fetch — the translated
// block (and any cache-resident copy) saw the clean word.
class OneShotTamper : public mem::BusTamper {
 public:
  OneShotTamper(std::uint64_t trigger, std::uint32_t mask)
      : trigger_(trigger), mask_(mask) {}
  std::uint32_t on_transfer(std::uint32_t, std::uint32_t word) override {
    return transfers_++ == trigger_ ? word ^ mask_ : word;
  }

 private:
  std::uint64_t transfers_ = 0;
  std::uint64_t trigger_;
  std::uint32_t mask_;
};

TEST(TranslationCache, CleanRunIdenticalAcrossEnginesAndCacheModes) {
  const casm_::Image image = checked_sum_loop();
  cpu::Cpu interp(engine_config(cpu::Engine::kSwitch, true), image);
  cpu::Cpu cached(engine_config(cpu::Engine::kThreaded, true), image);
  cpu::Cpu uncached(engine_config(cpu::Engine::kThreaded, false), image);
  const cpu::RunResult a = interp.run();
  const cpu::RunResult b = cached.run();
  const cpu::RunResult c = uncached.run();
  expect_runs_identical(a, b);
  expect_runs_identical(a, c);
  // The loop re-enters its block: with caching on the block translates once
  // and hits thereafter; with caching off every entry retranslates.
  ASSERT_NE(cached.translation_cache(), nullptr);
  EXPECT_GT(cached.translation_cache()->stats().translations, 0U);
  EXPECT_GT(cached.translation_cache()->stats().hits, 0U);
  EXPECT_EQ(cached.translation_cache()->stats().invalidations, 0U);
  EXPECT_EQ(uncached.translation_cache()->stats().hits, 0U);
  EXPECT_GT(uncached.translation_cache()->stats().translations,
            cached.translation_cache()->stats().translations);
  EXPECT_EQ(interp.translation_cache(), nullptr);
}

TEST(TranslationCache, BusTamperMidRunInvalidatesAndMatchesInterpreter) {
  // The tampered word arrives at an address whose translated block already
  // carries the clean tag: the mismatch must invalidate the block, execute
  // the corrupted word through the interpreter, and be detected exactly as
  // on the switch engine.
  const casm_::Image image = checked_sum_loop();
  cpu::RunResult results[4];
  const cpu::CpuConfig configs[4] = {
      engine_config(cpu::Engine::kSwitch, true),
      engine_config(cpu::Engine::kThreaded, true),
      engine_config(cpu::Engine::kThreaded, true, /*chain=*/false),
      engine_config(cpu::Engine::kThreaded, false)};
  for (int i = 0; i < 4; ++i) {
    cpu::Cpu cpu(configs[i], image);
    OneShotTamper tamper(/*trigger=*/9, /*mask=*/1U << 11);  // mid-loop fetch
    cpu.fetch_path().set_bus_tamper(&tamper);
    results[i] = cpu.run();
    if (cpu.translation_cache() != nullptr) {
      EXPECT_GE(cpu.translation_cache()->stats().invalidations, 1U);
    }
    if (i == 1) {
      // By transfer 9 the loop block is chained (its predecessor's taken
      // edge and its own self-loop): invalidation must sever those links.
      EXPECT_GE(cpu.translation_cache()->stats().chain_severed, 2U);
    }
  }
  EXPECT_EQ(results[0].reason, cpu::ExitReason::kMonitorTerminated);
  expect_runs_identical(results[0], results[1]);
  expect_runs_identical(results[0], results[2]);
  expect_runs_identical(results[0], results[3]);
}

TEST(TranslationCache, TextRewriteDetectionIdenticalAcrossEngines) {
  // A rewritten text word: translation picks up the corrupted word (the tag
  // matches what the pipeline fetches), and the monitored detection — the
  // hash mismatch at block end — lands exactly like the interpreter's.
  const casm_::Image image = checked_sum_loop();
  cpu::RunResult results[4];
  const cpu::CpuConfig configs[4] = {
      engine_config(cpu::Engine::kSwitch, true),
      engine_config(cpu::Engine::kThreaded, true),
      engine_config(cpu::Engine::kThreaded, true, /*chain=*/false),
      engine_config(cpu::Engine::kThreaded, false)};
  for (int i = 0; i < 4; ++i) {
    cpu::Cpu cpu(configs[i], image);
    const std::uint32_t addr = casm_::kTextBase + 8;
    cpu.memory().write32(addr, cpu.memory().read32(addr) ^ (1U << 11));
    results[i] = cpu.run();
  }
  EXPECT_EQ(results[0].reason, cpu::ExitReason::kMonitorTerminated);
  expect_runs_identical(results[0], results[1]);
  expect_runs_identical(results[0], results[2]);
  expect_runs_identical(results[0], results[3]);
}

TEST(TranslationCache, ICacheResidentFlipMidRunIdenticalAcrossEngines) {
  // Warm the I-cache with a few interpreter steps, flip resident bits with a
  // fixed-seed RNG (same cache state in every configuration, so the same
  // bits flip), then hand the rest of the run to the configured engine: the
  // poisoned line's words diverge from the translation tags at fetch time
  // and must be handled exactly like the interpreter handles them.
  const casm_::Image image = checked_sum_loop();
  cpu::RunResult results[4];
  cpu::CpuConfig configs[4] = {
      engine_config(cpu::Engine::kSwitch, true),
      engine_config(cpu::Engine::kThreaded, true),
      engine_config(cpu::Engine::kThreaded, true, /*chain=*/false),
      engine_config(cpu::Engine::kThreaded, false)};
  for (int i = 0; i < 4; ++i) {
    configs[i].icache.enabled = true;
    cpu::Cpu cpu(configs[i], image);
    for (int s = 0; s < 8; ++s) cpu.step();
    ASSERT_NE(cpu.fetch_path().icache(), nullptr);
    support::Rng rng(99);
    for (int flip = 0; flip < 3; ++flip) {
      cpu.fetch_path().icache()->flip_random_resident_bit(rng);
    }
    results[i] = cpu.run();
  }
  EXPECT_NE(results[0].reason, cpu::ExitReason::kExit);  // the flips bite
  expect_runs_identical(results[0], results[1]);
  expect_runs_identical(results[0], results[2]);
  expect_runs_identical(results[0], results[3]);
}

TEST(TranslationCache, PostIdFaultIdenticalAcrossEngines) {
  // The post-ID XOR rewrites the word after the hash saw it. The translated
  // tag holds the clean word, so the fused handler must miss, fall back, and
  // reproduce the (undetected) wrong-output outcome of §3.2 bit for bit.
  const casm_::Image image = checked_sum_loop();
  cpu::RunResult results[4];
  const cpu::CpuConfig configs[4] = {
      engine_config(cpu::Engine::kSwitch, true),
      engine_config(cpu::Engine::kThreaded, true),
      engine_config(cpu::Engine::kThreaded, true, /*chain=*/false),
      engine_config(cpu::Engine::kThreaded, false)};
  for (int i = 0; i < 4; ++i) {
    cpu::Cpu cpu(configs[i], image);
    cpu.set_post_id_fault({4, 1U << 16});
    results[i] = cpu.run();
    if (cpu.translation_cache() != nullptr) {
      EXPECT_GE(cpu.translation_cache()->stats().invalidations, 1U);
    }
  }
  EXPECT_EQ(results[0].iht.mismatches, 0U);  // escaped the monitor (§3.2)
  expect_runs_identical(results[0], results[1]);
  expect_runs_identical(results[0], results[2]);
  expect_runs_identical(results[0], results[3]);
}

// --- Superblock chaining ----------------------------------------------------

TEST(TranslationCache, ChainOnOffByteIdenticalAndLinksFollowed) {
  // `--chain` is a pure execution strategy: with it off, every block exit
  // returns to the dispatch loop and pays a cache lookup; with it on, the
  // loop's bnez links to its own block once and every later iteration flows
  // straight through. Both must be byte-identical with the interpreter.
  const casm_::Image image = checked_sum_loop();
  cpu::Cpu interp(engine_config(cpu::Engine::kSwitch, true), image);
  cpu::Cpu chained(engine_config(cpu::Engine::kThreaded, true), image);
  cpu::Cpu unchained(engine_config(cpu::Engine::kThreaded, true, /*chain=*/false), image);
  const cpu::RunResult a = interp.run();
  const cpu::RunResult b = chained.run();
  const cpu::RunResult c = unchained.run();
  expect_runs_identical(a, b);
  expect_runs_identical(a, c);
  EXPECT_GT(chained.chain_follows(), 0U);
  EXPECT_EQ(unchained.chain_follows(), 0U);
  EXPECT_EQ(unchained.chain_breaks(), 0U);
  // The follows replace dispatch-loop lookups one for one.
  EXPECT_GT(unchained.translation_cache()->stats().hits,
            chained.translation_cache()->stats().hits);
  EXPECT_EQ(chained.translation_cache()->stats().chain_severed, 0U);
}

TEST(TranslationCache, InvalidateSeversInboundAndOutboundLinks) {
  // Cache-level check of the severing invariant: links installed by chain()
  // must be cut from both endpoints when either block invalidates — a stale
  // pointer into retranslated text would be a correctness bug.
  const IsaUopSpec spec = build_isa_uops();
  const FusedTable fused = build_fused_table(spec);
  const std::uint32_t base = 0x00400000;
  const std::uint32_t words[3] = {
      isa::encode_i(isa::Mnemonic::kBeq, 0, 0, 1),   // taken base+8, fall base+4
      isa::encode_r(isa::Mnemonic::kJr, 0, 31, 0),   // indirect: no static edges
      isa::encode_r(isa::Mnemonic::kAddu, 9, 9, 8),  // forced-generic text tail
  };
  const auto peek = [&](std::uint32_t a) { return words[(a - base) / 4]; };
  TranslationCache tc(base, base + 12, /*enabled=*/true);
  TranslatedBlock* branch = tc.translate(base, spec, fused, peek);
  TranslatedBlock* target = tc.translate(base + 8, spec, fused, peek);
  TranslatedBlock* skipped = tc.translate(base + 4, spec, fused, peek);
  ASSERT_TRUE(branch->has_taken);
  EXPECT_EQ(branch->taken_target, base + 8);
  ASSERT_TRUE(branch->has_fall);
  EXPECT_EQ(branch->fall_target, base + 4);
  EXPECT_FALSE(skipped->has_taken);  // jr is indirect, never chained
  EXPECT_FALSE(skipped->has_fall);
  EXPECT_FALSE(target->has_fall);  // its fall-through would leave text

  tc.chain(branch, /*taken_edge=*/true, target);
  tc.chain(branch, /*taken_edge=*/false, skipped);
  EXPECT_EQ(branch->taken, target);
  EXPECT_EQ(branch->fall, skipped);
  ASSERT_EQ(target->preds.size(), 1U);
  ASSERT_EQ(skipped->preds.size(), 1U);

  // Invalidating the taken successor severs the inbound link...
  tc.invalidate(base + 8);
  EXPECT_EQ(branch->taken, nullptr);
  EXPECT_EQ(branch->fall, skipped);  // the other edge survives
  EXPECT_EQ(tc.lookup(base + 8), nullptr);
  EXPECT_EQ(tc.stats().chain_severed, 1U);
  // ...and invalidating the predecessor severs its outbound link.
  tc.invalidate(base);
  EXPECT_TRUE(skipped->preds.empty());
  EXPECT_EQ(tc.stats().chain_severed, 2U);
}

TEST(TranslationCache, SelfLoopChainSeversCleanly) {
  // A one-instruction loop links its own taken edge to itself: invalidation
  // must cut both directions of that link without touching freed storage.
  const IsaUopSpec spec = build_isa_uops();
  const FusedTable fused = build_fused_table(spec);
  const std::uint32_t base = 0x00400000;
  const std::uint32_t word =
      isa::encode_i(isa::Mnemonic::kBeq, 0, 0, 0xFFFF);  // beq $0, $0, .
  TranslationCache tc(base, base + 8, /*enabled=*/true);
  TranslatedBlock* loop =
      tc.translate(base, spec, fused, [&](std::uint32_t) { return word; });
  ASSERT_TRUE(loop->has_taken);
  EXPECT_EQ(loop->taken_target, base);
  tc.chain(loop, /*taken_edge=*/true, loop);
  EXPECT_EQ(loop->taken, loop);
  ASSERT_EQ(loop->preds.size(), 1U);
  tc.invalidate(base);
  EXPECT_EQ(tc.lookup(base), nullptr);
  EXPECT_EQ(tc.stats().chain_severed, 1U);
}

}  // namespace
}  // namespace cicmon::uop
