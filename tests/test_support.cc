// Unit tests for the support layer: bit helpers, RNG, strings, stats, table.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/bitops.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/wire.h"

namespace cicmon::support {
namespace {

TEST(Bitops, RotationsAreInverses) {
  for (unsigned amount : {0U, 1U, 7U, 16U, 31U}) {
    EXPECT_EQ(rotr32(rotl32(0xDEADBEEF, amount), amount), 0xDEADBEEFU);
  }
}

TEST(Bitops, RotlWrapsAmount) { EXPECT_EQ(rotl32(1, 33), 2U); }

TEST(Bitops, PopcountAndParity) {
  EXPECT_EQ(popcount32(0), 0U);
  EXPECT_EQ(popcount32(0xFFFFFFFF), 32U);
  EXPECT_EQ(popcount32(0b1011), 3U);
  EXPECT_EQ(parity32(0b1011), 1U);
  EXPECT_EQ(parity32(0b1001), 0U);
}

TEST(Bitops, BitsExtractsFields) {
  EXPECT_EQ(bits(0xABCD1234, 0, 16), 0x1234U);
  EXPECT_EQ(bits(0xABCD1234, 16, 16), 0xABCDU);
  EXPECT_EQ(bits(0xABCD1234, 0, 32), 0xABCD1234U);
  EXPECT_EQ(bits(0xFF, 4, 4), 0xFU);
}

TEST(Bitops, InsertBitsRoundTrips) {
  const std::uint32_t patched = insert_bits(0, 21, 5, 17);
  EXPECT_EQ(bits(patched, 21, 5), 17U);
  EXPECT_EQ(insert_bits(0xFFFFFFFF, 8, 8, 0), 0xFFFF00FFU);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
}

TEST(Bitops, FlipBitIsInvolution) {
  EXPECT_EQ(flip_bit(flip_bit(0x12345678, 13), 13), 0x12345678U);
  EXPECT_NE(flip_bit(0, 31), 0U);
}

TEST(Bitops, IsAligned) {
  EXPECT_TRUE(is_aligned(0x1000, 4));
  EXPECT_FALSE(is_aligned(0x1002, 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.next_u64() != b.next_u64();
  EXPECT_GT(differing, 12);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17U);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8U);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitDropsEmptyFields) {
  const auto parts = split("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, ParseIntFormats) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(parse_int("0x1F", &v));
  EXPECT_EQ(v, 31);
  EXPECT_FALSE(parse_int("zzz", &v));
  EXPECT_FALSE(parse_int("", &v));
}

TEST(Strings, Hex32) { EXPECT_EQ(hex32(0x40001C), "0x0040001c"); }

TEST(Stats, RunningStatMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4U);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, HistogramCdf) {
  Histogram h;
  h.add(1, 2);
  h.add(5, 2);
  EXPECT_DOUBLE_EQ(h.cdf_at(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(1), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at(10), 1.0);
  EXPECT_EQ(h.total(), 4U);
}

TEST(Stats, CounterSet) {
  CounterSet c;
  c.bump("x");
  c.bump("x", 2);
  EXPECT_EQ(c.value("x"), 3U);
  EXPECT_EQ(c.value("missing"), 0U);
}

TEST(Stats, CounterSetInternedIds) {
  CounterSet c;
  const CounterSet::Id x = c.intern("x");
  const CounterSet::Id y = c.intern("y");
  c.bump(x);
  c.bump(x, 4);
  c.bump(y, 2);
  EXPECT_EQ(c.value(x), 5U);
  EXPECT_EQ(c.value(y), 2U);
  // Re-interning returns the same id; the string and id APIs share storage.
  c.bump(c.intern("x"));
  EXPECT_EQ(c.value("x"), 6U);
  c.bump("y");
  EXPECT_EQ(c.value(y), 3U);
  const auto all = c.all();
  EXPECT_EQ(all.at("x"), 6U);
  EXPECT_EQ(all.at("y"), 3U);
}

TEST(Stats, RunningStatMergeMatchesSequential) {
  // merge(a, b) must reproduce the moments of feeding every sample into one
  // accumulator, for uneven split sizes including empty halves.
  const std::vector<double> samples = {3.5, -1.25, 0.0, 7.75, 2.5, -4.0, 9.125, 0.5};
  for (std::size_t split = 0; split <= samples.size(); ++split) {
    RunningStat left;
    RunningStat right;
    RunningStat sequential;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (i < split ? left : right).add(samples[i]);
      sequential.add(samples[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), sequential.count()) << "split " << split;
    EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12) << "split " << split;
    EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9) << "split " << split;
    EXPECT_DOUBLE_EQ(left.min(), sequential.min()) << "split " << split;
    EXPECT_DOUBLE_EQ(left.max(), sequential.max()) << "split " << split;
  }
}

TEST(Stats, RunningStatMergeEmptyIsIdentity) {
  RunningStat a;
  a.add(2.0);
  a.add(4.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2U);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 4.0);
}

TEST(Stats, RunningStatSum) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  s.add(1.5);
  s.add(2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
}

TEST(Stats, HistogramMerge) {
  Histogram a;
  a.add(1, 2);
  a.add(5);
  Histogram b;
  b.add(1);
  b.add(9, 3);
  a.merge(b);
  EXPECT_EQ(a.total(), 7U);
  EXPECT_DOUBLE_EQ(a.cdf_at(1), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(a.cdf_at(5), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(a.cdf_at(9), 1.0);
  // Merging an empty histogram is the identity, both ways.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 7U);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 7U);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CicError);
}

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "the precondition");
    FAIL() << "expected throw";
  } catch (const CicError& e) {
    EXPECT_NE(std::string(e.what()).find("the precondition"), std::string::npos);
  }
}

TEST(Strings, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0U);
  EXPECT_EQ(edit_distance("abc", "abc"), 0U);
  EXPECT_EQ(edit_distance("", "abc"), 3U);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3U);
  EXPECT_EQ(edit_distance("dijkstre", "dijkstra"), 1U);
  EXPECT_EQ(edit_distance("sha", "susan"), 3U);
}

TEST(Json, WriterProducesStableDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("a \"quoted\"\nstring");
  json.key("count");
  json.value_u64(42);
  json.key("items");
  json.begin_array();
  json.value_u64(1);
  json.value(true);
  json.end_array();
  json.key("empty");
  json.begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.take(),
            "{\n"
            "  \"name\": \"a \\\"quoted\\\"\\nstring\",\n"
            "  \"count\": 42,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    true\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(Json, DoublesRoundTripBitExactly) {
  for (const double value : {0.1, 1.0 / 3.0, 1e-300, -2.5e300, 0.0, 123456789.123456789}) {
    JsonWriter json;
    json.begin_array();
    json.value(value);
    json.end_array();
    const JsonValue parsed = parse_json(json.take());
    ASSERT_EQ(parsed.as_array().size(), 1U);
    EXPECT_EQ(parsed.as_array()[0].as_f64(), value);
  }
}

TEST(Json, U64SurvivesBeyondDoubleExactRange) {
  const std::uint64_t big = 0xFFFF'FFFF'FFFF'FFFFULL;
  JsonWriter json;
  json.begin_array();
  json.value_u64(big);
  json.end_array();
  EXPECT_EQ(parse_json(json.take()).as_array()[0].as_u64(), big);
}

TEST(Json, ParserHandlesNestingAndEscapes) {
  const JsonValue root = parse_json(
      R"({"a": [1, -2.5, "x\ty"], "b": {"nested": null}, "c": false})");
  EXPECT_EQ(root.at("a").as_array().size(), 3U);
  EXPECT_EQ(root.at("a").as_array()[0].as_u64(), 1U);
  EXPECT_EQ(root.at("a").as_array()[1].as_f64(), -2.5);
  EXPECT_EQ(root.at("a").as_array()[2].as_string(), "x\ty");
  EXPECT_EQ(root.at("b").at("nested").kind, JsonValue::Kind::kNull);
  EXPECT_FALSE(root.at("c").as_bool());
  EXPECT_EQ(root.find("missing"), nullptr);
  EXPECT_THROW(root.at("missing"), CicError);
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad : {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
                          "[1] trailing", "{\"a\": 01x}", "nan"}) {
    EXPECT_THROW(parse_json(bad), CicError) << bad;
  }
}

TEST(Json, DeepNestingThrowsInsteadOfOverflowingTheStack) {
  const std::string deep(100000, '[');
  EXPECT_THROW(parse_json(deep), CicError);
}

// --- wire framing (worker-session pipes) --------------------------------

TEST(Wire, FramesRoundTripIncludingEmbeddedNewlines) {
  FrameReader reader;
  const std::string a = "{\n  \"k\": 1\n}\n";  // JsonWriter-style multi-line payload
  const std::string b = "";                     // empty payloads are legal
  reader.feed(wire_frame(a) + wire_frame(b));
  std::string payload, error;
  ASSERT_EQ(reader.next(&payload, &error), FrameReader::Status::kFrame) << error;
  EXPECT_EQ(payload, a);
  ASSERT_EQ(reader.next(&payload, &error), FrameReader::Status::kFrame) << error;
  EXPECT_EQ(payload, b);
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kNeedMore);
  EXPECT_FALSE(reader.has_partial());
}

TEST(Wire, ByteAtATimeFeedingCompletesExactlyAtTheFrameBoundary) {
  const std::string frame = wire_frame("hello worker");
  FrameReader reader;
  std::string payload, error;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(std::string_view(&frame[i], 1));
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kNeedMore) << i;
    EXPECT_TRUE(reader.has_partial());
  }
  reader.feed(std::string_view(&frame.back(), 1));
  ASSERT_EQ(reader.next(&payload, &error), FrameReader::Status::kFrame) << error;
  EXPECT_EQ(payload, "hello worker");
}

TEST(Wire, CorruptedPayloadFailsTheChecksum) {
  std::string frame = wire_frame("important bytes");
  frame[frame.size() - 3] ^= 0x01;  // flip a payload bit, keep framing intact
  FrameReader reader;
  reader.feed(frame);
  std::string payload, error;
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kBad);
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(Wire, GarbageOversizedAndTruncationAreAllFatal) {
  {
    FrameReader reader;  // garbage line where a header should be
    reader.feed("this is not a frame\n");
    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kBad);
    EXPECT_NE(error.find("not a cicmon-wire-1 frame"), std::string::npos) << error;
  }
  {
    FrameReader reader;  // a length field promising an absurd record
    reader.feed("cicmon-wire-1 99999999 0000000000000000\n");
    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kBad);
    EXPECT_NE(error.find("oversized"), std::string::npos) << error;
  }
  {
    FrameReader reader;  // binary noise with no newline must not buffer forever
    reader.feed(std::string(200, '\x7F'));
    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kBad);
  }
  {
    FrameReader reader;  // a frame cut off mid-payload: visible as a partial at EOF
    const std::string frame = wire_frame("cut me off");
    reader.feed(std::string_view(frame).substr(0, frame.size() / 2));
    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kNeedMore);
    EXPECT_TRUE(reader.has_partial());  // the mid-record-death signature
  }
}

TEST(Wire, ViolationsAreSticky) {
  FrameReader reader;
  reader.feed("garbage\n");
  std::string payload, error;
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kBad);
  // A valid frame after the violation must NOT resurrect the stream: after
  // desync there is no trustworthy record boundary.
  reader.feed(wire_frame("too late"));
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::kBad);
}

TEST(Wire, ChecksumDetectsTranspositionAndIsStable) {
  EXPECT_NE(wire_checksum("ab"), wire_checksum("ba"));
  EXPECT_EQ(wire_checksum("cicmon"), wire_checksum("cicmon"));
  EXPECT_THROW(wire_frame(std::string(kMaxWirePayload + 1, 'x')), CicError);
}

// --- chunked bulk records ------------------------------------------------

// Reassembles a payload sequence, expecting it to complete cleanly.
std::string assemble(const std::vector<std::string>& payloads) {
  ChunkAssembler assembler;
  std::string error;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const ChunkAssembler::Status status = assembler.feed(payloads[i], &error);
    if (i + 1 < payloads.size()) {
      EXPECT_EQ(status, ChunkAssembler::Status::kChunk) << error;
    } else {
      EXPECT_EQ(status, ChunkAssembler::Status::kDone) << error;
    }
  }
  return assembler.blob();
}

TEST(Chunks, SplitAndReassembleRoundTripAtEverySize) {
  // Empty, small, exactly at a boundary-ish size, and a blob big enough to
  // need several chunks — with binary bytes, newlines, and NULs throughout.
  std::string big(2 * kMaxWirePayload + 12345, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>((i * 131) ^ (i >> 7));
  }
  for (const std::string& blob : {std::string(), std::string("tiny\nblob\0x", 11), big}) {
    const std::vector<std::string> payloads = chunk_payloads(blob);
    ASSERT_GE(payloads.size(), 1U);
    for (const std::string& payload : payloads) {
      EXPECT_LE(payload.size(), kMaxWirePayload);  // every chunk frames legally
      EXPECT_TRUE(payload.starts_with(kChunkMagic));
      EXPECT_NO_THROW(wire_frame(payload));
    }
    EXPECT_EQ(assemble(payloads), blob);
  }
}

TEST(Chunks, AssemblerRejectsEverySequenceViolationStickily) {
  std::string blob(3 * kMaxWirePayload / 2, 'z');  // two chunks
  const std::vector<std::string> payloads = chunk_payloads(blob);
  ASSERT_EQ(payloads.size(), 2U);

  // Reordered.
  {
    ChunkAssembler assembler;
    std::string error;
    EXPECT_EQ(assembler.feed(payloads[1], &error), ChunkAssembler::Status::kBad);
    EXPECT_EQ(assembler.feed(payloads[0], &error), ChunkAssembler::Status::kBad);  // sticky
  }
  // Duplicated.
  {
    ChunkAssembler assembler;
    std::string error;
    EXPECT_EQ(assembler.feed(payloads[0], &error), ChunkAssembler::Status::kChunk);
    EXPECT_EQ(assembler.feed(payloads[0], &error), ChunkAssembler::Status::kBad);
  }
  // Trailing chunk after completion.
  {
    ChunkAssembler assembler;
    std::string error;
    EXPECT_EQ(assembler.feed(payloads[0], &error), ChunkAssembler::Status::kChunk);
    EXPECT_EQ(assembler.feed(payloads[1], &error), ChunkAssembler::Status::kDone);
    EXPECT_EQ(assembler.feed(payloads[1], &error), ChunkAssembler::Status::kBad);
  }
  // Inconsistent total: a chunk from a different (single-chunk) sequence.
  {
    ChunkAssembler assembler;
    std::string error;
    EXPECT_EQ(assembler.feed(payloads[0], &error), ChunkAssembler::Status::kChunk);
    EXPECT_EQ(assembler.feed(chunk_payloads("other")[0], &error),
              ChunkAssembler::Status::kBad);
  }
  // Corrupt data under an intact header: the per-chunk checksum catches what
  // the framing layer no longer covers.
  {
    std::string corrupt = payloads[0];
    corrupt[corrupt.size() - 1] ^= 0x01;
    ChunkAssembler assembler;
    std::string error;
    EXPECT_EQ(assembler.feed(corrupt, &error), ChunkAssembler::Status::kBad);
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  }
  // Garbage that is not a chunk at all.
  {
    ChunkAssembler assembler;
    std::string error;
    EXPECT_EQ(assembler.feed("definitely not a chunk", &error), ChunkAssembler::Status::kBad);
  }
}

}  // namespace
}  // namespace cicmon::support
