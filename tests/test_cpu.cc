// CPU tests: instruction semantics through the microoperation programs,
// syscalls, the timing model, and the monitoring integration.
#include <gtest/gtest.h>

#include "casm/builder.h"
#include "cpu/cpu.h"
#include "cpu/snapshot.h"

namespace cicmon::cpu {
namespace {

using casm_::Asm;
using casm_::Label;
using namespace cicmon::isa;

RunResult run(Asm& a, const CpuConfig& config = {}) {
  const casm_::Image image = a.finalize();
  Cpu cpu(config, image);
  return cpu.run();
}

// Runs a fragment that leaves its result in $t0 and checks it.
void expect_t0(void (*body)(Asm&), std::uint32_t expected) {
  Asm a;
  a.func("main");
  body(a);
  a.check_eq(kT0, expected);
  a.sys_exit(0);
  const RunResult r = run(a);
  EXPECT_EQ(r.reason, ExitReason::kExit)
      << "observed " << r.check_observed << " expected " << r.check_expected;
}

TEST(Semantics, AluImmediates) {
  expect_t0([](Asm& a) { a.li(kT0, 0); a.addiu(kT0, kT0, -5); }, 0xFFFFFFFB);
  expect_t0([](Asm& a) { a.li(kT1, 0xF0); a.andi(kT0, kT1, 0x3C); }, 0x30);
  expect_t0([](Asm& a) { a.li(kT1, 0xF0); a.ori(kT0, kT1, 0x0F); }, 0xFF);
  expect_t0([](Asm& a) { a.li(kT1, 0xFF); a.xori(kT0, kT1, 0x0F); }, 0xF0);
  expect_t0([](Asm& a) { a.lui(kT0, 0x1234); }, 0x12340000);
  expect_t0([](Asm& a) { a.li(kT1, 3); a.slti(kT0, kT1, 7); }, 1);
  expect_t0([](Asm& a) { a.li(kT1, static_cast<std::uint32_t>(-1)); a.sltiu(kT0, kT1, 7); }, 0);
}

TEST(Semantics, AluThreeRegister) {
  expect_t0([](Asm& a) { a.li(kT1, 7); a.li(kT2, 8); a.addu(kT0, kT1, kT2); }, 15);
  expect_t0([](Asm& a) { a.li(kT1, 7); a.li(kT2, 8); a.subu(kT0, kT1, kT2); }, 0xFFFFFFFF);
  expect_t0([](Asm& a) { a.li(kT1, 0xFF); a.li(kT2, 0x0F); a.and_(kT0, kT1, kT2); }, 0x0F);
  expect_t0([](Asm& a) { a.li(kT1, 0xF0); a.li(kT2, 0x0F); a.or_(kT0, kT1, kT2); }, 0xFF);
  expect_t0([](Asm& a) { a.li(kT1, 0xFF); a.li(kT2, 0xF0); a.xor_(kT0, kT1, kT2); }, 0x0F);
  expect_t0([](Asm& a) { a.li(kT1, 0); a.li(kT2, 0); a.nor(kT0, kT1, kT2); }, 0xFFFFFFFF);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, static_cast<std::uint32_t>(-2));
        a.li(kT2, 1);
        a.slt(kT0, kT1, kT2);
      },
      1);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, static_cast<std::uint32_t>(-2));
        a.li(kT2, 1);
        a.sltu(kT0, kT1, kT2);
      },
      0);
}

TEST(Semantics, Shifts) {
  expect_t0([](Asm& a) { a.li(kT1, 1); a.sll(kT0, kT1, 31); }, 0x80000000);
  expect_t0([](Asm& a) { a.li(kT1, 0x80000000); a.srl(kT0, kT1, 31); }, 1);
  expect_t0([](Asm& a) { a.li(kT1, 0x80000000); a.sra(kT0, kT1, 31); }, 0xFFFFFFFF);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 1);
        a.li(kT2, 4);
        a.sllv(kT0, kT1, kT2);
      },
      16);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0x80000000);
        a.li(kT2, 4);
        a.srav(kT0, kT1, kT2);
      },
      0xF8000000);
}

TEST(Semantics, MultiplyDivideHiLo) {
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 100000);
        a.li(kT2, 100000);
        a.multu(kT1, kT2);
        a.mfhi(kT0);
      },
      static_cast<std::uint32_t>((100000ULL * 100000ULL) >> 32));
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 47);
        a.li(kT2, 5);
        a.divu(kT1, kT2);
        a.mflo(kT0);
      },
      9);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 47);
        a.li(kT2, 5);
        a.divu(kT1, kT2);
        a.mfhi(kT0);
      },
      2);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0x1234);
        a.mthi(kT1);
        a.mfhi(kT0);
      },
      0x1234);
}

TEST(Semantics, LoadsAndStores) {
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0xDEADBEEF);
        a.sw(kT1, -4, kSp);
        a.lw(kT0, -4, kSp);
      },
      0xDEADBEEF);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0x80);
        a.sb(kT1, -8, kSp);
        a.lb(kT0, -8, kSp);  // sign-extends
      },
      0xFFFFFF80);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0x80);
        a.sb(kT1, -8, kSp);
        a.lbu(kT0, -8, kSp);
      },
      0x80);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0x8001);
        a.sh(kT1, -12, kSp);
        a.lh(kT0, -12, kSp);
      },
      0xFFFF8001);
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 0x8001);
        a.sh(kT1, -12, kSp);
        a.lhu(kT0, -12, kSp);
      },
      0x8001);
}

TEST(Semantics, RegisterZeroIsHardwired) {
  expect_t0(
      [](Asm& a) {
        a.li(kT1, 99);
        a.addu(kZero, kT1, kT1);  // write attempt must be ignored
        a.move(kT0, kZero);
      },
      0);
}

TEST(Semantics, BranchesAndCalls) {
  Asm a;
  a.func("main");
  a.li(kT0, 0);
  a.li(kA0, 4);
  a.call("twice");
  a.move(kT0, kV0);
  a.check_eq(kT0, 8);
  a.sys_exit(0);
  a.func("twice");
  a.addu(kV0, kA0, kA0);
  a.ret();
  EXPECT_EQ(run(a).reason, ExitReason::kExit);
}

TEST(Semantics, JalLinksReturnAddress) {
  Asm a;
  a.func("main");
  a.call("probe");
  a.sys_exit(0);
  a.func("probe");
  // $ra must point at the instruction after the jal (main+4).
  a.move(kT0, kRa);
  a.check_eq(kT0, casm_::kTextBase + 4);
  a.ret();
  EXPECT_EQ(run(a).reason, ExitReason::kExit);
}

TEST(Syscalls, ConsoleOutput) {
  Asm a;
  a.func("main");
  a.li(kA0, 42);
  a.sys(casm_::Sys::kPutInt);
  a.sys_print_char('\n');
  a.li(kA0, static_cast<std::uint32_t>(-7));
  a.sys(casm_::Sys::kPutInt);
  a.sys_exit(3);
  const RunResult r = run(a);
  EXPECT_EQ(r.console, "42\n-7");
  EXPECT_EQ(r.exit_code, 3U);
}

TEST(Syscalls, CheckTrapRecordsValues) {
  Asm a;
  a.func("main");
  a.li(kT0, 5);
  a.check_eq(kT0, 6);
  a.sys_exit(0);
  const RunResult r = run(a);
  EXPECT_EQ(r.reason, ExitReason::kSelfCheckFailed);
  EXPECT_EQ(r.check_observed, 5U);
  EXPECT_EQ(r.check_expected, 6U);
}

TEST(Traps, IllegalInstruction) {
  Asm a;
  a.func("main");
  a.emit(0xFFFFFFFF);  // decodes to kInvalid
  a.sys_exit(0);
  EXPECT_EQ(run(a).reason, ExitReason::kIllegalInstruction);
}

TEST(Traps, BreakIsIllegal) {
  Asm a;
  a.func("main");
  a.break_();
  a.sys_exit(0);
  EXPECT_EQ(run(a).reason, ExitReason::kIllegalInstruction);
}

TEST(Traps, WildPcOnJumpOutsideText) {
  Asm a;
  a.func("main");
  a.li(kT0, 0x10000000);  // data segment
  a.jr(kT0);
  EXPECT_EQ(run(a).reason, ExitReason::kWildPc);
}

TEST(Traps, WatchdogStopsInfiniteLoop) {
  Asm a;
  a.func("main");
  Label spin = a.bound_label();
  a.b(spin);
  CpuConfig config;
  config.max_instructions = 1000;
  EXPECT_EQ(run(a, config).reason, ExitReason::kWatchdog);
}

TEST(Timing, StraightLineCpiIsOne) {
  Asm a;
  a.func("main");
  for (int i = 0; i < 20; ++i) a.addiu(kT0, kT0, 1);
  a.sys_exit(0);
  const RunResult r = run(a);
  // No taken branches, no loads: cycles == instructions.
  EXPECT_EQ(r.cycles, r.instructions);
}

TEST(Timing, TakenBranchCostsBubble) {
  Asm a;
  a.func("main");
  Label target = a.label();
  a.b(target);
  a.bind(target);
  a.sys_exit(0);
  const RunResult r = run(a);
  EXPECT_EQ(r.branch_bubbles, 1U);
  EXPECT_EQ(r.cycles, r.instructions + 1);
}

TEST(Timing, NotTakenBranchIsFree) {
  Asm a;
  a.func("main");
  a.li(kT0, 1);
  Label skip = a.label();
  a.beqz(kT0, skip);  // not taken
  a.bind(skip);
  a.sys_exit(0);
  EXPECT_EQ(run(a).branch_bubbles, 0U);
}

TEST(Timing, LoadUseStalls) {
  Asm a;
  a.func("main");
  a.lw(kT0, -4, kSp);
  a.addu(kT1, kT0, kT0);  // consumes the load next cycle
  a.sys_exit(0);
  EXPECT_EQ(run(a).load_use_stalls, 1U);

  Asm b;
  b.func("main");
  b.lw(kT0, -4, kSp);
  b.addiu(kT5, kT5, 1);   // unrelated filler
  b.addu(kT1, kT0, kT0);
  b.sys_exit(0);
  EXPECT_EQ(run(b).load_use_stalls, 0U);
}

TEST(Timing, StoreDataDoesNotStall) {
  Asm a;
  a.func("main");
  a.lw(kT0, -4, kSp);
  a.sw(kT0, -8, kSp);  // store data forwards at MEM
  a.sys_exit(0);
  EXPECT_EQ(run(a).load_use_stalls, 0U);
}

TEST(Timing, MulDivLatencyStallsEarlyMfhi) {
  Asm a;
  a.func("main");
  a.li(kT1, 3);
  a.mult(kT1, kT1);
  a.mflo(kT0);  // immediately after: must stall
  a.sys_exit(0);
  EXPECT_GT(run(a).muldiv_stalls, 0U);

  Asm b;
  b.func("main");
  b.li(kT1, 3);
  b.mult(kT1, kT1);
  for (int i = 0; i < 8; ++i) b.addiu(kT5, kT5, 1);
  b.mflo(kT0);  // latency already covered
  b.sys_exit(0);
  EXPECT_EQ(run(b).muldiv_stalls, 0U);
}

TEST(Timing, ICacheStallsCharged) {
  Asm a;
  a.func("main");
  for (int i = 0; i < 32; ++i) a.addiu(kT0, kT0, 1);
  a.sys_exit(0);
  CpuConfig config;
  config.icache.enabled = true;
  config.icache.miss_penalty = 4;
  const RunResult r = run(a, config);
  EXPECT_GT(r.icache_stall_cycles, 0U);
  EXPECT_EQ(r.icache_stall_cycles % 4, 0U);
}

TEST(Monitoring, TransparentToProgramResults) {
  auto build = [] {
    Asm a;
    a.func("main");
    a.li(kT0, 6);
    a.li(kT1, 1);
    Label loop = a.bound_label();
    a.li(kT2, 3);
    a.multu(kT1, kT2);
    a.mflo(kT1);
    a.addiu(kT0, kT0, -1);
    a.bnez(kT0, loop);
    a.move(kA0, kT1);
    a.sys(casm_::Sys::kPutInt);
    a.sys_exit(0);
    return a.finalize();
  };
  const casm_::Image image = build();

  CpuConfig off;
  Cpu plain(off, image);
  const RunResult r_off = plain.run();

  CpuConfig on;
  on.monitoring = true;
  on.cic.iht_entries = 8;
  Cpu monitored(on, image);
  const RunResult r_on = monitored.run();

  EXPECT_EQ(r_off.console, r_on.console);
  EXPECT_EQ(r_off.instructions, r_on.instructions);  // same dynamic stream
  EXPECT_EQ(r_on.console, "729");                    // 3^6
  EXPECT_GT(r_on.iht.lookups, 0U);
  EXPECT_EQ(r_off.iht.lookups, 0U);
  // The only cycle difference is the OS exception handling.
  EXPECT_EQ(r_on.app_cycles(), r_off.cycles);
}

TEST(Monitoring, LookupKeysMatchBlockBoundaries) {
  Asm a;
  a.func("main");
  a.li(kT0, 1);            // 0x400000
  Label skip = a.label();
  a.beqz(kZero, skip);     // 0x400004: taken branch ends block [0x400000, 0x400004]
  a.nop();                 // 0x400008: skipped
  a.bind(skip);
  a.sys_exit(0);
  const casm_::Image image = a.finalize();

  CpuConfig config;
  config.monitoring = true;
  Cpu cpu(config, image);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> keys;
  cpu.set_lookup_observer([&](std::uint32_t s, std::uint32_t e) { keys.emplace_back(s, e); });
  cpu.run();
  ASSERT_EQ(keys.size(), 1U);
  EXPECT_EQ(keys[0].first, casm_::kTextBase);
  EXPECT_EQ(keys[0].second, casm_::kTextBase + 4);
}

TEST(Monitoring, SpecialRegistersFollowFigure3) {
  Asm a;
  a.func("main");
  a.li(kT0, 1);
  a.sys_exit(0);
  const casm_::Image image = a.finalize();
  CpuConfig config;
  config.monitoring = true;
  Cpu cpu(config, image);
  cpu.step();  // li expands to a single addiu; executes the first instruction
  EXPECT_EQ(cpu.special(uop::SpecialReg::kSta), casm_::kTextBase);
  EXPECT_EQ(cpu.special(uop::SpecialReg::kRhash), image.text[0]);  // XOR of one word
  EXPECT_EQ(cpu.special(uop::SpecialReg::kPpc), casm_::kTextBase);
}

TEST(Monitoring, PostIdFaultEscapesMonitor) {
  Asm a;
  a.func("main");
  a.li(kT0, 5);
  a.li(kT1, 5);   // dynamic index 1: will be corrupted post-ID
  a.addu(kT2, kT0, kT1);
  a.check_eq(kT2, 10);
  a.sys_exit(0);
  const casm_::Image image = a.finalize();

  CpuConfig config;
  config.monitoring = true;
  Cpu cpu(config, image);
  cpu.set_post_id_fault({1, 1U << 16});  // flip an immediate bit after ID
  const RunResult r = cpu.run();
  // The monitor saw the clean word, so no mismatch: the corruption surfaces
  // as a wrong result instead (the §3.2 limitation).
  EXPECT_EQ(r.reason, ExitReason::kSelfCheckFailed);
  EXPECT_EQ(r.iht.mismatches, 0U);
}

// Every observable field that the experiment layers consume. Used to assert
// the predecode cache never changes simulated behaviour.
void expect_results_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.monitor_cause, b.monitor_cause);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.monitor_cycles, b.monitor_cycles);
  EXPECT_EQ(a.branch_bubbles, b.branch_bubbles);
  EXPECT_EQ(a.load_use_stalls, b.load_use_stalls);
  EXPECT_EQ(a.muldiv_stalls, b.muldiv_stalls);
  EXPECT_EQ(a.icache_stall_cycles, b.icache_stall_cycles);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.iht.lookups, b.iht.lookups);
  EXPECT_EQ(a.iht.hits, b.iht.hits);
  EXPECT_EQ(a.iht.misses, b.iht.misses);
  EXPECT_EQ(a.iht.mismatches, b.iht.mismatches);
  EXPECT_EQ(a.os.miss_exceptions, b.os.miss_exceptions);
  EXPECT_EQ(a.os.mismatch_exceptions, b.os.mismatch_exceptions);
  EXPECT_EQ(a.os.refills, b.os.refills);
  EXPECT_EQ(a.os.records_loaded, b.os.records_loaded);
  EXPECT_EQ(a.os.fht_probes, b.os.fht_probes);
  EXPECT_EQ(a.os.cycles_charged, b.os.cycles_charged);
  EXPECT_EQ(a.console, b.console);
  EXPECT_EQ(a.check_observed, b.check_observed);
  EXPECT_EQ(a.check_expected, b.check_expected);
}

casm_::Image checked_sum_loop() {
  Asm a;
  a.func("main");
  a.li(kT0, 20);
  a.li(kT1, 0);
  Label loop = a.bound_label();
  a.addu(kT1, kT1, kT0);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, loop);
  a.check_eq(kT1, 210);
  a.sys_exit(0);
  return a.finalize();
}

TEST(PredecodeCache, CleanMonitoredRunIdenticalOnAndOff) {
  const casm_::Image image = checked_sum_loop();
  CpuConfig on;
  on.monitoring = true;
  on.cic.iht_entries = 8;
  CpuConfig off = on;
  off.predecode_cache = false;
  Cpu cached(on, image);
  Cpu plain(off, image);
  expect_results_identical(cached.run(), plain.run());
}

TEST(PredecodeCache, TextFlipDetectionIdenticalOnAndOff) {
  // Flip a bit of the loop body *after* the first iterations populated the
  // predecode cache would be ideal, but memory faults are injected before
  // run(); what matters is that the cached entry for the clean word misses
  // its tag once the corrupted word arrives and the detection results —
  // latency (cycles), exit reason, IHT stats — stay bit-identical.
  for (const bool cache_on : {true, false}) {
    SCOPED_TRACE(cache_on ? "cache on" : "cache off");
    const casm_::Image image = checked_sum_loop();
    CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = 8;
    config.predecode_cache = cache_on;
    Cpu cpu(config, image);
    const std::uint32_t addr = casm_::kTextBase + 8;
    cpu.memory().write32(addr, cpu.memory().read32(addr) ^ (1U << 11));  // rd bit: stays valid
    const RunResult r = cpu.run();
    EXPECT_EQ(r.reason, ExitReason::kMonitorTerminated);
    EXPECT_NE(r.monitor_cause, os::TerminationCause::kNone);
  }
  // And field-by-field equality of the two tampered runs.
  const casm_::Image image = checked_sum_loop();
  CpuConfig on;
  on.monitoring = true;
  on.cic.iht_entries = 8;
  CpuConfig off = on;
  off.predecode_cache = false;
  Cpu cached(on, image);
  Cpu plain(off, image);
  for (Cpu* cpu : {&cached, &plain}) {
    const std::uint32_t addr = casm_::kTextBase + 8;
    cpu->memory().write32(addr, cpu->memory().read32(addr) ^ (1U << 11));
  }
  expect_results_identical(cached.run(), plain.run());
}

// Bus tamper that corrupts one specific dynamic fetch — the cache-resident
// copy (and any predecoded entry) saw the clean word.
class OneShotTamper : public mem::BusTamper {
 public:
  explicit OneShotTamper(std::uint64_t trigger, std::uint32_t mask)
      : trigger_(trigger), mask_(mask) {}
  std::uint32_t on_transfer(std::uint32_t, std::uint32_t word) override {
    return transfers_++ == trigger_ ? word ^ mask_ : word;
  }

 private:
  std::uint64_t transfers_ = 0;
  std::uint64_t trigger_;
  std::uint32_t mask_;
};

TEST(PredecodeCache, BusTamperMidRunIdenticalOnAndOff) {
  // The tampered word arrives at an address whose predecode slot already
  // holds the clean decode: the tag mismatch must force a fresh decode, so
  // the corrupted instruction executes (and is detected) exactly as without
  // the cache.
  const casm_::Image image = checked_sum_loop();
  RunResult results[2];
  for (const bool cache_on : {true, false}) {
    CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = 8;
    config.predecode_cache = cache_on;
    Cpu cpu(config, image);
    OneShotTamper tamper(/*trigger=*/9, /*mask=*/1U << 11);  // mid-loop fetch
    cpu.fetch_path().set_bus_tamper(&tamper);
    results[cache_on ? 0 : 1] = cpu.run();
  }
  EXPECT_EQ(results[0].reason, ExitReason::kMonitorTerminated);
  expect_results_identical(results[0], results[1]);
}

TEST(PredecodeCache, PostIdFaultIdenticalOnAndOff) {
  // The post-ID XOR rewrites the word *after* the hash saw it; the predecode
  // slot is keyed by the pipeline's post-fault word, so the A/B runs must
  // agree on the (undetected) wrong-output outcome.
  const casm_::Image image = checked_sum_loop();
  RunResult results[2];
  for (const bool cache_on : {true, false}) {
    CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = 8;
    config.predecode_cache = cache_on;
    Cpu cpu(config, image);
    cpu.set_post_id_fault({4, 1U << 16});
    results[cache_on ? 0 : 1] = cpu.run();
  }
  EXPECT_EQ(results[0].iht.mismatches, 0U);  // escaped the monitor (§3.2)
  expect_results_identical(results[0], results[1]);
}

TEST(Monitoring, GprAndMemoryInspection) {
  Asm a;
  a.func("main");
  a.li(kT3, 77);
  a.sys_exit(0);
  const casm_::Image image = a.finalize();
  Cpu cpu(CpuConfig{}, image);
  cpu.run();
  EXPECT_EQ(cpu.gpr(kT3), 77U);
  EXPECT_FALSE(cpu.running());
}

// A program long enough to cut mid-stream, with memory writes (snapshot
// delta pages), console output and a self-check (both live in RunResult, so
// a restore that lost either would fail the equality below).
casm_::Image snapshot_program() {
  Asm a;
  a.data_symbol("acc");
  a.data_word(0);
  a.func("main");
  a.la(kT2, "acc");
  a.li(kT0, 30);
  Label loop = a.bound_label();
  a.lw(kT1, 0, kT2);
  a.addu(kT1, kT1, kT0);
  a.sw(kT1, 0, kT2);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, loop);
  a.lw(kA0, 0, kT2);
  a.sys(casm_::Sys::kPutInt);
  a.check_eq(kA0, 465);
  a.sys_exit(0);
  return a.finalize();
}

TEST(Snapshot, RestoredRunMatchesUninterruptedRun) {
  // The checkpoint contract at CPU granularity: stepping K instructions,
  // saving a Snapshot, restoring it into a *fresh* CPU and running must
  // produce a RunResult bit-identical to the uninterrupted run — for every
  // engine, with and without the monitor, with and without the I-cache.
  const casm_::Image image = snapshot_program();
  for (const Engine engine : {Engine::kSwitch, Engine::kThreaded}) {
    for (const bool monitoring : {false, true}) {
      for (const bool icache : {false, true}) {
        CpuConfig config;
        config.engine = engine;
        config.monitoring = monitoring;
        config.cic.iht_entries = 8;
        config.icache.enabled = icache;
        const LoadedImage loaded = preload_image(config, image);
        Cpu straight(config, image, &loaded);
        const RunResult want = straight.run();
        ASSERT_EQ(want.reason, ExitReason::kExit);
        ASSERT_EQ(want.console, "465");

        for (const std::uint64_t cut : {1, 17, 64, 140}) {
          Cpu prefix(config, image, &loaded);
          while (prefix.instructions_retired() < cut) {
            ASSERT_FALSE(prefix.step().has_value()) << "program shorter than cut " << cut;
          }
          Snapshot snapshot;
          prefix.save_snapshot(&snapshot);
          Cpu resumed(config, image, &loaded);
          resumed.restore_snapshot(snapshot);
          const RunResult got = resumed.run();
          EXPECT_TRUE(got == want)
              << "engine " << engine_name(engine) << ", monitor " << monitoring << ", icache "
              << icache << ", cut at " << cut << ": console '" << got.console << "' vs '"
              << want.console << "', " << got.instructions << " vs " << want.instructions
              << " instructions, " << got.cycles << " vs " << want.cycles << " cycles";
        }
      }
    }
  }
}

TEST(Snapshot, PreloadedImageMatchesFreshConstruction) {
  // Trials read the program through a shared immutable post-loader image;
  // that COW path must be invisible next to the classic per-CPU loader.
  const casm_::Image image = snapshot_program();
  for (const bool monitoring : {false, true}) {
    CpuConfig config;
    config.monitoring = monitoring;
    config.cic.iht_entries = 8;
    Cpu classic(config, image);
    const LoadedImage loaded = preload_image(config, image);
    Cpu shared_a(config, image, &loaded);
    Cpu shared_b(config, image, &loaded);  // the base serves many CPUs at once
    const RunResult want = classic.run();
    EXPECT_TRUE(shared_a.run() == want) << "monitor " << monitoring;
    EXPECT_TRUE(shared_b.run() == want) << "monitor " << monitoring;
  }
}

TEST(Snapshot, SnapshotZeroRestoresToFreshState) {
  // Snapshot 0 (taken before the first step) restored into a CPU that has
  // already diverged must bring it back to the clean start.
  const casm_::Image image = snapshot_program();
  CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  const LoadedImage loaded = preload_image(config, image);
  Cpu reference(config, image, &loaded);
  const RunResult want = reference.run();

  Cpu cpu(config, image, &loaded);
  Snapshot zero;
  cpu.save_snapshot(&zero);
  for (int i = 0; i < 25; ++i) ASSERT_FALSE(cpu.step().has_value());
  cpu.memory().write32(0x9000, 0xDEAD);  // dirty a page the program never uses
  cpu.restore_snapshot(zero);
  EXPECT_EQ(cpu.instructions_retired(), 0U);
  EXPECT_EQ(cpu.memory().read32(0x9000), 0U);
  EXPECT_TRUE(cpu.run() == want);
}

}  // namespace
}  // namespace cicmon::cpu
