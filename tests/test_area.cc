// Area/timing model tests: the structural properties behind Table 2.
#include <gtest/gtest.h>

#include "area/area_model.h"
#include "area/rtl_emit.h"
#include "support/error.h"

namespace cicmon::area {
namespace {

TEST(AreaModel, BaselineLandsOnPaperScale) {
  const TechLibrary tech = TechLibrary::tsmc180();
  const DesignReport base = evaluate_design(tech, 0, hash::HashKind::kXor);
  // The paper reports 2,136,594 cell-area units for the baseline; the
  // inventory should land in that decade (calibration, not curve-fitting).
  EXPECT_GT(base.cell_area_um2, 1.0e6);
  EXPECT_LT(base.cell_area_um2, 4.0e6);
}

TEST(AreaModel, AreaGrowsLinearlyInEntries) {
  const TechLibrary tech = TechLibrary::tsmc180();
  const double a1 = evaluate_design(tech, 1, hash::HashKind::kXor).cell_area_um2;
  const double a8 = evaluate_design(tech, 8, hash::HashKind::kXor).cell_area_um2;
  const double a16 = evaluate_design(tech, 16, hash::HashKind::kXor).cell_area_um2;
  const double slope_1_8 = (a8 - a1) / 7.0;
  const double slope_8_16 = (a16 - a8) / 8.0;
  EXPECT_NEAR(slope_1_8, slope_8_16, slope_1_8 * 1e-9);  // exactly linear
  EXPECT_GT(slope_1_8, 0.0);
}

TEST(AreaModel, OverheadOrderingMatchesTable2) {
  const TechLibrary tech = TechLibrary::tsmc180();
  const auto rows = table2_rows(tech, {1, 8, 16}, hash::HashKind::kXor);
  ASSERT_EQ(rows.size(), 4U);
  EXPECT_EQ(rows[0].name, "baseline");
  EXPECT_LT(rows[1].area_overhead_vs_baseline, rows[2].area_overhead_vs_baseline);
  EXPECT_LT(rows[2].area_overhead_vs_baseline, rows[3].area_overhead_vs_baseline);
  // Paper: 2.7% / 16.5% / 28.8%. Same regime, monotone, single digits for
  // one entry and tens of percent by 16.
  EXPECT_GT(rows[1].area_overhead_vs_baseline, 0.005);
  EXPECT_LT(rows[1].area_overhead_vs_baseline, 0.08);
  EXPECT_GT(rows[3].area_overhead_vs_baseline, 0.10);
  EXPECT_LT(rows[3].area_overhead_vs_baseline, 0.45);
}

TEST(AreaModel, CycleTimeFlatAcrossVariants) {
  const TechLibrary tech = TechLibrary::tsmc180();
  const auto rows = table2_rows(tech, {1, 8, 16, 32}, hash::HashKind::kXor);
  for (const DesignReport& row : rows) {
    EXPECT_NEAR(row.period_overhead_vs_baseline, 0.0, 0.011) << row.name;
  }
}

TEST(AreaModel, MinPeriodNearPaperValue) {
  const TechLibrary tech = TechLibrary::tsmc180();
  const DesignReport base = evaluate_design(tech, 0, hash::HashKind::kXor);
  EXPECT_GT(base.min_period_ns, 30.0);  // paper: 37.90 ns
  EXPECT_LT(base.min_period_ns, 45.0);
}

TEST(AreaModel, MonitoringPathsHaveSlack) {
  const hash::HashHwProfile xor_profile =
      hash::make_hash_unit(hash::HashKind::kXor)->hw_profile();
  const TimingPaths p = stage_paths(true, 16, xor_profile);
  EXPECT_LT(p.if_path, p.ex_path);
  EXPECT_LT(p.id_path, p.ex_path);
  EXPECT_DOUBLE_EQ(p.critical(), p.ex_path);
}

TEST(AreaModel, DeeperHashStillHidesInIfSlack) {
  for (hash::HashKind kind :
       {hash::HashKind::kXor, hash::HashKind::kRotXor, hash::HashKind::kCrc32,
        hash::HashKind::kFletcher32}) {
    const auto profile = hash::make_hash_unit(kind)->hw_profile();
    const TimingPaths p = stage_paths(true, 16, profile);
    EXPECT_LT(p.if_path, p.ex_path) << hash_kind_name(kind);
  }
}

TEST(AreaModel, BiggerIhtLengthensIdPathSlightly) {
  const auto profile = hash::make_hash_unit(hash::HashKind::kXor)->hw_profile();
  const double id1 = stage_paths(true, 1, profile).id_path;
  const double id32 = stage_paths(true, 32, profile).id_path;
  EXPECT_GE(id32, id1);
  EXPECT_LT(id32 - id1, 20.0);  // log-depth priority logic only
}

TEST(AreaModel, CicInventoryValidatesEntries) {
  EXPECT_THROW(cic_inventory(0, hash::HashHwProfile{}), support::CicError);
}

TEST(AreaModel, BreakdownAbsorbPrefixes) {
  AreaBreakdown a;
  a.add("x", 10);
  AreaBreakdown b;
  b.add("y", 5);
  a.absorb(b, "cic/");
  EXPECT_DOUBLE_EQ(a.total_ge(), 15.0);
  EXPECT_EQ(a.components[1].name, "cic/y");
}

TEST(AreaModel, HashUnitAreaAffectsTotal) {
  const TechLibrary tech = TechLibrary::tsmc180();
  const double with_xor = evaluate_design(tech, 8, hash::HashKind::kXor).cell_area_um2;
  const double with_crc = evaluate_design(tech, 8, hash::HashKind::kCrc32).cell_area_um2;
  EXPECT_GT(with_crc, with_xor);  // CRC network is bigger than an XOR fold
}

TEST(RtlEmit, SketchContainsTheCicEntities) {
  const std::string vhdl = emit_vhdl_sketch(8, hash::HashKind::kXor);
  EXPECT_NE(vhdl.find("entity hashfu"), std::string::npos);
  EXPECT_NE(vhdl.find("entity ihtbb"), std::string::npos);
  EXPECT_NE(vhdl.find("entity cic_exceptions"), std::string::npos);
  EXPECT_NE(vhdl.find("ENTRIES : natural := 8"), std::string::npos);
  EXPECT_NE(vhdl.find("exception0"), std::string::npos);
  EXPECT_NE(vhdl.find("exception1"), std::string::npos);
}

TEST(RtlEmit, HashExpressionFollowsKind) {
  EXPECT_NE(emit_vhdl_sketch(4, hash::HashKind::kXor).find("rhash_q xor instr_word"),
            std::string::npos);
  EXPECT_NE(emit_vhdl_sketch(4, hash::HashKind::kRotXor).find("rhash_q(30 downto 0)"),
            std::string::npos);
}

}  // namespace
}  // namespace cicmon::area
