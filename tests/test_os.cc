// OS-model tests: the loader contract and the monitoring-exception handler.
#include <gtest/gtest.h>

#include "casm/builder.h"
#include "os/loader.h"
#include "os/monitor_os.h"
#include "support/error.h"

namespace cicmon::os {
namespace {

casm_::Image small_program() {
  casm_::Asm a;
  a.func("main");
  a.li(isa::kT0, 2);
  casm_::Label loop = a.bound_label();
  a.addiu(isa::kT0, isa::kT0, -1);
  a.bne(isa::kT0, isa::kZero, loop);
  a.sys_exit(0);
  return a.finalize();
}

cfg::FullHashTable fht_of(const casm_::Image& image) {
  return cfg::build_fht(image, *hash::make_hash_unit(hash::HashKind::kXor));
}

TEST(Loader, AttachThenLoadRoundTrips) {
  casm_::Image image = small_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  attach_fht(&image, *unit);
  ASSERT_NE(image.symbols.find(kFhtSymbol), image.symbols.end());

  mem::Memory memory;
  const LoadedProgram loaded = os_load(image, &memory, *unit);
  EXPECT_TRUE(loaded.fht_was_attached);
  EXPECT_EQ(loaded.entry, image.entry);
  const cfg::FullHashTable direct = fht_of(image);
  ASSERT_EQ(loaded.fht.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(loaded.fht.record(i), direct.record(i));
  }
}

TEST(Loader, AttachTwiceRejected) {
  casm_::Image image = small_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  attach_fht(&image, *unit);
  EXPECT_THROW(attach_fht(&image, *unit), support::CicError);
}

TEST(Loader, ComputesHashesWhenNothingAttached) {
  const casm_::Image image = small_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  mem::Memory memory;
  const LoadedProgram loaded = os_load(image, &memory, *unit);
  EXPECT_FALSE(loaded.fht_was_attached);
  EXPECT_EQ(loaded.fht.size(), fht_of(image).size());
}

TEST(Loader, BinaryInstructionsUntouchedByAttach) {
  // The scheme's headline property: attaching hashes must not change text.
  casm_::Image image = small_program();
  const std::vector<std::uint32_t> text_before = image.text;
  attach_fht(&image, *hash::make_hash_unit(hash::HashKind::kXor));
  EXPECT_EQ(image.text, text_before);
}

TEST(Monitor, BenignMissRefillsAndCharges) {
  const casm_::Image image = small_program();
  const cfg::FullHashTable fht = fht_of(image);
  const cfg::CheckRegion first = fht.record(0);

  OsConfig config;
  config.exception_cycles = 100;
  OsMonitor monitor(config, fht);
  cic::Iht iht(8, cic::ReplacePolicy::kLru);

  const ExceptionOutcome outcome =
      monitor.handle_hash_miss({first.start, first.end, first.hash}, &iht);
  EXPECT_FALSE(outcome.terminate);
  EXPECT_EQ(outcome.cycles, 100U);
  EXPECT_TRUE(iht.lookup(first.start, first.end, first.hash).match);
  EXPECT_EQ(monitor.stats().miss_exceptions, 1U);
  EXPECT_EQ(monitor.stats().refills, 1U);
  EXPECT_GE(monitor.stats().records_loaded, 1U);
}

TEST(Monitor, MissWithWrongHashTerminates) {
  const casm_::Image image = small_program();
  const cfg::FullHashTable fht = fht_of(image);
  const cfg::CheckRegion first = fht.record(0);
  OsMonitor monitor(OsConfig{}, fht);
  cic::Iht iht(4, cic::ReplacePolicy::kLru);

  const ExceptionOutcome outcome =
      monitor.handle_hash_miss({first.start, first.end, first.hash ^ 1}, &iht);
  EXPECT_TRUE(outcome.terminate);
  EXPECT_EQ(outcome.cause, TerminationCause::kFhtHashMismatch);
}

TEST(Monitor, UnknownBlockTerminates) {
  const casm_::Image image = small_program();
  OsMonitor monitor(OsConfig{}, fht_of(image));
  cic::Iht iht(4, cic::ReplacePolicy::kLru);
  const ExceptionOutcome outcome = monitor.handle_hash_miss({0x1000, 0x1008, 0}, &iht);
  EXPECT_TRUE(outcome.terminate);
  EXPECT_EQ(outcome.cause, TerminationCause::kNotInFht);
}

TEST(Monitor, MismatchAlwaysTerminates) {
  const casm_::Image image = small_program();
  OsMonitor monitor(OsConfig{}, fht_of(image));
  const ExceptionOutcome outcome = monitor.handle_hash_mismatch({1, 2, 3});
  EXPECT_TRUE(outcome.terminate);
  EXPECT_EQ(outcome.cause, TerminationCause::kHashMismatch);
  EXPECT_EQ(monitor.stats().mismatch_exceptions, 1U);
}

TEST(Monitor, ExceptionCostConfigurable) {
  const casm_::Image image = small_program();
  OsConfig config;
  config.exception_cycles = 250;
  OsMonitor monitor(config, fht_of(image));
  cic::Iht iht(4, cic::ReplacePolicy::kLru);
  const cfg::CheckRegion first = monitor.fht().record(0);
  const ExceptionOutcome outcome =
      monitor.handle_hash_miss({first.start, first.end, first.hash}, &iht);
  EXPECT_EQ(outcome.cycles, 250U);
  EXPECT_EQ(monitor.stats().cycles_charged, 250U);
}

TEST(Monitor, FhtProbeCostAdds) {
  const casm_::Image image = small_program();
  OsConfig config;
  config.exception_cycles = 100;
  config.fht_probe_cycles = 10;
  OsMonitor monitor(config, fht_of(image));
  cic::Iht iht(4, cic::ReplacePolicy::kLru);
  const cfg::CheckRegion first = monitor.fht().record(0);
  const ExceptionOutcome outcome =
      monitor.handle_hash_miss({first.start, first.end, first.hash}, &iht);
  EXPECT_GT(outcome.cycles, 100U);
}

TEST(Monitor, ReplaceHalfLoadsSeveralRecords) {
  // Build a program with several sequential blocks so the forward prefetch
  // has in-window records to load.
  casm_::Asm a;
  a.func("main");
  for (int block = 0; block < 6; ++block) {
    casm_::Label next = a.label();
    a.addiu(isa::kT0, isa::kT0, 1);
    a.beq(isa::kZero, isa::kZero, next);
    a.bind(next);
  }
  a.sys_exit(0);
  const casm_::Image image = a.finalize();
  const cfg::FullHashTable fht = fht_of(image);
  ASSERT_GE(fht.size(), 6U);

  OsConfig config;
  config.refill_mode = RefillMode::kReplaceHalfPrefetch;
  OsMonitor monitor(config, fht);
  cic::Iht iht(8, cic::ReplacePolicy::kLru);
  const cfg::CheckRegion first = monitor.fht().record(0);
  monitor.handle_hash_miss({first.start, first.end, first.hash}, &iht);
  EXPECT_GT(monitor.stats().records_loaded, 1U);
  EXPECT_LE(monitor.stats().records_loaded, 4U);  // half of 8
  EXPECT_GE(iht.valid_entries(), 2U);
}

TEST(Monitor, SingleEntryModeLoadsExactlyOne) {
  const casm_::Image image = small_program();
  OsConfig config;
  config.refill_mode = RefillMode::kSingleEntry;
  OsMonitor monitor(config, fht_of(image));
  cic::Iht iht(8, cic::ReplacePolicy::kLru);
  const cfg::CheckRegion first = monitor.fht().record(0);
  monitor.handle_hash_miss({first.start, first.end, first.hash}, &iht);
  EXPECT_EQ(monitor.stats().records_loaded, 1U);
  EXPECT_EQ(iht.valid_entries(), 1U);
}

TEST(Names, AllEnumsPrintable) {
  EXPECT_EQ(refill_mode_name(RefillMode::kSingleEntry), "single-entry");
  EXPECT_EQ(refill_mode_name(RefillMode::kReplaceHalfPrefetch), "replace-half-prefetch");
  EXPECT_EQ(termination_cause_name(TerminationCause::kNone), "none");
  EXPECT_EQ(termination_cause_name(TerminationCause::kHashMismatch), "hash-mismatch");
}

}  // namespace
}  // namespace cicmon::os
