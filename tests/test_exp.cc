// Tests for the unified sweep engine: shard partitioning, cicmon-shard-v1
// artifacts, byte-identical merge, and resume semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "fault/campaign.h"
#include "sim/experiment.h"
#include "support/error.h"
#include "workloads/workloads.h"

namespace cicmon::exp {
namespace {

// A cheap deterministic grid: cell i -> u64 {i, i*i}, f64 {1/(i+1)}.
SweepSpec synthetic_sweep(std::size_t cells, std::atomic<unsigned>* runs = nullptr) {
  SweepSpec spec;
  spec.sweep = "synthetic";
  spec.params = {{"cells", std::to_string(cells)}};
  spec.cells = cells;
  spec.cell_key = [](std::size_t cell) { return "cell/" + std::to_string(cell); };
  spec.run_cell = [runs](std::size_t cell) {
    if (runs != nullptr) runs->fetch_add(1);
    CellResult result;
    result.u64 = {cell, cell * cell};
    result.f64 = {1.0 / static_cast<double>(cell + 1)};
    return result;
  };
  return spec;
}

std::string temp_artifact_path(const char* tag) {
  return testing::TempDir() + "cicmon_test_shard_" + tag + ".json";
}

TEST(Shard, ParseAcceptsValidAndRejectsMalformed) {
  const Shard shard = parse_shard("2/3");
  EXPECT_EQ(shard.index, 2U);
  EXPECT_EQ(shard.count, 3U);
  for (const char* bad : {"", "3", "0/3", "4/3", "a/b", "1/", "/2", "1/0"}) {
    EXPECT_THROW(parse_shard(bad), support::CicError) << bad;
  }
}

TEST(Shard, OwnershipIsADisjointCoverForAnyN) {
  constexpr std::size_t kCells = 23;
  for (unsigned n = 1; n <= 7; ++n) {
    std::vector<unsigned> owners(kCells, 0);
    for (unsigned i = 1; i <= n; ++i) {
      std::size_t owned = 0;
      for (std::size_t cell = 0; cell < kCells; ++cell) {
        if (owns_cell(Shard{i, n}, cell)) {
          ++owners[cell];
          ++owned;
        }
      }
      EXPECT_EQ(owned, owned_cell_count(Shard{i, n}, kCells)) << i << "/" << n;
    }
    for (std::size_t cell = 0; cell < kCells; ++cell) {
      EXPECT_EQ(owners[cell], 1U) << "cell " << cell << " at N=" << n;
    }
  }
}

TEST(Artifact, EncodeDecodeRoundTripsExactly) {
  SweepSpec spec = synthetic_sweep(5);
  // Payloads chosen to stress the codec: u64 beyond double-exact range,
  // doubles needing all 17 digits.
  spec.run_cell = [](std::size_t cell) {
    CellResult result;
    result.u64 = {cell, 0xFFFF'FFFF'FFFF'FFFFULL - cell, (1ULL << 53) + 1 + cell};
    result.f64 = {0.1 + static_cast<double>(cell), 1.0 / 3.0, -2.5e-300};
    return result;
  };
  const Shard shard{2, 2};
  const std::vector<CellResult> results = run_cells(spec, shard, 1);
  const std::string text = encode_shard_artifact(spec, shard, results);
  const ShardArtifact artifact = decode_shard_artifact(text);

  EXPECT_EQ(artifact.sweep, spec.sweep);
  EXPECT_EQ(artifact.params, spec.params);
  EXPECT_EQ(artifact.shard.index, 2U);
  EXPECT_EQ(artifact.shard.count, 2U);
  EXPECT_EQ(artifact.total_cells, 5U);
  ASSERT_EQ(artifact.cells.size(), 2U);  // cells 1 and 3
  EXPECT_EQ(artifact.cells[0].index, 1U);
  EXPECT_EQ(artifact.cells[0].key, "cell/1");
  EXPECT_EQ(artifact.cells[0].result, results[1]);
  EXPECT_EQ(artifact.cells[1].index, 3U);
  EXPECT_EQ(artifact.cells[1].result, results[3]);
}

TEST(Artifact, CorruptAndTruncatedInputsAreRejected) {
  SweepSpec spec = synthetic_sweep(4);
  const std::string text = encode_shard_artifact(spec, Shard{1, 2}, run_cells(spec, Shard{1, 2}, 1));

  EXPECT_THROW(decode_shard_artifact(""), support::CicError);
  EXPECT_THROW(decode_shard_artifact("not json at all"), support::CicError);
  EXPECT_THROW(decode_shard_artifact("{\"schema\": \"something-else\"}"), support::CicError);
  // Any truncation must be caught — either as a JSON error or as an
  // incomplete cell set.
  for (const std::size_t keep : {text.size() / 4, text.size() / 2, text.size() - 3}) {
    EXPECT_THROW(decode_shard_artifact(text.substr(0, keep)), support::CicError) << keep;
  }
}

TEST(Artifact, TamperedTotalCellsIsRejectedCheaply) {
  SweepSpec spec = synthetic_sweep(4);
  std::string text = encode_shard_artifact(spec, Shard{1, 2}, run_cells(spec, Shard{1, 2}, 1));
  // A huge grid size must fail validation without a grid-sized loop or
  // allocation (this test would time out if it did not).
  const std::size_t pos = text.find("\"total_cells\": 4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 16, "\"total_cells\": 4000000000000");
  EXPECT_THROW(decode_shard_artifact(text), support::CicError);

  // An artifact claiming an absurd grid must make merge throw "cells
  // missing" before sizing any buffer by total_cells.
  ShardArtifact artifact;
  artifact.sweep = spec.sweep;
  artifact.params = spec.params;
  artifact.shard = Shard{1, 4'000'000'000U};
  artifact.total_cells = 4'000'000'000'000ULL;
  artifact.cells.push_back({0, "cell/0", CellResult{{0, 0}, {1.0}}});
  EXPECT_THROW(merge_artifacts({artifact}), support::CicError);
}

TEST(Artifact, DecodeRejectsCellsTheShardDoesNotOwn) {
  SweepSpec spec = synthetic_sweep(4);
  std::string text = encode_shard_artifact(spec, Shard{1, 2}, run_cells(spec, Shard{1, 2}, 1));
  // Shard 1/2 owns cells {0, 2}; claim to be shard 2/2 instead.
  const std::size_t pos = text.find("\"shard\": 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 10, "\"shard\": 2");
  EXPECT_THROW(decode_shard_artifact(text), support::CicError);
}

TEST(Merge, ShardedEqualsUnshardedForAnyNAtAnyJobs) {
  const SweepSpec spec = synthetic_sweep(11);
  const std::vector<CellResult> direct = run_all(spec, 1);
  for (unsigned n = 1; n <= 4; ++n) {
    std::vector<ShardArtifact> artifacts;
    for (unsigned i = 1; i <= n; ++i) {
      const Shard shard{i, n};
      // Different job counts per shard on purpose.
      const std::vector<CellResult> results = run_cells(spec, shard, 1 + i % 3);
      artifacts.push_back(decode_shard_artifact(encode_shard_artifact(spec, shard, results)));
    }
    EXPECT_EQ(merge_artifacts(artifacts), direct) << "N=" << n;
  }
}

TEST(Merge, RejectsDuplicateMissingAndForeignShards) {
  const SweepSpec spec = synthetic_sweep(6);
  auto artifact = [&](unsigned i, unsigned n) {
    const Shard shard{i, n};
    return decode_shard_artifact(
        encode_shard_artifact(spec, shard, run_cells(spec, shard, 1)));
  };
  // Duplicate shard: cell covered twice.
  EXPECT_THROW(merge_artifacts({artifact(1, 2), artifact(1, 2)}), support::CicError);
  // Missing shard: cells uncovered.
  EXPECT_THROW(merge_artifacts({artifact(1, 3), artifact(3, 3)}), support::CicError);
  // Mixed shard counts.
  EXPECT_THROW(merge_artifacts({artifact(1, 2), artifact(2, 3)}), support::CicError);
  // Different parameters.
  const SweepSpec other = synthetic_sweep(7);
  const Shard shard{2, 2};
  std::vector<ShardArtifact> mixed{artifact(1, 2), decode_shard_artifact(encode_shard_artifact(
                                                       other, shard, run_cells(other, shard, 1)))};
  EXPECT_THROW(merge_artifacts(mixed), support::CicError);
}

TEST(MergeState, IncrementalAddInAnyOrderFinalizesIdenticalToBatchMerge) {
  const SweepSpec spec = synthetic_sweep(13);
  const std::vector<CellResult> direct = run_all(spec, 1);
  constexpr unsigned kShards = 5;
  std::vector<ShardArtifact> artifacts;
  for (unsigned i = 1; i <= kShards; ++i) {
    const Shard shard{i, kShards};
    artifacts.push_back(
        decode_shard_artifact(encode_shard_artifact(spec, shard, run_cells(spec, shard, 1))));
  }
  // Out-of-order streaming — the order shards land in a real dispatch.
  MergeState merge;
  EXPECT_FALSE(merge.complete());
  for (const unsigned i : {3U, 1U, 5U, 4U, 2U}) {
    merge.add(artifacts[i - 1]);
  }
  EXPECT_TRUE(merge.complete());
  EXPECT_EQ(merge.shards_merged(), kShards);
  EXPECT_EQ(merge.cells_merged(), spec.cells);
  EXPECT_EQ(std::move(merge).finalize(), direct);
  EXPECT_EQ(merge_artifacts(artifacts), direct);
}

TEST(MergeState, ProgressIsDeterministicAndOrderIndependent) {
  const SweepSpec spec = synthetic_sweep(10);
  auto artifact = [&](unsigned i) {
    const Shard shard{i, 4};
    return decode_shard_artifact(encode_shard_artifact(spec, shard, run_cells(spec, shard, 1)));
  };
  MergeState a;
  a.add(artifact(2));
  a.add(artifact(4));
  MergeState b;
  b.add(artifact(4));
  b.add(artifact(2));
  // Same artifact *set* -> identical progress line and table, whatever the
  // arrival order was.
  EXPECT_EQ(a.progress(), b.progress());
  EXPECT_EQ(a.progress_table(), b.progress_table());
  EXPECT_EQ(a.progress(), "2/4 shards, 5/10 cells (50.0%)");
  EXPECT_NE(a.progress_table().find("2      3      merged"), std::string::npos)
      << a.progress_table();
  EXPECT_NE(a.progress_table().find("1      3      pending"), std::string::npos)
      << a.progress_table();
  EXPECT_FALSE(a.complete());
}

TEST(MergeState, RejectsDuplicatesAndStaysUsableAfterARejectedAdd) {
  const SweepSpec spec = synthetic_sweep(8);
  auto artifact = [&](unsigned i, unsigned n) {
    const Shard shard{i, n};
    return decode_shard_artifact(encode_shard_artifact(spec, shard, run_cells(spec, shard, 1)));
  };
  MergeState merge;
  merge.add(artifact(1, 3));
  EXPECT_THROW(merge.add(artifact(1, 3)), support::CicError);  // duplicate shard
  EXPECT_THROW(merge.add(artifact(1, 2)), support::CicError);  // different shard count
  const SweepSpec other = synthetic_sweep(9);
  EXPECT_THROW(merge.add(decode_shard_artifact(encode_shard_artifact(
                   other, Shard{1, 3}, run_cells(other, Shard{1, 3}, 1)))),
               support::CicError);  // different grid/params
  // Incomplete finalize names the gap.
  MergeState incomplete;
  incomplete.add(artifact(1, 3));
  EXPECT_THROW(std::move(incomplete).finalize(), support::CicError);
  // The rejected adds above must not have poisoned the good state.
  merge.add(artifact(2, 3));
  merge.add(artifact(3, 3));
  EXPECT_TRUE(merge.complete());
  EXPECT_EQ(std::move(merge).finalize(), run_all(spec, 1));

  // A rejected FIRST artifact must not fix the sweep identity either.
  MergeState fresh;
  ShardArtifact bogus = artifact(1, 3);
  bogus.cells[0].index = 99;  // out of range for the 8-cell grid
  EXPECT_THROW(fresh.add(bogus), support::CicError);
  fresh.add(artifact(1, 3));  // the intended sweep is still accepted
  // Intra-artifact duplicates (impossible via decode, possible by hand)
  // must not slip past the completeness accounting.
  ShardArtifact duplicated = artifact(2, 3);
  duplicated.cells.push_back(duplicated.cells.back());
  EXPECT_THROW(fresh.add(duplicated), support::CicError);
}

TEST(Resume, SkipsCompletedShardAndRerunsCorruptOrMismatched) {
  std::atomic<unsigned> runs{0};
  const SweepSpec spec = synthetic_sweep(9, &runs);
  const Shard shard{2, 3};  // owns cells 1, 4, 7
  const std::string path = temp_artifact_path("resume");
  std::remove(path.c_str());

  // First invocation runs the three owned cells and writes the artifact.
  const std::vector<CellResult> first = run_or_load_shard(spec, shard, 1, path, false);
  EXPECT_EQ(runs.load(), 3U);

  // Second invocation resumes: nothing re-ran, same cells returned.
  bool reused = false;
  EXPECT_EQ(run_or_load_shard(spec, shard, 1, path, false, &reused), first);
  EXPECT_TRUE(reused);
  EXPECT_EQ(runs.load(), 3U);

  // --force always re-runs.
  run_or_load_shard(spec, shard, 1, path, true, &reused);
  EXPECT_FALSE(reused);
  EXPECT_EQ(runs.load(), 6U);

  // A truncated artifact is corrupt, not resumable: the shard re-runs and
  // rewrites it.
  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fputs("{\"schema\": \"cicmon-shard-v1\", \"swee", out);
    std::fclose(out);
  }
  EXPECT_EQ(run_or_load_shard(spec, shard, 1, path, false, &reused), first);
  EXPECT_FALSE(reused);
  EXPECT_EQ(runs.load(), 9U);

  // An artifact from different sweep parameters must not be resumed into
  // this run either.
  std::atomic<unsigned> other_runs{0};
  SweepSpec other = synthetic_sweep(9, &other_runs);
  other.params = {{"cells", "different"}};
  run_or_load_shard(other, shard, 1, path, false, &reused);
  EXPECT_FALSE(reused);
  EXPECT_EQ(other_runs.load(), 3U);

  std::remove(path.c_str());
}

// --- The real sweeps on the engine --------------------------------------

TEST(RealSweeps, Table1MergeMatchesDirectRun) {
  const SweepSpec spec = sim::table1_sweep(0.02);
  EXPECT_EQ(spec.cells, workloads::all_workloads().size() * 3);
  const std::vector<CellResult> direct = run_all(spec, 0);
  std::vector<ShardArtifact> artifacts;
  for (unsigned i = 1; i <= 3; ++i) {
    const Shard shard{i, 3};
    artifacts.push_back(decode_shard_artifact(
        encode_shard_artifact(spec, shard, run_cells(spec, shard, 2))));
  }
  EXPECT_EQ(merge_artifacts(artifacts), direct);
  // And the decoded rows equal the legacy entry point's.
  const auto rows = sim::table1_rows(merge_artifacts(artifacts));
  const auto legacy = sim::table1_overheads(0.02, 1);
  ASSERT_EQ(rows.size(), legacy.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].workload, legacy[i].workload);
    EXPECT_EQ(rows[i].cycles_baseline, legacy[i].cycles_baseline);
    EXPECT_EQ(rows[i].cycles_cic16, legacy[i].cycles_cic16);
    EXPECT_DOUBLE_EQ(rows[i].overhead_cic16, legacy[i].overhead_cic16);
  }
}

TEST(RealSweeps, CampaignShardedSummaryMatchesRunRandom) {
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;
  fault::CampaignRunner runner(image, config);

  constexpr unsigned kTrials = 30;
  const fault::CampaignSummary direct =
      runner.run_random(fault::FaultSite::kFetchBus, 1, kTrials, 7, 1);

  const SweepSpec spec = runner.sweep(fault::FaultSite::kFetchBus, 1, kTrials, 7);
  std::vector<ShardArtifact> artifacts;
  for (unsigned i = 1; i <= 2; ++i) {
    const Shard shard{i, 2};
    artifacts.push_back(decode_shard_artifact(
        encode_shard_artifact(spec, shard, run_cells(spec, shard, 3))));
  }
  const fault::CampaignSummary merged =
      fault::CampaignRunner::summary_from_cells(merge_artifacts(artifacts));
  EXPECT_EQ(merged.trials, direct.trials);
  EXPECT_EQ(merged.detected_mismatch, direct.detected_mismatch);
  EXPECT_EQ(merged.detected_miss, direct.detected_miss);
  EXPECT_EQ(merged.detected_baseline, direct.detected_baseline);
  EXPECT_EQ(merged.wrong_output, direct.wrong_output);
  EXPECT_EQ(merged.benign, direct.benign);
  EXPECT_EQ(merged.hang, direct.hang);
}

TEST(RealSweeps, RowDecodersRejectWrongShapedPayloads) {
  // A structurally valid artifact can still carry cells whose payload arity
  // is wrong (tampered or cross-version); decoders must throw CicError, not
  // crash, so `cicmon merge` reports it as a corrupt input.
  const std::size_t workloads_count = workloads::all_workloads().size();
  EXPECT_THROW(sim::table1_rows(std::vector<CellResult>(workloads_count * 3)),
               support::CicError);
  EXPECT_THROW(sim::fig6_rows(std::vector<CellResult>(workloads_count * 2), 2),
               support::CicError);
  EXPECT_THROW(sim::blocks_rows(std::vector<CellResult>(workloads_count), {1, 8}),
               support::CicError);
  EXPECT_THROW(fault::CampaignRunner::summary_from_cells(std::vector<CellResult>(4)),
               support::CicError);
}

TEST(RealSweeps, Fig6AndBlocksRowsDecodeFromCells) {
  const std::vector<unsigned> entries{1, 16};
  const auto fig6_cells = run_all(sim::fig6_sweep(entries, 0.02), 0);
  const auto fig6 = sim::fig6_rows(fig6_cells, entries.size());
  const auto legacy = sim::fig6_miss_rates(entries, 0.02, 1);
  ASSERT_EQ(fig6.size(), legacy.size());
  for (std::size_t i = 0; i < fig6.size(); ++i) {
    EXPECT_EQ(fig6[i].miss_rates, legacy[i].miss_rates);
  }

  const std::vector<unsigned> capacities{1, 8};
  const auto blocks_cells = run_all(sim::blocks_sweep(capacities, 0.02), 0);
  const auto blocks = sim::blocks_rows(blocks_cells, capacities);
  const auto direct = sim::characterize_blocks("dijkstra", capacities, 0.02);
  ASSERT_EQ(blocks.size(), workloads::all_workloads().size());
  const auto& dijkstra = blocks[2];  // Figure 6 order
  EXPECT_EQ(dijkstra.workload, "dijkstra");
  EXPECT_EQ(dijkstra.static_regions, direct.static_regions);
  EXPECT_EQ(dijkstra.dynamic_keys, direct.dynamic_keys);
  EXPECT_EQ(dijkstra.lookups, direct.lookups);
  EXPECT_EQ(dijkstra.instructions, direct.instructions);
  EXPECT_DOUBLE_EQ(dijkstra.mean_block_instructions, direct.mean_block_instructions);
  EXPECT_EQ(dijkstra.lru_hit_rate, direct.lru_hit_rate);
}

}  // namespace
}  // namespace cicmon::exp
