// End-to-end integration tests: the attack/detection scenarios of the paper
// and the shape properties of its evaluation (Figure 6, Tables 1 and 2).
#include <gtest/gtest.h>

#include "casm/builder.h"
#include "cpu/cpu.h"
#include "fault/campaign.h"
#include "support/error.h"
#include "sim/experiment.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace cicmon {
namespace {

using namespace cicmon::isa;

casm_::Image victim_program() {
  casm_::Asm a;
  a.func("main");
  a.li(kT0, 50);
  a.li(kT1, 0);
  casm_::Label loop = a.bound_label();
  a.addu(kT1, kT1, kT0);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, loop);
  a.check_eq(kT1, 1275);
  a.sys_exit(0);
  return a.finalize();
}

TEST(EndToEnd, CleanRunNeverRaisesMonitoringTermination) {
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  cpu::Cpu cpu(config, victim_program());
  const cpu::RunResult r = cpu.run();
  EXPECT_EQ(r.reason, cpu::ExitReason::kExit);
  EXPECT_EQ(r.iht.mismatches, 0U);
  EXPECT_EQ(r.monitor_cause, os::TerminationCause::kNone);
}

TEST(EndToEnd, CodeTamperAfterLoadIsDetectedBeforeWrongOutput) {
  // The paper's motivating attack: code modified in memory *after* the OS
  // checkpoint. Every consequential single-bit flip in the loop body must
  // stop the program via the monitor, never reach the self-check as a wrong
  // result.
  const casm_::Image image = victim_program();
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  for (unsigned bit = 0; bit < 32; bit += 3) {
    cpu::Cpu cpu(config, image);
    cpu.memory().flip_bit(image.text_base + 2 * 4, bit);  // the loop's addu
    const cpu::RunResult r = cpu.run();
    EXPECT_TRUE(r.reason == cpu::ExitReason::kMonitorTerminated ||
                r.reason == cpu::ExitReason::kIllegalInstruction ||
                r.reason == cpu::ExitReason::kWildPc)
        << "bit " << bit << " ended as " << cpu::exit_reason_name(r.reason);
  }
}

TEST(EndToEnd, SameTamperSilentlyCorruptsWithoutMonitor) {
  const casm_::Image image = victim_program();
  cpu::CpuConfig config;  // monitoring off
  cpu::Cpu cpu(config, image);
  // Flip word bit 16 (the rt field) of the loop's addu: the byte at +2,
  // bit 0. The sum silently becomes wrong; only the self-check notices.
  cpu.memory().flip_bit(image.text_base + 2 * 4 + 2, 0);
  const cpu::RunResult r = cpu.run();
  EXPECT_EQ(r.reason, cpu::ExitReason::kSelfCheckFailed);  // damage done
}

TEST(EndToEnd, LegacyBinaryRunsUnmodified) {
  // The same Image object — byte-identical text — must run on both machines;
  // no recompilation or instrumentation for the monitored CPU.
  const casm_::Image image = victim_program();
  cpu::CpuConfig off;
  cpu::CpuConfig on;
  on.monitoring = true;
  cpu::Cpu a(off, image);
  cpu::Cpu b(on, image);
  EXPECT_EQ(a.run().reason, cpu::ExitReason::kExit);
  EXPECT_EQ(b.run().reason, cpu::ExitReason::kExit);
}

TEST(Fig6Shape, MissRateMonotoneNonIncreasingInTableSize) {
  const std::vector<unsigned> sizes{1, 8, 16, 32};
  const auto rows = sim::fig6_miss_rates(sizes, /*scale=*/0.08);
  ASSERT_EQ(rows.size(), 9U);
  for (const sim::Fig6Row& row : rows) {
    for (std::size_t i = 1; i < row.miss_rates.size(); ++i) {
      EXPECT_LE(row.miss_rates[i], row.miss_rates[i - 1] + 0.02)
          << row.workload << " at size " << sizes[i];
    }
    EXPECT_LT(row.miss_rates.back(), 0.20) << row.workload << " at 32 entries";
  }
}

TEST(Table1Shape, SixteenEntriesNeverWorseThanEight) {
  const auto rows = sim::table1_overheads(/*scale=*/0.08);
  ASSERT_EQ(rows.size(), 9U);
  double sum8 = 0, sum16 = 0;
  for (const sim::Table1Row& row : rows) {
    EXPECT_GE(row.overhead_cic8, 0.0) << row.workload;
    EXPECT_LE(row.overhead_cic16, row.overhead_cic8 + 0.02) << row.workload;
    sum8 += row.overhead_cic8;
    sum16 += row.overhead_cic16;
  }
  EXPECT_LT(sum16, sum8);  // the paper's headline: bigger IHT, lower overhead
}

TEST(Table1Shape, BitcountNearZeroAndStringsearchWorstAtSixteen) {
  const auto rows = sim::table1_overheads(/*scale=*/0.08);
  double bitcount8 = 1e9, bitcount16 = 1e9, stringsearch16 = 0, worst16 = 0;
  for (const sim::Table1Row& row : rows) {
    if (row.workload == "bitcount") {
      bitcount8 = row.overhead_cic8;
      bitcount16 = row.overhead_cic16;
    }
    if (row.workload == "stringsearch") stringsearch16 = row.overhead_cic16;
    worst16 = std::max(worst16, row.overhead_cic16);
  }
  EXPECT_LT(bitcount8, 0.05);   // paper: 0%
  EXPECT_LT(bitcount16, 0.05);  // paper: 0%
  // The paper's signature row: stringsearch keeps ~50% overhead even at 16
  // entries while every other app improves — it must be the clear worst.
  EXPECT_GE(stringsearch16, worst16 - 1e-9);
}

TEST(BlockStats, CharacterisationMatchesPaperScale) {
  // §6.1: "stringsearch has 25 basic blocks executed while susan has 93";
  // our kernels must land in the same tens-of-blocks regime.
  const std::vector<unsigned> caps{8, 16, 32};
  for (const char* name : {"stringsearch", "susan", "dijkstra"}) {
    const sim::BlockStats stats = sim::characterize_blocks(name, caps, 0.05);
    EXPECT_GE(stats.dynamic_keys, 5U) << name;
    EXPECT_LE(stats.dynamic_keys, 150U) << name;
    EXPECT_GT(stats.mean_block_instructions, 2.0) << name;
    ASSERT_EQ(stats.lru_hit_rate.size(), caps.size());
    for (std::size_t i = 1; i < caps.size(); ++i) {
      EXPECT_GE(stats.lru_hit_rate[i] + 1e-12, stats.lru_hit_rate[i - 1]) << name;
    }
  }
}

TEST(RunWorkload, RejectsAbnormalTermination) {
  cpu::CpuConfig config;
  config.max_instructions = 10;  // guaranteed watchdog
  EXPECT_THROW(sim::run_workload("bitcount", config, 0.05), support::CicError);
}

TEST(HashChoice, StrongerHashAlsoDetectsTamper) {
  const casm_::Image image = victim_program();
  for (hash::HashKind kind : {hash::HashKind::kRotXor, hash::HashKind::kCrc32,
                              hash::HashKind::kFletcher32}) {
    cpu::CpuConfig config;
    config.monitoring = true;
    config.cic.hash_kind = kind;
    cpu::Cpu cpu(config, image);
    cpu.memory().flip_bit(image.text_base + 2 * 4, 7);
    const cpu::RunResult r = cpu.run();
    EXPECT_NE(r.reason, cpu::ExitReason::kSelfCheckFailed) << hash_kind_name(kind);
    EXPECT_NE(r.reason, cpu::ExitReason::kExit) << hash_kind_name(kind);
  }
}

TEST(HashChoice, KeyedHashRunsCleanAcrossBlocks) {
  // RHASH.reset must restore the per-process key, not zero — otherwise the
  // dynamic hash of every block after the first diverges from the FHT.
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.hash_kind = hash::HashKind::kRotXorKeyed;
  config.cic.hash_key = 0x5EED1234;
  cpu::Cpu cpu(config, victim_program());
  const cpu::RunResult r = cpu.run();
  EXPECT_EQ(r.reason, cpu::ExitReason::kExit);
  EXPECT_EQ(r.iht.mismatches, 0U);
}

TEST(HashChoice, PairedLaneFlipsBeatXorButNotRotXor) {
  // Two flips in the same bit lane of two words in one block: the XOR
  // checksum aliases (escapes), the rotate-XOR does not (§6.3's improvement
  // direction).
  const casm_::Image image = victim_program();
  auto run_with = [&](hash::HashKind kind) {
    cpu::CpuConfig config;
    config.monitoring = true;
    config.cic.hash_kind = kind;
    cpu::Cpu cpu(config, image);
    cpu.memory().flip_bit(image.text_base + 2 * 4, 17);  // addu imm-area bits
    cpu.memory().flip_bit(image.text_base + 3 * 4, 17);  // addiu same lane
    return cpu.run();
  };
  const cpu::RunResult with_xor = run_with(hash::HashKind::kXor);
  EXPECT_NE(with_xor.reason, cpu::ExitReason::kMonitorTerminated);
  const cpu::RunResult with_rot = run_with(hash::HashKind::kRotXor);
  EXPECT_EQ(with_rot.reason, cpu::ExitReason::kMonitorTerminated);
}

TEST(ReplacementAblation, PoliciesAllCorrectOnlySpeedDiffers) {
  const casm_::Image image = workloads::build_workload("dijkstra", {0.05, 42});
  for (cic::ReplacePolicy policy :
       {cic::ReplacePolicy::kLru, cic::ReplacePolicy::kFifo, cic::ReplacePolicy::kRandom}) {
    cpu::CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = 8;
    config.cic.replace_policy = policy;
    cpu::Cpu cpu(config, image);
    const cpu::RunResult r = cpu.run();
    EXPECT_EQ(r.reason, cpu::ExitReason::kExit) << replace_policy_name(policy);
    EXPECT_EQ(r.iht.mismatches, 0U) << replace_policy_name(policy);
  }
}

TEST(Recovery, TransientFetchFaultIsRolledBackAndCompletes) {
  // §7 future work, implemented: a one-shot bus fault corrupts a fetched
  // word; the monitor detects the block, the CPU rolls it back and
  // refetches — clean this time — and the program finishes correctly.
  const casm_::Image image = workloads::build_workload("bitcount", {0.05, 42});
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;
  config.recovery.enabled = true;
  fault::CampaignRunner runner(image, config);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kFetchBus;
  spec.trigger_index = 500;
  spec.xor_mask = 1U << 11;
  const fault::TrialResult trial = runner.run_trial(spec);
  EXPECT_EQ(trial.outcome, fault::Outcome::kBenign)
      << fault::outcome_name(trial.outcome);
}

TEST(Recovery, TransientCampaignAllRecover) {
  const casm_::Image image = workloads::build_workload("bitcount", {0.05, 42});
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;
  config.recovery.enabled = true;
  fault::CampaignRunner runner(image, config);
  const fault::CampaignSummary s =
      runner.run_random(fault::FaultSite::kFetchBus, 1, 50, 3);
  EXPECT_EQ(s.benign, 50U);  // every transient fault survived
}

TEST(Recovery, PersistentCorruptionStillTerminates) {
  // Rewritten memory refetches the same bad word; the retry budget runs out
  // and the OS terminates — recovery must not mask real attacks.
  const casm_::Image image = workloads::build_workload("bitcount", {0.05, 42});
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;
  config.recovery.enabled = true;
  config.recovery.max_retries_per_block = 2;
  fault::CampaignRunner runner(image, config);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kMemoryText;
  spec.target_address = image.text_base + 40;
  spec.xor_mask = 1U << 11;
  const fault::TrialResult trial = runner.run_trial(spec);
  EXPECT_EQ(trial.outcome, fault::Outcome::kDetectedMismatch);
}

TEST(Recovery, RollbackRestoresArchitecturalState) {
  // Run the same transient fault with and without recovery: the recovered
  // run must produce the exact golden console and count its rollbacks.
  const casm_::Image image = victim_program();
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  config.recovery.enabled = true;
  cpu::Cpu golden(config, image);
  const cpu::RunResult clean = golden.run();
  ASSERT_EQ(clean.reason, cpu::ExitReason::kExit);
  EXPECT_EQ(clean.recoveries, 0U);

  cpu::Cpu faulty(config, image);
  // Corrupt memory, let one block fail once, then repair it mid-run via the
  // store-log path: simplest equivalent — flip and flip back is not possible
  // externally, so use the campaign's transient bus model instead.
  fault::CampaignRunner runner(image, config);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kFetchBus;
  spec.trigger_index = 20;
  spec.xor_mask = 1U << 5;
  const fault::TrialResult trial = runner.run_trial(spec);
  EXPECT_EQ(trial.outcome, fault::Outcome::kBenign);
}

TEST(Recovery, DisabledMeansTerminate) {
  const casm_::Image image = workloads::build_workload("bitcount", {0.05, 42});
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;  // recovery left disabled
  fault::CampaignRunner runner(image, config);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kFetchBus;
  spec.trigger_index = 500;
  spec.xor_mask = 1U << 11;
  EXPECT_TRUE(fault::is_detected(runner.run_trial(spec).outcome));
}

TEST(OsCostAblation, OverheadScalesWithExceptionCost) {
  const casm_::Image image = workloads::build_workload("basicmath", {0.05, 42});
  auto cycles_with_cost = [&](std::uint64_t cost) {
    cpu::CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = 8;
    config.os.exception_cycles = cost;
    cpu::Cpu cpu(config, image);
    return cpu.run().monitor_cycles;
  };
  const std::uint64_t at50 = cycles_with_cost(50);
  const std::uint64_t at200 = cycles_with_cost(200);
  EXPECT_EQ(at200, 4 * at50);  // same miss count, linear cost
}

}  // namespace
}  // namespace cicmon
