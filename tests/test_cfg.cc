// Static analysis tests: leaders, check regions, and the Full Hash Table.
#include <gtest/gtest.h>

#include <algorithm>

#include "casm/builder.h"
#include "cfg/check_region.h"
#include "cfg/fht.h"
#include "support/error.h"

namespace cicmon::cfg {
namespace {

casm_::Image loop_program() {
  // main: li t0,3 ; loop: addiu t0,-1 ; bne t0,zero,loop ; sys_exit
  casm_::Asm a;
  a.func("main");
  a.li(isa::kT0, 3);
  casm_::Label loop = a.bound_label();
  a.addiu(isa::kT0, isa::kT0, -1);
  a.bne(isa::kT0, isa::kZero, loop);
  a.sys_exit(0);
  return a.finalize();
}

TEST(Leaders, EntryBranchTargetAndFallThrough) {
  const casm_::Image image = loop_program();
  const auto leaders = find_leaders(image);
  // entry (0), branch target (+4), fall-through after bne (+12).
  EXPECT_EQ(leaders.size(), 3U);
  EXPECT_EQ(leaders[0], image.text_base);
  EXPECT_EQ(leaders[1], image.text_base + 4);
  EXPECT_EQ(leaders[2], image.text_base + 12);
}

TEST(Leaders, FunctionSymbolsAreLeaders) {
  casm_::Asm a;
  a.func("main");
  a.sys_exit(0);
  a.func("helper");  // reachable only indirectly
  a.jr(isa::kRa);
  const casm_::Image image = a.finalize();
  const auto leaders = find_leaders(image);
  EXPECT_NE(std::find(leaders.begin(), leaders.end(), image.symbols.at("helper")),
            leaders.end());
}

TEST(Regions, EndAtNextFlowControl) {
  const casm_::Image image = loop_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  const auto regions = enumerate_check_regions(image, *unit);
  // Leader 0 runs to the bne (+8); leader +4 also ends at +8. The +12 leader
  // has no terminating flow control (sys_exit falls off text) and is dropped.
  ASSERT_EQ(regions.size(), 2U);
  EXPECT_EQ(regions[0].start, image.text_base);
  EXPECT_EQ(regions[0].end, image.text_base + 8);
  EXPECT_EQ(regions[1].start, image.text_base + 4);
  EXPECT_EQ(regions[1].end, image.text_base + 8);
  EXPECT_EQ(regions[0].length_words(), 3U);
  EXPECT_EQ(regions[1].length_words(), 2U);
}

TEST(Regions, HashMatchesManualXor) {
  const casm_::Image image = loop_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  const auto regions = enumerate_check_regions(image, *unit);
  const std::uint32_t expected = image.text[0] ^ image.text[1] ^ image.text[2];
  EXPECT_EQ(regions[0].hash, expected);
  EXPECT_EQ(hash_range(image, *unit, image.text_base, image.text_base + 8), expected);
}

TEST(Regions, OverlappingRegionsShareSuffixHashRelation) {
  // hash(full) == hash(prefix) ^ hash(suffix) for XOR — a consistency check
  // between overlapping regions ending at the same flow control.
  const casm_::Image image = loop_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  const auto regions = enumerate_check_regions(image, *unit);
  EXPECT_EQ(regions[0].hash ^ regions[1].hash, image.text[0]);
}

TEST(Regions, HashRangeValidatesArguments) {
  const casm_::Image image = loop_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  EXPECT_THROW(hash_range(image, *unit, image.text_base - 4, image.text_base),
               support::CicError);
  EXPECT_THROW(hash_range(image, *unit, image.text_base + 1, image.text_base + 8),
               support::CicError);
}

TEST(Fht, LookupByAddressPair) {
  const casm_::Image image = loop_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  const FullHashTable fht = build_fht(image, *unit);
  ASSERT_EQ(fht.size(), 2U);
  const auto hash = fht.expected_hash(image.text_base, image.text_base + 8);
  ASSERT_TRUE(hash.has_value());
  EXPECT_EQ(*hash, image.text[0] ^ image.text[1] ^ image.text[2]);
  EXPECT_FALSE(fht.expected_hash(image.text_base, image.text_base + 4).has_value());
  EXPECT_EQ(fht.find(0, 0), FullHashTable::npos);
}

TEST(Fht, SerializeDeserializeRoundTrip) {
  const casm_::Image image = loop_program();
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  const FullHashTable fht = build_fht(image, *unit);
  const auto blob = fht.serialize();
  const FullHashTable parsed = FullHashTable::deserialize(blob);
  ASSERT_EQ(parsed.size(), fht.size());
  for (std::size_t i = 0; i < fht.size(); ++i) {
    EXPECT_EQ(parsed.record(i), fht.record(i));
  }
}

TEST(Fht, DeserializeRejectsMalformedBlobs) {
  EXPECT_THROW(FullHashTable::deserialize(std::vector<std::uint8_t>{1, 2}),
               support::CicError);
  const std::vector<std::uint8_t> bad_magic{'X', 'X', 'X', 'X', 0, 0, 0, 0};
  EXPECT_THROW(FullHashTable::deserialize(bad_magic), support::CicError);
  // Count says 1 record but no payload follows.
  const std::vector<std::uint8_t> truncated{'F', 'H', 'T', '1', 1, 0, 0, 0};
  EXPECT_THROW(FullHashTable::deserialize(truncated), support::CicError);
}

TEST(Fht, DuplicateRecordsRejected) {
  std::vector<CheckRegion> records{{0x400000, 0x400008, 1}, {0x400000, 0x400008, 2}};
  EXPECT_THROW(FullHashTable{std::move(records)}, support::CicError);
}

TEST(Fht, HashKindChangesHashesNotStructure) {
  const casm_::Image image = loop_program();
  const auto x = build_fht(image, *hash::make_hash_unit(hash::HashKind::kXor));
  const auto c = build_fht(image, *hash::make_hash_unit(hash::HashKind::kCrc32));
  ASSERT_EQ(x.size(), c.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x.record(i).start, c.record(i).start);
    EXPECT_EQ(x.record(i).end, c.record(i).end);
    EXPECT_NE(x.record(i).hash, c.record(i).hash);
  }
}

}  // namespace
}  // namespace cicmon::cfg
