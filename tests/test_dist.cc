// Tests for the distributed campaign orchestrator: work-queue retry budgets,
// the subprocess helper, transport template expansion, and — through real
// worker subprocesses — the orchestrator's failure paths: a worker killed
// mid-shard is re-enqueued and retried, a corrupt artifact is detected and
// re-run, a timeout kills and retries, and an exhausted attempt budget is
// reported as a failure while completed shards stay resumable. Every
// successful dispatch must merge to exactly the cells a direct single-process
// run produces (CI additionally byte-diffs the rendered stdout of the real
// `cicmon dispatch` binary against the direct run).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dist/orchestrator.h"
#include "dist/transport.h"
#include "dist/work_queue.h"
#include "exp/sweep.h"
#include "support/error.h"
#include "support/subprocess.h"

namespace cicmon::dist {
namespace {

// Same cheap deterministic grid as test_exp.cc.
exp::SweepSpec synthetic_sweep(std::size_t cells) {
  exp::SweepSpec spec;
  spec.sweep = "synthetic";
  spec.params = {{"cells", std::to_string(cells)}};
  spec.cells = cells;
  spec.cell_key = [](std::size_t cell) { return "cell/" + std::to_string(cell); };
  spec.run_cell = [](std::size_t cell) {
    exp::CellResult result;
    result.u64 = {cell, cell * cell};
    result.f64 = {1.0 / static_cast<double>(cell + 1)};
    return result;
  };
  return spec;
}

// A fresh per-test directory (markers and artifacts from a previous run of
// the same test must not leak into this one).
std::string make_test_dir(const char* tag) {
  const std::string dir = testing::TempDir() + "cicmon_dist_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

// Precomputes the artifact every shard's worker is supposed to produce, so
// worker scripts can "run a shard" with a cp.
void write_good_artifacts(const exp::SweepSpec& spec, unsigned shards, const std::string& dir) {
  for (unsigned i = 1; i <= shards; ++i) {
    const exp::Shard shard{i, shards};
    exp::write_shard_artifact(dir + "/good-" + std::to_string(i) + ".json", spec, shard,
                              exp::run_cells(spec, shard, 1));
  }
}

// A worker as a /bin/sh script: parses the --shard/--out flags the
// orchestrator appends, runs the per-shard `sabotage` snippet (which sees $i
// and $out), then installs the premade artifact. Exercises the same
// spawn/poll/reap machinery the real `cicmon` workers go through.
WorkerCommand script_worker(const std::string& dir, const std::string& sabotage) {
  const std::string path = dir + "/worker.sh";
  write_file(path,
             "out=\"\"; shard=\"\"\n"
             "while [ \"$#\" -gt 0 ]; do\n"
             "  case \"$1\" in\n"
             "    --out) out=\"$2\"; shift 2 ;;\n"
             "    --shard) shard=\"$2\"; shift 2 ;;\n"
             "    *) shift ;;\n"
             "  esac\n"
             "done\n"
             "i=\"${shard%/*}\"\n" +
                 sabotage + "\ncp \"" + dir + "/good-$i.json\" \"$out\"\n");
  return WorkerCommand{{"/bin/sh", path}};
}

DispatchConfig test_config(const std::string& dir, unsigned workers, unsigned shards,
                           unsigned retries = 2) {
  DispatchConfig config;
  config.workers = workers;
  config.shards = shards;
  config.retries = retries;
  config.jobs_per_worker = 1;
  config.timeout_seconds = 60;
  config.artifact_dir = dir + "/artifacts";
  config.progress = false;
  return config;
}

// --- work queue ----------------------------------------------------------

TEST(WorkQueue, PullRetryAndBudgetExhaustion) {
  WorkQueue queue(/*max_attempts=*/2);
  queue.push(WorkItem{exp::Shard{1, 2}, "a.json", 0});
  queue.push(WorkItem{exp::Shard{2, 2}, "b.json", 0});
  EXPECT_EQ(queue.total(), 2U);

  WorkItem item;
  ASSERT_TRUE(queue.try_pop(&item));
  EXPECT_EQ(item.shard.index, 1U);
  EXPECT_EQ(item.attempts, 1U);  // popping counts the attempt

  // First failure re-enqueues at the back; budget remains.
  EXPECT_TRUE(queue.retry(item, "worker died"));
  EXPECT_TRUE(queue.failures().empty());

  // The other item flows first (re-enqueue must not starve the queue).
  ASSERT_TRUE(queue.try_pop(&item));
  EXPECT_EQ(item.shard.index, 2U);
  queue.complete(item);
  EXPECT_EQ(queue.done(), 1U);

  // Second pop of the retried item spends the last attempt.
  ASSERT_TRUE(queue.try_pop(&item));
  EXPECT_EQ(item.shard.index, 1U);
  EXPECT_EQ(item.attempts, 2U);
  EXPECT_FALSE(queue.retry(item, "worker died again"));
  ASSERT_EQ(queue.failures().size(), 1U);
  EXPECT_EQ(queue.failures()[0].reason, "worker died again");
  EXPECT_EQ(queue.failures()[0].item.attempts, 2U);
  EXPECT_FALSE(queue.try_pop(&item));
}

// --- subprocess helper ---------------------------------------------------

TEST(Subprocess, SpawnReapAndDescribeExitStatuses) {
  int status = 0;
  EXPECT_EQ(support::spawn_process({"/bin/sh", "-c", "exit 0"}).wait() >> 8, 0);

  status = support::spawn_process({"/bin/sh", "-c", "exit 3"}).wait();
  EXPECT_FALSE(support::exit_ok(status));
  EXPECT_EQ(support::describe_exit(status), "exit code 3");

  // A command that cannot exec comes back as the shell's 127 convention.
  status = support::spawn_process({"/nonexistent/definitely-not-a-binary"}).wait();
  EXPECT_EQ(support::describe_exit(status), "exit code 127");

  // kill_hard produces a signal status; poll() eventually reaps it.
  support::ChildProcess child = support::spawn_process({"/bin/sh", "-c", "exec sleep 30"});
  child.kill_hard();
  status = child.wait();
  EXPECT_FALSE(support::exit_ok(status));
  EXPECT_TRUE(support::describe_exit(status).starts_with("signal 9"));

  EXPECT_THROW(support::spawn_process({}), support::CicError);
}

TEST(Subprocess, ShellQuoting) {
  EXPECT_EQ(support::shell_quote("plain-word_1.2/x"), "plain-word_1.2/x");
  EXPECT_EQ(support::shell_quote("two words"), "'two words'");
  EXPECT_EQ(support::shell_quote(""), "''");
  EXPECT_EQ(support::shell_quote("it's"), "'it'\\''s'");
  EXPECT_EQ(support::shell_join({"a", "b c", "$d"}), "a 'b c' '$d'");
}

// --- transports ----------------------------------------------------------

TEST(Transport, TemplateExpansionAndValidation) {
  const WorkerCommand command{{"cicmon", "table1", "--scale", "0.5"}};
  const WorkItem item{exp::Shard{2, 7}, "out dir/s.json", 0};
  EXPECT_EQ(CommandTemplateTransport::expand("ssh host {cmd} # {shard} -> {out}", command, item),
            "ssh host cicmon table1 --scale 0.5 # 2/7 -> 'out dir/s.json'");
  // Unknown placeholders and stray braces pass through untouched.
  EXPECT_EQ(CommandTemplateTransport::expand("{what} { {shard}", command, item), "{what} { 2/7");
  EXPECT_NO_THROW(CommandTemplateTransport("{cmd}"));
  EXPECT_THROW(CommandTemplateTransport("ssh host run-it"), support::CicError);
}

// --- orchestrator --------------------------------------------------------

TEST(Dispatch, MergesToDirectRunAndResumesFromArtifacts) {
  const std::string dir = make_test_dir("happy");
  const exp::SweepSpec spec = synthetic_sweep(11);
  write_good_artifacts(spec, 5, dir);
  const WorkerCommand base = script_worker(dir, "");
  LocalProcessTransport transport;

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 3, 5));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.shard_count, 5U);
  EXPECT_EQ(result.launched, 5U);
  EXPECT_EQ(result.reused, 0U);
  EXPECT_EQ(result.retried, 0U);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));

  // A second dispatch into the same artifact directory reuses every shard
  // without spawning a single worker.
  const DispatchResult again = dispatch_sweep(spec, base, transport, test_config(dir, 3, 5));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.reused, 5U);
  EXPECT_EQ(again.launched, 0U);
  EXPECT_EQ(again.cells, result.cells);
}

TEST(Dispatch, WorkerKilledMidShardIsReenqueuedAndRetried) {
  const std::string dir = make_test_dir("killed");
  const exp::SweepSpec spec = synthetic_sweep(9);
  write_good_artifacts(spec, 4, dir);
  // Shard 2's first worker dies by SIGKILL before producing an artifact; the
  // retry succeeds.
  const WorkerCommand base = script_worker(
      dir,
      "if [ \"$i\" = 2 ] && [ ! -e \"" + dir + "/marker-$i\" ]; then\n"
      "  : > \"" + dir + "/marker-$i\"\n"
      "  kill -9 $$\n"
      "fi");
  LocalProcessTransport transport;

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 2, 4));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.launched, 5U);  // 4 shards + 1 retry
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
  EXPECT_TRUE(std::filesystem::exists(dir + "/marker-2"));  // the kill fired
}

TEST(Dispatch, HungWorkerIsKilledOnTimeoutAndRetried) {
  const std::string dir = make_test_dir("timeout");
  const exp::SweepSpec spec = synthetic_sweep(6);
  write_good_artifacts(spec, 3, dir);
  const WorkerCommand base = script_worker(
      dir,
      "if [ \"$i\" = 1 ] && [ ! -e \"" + dir + "/marker-$i\" ]; then\n"
      "  : > \"" + dir + "/marker-$i\"\n"
      "  exec sleep 30\n"
      "fi");
  LocalProcessTransport transport;

  DispatchConfig config = test_config(dir, 3, 3);
  config.timeout_seconds = 0.5;
  const DispatchResult result = dispatch_sweep(spec, base, transport, config);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
}

TEST(Dispatch, CorruptArtifactIsDetectedAndRerun) {
  const std::string dir = make_test_dir("corrupt");
  const exp::SweepSpec spec = synthetic_sweep(10);
  write_good_artifacts(spec, 4, dir);
  // Shard 3's first worker exits cleanly but leaves a truncated artifact —
  // the merge-time validation must catch it at reap time and retry.
  const WorkerCommand base = script_worker(
      dir,
      "if [ \"$i\" = 3 ] && [ ! -e \"" + dir + "/marker-$i\" ]; then\n"
      "  : > \"" + dir + "/marker-$i\"\n"
      "  printf '{\"schema\": \"cicmon-shard-v1\", \"swee' > \"$out\"\n"
      "  exit 0\n"
      "fi");
  LocalProcessTransport transport;

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 2, 4));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
}

TEST(Dispatch, ExhaustedRetriesReportFailureAndKeepPeersResumable) {
  const std::string dir = make_test_dir("exhausted");
  const exp::SweepSpec spec = synthetic_sweep(12);
  write_good_artifacts(spec, 5, dir);
  // Shard 4 fails every attempt (exit 7, no artifact); the others succeed.
  const WorkerCommand base =
      script_worker(dir, "if [ \"$i\" = 4 ]; then exit 7; fi");
  LocalProcessTransport transport;

  const DispatchResult result =
      dispatch_sweep(spec, base, transport, test_config(dir, 2, 5, /*retries=*/1));
  ASSERT_FALSE(result.ok);
  EXPECT_TRUE(result.cells.empty());
  ASSERT_EQ(result.failures.size(), 1U);
  EXPECT_EQ(result.failures[0].item.shard.index, 4U);
  EXPECT_EQ(result.failures[0].item.attempts, 2U);  // first run + 1 retry
  EXPECT_NE(result.failures[0].reason.find("exit code 7"), std::string::npos)
      << result.failures[0].reason;

  // The four completed shards left valid artifacts behind: a re-dispatch
  // with a healthy worker reuses them and only runs the failed shard.
  const DispatchResult fixed =
      dispatch_sweep(spec, script_worker(dir, ""), transport, test_config(dir, 2, 5));
  ASSERT_TRUE(fixed.ok);
  EXPECT_EQ(fixed.reused, 4U);
  EXPECT_EQ(fixed.launched, 1U);
  EXPECT_EQ(fixed.cells, exp::run_all(spec, 1));
}

TEST(Dispatch, TemplateTransportRunsWorkersThroughTheShell) {
  const std::string dir = make_test_dir("template");
  const exp::SweepSpec spec = synthetic_sweep(7);
  write_good_artifacts(spec, 3, dir);
  const WorkerCommand base = script_worker(dir, "");
  // A wrapper that logs the shard then runs the worker command — the shape
  // an ssh or cluster-submit template takes.
  CommandTemplateTransport transport("echo {shard} >> " + dir + "/launches.txt && {cmd}");

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 2, 3));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
  EXPECT_TRUE(std::filesystem::exists(dir + "/launches.txt"));
}

TEST(Dispatch, ShardArtifactPathNamesSweepAndCoordinates) {
  EXPECT_EQ(shard_artifact_path("runs", "campaign", exp::Shard{3, 7}),
            "runs/campaign-3of7.shard.json");
}

TEST(Dispatch, RejectsEmptySweepsAndCommands) {
  const exp::SweepSpec empty;
  LocalProcessTransport transport;
  const DispatchConfig config;
  EXPECT_THROW(dispatch_sweep(empty, WorkerCommand{{"sh"}}, transport, config),
               support::CicError);
  EXPECT_THROW(dispatch_sweep(synthetic_sweep(3), WorkerCommand{}, transport, config),
               support::CicError);
}

}  // namespace
}  // namespace cicmon::dist
