// Tests for the distributed campaign orchestrator: work-queue retry budgets,
// the subprocess helper, transport template expansion, and — through real
// worker subprocesses — the orchestrator's failure paths in both dispatch
// modes.
//
// Exec mode (script workers): a worker killed mid-shard is re-enqueued and
// retried, a corrupt artifact is detected and re-run, a timeout kills and
// retries, and an exhausted attempt budget is reported as a failure while
// completed shards stay resumable.
//
// Persistent-session mode (the real `cicmon worker` binary over pipes, plus
// sh saboteurs speaking just enough of the wire protocol to misbehave):
// the v2 handshake rejects protocol/spec skew but only *downgrades* on
// golden-key skew, and every adversarial input the issue names — truncated
// frame, checksum mismatch, garbage line, oversized record, worker
// SIGKILLed mid-record or mid-golden-chunk — tears the session down,
// retries the shard on a fresh session, and still merges to exactly the
// direct run's cells. The Cli.* tests run the real `cicmon dispatch` binary
// end to end and byte-diff its stdout against the direct run with golden
// shipping on, off, cached, and sabotaged. (CI repeats that over a
// multi-host-style template transport.)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/orchestrator.h"
#include "dist/session.h"
#include "dist/transport.h"
#include "dist/work_queue.h"
#include "exp/sweep.h"
#include "sim/experiment.h"
#include "support/error.h"
#include "support/subprocess.h"
#include "support/wire.h"

#ifndef CICMON_CLI_PATH
#define CICMON_CLI_PATH "./cicmon"  // CMake injects the real binary location
#endif

namespace cicmon::dist {
namespace {

// Same cheap deterministic grid as test_exp.cc.
exp::SweepSpec synthetic_sweep(std::size_t cells) {
  exp::SweepSpec spec;
  spec.sweep = "synthetic";
  spec.params = {{"cells", std::to_string(cells)}};
  spec.cells = cells;
  spec.cell_key = [](std::size_t cell) { return "cell/" + std::to_string(cell); };
  spec.run_cell = [](std::size_t cell) {
    exp::CellResult result;
    result.u64 = {cell, cell * cell};
    result.f64 = {1.0 / static_cast<double>(cell + 1)};
    return result;
  };
  return spec;
}

// A fresh per-test directory (markers and artifacts from a previous run of
// the same test must not leak into this one).
std::string make_test_dir(const char* tag) {
  const std::string dir = testing::TempDir() + "cicmon_dist_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

// Precomputes the artifact every shard's worker is supposed to produce, so
// worker scripts can "run a shard" with a cp.
void write_good_artifacts(const exp::SweepSpec& spec, unsigned shards, const std::string& dir) {
  for (unsigned i = 1; i <= shards; ++i) {
    const exp::Shard shard{i, shards};
    exp::write_shard_artifact(dir + "/good-" + std::to_string(i) + ".json", spec, shard,
                              exp::run_cells(spec, shard, 1));
  }
}

// A worker as a /bin/sh script: parses the --shard/--out flags the
// orchestrator appends, runs the per-shard `sabotage` snippet (which sees $i
// and $out), then installs the premade artifact. Exercises the same
// spawn/poll/reap machinery the real `cicmon` workers go through.
WorkerCommand script_worker(const std::string& dir, const std::string& sabotage) {
  const std::string path = dir + "/worker.sh";
  write_file(path,
             "out=\"\"; shard=\"\"\n"
             "while [ \"$#\" -gt 0 ]; do\n"
             "  case \"$1\" in\n"
             "    --out) out=\"$2\"; shift 2 ;;\n"
             "    --shard) shard=\"$2\"; shift 2 ;;\n"
             "    *) shift ;;\n"
             "  esac\n"
             "done\n"
             "i=\"${shard%/*}\"\n" +
                 sabotage + "\ncp \"" + dir + "/good-$i.json\" \"$out\"\n");
  return WorkerCommand{{"/bin/sh", path}, {}};
}

DispatchConfig test_config(const std::string& dir, unsigned workers, unsigned shards,
                           unsigned retries = 2) {
  DispatchConfig config;
  config.workers = workers;
  config.shards = shards;
  config.retries = retries;
  config.jobs_per_worker = 1;
  config.timeout_seconds = 60;
  config.artifact_dir = dir + "/artifacts";
  config.progress = false;
  return config;
}

// --- work queue ----------------------------------------------------------

TEST(WorkQueue, PullRetryAndBudgetExhaustion) {
  WorkQueue queue(/*max_attempts=*/2);
  queue.push(WorkItem{exp::Shard{1, 2}, "a.json", 0});
  queue.push(WorkItem{exp::Shard{2, 2}, "b.json", 0});
  EXPECT_EQ(queue.total(), 2U);

  WorkItem item;
  ASSERT_TRUE(queue.try_pop(&item));
  EXPECT_EQ(item.shard.index, 1U);
  EXPECT_EQ(item.attempts, 1U);  // popping counts the attempt

  // First failure re-enqueues at the back; budget remains.
  EXPECT_TRUE(queue.retry(item, "worker died"));
  EXPECT_TRUE(queue.failures().empty());

  // The other item flows first (re-enqueue must not starve the queue).
  ASSERT_TRUE(queue.try_pop(&item));
  EXPECT_EQ(item.shard.index, 2U);
  queue.complete(item);
  EXPECT_EQ(queue.done(), 1U);

  // Second pop of the retried item spends the last attempt.
  ASSERT_TRUE(queue.try_pop(&item));
  EXPECT_EQ(item.shard.index, 1U);
  EXPECT_EQ(item.attempts, 2U);
  EXPECT_FALSE(queue.retry(item, "worker died again"));
  ASSERT_EQ(queue.failures().size(), 1U);
  EXPECT_EQ(queue.failures()[0].reason, "worker died again");
  EXPECT_EQ(queue.failures()[0].item.attempts, 2U);
  EXPECT_FALSE(queue.try_pop(&item));
}

// --- subprocess helper ---------------------------------------------------

TEST(Subprocess, SpawnReapAndDescribeExitStatuses) {
  int status = 0;
  EXPECT_EQ(support::spawn_process({"/bin/sh", "-c", "exit 0"}).wait() >> 8, 0);

  status = support::spawn_process({"/bin/sh", "-c", "exit 3"}).wait();
  EXPECT_FALSE(support::exit_ok(status));
  EXPECT_EQ(support::describe_exit(status), "exit code 3");

  // A command that cannot exec comes back as the shell's 127 convention.
  status = support::spawn_process({"/nonexistent/definitely-not-a-binary"}).wait();
  EXPECT_EQ(support::describe_exit(status), "exit code 127");

  // kill_hard produces a signal status; poll() eventually reaps it.
  support::ChildProcess child = support::spawn_process({"/bin/sh", "-c", "exec sleep 30"});
  child.kill_hard();
  status = child.wait();
  EXPECT_FALSE(support::exit_ok(status));
  EXPECT_TRUE(support::describe_exit(status).starts_with("signal 9"));

  EXPECT_THROW(support::spawn_process({}), support::CicError);
}

TEST(Subprocess, ShellQuoting) {
  EXPECT_EQ(support::shell_quote("plain-word_1.2/x"), "plain-word_1.2/x");
  EXPECT_EQ(support::shell_quote("two words"), "'two words'");
  EXPECT_EQ(support::shell_quote(""), "''");
  EXPECT_EQ(support::shell_quote("it's"), "'it'\\''s'");
  EXPECT_EQ(support::shell_join({"a", "b c", "$d"}), "a 'b c' '$d'");
}

// --- transports ----------------------------------------------------------

TEST(Transport, TemplateExpansionAndValidation) {
  const WorkerCommand command{{"cicmon", "table1", "--scale", "0.5"}, {}};
  const WorkItem item{exp::Shard{2, 7}, "out dir/s.json", 0};
  EXPECT_EQ(CommandTemplateTransport::expand("ssh host {cmd} # {shard} -> {out}", command, item),
            "ssh host cicmon table1 --scale 0.5 # 2/7 -> 'out dir/s.json'");
  // Unknown placeholders and stray braces pass through untouched.
  EXPECT_EQ(CommandTemplateTransport::expand("{what} { {shard}", command, item), "{what} { 2/7");
  EXPECT_NO_THROW(CommandTemplateTransport("{cmd}"));
  EXPECT_THROW(CommandTemplateTransport("ssh host run-it"), support::CicError);
}

// --- orchestrator --------------------------------------------------------

TEST(Dispatch, MergesToDirectRunAndResumesFromArtifacts) {
  const std::string dir = make_test_dir("happy");
  const exp::SweepSpec spec = synthetic_sweep(11);
  write_good_artifacts(spec, 5, dir);
  const WorkerCommand base = script_worker(dir, "");
  LocalProcessTransport transport;

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 3, 5));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.shard_count, 5U);
  EXPECT_EQ(result.launched, 5U);
  EXPECT_EQ(result.reused, 0U);
  EXPECT_EQ(result.retried, 0U);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));

  // A second dispatch into the same artifact directory reuses every shard
  // without spawning a single worker.
  const DispatchResult again = dispatch_sweep(spec, base, transport, test_config(dir, 3, 5));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.reused, 5U);
  EXPECT_EQ(again.launched, 0U);
  EXPECT_EQ(again.cells, result.cells);
}

TEST(Dispatch, WorkerKilledMidShardIsReenqueuedAndRetried) {
  const std::string dir = make_test_dir("killed");
  const exp::SweepSpec spec = synthetic_sweep(9);
  write_good_artifacts(spec, 4, dir);
  // Shard 2's first worker dies by SIGKILL before producing an artifact; the
  // retry succeeds.
  const WorkerCommand base = script_worker(
      dir,
      "if [ \"$i\" = 2 ] && [ ! -e \"" + dir + "/marker-$i\" ]; then\n"
      "  : > \"" + dir + "/marker-$i\"\n"
      "  kill -9 $$\n"
      "fi");
  LocalProcessTransport transport;

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 2, 4));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.launched, 5U);  // 4 shards + 1 retry
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
  EXPECT_TRUE(std::filesystem::exists(dir + "/marker-2"));  // the kill fired
}

TEST(Dispatch, HungWorkerIsKilledOnTimeoutAndRetried) {
  const std::string dir = make_test_dir("timeout");
  const exp::SweepSpec spec = synthetic_sweep(6);
  write_good_artifacts(spec, 3, dir);
  const WorkerCommand base = script_worker(
      dir,
      "if [ \"$i\" = 1 ] && [ ! -e \"" + dir + "/marker-$i\" ]; then\n"
      "  : > \"" + dir + "/marker-$i\"\n"
      "  exec sleep 30\n"
      "fi");
  LocalProcessTransport transport;

  DispatchConfig config = test_config(dir, 3, 3);
  config.timeout_seconds = 0.5;
  const DispatchResult result = dispatch_sweep(spec, base, transport, config);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
}

TEST(Dispatch, CorruptArtifactIsDetectedAndRerun) {
  const std::string dir = make_test_dir("corrupt");
  const exp::SweepSpec spec = synthetic_sweep(10);
  write_good_artifacts(spec, 4, dir);
  // Shard 3's first worker exits cleanly but leaves a truncated artifact —
  // the merge-time validation must catch it at reap time and retry.
  const WorkerCommand base = script_worker(
      dir,
      "if [ \"$i\" = 3 ] && [ ! -e \"" + dir + "/marker-$i\" ]; then\n"
      "  : > \"" + dir + "/marker-$i\"\n"
      "  printf '{\"schema\": \"cicmon-shard-v1\", \"swee' > \"$out\"\n"
      "  exit 0\n"
      "fi");
  LocalProcessTransport transport;

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 2, 4));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
}

TEST(Dispatch, ExhaustedRetriesReportFailureAndKeepPeersResumable) {
  const std::string dir = make_test_dir("exhausted");
  const exp::SweepSpec spec = synthetic_sweep(12);
  write_good_artifacts(spec, 5, dir);
  // Shard 4 fails every attempt (exit 7, no artifact); the others succeed.
  const WorkerCommand base =
      script_worker(dir, "if [ \"$i\" = 4 ]; then exit 7; fi");
  LocalProcessTransport transport;

  const DispatchResult result =
      dispatch_sweep(spec, base, transport, test_config(dir, 2, 5, /*retries=*/1));
  ASSERT_FALSE(result.ok);
  EXPECT_TRUE(result.cells.empty());
  ASSERT_EQ(result.failures.size(), 1U);
  EXPECT_EQ(result.failures[0].item.shard.index, 4U);
  EXPECT_EQ(result.failures[0].item.attempts, 2U);  // first run + 1 retry
  EXPECT_NE(result.failures[0].reason.find("exit code 7"), std::string::npos)
      << result.failures[0].reason;

  // The four completed shards left valid artifacts behind: a re-dispatch
  // with a healthy worker reuses them and only runs the failed shard.
  const DispatchResult fixed =
      dispatch_sweep(spec, script_worker(dir, ""), transport, test_config(dir, 2, 5));
  ASSERT_TRUE(fixed.ok);
  EXPECT_EQ(fixed.reused, 4U);
  EXPECT_EQ(fixed.launched, 1U);
  EXPECT_EQ(fixed.cells, exp::run_all(spec, 1));
}

TEST(Dispatch, TemplateTransportRunsWorkersThroughTheShell) {
  const std::string dir = make_test_dir("template");
  const exp::SweepSpec spec = synthetic_sweep(7);
  write_good_artifacts(spec, 3, dir);
  const WorkerCommand base = script_worker(dir, "");
  // A wrapper that logs the shard then runs the worker command — the shape
  // an ssh or cluster-submit template takes.
  CommandTemplateTransport transport("echo {shard} >> " + dir + "/launches.txt && {cmd}");

  const DispatchResult result = dispatch_sweep(spec, base, transport, test_config(dir, 2, 3));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.cells, exp::run_all(spec, 1));
  EXPECT_TRUE(std::filesystem::exists(dir + "/launches.txt"));
}

// --- persistent worker sessions -----------------------------------------

TEST(Session, MessagesRoundTripThroughEncodeDecode) {
  exp::SweepSpec spec;
  spec.sweep = "table1";
  spec.params = {{"scale", "0.5"}, {"seed", "7"}};
  spec.cells = 27;
  const SessionMessage hello =
      decode_session_message(encode_hello("table1", "00deadbeef00face"));
  EXPECT_EQ(hello.type, SessionMessage::Type::kHello);
  EXPECT_EQ(hello.protocol, kSessionProtocolVersion);
  EXPECT_EQ(hello.sweep, "table1");
  EXPECT_EQ(hello.golden_key, "00deadbeef00face");
  EXPECT_TRUE(hello_mismatch(hello, spec).empty());

  const SessionMessage offer =
      decode_session_message(encode_golden_offer("00deadbeef00face", 3'000'000, 3));
  EXPECT_EQ(offer.type, SessionMessage::Type::kGoldenOffer);
  EXPECT_EQ(offer.offer_key, "00deadbeef00face");
  EXPECT_EQ(offer.golden_bytes, 3'000'000U);
  EXPECT_EQ(offer.golden_chunks, 3U);
  // The empty offer ("nothing to ship") is a valid record too.
  EXPECT_EQ(decode_session_message(encode_golden_offer("", 0, 0)).golden_chunks, 0U);

  const SessionMessage ack = decode_session_message(encode_golden_ack(true));
  EXPECT_EQ(ack.type, SessionMessage::Type::kGoldenAck);
  EXPECT_TRUE(ack.accept);

  const SessionMessage ready = decode_session_message(encode_ready(spec, "shipped"));
  EXPECT_EQ(ready.type, SessionMessage::Type::kReady);
  EXPECT_EQ(ready.sweep, "table1");
  EXPECT_EQ(ready.cells, 27U);
  EXPECT_EQ(ready.params, spec.params);
  EXPECT_EQ(ready.golden_source, "shipped");
  EXPECT_TRUE(ready_mismatch(ready, spec).empty());

  const SessionMessage assign =
      decode_session_message(encode_assign(exp::Shard{2, 5}, "out dir/a.json", true));
  EXPECT_EQ(assign.type, SessionMessage::Type::kAssign);
  EXPECT_EQ(assign.shard.index, 2U);
  EXPECT_EQ(assign.shard.count, 5U);
  EXPECT_EQ(assign.artifact_path, "out dir/a.json");
  EXPECT_TRUE(assign.force);

  const SessionMessage done =
      decode_session_message(encode_done(exp::Shard{5, 5}, "a.json", true, 321));
  EXPECT_EQ(done.type, SessionMessage::Type::kDone);
  EXPECT_TRUE(done.reused);
  EXPECT_EQ(done.wall_ms, 321U);
  EXPECT_TRUE(done.metrics.empty());  // no metrics argument -> field elided

  // The additive metrics field round-trips name/value pairs exactly.
  const SessionMessage done_metrics = decode_session_message(encode_done(
      exp::Shard{1, 3}, "b.json", false, 12,
      {{"engine.runs", 7}, {"campaign.trials", 250}}));
  EXPECT_EQ(done_metrics.type, SessionMessage::Type::kDone);
  ASSERT_EQ(done_metrics.metrics.size(), 2U);
  EXPECT_EQ(done_metrics.metrics[0].first, "engine.runs");
  EXPECT_EQ(done_metrics.metrics[0].second, 7U);
  EXPECT_EQ(done_metrics.metrics[1].first, "campaign.trials");
  EXPECT_EQ(done_metrics.metrics[1].second, 250U);

  // A done record from a pre-telemetry peer (no metrics key) still decodes.
  const SessionMessage old_done = decode_session_message(
      "{\"type\": \"done\", \"shard\": 1, \"shard_count\": 2, "
      "\"out\": \"x\", \"reused\": false, \"wall_ms\": 5}");
  EXPECT_EQ(old_done.type, SessionMessage::Type::kDone);
  EXPECT_TRUE(old_done.metrics.empty());

  const SessionMessage error =
      decode_session_message(encode_session_error(exp::Shard{1, 2}, "disk full"));
  EXPECT_EQ(error.type, SessionMessage::Type::kError);
  EXPECT_EQ(error.message, "disk full");

  EXPECT_EQ(decode_session_message(encode_shutdown()).type, SessionMessage::Type::kShutdown);

  EXPECT_THROW(decode_session_message("not json"), support::CicError);
  EXPECT_THROW(decode_session_message("{\"type\": \"launch-missiles\"}"), support::CicError);
  // Out-of-range shard coordinates are a structural violation.
  EXPECT_THROW(decode_session_message(
                   "{\"type\": \"done\", \"shard\": 9, \"shard_count\": 5, "
                   "\"out\": \"x\", \"reused\": false, \"wall_ms\": 0}"),
               support::CicError);
  // A golden offer whose key and chunk count disagree is structurally bogus:
  // "something to ship" needs both, "nothing" needs neither.
  EXPECT_THROW(decode_session_message(
                   "{\"type\": \"golden_offer\", \"key\": \"\", \"bytes\": 0, "
                   "\"chunks\": 3}"),
               support::CicError);
  EXPECT_THROW(decode_session_message(
                   "{\"type\": \"golden_offer\", \"key\": \"00deadbeef00face\", "
                   "\"bytes\": 9, \"chunks\": 0}"),
               support::CicError);
}

TEST(Session, HelloMismatchCatchesProtocolAndSweepButNotGoldenKeySkew) {
  exp::SweepSpec spec;
  spec.sweep = "fig6";
  spec.params = {{"scale", "1"}};
  spec.cells = 9;
  SessionMessage hello = decode_session_message(encode_hello("fig6", "1111111111111111"));
  EXPECT_TRUE(hello_mismatch(hello, spec).empty());
  SessionMessage skew = hello;
  skew.protocol = 99;
  EXPECT_NE(hello_mismatch(skew, spec).find("protocol"), std::string::npos);
  skew = hello;
  skew.sweep = "table1";
  EXPECT_FALSE(hello_mismatch(skew, spec).empty());
  // Golden-key skew downgrades shipping; it must never reject the worker.
  skew = hello;
  skew.golden_key = "2222222222222222";
  EXPECT_TRUE(hello_mismatch(skew, spec).empty());
}

TEST(Session, ReadyMismatchCatchesSweepCellsAndParams) {
  exp::SweepSpec spec;
  spec.sweep = "fig6";
  spec.params = {{"scale", "1"}};
  spec.cells = 9;
  SessionMessage ready = decode_session_message(encode_ready(spec, "derived"));
  EXPECT_TRUE(ready_mismatch(ready, spec).empty());
  SessionMessage skew = ready;
  skew.sweep = "table1";
  EXPECT_FALSE(ready_mismatch(skew, spec).empty());
  skew = ready;
  skew.cells = 10;
  EXPECT_FALSE(ready_mismatch(skew, spec).empty());
  skew = ready;
  skew.params = {{"scale", "2"}};
  EXPECT_FALSE(ready_mismatch(skew, spec).empty());
}

// The persistent-session integration tests run the REAL `cicmon worker`
// binary against a real (tiny) table1 sweep — the parent derives the same
// spec the worker will, exactly as `cicmon dispatch` does.
constexpr double kSessionScale = 0.02;

exp::SweepSpec session_sweep() { return sim::table1_sweep(kSessionScale); }

const std::vector<exp::CellResult>& session_direct_cells() {
  static const std::vector<exp::CellResult> cells = exp::run_all(session_sweep(), 1);
  return cells;
}

WorkerCommand cli_worker_command() {
  WorkerCommand base;
  base.argv = {CICMON_CLI_PATH, "table1", "--scale", exp::fmt_f64(kSessionScale)};
  base.session_argv = {CICMON_CLI_PATH, "worker", "table1", "--scale",
                       exp::fmt_f64(kSessionScale)};
  return base;
}

TEST(Sessions, ServeManyShardsPerProcessAndMergeToTheDirectRun) {
  const std::string dir = make_test_dir("sessions_happy");
  LocalProcessTransport transport;
  const DispatchResult result =
      dispatch_sweep(session_sweep(), cli_worker_command(), transport, test_config(dir, 2, 5));
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.persistent);
  EXPECT_EQ(result.shard_count, 5U);
  EXPECT_EQ(result.launched, 2U);  // 2 sessions served 5 shards — the whole point
  EXPECT_EQ(result.retried, 0U);
  EXPECT_EQ(result.cells, session_direct_cells());

  // A re-dispatch resumes every artifact without a single session spawn.
  const DispatchResult again =
      dispatch_sweep(session_sweep(), cli_worker_command(), transport, test_config(dir, 2, 5));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.reused, 5U);
  EXPECT_EQ(again.launched, 0U);
  EXPECT_EQ(again.cells, session_direct_cells());
}

TEST(Sessions, FlakyEnvHookKillsWorkerMidRecordAndTheShardIsRetried) {
  const std::string dir = make_test_dir("sessions_flaky");
  // The worker-side deterministic death hook: first worker to serve shard
  // 2/4 writes half a done record and SIGKILLs itself.
  ASSERT_EQ(setenv("CICMON_WORKER_FLAKY", "2/4", 1), 0);
  ASSERT_EQ(setenv("CICMON_WORKER_FLAKY_MARKER", (dir + "/markers").c_str(), 1), 0);
  LocalProcessTransport transport;
  const DispatchResult result =
      dispatch_sweep(session_sweep(), cli_worker_command(), transport, test_config(dir, 1, 4));
  unsetenv("CICMON_WORKER_FLAKY");
  unsetenv("CICMON_WORKER_FLAKY_MARKER");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retried, 1U);
  EXPECT_EQ(result.launched, 2U);  // the killed session + its replacement
  EXPECT_EQ(result.cells, session_direct_cells());
  EXPECT_TRUE(std::filesystem::exists(dir + "/markers/2of4"));
}

// The worker half of a v2 handshake, as precomputed frames plus the script
// lines that replay it: hello out, consume the golden offer (header line +
// payload line), decline it, report ready — enough for a /bin/sh "worker" to
// reach the assignment loop exactly as the real binary does.
std::string scripted_handshake(const std::string& dir, const exp::SweepSpec& spec) {
  write_file(dir + "/hello.bin", support::wire_frame(encode_hello(spec.sweep, "")));
  write_file(dir + "/ack.bin", support::wire_frame(encode_golden_ack(false)));
  write_file(dir + "/ready.bin", support::wire_frame(encode_ready(spec, "derived")));
  return "cat \"" + dir + "/hello.bin\"\n"
         "read offer_header; read offer_payload\n"
         "cat \"" + dir + "/ack.bin\"\n"
         "cat \"" + dir + "/ready.bin\"\n";
}

TEST(Sessions, IdleSessionIsNotKilledByItsCompletedAssignmentsDeadline) {
  // Regression: completing an assignment must clear its deadline. A session
  // idling after a fast shard (while a peer grinds the long-tail one) must
  // not be torn down as "timed out" when the finished assignment's deadline
  // passes.
  const std::string dir = make_test_dir("sessions_idle");
  const exp::SweepSpec spec = session_sweep();
  const std::string artifact = dir + "/a.json";
  write_file(dir + "/done.bin",
             support::wire_frame(encode_done(exp::Shard{1, 2}, artifact, false, 3)));
  const std::string path = dir + "/idle.sh";
  write_file(path, scripted_handshake(dir, spec) + "read assign_header\ncat \"" + dir +
                       "/done.bin\"\nexec sleep 30\n");
  using Clock = WorkerSession::Clock;
  WorkerSession session(support::spawn_process_piped({"/bin/sh", path}), nullptr,
                        Clock::now() + std::chrono::seconds(10),
                        /*grace_seconds=*/0.1);
  auto pump_until = [&](WorkerSession::Event::Kind kind) {
    const Clock::time_point give_up = Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < give_up) {
      const WorkerSession::Event event = session.pump(spec, Clock::now());
      if (event.kind == kind) return true;
      if (event.kind == WorkerSession::Event::Kind::kFailed) {
        ADD_FAILURE() << "session failed: " << event.reason;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };
  ASSERT_TRUE(pump_until(WorkerSession::Event::Kind::kReady));
  // A tight 100ms assignment deadline, acked almost instantly...
  WorkItem item{exp::Shard{1, 2}, artifact, 1};
  ASSERT_TRUE(session.assign(item, false, Clock::now() + std::chrono::milliseconds(100)));
  ASSERT_TRUE(pump_until(WorkerSession::Event::Kind::kDone));
  (void)session.take_item();
  EXPECT_EQ(session.state(), WorkerSession::State::kIdle);
  // ...then idle well past it: the session must stay alive and idle.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const WorkerSession::Event event = session.pump(spec, Clock::now());
  EXPECT_EQ(event.kind, WorkerSession::Event::Kind::kNone) << event.reason;
  EXPECT_EQ(session.state(), WorkerSession::State::kIdle);
  session.shutdown(0.1);
}

TEST(Sessions, FailedAssignWriteLeavesTheItemWithTheCaller) {
  // Regression: assign() must not consume the item when the pipe write
  // fails — the caller re-enqueues it, artifact path and all.
  const std::string dir = make_test_dir("sessions_deadpipe");
  const std::string path = dir + "/hello-then-die.sh";
  write_file(path, scripted_handshake(dir, session_sweep()) + "exit 0\n");
  using Clock = WorkerSession::Clock;
  WorkerSession session(support::spawn_process_piped({"/bin/sh", path}), nullptr,
                        Clock::now() + std::chrono::seconds(10),
                        /*grace_seconds=*/0.1);
  const Clock::time_point give_up = Clock::now() + std::chrono::seconds(10);
  while (session.state() != WorkerSession::State::kIdle && Clock::now() < give_up) {
    session.pump(session_sweep(), Clock::now());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(session.state(), WorkerSession::State::kIdle);
  // The worker is gone by now; give the kernel a beat to notice the reader
  // side is closed so the write fails with EPIPE.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string artifact = dir + "/artifacts/table1-1of2-with-a-long-path.shard.json";
  WorkItem item{exp::Shard{1, 2}, artifact, 1};
  EXPECT_FALSE(session.assign(item, false, Clock::now() + std::chrono::seconds(10)));
  EXPECT_EQ(session.state(), WorkerSession::State::kDead);
  EXPECT_EQ(item.artifact_path, artifact);  // intact for the re-enqueue
  EXPECT_EQ(item.shard.index, 1U);
}

// A saboteur session: speaks a valid v2 handshake (precomputed by the test,
// declining the golden offer), waits for its first assignment, emits
// `sabotage` as the response, and exits. Every later launch (the mkdir is
// atomic, so exactly one saboteur fires) execs the real worker binary, which
// serves the retried shard properly.
WorkerCommand saboteur_command(const std::string& dir, const std::string& sabotage) {
  const exp::SweepSpec spec = session_sweep();
  const std::string handshake = scripted_handshake(dir, spec);
  const std::string path = dir + "/session.sh";
  write_file(path,
             "if mkdir \"" + dir + "/sabotaged\" 2> /dev/null; then\n" +
                 handshake +
             "  read assign_header\n" +  // sync: an assignment is in flight
                 sabotage + "\n"
             "  exit 0\n"
             "fi\n"
             "exec " + std::string(CICMON_CLI_PATH) + " worker table1 --scale " +
                 exp::fmt_f64(kSessionScale) + " --jobs 1\n");
  WorkerCommand base = cli_worker_command();
  base.session_argv = {"/bin/sh", path};
  return base;
}

// Shared body for the adversarial-wire-input tests: one worker slot, three
// shards, the first session responds to its first assignment with `sabotage`
// — the orchestrator must tear the session down, re-enqueue the shard, and
// the respawned (honest) session must still produce the direct run's cells.
void expect_sabotage_recovered(const char* tag, const std::string& sabotage_template) {
  const std::string dir = make_test_dir(tag);
  std::string sabotage = sabotage_template;
  // Materials the saboteur can reference via %DIR%: done.bin is a valid,
  // complete done-record frame; bad.bin is the same frame with one payload
  // bit flipped (framing intact, checksum wrong).
  const std::string done_frame =
      support::wire_frame(encode_done(exp::Shard{1, 3}, "ignored.json", false, 2));
  std::ofstream done(dir + "/done.bin", std::ios::binary);
  done << done_frame;
  done.close();
  std::string corrupt = done_frame;
  corrupt[corrupt.size() - 4] ^= 0x01;  // payload bit flip: checksum mismatch
  std::ofstream bad(dir + "/bad.bin", std::ios::binary);
  bad << corrupt;
  bad.close();
  for (std::string::size_type pos; (pos = sabotage.find("%DIR%")) != std::string::npos;) {
    sabotage.replace(pos, 5, dir);
  }

  LocalProcessTransport transport;
  const DispatchResult result = dispatch_sweep(session_sweep(), saboteur_command(dir, sabotage),
                                               transport, test_config(dir, 1, 3));
  ASSERT_TRUE(result.ok) << tag << ": " << (result.failures.empty()
                                                ? "?"
                                                : result.failures.front().reason);
  EXPECT_GE(result.retried, 1U) << tag;
  EXPECT_EQ(result.cells, session_direct_cells()) << tag;
  EXPECT_TRUE(std::filesystem::exists(dir + "/sabotaged")) << tag;
}

TEST(Sessions, TruncatedFrameTearsDownSessionAndShardIsRetried) {
  // Half a done record, then EOF — the mid-record truncation signature.
  expect_sabotage_recovered("wire_truncated", "head -c 20 \"%DIR%/done.bin\"");
}

TEST(Sessions, ChecksumMismatchTearsDownSessionAndShardIsRetried) {
  expect_sabotage_recovered("wire_checksum", "cat \"%DIR%/bad.bin\"");
}

TEST(Sessions, GarbageLineTearsDownSessionAndShardIsRetried) {
  expect_sabotage_recovered("wire_garbage", "echo 'stray printf all over the protocol stream'");
}

TEST(Sessions, OversizedRecordTearsDownSessionAndShardIsRetried) {
  // A header promising a 99 MB record: rejected on sight, not buffered.
  expect_sabotage_recovered("wire_oversized",
                            "printf 'cicmon-wire-1 99999999 0123456789abcdef\\n'");
}

TEST(Sessions, WorkerSigkilledMidRecordIsRetried) {
  expect_sabotage_recovered("wire_sigkill",
                            "head -c 20 \"%DIR%/done.bin\"\nkill -9 $$");
}

TEST(Sessions, ProtocolVersionSkewIsASetupErrorNotARetryLoop) {
  const std::string dir = make_test_dir("sessions_protocol");
  const exp::SweepSpec spec = session_sweep();
  // A "worker" from the future: hello with protocol 99, every launch.
  std::string hello = encode_hello(spec.sweep, "");
  const std::string::size_type pos = hello.find("\"protocol\": 2");
  ASSERT_NE(pos, std::string::npos);
  hello.replace(pos, 13, "\"protocol\": 99");
  std::ofstream out(dir + "/hello.bin", std::ios::binary);
  out << support::wire_frame(hello);
  out.close();
  const std::string path = dir + "/future.sh";
  write_file(path, "cat \"" + dir + "/hello.bin\"\nread ignored\nexit 0\n");
  WorkerCommand base = cli_worker_command();
  base.session_argv = {"/bin/sh", path};
  LocalProcessTransport transport;
  // retries+1 consecutive handshake failures = the worker command is broken.
  EXPECT_THROW(dispatch_sweep(spec, base, transport, test_config(dir, 1, 3)),
               support::CicError);
}

TEST(Sessions, SpecSkewedWorkerFailsTheHandshake) {
  const std::string dir = make_test_dir("sessions_skew");
  // A real worker, wrong flags: derives table1 at another scale, so its
  // hello reports different params — caught before any shard is wasted.
  WorkerCommand base = cli_worker_command();
  base.session_argv = {CICMON_CLI_PATH, "worker", "table1", "--scale", "0.5"};
  LocalProcessTransport transport;
  EXPECT_THROW(dispatch_sweep(session_sweep(), base, transport, test_config(dir, 1, 3)),
               support::CicError);
}

TEST(Sessions, ExecPerShardRemainsTheFallbackWhenNoSessionCommandIsGiven) {
  const std::string dir = make_test_dir("sessions_fallback");
  WorkerCommand base = cli_worker_command();
  base.session_argv.clear();  // what a template transport / --exec-per-shard does
  LocalProcessTransport transport;
  const DispatchResult result =
      dispatch_sweep(session_sweep(), base, transport, test_config(dir, 2, 3));
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.persistent);
  EXPECT_EQ(result.launched, 3U);  // one exec per shard
  EXPECT_EQ(result.cells, session_direct_cells());
}

TEST(Sessions, TemplateTransportCarriesSessionsWhenItForwardsStdio) {
  // The ssh-style case: a template with no per-item placeholders wraps the
  // session command once per worker slot and forwards stdio, so a multi-host
  // fleet gets persistent sessions (and golden shipping) instead of falling
  // back to exec-per-shard.
  const std::string dir = make_test_dir("sessions_template");
  CommandTemplateTransport transport("echo launched >> " + dir + "/launches.txt && {cmd}");
  const DispatchResult result =
      dispatch_sweep(session_sweep(), cli_worker_command(), transport, test_config(dir, 2, 5));
  ASSERT_TRUE(result.ok) << (result.failures.empty() ? "?" : result.failures.front().reason);
  EXPECT_TRUE(result.persistent);
  EXPECT_EQ(result.launched, 2U);  // sessions, not five exec workers
  EXPECT_EQ(result.cells, session_direct_cells());
  EXPECT_TRUE(std::filesystem::exists(dir + "/launches.txt"));
}

TEST(Sessions, GoldenKeySkewDowngradesShippingNotTheWorker) {
  // The orchestrator has golden state but the worker's hello reports a
  // different (here: empty — table1 ships nothing) key: the offer is
  // withheld, the worker derives locally, and the run still merges to the
  // direct cells. Skew must never look like a broken worker.
  const std::string dir = make_test_dir("sessions_keyskew");
  DispatchConfig config = test_config(dir, 2, 4);
  config.golden = std::make_shared<GoldenShipment>(
      make_golden_shipment("1234567890abcdef", "not-a-real-golden-blob"));
  LocalProcessTransport transport;
  const DispatchResult result =
      dispatch_sweep(session_sweep(), cli_worker_command(), transport, config);
  ASSERT_TRUE(result.ok) << (result.failures.empty() ? "?" : result.failures.front().reason);
  EXPECT_EQ(result.golden_shipped, 0U);
  EXPECT_EQ(result.cells, session_direct_cells());
}

// --- the real CLI end to end: golden shipping on the dispatch path ---------

int run_cli(const std::string& shell_command) {
  return support::spawn_process({"/bin/sh", "-c", shell_command}).wait();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// One tiny campaign, used by every CLI-level test below.
std::string campaign_flags() {
  return " --workload bitcount --scale 0.02 --site memory-text --trials 48 --seed 9";
}

TEST(Cli, DispatchedCampaignGoldenShippingIsByteIdenticalToTheDirectRun) {
  const std::string dir = make_test_dir("cli_golden");
  const std::string cli = CICMON_CLI_PATH;
  ASSERT_TRUE(support::exit_ok(
      run_cli(cli + " campaign" + campaign_flags() + " > " + dir + "/direct.txt 2>/dev/null")));
  const std::string direct = read_file(dir + "/direct.txt");
  ASSERT_FALSE(direct.empty());

  // Shipping on (the default), with a disk cache.
  ASSERT_TRUE(support::exit_ok(run_cli(
      cli + " dispatch campaign" + campaign_flags() + " --workers 2 --shards 4 --quiet" +
      " --dir " + dir + "/a1 --golden-cache " + dir + "/cache > " + dir + "/ship.txt 2> " +
      dir + "/ship.err")));
  EXPECT_EQ(read_file(dir + "/ship.txt"), direct);
  // Both workers took the wire shipment instead of paying a golden run.
  EXPECT_NE(read_file(dir + "/ship.err").find("2 shipped"), std::string::npos)
      << read_file(dir + "/ship.err");
  // The orchestrator's derivation landed in the content-addressed cache.
  bool cached = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir + "/cache")) {
    cached |= entry.path().string().ends_with(".golden");
  }
  EXPECT_TRUE(cached);

  // Shipping off: every worker derives locally — byte-identical output.
  ASSERT_TRUE(support::exit_ok(run_cli(
      cli + " dispatch campaign" + campaign_flags() + " --workers 2 --shards 4 --quiet" +
      " --ship-golden off --dir " + dir + "/a2 > " + dir + "/noship.txt 2> " + dir +
      "/noship.err")));
  EXPECT_EQ(read_file(dir + "/noship.txt"), direct);
  EXPECT_NE(read_file(dir + "/noship.err").find("2 derived"), std::string::npos)
      << read_file(dir + "/noship.err");

  // A rerun against the same cache starts from the cached blob (orchestrator
  // side) and still ships — and still matches byte for byte.
  ASSERT_TRUE(support::exit_ok(run_cli(
      cli + " dispatch campaign" + campaign_flags() + " --workers 2 --shards 4 --quiet" +
      " --dir " + dir + "/a3 --golden-cache " + dir + "/cache > " + dir + "/cachehit.txt 2> " +
      dir + "/cachehit.err")));
  EXPECT_EQ(read_file(dir + "/cachehit.txt"), direct);
}

TEST(Cli, WorkerKilledMidGoldenChunkIsReplacedAndStillMergesByteIdentical) {
  const std::string dir = make_test_dir("cli_golden_kill");
  const std::string cli = CICMON_CLI_PATH;
  ASSERT_TRUE(support::exit_ok(
      run_cli(cli + " campaign" + campaign_flags() + " > " + dir + "/direct.txt 2>/dev/null")));
  // The first worker to have a golden chunk in hand SIGKILLs itself
  // mid-stream; the orchestrator must tear that session down (handshake
  // failure, not a lost shard) and the replacement worker finishes the run.
  ASSERT_TRUE(support::exit_ok(run_cli(
      "CICMON_WORKER_FLAKY_GOLDEN=1 CICMON_WORKER_FLAKY_MARKER=" + dir + "/markers " + cli +
      " dispatch campaign" + campaign_flags() + " --workers 2 --shards 4 --quiet --dir " +
      dir + "/a1 > " + dir + "/killed.txt 2> " + dir + "/killed.err")));
  EXPECT_EQ(read_file(dir + "/killed.txt"), read_file(dir + "/direct.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/markers/golden"))
      << read_file(dir + "/killed.err");
}

TEST(Dispatch, PlanResolvesCountsAndSessionMode) {
  const exp::SweepSpec spec = synthetic_sweep(10);
  DispatchConfig config;
  config.workers = 3;
  WorkerCommand base{{"sh"}, {"sh", "worker"}};
  LocalProcessTransport local;
  DispatchPlan plan = plan_dispatch(spec, base, local, config);
  EXPECT_EQ(plan.workers, 3U);
  EXPECT_EQ(plan.shards, 10U);  // 4x workers capped at the cell count
  EXPECT_TRUE(plan.persistent);
  config.persistent = false;
  EXPECT_FALSE(plan_dispatch(spec, base, local, config).persistent);
  config.persistent = true;
  // A stdio-forwarding template carries sessions; per-item placeholders pin
  // the template to exec-per-shard.
  CommandTemplateTransport forwarding("ssh host {cmd}");
  EXPECT_TRUE(forwarding.supports_sessions());
  EXPECT_TRUE(plan_dispatch(spec, base, forwarding, config).persistent);
  CommandTemplateTransport pinned("run {cmd} --shard {shard} --out {out}");
  EXPECT_FALSE(pinned.supports_sessions());
  EXPECT_FALSE(plan_dispatch(spec, base, pinned, config).persistent);
  base.session_argv.clear();
  EXPECT_FALSE(plan_dispatch(spec, base, local, config).persistent);
  // exec_worker_argv is the exact sharded-run invocation.
  const WorkItem item{exp::Shard{2, 5}, "runs/synthetic-2of5.shard.json", 0};
  EXPECT_EQ(exec_worker_argv(base, 2, item, true),
            (std::vector<std::string>{"sh", "--jobs", "2", "--shard", "2/5", "--out",
                                      "runs/synthetic-2of5.shard.json", "--force"}));
  EXPECT_EQ(session_worker_argv(WorkerCommand{{"sh"}, {"sh", "worker"}}, 3),
            (std::vector<std::string>{"sh", "worker", "--jobs", "3"}));
}

TEST(Dispatch, ShardArtifactPathNamesSweepAndCoordinates) {
  EXPECT_EQ(shard_artifact_path("runs", "campaign", exp::Shard{3, 7}),
            "runs/campaign-3of7.shard.json");
}

TEST(Dispatch, RejectsEmptySweepsAndCommands) {
  const exp::SweepSpec empty;
  LocalProcessTransport transport;
  const DispatchConfig config;
  EXPECT_THROW(dispatch_sweep(empty, WorkerCommand{{"sh"}, {}}, transport, config),
               support::CicError);
  EXPECT_THROW(dispatch_sweep(synthetic_sweep(3), WorkerCommand{}, transport, config),
               support::CicError);
}

}  // namespace
}  // namespace cicmon::dist
