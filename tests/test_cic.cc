// Code Integrity Checker tests: IHT lookup semantics, replacement policies,
// statistics, and the checker device.
#include <gtest/gtest.h>

#include "cic/checker.h"
#include "cic/iht.h"
#include "support/error.h"

namespace cicmon::cic {
namespace {

TEST(Iht, HitMissMismatchTaxonomy) {
  Iht iht(4, ReplacePolicy::kLru);
  iht.fill(0x100, 0x10C, 0xAAAA);

  const auto hit = iht.lookup(0x100, 0x10C, 0xAAAA);
  EXPECT_TRUE(hit.found);
  EXPECT_TRUE(hit.match);

  const auto mismatch = iht.lookup(0x100, 0x10C, 0xBBBB);
  EXPECT_TRUE(mismatch.found);
  EXPECT_FALSE(mismatch.match);

  const auto miss = iht.lookup(0x200, 0x20C, 0xAAAA);
  EXPECT_FALSE(miss.found);
  EXPECT_FALSE(miss.match);

  EXPECT_EQ(iht.stats().lookups, 3U);
  EXPECT_EQ(iht.stats().hits, 1U);
  EXPECT_EQ(iht.stats().mismatches, 1U);
  EXPECT_EQ(iht.stats().misses, 1U);
  EXPECT_DOUBLE_EQ(iht.stats().miss_rate(), 1.0 / 3.0);
}

TEST(Iht, MatchRequiresBothAddresses) {
  Iht iht(2, ReplacePolicy::kLru);
  iht.fill(0x100, 0x10C, 1);
  EXPECT_FALSE(iht.lookup(0x100, 0x110, 1).found);  // same start, other end
  EXPECT_FALSE(iht.lookup(0x104, 0x10C, 1).found);  // other start, same end
}

TEST(Iht, FillOverwritesSameRange) {
  Iht iht(2, ReplacePolicy::kLru);
  iht.fill(0x100, 0x10C, 1);
  iht.fill(0x100, 0x10C, 2);
  EXPECT_EQ(iht.valid_entries(), 1U);
  EXPECT_TRUE(iht.lookup(0x100, 0x10C, 2).match);
}

TEST(Iht, LruVictimIsLeastRecentlyMatched) {
  Iht iht(2, ReplacePolicy::kLru);
  iht.fill(0x100, 0x10C, 1);
  iht.fill(0x200, 0x20C, 2);
  iht.lookup(0x100, 0x10C, 1);      // touch the first entry
  iht.fill(0x300, 0x30C, 3);        // must evict 0x200
  EXPECT_TRUE(iht.lookup(0x100, 0x10C, 1).found);
  EXPECT_FALSE(iht.lookup(0x200, 0x20C, 2).found);
  EXPECT_TRUE(iht.lookup(0x300, 0x30C, 3).found);
}

TEST(Iht, FifoVictimIsOldestFill) {
  Iht iht(2, ReplacePolicy::kFifo);
  iht.fill(0x100, 0x10C, 1);
  iht.fill(0x200, 0x20C, 2);
  iht.lookup(0x100, 0x10C, 1);  // touching must NOT matter for FIFO
  iht.fill(0x300, 0x30C, 3);    // evicts 0x100 (oldest fill)
  EXPECT_FALSE(iht.lookup(0x100, 0x10C, 1).found);
  EXPECT_TRUE(iht.lookup(0x200, 0x20C, 2).found);
}

TEST(Iht, RandomPolicyIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Iht iht(4, ReplacePolicy::kRandom, seed);
    for (std::uint32_t i = 0; i < 16; ++i) iht.fill(i * 0x10, i * 0x10 + 8, i);
    std::vector<std::uint32_t> survivors;
    for (const IhtEntry& e : iht.entries()) survivors.push_back(e.start);
    return survivors;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(Iht, InvalidateVictimsRespectsCount) {
  Iht iht(8, ReplacePolicy::kLru);
  for (std::uint32_t i = 0; i < 8; ++i) iht.fill(i * 0x10, i * 0x10 + 8, i);
  EXPECT_EQ(iht.invalidate_victims(4), 4U);
  EXPECT_EQ(iht.valid_entries(), 4U);
  EXPECT_EQ(iht.invalidate_victims(100), 4U);  // stops at empty
  EXPECT_EQ(iht.valid_entries(), 0U);
}

TEST(Iht, InvalidateVictimsPrefersLru) {
  Iht iht(4, ReplacePolicy::kLru);
  for (std::uint32_t i = 0; i < 4; ++i) iht.fill(i * 0x10, i * 0x10 + 8, i);
  iht.lookup(0x00, 0x08, 0);  // make entry 0 the most recent
  iht.invalidate_victims(3);
  EXPECT_EQ(iht.valid_entries(), 1U);
  EXPECT_TRUE(iht.lookup(0x00, 0x08, 0).found);
}

TEST(Iht, InvalidateAll) {
  Iht iht(4, ReplacePolicy::kLru);
  iht.fill(0x100, 0x108, 1);
  iht.invalidate_all();
  EXPECT_EQ(iht.valid_entries(), 0U);
  EXPECT_FALSE(iht.lookup(0x100, 0x108, 1).found);
}

TEST(Iht, SingleEntryTableWorks) {
  Iht iht(1, ReplacePolicy::kLru);
  iht.fill(0x100, 0x108, 1);
  EXPECT_TRUE(iht.lookup(0x100, 0x108, 1).match);
  iht.fill(0x200, 0x208, 2);  // replaces the only slot
  EXPECT_FALSE(iht.lookup(0x100, 0x108, 1).found);
}

TEST(Iht, ZeroEntriesRejected) {
  EXPECT_THROW(Iht(0, ReplacePolicy::kLru), support::CicError);
}

TEST(Iht, ResetStatsKeepsContents) {
  Iht iht(2, ReplacePolicy::kLru);
  iht.fill(0x100, 0x108, 1);
  iht.lookup(0x100, 0x108, 1);
  iht.reset_stats();
  EXPECT_EQ(iht.stats().lookups, 0U);
  EXPECT_TRUE(iht.lookup(0x100, 0x108, 1).found);
}

TEST(PolicyNames, AllNamed) {
  EXPECT_EQ(replace_policy_name(ReplacePolicy::kLru), "lru");
  EXPECT_EQ(replace_policy_name(ReplacePolicy::kFifo), "fifo");
  EXPECT_EQ(replace_policy_name(ReplacePolicy::kRandom), "random");
}

TEST(Checker, ForwardsToConfiguredHash) {
  CicConfig config;
  config.hash_kind = hash::HashKind::kXor;
  CodeIntegrityChecker cic(config);
  EXPECT_EQ(cic.hash_step(0xF0F0, 0x0F0F), 0xFFFFU);
  EXPECT_EQ(cic.rhash_init(), 0U);
}

TEST(Checker, KeyedHashUsesProcessKey) {
  CicConfig config;
  config.hash_kind = hash::HashKind::kRotXorKeyed;
  config.hash_key = 0xDEAD;
  CodeIntegrityChecker cic(config);
  EXPECT_EQ(cic.rhash_init(), 0xDEADU);
}

TEST(Checker, LatchesLastLookupKeyForTheOs) {
  CicConfig config;
  CodeIntegrityChecker cic(config);
  cic.lookup(0x111, 0x222, 0x333);
  EXPECT_EQ(cic.last_lookup().start, 0x111U);
  EXPECT_EQ(cic.last_lookup().end, 0x222U);
  EXPECT_EQ(cic.last_lookup().hash, 0x333U);
}

TEST(Checker, StatsFlowThroughToIht) {
  CicConfig config;
  config.iht_entries = 2;
  CodeIntegrityChecker cic(config);
  cic.lookup(1, 2, 3);
  EXPECT_EQ(cic.iht().stats().misses, 1U);
}

}  // namespace
}  // namespace cicmon::cic
