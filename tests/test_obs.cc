// Unit tests for the obs:: telemetry layer: the metrics registry (interning,
// thread-shard aggregation, deltas, rendering) and the cicmon-trace-v1 sink
// plus its report renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/json.h"
#include "support/parallel.h"

namespace cicmon::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_for_tests(); }
  void TearDown() override { reset_for_tests(); }
};

TEST_F(ObsTest, InternReturnsStableIds) {
  const CounterId a = counter("test.a");
  const CounterId b = counter("test.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(counter("test.a"), a);  // re-interning is idempotent
  // The three kinds have independent id spaces; the same name may appear in
  // each without collision.
  const TimerId t = timer("test.a");
  bump(a, 2);
  record(t, 1.5);
  const MetricsSnapshot snap = snapshot();
  ASSERT_EQ(snap.counters.size(), 1U);
  EXPECT_EQ(snap.counters[0].first, "test.a");
  EXPECT_EQ(snap.counters[0].second, 2U);
  ASSERT_EQ(snap.timers.size(), 1U);
  EXPECT_EQ(snap.timers[0].first, "test.a");
  EXPECT_EQ(snap.timers[0].second.count(), 1U);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndElidesZeroes) {
  bump(counter("test.zebra"), 1);
  bump(counter("test.alpha"), 3);
  counter("test.untouched");  // registered, never bumped -> elided
  const MetricsSnapshot snap = snapshot();
  ASSERT_EQ(snap.counters.size(), 2U);
  EXPECT_EQ(snap.counters[0].first, "test.alpha");
  EXPECT_EQ(snap.counters[1].first, "test.zebra");
}

TEST_F(ObsTest, StringFormsInternOnTheFly) {
  bump("test.cold", 5);
  record("test.cold_timer", 2.0);
  const MetricsSnapshot snap = snapshot();
  ASSERT_EQ(snap.counters.size(), 1U);
  EXPECT_EQ(snap.counters[0].second, 5U);
  ASSERT_EQ(snap.timers.size(), 1U);
  EXPECT_DOUBLE_EQ(snap.timers[0].second.mean(), 2.0);
}

TEST_F(ObsTest, ThreadShardsAggregateExactly) {
  // Bumps from a parallel region must sum exactly once the region joins,
  // regardless of which pool thread (or how many) did the work — including
  // shards folded into the retired base when pool threads exit.
  const CounterId hits = counter("test.parallel.hits");
  const TimerId wait = timer("test.parallel.wait");
  constexpr std::size_t kN = 10'000;
  support::parallel_for(kN, 8, [&](std::size_t i) {
    bump(hits);
    if (i % 100 == 0) record(wait, static_cast<double>(i));
  });
  const MetricsSnapshot snap = snapshot();
  ASSERT_EQ(snap.counters.size(), 1U);
  EXPECT_EQ(snap.counters[0].second, kN);
  ASSERT_EQ(snap.timers.size(), 1U);
  EXPECT_EQ(snap.timers[0].second.count(), kN / 100);
  // Welford merge across shards: the moments match the closed form for
  // {0, 100, ..., 9900}.
  EXPECT_DOUBLE_EQ(snap.timers[0].second.mean(), 4950.0);
  EXPECT_DOUBLE_EQ(snap.timers[0].second.min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.timers[0].second.max(), 9900.0);
}

TEST_F(ObsTest, HistogramObserve) {
  const HistId h = histogram("test.hist");
  observe(h, -1, 2);
  observe(h, 5);
  support::parallel_for(100, 4, [&](std::size_t) { observe(h, 7); });
  const MetricsSnapshot snap = snapshot();
  ASSERT_EQ(snap.histograms.size(), 1U);
  EXPECT_EQ(snap.histograms[0].second.total(), 103U);
}

TEST_F(ObsTest, CounterDeltaReportsOnlyIncrements) {
  const CounterId a = counter("test.delta.a");
  const CounterId b = counter("test.delta.b");
  bump(a, 10);
  const std::vector<std::uint64_t> before = counter_values();
  bump(a, 3);
  // A counter registered after the capture reads as zero-before.
  const CounterId late = counter("test.delta.late");
  bump(late, 7);
  (void)b;  // never bumped -> not in the delta
  const auto delta = counter_delta(before);
  ASSERT_EQ(delta.size(), 2U);
  EXPECT_EQ(delta[0].first, "test.delta.a");
  EXPECT_EQ(delta[0].second, 3U);
  EXPECT_EQ(delta[1].first, "test.delta.late");
  EXPECT_EQ(delta[1].second, 7U);
}

TEST_F(ObsTest, RenderMetricsJsonIsValid) {
  bump(counter("test.render.count"), 4);
  record(timer("test.render.ms"), 2.5);
  const std::string text = render_metrics_json(snapshot(), "unit");
  const support::JsonValue root = support::parse_json(text);
  EXPECT_EQ(root.at("schema").as_string(), "cicmon-metrics-v1");
  EXPECT_EQ(root.at("command").as_string(), "unit");
  EXPECT_EQ(root.at("counters").at("test.render.count").as_u64(), 4U);
  EXPECT_EQ(root.at("timers").at("test.render.ms").at("count").as_u64(), 1U);
}

TEST_F(ObsTest, RenderMetricsTableListsEverything) {
  bump(counter("test.table.c"), 9);
  record(timer("test.table.t"), 1.0);
  const std::string text = render_metrics_table(snapshot());
  EXPECT_NE(text.find("test.table.c"), std::string::npos);
  EXPECT_NE(text.find("test.table.t"), std::string::npos);
  EXPECT_NE(text.find("9"), std::string::npos);
}

TEST_F(ObsTest, TraceProducesValidJsonl) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cicmon-test-trace.jsonl").string();
  ASSERT_TRUE(open_trace(path, "unit"));
  EXPECT_TRUE(trace_enabled());
  bump(counter("test.trace.events"), 2);
  trace_instant("unit.instant", TraceArgs().add("key", "va\"lue").add("n", std::uint64_t{7}));
  const std::uint64_t start = trace_now_us();
  Span span("unit.span");
  span.args().add("ratio", 0.25).add("flag", true);
  span.close();
  trace_span("unit.manual", start);
  close_trace();
  EXPECT_FALSE(trace_enabled());

  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) text.append(buffer, got);
  std::fclose(in);
  std::remove(path.c_str());

  // Every line parses as JSON; the header and final metrics line frame the
  // events; the escaped arg survives the round trip.
  std::vector<support::JsonValue> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    lines.push_back(support::parse_json(text.substr(pos, eol - pos)));
    pos = eol + 1;
  }
  ASSERT_EQ(lines.size(), 5U);
  EXPECT_EQ(lines[0].at("schema").as_string(), "cicmon-trace-v1");
  EXPECT_EQ(lines[0].at("command").as_string(), "unit");
  EXPECT_EQ(lines[1].at("ev").as_string(), "instant");
  EXPECT_EQ(lines[1].at("args").at("key").as_string(), "va\"lue");
  EXPECT_EQ(lines[2].at("ev").as_string(), "span");
  EXPECT_EQ(lines[2].at("name").as_string(), "unit.span");
  EXPECT_TRUE(lines[2].at("args").at("flag").as_bool());
  EXPECT_EQ(lines[3].at("name").as_string(), "unit.manual");
  EXPECT_EQ(lines[4].at("ev").as_string(), "metrics");
  EXPECT_EQ(lines[4].at("counters").at("test.trace.events").as_u64(), 2U);
}

TEST_F(ObsTest, EmitsAreNoOpsWhenDisabled) {
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(trace_now_us(), 0U);
  trace_instant("ignored");
  trace_span("ignored", 0);
  Span span("ignored");  // destructor must not crash or write
}

TEST_F(ObsTest, RenderReportBreaksDownPhasesAndWorkers) {
  const std::string trace =
      "{\"schema\":\"cicmon-trace-v1\",\"command\":\"dispatch\"}\n"
      "{\"ev\":\"instant\",\"name\":\"session.ready\",\"t_us\":10,"
      "\"args\":{\"worker\":1,\"golden\":\"shipped\"}}\n"
      "{\"ev\":\"span\",\"name\":\"dispatch.shard\",\"t_us\":100,\"dur_us\":4000,"
      "\"args\":{\"shard\":\"1/2\",\"worker\":1,\"queue_wait_ms\":0.500,"
      "\"wall_ms\":4,\"reused\":false}}\n"
      "{\"ev\":\"span\",\"name\":\"dispatch.shard\",\"t_us\":200,\"dur_us\":8000,"
      "\"args\":{\"shard\":\"2/2\",\"worker\":2,\"queue_wait_ms\":1.250,"
      "\"wall_ms\":8,\"reused\":true}}\n"
      "{\"ev\":\"span\",\"name\":\"dispatch.run\",\"t_us\":0,\"dur_us\":9000}\n"
      "{\"ev\":\"metrics\",\"counters\":{\"dispatch.retries\":1},\"timers\":{}}\n";
  const std::string report = render_report(trace);
  EXPECT_NE(report.find("trace: dispatch"), std::string::npos);
  EXPECT_NE(report.find("dispatch.shard"), std::string::npos);
  EXPECT_NE(report.find("dispatch.run"), std::string::npos);
  // Both workers appear with their shard; the reused flag renders.
  EXPECT_NE(report.find("2/2"), std::string::npos);
  EXPECT_NE(report.find("yes"), std::string::npos);
  EXPECT_NE(report.find("dispatch.retries"), std::string::npos);
}

TEST_F(ObsTest, RenderReportRejectsGarbage) {
  EXPECT_THROW(render_report(""), support::CicError);
  EXPECT_THROW(render_report("{\"schema\":\"wrong\"}\n"), support::CicError);
  EXPECT_THROW(render_report("not json at all\n"), support::CicError);
}

}  // namespace
}  // namespace cicmon::obs
