// Workload tests: every kernel must compute correct results (its built-in
// self-checks pass) on the plain machine AND behave identically under the
// monitor — parameterized across all nine benchmarks.
#include <gtest/gtest.h>

#include "cpu/cpu.h"
#include "support/error.h"
#include "workloads/refs.h"
#include "workloads/workloads.h"

namespace cicmon::workloads {
namespace {

constexpr double kTestScale = 0.05;  // keep test runtime low

class EveryWorkload : public ::testing::TestWithParam<WorkloadInfo> {};

TEST_P(EveryWorkload, SelfChecksPassUnmonitored) {
  const casm_::Image image = GetParam().build({kTestScale, 42});
  cpu::Cpu cpu(cpu::CpuConfig{}, image);
  const cpu::RunResult r = cpu.run();
  EXPECT_EQ(r.reason, cpu::ExitReason::kExit)
      << GetParam().name << ": observed " << r.check_observed << " expected "
      << r.check_expected;
  EXPECT_EQ(r.exit_code, 0U);
}

TEST_P(EveryWorkload, MonitoringIsTransparent) {
  const casm_::Image image = GetParam().build({kTestScale, 42});
  cpu::CpuConfig off;
  cpu::Cpu plain(off, image);
  const cpu::RunResult r_off = plain.run();

  cpu::CpuConfig on;
  on.monitoring = true;
  on.cic.iht_entries = 8;
  cpu::Cpu monitored(on, image);
  const cpu::RunResult r_on = monitored.run();

  EXPECT_EQ(r_on.reason, cpu::ExitReason::kExit) << GetParam().name;
  EXPECT_EQ(r_on.instructions, r_off.instructions) << GetParam().name;
  EXPECT_EQ(r_on.console, r_off.console) << GetParam().name;
  EXPECT_EQ(r_on.app_cycles(), r_off.cycles) << GetParam().name;
  EXPECT_GT(r_on.iht.lookups, 0U) << GetParam().name;
}

TEST_P(EveryWorkload, ScaleGrowsWork) {
  const casm_::Image small = GetParam().build({0.05, 42});
  const casm_::Image large = GetParam().build({2.0, 42});
  cpu::Cpu cpu_small(cpu::CpuConfig{}, small);
  cpu::Cpu cpu_large(cpu::CpuConfig{}, large);
  EXPECT_LT(cpu_small.run().instructions, cpu_large.run().instructions) << GetParam().name;
}

TEST_P(EveryWorkload, SeedChangesInputsNotCorrectness) {
  const casm_::Image image = GetParam().build({kTestScale, 1234});
  cpu::Cpu cpu(cpu::CpuConfig{}, image);
  EXPECT_EQ(cpu.run().reason, cpu::ExitReason::kExit) << GetParam().name;
}

TEST_P(EveryWorkload, DeterministicBuilds) {
  const casm_::Image a = GetParam().build({kTestScale, 42});
  const casm_::Image b = GetParam().build({kTestScale, 42});
  EXPECT_EQ(a.text, b.text) << GetParam().name;
  EXPECT_EQ(a.data, b.data) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllNine, EveryWorkload, ::testing::ValuesIn([] {
                           std::vector<WorkloadInfo> infos;
                           for (const WorkloadInfo& info : all_workloads()) {
                             infos.push_back(info);
                           }
                           return infos;
                         }()),
                         [](const ::testing::TestParamInfo<WorkloadInfo>& info) {
                           return std::string(info.param.name);
                         });

TEST(Registry, NineWorkloadsInPaperOrder) {
  const auto infos = all_workloads();
  ASSERT_EQ(infos.size(), 9U);
  EXPECT_EQ(infos.front().name, "basicmath");
  EXPECT_EQ(infos.back().name, "bitcount");
  EXPECT_EQ(find_workload("sha").name, "sha");
  EXPECT_THROW(find_workload("nonesuch"), support::CicError);
}

TEST(Refs, IsqrtExactOnSquaresAndNeighbours) {
  for (std::uint32_t r = 7; r < 300; r += 7) {
    EXPECT_EQ(refs::isqrt32(r * r), r);
    if (r > 0) {
      EXPECT_EQ(refs::isqrt32(r * r - 1), r - 1);
    }
    EXPECT_EQ(refs::isqrt32(r * r + 1), r);
  }
  EXPECT_EQ(refs::isqrt32(0xFFFFFFFF), 65535U);
}

TEST(Refs, GcdProperties) {
  EXPECT_EQ(refs::gcd32(12, 18), 6U);
  EXPECT_EQ(refs::gcd32(17, 13), 1U);
  EXPECT_EQ(refs::gcd32(0, 5), 5U);
  EXPECT_EQ(refs::gcd32(5, 0), 5U);
  EXPECT_EQ(refs::gcd32(36, 36), 36U);
}

TEST(Refs, BmhAgreesWithBrute) {
  support::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> text(40 + rng.below(60));
    for (auto& c : text) c = static_cast<std::uint8_t>('a' + rng.below(4));
    std::vector<std::uint8_t> pat(1 + rng.below(5));
    for (auto& c : pat) c = static_cast<std::uint8_t>('a' + rng.below(4));
    EXPECT_EQ(refs::bmh_count(text, pat), refs::brute_count(text, pat))
        << "trial " << trial;
  }
}

TEST(Refs, BmhEdgeCases) {
  const std::vector<std::uint8_t> text{'a', 'a', 'a', 'a'};
  EXPECT_EQ(refs::bmh_count(text, std::vector<std::uint8_t>{}), 0U);
  EXPECT_EQ(refs::bmh_count(text, std::vector<std::uint8_t>{'a', 'a', 'a', 'a', 'a'}), 0U);
  EXPECT_EQ(refs::bmh_count(text, std::vector<std::uint8_t>{'a', 'a'}), 2U);  // non-overlap
}

TEST(Refs, BlowfishRoundTrips) {
  support::Rng rng(7);
  refs::BlowfishRef bf;
  for (auto& p : bf.p) p = rng.next_u32();
  for (auto& box : bf.s) {
    for (auto& e : box) e = rng.next_u32();
  }
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t l0 = rng.next_u32(), r0 = rng.next_u32();
    std::uint32_t l = l0, r = r0;
    bf.encrypt(&l, &r);
    EXPECT_FALSE(l == l0 && r == r0);
    bf.decrypt(&l, &r);
    EXPECT_EQ(l, l0);
    EXPECT_EQ(r, r0);
  }
}

TEST(Refs, AesMatchesFips197VectorC1) {
  std::uint8_t key[16], pt[16], ct[16];
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    pt[i] = static_cast<std::uint8_t>((i << 4) | i);
  }
  const refs::Aes128Ref aes({key, 16});
  aes.encrypt_block(pt, ct);
  const std::uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                     0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_TRUE(std::equal(ct, ct + 16, expected));
}

TEST(Refs, DijkstraOnKnownGraph) {
  // 3-node graph: 0->1 (2), 1->2 (3), 0->2 (10) => dist = {0, 2, 5}, sum 7.
  const std::vector<std::uint32_t> matrix{0, 2, 10,  //
                                          0, 0, 3,   //
                                          0, 0, 0};
  EXPECT_EQ(refs::dijkstra_distance_sum(matrix, 3), 7U);
}

TEST(Refs, SusanFlatImageHasNoEdges) {
  const std::vector<std::uint8_t> flat(8 * 8, 100);
  EXPECT_EQ(refs::susan_edge_count(flat, 8, 8, 20, 5), 0U);
}

TEST(Refs, SusanThinLineIsAllEdge) {
  // A one-pixel bright line: its pixels see 6 of 9 neighbours dissimilar
  // (similar count 3 <= limit 5), so every interior line pixel is an edge.
  std::vector<std::uint8_t> img(8 * 8, 10);
  for (unsigned y = 0; y < 8; ++y) img[y * 8 + 4] = 200;
  EXPECT_EQ(refs::susan_edge_count(img, 8, 8, 20, 5), 6U);
}

TEST(Refs, PopcountSum) {
  const std::vector<std::uint32_t> values{0, 1, 3, 0xFFFFFFFF};
  EXPECT_EQ(refs::popcount_sum(values), 0U + 1 + 2 + 32);
}

TEST(Refs, DegToRadFixed) {
  EXPECT_EQ(refs::deg_to_rad_fixed(0), 0U);
  EXPECT_EQ(refs::deg_to_rad_fixed(180), (180U * 31416U) / 1800000U);
}

}  // namespace
}  // namespace cicmon::workloads
