// Memory-subsystem tests: sparse memory, the I-cache, and the fetch path
// with its tamper hook.
#include <gtest/gtest.h>

#include "casm/builder.h"
#include "mem/fetch_path.h"
#include "mem/memory.h"

namespace cicmon::mem {
namespace {

TEST(Memory, ReadsOfUnbackedPagesAreZero) {
  Memory m;
  EXPECT_EQ(m.read32(0xDEAD0000), 0U);
  EXPECT_EQ(m.read8(0x12345678), 0U);
  EXPECT_EQ(m.pages_allocated(), 0U);
}

TEST(Memory, WidthRoundTrips) {
  Memory m;
  m.write32(0x1000, 0xA1B2C3D4);
  EXPECT_EQ(m.read32(0x1000), 0xA1B2C3D4U);
  EXPECT_EQ(m.read16(0x1000), 0xC3D4U);  // little-endian
  EXPECT_EQ(m.read16(0x1002), 0xA1B2U);
  EXPECT_EQ(m.read8(0x1003), 0xA1U);
  m.write8(0x1001, 0xFF);
  EXPECT_EQ(m.read32(0x1000), 0xA1B2FFD4U);
  m.write16(0x1002, 0x1122);
  EXPECT_EQ(m.read32(0x1000), 0x1122FFD4U);
}

TEST(Memory, CrossPageAccess) {
  Memory m;
  m.write32(0x0FFE, 0x11223344);  // straddles a 4 KiB page boundary
  EXPECT_EQ(m.read32(0x0FFE), 0x11223344U);
  EXPECT_EQ(m.pages_allocated(), 2U);
}

TEST(Memory, FlipBit) {
  Memory m;
  m.write32(0x2000, 0);
  m.flip_bit(0x2000, 5);
  EXPECT_EQ(m.read8(0x2000), 1U << 5);
  m.flip_bit(0x2000, 5);
  EXPECT_EQ(m.read8(0x2000), 0U);
}

TEST(Memory, LoadImagePlacesSections) {
  casm_::Asm a;
  a.data_symbol("d");
  a.data_word(0xCAFEF00D);
  a.nop();
  a.sys_exit(0);
  const casm_::Image image = a.finalize();
  Memory m;
  m.load_image(image);
  EXPECT_EQ(m.read32(image.text_base), image.text[0]);
  EXPECT_EQ(m.read32(image.data_base), 0xCAFEF00DU);
}

TEST(Memory, FreezeSharesImmutableBaseAcrossInstances) {
  Memory source;
  source.write32(0x1000, 0xA1B2C3D4);
  source.write32(0x5000, 0x11223344);
  const auto base = source.freeze();
  EXPECT_EQ(source.pages_allocated(), 0U);        // overlay empty after freeze
  EXPECT_EQ(source.read32(0x1000), 0xA1B2C3D4U);  // reads fall through to base

  Memory a;
  Memory b;
  a.set_base(base);
  b.set_base(base);
  EXPECT_EQ(a.read32(0x1000), 0xA1B2C3D4U);
  EXPECT_EQ(b.read32(0x5000), 0x11223344U);
  a.write32(0x1000, 0xDEADBEEF);  // copy-on-write into a's private overlay
  EXPECT_EQ(a.read32(0x1000), 0xDEADBEEFU);
  EXPECT_EQ(a.pages_allocated(), 1U);
  EXPECT_EQ(b.read32(0x1000), 0xA1B2C3D4U);  // b and the base are untouched
  EXPECT_EQ(b.pages_allocated(), 0U);
}

TEST(Memory, CowCopyRetargetsMruSlots) {
  // Regression: a read caches the *base* page in an MRU slot; the first
  // write to that page must retarget the slot along with the copy-on-write,
  // or the next access through it would read the stale immutable page.
  Memory source;
  source.write32(0x2000, 7);
  const auto base = source.freeze();
  Memory m;
  m.set_base(base);
  EXPECT_EQ(m.read32(0x2000), 7U);   // data MRU now points into the base
  EXPECT_EQ(m.fetch32(0x2000), 7U);  // fetch MRU too
  m.write32(0x2000, 9);
  EXPECT_EQ(m.read32(0x2000), 9U);
  EXPECT_EQ(m.fetch32(0x2000), 9U);
}

TEST(Memory, DeltaRoundTripRestoresCowState) {
  Memory source;
  source.write32(0x3000, 1);
  const auto base = source.freeze();
  Memory m;
  m.set_base(base);
  m.write32(0x3000, 2);
  m.write32(0x8000, 3);
  const Memory::PageMap delta = m.delta_pages();
  EXPECT_EQ(delta.size(), 2U);
  m.write32(0x3000, 100);  // diverge past the capture point
  m.write32(0xC000, 200);
  m.restore_pages(delta);
  EXPECT_EQ(m.read32(0x3000), 2U);
  EXPECT_EQ(m.read32(0x8000), 3U);
  EXPECT_EQ(m.read32(0xC000), 0U);  // the diverged page is gone
  EXPECT_EQ(m.pages_allocated(), 2U);
}

TEST(ICache, HitsAfterRefill) {
  ICacheConfig config;
  config.enabled = true;
  config.num_lines = 4;
  config.words_per_line = 4;
  ICache cache(config);
  auto refill = [](std::uint32_t address) { return address * 3; };

  const auto first = cache.access(0x100, refill);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.word, 0x100U * 3);
  const auto second = cache.access(0x104, refill);  // same line
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.word, 0x104U * 3);
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST(ICache, ConflictEviction) {
  ICacheConfig config;
  config.enabled = true;
  config.num_lines = 2;
  config.words_per_line = 4;
  ICache cache(config);
  auto refill = [](std::uint32_t address) { return address; };
  cache.access(0x000, refill);
  cache.access(0x040, refill);  // maps to the same line (2 lines x 16B)
  const auto again = cache.access(0x000, refill);
  EXPECT_FALSE(again.hit);
}

TEST(ICache, FlipResidentBitNeedsValidLine) {
  ICacheConfig config;
  config.enabled = true;
  ICache cache(config);
  support::Rng rng(3);
  EXPECT_FALSE(cache.flip_random_resident_bit(rng));  // nothing resident yet
  cache.access(0x80, [](std::uint32_t a) { return a + 1; });
  EXPECT_TRUE(cache.flip_random_resident_bit(rng));
}

TEST(ICache, InvalidateAllForcesMisses) {
  ICacheConfig config;
  config.enabled = true;
  ICache cache(config);
  auto refill = [](std::uint32_t a) { return a; };
  cache.access(0x40, refill);
  cache.invalidate_all();
  EXPECT_FALSE(cache.access(0x40, refill).hit);
}

class CountingTamper : public BusTamper {
 public:
  std::uint32_t on_transfer(std::uint32_t, std::uint32_t word) override {
    ++transfers;
    return word ^ mask;
  }
  std::uint32_t mask = 0;
  unsigned transfers = 0;
};

TEST(FetchPath, ReadsThroughMemory) {
  Memory m;
  m.write32(0x00400000, 0x12345678);
  FetchPath path(&m);
  EXPECT_EQ(path.fetch(0x00400000), 0x12345678U);
  EXPECT_EQ(path.take_stall_cycles(), 0U);  // no cache -> no refill stalls
}

TEST(FetchPath, BusTamperAppliesToTransfers) {
  Memory m;
  m.write32(0x00400000, 0xF0F0F0F0);
  FetchPath path(&m);
  CountingTamper tamper;
  tamper.mask = 0x1;
  path.set_bus_tamper(&tamper);
  EXPECT_EQ(path.fetch(0x00400000), 0xF0F0F0F1U);
  EXPECT_EQ(tamper.transfers, 1U);
}

TEST(FetchPath, CachedWordBypassesBusAfterRefill) {
  // The paper's location argument: corruption in a cached copy is invisible
  // to the bus and vice versa, so the fetch path must model residency.
  Memory m;
  m.write32(0x00400000, 0xAAAAAAAA);
  ICacheConfig config;
  config.enabled = true;
  config.words_per_line = 4;
  config.miss_penalty = 4;
  FetchPath path(&m, config);
  CountingTamper tamper;
  path.set_bus_tamper(&tamper);

  EXPECT_EQ(path.fetch(0x00400000), 0xAAAAAAAAU);
  const unsigned transfers_after_miss = tamper.transfers;
  EXPECT_EQ(transfers_after_miss, 4U);  // one per word in the line
  EXPECT_GT(path.take_stall_cycles(), 0U);

  // Hit: no new bus transfer, and memory changes are not observed.
  m.write32(0x00400000, 0xBBBBBBBB);
  EXPECT_EQ(path.fetch(0x00400000), 0xAAAAAAAAU);
  EXPECT_EQ(tamper.transfers, transfers_after_miss);
  EXPECT_EQ(path.take_stall_cycles(), 0U);
}

TEST(FetchPath, ResidentBitFlipObservedOnHit) {
  Memory m;
  ICacheConfig config;
  config.enabled = true;
  FetchPath path(&m, config);
  path.fetch(0x00400000);  // memory is zero: the whole line caches as zeros
  support::Rng rng(1);
  ASSERT_TRUE(path.icache()->flip_random_resident_bit(rng));
  // The flip landed somewhere in the (only) resident line; scanning its four
  // words must observe exactly one corrupted word.
  unsigned corrupted = 0;
  for (std::uint32_t offset = 0; offset < 16; offset += 4) {
    corrupted += path.fetch(0x00400000 + offset) != 0 ? 1 : 0;
  }
  EXPECT_EQ(corrupted, 1U);
}

}  // namespace
}  // namespace cicmon::mem
