// Fault-injection tests: per-site detectability (§3.2), the XOR odd-flip
// guarantee (§6.3), baseline traps, and campaign determinism.
#include <gtest/gtest.h>

#include "casm/builder.h"
#include "fault/campaign.h"
#include "support/bitops.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workloads/workloads.h"

namespace cicmon::fault {
namespace {

using namespace cicmon::isa;

casm_::Image checked_loop_program() {
  // A loop whose result is self-checked, so silent corruption is observable.
  casm_::Asm a;
  a.func("main");
  a.li(kT0, 20);
  a.li(kT1, 0);
  casm_::Label loop = a.bound_label();
  a.addu(kT1, kT1, kT0);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, loop);
  a.check_eq(kT1, 210);
  a.sys_exit(0);
  return a.finalize();
}

cpu::CpuConfig monitored_config() {
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 8;
  return config;
}

TEST(Campaign, GoldenRunFacts) {
  CampaignRunner runner(checked_loop_program(), monitored_config());
  EXPECT_GT(runner.golden_instructions(), 50U);
  EXPECT_EQ(runner.golden_console(), "");
}

TEST(Campaign, MemoryFlipInLoopBodyIsCaught) {
  CampaignRunner runner(checked_loop_program(), monitored_config());
  FaultSpec spec;
  spec.site = FaultSite::kMemoryText;
  spec.target_address = casm_::kTextBase + 8;  // the addu inside the loop
  spec.xor_mask = 1U << 11;                    // rd field bit: stays a valid instr
  const TrialResult trial = runner.run_trial(spec);
  EXPECT_TRUE(is_detected(trial.outcome)) << outcome_name(trial.outcome);
  EXPECT_EQ(trial.outcome, Outcome::kDetectedMismatch);
}

TEST(Campaign, SameFlipEscapesWithoutMonitor) {
  cpu::CpuConfig off;  // monitoring disabled
  CampaignRunner runner(checked_loop_program(), off);
  FaultSpec spec;
  spec.site = FaultSite::kMemoryText;
  spec.target_address = casm_::kTextBase + 8;
  spec.xor_mask = 1U << 11;  // addu result goes to the wrong register
  const TrialResult trial = runner.run_trial(spec);
  // Without the CIC the corruption surfaces only through the self-check.
  EXPECT_FALSE(is_detected(trial.outcome)) << outcome_name(trial.outcome);
}

TEST(Campaign, BusFaultCaughtAtBlockEnd) {
  CampaignRunner runner(checked_loop_program(), monitored_config());
  FaultSpec spec;
  spec.site = FaultSite::kFetchBus;
  spec.trigger_index = 5;  // somewhere inside the loop
  spec.xor_mask = 1U << 3;
  const TrialResult trial = runner.run_trial(spec);
  EXPECT_TRUE(is_detected(trial.outcome)) << outcome_name(trial.outcome);
}

TEST(Campaign, PostIdFaultEscapesTheMonitor) {
  CampaignRunner runner(checked_loop_program(), monitored_config());
  FaultSpec spec;
  spec.site = FaultSite::kPostIdLatch;
  spec.trigger_index = 3;
  spec.xor_mask = 1U << 16;  // corrupt an immediate: valid instr, wrong value
  const TrialResult trial = runner.run_trial(spec);
  EXPECT_NE(trial.outcome, Outcome::kDetectedMismatch);
  EXPECT_NE(trial.outcome, Outcome::kDetectedMiss);
}

TEST(Campaign, OpcodeDestroyingFlipMayTrapInBaseline) {
  // Flipping high opcode bits usually produces an invalid encoding, which
  // the baseline decode catches (§6.3 credits these).
  cpu::CpuConfig off;
  CampaignRunner runner(checked_loop_program(), off);
  unsigned baseline_detected = 0;
  for (unsigned bit = 26; bit < 32; ++bit) {
    FaultSpec spec;
    spec.site = FaultSite::kMemoryText;
    spec.target_address = casm_::kTextBase + 8;
    spec.xor_mask = 1U << bit;
    if (runner.run_trial(spec).outcome == Outcome::kDetectedBaseline) ++baseline_detected;
  }
  EXPECT_GT(baseline_detected, 0U);
}

TEST(Campaign, UnexecutedFlipIsBenignUnderTheDynamicMonitor) {
  casm_::Asm a;
  a.func("main");
  casm_::Label skip = a.label();
  a.beq(kZero, kZero, skip);
  a.addiu(kT0, kT0, 1);  // never executed
  a.bind(skip);
  a.sys_exit(0);
  CampaignRunner runner(a.finalize(), monitored_config());
  FaultSpec spec;
  spec.site = FaultSite::kMemoryText;
  spec.target_address = casm_::kTextBase + 4;  // the dead instruction
  spec.xor_mask = 0xF;
  EXPECT_EQ(runner.run_trial(spec).outcome, Outcome::kBenign);
}

// §6.3: the XOR checksum detects every odd number of bit flips in an
// executed block — parameterized over flip counts.
class OddFlipGuarantee : public ::testing::TestWithParam<unsigned> {};

TEST_P(OddFlipGuarantee, OddFlipsInOneExecutedWordNeverEscapeTheHash) {
  const unsigned bits = GetParam();
  CampaignRunner runner(checked_loop_program(), monitored_config());
  support::Rng rng(bits);
  for (int trial = 0; trial < 25; ++trial) {
    std::uint32_t mask = 0;
    while (support::popcount32(mask) < bits) mask |= 1U << rng.below(32);
    FaultSpec spec;
    spec.site = FaultSite::kMemoryText;
    spec.target_address = casm_::kTextBase + 8;  // executed every iteration
    spec.xor_mask = mask;
    const TrialResult result = runner.run_trial(spec);
    // The corrupted word may also trap in decode or derail control flow, but
    // it can never complete its block with a matching hash: silent wrong
    // output and benign completion are both impossible.
    EXPECT_NE(result.outcome, Outcome::kBenign) << support::hex32(mask);
    EXPECT_NE(result.outcome, Outcome::kWrongOutput) << support::hex32(mask);
  }
}

INSTANTIATE_TEST_SUITE_P(OddCounts, OddFlipGuarantee, ::testing::Values(1U, 3U, 5U));

TEST(Campaign, RandomCampaignIsDeterministic) {
  CampaignRunner runner(checked_loop_program(), monitored_config());
  const CampaignSummary a = runner.run_random(FaultSite::kFetchBus, 1, 40, 99);
  const CampaignSummary b = runner.run_random(FaultSite::kFetchBus, 1, 40, 99);
  EXPECT_EQ(a.detected_mismatch, b.detected_mismatch);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.trials, 40U);
}

bool summaries_identical(const CampaignSummary& a, const CampaignSummary& b) {
  return a.trials == b.trials && a.detected_mismatch == b.detected_mismatch &&
         a.detected_miss == b.detected_miss && a.detected_baseline == b.detected_baseline &&
         a.wrong_output == b.wrong_output && a.benign == b.benign && a.hang == b.hang;
}

TEST(Campaign, ParallelCampaignIsBitIdenticalToSerial) {
  // The core contract of the parallel engine: for a given seed, the summary
  // must not depend on the job count — every field, not just the rates.
  CampaignRunner runner(checked_loop_program(), monitored_config());
  const CampaignSummary serial = runner.run_random(FaultSite::kFetchBus, 2, 120, 7, 1);
  for (const unsigned jobs : {2U, 4U, 8U}) {
    const CampaignSummary parallel = runner.run_random(FaultSite::kFetchBus, 2, 120, 7, jobs);
    EXPECT_TRUE(summaries_identical(serial, parallel)) << jobs << " jobs";
  }
}

TEST(Campaign, ParallelDeterminismAcrossSitesOnRealWorkload) {
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  CampaignRunner runner(image, monitored_config());
  for (const FaultSite site :
       {FaultSite::kMemoryText, FaultSite::kFetchBus, FaultSite::kPostIdLatch}) {
    const CampaignSummary serial = runner.run_random(site, 1, 60, 13, 1);
    const CampaignSummary parallel = runner.run_random(site, 1, 60, 13, 4);
    EXPECT_TRUE(summaries_identical(serial, parallel)) << fault_site_name(site);
  }
}

TEST(Campaign, PredecodeCacheDoesNotChangeCampaignResults) {
  // The tamper-safety contract of the decode cache, at campaign granularity:
  // every outcome count must be bit-identical with the cache on and off,
  // across the sites that corrupt fetched words in different places (memory
  // rewrites, per-fetch bus flips, post-ID latch faults, cache-resident
  // flips through a live I-cache).
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  cpu::CpuConfig on = monitored_config();
  on.icache.enabled = true;  // exercise the icache-line site too
  cpu::CpuConfig off = on;
  off.predecode_cache = false;
  CampaignRunner cached(image, on);
  CampaignRunner plain(image, off);
  for (const FaultSite site :
       {FaultSite::kMemoryText, FaultSite::kFetchBus, FaultSite::kPostIdLatch,
        FaultSite::kICacheLine}) {
    const CampaignSummary a = cached.run_random(site, 1, 60, 13);
    const CampaignSummary b = plain.run_random(site, 1, 60, 13);
    EXPECT_TRUE(summaries_identical(a, b)) << fault_site_name(site);
  }
}

TEST(Campaign, ThreadedEngineDoesNotChangeCampaignResults) {
  // The tamper-safety contract of the threaded engine at campaign
  // granularity: across every site that corrupts fetched words (memory
  // rewrites, per-fetch bus flips, post-ID latch faults, cache-resident
  // flips through a live I-cache), the fused handlers and the block
  // translation cache must reproduce the interpreter's outcome counts bit
  // for bit — translation cache on or off, block chaining on or off (every
  // injected fault that lands on a chained block must sever its links and
  // replay through the interpreter identically).
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  cpu::CpuConfig interp = monitored_config();
  interp.icache.enabled = true;
  interp.engine = cpu::Engine::kSwitch;
  cpu::CpuConfig threaded = interp;
  threaded.engine = cpu::Engine::kThreaded;
  threaded.translate_cache = true;
  threaded.chain = true;
  cpu::CpuConfig unchained = threaded;
  unchained.chain = false;
  cpu::CpuConfig uncached = threaded;
  uncached.translate_cache = false;
  CampaignRunner a(image, interp);
  CampaignRunner b(image, threaded);
  CampaignRunner b2(image, unchained);
  CampaignRunner c(image, uncached);
  for (const FaultSite site :
       {FaultSite::kMemoryText, FaultSite::kFetchBus, FaultSite::kPostIdLatch,
        FaultSite::kICacheLine}) {
    const CampaignSummary sa = a.run_random(site, 1, 60, 13);
    const CampaignSummary sb = b.run_random(site, 1, 60, 13);
    const CampaignSummary sb2 = b2.run_random(site, 1, 60, 13);
    const CampaignSummary sc = c.run_random(site, 1, 60, 13);
    EXPECT_TRUE(summaries_identical(sa, sb)) << fault_site_name(site) << " (chained)";
    EXPECT_TRUE(summaries_identical(sa, sb2)) << fault_site_name(site) << " (chain off)";
    EXPECT_TRUE(summaries_identical(sa, sc)) << fault_site_name(site) << " (uncached)";
  }
}

TEST(Campaign, MonitoredDetectionDominatesUnmonitored) {
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  cpu::CpuConfig on = monitored_config();
  cpu::CpuConfig off;
  CampaignRunner monitored(image, on);
  CampaignRunner plain(image, off);
  const CampaignSummary with_cic = monitored.run_random(FaultSite::kFetchBus, 1, 60, 5);
  const CampaignSummary without = plain.run_random(FaultSite::kFetchBus, 1, 60, 5);
  EXPECT_GT(with_cic.detection_rate_effective(), without.detection_rate_effective());
  EXPECT_GT(with_cic.detection_rate_effective(), 0.9);
}

TEST(Campaign, ICacheResidentFaultCaught) {
  // A realistically sized program, so the final self-check block (whose
  // trap can fire before the block-terminating lookup — the paper's
  // end-of-block detection latency) is a negligible fraction of the code.
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  cpu::CpuConfig config = monitored_config();
  config.icache.enabled = true;
  CampaignRunner runner(image, config);
  const CampaignSummary summary = runner.run_random(FaultSite::kICacheLine, 1, 40, 11);
  // Many flips land in untouched line words (benign); nearly every
  // consequential one is detected in hardware.
  EXPECT_GT(summary.detected(), 0U);
  EXPECT_LE(summary.wrong_output, 2U);
  EXPECT_GT(summary.detected(), summary.wrong_output);
}

TEST(Campaign, CheckpointsDoNotChangeCampaignResults) {
  // The campaign accelerator's core contract: restoring golden-run snapshots
  // (at any stride, including a pathological one) must reproduce the full
  // re-execution outcome counts bit for bit, at every site and on both
  // engines. The memory-text rows also pin down the shared COW image, which
  // checkpoint-off trials read through as well.
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  for (const cpu::Engine engine : {cpu::Engine::kSwitch, cpu::Engine::kThreaded}) {
    cpu::CpuConfig config = monitored_config();
    config.icache.enabled = true;  // exercise the icache-line site too
    config.engine = engine;
    CampaignRunner fast(image, config);  // checkpoints default on, auto stride
    CampaignRunner strided(image, config, {true, 97});
    CampaignRunner slow(image, config, {false, 0});
    ASSERT_TRUE(fast.checkpoints_enabled());
    ASSERT_FALSE(slow.checkpoints_enabled());
    for (const FaultSite site :
         {FaultSite::kMemoryText, FaultSite::kFetchBus, FaultSite::kFetchBusPaired,
          FaultSite::kPostIdLatch, FaultSite::kICacheLine}) {
      const CampaignSummary a = fast.run_random(site, 1, 60, 13);
      const CampaignSummary b = strided.run_random(site, 1, 60, 13);
      const CampaignSummary c = slow.run_random(site, 1, 60, 13);
      EXPECT_TRUE(summaries_identical(a, b))
          << fault_site_name(site) << " (stride 97), engine " << cpu::engine_name(engine);
      EXPECT_TRUE(summaries_identical(a, c))
          << fault_site_name(site) << " (checkpoints off), engine "
          << cpu::engine_name(engine);
    }
  }
}

TEST(Campaign, CheckpointAccountingTracksRestores) {
  const casm_::Image image = workloads::build_workload("bitcount", {0.02, 42});
  CampaignRunner fast(image, monitored_config());
  EXPECT_GT(fast.snapshot_count(), 1U);  // snapshot 0 plus at least one more
  EXPECT_GT(fast.checkpoint_stride(), 0U);
  EXPECT_EQ(fast.restores(), 0U);
  fast.run_random(FaultSite::kFetchBus, 1, 40, 7);
  // Triggers are uniform over the golden run, so with snapshots every 1024
  // instructions nearly every trial restores and skips a nonzero prefix.
  EXPECT_GT(fast.restores(), 0U);
  EXPECT_GT(fast.skipped_instructions(), 0U);

  // Memory-text trials strike before instruction 0 — nothing to skip.
  CampaignRunner text(image, monitored_config());
  text.run_random(FaultSite::kMemoryText, 1, 40, 7);
  EXPECT_EQ(text.restores(), 0U);

  CampaignRunner slow(image, monitored_config(), {false, 0});
  slow.run_random(FaultSite::kFetchBus, 1, 40, 7);
  EXPECT_EQ(slow.snapshot_count(), 0U);
  EXPECT_EQ(slow.restores(), 0U);
}

TEST(Campaign, RecoveryModeDisablesCheckpoints) {
  // Recovery keeps in-run block checkpoints the snapshot does not cover, so
  // a recovery campaign silently falls back to full re-execution.
  cpu::CpuConfig config = monitored_config();
  config.recovery.enabled = true;
  CampaignRunner runner(checked_loop_program(), config, {true, 0});
  EXPECT_FALSE(runner.checkpoints_enabled());
  const TrialResult trial = runner.run_trial([] {
    FaultSpec spec;
    spec.site = FaultSite::kPostIdLatch;
    spec.trigger_index = 5;
    spec.xor_mask = 1U << 3;
    return spec;
  }());
  EXPECT_EQ(runner.restores(), 0U);
  (void)trial;  // the point is that the trial runs at all under recovery
}

TEST(Names, SitesAndOutcomes) {
  EXPECT_EQ(fault_site_name(FaultSite::kMemoryText), "memory-text");
  EXPECT_EQ(fault_site_name(FaultSite::kPostIdLatch), "post-id-latch");
  EXPECT_EQ(outcome_name(Outcome::kBenign), "benign");
  EXPECT_EQ(outcome_name(Outcome::kDetectedMismatch), "detected-mismatch");
}

TEST(Summary, RatesComputed) {
  CampaignSummary s;
  s.add(Outcome::kDetectedMismatch);
  s.add(Outcome::kBenign);
  s.add(Outcome::kWrongOutput);
  EXPECT_EQ(s.trials, 3U);
  EXPECT_DOUBLE_EQ(s.detection_rate_effective(), 0.5);
  EXPECT_NEAR(s.detection_rate_total(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace cicmon::fault
