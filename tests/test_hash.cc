// Hash-unit tests: the paper's XOR checksum and its §6.3/§7 extensions,
// plus the cryptographic comparators against known vectors.
#include <gtest/gtest.h>

#include <set>

#include "hash/hash_unit.h"
#include "hash/md5.h"
#include "hash/sha1.h"
#include "support/bitops.h"
#include "support/rng.h"

namespace cicmon::hash {
namespace {

std::vector<std::uint32_t> random_block(support::Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> words(n);
  for (auto& w : words) w = rng.next_u32();
  return words;
}

TEST(HashUnits, FactoryCoversAllKinds) {
  for (HashKind kind : all_hash_kinds()) {
    const auto unit = make_hash_unit(kind, 0x1234);
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->kind(), kind);
    EXPECT_EQ(unit->name(), hash_kind_name(kind));
  }
}

TEST(HashUnits, XorIsPlainChecksum) {
  const auto unit = make_hash_unit(HashKind::kXor);
  EXPECT_EQ(unit->hash_block(std::vector<std::uint32_t>{1, 2, 4}), 7U);
  EXPECT_EQ(unit->step(0xFF00FF00, 0x00FF00FF), 0xFFFFFFFFU);
}

// The paper's §6.3 guarantee: XOR detects every odd number of bit flips.
class OddFlipDetection : public ::testing::TestWithParam<unsigned> {};

TEST_P(OddFlipDetection, XorDetectsOddWeightErrors) {
  const unsigned flips = GetParam();
  const auto unit = make_hash_unit(HashKind::kXor);
  support::Rng rng(flips * 97 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    auto block = random_block(rng, 16);
    const std::uint32_t clean = unit->hash_block(block);
    // Scatter `flips` flips over the whole block (distinct positions).
    std::set<std::pair<std::size_t, unsigned>> positions;
    while (positions.size() < flips) {
      positions.insert({rng.below(block.size()), static_cast<unsigned>(rng.below(32))});
    }
    for (const auto& [word, bit] : positions) {
      block[word] = support::flip_bit(block[word], bit);
    }
    const std::uint32_t corrupted = unit->hash_block(block);
    if (flips % 2 == 1) {
      EXPECT_NE(corrupted, clean) << "odd flips must always change the XOR checksum";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FlipCounts, OddFlipDetection, ::testing::Values(1U, 3U, 5U, 7U));

TEST(HashUnits, XorMissesPairedFlipsInSameBitLane) {
  // The known weakness the paper accepts: two flips in the same bit position
  // of different words cancel.
  const auto unit = make_hash_unit(HashKind::kXor);
  std::vector<std::uint32_t> block{0x1111, 0x2222, 0x3333};
  const std::uint32_t clean = unit->hash_block(block);
  block[0] = support::flip_bit(block[0], 9);
  block[2] = support::flip_bit(block[2], 9);
  EXPECT_EQ(unit->hash_block(block), clean);
}

TEST(HashUnits, RotXorCatchesPairedFlipsInSameBitLane) {
  // The rotate makes bit lanes position-dependent, closing XOR's blind spot.
  const auto unit = make_hash_unit(HashKind::kRotXor);
  std::vector<std::uint32_t> block{0x1111, 0x2222, 0x3333};
  const std::uint32_t clean = unit->hash_block(block);
  block[0] = support::flip_bit(block[0], 9);
  block[2] = support::flip_bit(block[2], 9);
  EXPECT_NE(unit->hash_block(block), clean);
}

TEST(HashUnits, XorIsOrderInsensitiveRotXorIsNot) {
  const auto x = make_hash_unit(HashKind::kXor);
  const auto r = make_hash_unit(HashKind::kRotXor);
  const std::vector<std::uint32_t> ab{0xAAAA0000, 0x0000BBBB};
  const std::vector<std::uint32_t> ba{0x0000BBBB, 0xAAAA0000};
  EXPECT_EQ(x->hash_block(ab), x->hash_block(ba));      // swap undetected
  EXPECT_NE(r->hash_block(ab), r->hash_block(ba));      // swap detected
}

TEST(HashUnits, KeyedRotXorDependsOnKey) {
  const auto a = make_hash_unit(HashKind::kRotXorKeyed, 0x1111);
  const auto b = make_hash_unit(HashKind::kRotXorKeyed, 0x2222);
  const std::vector<std::uint32_t> block{1, 2, 3, 4};
  EXPECT_NE(a->hash_block(block), b->hash_block(block));
  EXPECT_NE(a->init(), 0U);  // the process-dependent random value (§6.3)
}

TEST(HashUnits, AddChecksumWraps) {
  const auto unit = make_hash_unit(HashKind::kAdd);
  EXPECT_EQ(unit->hash_block(std::vector<std::uint32_t>{0xFFFFFFFF, 2}), 1U);
}

TEST(HashUnits, Crc32KnownVector) {
  // CRC-32(IEEE) of the word 0x00000000 differs from zero-init naive sums,
  // and distinct single words must yield distinct CRCs.
  const auto unit = make_hash_unit(HashKind::kCrc32);
  const std::uint32_t c0 = unit->hash_block(std::vector<std::uint32_t>{0});
  const std::uint32_t c1 = unit->hash_block(std::vector<std::uint32_t>{1});
  EXPECT_NE(c0, c1);
  EXPECT_NE(c0, 0U);
}

TEST(HashUnits, SingleBitSensitivitySweep) {
  // Every unit must detect any *single* bit flip in a block (the paper's
  // primary fault model).
  support::Rng rng(77);
  const auto block = random_block(rng, 8);
  for (HashKind kind : all_hash_kinds()) {
    const auto unit = make_hash_unit(kind, 0xABCD);
    const std::uint32_t clean = unit->hash_block(block);
    for (std::size_t word = 0; word < block.size(); ++word) {
      for (unsigned bit = 0; bit < 32; bit += 5) {
        auto corrupted = block;
        corrupted[word] = support::flip_bit(corrupted[word], bit);
        EXPECT_NE(unit->hash_block(corrupted), clean)
            << hash_kind_name(kind) << " missed single flip at word " << word << " bit " << bit;
      }
    }
  }
}

TEST(HashUnits, CollisionRateSanity) {
  // Random-block collision probability should be small for all units; the
  // stronger mixers should have none in this sample.
  support::Rng rng(123);
  for (HashKind kind : all_hash_kinds()) {
    const auto unit = make_hash_unit(kind);
    std::set<std::uint32_t> seen;
    unsigned collisions = 0;
    for (int i = 0; i < 2000; ++i) {
      const auto block = random_block(rng, 4);
      collisions += seen.insert(unit->hash_block(block)).second ? 0 : 1;
    }
    EXPECT_LE(collisions, 3U) << hash_kind_name(kind);
  }
}

TEST(HashUnits, HwProfilesAreConsistent) {
  for (HashKind kind : all_hash_kinds()) {
    const auto profile = make_hash_unit(kind)->hw_profile();
    EXPECT_GT(profile.gate_equivalents, 0.0) << hash_kind_name(kind);
    EXPECT_GT(profile.depth_gate_delays, 0.0) << hash_kind_name(kind);
    // The multiply-based mixer is the one option too deep for a fetch cycle.
    EXPECT_EQ(profile.single_cycle_feasible, kind != HashKind::kMulXor)
        << hash_kind_name(kind);
  }
}

TEST(Sha1, Fips180Vectors) {
  // SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d.
  Sha1 sha;
  const std::uint8_t abc[3] = {'a', 'b', 'c'};
  sha.update(abc);
  const auto digest = sha.digest();
  const std::uint8_t expected[20] = {0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e,
                                     0x25, 0x71, 0x78, 0x50, 0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d};
  EXPECT_TRUE(std::equal(digest.begin(), digest.end(), expected));
}

TEST(Sha1, EmptyMessage) {
  // SHA-1("") = da39a3ee 5e6b4b0d 3255bfef 95601890 afd80709.
  Sha1 sha;
  const auto digest = sha.digest();
  EXPECT_EQ(digest[0], 0xda);
  EXPECT_EQ(digest[19], 0x09);
}

TEST(Sha1, MultiBlockMessage) {
  // SHA-1 of one million 'a' characters (streamed) =
  // 34aa973c d4c4daa4 f61eeb2b dbad2731 6534016f.
  Sha1 sha;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.update(chunk);
  const auto digest = sha.digest();
  EXPECT_EQ(digest[0], 0x34);
  EXPECT_EQ(digest[1], 0xaa);
  EXPECT_EQ(digest[19], 0x6f);
}

TEST(Md5, Rfc1321Vectors) {
  // MD5("abc") = 900150983cd24fb0d6963f7d28e17f72.
  Md5 md5;
  const std::uint8_t abc[3] = {'a', 'b', 'c'};
  md5.update(abc);
  const auto digest = md5.digest();
  EXPECT_EQ(digest[0], 0x90);
  EXPECT_EQ(digest[1], 0x01);
  EXPECT_EQ(digest[15], 0x72);
}

TEST(Md5, EmptyMessage) {
  // MD5("") = d41d8cd98f00b204e9800998ecf8427e.
  Md5 md5;
  const auto digest = md5.digest();
  EXPECT_EQ(digest[0], 0xd4);
  EXPECT_EQ(digest[15], 0x7e);
}

TEST(TruncatedDigests, WordHelpersAreStable) {
  const std::vector<std::uint32_t> words{0x11111111, 0x22222222};
  EXPECT_EQ(Sha1::hash_words_truncated32(words), Sha1::hash_words_truncated32(words));
  EXPECT_NE(Sha1::hash_words_truncated32(words), Md5::hash_words_truncated32(words));
}

}  // namespace
}  // namespace cicmon::hash
