// Ablation: IHT victim-selection policy x OS refill mode (the paper uses
// LRU victims with "replace half of the entries" and names refining the
// policy as future work, §7).
#include "bench_common.h"
#include "sim/experiment.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::print_header("Replacement-policy ablation (8-entry IHT)",
                      "Section 7 future work: refining the entry replacement policy");

  struct Variant {
    const char* name;
    cic::ReplacePolicy policy;
    os::RefillMode refill;
  };
  const Variant variants[] = {
      {"lru + demand fill", cic::ReplacePolicy::kLru, os::RefillMode::kSingleEntry},
      {"fifo + demand fill", cic::ReplacePolicy::kFifo, os::RefillMode::kSingleEntry},
      {"random + demand fill", cic::ReplacePolicy::kRandom, os::RefillMode::kSingleEntry},
      {"lru + replace-half (paper)", cic::ReplacePolicy::kLru,
       os::RefillMode::kReplaceHalfPrefetch},
      {"lru + replace-half backward", cic::ReplacePolicy::kLru,
       os::RefillMode::kReplaceHalfPrefetchBackward},
  };

  support::Table table({"policy", "avg miss rate", "avg overhead", "worst overhead"});
  for (const Variant& variant : variants) {
    double miss_sum = 0, ovh_sum = 0, worst = 0;
    for (const workloads::WorkloadInfo& info : workloads::all_workloads()) {
      cpu::CpuConfig baseline;
      const std::uint64_t base_cycles = sim::run_workload(info.name, baseline, scale).cycles;

      cpu::CpuConfig config;
      config.monitoring = true;
      config.cic.iht_entries = 8;
      config.cic.replace_policy = variant.policy;
      config.os.refill_mode = variant.refill;
      const cpu::RunResult r = sim::run_workload(info.name, config, scale);
      miss_sum += r.iht.miss_rate();
      const double overhead =
          static_cast<double>(r.cycles) / static_cast<double>(base_cycles) - 1.0;
      ovh_sum += overhead;
      worst = std::max(worst, overhead);
    }
    const double n = static_cast<double>(workloads::all_workloads().size());
    table.add_row({variant.name, support::Table::fmt_pct(miss_sum / n),
                   support::Table::fmt_pct(ovh_sum / n), support::Table::fmt_pct(worst)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nfinding: demand fill beats bulk replace-half in this substrate —\n"
      "wholesale eviction destroys the LRU set small IHTs depend on (the\n"
      "refinement direction the paper's future work anticipates).\n");
  return 0;
}
