// §6.3 fault analysis: detection outcome of random bit flips by injection
// site, with and without the monitor, and detection strength by hash
// function for multi-bit faults.
#include "bench_common.h"
#include "fault/campaign.h"
#include "workloads/workloads.h"

namespace {

using namespace cicmon;

fault::CampaignSummary campaign(const casm_::Image& image, bool monitoring,
                                fault::FaultSite site, unsigned bits, unsigned trials,
                                hash::HashKind kind = hash::HashKind::kXor) {
  cpu::CpuConfig config;
  config.monitoring = monitoring;
  config.cic.iht_entries = 16;
  config.cic.hash_kind = kind;
  fault::CampaignRunner runner(image, config);
  return runner.run_random(site, bits, trials, /*seed=*/2026);
}

std::string pct(double fraction) { return support::Table::fmt_pct(fraction); }

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.15);
  bench::print_header("Fault-injection outcomes by site and hash strength",
                      "Section 6.3 (error model and detection analysis)");

  const casm_::Image image = workloads::build_workload("sha", {scale, 42});
  const unsigned trials = 120;

  // --- Outcome taxonomy per injection site, monitor on vs off ---
  support::Table sites({"site", "monitor", "mismatch", "miss", "baseline", "wrong-out",
                        "benign", "hang", "detect(effective)"});
  for (const fault::FaultSite site :
       {fault::FaultSite::kMemoryText, fault::FaultSite::kFetchBus,
        fault::FaultSite::kFetchBusPaired, fault::FaultSite::kICacheLine,
        fault::FaultSite::kPostIdLatch}) {
    for (const bool monitoring : {true, false}) {
      const fault::CampaignSummary s = campaign(image, monitoring, site, 1, trials);
      sites.add_row({std::string(fault::fault_site_name(site)), monitoring ? "on" : "off",
                     support::Table::fmt_u64(s.detected_mismatch),
                     support::Table::fmt_u64(s.detected_miss),
                     support::Table::fmt_u64(s.detected_baseline),
                     support::Table::fmt_u64(s.wrong_output),
                     support::Table::fmt_u64(s.benign), support::Table::fmt_u64(s.hang),
                     pct(s.detection_rate_effective())});
    }
  }
  std::fputs(sites.render().c_str(), stdout);
  std::printf(
      "\npaper claims: flips before the check point (memory/bus/icache) are\n"
      "caught by the monitor; post-ID flips escape it (only baseline traps).\n\n");

  // --- Detection by hash function (§3.4 / §6.3) ---
  //
  // Single-word faults (any mask) always change a XOR fold, so every unit
  // detects them; the discriminating pattern is the *paired* same-lane
  // corruption of two words in one block, which aliases under plain XOR.
  support::Table hashes(
      {"hash", "1-word 1b", "1-word 4b", "paired 1b", "paired 2b", "paired 4b"});
  for (const hash::HashKind kind :
       {hash::HashKind::kXor, hash::HashKind::kAdd, hash::HashKind::kRotXor,
        hash::HashKind::kRotXorKeyed, hash::HashKind::kFletcher32, hash::HashKind::kCrc32}) {
    std::vector<std::string> row{std::string(hash::hash_kind_name(kind))};
    for (const unsigned bits : {1U, 4U}) {
      row.push_back(
          pct(campaign(image, true, fault::FaultSite::kFetchBus, bits, trials, kind)
                  .detection_rate_effective()));
    }
    for (const unsigned bits : {1U, 2U, 4U}) {
      row.push_back(
          pct(campaign(image, true, fault::FaultSite::kFetchBusPaired, bits, trials, kind)
                  .detection_rate_effective()));
    }
    hashes.add_row(row);
  }
  std::fputs(hashes.render().c_str(), stdout);
  std::printf(
      "\npaper claims: XOR always detects odd-weight errors; even-weight errors\n"
      "can alias (same-lane pairs), which the rotate/keyed variants close.\n");
  return 0;
}
