// Table 2: minimum cycle time and cell area of the baseline processor and
// the 1/8/16-entry monitored variants (0.18u-class analytical model; the
// paper used ASIP Meister + Synopsys DC + TSMC 0.18u).
#include "area/area_model.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  (void)argc;
  (void)argv;
  bench::print_header("Cycle time and area of monitored processor variants",
                      "Table 2 (min period, cell area, overheads)");

  const area::TechLibrary tech = area::TechLibrary::tsmc180();
  const auto rows = area::table2_rows(tech, {1, 8, 16, 32}, hash::HashKind::kXor);

  support::Table table(
      {"design", "min period (ns)", "period ovh", "cell area", "area ovh"});
  for (const area::DesignReport& row : rows) {
    table.add_row({row.name, support::Table::fmt(row.min_period_ns, 2),
                   support::Table::fmt_pct(row.period_overhead_vs_baseline),
                   support::Table::fmt_u64(static_cast<unsigned long long>(row.cell_area_um2)),
                   support::Table::fmt_pct(row.area_overhead_vs_baseline)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nCIC component inventory (8-entry, XOR HASHFU):\n");
  const auto profile = hash::make_hash_unit(hash::HashKind::kXor)->hw_profile();
  support::Table inv({"component", "gate equivalents"});
  for (const area::Component& c : area::cic_inventory(8, profile).components) {
    inv.add_row({c.name, support::Table::fmt(c.gate_equivalents, 0)});
  }
  std::fputs(inv.render().c_str(), stdout);
  std::printf(
      "\npaper shape: area overhead linear in entries (2.7%% / 16.5%% / 28.8%% for\n"
      "1/8/16 at 0.18u); cycle time flat because the EX stage stays critical.\n");
  return 0;
}
