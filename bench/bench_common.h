// Shared helpers for the bench binaries.
//
// Every bench regenerates one table or figure of the paper's evaluation and
// prints it through support::Table so outputs are uniform and diffable. A
// single optional command-line argument scales the workloads (default 1.0,
// the evaluation size); runs are deterministic for a given scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/table.h"

namespace cicmon::bench {

inline double parse_scale(int argc, char** argv, double fallback = 1.0) {
  if (argc > 1) {
    const double value = std::atof(argv[1]);
    if (value > 0.0) return value;
  }
  return fallback;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace cicmon::bench
