// Ablation: sensitivity of Table 1 to the assumed OS exception-handling
// cost (the paper assumes 100 cycles per handled exception, §6.1).
#include "bench_common.h"
#include "sim/experiment.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::print_header("OS exception-cost sensitivity (8- and 16-entry IHT)",
                      "Section 6.1 assumption: 100 cycles per OS exception");

  const std::vector<std::uint64_t> costs{20, 50, 100, 200, 400};
  support::Table table({"exception cycles", "avg ovh CIC8", "avg ovh CIC16"});
  for (const std::uint64_t cost : costs) {
    double sums[2] = {0, 0};
    for (const workloads::WorkloadInfo& info : workloads::all_workloads()) {
      cpu::CpuConfig baseline;
      const std::uint64_t base_cycles = sim::run_workload(info.name, baseline, scale).cycles;
      const unsigned entries[2] = {8, 16};
      for (int i = 0; i < 2; ++i) {
        cpu::CpuConfig config;
        config.monitoring = true;
        config.cic.iht_entries = entries[i];
        config.os.exception_cycles = cost;
        const cpu::RunResult r = sim::run_workload(info.name, config, scale);
        sums[i] += static_cast<double>(r.cycles) / static_cast<double>(base_cycles) - 1.0;
      }
    }
    const double n = static_cast<double>(workloads::all_workloads().size());
    table.add_row({support::Table::fmt_u64(cost), support::Table::fmt_pct(sums[0] / n),
                   support::Table::fmt_pct(sums[1] / n)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nfinding: overhead is linear in the handler cost (misses are fixed by\n"
      "the locality of the block stream), so Table 1 rescales proportionally.\n");
  return 0;
}
