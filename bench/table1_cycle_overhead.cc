// Table 1: cycle-count overhead of code-integrity checking with 8- and
// 16-entry IHTs (100-cycle OS exception handling, as in §6.1).
#include "bench_common.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Cycle-count overhead of the Code Integrity Checker",
                      "Table 1 (clock cycles: baseline, CIC8, CIC16; overhead %)");

  const auto rows = sim::table1_overheads(scale);
  support::Table table(
      {"benchmark", "cycles (no CIC)", "CIC8", "CIC16", "ovh CIC8", "ovh CIC16"});
  double sum8 = 0, sum16 = 0;
  for (const sim::Table1Row& row : rows) {
    table.add_row({row.workload, support::Table::fmt_u64(row.cycles_baseline),
                   support::Table::fmt_u64(row.cycles_cic8),
                   support::Table::fmt_u64(row.cycles_cic16),
                   support::Table::fmt_pct(row.overhead_cic8),
                   support::Table::fmt_pct(row.overhead_cic16)});
    sum8 += row.overhead_cic8;
    sum16 += row.overhead_cic16;
  }
  const double n = static_cast<double>(rows.size());
  table.add_row({"average", "-", "-", "-", support::Table::fmt_pct(sum8 / n),
                 support::Table::fmt_pct(sum16 / n)});
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper shape: CIC16 <= CIC8 everywhere; bitcount ~0%%, stringsearch the\n"
      "worst and still high at 16 entries (paper: 50.1%% / 49.4%%).\n");
  return 0;
}
