// Figure 6: IHT miss rate of the nine applications for table sizes
// 1 / 8 / 16 / 32 (replacement: LRU victims, demand refill — see
// os::RefillMode for the policy discussion).
#include "bench_common.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("IHT miss rate vs table size",
                      "Figure 6 (miss rate, 1/8/16/32 entries)");

  const std::vector<unsigned> sizes{1, 8, 16, 32};
  const auto rows = sim::fig6_miss_rates(sizes, scale);

  support::Table table({"benchmark", "1", "8", "16", "32"});
  for (const sim::Fig6Row& row : rows) {
    table.add_row({row.workload, support::Table::fmt_pct(row.miss_rates[0]),
                   support::Table::fmt_pct(row.miss_rates[1]),
                   support::Table::fmt_pct(row.miss_rates[2]),
                   support::Table::fmt_pct(row.miss_rates[3])});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper shape: miss rate falls steeply by 8 entries for several apps\n"
      "and is near zero for all apps by 32; stringsearch stays worst.\n");
  return 0;
}
