// §6.1 workload characterisation: executed-block counts and temporal
// locality ("stringsearch has 25 basic blocks executed while susan has 93";
// "the locality characteristic of programs also varies a lot").
#include "bench_common.h"
#include "sim/experiment.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::print_header("Executed check regions and block-reference locality",
                      "Section 6.1 (block counts and temporal locality)");

  const std::vector<unsigned> capacities{1, 8, 16, 32};
  support::Table table({"benchmark", "static regions", "executed keys", "lookups",
                        "instr/block", "LRU hit@1", "@8", "@16", "@32"});
  for (const sim::BlockStats& stats : sim::characterize_all_blocks(capacities, scale)) {
    table.add_row({stats.workload, support::Table::fmt_u64(stats.static_regions),
                   support::Table::fmt_u64(stats.dynamic_keys),
                   support::Table::fmt_u64(stats.lookups),
                   support::Table::fmt(stats.mean_block_instructions, 1),
                   support::Table::fmt_pct(stats.lru_hit_rate[0]),
                   support::Table::fmt_pct(stats.lru_hit_rate[1]),
                   support::Table::fmt_pct(stats.lru_hit_rate[2]),
                   support::Table::fmt_pct(stats.lru_hit_rate[3])});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper scale: tens of executed blocks per app (25 for stringsearch,\n"
      "93 for susan); locality varies a lot and drives the Figure 6 curves.\n");
  return 0;
}
