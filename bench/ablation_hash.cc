// Ablation: HASHFU choice — hardware cost (area model), fetch-path timing
// fit, and detection strength (§3.4's "sophisticated cryptographic hash
// functions ... cannot keep up" trade-off and §7's future work).
#include "area/area_model.h"
#include "bench_common.h"
#include "fault/campaign.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace cicmon;
  const double scale = bench::parse_scale(argc, argv, 0.1);
  bench::print_header("HASHFU ablation: cost vs strength",
                      "Sections 3.4, 6.3 and 7 (hash algorithm trade-off)");

  const casm_::Image image = workloads::build_workload("sha", {scale, 42});
  const area::TechLibrary tech = area::TechLibrary::tsmc180();

  support::Table table({"hash", "step GE", "depth (gates)", "1-cycle?", "IF slack ok?",
                        "area ovh (16-entry)", "2-bit detect", "4-bit detect"});
  for (const hash::HashKind kind : hash::all_hash_kinds()) {
    const auto unit = hash::make_hash_unit(kind, /*key=*/0x5EED);
    const hash::HashHwProfile profile = unit->hw_profile();
    const area::TimingPaths paths = area::stage_paths(true, 16, profile);
    const area::DesignReport base = area::evaluate_design(tech, 0, kind);
    const area::DesignReport with = area::evaluate_design(tech, 16, kind);

    auto detect = [&](unsigned bits) {
      cpu::CpuConfig config;
      config.monitoring = true;
      config.cic.iht_entries = 16;
      config.cic.hash_kind = kind;
      config.cic.hash_key = 0x5EED;
      fault::CampaignRunner runner(image, config);
      return runner.run_random(fault::FaultSite::kFetchBus, bits, 100, 7)
          .detection_rate_effective();
    };

    table.add_row({std::string(unit->name()), support::Table::fmt(profile.gate_equivalents, 0),
                   support::Table::fmt(profile.depth_gate_delays, 1),
                   profile.single_cycle_feasible ? "yes" : "no",
                   paths.if_path < paths.ex_path ? "yes" : "no",
                   support::Table::fmt_pct(with.cell_area_um2 / base.cell_area_um2 - 1.0),
                   support::Table::fmt_pct(detect(2)), support::Table::fmt_pct(detect(4))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nfinding: the rotate-XOR (optionally keyed, the paper's §6.3 suggestion)\n"
      "closes XOR's even-weight blind spot at XOR-class cost; the multiplier\n"
      "mixer is the only option that cannot hide in the fetch stage.\n");
  return 0;
}
