// google-benchmark microbenchmarks of the simulator's own hot paths —
// simulation throughput (instructions/second), HASHFU steps, and IHT
// lookups — so regressions in the substrate itself are visible.
#include <benchmark/benchmark.h>

#include "cic/iht.h"
#include "cpu/cpu.h"
#include "hash/hash_unit.h"
#include "workloads/workloads.h"

namespace {

using namespace cicmon;

void BM_SimulateBitcount(benchmark::State& state) {
  const bool monitoring = state.range(0) != 0;
  const casm_::Image image = workloads::build_workload("bitcount", {0.2, 42});
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    cpu::CpuConfig config;
    config.monitoring = monitoring;
    config.cic.iht_entries = 16;
    cpu::Cpu cpu(config, image);
    const cpu::RunResult r = cpu.run();
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
  state.SetLabel(monitoring ? "monitored" : "baseline");
}
BENCHMARK(BM_SimulateBitcount)->Arg(0)->Arg(1);

void BM_HashStep(benchmark::State& state) {
  const auto kind = static_cast<hash::HashKind>(state.range(0));
  const auto unit = hash::make_hash_unit(kind, 0x5EED);
  std::uint32_t value = 0x12345678;
  for (auto _ : state) {
    value = unit->step(value, value * 2654435761U);
    benchmark::DoNotOptimize(value);
  }
  state.SetLabel(std::string(hash::hash_kind_name(kind)));
}
BENCHMARK(BM_HashStep)
    ->Arg(static_cast<int>(hash::HashKind::kXor))
    ->Arg(static_cast<int>(hash::HashKind::kRotXor))
    ->Arg(static_cast<int>(hash::HashKind::kCrc32));

void BM_IhtLookup(benchmark::State& state) {
  const auto entries = static_cast<unsigned>(state.range(0));
  cic::Iht iht(entries, cic::ReplacePolicy::kLru);
  for (unsigned i = 0; i < entries; ++i) iht.fill(i * 16, i * 16 + 12, i);
  std::uint32_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iht.lookup(key * 16, key * 16 + 12, key));
    key = (key + 1) % entries;
  }
}
BENCHMARK(BM_IhtLookup)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
