// The Section 5 design flow, end to end: take the canonical ISA
// specification, embed the monitoring microoperations (the "design step" of
// Figure 5), show the before/after microoperation programs in the paper's
// notation (Figures 1, 3(b) and 4), and emit the VHDL sketch the HDL
// generator would hand to synthesis — together with the Table 2 style
// area/timing estimate for the chosen configuration.
//
//   $ ./examples/asip_design_flow
#include <cstdio>

#include "area/area_model.h"
#include "area/rtl_emit.h"
#include "uop/monitor_pass.h"
#include "uop/uop.h"

using namespace cicmon;

int main() {
  // --- Step 1: canonical ISA, as captured from the "design entry system".
  uop::IsaUopSpec spec = uop::build_isa_uops();
  std::printf("IF stage, all instructions (Figure 1):\n%s\n",
              uop::dump_stage(spec.fetch, uop::Stage::kIF).c_str());
  std::printf("ID stage of JR before monitoring:\n%s\n",
              uop::dump_stage(spec.program(isa::Mnemonic::kJr).ops, uop::Stage::kID).c_str());

  // --- Step 2: embed the monitoring microoperations (one pass, no change
  //     to any instruction encoding — software above stays untouched).
  uop::embed_monitoring(&spec);
  std::printf("IF stage after embedding (Figure 3(b)):\n%s\n",
              uop::dump_stage(spec.fetch, uop::Stage::kIF).c_str());
  std::printf("ID stage of JR after embedding (Figure 4):\n%s\n",
              uop::dump_stage(spec.program(isa::Mnemonic::kJr).ops, uop::Stage::kID).c_str());

  // --- Step 3: pick the monitoring hardware and estimate the silicon.
  const unsigned entries = 8;
  const hash::HashKind hash_kind = hash::HashKind::kXor;
  const area::TechLibrary tech = area::TechLibrary::tsmc180();
  const area::DesignReport base = area::evaluate_design(tech, 0, hash_kind);
  const area::DesignReport cic = area::evaluate_design(tech, entries, hash_kind);
  std::printf("synthesis estimate (0.18u-class):\n");
  std::printf("  baseline : %.0f area units, %.2f ns min period\n", base.cell_area_um2,
              base.min_period_ns);
  std::printf("  with CIC : %.0f area units (+%.1f%%), %.2f ns min period (+%.1f%%)\n\n",
              cic.cell_area_um2, 100.0 * (cic.cell_area_um2 / base.cell_area_um2 - 1.0),
              cic.min_period_ns, 100.0 * (cic.min_period_ns / base.min_period_ns - 1.0));

  // --- Step 4: generate the HDL sketch for the monitoring subsystem.
  std::printf("generated VHDL sketch:\n%s\n",
              area::emit_vhdl_sketch(entries, hash_kind).c_str());
  return 0;
}
