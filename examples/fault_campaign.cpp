// Soft-error study: sweeps multi-bit fault campaigns over a workload and
// prints how detection decomposes between the monitor and the baseline
// microarchitecture as faults get wider — the reliability half of the
// paper's motivation (§1's transient-fault trend).
//
//   $ ./examples/fault_campaign [workload] [trials]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fault/campaign.h"
#include "support/table.h"
#include "workloads/workloads.h"

using namespace cicmon;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "dijkstra";
  const unsigned trials = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 150;

  const casm_::Image image = workloads::build_workload(workload, {0.1, 42});
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;
  fault::CampaignRunner runner(image, config);

  std::printf("workload %s: %llu golden instructions, %u trials per cell\n\n",
              workload.c_str(), static_cast<unsigned long long>(runner.golden_instructions()),
              trials);

  support::Table table({"flips", "monitor", "baseline trap", "wrong output", "benign",
                        "hang", "effective detection"});
  for (const unsigned bits : {1U, 2U, 3U, 4U, 6U, 8U}) {
    const fault::CampaignSummary s =
        runner.run_random(fault::FaultSite::kFetchBus, bits, trials, 1234);
    table.add_row({support::Table::fmt_u64(bits),
                   support::Table::fmt_u64(s.detected_mismatch + s.detected_miss),
                   support::Table::fmt_u64(s.detected_baseline),
                   support::Table::fmt_u64(s.wrong_output), support::Table::fmt_u64(s.benign),
                   support::Table::fmt_u64(s.hang),
                   support::Table::fmt_pct(s.detection_rate_effective())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nXOR guarantee: odd flip counts within one word can never alias, and\n"
              "random even-weight masks in a single word still change the checksum.\n");
  return 0;
}
