// Quickstart: build a program, run it on a plain machine and on a
// self-monitoring one, then tamper with the loaded code and watch the Code
// Integrity Checker stop it.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "casm/builder.h"
#include "cpu/cpu.h"

using namespace cicmon;
using namespace cicmon::isa;

int main() {
  // 1. Write a program with the builder API (or casm_::assemble() for text
  //    assembly). It sums 1..100 and prints the result.
  casm_::Asm a;
  a.func("main");
  a.li(kT0, 100);
  a.li(kT1, 0);
  casm_::Label loop = a.bound_label();
  a.addu(kT1, kT1, kT0);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, loop);
  a.move(kA0, kT1);
  a.sys(casm_::Sys::kPutInt);
  a.sys_exit(0);
  const casm_::Image image = a.finalize();

  // 2. Run it on the baseline processor.
  {
    cpu::Cpu machine(cpu::CpuConfig{}, image);
    const cpu::RunResult r = machine.run();
    std::printf("baseline : printed '%s' in %llu cycles (%llu instructions)\n",
                r.console.c_str(), static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions));
  }

  // 3. Run the *same binary* on the monitored processor — no recompilation.
  //    The loader computes the expected block hashes; the pipeline checks
  //    every executed block against them.
  cpu::CpuConfig monitored;
  monitored.monitoring = true;
  monitored.cic.iht_entries = 8;
  {
    cpu::Cpu machine(monitored, image);
    const cpu::RunResult r = machine.run();
    std::printf("monitored: printed '%s', %llu block lookups, %llu misses, +%llu cycles OS\n",
                r.console.c_str(), static_cast<unsigned long long>(r.iht.lookups),
                static_cast<unsigned long long>(r.iht.misses),
                static_cast<unsigned long long>(r.monitor_cycles));
  }

  // 4. Attack: flip one bit of the loop body after the program is loaded.
  //    (Bit 3 of byte 1 = word bit 11, the addu's destination-register field:
  //    the word stays a valid instruction, so only the monitor can see it.)
  {
    cpu::Cpu machine(monitored, image);
    machine.memory().flip_bit(image.text_base + 2 * 4 + 1, 3);
    const cpu::RunResult r = machine.run();
    std::printf("tampered : %s (%s) — the monitor stopped the program\n",
                std::string(cpu::exit_reason_name(r.reason)).c_str(),
                std::string(os::termination_cause_name(r.monitor_cause)).c_str());
  }
  return 0;
}
