// Tamper-detection walkthrough: attacks a real workload (AES encryption) at
// every point of the fetch path and reports where each attack is caught —
// the paper's §3.2 location argument, live.
//
//   $ ./examples/tamper_detection
#include <cstdio>

#include "fault/campaign.h"
#include "workloads/workloads.h"

using namespace cicmon;

namespace {

void report(const char* label, const fault::TrialResult& trial) {
  std::printf("  %-34s -> %s\n", label, std::string(outcome_name(trial.outcome)).c_str());
}

}  // namespace

int main() {
  const casm_::Image image = workloads::build_workload("rijndael", {0.05, 42});

  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 16;
  fault::CampaignRunner runner(image, config);
  std::printf("victim: rijndael (AES-128), %llu instructions golden\n\n",
              static_cast<unsigned long long>(runner.golden_instructions()));

  std::printf("attacks before the check point (must be detected):\n");
  {
    fault::FaultSpec spec;
    spec.site = fault::FaultSite::kMemoryText;
    spec.target_address = image.text_base + 64;  // inside aes_ark
    spec.xor_mask = 1U << 2;
    report("rewrite code byte in memory", runner.run_trial(spec));
  }
  {
    fault::FaultSpec spec;
    spec.site = fault::FaultSite::kFetchBus;
    spec.trigger_index = runner.golden_instructions() / 3;
    spec.xor_mask = 1U << 14;
    report("corrupt a word on the fetch bus", runner.run_trial(spec));
  }
  {
    fault::FaultSpec spec;
    spec.site = fault::FaultSite::kICacheLine;
    spec.trigger_index = runner.golden_instructions() / 2;
    spec.xor_mask = 1;
    report("flip a resident i-cache bit", runner.run_trial(spec));
  }

  std::printf("\nattack after the check point (the monitor's §3.2 blind spot):\n");
  {
    fault::FaultSpec spec;
    spec.site = fault::FaultSite::kPostIdLatch;
    spec.trigger_index = runner.golden_instructions() / 4;
    spec.xor_mask = 1U << 16;
    report("corrupt the latched instruction", runner.run_trial(spec));
  }

  std::printf("\nsame attacks with the monitor disabled:\n");
  cpu::CpuConfig off;
  fault::CampaignRunner plain(image, off);
  {
    fault::FaultSpec spec;
    spec.site = fault::FaultSite::kMemoryText;
    spec.target_address = image.text_base + 64;
    spec.xor_mask = 1U << 2;
    report("rewrite code byte in memory", plain.run_trial(spec));
  }

  std::printf("\nstatistical view (120 random single-bit bus faults):\n");
  const fault::CampaignSummary with_cic =
      runner.run_random(fault::FaultSite::kFetchBus, 1, 120, 7);
  const fault::CampaignSummary without =
      plain.run_random(fault::FaultSite::kFetchBus, 1, 120, 7);
  std::printf("  monitored : %.1f%% of consequential faults detected in hardware\n",
              100.0 * with_cic.detection_rate_effective());
  std::printf("  baseline  : %.1f%%\n", 100.0 * without.detection_rate_effective());
  return 0;
}
