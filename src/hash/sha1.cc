#include "hash/sha1.h"

#include <cstring>

#include "support/bitops.h"

namespace cicmon::hash {

using support::rotl32;

void Sha1::reset() {
  state_ = {0x6745'2301U, 0xEFCD'AB89U, 0x98BA'DCFEU, 0x1032'5476U, 0xC3D2'E1F0U};
  length_bits_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A82'7999U;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9'EBA1U;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1B'BCDCU;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62'C1D6U;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> bytes) {
  length_bits_ += static_cast<std::uint64_t>(bytes.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(bytes.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= bytes.size()) {
    process_block(bytes.data() + offset);
    offset += 64;
  }
  if (offset < bytes.size()) {
    std::memcpy(buffer_.data(), bytes.data() + offset, bytes.size() - offset);
    buffered_ = bytes.size() - offset;
  }
}

std::array<std::uint8_t, 20> Sha1::digest() {
  // Padding: 0x80, zeros, 64-bit big-endian length.
  const std::uint64_t length = length_bits_;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update({&zero, 1});
  std::array<std::uint8_t, 8> length_bytes{};
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(length >> (56 - 8 * i));
  }
  update(length_bytes);

  std::array<std::uint8_t, 20> out{};
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::array<std::uint8_t, 20> Sha1::hash_words(std::span<const std::uint32_t> words) {
  Sha1 sha;
  for (std::uint32_t w : words) {
    const std::array<std::uint8_t, 4> bytes = {
        static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
        static_cast<std::uint8_t>(w >> 16), static_cast<std::uint8_t>(w >> 24)};
    sha.update(bytes);
  }
  return sha.digest();
}

std::uint32_t Sha1::hash_words_truncated32(std::span<const std::uint32_t> words) {
  const auto d = hash_words(words);
  return (static_cast<std::uint32_t>(d[0]) << 24) | (static_cast<std::uint32_t>(d[1]) << 16) |
         (static_cast<std::uint32_t>(d[2]) << 8) | static_cast<std::uint32_t>(d[3]);
}

}  // namespace cicmon::hash
