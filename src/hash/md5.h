// MD5 (RFC 1321).
//
// Second cryptographic comparator in the fault-analysis experiment (the paper
// names "MD5, SHA-1, etc." as the sophisticated options, §3.4). Complete,
// self-contained implementation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cicmon::hash {

class Md5 {
 public:
  Md5() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> bytes);
  std::array<std::uint8_t, 16> digest();

  static std::array<std::uint8_t, 16> hash_words(std::span<const std::uint32_t> words);
  static std::uint32_t hash_words_truncated32(std::span<const std::uint32_t> words);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::uint64_t length_bits_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace cicmon::hash
