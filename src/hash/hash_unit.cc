#include "hash/hash_unit.h"

#include <array>

#include "support/bitops.h"
#include "support/error.h"

namespace cicmon::hash {
namespace {

using support::rotl32;

// Gate-equivalent estimates for one 32-bit step, consistent with the
// component library in src/area (NAND2-equivalent units; a 2-input XOR
// counts ~2.5 GE, a 32-bit carry-propagate adder ~300 GE, a 32x32 multiplier
// is far beyond a fetch-stage cycle budget).
constexpr HashHwProfile kXorProfile{32 * 2.5, 1.5, true};
constexpr HashHwProfile kAddProfile{310.0, 10.0, true};
constexpr HashHwProfile kRotXorProfile{32 * 2.5, 1.5, true};   // rotate is wiring
constexpr HashHwProfile kFletcherProfile{2 * 170.0, 9.0, true};  // two 16-bit adders
constexpr HashHwProfile kCrc32Profile{650.0, 6.0, true};  // XOR network, table-free
constexpr HashHwProfile kMulXorProfile{5200.0, 28.0, false};  // 32x32 multiplier

class XorUnit final : public HashFunctionUnit {
 public:
  std::string_view name() const override { return "xor"; }
  HashKind kind() const override { return HashKind::kXor; }
  std::uint32_t step(std::uint32_t state, std::uint32_t word) const override {
    return state ^ word;
  }
  HashHwProfile hw_profile() const override { return kXorProfile; }
};

class AddUnit final : public HashFunctionUnit {
 public:
  std::string_view name() const override { return "add"; }
  HashKind kind() const override { return HashKind::kAdd; }
  std::uint32_t step(std::uint32_t state, std::uint32_t word) const override {
    return state + word;
  }
  HashHwProfile hw_profile() const override { return kAddProfile; }
};

class RotXorUnit final : public HashFunctionUnit {
 public:
  explicit RotXorUnit(std::uint32_t key, bool keyed) : key_(key), keyed_(keyed) {}
  std::string_view name() const override { return keyed_ ? "rotxor-keyed" : "rotxor"; }
  HashKind kind() const override {
    return keyed_ ? HashKind::kRotXorKeyed : HashKind::kRotXor;
  }
  std::uint32_t init() const override { return keyed_ ? key_ : 0; }
  std::uint32_t step(std::uint32_t state, std::uint32_t word) const override {
    return rotl32(state, 1) ^ word;
  }
  HashHwProfile hw_profile() const override { return kRotXorProfile; }

 private:
  std::uint32_t key_;
  bool keyed_;
};

class Fletcher32Unit final : public HashFunctionUnit {
 public:
  std::string_view name() const override { return "fletcher32"; }
  HashKind kind() const override { return HashKind::kFletcher32; }
  std::uint32_t step(std::uint32_t state, std::uint32_t word) const override {
    // State packs (sum2 << 16) | sum1, both mod 65535; the word is folded in
    // as two 16-bit halves, matching the classic Fletcher-32 definition.
    std::uint32_t sum1 = state & 0xFFFFU;
    std::uint32_t sum2 = state >> 16;
    sum1 = (sum1 + (word & 0xFFFFU)) % 65535U;
    sum2 = (sum2 + sum1) % 65535U;
    sum1 = (sum1 + (word >> 16)) % 65535U;
    sum2 = (sum2 + sum1) % 65535U;
    return (sum2 << 16) | sum1;
  }
  HashHwProfile hw_profile() const override { return kFletcherProfile; }
};

class Crc32Unit final : public HashFunctionUnit {
 public:
  Crc32Unit() {
    // Standard reflected CRC-32 (polynomial 0xEDB88320) byte table.
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1U) ? 0xEDB8'8320U : 0U);
      }
      table_[i] = crc;
    }
  }
  std::string_view name() const override { return "crc32"; }
  HashKind kind() const override { return HashKind::kCrc32; }
  std::uint32_t init() const override { return 0xFFFF'FFFFU; }
  std::uint32_t step(std::uint32_t state, std::uint32_t word) const override {
    // Word consumed little-endian byte order (the memory byte order).
    std::uint32_t crc = state;
    for (int b = 0; b < 4; ++b) {
      const std::uint8_t byte = static_cast<std::uint8_t>(word >> (8 * b));
      crc = (crc >> 8) ^ table_[(crc ^ byte) & 0xFFU];
    }
    return crc;
  }
  HashHwProfile hw_profile() const override { return kCrc32Profile; }

 private:
  std::array<std::uint32_t, 256> table_{};
};

class MulXorUnit final : public HashFunctionUnit {
 public:
  std::string_view name() const override { return "mulxor"; }
  HashKind kind() const override { return HashKind::kMulXor; }
  std::uint32_t init() const override { return 0x9E37'79B9U; }
  std::uint32_t step(std::uint32_t state, std::uint32_t word) const override {
    std::uint32_t mixed = (state ^ word) * 0x9E37'79B1U;
    return mixed ^ (mixed >> 15);
  }
  HashHwProfile hw_profile() const override { return kMulXorProfile; }
};

constexpr std::array<HashKind, 7> kAllKinds = {
    HashKind::kXor,        HashKind::kAdd,   HashKind::kRotXor, HashKind::kRotXorKeyed,
    HashKind::kFletcher32, HashKind::kCrc32, HashKind::kMulXor};

}  // namespace

std::unique_ptr<HashFunctionUnit> make_hash_unit(HashKind kind, std::uint32_t key) {
  switch (kind) {
    case HashKind::kXor: return std::make_unique<XorUnit>();
    case HashKind::kAdd: return std::make_unique<AddUnit>();
    case HashKind::kRotXor: return std::make_unique<RotXorUnit>(0, false);
    case HashKind::kRotXorKeyed: return std::make_unique<RotXorUnit>(key, true);
    case HashKind::kFletcher32: return std::make_unique<Fletcher32Unit>();
    case HashKind::kCrc32: return std::make_unique<Crc32Unit>();
    case HashKind::kMulXor: return std::make_unique<MulXorUnit>();
  }
  throw support::CicError("make_hash_unit: unknown kind");
}

std::span<const HashKind> all_hash_kinds() { return kAllKinds; }

std::string_view hash_kind_name(HashKind kind) {
  return make_hash_unit(kind)->name();
}

}  // namespace cicmon::hash
