// Hash functional units (the paper's HASHFU).
//
// The HASHFU folds each fetched instruction word into the 32-bit RHASH
// register in the IF stage, so a unit must be a *streaming* compressor with a
// 32-bit state and a single-cycle-feasible step. The paper uses plain XOR
// (§3.4) and names two extension directions: a process-dependent random value
// (§6.3) and "more secure yet efficient hash algorithms" (§7). All of those
// are implemented here, each annotated with a hardware profile consumed by
// the area/timing model (src/area) so the ablation bench can weigh strength
// against cost.
//
// Full cryptographic hashes (SHA-1, MD5 — see sha1.h/md5.h) cannot keep up
// with the pipeline (§3.4); they are implemented for the offline detection-
// probability comparison in the fault-analysis bench, not as HASHFU options.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace cicmon::hash {

enum class HashKind : std::uint8_t {
  kXor,          // paper's checksum: RHASH ^= instr
  kAdd,          // modular additive checksum
  kRotXor,       // rotate-left-1 then XOR (order-sensitive XOR)
  kRotXorKeyed,  // ROTXOR seeded with a per-process random value (§6.3)
  kFletcher32,   // two 16-bit running sums packed into the 32-bit state
  kCrc32,        // CRC-32 (IEEE 802.3 polynomial), word-at-a-time
  kMulXor,       // multiply-xor mixer (Knuth multiplicative constant)
};

// Gate-level footprint of a unit's combinational step logic, in NAND2 gate
// equivalents, for the area model; depth in gate delays for the timing model.
struct HashHwProfile {
  double gate_equivalents = 0.0;
  double depth_gate_delays = 0.0;
  bool single_cycle_feasible = true;
};

class HashFunctionUnit {
 public:
  virtual ~HashFunctionUnit() = default;

  virtual std::string_view name() const = 0;
  virtual HashKind kind() const = 0;

  // Initial RHASH value at the start of a basic block (hardware reset value).
  virtual std::uint32_t init() const { return 0; }

  // One HASHFU.ope(ohashv, instr) step.
  virtual std::uint32_t step(std::uint32_t state, std::uint32_t instr_word) const = 0;

  // Folds a whole instruction sequence; this is what the static hash
  // generator computes for the FHT.
  std::uint32_t hash_block(std::span<const std::uint32_t> words) const {
    std::uint32_t state = init();
    for (std::uint32_t w : words) state = step(state, w);
    return state;
  }

  virtual HashHwProfile hw_profile() const = 0;
};

// Factory. `key` is only used by kRotXorKeyed (the per-process random value).
std::unique_ptr<HashFunctionUnit> make_hash_unit(HashKind kind, std::uint32_t key = 0);

// All kinds, for sweeps.
std::span<const HashKind> all_hash_kinds();

std::string_view hash_kind_name(HashKind kind);

}  // namespace cicmon::hash
