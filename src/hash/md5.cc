#include "hash/md5.h"

#include <cstring>

#include "support/bitops.h"

namespace cicmon::hash {
namespace {

using support::rotl32;

// Per-round shift amounts.
constexpr std::uint8_t kShifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|).
constexpr std::uint32_t kSines[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

}  // namespace

void Md5::reset() {
  state_ = {0x6745'2301U, 0xEFCD'AB89U, 0x98BA'DCFEU, 0x1032'5476U};
  length_bits_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[4 * i]) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kSines[i] + m[g], kShifts[i]);
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(std::span<const std::uint8_t> bytes) {
  length_bits_ += static_cast<std::uint64_t>(bytes.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(bytes.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= bytes.size()) {
    process_block(bytes.data() + offset);
    offset += 64;
  }
  if (offset < bytes.size()) {
    std::memcpy(buffer_.data(), bytes.data() + offset, bytes.size() - offset);
    buffered_ = bytes.size() - offset;
  }
}

std::array<std::uint8_t, 16> Md5::digest() {
  const std::uint64_t length = length_bits_;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update({&zero, 1});
  std::array<std::uint8_t, 8> length_bytes{};
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(length >> (8 * i));  // little-endian
  }
  update(length_bytes);

  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 4; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i]);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i] >> 24);
  }
  return out;
}

std::array<std::uint8_t, 16> Md5::hash_words(std::span<const std::uint32_t> words) {
  Md5 md5;
  for (std::uint32_t w : words) {
    const std::array<std::uint8_t, 4> bytes = {
        static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
        static_cast<std::uint8_t>(w >> 16), static_cast<std::uint8_t>(w >> 24)};
    md5.update(bytes);
  }
  return md5.digest();
}

std::uint32_t Md5::hash_words_truncated32(std::span<const std::uint32_t> words) {
  const auto d = hash_words(words);
  return static_cast<std::uint32_t>(d[0]) | (static_cast<std::uint32_t>(d[1]) << 8) |
         (static_cast<std::uint32_t>(d[2]) << 16) | (static_cast<std::uint32_t>(d[3]) << 24);
}

}  // namespace cicmon::hash
