// SHA-1 (FIPS 180-1).
//
// Used as the gold-standard comparator in the fault-analysis experiment
// (§3.4/§6.3): the paper cites SHA-1's 2^-80 undetected-error probability but
// rejects it for the pipeline because a cryptographic engine cannot keep up
// with fetch. This is a complete, self-contained implementation — no OpenSSL.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cicmon::hash {

class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> bytes);
  // Finalizes and returns the 20-byte digest. The object must be reset()
  // before reuse.
  std::array<std::uint8_t, 20> digest();

  // Convenience: digest of a word sequence (little-endian serialization,
  // matching the instruction memory byte order).
  static std::array<std::uint8_t, 20> hash_words(std::span<const std::uint32_t> words);

  // First 4 digest bytes as a big-endian 32-bit value — the "truncated SHA-1"
  // used when comparing 32-bit detection strength on equal footing.
  static std::uint32_t hash_words_truncated32(std::span<const std::uint32_t> words);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::uint64_t length_bits_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace cicmon::hash
