// Checkpointed golden run — the campaign accelerator's recording side.
//
// Runs the fault-free execution once per campaign, recording cpu::Snapshots
// on an instruction-count schedule. A trial whose trigger fires at index T
// then restores the nearest snapshot at or before T and executes only the
// suffix, instead of re-simulating the whole clean prefix (SimPoint/SMARTS-
// style fast-forward applied to fault injection).
//
// Snapshots are interval-indexed on two monotone clocks: retired
// instructions (post-ID latch and I-cache triggers count these) and fetch-bus
// transfers (bus tampers count these), so every trigger unit can find its
// nearest safe restore point.
#pragma once

#include <cstdint>
#include <vector>

#include "casm/image.h"
#include "cpu/cpu.h"
#include "cpu/snapshot.h"

namespace cicmon::fault {

class CheckpointedGolden {
 public:
  // Records the golden run of `config`/`image` through `loaded` (which must
  // have been preloaded for the same config). `stride` is the snapshot
  // spacing in retired instructions; 0 selects the automatic schedule, which
  // starts dense and doubles the stride (dropping every other snapshot)
  // whenever the count would exceed a fixed budget, so memory stays bounded
  // for arbitrarily long runs. Throws if the golden run does not exit
  // cleanly.
  CheckpointedGolden(const cpu::CpuConfig& config, const casm_::Image& image,
                     const cpu::LoadedImage& loaded, std::uint64_t stride);

  // Rebuilds a recording from deserialized state (fault/golden_ser.h)
  // instead of re-running the golden execution. `snapshots` must be the
  // schedule a recording constructor produced: non-empty, ascending in both
  // clocks, snapshot 0 at instruction 0; `stride` is the resolved (possibly
  // auto-doubled) spacing it recorded at. Throws on a malformed schedule or
  // a non-clean result — the shipping layer treats that as "derive locally".
  CheckpointedGolden(std::vector<cpu::Snapshot> snapshots, cpu::RunResult result,
                     std::uint64_t stride);

  // The golden run's final result (this class doubles as THE golden run —
  // recording uses the single-step interface, whose results are bit-identical
  // to any engine's run()).
  const cpu::RunResult& result() const { return result_; }

  std::uint64_t stride() const { return stride_; }
  std::size_t snapshot_count() const { return snapshots_.size(); }

  // The full schedule, for serialization (fault/golden_ser.h).
  const std::vector<cpu::Snapshot>& snapshots() const { return snapshots_; }

  // Last snapshot with instructions (resp. bus transfers) <= n. Always
  // defined: snapshot 0 is the pre-execution state at both clocks' zero.
  const cpu::Snapshot& nearest_by_instructions(std::uint64_t n) const;
  const cpu::Snapshot& nearest_by_transfers(std::uint64_t n) const;

  static constexpr std::uint64_t kAutoInitialStride = 1024;
  static constexpr std::size_t kAutoMaxSnapshots = 128;

 private:
  std::vector<cpu::Snapshot> snapshots_;  // ascending in both clocks
  cpu::RunResult result_;
  std::uint64_t stride_ = 0;
};

}  // namespace cicmon::fault
