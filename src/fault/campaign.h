// Fault-injection campaign runner.
//
// Runs a program once clean (the golden run), then many times with one
// injected fault each, classifying every trial by how the fault was — or
// was not — caught. The classification separates the paper's claims:
//
//  * faults striking before the check point (memory, bus, I-cache) must be
//    caught by the monitor (hash mismatch, or hash miss when the flip
//    rewrites control flow into unknown regions);
//  * some flips are caught by the baseline microarchitecture itself
//    (invalid opcode / wild PC), which the paper credits in §6.3;
//  * post-ID faults escape the monitor by construction (§3.2);
//  * flips in never-executed words, or that hash-alias, escape entirely.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "casm/image.h"
#include "cpu/cpu.h"
#include "exp/sweep.h"
#include "fault/fault.h"
#include "support/rng.h"

namespace cicmon::fault {

enum class Outcome : std::uint8_t {
  kDetectedMismatch,  // monitor: hash mismatch (IHT or FHT)
  kDetectedMiss,      // monitor: block unknown to the FHT
  kDetectedBaseline,  // illegal opcode or wild PC (baseline trap)
  kWrongOutput,       // escaped all checks, produced wrong results
  kBenign,            // ran to completion with correct results
  kHang,              // watchdog expired (corrupted loop condition)
};

std::string_view outcome_name(Outcome outcome);

// True for outcomes where execution was stopped by *some* hardware check.
constexpr bool is_detected(Outcome outcome) {
  return outcome == Outcome::kDetectedMismatch || outcome == Outcome::kDetectedMiss ||
         outcome == Outcome::kDetectedBaseline;
}

struct TrialResult {
  Outcome outcome = Outcome::kBenign;
  cpu::ExitReason exit_reason = cpu::ExitReason::kExit;
  FaultSpec spec;
};

struct CampaignSummary {
  std::uint64_t trials = 0;
  std::uint64_t detected_mismatch = 0;
  std::uint64_t detected_miss = 0;
  std::uint64_t detected_baseline = 0;
  std::uint64_t wrong_output = 0;
  std::uint64_t benign = 0;
  std::uint64_t hang = 0;

  void add(Outcome outcome);
  std::uint64_t detected() const {
    return detected_mismatch + detected_miss + detected_baseline;
  }
  // Detection probability among trials where the fault mattered at all
  // (benign trials — unexecuted or harmless flips — excluded).
  double detection_rate_effective() const;
  // Detection probability over all trials.
  double detection_rate_total() const;
};

class CampaignRunner {
 public:
  // `config` is the machine to attack (monitoring on or off); the image is
  // shared by all trials (each trial loads a fresh copy into its own CPU).
  CampaignRunner(const casm_::Image& image, const cpu::CpuConfig& config);

  // Runs one trial with an explicit fault. Thread-safe: trials share only
  // the golden-run state, read-only; each builds its own CPU.
  TrialResult run_trial(const FaultSpec& spec) const;

  // The campaign as a sweep-engine grid: one cell per trial, u64 payload =
  // {outcome code}. Every trial draws from its own RNG stream seeded by
  // (seed, trial index), so the summary is bit-identical for a given seed at
  // any job count, shard count, or process placement. The spec borrows this
  // runner — it must outlive any run_cell call.
  exp::SweepSpec sweep(FaultSite site, unsigned bits, unsigned trials,
                       std::uint64_t seed) const;

  // Rebuilds the summary from a full (possibly shard-merged) cell vector.
  static CampaignSummary summary_from_cells(const std::vector<exp::CellResult>& cells);

  // Runs `trials` random injections at `site`, each flipping `bits` distinct
  // bits of one instruction word, fanned out over `jobs` threads (0 resolves
  // CICMON_JOBS / hardware concurrency; 1 runs inline) — sweep() + the
  // engine + summary_from_cells in one call.
  CampaignSummary run_random(FaultSite site, unsigned bits, unsigned trials,
                             std::uint64_t seed, unsigned jobs = 0);

  // Golden-run facts (available after construction).
  std::uint64_t golden_instructions() const { return golden_instructions_; }
  const std::string& golden_console() const { return golden_console_; }

 private:
  casm_::Image image_;
  cpu::CpuConfig config_;
  std::uint64_t golden_instructions_ = 0;
  std::string golden_console_;
  std::uint32_t golden_exit_code_ = 0;
};

}  // namespace cicmon::fault
