// Fault-injection campaign runner.
//
// Runs a program once clean (the golden run), then many times with one
// injected fault each, classifying every trial by how the fault was — or
// was not — caught. The classification separates the paper's claims:
//
//  * faults striking before the check point (memory, bus, I-cache) must be
//    caught by the monitor (hash mismatch, or hash miss when the flip
//    rewrites control flow into unknown regions);
//  * some flips are caught by the baseline microarchitecture itself
//    (invalid opcode / wild PC), which the paper credits in §6.3;
//  * post-ID faults escape the monitor by construction (§3.2);
//  * flips in never-executed words, or that hash-alias, escape entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "casm/image.h"
#include "cpu/cpu.h"
#include "cpu/snapshot.h"
#include "exp/sweep.h"
#include "fault/fault.h"
#include "fault/golden.h"
#include "fault/golden_ser.h"
#include "support/rng.h"

namespace cicmon::fault {

enum class Outcome : std::uint8_t {
  kDetectedMismatch,  // monitor: hash mismatch (IHT or FHT)
  kDetectedMiss,      // monitor: block unknown to the FHT
  kDetectedBaseline,  // illegal opcode or wild PC (baseline trap)
  kWrongOutput,       // escaped all checks, produced wrong results
  kBenign,            // ran to completion with correct results
  kHang,              // watchdog expired (corrupted loop condition)
};

std::string_view outcome_name(Outcome outcome);

// True for outcomes where execution was stopped by *some* hardware check.
constexpr bool is_detected(Outcome outcome) {
  return outcome == Outcome::kDetectedMismatch || outcome == Outcome::kDetectedMiss ||
         outcome == Outcome::kDetectedBaseline;
}

struct TrialResult {
  Outcome outcome = Outcome::kBenign;
  cpu::ExitReason exit_reason = cpu::ExitReason::kExit;
  FaultSpec spec;
};

struct CampaignSummary {
  std::uint64_t trials = 0;
  std::uint64_t detected_mismatch = 0;
  std::uint64_t detected_miss = 0;
  std::uint64_t detected_baseline = 0;
  std::uint64_t wrong_output = 0;
  std::uint64_t benign = 0;
  std::uint64_t hang = 0;

  void add(Outcome outcome);
  std::uint64_t detected() const {
    return detected_mismatch + detected_miss + detected_baseline;
  }
  // Detection probability among trials where the fault mattered at all
  // (benign trials — unexecuted or harmless flips — excluded).
  double detection_rate_effective() const;
  // Detection probability over all trials.
  double detection_rate_total() const;
};

// Golden-run checkpointing (see fault/golden.h). Enabled by default: trials
// restore the nearest snapshot before their trigger instead of re-simulating
// the clean prefix. A pure execution strategy — like the engine choice or the
// job count, it never changes a trial outcome (tests and CI enforce
// byte-identity on/off at every stride) — so it is not a sweep parameter.
// Automatically disabled when recovery mode is configured (snapshots do not
// cover the in-run block checkpoint).
struct CheckpointConfig {
  bool enabled = true;
  std::uint64_t stride = 0;  // snapshot spacing in instructions; 0 = automatic
};

class CampaignRunner {
 public:
  // `config` is the machine to attack (monitoring on or off); the image is
  // loaded once into a shared immutable page base that every trial's CPU
  // reads through copy-on-write.
  CampaignRunner(const casm_::Image& image, const cpu::CpuConfig& config,
                 const CheckpointConfig& checkpoints = {});

  // Builds a runner from shipped or cached golden state instead of deriving
  // it: the loader run and the golden execution are both skipped (the uop
  // spec is rebuilt from the config, bit-identical by construction). `state`
  // must come from an identically configured runner's export_golden() — the
  // golden key (fault/golden_ser.h) enforces that at the shipping layer, and
  // this constructor throws on anything structurally inconsistent, which the
  // caller treats as "fall back to local derivation".
  CampaignRunner(const casm_::Image& image, const cpu::CpuConfig& config,
                 const CheckpointConfig& checkpoints, const GoldenState& state);

  // Snapshot of everything the constructor derived, for shipping/caching.
  GoldenState export_golden() const;

  // Runs one trial with an explicit fault. Thread-safe: trials share only
  // the golden-run state, read-only; each builds its own CPU.
  TrialResult run_trial(const FaultSpec& spec) const;

  // The campaign as a sweep-engine grid: one cell per trial, u64 payload =
  // {outcome code}. Every trial draws from its own RNG stream seeded by
  // (seed, trial index), so the summary is bit-identical for a given seed at
  // any job count, shard count, or process placement. The spec borrows this
  // runner — it must outlive any run_cell call.
  exp::SweepSpec sweep(FaultSite site, unsigned bits, unsigned trials,
                       std::uint64_t seed) const;

  // Rebuilds the summary from a full (possibly shard-merged) cell vector.
  static CampaignSummary summary_from_cells(const std::vector<exp::CellResult>& cells);

  // Runs `trials` random injections at `site`, each flipping `bits` distinct
  // bits of one instruction word, fanned out over `jobs` threads (0 resolves
  // CICMON_JOBS / hardware concurrency; 1 runs inline) — sweep() + the
  // engine + summary_from_cells in one call.
  CampaignSummary run_random(FaultSite site, unsigned bits, unsigned trials,
                             std::uint64_t seed, unsigned jobs = 0);

  // Golden-run facts (available after construction).
  std::uint64_t golden_instructions() const { return golden_instructions_; }
  const std::string& golden_console() const { return golden_console_; }

  // Checkpoint accounting, for the CLI's stderr acceleration report.
  bool checkpoints_enabled() const { return checkpoints_.enabled; }
  std::uint64_t checkpoint_stride() const { return golden_ ? golden_->stride() : 0; }
  std::size_t snapshot_count() const { return golden_ ? golden_->snapshot_count() : 0; }
  std::uint64_t restores() const { return restores_.load(std::memory_order_relaxed); }
  std::uint64_t skipped_instructions() const {
    return skipped_instructions_.load(std::memory_order_relaxed);
  }

 private:
  // The golden recording for I-cache-line trials, which force the I-cache on:
  // when the campaign config already has it on this is golden_ itself,
  // otherwise a second recording built lazily on the first such trial (most
  // campaigns attack one site and never pay for the other recording).
  const CheckpointedGolden& icache_golden() const;

  casm_::Image image_;
  cpu::CpuConfig config_;
  CheckpointConfig checkpoints_;
  cpu::LoadedImage loaded_;  // shared by every trial, checkpoints on or off

  std::unique_ptr<CheckpointedGolden> golden_;  // null when checkpoints off
  mutable std::once_flag icache_once_;
  mutable std::unique_ptr<CheckpointedGolden> icache_golden_;

  mutable std::atomic<std::uint64_t> restores_{0};
  mutable std::atomic<std::uint64_t> skipped_instructions_{0};

  std::uint64_t golden_instructions_ = 0;
  std::string golden_console_;
  std::uint32_t golden_exit_code_ = 0;
  cpu::RunResult golden_result_;  // the full result, for export_golden()
};

}  // namespace cicmon::fault
