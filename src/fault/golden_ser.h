// cicmon-golden-v1 — versioned, checksummed golden-state serialization.
//
// A campaign's golden state is everything PR 7 computes before the first
// trial: the post-loader image (frozen copy-on-write page base + recovered
// FHT + entry point) and the checkpointed golden run (the snapshot schedule
// with COW page deltas, checker/IHT state, RNG state, and both trigger
// clocks, plus the final RunResult). Deriving it costs one full clean
// execution per process — the measured residual of the dispatch tax. This
// module serializes it once so the orchestrator can ship it to every worker
// over the session wire, and cache it on disk across invocations.
//
// Record layout (all integers little-endian):
//
//     "cicmon-golden-v1"        16-byte magic
//     key                       16-byte canonical golden key (hex digits)
//     image section             entry, fht_was_attached, FHT blob, pages
//     golden-run section        stride, snapshots[]
//     result section            the golden RunResult
//     checksum                  FNV-1a64 over every preceding byte
//
// Zero pages of the image base are elided (an unbacked base page reads as
// zero); snapshot memory deltas are NEVER elided — an absent delta page
// falls through to the possibly nonzero base page, so a zero delta page is
// load-bearing. Page maps are emitted in ascending key order, so encoding
// is deterministic: the same golden state always produces the same bytes
// (the byte-identity contract extends to the shipped blob itself).
//
// Deliberately NOT serialized: the uop spec (rebuilt from the config via
// build_isa_uops + embed_monitoring, bit-identical by construction) and the
// lazy icache-golden recording (derived per process on the first
// icache-line trial; shipping it would double most blobs for a site few
// campaigns attack).
//
// decode_golden is strict: any truncation, trailing garbage, length
// overflow, checksum mismatch, or key skew throws CicError. The session
// layer maps that to "decline the shipment and derive locally" — corruption
// is a fallback trigger, never silent acceptance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cpu/snapshot.h"
#include "mem/memory.h"

namespace cicmon::fault {

// Leading magic of every cicmon-golden-v1 blob (exactly 16 bytes).
inline constexpr std::string_view kGoldenMagic = "cicmon-golden-v1";

// Everything a worker needs to skip its golden run. `snapshots` is empty
// and `stride` is 0 when the campaign runs with checkpoints off (the golden
// result alone still spares the clean execution).
struct GoldenState {
  // Post-loader image (cpu::LoadedImage minus the rebuildable uop spec).
  mem::Memory::PageMap image_pages;
  std::vector<std::uint8_t> fht_blob;  // cfg::FullHashTable::serialize()
  bool fht_was_attached = false;
  std::uint32_t entry = 0;

  // Checkpointed golden run.
  std::vector<cpu::Snapshot> snapshots;
  std::uint64_t stride = 0;

  // The golden run's final result.
  cpu::RunResult result;
};

// Canonical golden key: 16 lowercase hex digits of the FNV-1a64 hash over
// "name=value\n" lines in the given order. The caller lists exactly the
// fields the golden state depends on — workload identity and scale, the
// campaign's fault/seed parameters, the monitor configuration, and the
// checkpoint schedule — and nothing execution-strategy-shaped (engine,
// translate cache, jobs), which never changes the state. Orchestrator and
// worker build the key from their own flags; a mismatch means config skew
// and downgrades shipping to local derivation.
std::string golden_key(const std::vector<std::pair<std::string, std::string>>& fields);

// Serializes `state` into a cicmon-golden-v1 blob carrying `key` (which must
// be a 16-character golden_key output).
std::string encode_golden(const GoldenState& state, std::string_view key);

// Parses a blob, verifying magic, whole-record checksum, structural sanity,
// and that the embedded key equals `expected_key`. Throws CicError on any
// violation.
GoldenState decode_golden(std::string_view blob, std::string_view expected_key);

// Cheap acceptance test: magic + key + whole-record checksum, no parsing.
// What the cache and the worker use to reject truncated or corrupt blobs.
bool golden_blob_valid(std::string_view blob, std::string_view expected_key);

// --- Content-addressed on-disk cache ---------------------------------------

// DIR/<key>.golden
std::string golden_cache_path(const std::string& dir, std::string_view key);

// Loads and validates the cached blob for `key`. Returns the blob, or an
// empty string when the file is missing, truncated, or corrupt — a bad cache
// entry is ignored (the caller re-derives and rewrites), never trusted.
std::string load_cached_golden(const std::string& dir, std::string_view key);

// Writes the blob atomically (temp file + rename), creating DIR if needed.
// Throws CicError on I/O failure — an explicitly requested cache that cannot
// be written is an operator error worth surfacing.
void store_cached_golden(const std::string& dir, std::string_view key,
                         std::string_view blob);

}  // namespace cicmon::fault
