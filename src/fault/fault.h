// Fault models and injection sites (§3.4, §6.3).
//
// The paper's error model is bit flips in program code; *where* the flip
// happens determines whether the monitor can see it (§3.2's location
// argument). Four sites are modelled, ordered by how far down the fetch
// path they strike:
//
//   kMemoryText     — the stored binary is corrupted before execution
//                     (attacker rewrites code in memory / soft error in DRAM)
//   kFetchBus       — a word is corrupted crossing the memory→processor bus
//   kFetchBusPaired — the same mask corrupts two consecutive fetches: the
//                     even-weight, same-bit-lane pattern that aliases under
//                     a plain XOR checksum (§6.3's blind spot)
//   kICacheLine     — a resident I-cache line flips (SRAM soft error)
//   kPostIdLatch    — the instruction word is corrupted downstream of the
//                     hash point (the latched copy feeding the rest of the
//                     pipeline); the paper concedes these escape the monitor
//
// The first four strike *before* the hash point, so the CIC must detect
// them (modulo hash aliasing for the paired site); the last strikes after
// and must escape (possibly caught by the baseline's decode traps instead).
#pragma once

#include <cstdint>
#include <string_view>

namespace cicmon::fault {

enum class FaultSite : std::uint8_t {
  kMemoryText,
  kFetchBus,
  kFetchBusPaired,
  kICacheLine,
  kPostIdLatch,
};

std::string_view fault_site_name(FaultSite site);

// One injection: XOR `xor_mask` into one instruction word at the given
// site. kMemoryText strikes the stored word as the program starts (after
// the loader computed the expected hashes — the paper's post-checkpoint
// attack window); kFetchBus and kPostIdLatch fire at dynamic instruction
// `trigger_index`; kICacheLine flips popcount(xor_mask) random resident
// cache bits when execution reaches `trigger_index`.
struct FaultSpec {
  FaultSite site = FaultSite::kMemoryText;
  std::uint32_t xor_mask = 1;
  std::uint64_t trigger_index = 0;   // dynamic instruction count
  std::uint32_t target_address = 0;  // text word address (kMemoryText)
};

}  // namespace cicmon::fault
