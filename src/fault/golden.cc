#include "fault/golden.h"

#include <algorithm>
#include <utility>

#include "support/error.h"

namespace cicmon::fault {

CheckpointedGolden::CheckpointedGolden(const cpu::CpuConfig& config,
                                       const casm_::Image& image,
                                       const cpu::LoadedImage& loaded,
                                       std::uint64_t stride) {
  support::check(!config.recovery.enabled,
                 "checkpointed golden runs do not support recovery mode");
  const bool auto_stride = stride == 0;
  stride_ = auto_stride ? kAutoInitialStride : stride;

  cpu::Cpu cpu(config, image, &loaded);
  snapshots_.emplace_back();
  cpu.save_snapshot(&snapshots_.back());  // snapshot 0: pre-execution state

  std::uint64_t next_due = stride_;
  std::optional<cpu::RunResult> done;
  while (!done.has_value()) {
    done = cpu.step();
    if (done.has_value()) break;
    if (cpu.instructions_retired() < next_due) continue;
    if (auto_stride && snapshots_.size() >= kAutoMaxSnapshots) {
      // Budget reached: double the stride and thin to the surviving grid
      // (every other snapshot, starting at 0), exactly what recording at the
      // doubled stride from the start would have kept.
      stride_ *= 2;
      std::vector<cpu::Snapshot> kept;
      kept.reserve(snapshots_.size() / 2 + 1);
      for (std::size_t i = 0; i < snapshots_.size(); i += 2) {
        kept.push_back(std::move(snapshots_[i]));
      }
      snapshots_ = std::move(kept);
      next_due = snapshots_.back().instructions + stride_;
      if (cpu.instructions_retired() < next_due) continue;
    }
    snapshots_.emplace_back();
    cpu.save_snapshot(&snapshots_.back());
    next_due += stride_;
  }
  result_ = *done;
  support::check(result_.reason == cpu::ExitReason::kExit,
                 "campaign golden run did not exit cleanly");
}

CheckpointedGolden::CheckpointedGolden(std::vector<cpu::Snapshot> snapshots,
                                       cpu::RunResult result, std::uint64_t stride)
    : snapshots_(std::move(snapshots)), result_(std::move(result)), stride_(stride) {
  support::check(result_.reason == cpu::ExitReason::kExit,
                 "campaign golden run did not exit cleanly");
  support::check(!snapshots_.empty() && snapshots_.front().instructions == 0 &&
                     snapshots_.front().bus_transfers == 0,
                 "golden snapshot schedule does not start at the pre-execution state");
  for (std::size_t i = 1; i < snapshots_.size(); ++i) {
    support::check(snapshots_[i - 1].instructions < snapshots_[i].instructions &&
                       snapshots_[i - 1].bus_transfers <= snapshots_[i].bus_transfers,
                   "golden snapshot schedule is not ascending");
  }
  support::check(stride_ > 0, "golden snapshot schedule has no stride");
}

const cpu::Snapshot& CheckpointedGolden::nearest_by_instructions(std::uint64_t n) const {
  auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), n,
      [](std::uint64_t v, const cpu::Snapshot& s) { return v < s.instructions; });
  return *std::prev(it);  // snapshot 0 has instructions == 0 <= any n
}

const cpu::Snapshot& CheckpointedGolden::nearest_by_transfers(std::uint64_t n) const {
  auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), n,
      [](std::uint64_t v, const cpu::Snapshot& s) { return v < s.bus_transfers; });
  return *std::prev(it);
}

}  // namespace cicmon::fault
