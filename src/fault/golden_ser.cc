#include "fault/golden_ser.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/error.h"
#include "support/wire.h"

namespace cicmon::fault {
namespace {

// --- Little-endian primitives ----------------------------------------------

void put_u8(std::string* out, std::uint8_t v) { out->push_back(static_cast<char>(v)); }

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_bytes(std::string* out, const void* data, std::size_t size) {
  put_u64(out, size);
  out->append(static_cast<const char*>(data), size);
}

// Bounds-checked reader. Every violation throws: the caller treats a bad
// blob as "decline and derive locally", so loud failure is the contract.
class Cursor {
 public:
  explicit Cursor(std::string_view blob) : blob_(blob) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(blob_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(blob_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(blob_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string_view bytes() {
    const std::uint64_t size = u64();
    need(size);
    const std::string_view out = blob_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  // Guards count-prefixed loops: a hostile count must not drive a
  // multi-gigabyte reserve before the bytes fail to materialize.
  void need_per_item(std::uint64_t count, std::size_t min_item_bytes) {
    support::check(count <= (blob_.size() - pos_) / min_item_bytes,
                   "golden blob: item count exceeds remaining bytes");
  }

  bool exhausted() const { return pos_ == blob_.size(); }

 private:
  void need(std::uint64_t n) {
    support::check(n <= blob_.size() - pos_, "golden blob truncated");
  }

  std::string_view blob_;
  std::size_t pos_ = 0;
};

// --- Page maps --------------------------------------------------------------

bool page_is_zero(const mem::Memory::Page& page) {
  return std::all_of(page.begin(), page.end(), [](std::uint8_t b) { return b == 0; });
}

// Ascending key order keeps encoding deterministic across unordered_map
// iteration orders. `elide_zero` is true only for the image base.
void put_pages(std::string* out, const mem::Memory::PageMap& pages, bool elide_zero) {
  std::vector<const std::pair<const std::uint32_t, mem::Memory::Page>*> sorted;
  sorted.reserve(pages.size());
  for (const auto& entry : pages) {
    if (elide_zero && page_is_zero(entry.second)) continue;
    sorted.push_back(&entry);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  put_u64(out, sorted.size());
  for (const auto* entry : sorted) {
    put_u32(out, entry->first);
    put_bytes(out, entry->second.data(), entry->second.size());
  }
}

mem::Memory::PageMap get_pages(Cursor* in) {
  const std::uint64_t count = in->u64();
  in->need_per_item(count, 12);  // key + length prefix per page, minimum
  mem::Memory::PageMap pages;
  pages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t key = in->u32();
    const std::string_view data = in->bytes();
    support::check(data.size() == mem::Memory::kPageSize, "golden blob: bad page size");
    support::check(pages.find(key) == pages.end(), "golden blob: duplicate page");
    pages.emplace(key, mem::Memory::Page(data.begin(), data.end()));
  }
  return pages;
}

// --- Nested state ------------------------------------------------------------

void put_iht_stats(std::string* out, const cic::IhtStats& s) {
  put_u64(out, s.lookups);
  put_u64(out, s.hits);
  put_u64(out, s.misses);
  put_u64(out, s.mismatches);
}

cic::IhtStats get_iht_stats(Cursor* in) {
  cic::IhtStats s;
  s.lookups = in->u64();
  s.hits = in->u64();
  s.misses = in->u64();
  s.mismatches = in->u64();
  return s;
}

void put_os_stats(std::string* out, const os::OsMonitorStats& s) {
  put_u64(out, s.miss_exceptions);
  put_u64(out, s.mismatch_exceptions);
  put_u64(out, s.refills);
  put_u64(out, s.records_loaded);
  put_u64(out, s.fht_probes);
  put_u64(out, s.cycles_charged);
}

os::OsMonitorStats get_os_stats(Cursor* in) {
  os::OsMonitorStats s;
  s.miss_exceptions = in->u64();
  s.mismatch_exceptions = in->u64();
  s.refills = in->u64();
  s.records_loaded = in->u64();
  s.fht_probes = in->u64();
  s.cycles_charged = in->u64();
  return s;
}

void put_result(std::string* out, const cpu::RunResult& r) {
  put_u8(out, static_cast<std::uint8_t>(r.reason));
  put_u32(out, r.exit_code);
  put_u8(out, static_cast<std::uint8_t>(r.monitor_cause));
  put_u64(out, r.instructions);
  put_u64(out, r.cycles);
  put_u64(out, r.monitor_cycles);
  put_u64(out, r.recoveries);
  put_u64(out, r.branch_bubbles);
  put_u64(out, r.load_use_stalls);
  put_u64(out, r.muldiv_stalls);
  put_u64(out, r.icache_stall_cycles);
  put_iht_stats(out, r.iht);
  put_os_stats(out, r.os);
  put_bytes(out, r.console.data(), r.console.size());
  put_u32(out, r.check_observed);
  put_u32(out, r.check_expected);
}

cpu::RunResult get_result(Cursor* in) {
  cpu::RunResult r;
  const std::uint8_t reason = in->u8();
  support::check(reason <= static_cast<std::uint8_t>(cpu::ExitReason::kWatchdog),
                 "golden blob: bad exit reason");
  r.reason = static_cast<cpu::ExitReason>(reason);
  r.exit_code = in->u32();
  const std::uint8_t cause = in->u8();
  support::check(cause <= static_cast<std::uint8_t>(os::TerminationCause::kNotInFht),
                 "golden blob: bad termination cause");
  r.monitor_cause = static_cast<os::TerminationCause>(cause);
  r.instructions = in->u64();
  r.cycles = in->u64();
  r.monitor_cycles = in->u64();
  r.recoveries = in->u64();
  r.branch_bubbles = in->u64();
  r.load_use_stalls = in->u64();
  r.muldiv_stalls = in->u64();
  r.icache_stall_cycles = in->u64();
  r.iht = get_iht_stats(in);
  r.os = get_os_stats(in);
  const std::string_view console = in->bytes();
  r.console.assign(console.data(), console.size());
  r.check_observed = in->u32();
  r.check_expected = in->u32();
  return r;
}

void put_checker(std::string* out, const cic::CheckerState& c) {
  put_u64(out, c.iht.entries.size());
  for (const cic::IhtEntry& e : c.iht.entries) {
    put_u32(out, e.start);
    put_u32(out, e.end);
    put_u32(out, e.hash);
    put_u8(out, e.valid ? 1 : 0);
    put_u64(out, e.last_use);
    put_u64(out, e.fill_order);
  }
  put_iht_stats(out, c.iht.stats);
  put_u64(out, c.iht.use_clock);
  put_u64(out, c.iht.fill_clock);
  put_u64(out, c.iht.rng.s0);
  put_u64(out, c.iht.rng.s1);
  put_u32(out, c.last_lookup.start);
  put_u32(out, c.last_lookup.end);
  put_u32(out, c.last_lookup.hash);
}

cic::CheckerState get_checker(Cursor* in) {
  cic::CheckerState c;
  const std::uint64_t entries = in->u64();
  in->need_per_item(entries, 29);
  c.iht.entries.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    cic::IhtEntry e;
    e.start = in->u32();
    e.end = in->u32();
    e.hash = in->u32();
    e.valid = in->u8() != 0;
    e.last_use = in->u64();
    e.fill_order = in->u64();
    c.iht.entries.push_back(e);
  }
  c.iht.stats = get_iht_stats(in);
  c.iht.use_clock = in->u64();
  c.iht.fill_clock = in->u64();
  c.iht.rng.s0 = in->u64();
  c.iht.rng.s1 = in->u64();
  c.last_lookup.start = in->u32();
  c.last_lookup.end = in->u32();
  c.last_lookup.hash = in->u32();
  return c;
}

void put_icache(std::string* out, const mem::ICache::State& s) {
  put_u64(out, s.lines.size());
  for (const auto& line : s.lines) {
    put_u8(out, line.valid ? 1 : 0);
    put_u32(out, line.tag);
  }
  put_u64(out, s.words.size());
  for (const std::uint32_t w : s.words) put_u32(out, w);
  put_u64(out, s.hits);
  put_u64(out, s.misses);
}

mem::ICache::State get_icache(Cursor* in) {
  mem::ICache::State s;
  const std::uint64_t lines = in->u64();
  in->need_per_item(lines, 5);
  s.lines.reserve(lines);
  for (std::uint64_t i = 0; i < lines; ++i) {
    mem::ICache::Line line;
    line.valid = in->u8() != 0;
    line.tag = in->u32();
    s.lines.push_back(line);
  }
  const std::uint64_t words = in->u64();
  in->need_per_item(words, 4);
  s.words.reserve(words);
  for (std::uint64_t i = 0; i < words; ++i) s.words.push_back(in->u32());
  s.hits = in->u64();
  s.misses = in->u64();
  return s;
}

void put_snapshot(std::string* out, const cpu::Snapshot& s) {
  put_u64(out, s.instructions);
  put_u64(out, s.bus_transfers);
  for (const std::uint32_t r : s.gpr) put_u32(out, r);
  for (const std::uint32_t r : s.special) put_u32(out, r);
  put_result(out, s.result);
  put_u8(out, s.pc_redirected ? 1 : 0);
  put_u8(out, s.pending_exc.has_value() ? 1 : 0);
  put_u8(out, s.pending_exc.value_or(0));
  put_u64(out, s.hilo_ready_cycle);
  put_u32(out, static_cast<std::uint32_t>(s.prev_load_dst));
  put_u8(out, s.checker.has_value() ? 1 : 0);
  if (s.checker) put_checker(out, *s.checker);
  put_u8(out, s.os_stats.has_value() ? 1 : 0);
  if (s.os_stats) put_os_stats(out, *s.os_stats);
  put_u8(out, s.icache.has_value() ? 1 : 0);
  if (s.icache) put_icache(out, *s.icache);
  put_u64(out, s.pending_stall_cycles);
  put_pages(out, s.memory_delta, /*elide_zero=*/false);
}

cpu::Snapshot get_snapshot(Cursor* in) {
  cpu::Snapshot s;
  s.instructions = in->u64();
  s.bus_transfers = in->u64();
  for (std::uint32_t& r : s.gpr) r = in->u32();
  for (std::uint32_t& r : s.special) r = in->u32();
  s.result = get_result(in);
  s.pc_redirected = in->u8() != 0;
  const bool has_exc = in->u8() != 0;
  const std::uint8_t exc = in->u8();
  if (has_exc) s.pending_exc = exc;
  s.hilo_ready_cycle = in->u64();
  s.prev_load_dst = in->u32();
  if (in->u8() != 0) s.checker = get_checker(in);
  if (in->u8() != 0) s.os_stats = get_os_stats(in);
  if (in->u8() != 0) s.icache = get_icache(in);
  s.pending_stall_cycles = in->u64();
  s.memory_delta = get_pages(in);
  return s;
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string text(16, '0');
  for (int i = 15; i >= 0; --i) {
    text[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return text;
}

}  // namespace

std::string golden_key(const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string canonical;
  for (const auto& [name, value] : fields) {
    canonical += name;
    canonical += '=';
    canonical += value;
    canonical += '\n';
  }
  return hex16(support::wire_checksum(canonical));
}

std::string encode_golden(const GoldenState& state, std::string_view key) {
  support::check(key.size() == kGoldenMagic.size(), "encode_golden: malformed key");
  std::string out;
  out += kGoldenMagic;
  out += key;

  // Image section.
  put_u32(&out, state.entry);
  put_u8(&out, state.fht_was_attached ? 1 : 0);
  put_bytes(&out, state.fht_blob.data(), state.fht_blob.size());
  put_pages(&out, state.image_pages, /*elide_zero=*/true);

  // Golden-run section.
  put_u64(&out, state.stride);
  put_u64(&out, state.snapshots.size());
  for (const cpu::Snapshot& s : state.snapshots) put_snapshot(&out, s);

  // Result section + whole-record checksum.
  put_result(&out, state.result);
  put_u64(&out, support::wire_checksum(out));
  return out;
}

bool golden_blob_valid(std::string_view blob, std::string_view expected_key) {
  const std::size_t header = kGoldenMagic.size() + expected_key.size();
  if (blob.size() < header + 8) return false;
  if (blob.substr(0, kGoldenMagic.size()) != kGoldenMagic) return false;
  if (blob.substr(kGoldenMagic.size(), expected_key.size()) != expected_key) return false;
  const std::string_view body = blob.substr(0, blob.size() - 8);
  Cursor tail(blob.substr(blob.size() - 8));
  return tail.u64() == support::wire_checksum(body);
}

GoldenState decode_golden(std::string_view blob, std::string_view expected_key) {
  support::check(blob.size() >= kGoldenMagic.size() + 16 + 8, "golden blob truncated");
  support::check(blob.substr(0, kGoldenMagic.size()) == kGoldenMagic,
                 "not a " + std::string(kGoldenMagic) + " blob");
  // Checksum before structure: a flipped byte anywhere (including inside the
  // stored checksum) fails here, so parsing below only ever sees intact data.
  {
    const std::string_view body = blob.substr(0, blob.size() - 8);
    Cursor tail(blob.substr(blob.size() - 8));
    support::check(tail.u64() == support::wire_checksum(body),
                   "golden blob checksum mismatch");
  }
  const std::string_view key = blob.substr(kGoldenMagic.size(), 16);
  support::check(key == expected_key,
                 "golden blob key mismatch (expected " + std::string(expected_key) +
                     ", got " + std::string(key) + ")");

  Cursor in(blob.substr(kGoldenMagic.size() + 16, blob.size() - kGoldenMagic.size() - 16 - 8));
  GoldenState state;
  state.entry = in.u32();
  state.fht_was_attached = in.u8() != 0;
  const std::string_view fht = in.bytes();
  state.fht_blob.assign(fht.begin(), fht.end());
  state.image_pages = get_pages(&in);

  state.stride = in.u64();
  const std::uint64_t snapshots = in.u64();
  in.need_per_item(snapshots, 64);
  state.snapshots.reserve(snapshots);
  for (std::uint64_t i = 0; i < snapshots; ++i) state.snapshots.push_back(get_snapshot(&in));

  state.result = get_result(&in);
  support::check(in.exhausted(), "golden blob has trailing bytes");
  return state;
}

std::string golden_cache_path(const std::string& dir, std::string_view key) {
  return dir + "/" + std::string(key) + ".golden";
}

std::string load_cached_golden(const std::string& dir, std::string_view key) {
  std::ifstream file(golden_cache_path(dir, key), std::ios::binary);
  if (!file) return {};
  std::string blob((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  if (!golden_blob_valid(blob, key)) return {};  // truncated or corrupt: ignore
  return blob;
}

void store_cached_golden(const std::string& dir, std::string_view key,
                         std::string_view blob) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  support::check(!ec && std::filesystem::is_directory(dir),
                 "golden cache: cannot create directory '" + dir + "'");
  const std::string path = golden_cache_path(dir, key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    support::check(static_cast<bool>(file), "golden cache: cannot write '" + tmp + "'");
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    support::check(static_cast<bool>(file), "golden cache: short write to '" + tmp + "'");
  }
  support::check(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "golden cache: cannot rename '" + tmp + "' to '" + path + "'");
}

}  // namespace cicmon::fault
