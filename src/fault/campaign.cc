#include "fault/campaign.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "support/bitops.h"
#include "support/error.h"
#include "uop/monitor_pass.h"
#include "uop/uop.h"

namespace cicmon::fault {
namespace {

// XOR mask with exactly `bits` distinct set positions.
std::uint32_t random_mask(support::Rng& rng, unsigned bits) {
  support::check(bits >= 1 && bits <= 32, "fault mask needs 1..32 bits");
  std::uint32_t mask = 0;
  while (support::popcount32(mask) < bits) {
    mask |= 1U << rng.below(32);
  }
  return mask;
}

// Bus tamper that XORs a mask into one transfer, or into two consecutive
// transfers (the same-lane pattern that can alias under plain XOR).
class OneShotBusTamper final : public mem::BusTamper {
 public:
  OneShotBusTamper(std::uint64_t trigger_transfer, std::uint32_t mask, bool paired)
      : trigger_(trigger_transfer), mask_(mask), paired_(paired) {}

  std::uint32_t on_transfer(std::uint32_t, std::uint32_t word) override {
    const std::uint64_t n = count_++;
    const bool hit = n == trigger_ || (paired_ && n == trigger_ + 1);
    return hit ? word ^ mask_ : word;
  }

 private:
  std::uint64_t trigger_;
  std::uint32_t mask_;
  bool paired_;
  std::uint64_t count_ = 0;
};

}  // namespace

std::string_view fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kMemoryText: return "memory-text";
    case FaultSite::kFetchBus: return "fetch-bus";
    case FaultSite::kFetchBusPaired: return "fetch-bus-paired";
    case FaultSite::kICacheLine: return "icache-line";
    case FaultSite::kPostIdLatch: return "post-id-latch";
  }
  return "?";
}

std::string_view outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDetectedMismatch: return "detected-mismatch";
    case Outcome::kDetectedMiss: return "detected-miss";
    case Outcome::kDetectedBaseline: return "detected-baseline";
    case Outcome::kWrongOutput: return "wrong-output";
    case Outcome::kBenign: return "benign";
    case Outcome::kHang: return "hang";
  }
  return "?";
}

void CampaignSummary::add(Outcome outcome) {
  ++trials;
  switch (outcome) {
    case Outcome::kDetectedMismatch: ++detected_mismatch; break;
    case Outcome::kDetectedMiss: ++detected_miss; break;
    case Outcome::kDetectedBaseline: ++detected_baseline; break;
    case Outcome::kWrongOutput: ++wrong_output; break;
    case Outcome::kBenign: ++benign; break;
    case Outcome::kHang: ++hang; break;
  }
}

double CampaignSummary::detection_rate_effective() const {
  const std::uint64_t effective = trials - benign;
  return effective == 0 ? 1.0 : static_cast<double>(detected()) / static_cast<double>(effective);
}

double CampaignSummary::detection_rate_total() const {
  return trials == 0 ? 0.0 : static_cast<double>(detected()) / static_cast<double>(trials);
}

CampaignRunner::CampaignRunner(const casm_::Image& image, const cpu::CpuConfig& config,
                               const CheckpointConfig& checkpoints)
    : image_(image), config_(config), checkpoints_(checkpoints) {
  // Recovery mode keeps in-run block checkpoints that snapshots do not
  // cover; such campaigns fall back to full re-execution.
  if (config_.recovery.enabled) checkpoints_.enabled = false;

  // Load once, share forever: every trial's CPU reads this frozen image
  // through copy-on-write pages instead of re-running the loader (and, when
  // monitored, its whole-text hash computation).
  loaded_ = cpu::preload_image(config_, image_);

  cpu::RunResult result;
  if (checkpoints_.enabled) {
    golden_ = std::make_unique<CheckpointedGolden>(config_, image_, loaded_,
                                                   checkpoints_.stride);
    result = golden_->result();
  } else {
    cpu::Cpu golden(config_, image_, &loaded_);
    result = golden.run();
    support::check(result.reason == cpu::ExitReason::kExit,
                   "campaign golden run did not exit cleanly");
  }
  golden_instructions_ = result.instructions;
  golden_console_ = result.console;
  golden_exit_code_ = result.exit_code;
  golden_result_ = std::move(result);
}

CampaignRunner::CampaignRunner(const casm_::Image& image, const cpu::CpuConfig& config,
                               const CheckpointConfig& checkpoints, const GoldenState& state)
    : image_(image), config_(config), checkpoints_(checkpoints) {
  if (config_.recovery.enabled) checkpoints_.enabled = false;

  // Rebuild the LoadedImage from the shipped parts. The uop spec is the one
  // piece not shipped: build_isa_uops + embed_monitoring are pure functions
  // of the configuration, so rebuilding is bit-identical to the original.
  auto spec = std::make_shared<uop::IsaUopSpec>(uop::build_isa_uops());
  if (config_.monitoring) uop::embed_monitoring(spec.get());
  loaded_.spec = std::move(spec);
  loaded_.pages = std::make_shared<mem::Memory::PageMap>(state.image_pages);
  loaded_.fht = cfg::FullHashTable::deserialize(state.fht_blob);
  loaded_.fht_was_attached = state.fht_was_attached;
  loaded_.entry = state.entry;

  if (checkpoints_.enabled) {
    // The rebuild constructor re-validates the schedule and the clean exit.
    golden_ = std::make_unique<CheckpointedGolden>(state.snapshots, state.result,
                                                   state.stride);
  } else {
    support::check(state.result.reason == cpu::ExitReason::kExit,
                   "campaign golden run did not exit cleanly");
  }
  golden_instructions_ = state.result.instructions;
  golden_console_ = state.result.console;
  golden_exit_code_ = state.result.exit_code;
  golden_result_ = state.result;
}

GoldenState CampaignRunner::export_golden() const {
  GoldenState state;
  state.image_pages = *loaded_.pages;
  state.fht_blob = loaded_.fht.serialize();
  state.fht_was_attached = loaded_.fht_was_attached;
  state.entry = loaded_.entry;
  if (golden_) {
    state.snapshots = golden_->snapshots();
    state.stride = golden_->stride();
  }
  state.result = golden_result_;
  return state;
}

const CheckpointedGolden& CampaignRunner::icache_golden() const {
  // I-cache-line trials force the I-cache on; their snapshots must carry its
  // state. When the campaign config already has it on, the main recording
  // serves. Otherwise record a second golden lazily (thread-safe: run_trial
  // races here) — the LoadedImage is cache-independent and is reused.
  if (config_.icache.enabled) return *golden_;
  std::call_once(icache_once_, [this] {
    cpu::CpuConfig config = config_;
    config.icache.enabled = true;
    icache_golden_ =
        std::make_unique<CheckpointedGolden>(config, image_, loaded_, checkpoints_.stride);
  });
  return *icache_golden_;
}

TrialResult CampaignRunner::run_trial(const FaultSpec& spec) const {
  cpu::CpuConfig config = config_;
  // A corrupted loop counter can spin forever; bound each trial well above
  // the golden length so hangs are classified, not waited out.
  config.max_instructions = golden_instructions_ * 4 + 100'000;
  if (spec.site == FaultSite::kICacheLine) config.icache.enabled = true;

  cpu::Cpu cpu(config, image_, &loaded_);

  // Fast-forward: restore the nearest golden snapshot at or before the
  // trigger, in the trigger's own unit — bus tampers count bus transfers,
  // post-ID and I-cache triggers count retired instructions. The suffix then
  // executes exactly as a from-zero run would (byte-identity enforced by
  // tests); memory-text trials rewrite the text before the run, so their
  // start state is snapshot 0 — which a fresh COW-backed CPU already is.
  const cpu::Snapshot* snapshot = nullptr;
  if (checkpoints_.enabled) {
    switch (spec.site) {
      case FaultSite::kMemoryText:
        break;
      case FaultSite::kFetchBus:
      case FaultSite::kFetchBusPaired:
        snapshot = &golden_->nearest_by_transfers(spec.trigger_index);
        break;
      case FaultSite::kPostIdLatch:
        snapshot = &golden_->nearest_by_instructions(spec.trigger_index);
        break;
      case FaultSite::kICacheLine:
        snapshot = &icache_golden().nearest_by_instructions(spec.trigger_index);
        break;
    }
    if (snapshot != nullptr && snapshot->instructions == 0) snapshot = nullptr;
    if (snapshot != nullptr) {
      cpu.restore_snapshot(*snapshot);
      restores_.fetch_add(1, std::memory_order_relaxed);
      skipped_instructions_.fetch_add(snapshot->instructions, std::memory_order_relaxed);
      static const obs::CounterId k_restores = obs::counter("campaign.snapshot_restores");
      static const obs::CounterId k_skipped = obs::counter("campaign.skipped_instructions");
      obs::bump(k_restores);
      obs::bump(k_skipped, snapshot->instructions);
    }
  }

  // The one-shot tamper counts transfers from when it is attached; a restored
  // trial attaches it mid-stream, so its trigger is relative to the
  // snapshot's recorded transfer count. The post-ID trigger compares against
  // the global retired-instruction count, which restore re-establishes.
  const std::uint64_t transfers_done = snapshot != nullptr ? snapshot->bus_transfers : 0;
  OneShotBusTamper tamper(spec.trigger_index - transfers_done, spec.xor_mask,
                          spec.site == FaultSite::kFetchBusPaired);
  switch (spec.site) {
    case FaultSite::kMemoryText: {
      // The loader has already computed/loaded the expected hashes from the
      // clean binary (the OS checkpoint); the attack strikes afterwards.
      const std::uint32_t word = cpu.memory().read32(spec.target_address);
      cpu.memory().write32(spec.target_address, word ^ spec.xor_mask);
      break;
    }
    case FaultSite::kFetchBus:
    case FaultSite::kFetchBusPaired:
      cpu.fetch_path().set_bus_tamper(&tamper);
      break;
    case FaultSite::kPostIdLatch:
      cpu.set_post_id_fault({spec.trigger_index, spec.xor_mask});
      break;
    case FaultSite::kICacheLine:
      break;  // injected mid-run below
  }

  std::optional<cpu::RunResult> result;
  if (spec.site == FaultSite::kICacheLine) {
    // Mid-run injection needs instruction-granular stepping, so this site
    // walks the interpreter from the restored snapshot (or from zero with
    // checkpoints off) until the trigger fires, then hands the rest of the
    // run to the configured engine. Every other site's fault is armed before
    // the run, so the whole trial executes through cpu.run() — the
    // threaded-vs-switch A/B campaigns rely on trials actually exercising
    // the engine under test.
    support::Rng icache_rng(spec.trigger_index * 0x9E3779B97F4A7C15ULL + spec.xor_mask);
    while (!result.has_value() && cpu.instructions_retired() < spec.trigger_index) {
      result = cpu.step();
    }
    if (!result.has_value()) {
      mem::ICache* icache = cpu.fetch_path().icache();
      if (icache != nullptr) {
        for (unsigned flip = 0; flip < support::popcount32(spec.xor_mask); ++flip) {
          icache->flip_random_resident_bit(icache_rng);
        }
      }
    }
  }
  if (!result.has_value()) result = cpu.run();

  static const obs::CounterId k_trials = obs::counter("campaign.trials");
  static const obs::CounterId k_cow_pages = obs::counter("campaign.cow_pages_copied");
  obs::bump(k_trials);
  obs::bump(k_cow_pages, cpu.memory().cow_pages_copied());
  cpu.publish_metrics();

  TrialResult out;
  out.spec = spec;
  out.exit_reason = result->reason;
  switch (result->reason) {
    case cpu::ExitReason::kMonitorTerminated:
      out.outcome = (result->monitor_cause == os::TerminationCause::kNotInFht)
                        ? Outcome::kDetectedMiss
                        : Outcome::kDetectedMismatch;
      break;
    case cpu::ExitReason::kIllegalInstruction:
    case cpu::ExitReason::kWildPc:
      out.outcome = Outcome::kDetectedBaseline;
      break;
    case cpu::ExitReason::kSelfCheckFailed:
      out.outcome = Outcome::kWrongOutput;
      break;
    case cpu::ExitReason::kWatchdog:
      out.outcome = Outcome::kHang;
      break;
    case cpu::ExitReason::kExit:
      out.outcome =
          (result->console == golden_console_ && result->exit_code == golden_exit_code_)
              ? Outcome::kBenign
              : Outcome::kWrongOutput;
      break;
  }
  return out;
}

exp::SweepSpec CampaignRunner::sweep(FaultSite site, unsigned bits, unsigned trials,
                                     std::uint64_t seed) const {
  // Each trial owns an RNG stream derived from (seed, trial index), so the
  // fault it injects — and therefore the whole summary — depends only on the
  // campaign seed, never on thread count, shard count, or scheduling order.
  const std::uint32_t text_words = static_cast<std::uint32_t>(image_.text.size());
  exp::SweepSpec spec;
  spec.sweep = "campaign";
  spec.params = {{"site", std::string(fault_site_name(site))},
                 {"bits", std::to_string(bits)},
                 {"trials", std::to_string(trials)},
                 {"seed", std::to_string(seed)}};
  spec.cells = trials;
  spec.cell_key = [](std::size_t trial) { return "trial/" + std::to_string(trial); };
  spec.run_cell = [this, site, bits, seed, text_words](std::size_t trial) {
    support::Rng rng(support::derive_stream_seed(seed, trial));
    FaultSpec fault;
    fault.site = site;
    fault.xor_mask = random_mask(rng, bits);
    fault.trigger_index = rng.below(golden_instructions_);
    if (site == FaultSite::kMemoryText) {
      fault.target_address =
          image_.text_base + 4 * static_cast<std::uint32_t>(rng.below(text_words));
    }
    exp::CellResult result;
    result.u64 = {static_cast<std::uint64_t>(run_trial(fault).outcome)};
    return result;
  };
  return spec;
}

CampaignSummary CampaignRunner::summary_from_cells(const std::vector<exp::CellResult>& cells) {
  CampaignSummary summary;
  for (const exp::CellResult& cell : cells) {
    support::check(cell.u64.size() == 1 && cell.u64[0] <= static_cast<std::uint64_t>(Outcome::kHang),
                   "campaign cell does not carry an outcome code");
    summary.add(static_cast<Outcome>(cell.u64[0]));
  }
  return summary;
}

CampaignSummary CampaignRunner::run_random(FaultSite site, unsigned bits, unsigned trials,
                                           std::uint64_t seed, unsigned jobs) {
  return summary_from_cells(exp::run_all(sweep(site, bits, trials, seed), jobs));
}

}  // namespace cicmon::fault
