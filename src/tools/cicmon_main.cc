// Unified experiment driver.
//
// One entry point for CI and users over the parallel experiment engine:
//
//   cicmon table1   [--scale S] [--jobs N]
//   cicmon fig6     [--scale S] [--jobs N] [--entries 1,8,16,32]
//   cicmon bench    [--scale S] [--jobs N] [--json PATH]
//   cicmon campaign [--workload W] [--site NAME] [--bits B] [--trials N]
//                   [--seed X] [--scale S] [--jobs N] [--monitor on|off]
//
// Every subcommand honours the engine's determinism contract: all simulated
// results (tables, miss rates, campaign summaries) are identical at any
// --jobs value; only the echoed job count and host wall-clock lines of
// `bench` and `campaign` vary. CICMON_JOBS is the environment fallback;
// 0/unset resolves to hardware concurrency, 1 is the serial path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "sim/experiment.h"
#include "support/error.h"
#include "support/parallel.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace {

using namespace cicmon;

struct Options {
  double scale = 1.0;
  unsigned jobs = 0;  // 0 = resolve CICMON_JOBS / hardware concurrency
  std::string workload = "dijkstra";
  std::string site = "fetch-bus";
  unsigned bits = 1;
  unsigned trials = 1000;
  std::uint64_t seed = 2026;
  bool monitor = true;
  std::vector<unsigned> entries{1, 8, 16, 32};
  std::string json_path;  // bench: also write machine-readable results here
};

[[noreturn]] void usage(int code) {
  std::fputs(
      "usage: cicmon <command> [options]\n"
      "\n"
      "commands:\n"
      "  table1      Table 1: cycle-count overhead (baseline vs CIC8/CIC16)\n"
      "  fig6        Figure 6: IHT miss rate vs table size\n"
      "  bench       simulator throughput over all workloads\n"
      "  campaign    random fault-injection campaign\n"
      "\n"
      "options:\n"
      "  --scale S        workload scale factor (default 1.0)\n"
      "  --jobs N         worker threads; 0 = CICMON_JOBS env or hardware\n"
      "                   concurrency, 1 = serial (default 0)\n"
      "  --entries A,B,.. IHT sizes for fig6 (default 1,8,16,32)\n"
      "  --workload W     campaign workload (default dijkstra)\n"
      "  --site NAME      fault site: memory-text, fetch-bus, fetch-bus-paired,\n"
      "                   icache-line, post-id-latch (default fetch-bus)\n"
      "  --bits B         flipped bits per fault (default 1)\n"
      "  --trials N       campaign trials (default 1000)\n"
      "  --seed X         campaign seed (default 2026)\n"
      "  --monitor on|off campaign machine has the CIC (default on)\n"
      "  --json PATH      bench: also write results as JSON to PATH\n",
      code == 0 ? stdout : stderr);
  std::exit(code);
}

std::vector<unsigned> parse_entry_list(const std::string& list) {
  std::vector<unsigned> entries;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = std::min(list.find(',', begin), list.size());
    const int value = std::atoi(list.substr(begin, comma - begin).c_str());
    if (value <= 0) usage(2);
    entries.push_back(static_cast<unsigned>(value));
    begin = comma + 1;
  }
  return entries;
}

unsigned parse_count(const char* text, long lo, long hi) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < lo || value > hi) usage(2);
  return static_cast<unsigned>(value);
}

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 2; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (flag == "--scale") {
      options.scale = std::atof(value());
      if (options.scale <= 0.0) usage(2);
    } else if (flag == "--jobs") {
      char* end = nullptr;
      const long jobs = std::strtol(value(), &end, 10);
      // 0 is valid (resolve CICMON_JOBS / hardware); the engine caps the
      // rest at support::kMaxJobs.
      if (end == nullptr || *end != '\0' || jobs < 0) usage(2);
      options.jobs = static_cast<unsigned>(std::min<long>(jobs, support::kMaxJobs));
    } else if (flag == "--entries") {
      options.entries = parse_entry_list(value());
    } else if (flag == "--workload") {
      options.workload = value();
    } else if (flag == "--site") {
      options.site = value();
    } else if (flag == "--bits") {
      options.bits = parse_count(value(), 1, 32);
    } else if (flag == "--trials") {
      options.trials = parse_count(value(), 1, 100'000'000);
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--monitor") {
      const std::string_view v = value();
      if (v != "on" && v != "off") usage(2);
      options.monitor = v == "on";
    } else if (flag == "--json") {
      options.json_path = value();
      if (options.json_path.empty()) usage(2);
    } else if (flag == "--help" || flag == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "cicmon: unknown option '%s'\n", argv[i]);
      usage(2);
    }
  }
  return options;
}

fault::FaultSite parse_site(const std::string& name) {
  for (const fault::FaultSite site :
       {fault::FaultSite::kMemoryText, fault::FaultSite::kFetchBus,
        fault::FaultSite::kFetchBusPaired, fault::FaultSite::kICacheLine,
        fault::FaultSite::kPostIdLatch}) {
    if (fault_site_name(site) == name) return site;
  }
  std::fprintf(stderr, "cicmon: unknown fault site '%s'\n", name.c_str());
  usage(2);
}

int cmd_table1(const Options& options) {
  const auto rows = sim::table1_overheads(options.scale, options.jobs);
  support::Table table(
      {"benchmark", "cycles (no CIC)", "CIC8", "CIC16", "ovh CIC8", "ovh CIC16"});
  double sum8 = 0, sum16 = 0;
  for (const sim::Table1Row& row : rows) {
    table.add_row({row.workload, support::Table::fmt_u64(row.cycles_baseline),
                   support::Table::fmt_u64(row.cycles_cic8),
                   support::Table::fmt_u64(row.cycles_cic16),
                   support::Table::fmt_pct(row.overhead_cic8),
                   support::Table::fmt_pct(row.overhead_cic16)});
    sum8 += row.overhead_cic8;
    sum16 += row.overhead_cic16;
  }
  const double n = static_cast<double>(rows.size());
  table.add_row({"average", "-", "-", "-", support::Table::fmt_pct(sum8 / n),
                 support::Table::fmt_pct(sum16 / n)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_fig6(const Options& options) {
  const auto rows = sim::fig6_miss_rates(options.entries, options.scale, options.jobs);
  std::vector<std::string> headers{"benchmark"};
  for (const unsigned entries : options.entries) headers.push_back(std::to_string(entries));
  support::Table table(headers);
  for (const sim::Fig6Row& row : rows) {
    std::vector<std::string> cells{row.workload};
    for (const double rate : row.miss_rates) cells.push_back(support::Table::fmt_pct(rate));
    table.add_row(cells);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

// Writes the bench cells as a stable machine-readable JSON document (the
// `cicmon-bench-v1` schema consumed by CI's regression gate and committed as
// the BENCH_*.json trajectory artifacts). Simulated columns (instructions,
// cycles) are deterministic; host_ms/mips are wall-clock measurements.
template <typename Cell>
int write_bench_json(const std::string& path, const Options& options,
                     std::span<const workloads::WorkloadInfo> infos,
                     const std::vector<Cell>& cells, double total_minstr, double total_ms) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cicmon: cannot write JSON to '%s'\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"cicmon-bench-v1\",\n");
  std::fprintf(out, "  \"scale\": %g,\n", options.scale);
  std::fprintf(out, "  \"jobs\": %u,\n", support::resolve_jobs(options.jobs));
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const double minstr = static_cast<double>(cell.result.instructions) / 1e6;
    std::fprintf(out,
                 "    {\"benchmark\": \"%s\", \"machine\": \"%s\", \"instructions\": %llu, "
                 "\"cycles\": %llu, \"host_ms\": %.3f, \"mips\": %.3f}%s\n",
                 std::string(infos[i / 2].name).c_str(), i % 2 == 0 ? "baseline" : "cic16",
                 static_cast<unsigned long long>(cell.result.instructions),
                 static_cast<unsigned long long>(cell.result.cycles), cell.wall_ms,
                 minstr / (cell.wall_ms / 1000.0), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"total\": {\"minstr\": %.3f, \"wall_ms\": %.1f, \"aggregate_mips\": %.3f}\n",
               total_minstr, total_ms, total_minstr / (total_ms / 1000.0));
  std::fprintf(out, "}\n");
  std::fclose(out);
  return 0;
}

int cmd_bench(const Options& options) {
  // Simulator throughput: run every workload baseline and monitored, one
  // engine cell per (workload, machine) pair. The per-cell wall times are
  // host measurements — the *simulated* columns stay deterministic.
  struct Cell {
    cpu::RunResult result;
    double wall_ms = 0.0;
  };
  const auto infos = workloads::all_workloads();
  std::vector<Cell> cells(infos.size() * 2);
  const auto start = std::chrono::steady_clock::now();
  support::parallel_for(cells.size(), options.jobs, [&](std::size_t i) {
    cpu::CpuConfig config;
    if (i % 2 == 1) {
      config.monitoring = true;
      config.cic.iht_entries = 16;
    }
    const auto cell_start = std::chrono::steady_clock::now();
    cells[i].result = sim::run_workload(infos[i / 2].name, config, options.scale);
    cells[i].wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - cell_start)
                           .count();
  });
  const double total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  support::Table table({"benchmark", "machine", "instructions", "cycles", "host ms", "MIPS"});
  double total_minstr = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const double minstr = static_cast<double>(cell.result.instructions) / 1e6;
    total_minstr += minstr;
    table.add_row({std::string(infos[i / 2].name), i % 2 == 0 ? "baseline" : "cic16",
                   support::Table::fmt_u64(cell.result.instructions),
                   support::Table::fmt_u64(cell.result.cycles),
                   support::Table::fmt(cell.wall_ms, 1),
                   support::Table::fmt(minstr / (cell.wall_ms / 1000.0), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ntotal: %.1f Minstr in %.0f ms wall (%u jobs) = %.1f MIPS aggregate\n",
              total_minstr, total_ms, support::resolve_jobs(options.jobs),
              total_minstr / (total_ms / 1000.0));
  if (!options.json_path.empty()) {
    return write_bench_json(options.json_path, options, infos, cells, total_minstr, total_ms);
  }
  return 0;
}

int cmd_campaign(const Options& options) {
  // Validate the site before paying for the golden run.
  const fault::FaultSite site = parse_site(options.site);
  const casm_::Image image =
      workloads::build_workload(options.workload, {options.scale, 42});
  cpu::CpuConfig config;
  config.monitoring = options.monitor;
  config.cic.iht_entries = 16;
  fault::CampaignRunner runner(image, config);

  std::printf("workload %s (scale %.2f): %llu golden instructions\n", options.workload.c_str(),
              options.scale, static_cast<unsigned long long>(runner.golden_instructions()));
  std::printf("site %s, %u-bit faults, %u trials, seed %llu, monitor %s, %u jobs\n\n",
              options.site.c_str(), options.bits, options.trials,
              static_cast<unsigned long long>(options.seed), options.monitor ? "on" : "off",
              support::resolve_jobs(options.jobs));

  const auto start = std::chrono::steady_clock::now();
  const fault::CampaignSummary summary =
      runner.run_random(site, options.bits, options.trials, options.seed, options.jobs);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  support::Table table({"outcome", "count"});
  table.add_row({"detected-mismatch", support::Table::fmt_u64(summary.detected_mismatch)});
  table.add_row({"detected-miss", support::Table::fmt_u64(summary.detected_miss)});
  table.add_row({"detected-baseline", support::Table::fmt_u64(summary.detected_baseline)});
  table.add_row({"wrong-output", support::Table::fmt_u64(summary.wrong_output)});
  table.add_row({"benign", support::Table::fmt_u64(summary.benign)});
  table.add_row({"hang", support::Table::fmt_u64(summary.hang)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ndetection: %s effective, %s of all trials; %.0f ms wall (%.1f trials/s)\n",
              support::Table::fmt_pct(summary.detection_rate_effective()).c_str(),
              support::Table::fmt_pct(summary.detection_rate_total()).c_str(), ms,
              static_cast<double>(summary.trials) / (ms / 1000.0));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string_view command = argv[1];
  try {
    const Options options = parse_options(argc, argv);
    if (command == "table1") return cmd_table1(options);
    if (command == "fig6") return cmd_fig6(options);
    if (command == "bench") return cmd_bench(options);
    if (command == "campaign") return cmd_campaign(options);
    if (command == "help" || command == "--help" || command == "-h") usage(0);
    std::fprintf(stderr, "cicmon: unknown command '%s'\n", argv[1]);
    usage(2);
  } catch (const cicmon::support::CicError& error) {
    std::fprintf(stderr, "cicmon: %s\n", error.what());
    return 1;
  }
}
