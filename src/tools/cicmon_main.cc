// Unified experiment driver.
//
// One entry point for CI and users over the sweep engine (exp/sweep.h):
//
//   cicmon table1    [--scale S] [--jobs N]
//   cicmon fig6      [--scale S] [--jobs N] [--entries 1,8,16,32]
//   cicmon blocks    [--scale S] [--jobs N] [--capacities 1,8,16,32]
//   cicmon bench     [--scale S] [--jobs N] [--json PATH]
//   cicmon campaign  [--workload W] [--site NAME] [--bits B] [--trials N]
//                    [--seed X] [--scale S] [--jobs N] [--monitor on|off]
//   cicmon dispatch  <table1|fig6|blocks|bench|campaign> [sweep options]
//                    [--workers K] [--shards N] [--transport TMPL]
//                    [--retries R] [--timeout SEC] [--dir DIR]
//                    [--exec-per-shard] [--dry-run]
//   cicmon worker    <table1|fig6|blocks|bench|campaign> [sweep options]
//   cicmon merge     SHARD.json|DIR [SHARD.json|DIR ...]
//   cicmon workloads
//
// Every sweep subcommand also takes `--shard I/N [--out PATH] [--force]`,
// which runs only the cells owned by shard I of N and persists them as a
// `cicmon-shard-v1` partial artifact instead of printing the table;
// `cicmon merge` aggregates the partials and renders output byte-identical
// to the unsharded run. A sharded invocation whose artifact already exists
// and matches is skipped (resume); corrupt or mismatched artifacts are
// re-run. Determinism contract: everything a sweep subcommand prints to
// stdout is identical at any --jobs value, shard count, and process
// placement — host wall-clock measurements go to stderr (except `bench`,
// whose stdout is a throughput report by nature). CICMON_JOBS is the
// environment fallback; 0/unset resolves to hardware concurrency, 1 is the
// serial path.
//
// `cicmon dispatch <sweep> ...` is the scale-out driver: it over-decomposes
// the sweep into shard work items and schedules them through src/dist/ onto
// persistent worker sessions (`cicmon worker <sweep> ...` processes serving
// many shards over a framed pipe protocol — the default, including for
// stdio-forwarding --transport templates like ssh) or exec-per-shard
// subprocesses (`cicmon <sweep> --shard I/N --out ...`, the fallback for
// templates with per-item placeholders and --exec-per-shard), streams the
// merge incrementally as artifacts land, then renders — stdout is
// byte-identical to the direct invocation. For campaigns the orchestrator
// ships its own derived golden state down each session's pipe
// (fault/golden_ser.h), so workers skip their golden runs entirely;
// --golden-cache DIR additionally persists the encoded golden state on disk,
// keyed by a canonical hash of the campaign parameters, so repeated
// dispatches (and exec-per-shard workers sharing the directory) skip the
// derivation too. `cicmon worker` is the session server side and is not
// meant to be invoked by hand (its stdout speaks the wire protocol).
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cpu/cpu.h"
#include "dist/orchestrator.h"
#include "dist/session.h"
#include "dist/transport.h"
#include "exp/sweep.h"
#include "fault/campaign.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "support/error.h"
#include "support/json.h"
#include "support/parallel.h"
#include "support/strings.h"
#include "support/subprocess.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace {

using namespace cicmon;

// Telemetry destinations, set at parse time like the --engine process-global:
// every subcommand takes --trace/--metrics/--metrics-out, and main() emits
// the summary after the command returns. Telemetry never writes to stdout —
// the determinism contract covers it.
std::string g_command;       // argv[1], recorded in trace/metrics headers
std::string g_metrics_mode;  // "" (off), "json", or "table"
std::string g_metrics_out;   // metrics sidecar path; "" = stderr

struct Options {
  double scale = 1.0;
  unsigned jobs = 0;  // 0 = resolve CICMON_JOBS / hardware concurrency
  std::string workload = "dijkstra";
  std::string site = "fetch-bus";
  unsigned bits = 1;
  unsigned trials = 1000;
  std::uint64_t seed = 2026;
  bool monitor = true;
  std::vector<unsigned> entries{1, 8, 16, 32};
  std::vector<unsigned> capacities{1, 8, 16, 32};
  std::string json_path;   // bench: also write machine-readable results here
  std::string shard_text;  // "--shard I/N"; empty = run every cell + render
  std::string out_path;    // shard artifact path; defaulted when empty
  bool force = false;      // rerun a shard even when its artifact matches
  std::vector<std::string> inputs;  // positional arguments (merge artifacts)
  // dispatch-only knobs (see dist::DispatchConfig for the semantics).
  unsigned workers = 0;        // concurrent worker processes; 0 = nproc
  unsigned dispatch_shards = 0;  // work items; 0 = auto (4x workers)
  unsigned retries = 2;        // extra worker spawns per shard after a failure
  double timeout = 300.0;      // per-shard wall-clock limit in seconds; 0 = none
  std::string transport;       // {cmd}/{shard}/{out} template; empty = local
  std::string dir;             // shard artifact directory; defaulted when empty
  bool quiet = false;          // suppress dispatch progress/ETA on stderr
  bool dry_run = false;        // print the dispatch plan, launch nothing
  bool exec_per_shard = false; // force the exec-per-shard fallback path
  // Engine selection, applied to the process-wide CpuConfig defaults at parse
  // time (the sweep builders construct configs inside per-cell lambdas).
  // Empty = build-type default; kept as text so dispatch can forward the
  // explicit choice to its workers.
  std::string engine_flag;
  std::string translate_cache_flag;
  std::string chain_flag;
  // bench: repeat each cell's identical run N times, keep the fastest wall
  // clock (simulated results unchanged). Replaces the ad-hoc shell loops the
  // BENCH_*.json methodology used to script.
  unsigned best_of = 1;
  // Campaign checkpointing (fault::CheckpointConfig): a pure execution
  // strategy like the engine choice — byte-identical results on or off, at
  // any stride — so it is forwarded to dispatch workers but never becomes a
  // sweep parameter.
  bool checkpoints = true;
  std::uint64_t checkpoint_stride = 0;  // 0 = automatic schedule
  // Campaign golden-state reuse (fault/golden_ser.h): a content-addressed
  // on-disk cache, and whether dispatch offers its golden state to session
  // workers over the wire. Both are execution strategies — byte-identical
  // results on or off, enforced by tests.
  std::string golden_cache;  // --golden-cache DIR; empty = no disk cache
  bool ship_golden = true;   // --ship-golden on|off (dispatch only)
};

[[noreturn]] void usage(int code) {
  std::fputs(
      "usage: cicmon <command> [options]\n"
      "\n"
      "commands:\n"
      "  table1      Table 1: cycle-count overhead (baseline vs CIC8/CIC16)\n"
      "  fig6        Figure 6: IHT miss rate vs table size\n"
      "  blocks      Section 6.1: executed-block counts and LRU locality\n"
      "  bench       simulator throughput over all workloads\n"
      "  campaign    random fault-injection campaign\n"
      "  dispatch    scale a sweep out over worker processes or hosts\n"
      "  worker      persistent dispatch worker (serves shards over stdin/stdout;\n"
      "              spawned by dispatch, not meant for interactive use)\n"
      "  merge       aggregate cicmon-shard-v1 artifacts into the full output\n"
      "  report      render a cicmon-trace-v1 event log (--trace output) as\n"
      "              per-phase/per-worker breakdown tables\n"
      "  workloads   list the benchmark kernels\n"
      "\n"
      "telemetry (every command; see docs/telemetry.md):\n"
      "  --trace FILE     append cicmon-trace-v1 JSONL events (spans, instants,\n"
      "                   final counter snapshot) to FILE; never touches stdout\n"
      "  --metrics json|table\n"
      "                   after the command, emit a cicmon-metrics-v1 summary of\n"
      "                   every counter/timer to stderr\n"
      "  --metrics-out PATH\n"
      "                   write the --metrics summary to PATH instead of stderr\n"
      "\n"
      "options:\n"
      "  --scale S        workload scale factor (default 1.0)\n"
      "  --jobs N         worker threads; 0 = CICMON_JOBS env or hardware\n"
      "                   concurrency, 1 = serial (default 0)\n"
      "  --entries A,B,.. IHT sizes for fig6 (default 1,8,16,32)\n"
      "  --capacities A,B,.. LRU table sizes for blocks (default 1,8,16,32)\n"
      "  --workload W     campaign workload (default dijkstra)\n"
      "  --site NAME      fault site: memory-text, fetch-bus, fetch-bus-paired,\n"
      "                   icache-line, post-id-latch (default fetch-bus)\n"
      "  --bits B         flipped bits per fault (default 1)\n"
      "  --trials N       campaign trials (default 1000)\n"
      "  --seed X         campaign seed (default 2026)\n"
      "  --monitor on|off campaign machine has the CIC (default on)\n"
      "  --checkpoints on|off\n"
      "                   campaign: fast-forward each trial by restoring the\n"
      "                   nearest golden-run snapshot before its trigger instead\n"
      "                   of re-simulating the clean prefix; never changes a\n"
      "                   trial outcome (default on; off exists for A/B checks\n"
      "                   and is forced under recovery mode)\n"
      "  --checkpoint-stride N\n"
      "                   campaign snapshot spacing in retired instructions;\n"
      "                   0 = automatic bounded-memory schedule (default 0)\n"
      "  --golden-cache DIR\n"
      "                   campaign: cache the derived golden state (image,\n"
      "                   snapshots, golden result) on disk, keyed by a\n"
      "                   canonical hash of the campaign parameters; later\n"
      "                   runs with the same parameters load it instead of\n"
      "                   re-deriving; never changes any output\n"
      "  --json PATH      bench: also write results as JSON to PATH;\n"
      "                   campaign (direct or dispatched): write a campaign\n"
      "                   section with the trials/sec trajectory metric (the\n"
      "                   dispatched form adds the fleet telemetry) instead\n"
      "  --engine E       execution engine: 'threaded' (fused superinstruction\n"
      "                   handlers behind a tamper-safe translation cache) or\n"
      "                   'switch' (the per-uop predecode interpreter); both\n"
      "                   produce byte-identical results (default: threaded in\n"
      "                   Release builds, switch in Debug builds)\n"
      "  --translate-cache on|off\n"
      "                   cache translated blocks (threaded engine only;\n"
      "                   default on; off retranslates every block — exists\n"
      "                   for A/B byte-identity checks)\n"
      "  --chain on|off   chain translated blocks along verified direct edges\n"
      "                   so the threaded engine flows block-to-block without\n"
      "                   a dispatch-loop round trip (default on; links are\n"
      "                   severed on any invalidation; off exists for A/B\n"
      "                   byte-identity checks)\n"
      "  --best-of N      bench: repeat each cell's identical run N times and\n"
      "                   keep the fastest wall clock (default 1; simulated\n"
      "                   instruction/cycle payloads are unaffected)\n"
      "\n"
      "sharding (table1/fig6/blocks/bench/campaign):\n"
      "  --shard I/N      run only the cells owned by shard I of N and write\n"
      "                   a cicmon-shard-v1 partial artifact, not the table\n"
      "  --out PATH       artifact path (default cicmon-<sweep>-shard-IofN.json);\n"
      "                   a matching existing artifact is reused (resume)\n"
      "  --force          rerun the shard even when its artifact matches\n"
      "\n"
      "`cicmon merge s1.json s2.json ...` needs every shard of one run and\n"
      "prints output byte-identical to the unsharded invocation. A directory\n"
      "argument is scanned for *.shard.json artifacts.\n"
      "\n"
      "dispatch (cicmon dispatch <table1|fig6|blocks|bench|campaign> ...):\n"
      "  --workers K      concurrent worker processes (default: hardware\n"
      "                   concurrency)\n"
      "  --shards N       work items; over-decomposed for load balancing\n"
      "                   (default 4x workers, capped at the cell count)\n"
      "  --transport T    launch workers through a shell template with\n"
      "                   {cmd}/{shard}/{out} placeholders, e.g.\n"
      "                   'ssh build-02 cd /repo && {cmd}' (default: local\n"
      "                   subprocesses); a template using only {cmd} forwards\n"
      "                   stdio and still gets persistent sessions + golden\n"
      "                   shipping; {shard}/{out} force exec-per-shard\n"
      "  --retries R      extra attempts per shard after a failure (default 2)\n"
      "  --timeout SEC    per-shard wall-clock limit; 0 = none (default 300)\n"
      "  --dir DIR        shard artifact directory (default cicmon-dispatch);\n"
      "                   valid artifacts already there are reused (resume)\n"
      "  --quiet          suppress the live progress/ETA lines on stderr\n"
      "  --exec-per-shard spawn one process per shard instead of persistent\n"
      "                   worker sessions (sessions are the default whenever\n"
      "                   the transport forwards stdio)\n"
      "  --ship-golden on|off\n"
      "                   campaign: offer the orchestrator's derived golden\n"
      "                   state to each session worker over the wire so the\n"
      "                   worker skips its own golden run (default on; off\n"
      "                   exists for A/B byte-identity checks)\n"
      "  --dry-run        print the planned shard grid, worker commands, and\n"
      "                   session mode, then exit without launching anything\n"
      "  --jobs under dispatch sets each worker's thread count\n"
      "                   (default: hardware concurrency / workers)\n"
      "\n"
      "dispatch stdout is byte-identical to the direct invocation of the\n"
      "same sweep, at any worker/shard count, in either session mode, and\n"
      "across worker kills and retries. Incremental merge progress streams\n"
      "to stderr as shards land.\n",
      code == 0 ? stdout : stderr);
  std::exit(code);
}

// Comma-separated list of positive integers, parsed strictly (no trailing
// garbage). `what` names the source in the CicError: a CLI flag here, an
// artifact parameter on the merge path — where malformed input means a
// corrupt or hand-edited artifact and must never surface as the usage
// screen.
std::vector<unsigned> parse_unsigned_list(std::string_view text, const char* what) {
  std::vector<unsigned> values;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = std::min(text.find(',', begin), text.size());
    std::uint64_t value = 0;
    support::check(support::parse_u64(text.substr(begin, comma - begin), &value) &&
                       value > 0 && value <= 0xFFFF'FFFFULL,
                   std::string(what) + " is malformed: '" + std::string(text) + "'");
    values.push_back(static_cast<unsigned>(value));
    begin = comma + 1;
  }
  return values;
}

// CLI-flag wrapper: malformed input is a usage error, not a CicError.
std::vector<unsigned> parse_entry_list(const std::string& list) {
  try {
    return parse_unsigned_list(list, "option value");
  } catch (const support::CicError&) {
    usage(2);
  }
}

unsigned parse_count(const char* text, long lo, long hi) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < lo || value > hi) usage(2);
  return static_cast<unsigned>(value);
}

// "; did you mean 'X'?" when `given` is plausibly a typo of a candidate —
// the same one-edit-per-three-characters budget workloads::closest_workload
// uses — otherwise an empty string. Shared by the unknown-subcommand and
// unknown-flag paths.
std::string did_you_mean(std::string_view given, std::span<const std::string_view> candidates) {
  const std::string lowered = support::to_lower(given);
  std::string_view best;
  std::size_t best_distance = std::string::npos;
  for (const std::string_view candidate : candidates) {
    const std::size_t distance = support::edit_distance(lowered, candidate);
    if (distance < best_distance) {
      best = candidate;
      best_distance = distance;
    }
  }
  const std::size_t budget = std::max<std::size_t>(2, lowered.size() / 3);
  if (best_distance > budget) return "";
  return "; did you mean '" + std::string(best) + "'?";
}

constexpr std::array<std::string_view, 11> kCommands = {
    "table1", "fig6",  "blocks",    "bench", "campaign", "worker",
    "dispatch", "merge", "report", "workloads", "help"};
constexpr std::array<std::string_view, 35> kFlags = {
    "--scale", "--jobs",    "--entries", "--capacities", "--workload", "--site",
    "--bits",  "--trials",  "--seed",    "--monitor",    "--json",     "--shard",
    "--out",   "--force",   "--workers", "--shards",     "--transport", "--retries",
    "--timeout", "--dir",   "--quiet",   "--dry-run",    "--exec-per-shard", "--help",
    "--engine", "--translate-cache", "--chain", "--best-of", "--checkpoints",
    "--checkpoint-stride", "--golden-cache", "--ship-golden", "--trace", "--metrics",
    "--metrics-out"};

// `first` is the index of the first flag: 2 for `cicmon <cmd> ...`, 3 for
// `cicmon dispatch <cmd> ...`.
Options parse_options(int argc, char** argv, bool allow_positional, int first = 2) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (flag == "--scale") {
      options.scale = std::atof(value());
      if (options.scale <= 0.0) usage(2);
    } else if (flag == "--jobs") {
      char* end = nullptr;
      const long jobs = std::strtol(value(), &end, 10);
      // 0 is valid (resolve CICMON_JOBS / hardware); the engine caps the
      // rest at support::kMaxJobs.
      if (end == nullptr || *end != '\0' || jobs < 0) usage(2);
      options.jobs = static_cast<unsigned>(std::min<long>(jobs, support::kMaxJobs));
    } else if (flag == "--entries") {
      options.entries = parse_entry_list(value());
    } else if (flag == "--capacities") {
      options.capacities = parse_entry_list(value());
    } else if (flag == "--workload") {
      options.workload = value();
    } else if (flag == "--site") {
      options.site = value();
    } else if (flag == "--bits") {
      options.bits = parse_count(value(), 1, 32);
    } else if (flag == "--trials") {
      options.trials = parse_count(value(), 1, 100'000'000);
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--monitor") {
      const std::string_view v = value();
      if (v != "on" && v != "off") usage(2);
      options.monitor = v == "on";
    } else if (flag == "--json") {
      options.json_path = value();
      if (options.json_path.empty()) usage(2);
    } else if (flag == "--shard") {
      options.shard_text = value();
      exp::parse_shard(options.shard_text);  // reject malformed I/N up front
    } else if (flag == "--out") {
      options.out_path = value();
      if (options.out_path.empty()) usage(2);
    } else if (flag == "--force") {
      options.force = true;
    } else if (flag == "--workers") {
      options.workers = parse_count(value(), 1, 100'000);
    } else if (flag == "--shards") {
      options.dispatch_shards = parse_count(value(), 1, 10'000'000);
    } else if (flag == "--retries") {
      options.retries = parse_count(value(), 0, 1000);
    } else if (flag == "--timeout") {
      const char* text = value();
      char* end = nullptr;
      options.timeout = std::strtod(text, &end);
      // Finite only: converting an inf/nan duration to the clock's integer
      // representation is UB (and 'no timeout' is spelled 0, not inf).
      if (end == text || *end != '\0' || !std::isfinite(options.timeout) ||
          options.timeout < 0) {
        usage(2);
      }
    } else if (flag == "--transport") {
      options.transport = value();
      if (options.transport.empty()) usage(2);
    } else if (flag == "--dir") {
      options.dir = value();
      if (options.dir.empty()) usage(2);
    } else if (flag == "--quiet") {
      options.quiet = true;
    } else if (flag == "--dry-run") {
      options.dry_run = true;
    } else if (flag == "--exec-per-shard") {
      options.exec_per_shard = true;
    } else if (flag == "--engine") {
      const std::string_view v = value();
      if (v == "switch") {
        cpu::set_default_engine(cpu::Engine::kSwitch);
      } else if (v == "threaded") {
        cpu::set_default_engine(cpu::Engine::kThreaded);
      } else {
        usage(2);
      }
      options.engine_flag = v;
    } else if (flag == "--translate-cache") {
      const std::string_view v = value();
      if (v != "on" && v != "off") usage(2);
      cpu::set_default_translate_cache(v == "on");
      options.translate_cache_flag = v;
    } else if (flag == "--chain") {
      const std::string_view v = value();
      if (v != "on" && v != "off") usage(2);
      cpu::set_default_chain(v == "on");
      options.chain_flag = v;
    } else if (flag == "--best-of") {
      options.best_of = parse_count(value(), 1, 1000);
    } else if (flag == "--checkpoints") {
      const std::string_view v = value();
      if (v != "on" && v != "off") usage(2);
      options.checkpoints = v == "on";
    } else if (flag == "--checkpoint-stride") {
      const char* text = value();
      char* end = nullptr;
      const unsigned long long stride = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') usage(2);
      options.checkpoint_stride = stride;
    } else if (flag == "--golden-cache") {
      options.golden_cache = value();
      if (options.golden_cache.empty()) usage(2);
    } else if (flag == "--ship-golden") {
      const std::string_view v = value();
      if (v != "on" && v != "off") usage(2);
      options.ship_golden = v == "on";
    } else if (flag == "--trace") {
      const char* path = value();
      if (path[0] == '\0') usage(2);
      // Opened at parse time, like --engine: the header event lands before
      // any span the command emits.
      if (!obs::open_trace(path, g_command)) {
        std::fprintf(stderr, "cicmon: cannot open trace file '%s'\n", path);
        std::exit(1);
      }
    } else if (flag == "--metrics") {
      const std::string_view v = value();
      if (v != "json" && v != "table") usage(2);
      g_metrics_mode = v;
    } else if (flag == "--metrics-out") {
      g_metrics_out = value();
      if (g_metrics_out.empty()) usage(2);
    } else if (flag == "--help" || flag == "-h") {
      usage(0);
    } else if (allow_positional && (flag.empty() || flag.front() != '-')) {
      options.inputs.emplace_back(flag);  // merge artifact paths
    } else {
      const bool is_option = !flag.empty() && flag.front() == '-';
      std::fprintf(stderr, "cicmon: unknown %s '%s'%s\n", is_option ? "option" : "argument",
                   argv[i], is_option ? did_you_mean(flag, kFlags).c_str() : "");
      usage(2);
    }
  }
  return options;
}

fault::FaultSite parse_site(const std::string& name) {
  for (const fault::FaultSite site :
       {fault::FaultSite::kMemoryText, fault::FaultSite::kFetchBus,
        fault::FaultSite::kFetchBusPaired, fault::FaultSite::kICacheLine,
        fault::FaultSite::kPostIdLatch}) {
    if (fault_site_name(site) == name) return site;
  }
  std::fprintf(stderr, "cicmon: unknown fault site '%s'\n", name.c_str());
  usage(2);
}

// --- Rendering: cells -> stdout -----------------------------------------
//
// Both the direct path (run all cells, render) and `cicmon merge` (load
// partial artifacts, merge, render) funnel through these functions, and the
// rendering depends only on (params, cells) — that shared funnel is what
// makes the merged output byte-identical to the unsharded run.

void render_table1(const std::vector<exp::CellResult>& cells) {
  const auto rows = sim::table1_rows(cells);
  support::Table table(
      {"benchmark", "cycles (no CIC)", "CIC8", "CIC16", "ovh CIC8", "ovh CIC16"});
  double sum8 = 0, sum16 = 0;
  for (const sim::Table1Row& row : rows) {
    table.add_row({row.workload, support::Table::fmt_u64(row.cycles_baseline),
                   support::Table::fmt_u64(row.cycles_cic8),
                   support::Table::fmt_u64(row.cycles_cic16),
                   support::Table::fmt_pct(row.overhead_cic8),
                   support::Table::fmt_pct(row.overhead_cic16)});
    sum8 += row.overhead_cic8;
    sum16 += row.overhead_cic16;
  }
  const double n = static_cast<double>(rows.size());
  table.add_row({"average", "-", "-", "-", support::Table::fmt_pct(sum8 / n),
                 support::Table::fmt_pct(sum16 / n)});
  std::fputs(table.render().c_str(), stdout);
}

void render_fig6(const exp::SweepParams& params, const std::vector<exp::CellResult>& cells) {
  const std::vector<unsigned> entries =
      parse_unsigned_list(exp::param(params, "entries"), "artifact parameter 'entries'");
  const auto rows = sim::fig6_rows(cells, entries.size());
  std::vector<std::string> headers{"benchmark"};
  for (const unsigned entry : entries) headers.push_back(std::to_string(entry));
  support::Table table(headers);
  for (const sim::Fig6Row& row : rows) {
    std::vector<std::string> line{row.workload};
    for (const double rate : row.miss_rates) line.push_back(support::Table::fmt_pct(rate));
    table.add_row(line);
  }
  std::fputs(table.render().c_str(), stdout);
}

void render_blocks(const exp::SweepParams& params, const std::vector<exp::CellResult>& cells) {
  const std::vector<unsigned> capacities =
      parse_unsigned_list(exp::param(params, "capacities"), "artifact parameter 'capacities'");
  const auto rows = sim::blocks_rows(cells, capacities);
  std::vector<std::string> headers{"benchmark", "static regions", "executed keys",
                                   "lookups", "instr/block"};
  for (const unsigned capacity : capacities) {
    headers.push_back("LRU hit@" + std::to_string(capacity));
  }
  support::Table table(headers);
  for (const sim::BlockStats& stats : rows) {
    std::vector<std::string> line{stats.workload, support::Table::fmt_u64(stats.static_regions),
                                  support::Table::fmt_u64(stats.dynamic_keys),
                                  support::Table::fmt_u64(stats.lookups),
                                  support::Table::fmt(stats.mean_block_instructions, 1)};
    for (const double rate : stats.lru_hit_rate) line.push_back(support::Table::fmt_pct(rate));
    table.add_row(line);
  }
  std::fputs(table.render().c_str(), stdout);
}

void render_campaign(const exp::SweepParams& params,
                     const std::vector<exp::CellResult>& cells) {
  const fault::CampaignSummary summary = fault::CampaignRunner::summary_from_cells(cells);
  const std::string_view golden_text = exp::param(params, "golden_instructions");
  std::uint64_t golden = 0;
  support::check(support::parse_u64(golden_text, &golden),
                 "artifact parameter 'golden_instructions' is malformed: '" +
                     std::string(golden_text) + "'");
  std::printf("workload %s (scale %.2f): %llu golden instructions\n",
              std::string(exp::param(params, "workload")).c_str(),
              exp::parse_f64(exp::param(params, "scale")),
              static_cast<unsigned long long>(golden));
  std::printf("site %s, %s-bit faults, %s trials, seed %s, monitor %s\n\n",
              std::string(exp::param(params, "site")).c_str(),
              std::string(exp::param(params, "bits")).c_str(),
              std::string(exp::param(params, "trials")).c_str(),
              std::string(exp::param(params, "seed")).c_str(),
              std::string(exp::param(params, "monitor")).c_str());

  support::Table table({"outcome", "count"});
  table.add_row({"detected-mismatch", support::Table::fmt_u64(summary.detected_mismatch)});
  table.add_row({"detected-miss", support::Table::fmt_u64(summary.detected_miss)});
  table.add_row({"detected-baseline", support::Table::fmt_u64(summary.detected_baseline)});
  table.add_row({"wrong-output", support::Table::fmt_u64(summary.wrong_output)});
  table.add_row({"benign", support::Table::fmt_u64(summary.benign)});
  table.add_row({"hang", support::Table::fmt_u64(summary.hang)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ndetection: %s effective, %s of all trials\n",
              support::Table::fmt_pct(summary.detection_rate_effective()).c_str(),
              support::Table::fmt_pct(summary.detection_rate_total()).c_str());
}

int write_json_file(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cicmon: cannot write JSON to '%s'\n", path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return 0;
}

// Writes the bench cells as a stable machine-readable JSON document (the
// `cicmon-bench-v1` schema consumed by CI's regression gate and committed as
// the BENCH_*.json trajectory artifacts). Simulated columns (instructions,
// cycles) are deterministic; host_ms/mips are wall-clock measurements.
int write_bench_json(const std::string& path, double scale, unsigned jobs, unsigned best_of,
                     const std::vector<exp::CellResult>& cells, double total_minstr,
                     double total_ms) {
  const auto infos = workloads::all_workloads();
  support::JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("cicmon-bench-v1");
  json.key("scale");
  json.value(scale);
  json.key("jobs");
  json.value_u64(jobs);
  json.key("best_of");
  json.value_u64(best_of);
  json.key("engine");
  json.value(std::string(cpu::engine_name(cpu::default_engine())));
  json.key("chain");
  json.value(cpu::default_chain() ? "on" : "off");
  json.key("workloads");
  json.begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double minstr = static_cast<double>(cells[i].u64.at(0)) / 1e6;
    const double wall_ms = cells[i].f64.at(0);
    json.begin_object();
    json.key("benchmark");
    json.value(infos[i / 2].name);
    json.key("machine");
    json.value(i % 2 == 0 ? "baseline" : "cic16");
    json.key("instructions");
    json.value_u64(cells[i].u64.at(0));
    json.key("cycles");
    json.value_u64(cells[i].u64.at(1));
    json.key("host_ms");
    json.value_fixed(wall_ms, 3);
    json.key("mips");
    json.value_fixed(minstr / (wall_ms / 1000.0), 3);
    json.end_object();
  }
  json.end_array();
  json.key("total");
  json.begin_object();
  json.key("minstr");
  json.value_fixed(total_minstr, 3);
  json.key("wall_ms");
  json.value_fixed(total_ms, 1);
  json.key("aggregate_mips");
  json.value_fixed(total_minstr / (total_ms / 1000.0), 3);
  json.end_object();
  json.end_object();
  return write_json_file(path, json.take());
}

// `total_ms` < 0 means "no whole-run measurement" (the merge path) and is
// replaced by the sum of the per-cell wall clocks.
int render_bench(const exp::SweepParams& params, const std::vector<exp::CellResult>& cells,
                 double total_ms, unsigned jobs, const std::string& json_path) {
  const auto infos = workloads::all_workloads();
  support::check(cells.size() == infos.size() * 2,
                 "bench cell vector does not match the workload grid");
  for (const exp::CellResult& cell : cells) {
    support::check(cell.u64.size() == 2 && cell.f64.size() == 1,
                   "bench cell payload has the wrong shape");
  }
  // The merge path has no whole-run wall clock and no meaningful job count —
  // the timings were produced by other processes at their own --jobs.
  const bool merged = total_ms < 0;
  // best_of comes from the sweep params so the merge path reports what the
  // shards actually ran; artifacts from before the parameter existed ran
  // exactly once.
  unsigned best_of = 1;
  for (const auto& [key, value] : params) {
    if (key == "best_of") best_of = static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
  }
  // Best-of keeps each cell's fastest attempt, but the whole-run clock paid
  // for every attempt — rebuild the total from the per-cell bests (exactly
  // what the merge path does) so the aggregate reflects the kept timings.
  if (merged || best_of > 1) {
    total_ms = 0;
    for (const exp::CellResult& cell : cells) total_ms += cell.f64.at(0);
  }
  support::Table table({"benchmark", "machine", "instructions", "cycles", "host ms", "MIPS"});
  double total_minstr = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double minstr = static_cast<double>(cells[i].u64.at(0)) / 1e6;
    const double wall_ms = cells[i].f64.at(0);
    total_minstr += minstr;
    table.add_row({std::string(infos[i / 2].name), i % 2 == 0 ? "baseline" : "cic16",
                   support::Table::fmt_u64(cells[i].u64.at(0)),
                   support::Table::fmt_u64(cells[i].u64.at(1)),
                   support::Table::fmt(wall_ms, 1),
                   support::Table::fmt(minstr / (wall_ms / 1000.0), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  if (merged) {
    std::printf("\ntotal: %.1f Minstr in %.0f ms wall (merged shards) = %.1f MIPS aggregate\n",
                total_minstr, total_ms, total_minstr / (total_ms / 1000.0));
  } else {
    std::printf("\ntotal: %.1f Minstr in %.0f ms wall (%u jobs) = %.1f MIPS aggregate\n",
                total_minstr, total_ms, jobs, total_minstr / (total_ms / 1000.0));
  }
  if (!json_path.empty()) {
    // jobs 0 in the JSON marks a merged document for the same reason.
    return write_bench_json(json_path, exp::parse_f64(exp::param(params, "scale")),
                            merged ? 0 : jobs, best_of, cells, total_minstr, total_ms);
  }
  return 0;
}

int render_cells(const std::string& sweep, const exp::SweepParams& params,
                 const std::vector<exp::CellResult>& cells, const Options& options,
                 double bench_total_ms) {
  if (sweep == "table1") {
    render_table1(cells);
    return 0;
  }
  if (sweep == "fig6") {
    render_fig6(params, cells);
    return 0;
  }
  if (sweep == "blocks") {
    render_blocks(params, cells);
    return 0;
  }
  if (sweep == "campaign") {
    render_campaign(params, cells);
    return 0;
  }
  if (sweep == "bench") {
    return render_bench(params, cells, bench_total_ms, support::resolve_jobs(options.jobs),
                        options.json_path);
  }
  std::fprintf(stderr, "cicmon: cannot render sweep '%s'\n", sweep.c_str());
  return 1;
}

// --- Sweep subcommand driver --------------------------------------------

bool sharded_mode(const Options& options) {
  return !options.shard_text.empty() || !options.out_path.empty();
}

// Runs a sweep subcommand: sharded mode persists a partial artifact (reusing
// a matching one — resume), the direct path runs every cell and renders.
int run_sweep_command(const exp::SweepSpec& spec, const Options& options) {
  if (sharded_mode(options)) {
    if (!options.json_path.empty()) {
      std::fprintf(stderr,
                   "cicmon: --json cannot be combined with --shard/--out; merge the shard "
                   "artifacts with 'cicmon merge ... --json PATH' instead\n");
      return 2;
    }
    const exp::Shard shard = options.shard_text.empty()
                                 ? exp::Shard{1, 1}
                                 : exp::parse_shard(options.shard_text);
    const std::string path =
        options.out_path.empty()
            ? "cicmon-" + spec.sweep + "-shard-" + std::to_string(shard.index) + "of" +
                  std::to_string(shard.count) + ".json"
            : options.out_path;
    bool reused = false;
    exp::run_or_load_shard(spec, shard, options.jobs, path, options.force, &reused);
    std::fprintf(stderr, "cicmon: %s shard %u/%u %s '%s'\n", spec.sweep.c_str(), shard.index,
                 shard.count, reused ? "is already complete at" : "written to", path.c_str());
    return 0;
  }
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t run_t_us = obs::trace_now_us();
  const std::vector<exp::CellResult> cells = exp::run_all(spec, options.jobs);
  const double total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  if (obs::trace_enabled()) {
    obs::TraceArgs args;
    args.add("sweep", spec.sweep);
    args.add("cells", static_cast<std::uint64_t>(spec.cells));
    args.add("jobs", static_cast<std::uint64_t>(support::resolve_jobs(options.jobs)));
    obs::trace_span("sweep.run", run_t_us, args);
  }
  obs::Span render_span("sweep.render");
  return render_cells(spec.sweep, spec.params, cells, options, total_ms);
}

// A sweep spec plus whatever live state its run_cell borrows — the campaign
// spec captures its CampaignRunner by reference, so the two travel together.
// For campaigns, golden_key/golden_source record the canonical identity of
// the golden state and where this process got it (derived, disk cache, or a
// blob shipped over the session wire).
struct SweepBundle {
  exp::SweepSpec spec;
  std::unique_ptr<fault::CampaignRunner> keepalive;
  std::string golden_key;     // campaign only; "" otherwise
  std::string golden_source;  // "shipped" / "cached" / "derived"; "" otherwise
};

// The canonical golden-state identity: every parameter the derived golden
// state depends on, and nothing else. Execution strategies (engine,
// translate cache, jobs) are deliberately excluded — they never change the
// golden state, so a cache or shipment produced under one strategy serves
// every other.
std::string campaign_golden_key(const Options& options) {
  return fault::golden_key({
      {"workload", options.workload},
      {"scale", exp::fmt_f64(options.scale)},
      {"site", options.site},
      {"bits", std::to_string(options.bits)},
      {"trials", std::to_string(options.trials)},
      {"seed", std::to_string(options.seed)},
      {"monitor", options.monitor ? "on" : "off"},
      {"checkpoints", options.checkpoints ? "on" : "off"},
      {"checkpoint_stride", std::to_string(options.checkpoint_stride)},
  });
}

// Builds the campaign runner the cheapest honest way available: import a
// blob `shipped` over the session wire, else the --golden-cache entry, else
// derive (golden run) and populate the cache. Every failure short of
// derivation failing is a downgrade, not an error — the artifact checks
// protect the results, so a corrupt blob or cache file just costs the
// derivation it was meant to save.
SweepBundle make_campaign_sweep(const Options& options, const std::string* shipped) {
  // Validate the site and workload before paying for the golden run.
  const fault::FaultSite site = parse_site(options.site);
  try {
    workloads::find_workload(options.workload);
  } catch (const support::CicError& error) {
    std::fprintf(stderr, "cicmon: %s\n", error.what());
    std::fprintf(stderr, "cicmon: run 'cicmon workloads' to see them described\n");
    std::exit(2);
  }
  const casm_::Image image =
      workloads::build_workload(options.workload, {options.scale, 42});
  cpu::CpuConfig config;
  config.monitoring = options.monitor;
  config.cic.iht_entries = 16;
  const fault::CheckpointConfig checkpoints{options.checkpoints, options.checkpoint_stride};
  const std::string key = campaign_golden_key(options);

  // Covers the whole golden acquisition: wire import, cache load, or the
  // golden run itself; the args say which way it went.
  obs::Span golden_span("campaign.golden");
  std::unique_ptr<fault::CampaignRunner> runner;
  std::string source;
  if (shipped != nullptr) {
    try {
      const fault::GoldenState state = fault::decode_golden(*shipped, key);
      runner = std::make_unique<fault::CampaignRunner>(image, config, checkpoints, state);
      source = "shipped";
    } catch (const support::CicError& error) {
      std::fprintf(stderr, "cicmon: shipped golden state rejected (%s); deriving locally\n",
                   error.what());
      runner.reset();
    }
  }
  if (runner == nullptr && !options.golden_cache.empty()) {
    // load_cached_golden already validated magic/key/checksum; decode can
    // still reject structure, and a stale or truncated entry is overwritten
    // below by the fresh derivation.
    const std::string blob = fault::load_cached_golden(options.golden_cache, key);
    if (!blob.empty()) {
      try {
        const fault::GoldenState state = fault::decode_golden(blob, key);
        runner = std::make_unique<fault::CampaignRunner>(image, config, checkpoints, state);
        source = "cached";
      } catch (const support::CicError& error) {
        std::fprintf(stderr, "cicmon: cached golden state rejected (%s); deriving locally\n",
                     error.what());
        runner.reset();
      }
    }
  }
  if (runner == nullptr) {
    runner = std::make_unique<fault::CampaignRunner>(image, config, checkpoints);
    source = "derived";
    if (!options.golden_cache.empty()) {
      fault::store_cached_golden(options.golden_cache, key,
                                 fault::encode_golden(runner->export_golden(), key));
    }
  }

  golden_span.args().add("source", source);
  golden_span.close();

  exp::SweepSpec spec = runner->sweep(site, options.bits, options.trials, options.seed);
  // Parameters the runner cannot know but rendering and artifact matching
  // need: how the machine and image were set up, and the golden-run fact the
  // header reports (deterministic, so merge can reprint it without a run).
  spec.params.emplace_back("workload", options.workload);
  spec.params.emplace_back("scale", exp::fmt_f64(options.scale));
  spec.params.emplace_back("monitor", options.monitor ? "on" : "off");
  spec.params.emplace_back("golden_instructions",
                           std::to_string(runner->golden_instructions()));
  return {std::move(spec), std::move(runner), key, std::move(source)};
}

// The five dispatchable sweeps, by subcommand name. For "campaign" this pays
// for the golden derivation up front (wire blob, disk cache, or golden run)
// — dispatch needs the exact params workers will record to validate their
// artifacts against, and the derived golden state is what it ships.
SweepBundle make_sweep(std::string_view command, const Options& options,
                       const std::string* shipped = nullptr) {
  if (command == "table1") return {sim::table1_sweep(options.scale), nullptr, "", ""};
  if (command == "fig6") return {sim::fig6_sweep(options.entries, options.scale), nullptr, "", ""};
  if (command == "blocks") {
    return {sim::blocks_sweep(options.capacities, options.scale), nullptr, "", ""};
  }
  if (command == "bench") {
    return {sim::bench_sweep(options.scale, options.best_of), nullptr, "", ""};
  }
  return make_campaign_sweep(options, shipped);
}

// Campaign counterpart of write_bench_json: the same cicmon-bench-v1 schema,
// but carrying a "campaign" object instead of the workload grid, so the
// campaign path has its own machine-readable perf trajectory number
// (trials_per_sec — the figure BENCH_PR7.json tracks before/after
// checkpointing). Everything except wall_ms/trials_per_sec is deterministic.
int write_campaign_json(const std::string& path, const Options& options,
                        const fault::CampaignRunner& runner, double wall_ms) {
  support::JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("cicmon-bench-v1");
  json.key("campaign");
  json.begin_object();
  json.key("workload");
  json.value(options.workload);
  json.key("scale");
  json.value(options.scale);
  json.key("site");
  json.value(options.site);
  json.key("bits");
  json.value_u64(options.bits);
  json.key("trials");
  json.value_u64(options.trials);
  json.key("seed");
  json.value_u64(options.seed);
  json.key("monitor");
  json.value(options.monitor ? "on" : "off");
  json.key("engine");
  json.value(std::string(cpu::engine_name(cpu::default_engine())));
  json.key("jobs");
  json.value_u64(support::resolve_jobs(options.jobs));
  json.key("checkpoints");
  json.value(runner.checkpoints_enabled() ? "on" : "off");
  json.key("checkpoint_stride");
  json.value_u64(runner.checkpoint_stride());
  json.key("snapshots");
  json.value_u64(runner.snapshot_count());
  json.key("restores");
  json.value_u64(runner.restores());
  json.key("skipped_instructions");
  json.value_u64(runner.skipped_instructions());
  json.key("golden_instructions");
  json.value_u64(runner.golden_instructions());
  json.key("wall_ms");
  json.value_fixed(wall_ms, 1);
  json.key("trials_per_sec");
  json.value_fixed(static_cast<double>(options.trials) / (wall_ms / 1000.0), 1);
  json.end_object();
  json.end_object();
  return write_json_file(path, json.take());
}

int cmd_campaign(const Options& options) {
  const SweepBundle bundle = make_campaign_sweep(options, nullptr);
  const fault::CampaignRunner& runner = *bundle.keepalive;
  const auto start = std::chrono::steady_clock::now();
  const int code = run_sweep_command(bundle.spec, options);
  // The acceleration report: how much clean-prefix simulation the snapshot
  // restores avoided in this process (a sharded invocation reports its own
  // shard's share).
  if (runner.checkpoints_enabled()) {
    std::fprintf(stderr,
                 "campaign: checkpoints on, stride %llu, %zu snapshot(s); "
                 "%llu restore(s) skipped %llu instructions\n",
                 static_cast<unsigned long long>(runner.checkpoint_stride()),
                 runner.snapshot_count(),
                 static_cast<unsigned long long>(runner.restores()),
                 static_cast<unsigned long long>(runner.skipped_instructions()));
  } else {
    std::fprintf(stderr, "campaign: checkpoints off (full re-execution per trial)\n");
  }
  if (!sharded_mode(options)) {
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    const double trials_per_sec = static_cast<double>(options.trials) / (ms / 1000.0);
    static const obs::TimerId k_trials_per_sec = obs::timer("campaign.trials_per_sec");
    obs::record(k_trials_per_sec, trials_per_sec);
    std::fprintf(stderr, "campaign: %u jobs, %.0f ms wall (%.1f trials/s)\n",
                 support::resolve_jobs(options.jobs), ms, trials_per_sec);
    if (code == 0 && !options.json_path.empty()) {
      return write_campaign_json(options.json_path, options, runner, ms);
    }
  }
  return code;
}

// `cicmon report <trace.jsonl>`: renders a --trace event log as per-phase /
// per-worker breakdown tables (obs/report.h).
int cmd_report(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr, "cicmon: report needs exactly one cicmon-trace-v1 file\n");
    usage(2);
  }
  const std::string& path = options.inputs.front();
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "cicmon: cannot read trace file '%s'\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[65536];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) text.append(buffer, got);
  std::fclose(in);
  std::fputs(obs::render_report(text).c_str(), stdout);
  return 0;
}

// True for names dispatch and the sharded subcommands produce by default:
// "<sweep>-IofN.shard.json" and "cicmon-<sweep>-shard-IofN.json". The merge
// validation rejects anything that slips through a looser match anyway; this
// filter just keeps unrelated JSON (bench output, configs) out of the scan.
bool looks_like_shard_artifact(const std::string& name) {
  return name.ends_with(".shard.json") ||
         (name.starts_with("cicmon-") && name.find("-shard-") != std::string::npos &&
          name.ends_with(".json"));
}

// Merge inputs may be artifact files or directories; a directory contributes
// every shard artifact inside it, in sorted order so the command line stays
// deterministic. A directory with no artifacts is an error — silently merging
// nothing would mask a mistyped path.
std::vector<std::string> expand_merge_inputs(const std::vector<std::string>& inputs) {
  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (!std::filesystem::is_directory(input, ec)) {
      paths.push_back(input);
      continue;
    }
    std::vector<std::string> found;
    for (const auto& entry : std::filesystem::directory_iterator(input, ec)) {
      if (entry.is_regular_file() && looks_like_shard_artifact(entry.path().filename().string())) {
        found.push_back(entry.path().string());
      }
    }
    support::check(!ec, "cannot scan directory '" + input + "'");
    support::check(!found.empty(),
                   "no shard artifacts (*.shard.json) found in directory '" + input + "'");
    std::sort(found.begin(), found.end());
    paths.insert(paths.end(), found.begin(), found.end());
  }
  return paths;
}

int cmd_merge(const Options& options) {
  if (options.inputs.empty()) {
    std::fprintf(stderr, "cicmon: merge needs at least one shard artifact path or directory\n");
    usage(2);
  }
  const std::vector<std::string> inputs = expand_merge_inputs(options.inputs);
  std::vector<exp::ShardArtifact> artifacts;
  artifacts.reserve(inputs.size());
  for (const std::string& path : inputs) {
    artifacts.push_back(exp::load_shard_artifact(path));
  }
  const std::string sweep = artifacts.front().sweep;
  const exp::SweepParams params = artifacts.front().params;
  const std::vector<exp::CellResult> cells = exp::merge_artifacts(std::move(artifacts));
  return render_cells(sweep, params, cells, options, /*bench_total_ms=*/-1.0);
}

// Serializes the sweep-defining options back into worker argv form. The
// workers re-derive the SweepSpec from these flags, and the orchestrator
// validates their artifacts against the parent's spec — so every value must
// survive the round trip exactly (fmt_f64 emits the shortest form that
// parses back to the same double).
std::vector<std::string> worker_sweep_flags(std::string_view command, const Options& options) {
  auto join = [](const std::vector<unsigned>& values) {
    std::string joined;
    for (const unsigned value : values) {
      if (!joined.empty()) joined += ',';
      joined += std::to_string(value);
    }
    return joined;
  };
  std::vector<std::string> flags{"--scale", exp::fmt_f64(options.scale)};
  // Engine selection does not shape the sweep (results are byte-identical
  // either way), but an explicit choice should reach the workers so the whole
  // dispatch runs the engine the user asked for.
  if (!options.engine_flag.empty()) {
    flags.insert(flags.end(), {"--engine", options.engine_flag});
  }
  if (!options.translate_cache_flag.empty()) {
    flags.insert(flags.end(), {"--translate-cache", options.translate_cache_flag});
  }
  if (!options.chain_flag.empty()) {
    flags.insert(flags.end(), {"--chain", options.chain_flag});
  }
  // best_of is a bench sweep parameter: workers must run the same repeat
  // count or their artifacts fail validation against the dispatch params.
  if (command == "bench" && options.best_of != 1) {
    flags.insert(flags.end(), {"--best-of", std::to_string(options.best_of)});
  }
  if (command == "fig6") flags.insert(flags.end(), {"--entries", join(options.entries)});
  if (command == "blocks") flags.insert(flags.end(), {"--capacities", join(options.capacities)});
  if (command == "campaign") {
    flags.insert(flags.end(),
                 {"--workload", options.workload, "--site", options.site, "--bits",
                  std::to_string(options.bits), "--trials", std::to_string(options.trials),
                  "--seed", std::to_string(options.seed), "--monitor",
                  options.monitor ? "on" : "off",
                  // Like --engine: an execution strategy, not a sweep
                  // parameter — forwarded so the workers accelerate (or A/B)
                  // the same way the user asked the orchestrator to.
                  "--checkpoints", options.checkpoints ? "on" : "off",
                  "--checkpoint-stride", std::to_string(options.checkpoint_stride)});
    if (!options.golden_cache.empty()) {
      // Session workers and exec-per-shard workers alike share the disk
      // cache, so even the exec fallback derives the golden state once per
      // directory instead of once per shard.
      flags.insert(flags.end(), {"--golden-cache", options.golden_cache});
    }
  }
  return flags;
}

// Validates argv[2] as a dispatchable sweep for `cicmon <what> <sweep> ...`
// (shared by dispatch and worker, which parse their sweep flags at argv[3]).
std::string_view parse_sweep_subcommand(int argc, char** argv, const char* what) {
  constexpr std::array<std::string_view, 5> kDispatchable = {"table1", "fig6", "blocks", "bench",
                                                             "campaign"};
  if (argc < 3 || argv[2][0] == '-') {
    std::fprintf(stderr, "cicmon: %s needs a sweep subcommand (table1|fig6|blocks|bench|campaign)\n",
                 what);
    usage(2);
  }
  const std::string_view sub = argv[2];
  if (std::find(kDispatchable.begin(), kDispatchable.end(), sub) == kDispatchable.end()) {
    std::fprintf(stderr, "cicmon: cannot %s '%s'%s\n", what, argv[2],
                 did_you_mean(sub, kDispatchable).c_str());
    usage(2);
  }
  return sub;
}

// `cicmon worker <sweep> ...`: the persistent-session server. Sends a light
// hello (sweep name + golden key), then derives the sweep once — from a
// golden blob the orchestrator ships, from the --golden-cache, or the hard
// way — and serves shard assignments over stdin/stdout until the
// orchestrator shuts it down. stdout belongs to the wire protocol, so this
// subcommand never renders anything.
int cmd_worker(int argc, char** argv) {
  const std::string_view sub = parse_sweep_subcommand(argc, argv, "serve");
  const Options options = parse_options(argc, argv, /*allow_positional=*/false, /*first=*/3);
  if (sharded_mode(options) || !options.json_path.empty()) {
    std::fprintf(stderr,
                 "cicmon: worker serves shards over its stdin — --shard/--out/--json do not "
                 "apply (use the plain sweep subcommand for a one-shot shard)\n");
    return 2;
  }
  SweepBundle bundle;  // outlives serve_worker: the campaign spec borrows it
  dist::WorkerSweepSource source;
  source.sweep = std::string(sub);
  if (sub == "campaign") source.golden_key = campaign_golden_key(options);
  source.derive = [&bundle, &options, sub](const std::string* shipped,
                                           std::string* golden_source) {
    bundle = make_sweep(sub, options, shipped);
    if (golden_source != nullptr) *golden_source = bundle.golden_source;
    return bundle.spec;
  };
  return dist::serve_worker(source, options.jobs);
}

// Prints what `cicmon dispatch` *would* launch — the resolved shard grid,
// session mode, and worker command lines — without spawning anything. The
// debugging aid for ssh/cluster --transport templates: the exact /bin/sh
// command per shard is shown after placeholder expansion.
int print_dispatch_plan(const exp::SweepSpec& spec, const dist::WorkerCommand& base,
                        const dist::Transport& transport, const dist::DispatchConfig& config,
                        const std::string& transport_text) {
  const dist::DispatchPlan plan = dist::plan_dispatch(spec, base, transport, config);
  std::printf("dispatch plan: %s (%zu cells) over %u shards, %u workers, %u jobs/worker\n",
              spec.sweep.c_str(), spec.cells, plan.shards, plan.workers, plan.jobs);
  std::string mode = "exec per shard, local transport";
  if (plan.persistent) {
    mode = transport_text.empty()
               ? "persistent worker sessions (local pipes)"
               : "persistent worker sessions (template transport '" + transport_text + "')";
    if (config.golden != nullptr && !config.golden->empty()) {
      mode += ", golden state shipped (" + std::to_string(config.golden->bytes) + " bytes, " +
              std::to_string(config.golden->frames.size()) + " chunk(s))";
    }
  } else if (!transport_text.empty()) {
    mode = "exec per shard, template transport '" + transport_text + "'";
  }
  std::printf("mode: %s\n", mode.c_str());
  std::printf("artifact dir: %s\n", config.artifact_dir.c_str());
  std::printf("retries: %u, timeout: %gs, shutdown grace: %gs\n", config.retries,
              config.timeout_seconds, config.shutdown_grace);
  if (plan.persistent) {
    std::printf("session command (x%u): %s\n", plan.workers,
                support::shell_join(dist::session_worker_argv(base, plan.jobs)).c_str());
  }
  for (unsigned i = 1; i <= plan.shards; ++i) {
    const exp::Shard shard{i, plan.shards};
    const dist::WorkItem item{shard,
                              dist::shard_artifact_path(config.artifact_dir, spec.sweep, shard),
                              0};
    if (plan.persistent) {
      std::printf("shard %u/%u -> %s\n", i, plan.shards, item.artifact_path.c_str());
    } else {
      const std::vector<std::string> argv =
          dist::exec_worker_argv(base, plan.jobs, item, config.force);
      const std::string command =
          transport_text.empty()
              ? support::shell_join(argv)
              : dist::CommandTemplateTransport::expand(transport_text,
                                                       dist::WorkerCommand{argv, {}}, item);
      std::printf("shard %u/%u -> %s\n  %s\n", i, plan.shards, item.artifact_path.c_str(),
                  command.c_str());
    }
  }
  return 0;
}

// Dispatch counterpart of write_campaign_json: the same cicmon-bench-v1
// schema and "campaign" object, but the throughput is the whole dispatch
// (orchestrator wall clock over all trials) and a nested "dispatch" object
// reports the fleet telemetry — including the summed worker-measured shard
// wall clock (the useful work) that an honest dispatch-tax number divides
// by. Everything except the wall-clock figures is deterministic.
int write_dispatch_campaign_json(const std::string& path, const Options& options,
                                 const fault::CampaignRunner& runner,
                                 const dist::DispatchResult& result, double wall_ms) {
  support::JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("cicmon-bench-v1");
  json.key("campaign");
  json.begin_object();
  json.key("workload");
  json.value(options.workload);
  json.key("scale");
  json.value(options.scale);
  json.key("site");
  json.value(options.site);
  json.key("bits");
  json.value_u64(options.bits);
  json.key("trials");
  json.value_u64(options.trials);
  json.key("seed");
  json.value_u64(options.seed);
  json.key("monitor");
  json.value(options.monitor ? "on" : "off");
  json.key("engine");
  json.value(std::string(cpu::engine_name(cpu::default_engine())));
  json.key("checkpoints");
  json.value(runner.checkpoints_enabled() ? "on" : "off");
  json.key("checkpoint_stride");
  json.value_u64(runner.checkpoint_stride());
  json.key("snapshots");
  json.value_u64(runner.snapshot_count());
  json.key("golden_instructions");
  json.value_u64(runner.golden_instructions());
  json.key("dispatch");
  json.begin_object();
  json.key("mode");
  json.value(result.persistent ? "sessions" : "exec");
  json.key("shards");
  json.value_u64(result.shard_count);
  json.key("reused");
  json.value_u64(result.reused);
  json.key("launched");
  json.value_u64(result.launched);
  json.key("retried");
  json.value_u64(result.retried);
  json.key("golden_shipped");
  json.value_u64(result.golden_shipped);
  json.key("golden_cached");
  json.value_u64(result.golden_cached);
  json.key("golden_derived");
  json.value_u64(result.golden_derived);
  json.key("worker_wall_ms");
  json.value_u64(result.worker_wall_ms);
  json.key("busy_ms");
  json.value_u64(result.busy_ms);
  json.key("queue_wait_ms");
  json.value_u64(result.queue_wait_ms);
  json.key("elapsed_ms");
  json.value_u64(result.elapsed_ms);
  json.end_object();
  json.key("wall_ms");
  json.value_fixed(wall_ms, 1);
  json.key("trials_per_sec");
  json.value_fixed(static_cast<double>(options.trials) / (wall_ms / 1000.0), 1);
  json.end_object();
  json.end_object();
  return write_json_file(path, json.take());
}

// `cicmon dispatch <sweep> ...`: scale the sweep out over worker processes
// via src/dist/, then merge and render through the same funnel as the direct
// and `merge` paths — stdout is byte-identical to the direct invocation.
int cmd_dispatch(int argc, char** argv) {
  const std::string_view sub = parse_sweep_subcommand(argc, argv, "dispatch");
  const Options options = parse_options(argc, argv, /*allow_positional=*/false, /*first=*/3);
  if (sharded_mode(options)) {
    std::fprintf(stderr,
                 "cicmon: --shard/--out cannot be combined with dispatch — the orchestrator "
                 "shards for you (use --shards N and --dir DIR)\n");
    return 2;
  }
  if (!options.json_path.empty() && sub != "campaign" && sub != "bench") {
    std::fprintf(stderr, "cicmon: --json applies to dispatched bench and campaign only\n");
    return 2;
  }

  const SweepBundle bundle = make_sweep(sub, options);

  dist::WorkerCommand base;
  base.argv.push_back(support::current_executable(argv[0]));
  base.argv.emplace_back(sub);
  const std::vector<std::string> flags = worker_sweep_flags(sub, options);
  base.argv.insert(base.argv.end(), flags.begin(), flags.end());
  // Persistent sessions are the default; plan_dispatch falls back to
  // exec-per-shard when the transport cannot forward stdio to the worker
  // (templates with per-item placeholders) or on an explicit
  // --exec-per-shard.
  if (!options.exec_per_shard) {
    base.session_argv.push_back(base.argv.front());
    base.session_argv.emplace_back("worker");
    base.session_argv.emplace_back(sub);
    base.session_argv.insert(base.session_argv.end(), flags.begin(), flags.end());
  }

  dist::DispatchConfig config;
  config.workers = options.workers;
  config.shards = options.dispatch_shards;
  config.retries = options.retries;
  config.jobs_per_worker = options.jobs;
  config.timeout_seconds = options.timeout;
  config.artifact_dir = options.dir.empty() ? "cicmon-dispatch" : options.dir;
  config.force = options.force;
  config.progress = !options.quiet;
  if (options.ship_golden && bundle.keepalive != nullptr && !bundle.golden_key.empty()) {
    obs::Span encode_span("dispatch.golden_encode");
    config.golden = std::make_shared<dist::GoldenShipment>(dist::make_golden_shipment(
        bundle.golden_key,
        fault::encode_golden(bundle.keepalive->export_golden(), bundle.golden_key)));
    encode_span.args().add("bytes", config.golden->bytes);
  }

  std::unique_ptr<dist::Transport> transport;
  if (options.transport.empty()) {
    transport = std::make_unique<dist::LocalProcessTransport>();
  } else {
    transport = std::make_unique<dist::CommandTemplateTransport>(options.transport);
  }

  if (options.dry_run) {
    return print_dispatch_plan(bundle.spec, base, *transport, config, options.transport);
  }

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t run_t_us = obs::trace_now_us();
  const dist::DispatchResult result = dist::dispatch_sweep(bundle.spec, base, *transport, config);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  if (obs::trace_enabled()) {
    obs::TraceArgs args;
    args.add("sweep", bundle.spec.sweep);
    args.add("shards", static_cast<std::uint64_t>(result.shard_count));
    args.add("workers", static_cast<std::uint64_t>(result.workers_planned));
    args.add("mode", result.persistent ? "sessions" : "exec");
    obs::trace_span("dispatch.run", run_t_us, args);
  }
  const char* mode = result.persistent ? "persistent sessions" : "exec per shard";
  if (!result.ok) {
    std::fprintf(stderr,
                 "cicmon: dispatch failed: %zu shard(s) exhausted their attempt budget (%u) "
                 "via %s (%s transport); completed shards keep their artifacts in '%s' for "
                 "resume\n",
                 result.failures.size(), options.retries + 1, mode, transport->describe().c_str(),
                 config.artifact_dir.c_str());
    for (const dist::WorkFailure& failure : result.failures) {
      std::fprintf(stderr, "cicmon:   shard %u/%u: %s\n", failure.item.shard.index,
                   failure.item.shard.count, failure.reason.c_str());
    }
    return 1;
  }
  std::string golden_note;
  if (result.persistent &&
      result.golden_shipped + result.golden_cached + result.golden_derived > 0) {
    golden_note = ", golden " + std::to_string(result.golden_shipped) + " shipped/" +
                  std::to_string(result.golden_cached) + " cached/" +
                  std::to_string(result.golden_derived) + " derived";
  }
  std::fprintf(stderr,
               "dispatch: %s over %u shards via %s (%s transport): %zu reused, %zu launched, "
               "%zu retried%s\n",
               bundle.spec.sweep.c_str(), result.shard_count, mode,
               transport->describe().c_str(), result.reused, result.launched, result.retried,
               golden_note.c_str());
  if (result.elapsed_ms > 0 && result.workers_planned > 0 && result.busy_ms > 0) {
    // Worker utilization: summed assignment run wall over the fleet's total
    // slot time; plus how each shard's life split between waiting in the
    // queue and running on a worker.
    const double slot_ms =
        static_cast<double>(result.elapsed_ms) * static_cast<double>(result.workers_planned);
    std::fprintf(stderr,
                 "dispatch: workers %s utilized (%llu ms run vs %llu ms queue-wait across "
                 "%u slots, %llu ms elapsed)\n",
                 support::Table::fmt_pct(static_cast<double>(result.busy_ms) / slot_ms).c_str(),
                 static_cast<unsigned long long>(result.busy_ms),
                 static_cast<unsigned long long>(result.queue_wait_ms),
                 result.workers_planned,
                 static_cast<unsigned long long>(result.elapsed_ms));
  }
  const int code = render_cells(bundle.spec.sweep, bundle.spec.params, result.cells, options,
                                /*bench_total_ms=*/-1.0);
  if (code == 0 && sub == "campaign" && !options.json_path.empty()) {
    return write_dispatch_campaign_json(options.json_path, options, *bundle.keepalive, result,
                                        wall_ms);
  }
  return code;
}

int cmd_workloads() {
  support::Table table({"workload", "description"});
  for (const workloads::WorkloadInfo& info : workloads::all_workloads()) {
    table.add_row({std::string(info.name), std::string(info.description)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int run_command(int argc, char** argv, std::string_view command) {
  // dispatch/worker re-parse with their sweep subcommand at argv[2].
  if (command == "dispatch") return cmd_dispatch(argc, argv);
  if (command == "worker") return cmd_worker(argc, argv);
  const Options options = parse_options(
      argc, argv, /*allow_positional=*/command == "merge" || command == "report");
  if (command == "table1") return run_sweep_command(sim::table1_sweep(options.scale), options);
  if (command == "fig6") {
    return run_sweep_command(sim::fig6_sweep(options.entries, options.scale), options);
  }
  if (command == "blocks") {
    return run_sweep_command(sim::blocks_sweep(options.capacities, options.scale), options);
  }
  if (command == "bench") {
    return run_sweep_command(sim::bench_sweep(options.scale, options.best_of), options);
  }
  if (command == "campaign") return cmd_campaign(options);
  if (command == "merge") return cmd_merge(options);
  if (command == "report") return cmd_report(options);
  if (command == "workloads") return cmd_workloads();
  if (command == "help" || command == "--help" || command == "-h") usage(0);
  std::fprintf(stderr, "cicmon: unknown command '%s'%s\n", argv[1],
               did_you_mean(command, kCommands).c_str());
  usage(2);
}

// The --metrics summary, emitted after the command returns (every parallel
// region has joined by then, so the snapshot is complete). Destination is
// stderr or the --metrics-out sidecar — never stdout.
int emit_metrics_summary() {
  if (g_metrics_mode.empty()) return 0;
  const obs::MetricsSnapshot snap = obs::snapshot();
  const std::string text = g_metrics_mode == "json"
                               ? obs::render_metrics_json(snap, g_command)
                               : obs::render_metrics_table(snap);
  if (g_metrics_out.empty()) {
    std::fputs(text.c_str(), stderr);
    return 0;
  }
  std::FILE* out = std::fopen(g_metrics_out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cicmon: cannot write metrics to '%s'\n", g_metrics_out.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string_view command = argv[1];
  g_command = command;
  int code = 0;
  try {
    code = run_command(argc, argv, command);
  } catch (const cicmon::support::CicError& error) {
    std::fprintf(stderr, "cicmon: %s\n", error.what());
    code = 1;
  }
  // Telemetry epilogue: the metrics summary and the trace footer still land
  // (and report what happened) when the command failed.
  const int telemetry_code = emit_metrics_summary();
  obs::close_trace();
  if (code == 0 && telemetry_code != 0) code = telemetry_code;
  return code;
}
