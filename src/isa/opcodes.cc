#include "isa/opcodes.h"

namespace cicmon::isa {

std::optional<Mnemonic> mnemonic_by_name(std::string_view name) {
  for (const OpcodeInfo& row : opcode_table()) {
    if (row.mnemonic != Mnemonic::kInvalid && row.name == name) return row.mnemonic;
  }
  return std::nullopt;
}

}  // namespace cicmon::isa
