#include "isa/opcodes.h"

#include <array>

#include "support/error.h"

namespace cicmon::isa {
namespace {

using enum Mnemonic;
using F = Format;
using enum OperandPattern;
using IC = InstrClass;

// The table is ordered by Mnemonic enumerator value so info() is O(1).
constexpr std::array<OpcodeInfo, 53> kTable = {{
    {kSll,   "sll",   F::kR, 0x00, 0x00, kRdRtShamt, IC::kAlu},
    {kSrl,   "srl",   F::kR, 0x00, 0x02, kRdRtShamt, IC::kAlu},
    {kSra,   "sra",   F::kR, 0x00, 0x03, kRdRtShamt, IC::kAlu},
    {kSllv,  "sllv",  F::kR, 0x00, 0x04, kRdRtRs,    IC::kAlu},
    {kSrlv,  "srlv",  F::kR, 0x00, 0x06, kRdRtRs,    IC::kAlu},
    {kSrav,  "srav",  F::kR, 0x00, 0x07, kRdRtRs,    IC::kAlu},
    {kJr,    "jr",    F::kR, 0x00, 0x08, kRs,        IC::kJumpReg},
    {kJalr,  "jalr",  F::kR, 0x00, 0x09, kRdRs,      IC::kJumpReg},
    {kSyscall, "syscall", F::kR, 0x00, 0x0c, kNone,  IC::kSyscall},
    {kBreak, "break", F::kR, 0x00, 0x0d, kNone,      IC::kBreak},
    {kMfhi,  "mfhi",  F::kR, 0x00, 0x10, kRd,        IC::kHiLo},
    {kMthi,  "mthi",  F::kR, 0x00, 0x11, kRs,        IC::kHiLo},
    {kMflo,  "mflo",  F::kR, 0x00, 0x12, kRd,        IC::kHiLo},
    {kMtlo,  "mtlo",  F::kR, 0x00, 0x13, kRs,        IC::kHiLo},
    {kMult,  "mult",  F::kR, 0x00, 0x18, kRsRt,      IC::kMulDiv},
    {kMultu, "multu", F::kR, 0x00, 0x19, kRsRt,      IC::kMulDiv},
    {kDiv,   "div",   F::kR, 0x00, 0x1a, kRsRt,      IC::kMulDiv},
    {kDivu,  "divu",  F::kR, 0x00, 0x1b, kRsRt,      IC::kMulDiv},
    {kAdd,   "add",   F::kR, 0x00, 0x20, kRdRsRt,    IC::kAlu},
    {kAddu,  "addu",  F::kR, 0x00, 0x21, kRdRsRt,    IC::kAlu},
    {kSub,   "sub",   F::kR, 0x00, 0x22, kRdRsRt,    IC::kAlu},
    {kSubu,  "subu",  F::kR, 0x00, 0x23, kRdRsRt,    IC::kAlu},
    {kAnd,   "and",   F::kR, 0x00, 0x24, kRdRsRt,    IC::kAlu},
    {kOr,    "or",    F::kR, 0x00, 0x25, kRdRsRt,    IC::kAlu},
    {kXor,   "xor",   F::kR, 0x00, 0x26, kRdRsRt,    IC::kAlu},
    {kNor,   "nor",   F::kR, 0x00, 0x27, kRdRsRt,    IC::kAlu},
    {kSlt,   "slt",   F::kR, 0x00, 0x2a, kRdRsRt,    IC::kAlu},
    {kSltu,  "sltu",  F::kR, 0x00, 0x2b, kRdRsRt,    IC::kAlu},
    // REGIMM: opcode 0x01, the rt field selects the comparison.
    {kBltz,  "bltz",  F::kI, 0x01, 0x00, kRsLabel,   IC::kBranch},
    {kBgez,  "bgez",  F::kI, 0x01, 0x01, kRsLabel,   IC::kBranch},
    {kBeq,   "beq",   F::kI, 0x04, 0x00, kRsRtLabel, IC::kBranch},
    {kBne,   "bne",   F::kI, 0x05, 0x00, kRsRtLabel, IC::kBranch},
    {kBlez,  "blez",  F::kI, 0x06, 0x00, kRsLabel,   IC::kBranch},
    {kBgtz,  "bgtz",  F::kI, 0x07, 0x00, kRsLabel,   IC::kBranch},
    {kAddi,  "addi",  F::kI, 0x08, 0x00, kRtRsImm,   IC::kAlu},
    {kAddiu, "addiu", F::kI, 0x09, 0x00, kRtRsImm,   IC::kAlu},
    {kSlti,  "slti",  F::kI, 0x0a, 0x00, kRtRsImm,   IC::kAlu},
    {kSltiu, "sltiu", F::kI, 0x0b, 0x00, kRtRsImm,   IC::kAlu},
    {kAndi,  "andi",  F::kI, 0x0c, 0x00, kRtRsImm,   IC::kAlu},
    {kOri,   "ori",   F::kI, 0x0d, 0x00, kRtRsImm,   IC::kAlu},
    {kXori,  "xori",  F::kI, 0x0e, 0x00, kRtRsImm,   IC::kAlu},
    {kLui,   "lui",   F::kI, 0x0f, 0x00, kRtImm,     IC::kAlu},
    {kLb,    "lb",    F::kI, 0x20, 0x00, kRtOffBase, IC::kLoad},
    {kLh,    "lh",    F::kI, 0x21, 0x00, kRtOffBase, IC::kLoad},
    {kLw,    "lw",    F::kI, 0x23, 0x00, kRtOffBase, IC::kLoad},
    {kLbu,   "lbu",   F::kI, 0x24, 0x00, kRtOffBase, IC::kLoad},
    {kLhu,   "lhu",   F::kI, 0x25, 0x00, kRtOffBase, IC::kLoad},
    {kSb,    "sb",    F::kI, 0x28, 0x00, kRtOffBase, IC::kStore},
    {kSh,    "sh",    F::kI, 0x29, 0x00, kRtOffBase, IC::kStore},
    {kSw,    "sw",    F::kI, 0x2b, 0x00, kRtOffBase, IC::kStore},
    {kJ,     "j",     F::kJ, 0x02, 0x00, kLabel,     IC::kJump},
    {kJal,   "jal",   F::kJ, 0x03, 0x00, kLabel,     IC::kJump},
    {kInvalid, "<invalid>", F::kR, 0x3f, 0x3f, kNone, IC::kBreak},
}};

static_assert(kTable.back().mnemonic == kInvalid,
              "kInvalid must terminate the catalogue");

}  // namespace

std::span<const OpcodeInfo> opcode_table() { return {kTable.data(), kTable.size()}; }

const OpcodeInfo& info(Mnemonic m) {
  const auto index = static_cast<std::size_t>(m);
  support::check(index < kTable.size(), "info(): mnemonic out of range");
  const OpcodeInfo& row = kTable[index];
  support::check(row.mnemonic == m, "opcode table ordering corrupted");
  return row;
}

std::optional<Mnemonic> mnemonic_by_name(std::string_view name) {
  for (const OpcodeInfo& row : kTable) {
    if (row.mnemonic != Mnemonic::kInvalid && row.name == name) return row.mnemonic;
  }
  return std::nullopt;
}

}  // namespace cicmon::isa
