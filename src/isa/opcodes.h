// Opcode catalogue for the PISA-like ISA.
//
// The ISA is a classic 32-bit, fixed-width, three-format RISC encoding
// (modeled after SimpleScalar's PISA, itself MIPS-derived):
//
//   R-type:  opcode(6)=0 | rs(5) | rt(5) | rd(5) | shamt(5) | funct(6)
//   I-type:  opcode(6)   | rs(5) | rt(5) | imm(16)
//   J-type:  opcode(6)   | target(26)
//
// A single data-driven table describes every instruction: encoding fields,
// assembler operand pattern, and semantic class. The decoder, assembler,
// disassembler, microoperation expander, and pipeline all consume this table,
// so adding an instruction (the ASIP customization path of Section 5 of the
// paper) is a one-row change.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace cicmon::isa {

enum class Mnemonic : std::uint8_t {
  // R-type ALU / shifts / jumps-through-register.
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  kJr, kJalr,
  kSyscall, kBreak,
  kMfhi, kMthi, kMflo, kMtlo,
  kMult, kMultu, kDiv, kDivu,
  kAdd, kAddu, kSub, kSubu, kAnd, kOr, kXor, kNor, kSlt, kSltu,
  // REGIMM branches.
  kBltz, kBgez,
  // I-type branches / ALU-immediate / memory.
  kBeq, kBne, kBlez, kBgtz,
  kAddi, kAddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  // J-type.
  kJ, kJal,
  kInvalid,
};

enum class Format : std::uint8_t { kR, kI, kJ };

// How the assembler parses / the disassembler prints operands.
enum class OperandPattern : std::uint8_t {
  kRdRsRt,    // add  $rd, $rs, $rt
  kRdRtShamt, // sll  $rd, $rt, shamt
  kRdRtRs,    // sllv $rd, $rt, $rs
  kRs,        // jr   $rs / mthi $rs
  kRdRs,      // jalr $rd, $rs
  kRd,        // mfhi $rd
  kRsRt,      // mult $rs, $rt
  kRtRsImm,   // addi $rt, $rs, imm
  kRsRtLabel, // beq  $rs, $rt, label
  kRsLabel,   // blez $rs, label / bltz $rs, label
  kRtImm,     // lui  $rt, imm
  kRtOffBase, // lw   $rt, off($rs)
  kLabel,     // j    label
  kNone,      // syscall / break / nop
};

// Semantic class; drives hazard handling, microoperation expansion, and —
// crucially for the paper — the flow-control property that terminates a
// basic block.
enum class InstrClass : std::uint8_t {
  kAlu,      // single-cycle integer ops (incl. shifts, slt, lui)
  kMulDiv,   // multi-cycle multiply/divide writing HI/LO
  kHiLo,     // HI/LO moves
  kLoad,
  kStore,
  kBranch,   // conditional PC-relative branches
  kJump,     // j / jal (absolute)
  kJumpReg,  // jr / jalr (register-indirect)
  kSyscall,
  kBreak,
};

struct OpcodeInfo {
  Mnemonic mnemonic;
  std::string_view name;
  Format format;
  std::uint8_t opcode;   // bits [31:26]
  std::uint8_t funct;    // bits [5:0] when opcode==0; rt field for REGIMM
  OperandPattern operands;
  InstrClass cls;
};

// Entire opcode catalogue, indexed by Mnemonic value.
std::span<const OpcodeInfo> opcode_table();

// Catalogue row for a mnemonic (must not be kInvalid).
const OpcodeInfo& info(Mnemonic m);

// Looks up a mnemonic by assembly name ("addu", "bne", ...).
std::optional<Mnemonic> mnemonic_by_name(std::string_view name);

// True for instruction classes that end a basic block (the paper's
// "flow control instructions, such as branch and jump").
constexpr bool is_flow_control(InstrClass cls) {
  return cls == InstrClass::kBranch || cls == InstrClass::kJump ||
         cls == InstrClass::kJumpReg;
}

}  // namespace cicmon::isa
