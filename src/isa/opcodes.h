// Opcode catalogue for the PISA-like ISA.
//
// The ISA is a classic 32-bit, fixed-width, three-format RISC encoding
// (modeled after SimpleScalar's PISA, itself MIPS-derived):
//
//   R-type:  opcode(6)=0 | rs(5) | rt(5) | rd(5) | shamt(5) | funct(6)
//   I-type:  opcode(6)   | rs(5) | rt(5) | imm(16)
//   J-type:  opcode(6)   | target(26)
//
// A single data-driven table describes every instruction: encoding fields,
// assembler operand pattern, and semantic class. The decoder, assembler,
// disassembler, microoperation expander, and pipeline all consume this table,
// so adding an instruction (the ASIP customization path of Section 5 of the
// paper) is a one-row change.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace cicmon::isa {

enum class Mnemonic : std::uint8_t {
  // R-type ALU / shifts / jumps-through-register.
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  kJr, kJalr,
  kSyscall, kBreak,
  kMfhi, kMthi, kMflo, kMtlo,
  kMult, kMultu, kDiv, kDivu,
  kAdd, kAddu, kSub, kSubu, kAnd, kOr, kXor, kNor, kSlt, kSltu,
  // REGIMM branches.
  kBltz, kBgez,
  // I-type branches / ALU-immediate / memory.
  kBeq, kBne, kBlez, kBgtz,
  kAddi, kAddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  // J-type.
  kJ, kJal,
  kInvalid,
};

enum class Format : std::uint8_t { kR, kI, kJ };

// How the assembler parses / the disassembler prints operands.
enum class OperandPattern : std::uint8_t {
  kRdRsRt,    // add  $rd, $rs, $rt
  kRdRtShamt, // sll  $rd, $rt, shamt
  kRdRtRs,    // sllv $rd, $rt, $rs
  kRs,        // jr   $rs / mthi $rs
  kRdRs,      // jalr $rd, $rs
  kRd,        // mfhi $rd
  kRsRt,      // mult $rs, $rt
  kRtRsImm,   // addi $rt, $rs, imm
  kRsRtLabel, // beq  $rs, $rt, label
  kRsLabel,   // blez $rs, label / bltz $rs, label
  kRtImm,     // lui  $rt, imm
  kRtOffBase, // lw   $rt, off($rs)
  kLabel,     // j    label
  kNone,      // syscall / break / nop
};

// Semantic class; drives hazard handling, microoperation expansion, and —
// crucially for the paper — the flow-control property that terminates a
// basic block.
enum class InstrClass : std::uint8_t {
  kAlu,      // single-cycle integer ops (incl. shifts, slt, lui)
  kMulDiv,   // multi-cycle multiply/divide writing HI/LO
  kHiLo,     // HI/LO moves
  kLoad,
  kStore,
  kBranch,   // conditional PC-relative branches
  kJump,     // j / jal (absolute)
  kJumpReg,  // jr / jalr (register-indirect)
  kSyscall,
  kBreak,
};

struct OpcodeInfo {
  Mnemonic mnemonic;
  std::string_view name;
  Format format;
  std::uint8_t opcode;   // bits [31:26]
  std::uint8_t funct;    // bits [5:0] when opcode==0; rt field for REGIMM
  OperandPattern operands;
  InstrClass cls;
};

namespace detail {

using enum Mnemonic;  // scoped to isa::detail — the public namespace stays clean
using F = Format;
using enum OperandPattern;
using IC = InstrClass;

// The table lives in the header so the hot-path accessors below inline to a
// single indexed load. Ordered by Mnemonic enumerator value (checked at
// compile time) so info() is O(1).
inline constexpr std::array<OpcodeInfo, 53> kOpcodeTable = {{
    {kSll,   "sll",   F::kR, 0x00, 0x00, kRdRtShamt, IC::kAlu},
    {kSrl,   "srl",   F::kR, 0x00, 0x02, kRdRtShamt, IC::kAlu},
    {kSra,   "sra",   F::kR, 0x00, 0x03, kRdRtShamt, IC::kAlu},
    {kSllv,  "sllv",  F::kR, 0x00, 0x04, kRdRtRs,    IC::kAlu},
    {kSrlv,  "srlv",  F::kR, 0x00, 0x06, kRdRtRs,    IC::kAlu},
    {kSrav,  "srav",  F::kR, 0x00, 0x07, kRdRtRs,    IC::kAlu},
    {kJr,    "jr",    F::kR, 0x00, 0x08, kRs,        IC::kJumpReg},
    {kJalr,  "jalr",  F::kR, 0x00, 0x09, kRdRs,      IC::kJumpReg},
    {kSyscall, "syscall", F::kR, 0x00, 0x0c, kNone,  IC::kSyscall},
    {kBreak, "break", F::kR, 0x00, 0x0d, kNone,      IC::kBreak},
    {kMfhi,  "mfhi",  F::kR, 0x00, 0x10, kRd,        IC::kHiLo},
    {kMthi,  "mthi",  F::kR, 0x00, 0x11, kRs,        IC::kHiLo},
    {kMflo,  "mflo",  F::kR, 0x00, 0x12, kRd,        IC::kHiLo},
    {kMtlo,  "mtlo",  F::kR, 0x00, 0x13, kRs,        IC::kHiLo},
    {kMult,  "mult",  F::kR, 0x00, 0x18, kRsRt,      IC::kMulDiv},
    {kMultu, "multu", F::kR, 0x00, 0x19, kRsRt,      IC::kMulDiv},
    {kDiv,   "div",   F::kR, 0x00, 0x1a, kRsRt,      IC::kMulDiv},
    {kDivu,  "divu",  F::kR, 0x00, 0x1b, kRsRt,      IC::kMulDiv},
    {kAdd,   "add",   F::kR, 0x00, 0x20, kRdRsRt,    IC::kAlu},
    {kAddu,  "addu",  F::kR, 0x00, 0x21, kRdRsRt,    IC::kAlu},
    {kSub,   "sub",   F::kR, 0x00, 0x22, kRdRsRt,    IC::kAlu},
    {kSubu,  "subu",  F::kR, 0x00, 0x23, kRdRsRt,    IC::kAlu},
    {kAnd,   "and",   F::kR, 0x00, 0x24, kRdRsRt,    IC::kAlu},
    {kOr,    "or",    F::kR, 0x00, 0x25, kRdRsRt,    IC::kAlu},
    {kXor,   "xor",   F::kR, 0x00, 0x26, kRdRsRt,    IC::kAlu},
    {kNor,   "nor",   F::kR, 0x00, 0x27, kRdRsRt,    IC::kAlu},
    {kSlt,   "slt",   F::kR, 0x00, 0x2a, kRdRsRt,    IC::kAlu},
    {kSltu,  "sltu",  F::kR, 0x00, 0x2b, kRdRsRt,    IC::kAlu},
    // REGIMM: opcode 0x01, the rt field selects the comparison.
    {kBltz,  "bltz",  F::kI, 0x01, 0x00, kRsLabel,   IC::kBranch},
    {kBgez,  "bgez",  F::kI, 0x01, 0x01, kRsLabel,   IC::kBranch},
    {kBeq,   "beq",   F::kI, 0x04, 0x00, kRsRtLabel, IC::kBranch},
    {kBne,   "bne",   F::kI, 0x05, 0x00, kRsRtLabel, IC::kBranch},
    {kBlez,  "blez",  F::kI, 0x06, 0x00, kRsLabel,   IC::kBranch},
    {kBgtz,  "bgtz",  F::kI, 0x07, 0x00, kRsLabel,   IC::kBranch},
    {kAddi,  "addi",  F::kI, 0x08, 0x00, kRtRsImm,   IC::kAlu},
    {kAddiu, "addiu", F::kI, 0x09, 0x00, kRtRsImm,   IC::kAlu},
    {kSlti,  "slti",  F::kI, 0x0a, 0x00, kRtRsImm,   IC::kAlu},
    {kSltiu, "sltiu", F::kI, 0x0b, 0x00, kRtRsImm,   IC::kAlu},
    {kAndi,  "andi",  F::kI, 0x0c, 0x00, kRtRsImm,   IC::kAlu},
    {kOri,   "ori",   F::kI, 0x0d, 0x00, kRtRsImm,   IC::kAlu},
    {kXori,  "xori",  F::kI, 0x0e, 0x00, kRtRsImm,   IC::kAlu},
    {kLui,   "lui",   F::kI, 0x0f, 0x00, kRtImm,     IC::kAlu},
    {kLb,    "lb",    F::kI, 0x20, 0x00, kRtOffBase, IC::kLoad},
    {kLh,    "lh",    F::kI, 0x21, 0x00, kRtOffBase, IC::kLoad},
    {kLw,    "lw",    F::kI, 0x23, 0x00, kRtOffBase, IC::kLoad},
    {kLbu,   "lbu",   F::kI, 0x24, 0x00, kRtOffBase, IC::kLoad},
    {kLhu,   "lhu",   F::kI, 0x25, 0x00, kRtOffBase, IC::kLoad},
    {kSb,    "sb",    F::kI, 0x28, 0x00, kRtOffBase, IC::kStore},
    {kSh,    "sh",    F::kI, 0x29, 0x00, kRtOffBase, IC::kStore},
    {kSw,    "sw",    F::kI, 0x2b, 0x00, kRtOffBase, IC::kStore},
    {kJ,     "j",     F::kJ, 0x02, 0x00, kLabel,     IC::kJump},
    {kJal,   "jal",   F::kJ, 0x03, 0x00, kLabel,     IC::kJump},
    {kInvalid, "<invalid>", F::kR, 0x3f, 0x3f, kNone, IC::kBreak},
}};

consteval bool opcode_table_ordered() {
  for (std::size_t i = 0; i < kOpcodeTable.size(); ++i) {
    if (kOpcodeTable[i].mnemonic != static_cast<Mnemonic>(i)) return false;
  }
  return true;
}
static_assert(opcode_table_ordered(), "kOpcodeTable must be ordered by Mnemonic value");

}  // namespace detail

// Entire opcode catalogue, indexed by Mnemonic value.
inline std::span<const OpcodeInfo> opcode_table() {
  return {detail::kOpcodeTable.data(), detail::kOpcodeTable.size()};
}

// Catalogue row for a mnemonic. Total: an out-of-range value (only reachable
// by casting a raw integer) maps to the kInvalid row.
inline const OpcodeInfo& info(Mnemonic m) {
  auto index = static_cast<std::size_t>(m);
  if (index >= detail::kOpcodeTable.size()) index = detail::kOpcodeTable.size() - 1;
  return detail::kOpcodeTable[index];
}

// Looks up a mnemonic by assembly name ("addu", "bne", ...).
std::optional<Mnemonic> mnemonic_by_name(std::string_view name);

// True for instruction classes that end a basic block (the paper's
// "flow control instructions, such as branch and jump").
constexpr bool is_flow_control(InstrClass cls) {
  return cls == InstrClass::kBranch || cls == InstrClass::kJump ||
         cls == InstrClass::kJumpReg;
}

}  // namespace cicmon::isa
