#include "isa/registers.h"

#include <array>

#include "support/strings.h"

namespace cicmon::isa {
namespace {

constexpr std::array<const char*, kNumGpr> kAbiNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

}  // namespace

std::string reg_name(unsigned index) {
  if (index >= kNumGpr) return "$?";
  return std::string("$") + kAbiNames[index];
}

std::optional<unsigned> parse_reg(std::string_view text) {
  text = support::trim(text);
  if (!text.empty() && text.front() == '$') text.remove_prefix(1);
  if (text.empty()) return std::nullopt;

  // Numeric form: $0 .. $31.
  if (text.front() >= '0' && text.front() <= '9') {
    std::int64_t value = 0;
    if (!support::parse_int(text, &value)) return std::nullopt;
    if (value < 0 || value >= static_cast<std::int64_t>(kNumGpr)) return std::nullopt;
    return static_cast<unsigned>(value);
  }

  const std::string lowered = support::to_lower(text);
  for (unsigned i = 0; i < kNumGpr; ++i) {
    if (lowered == kAbiNames[i]) return i;
  }
  return std::nullopt;
}

}  // namespace cicmon::isa
