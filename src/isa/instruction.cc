#include "isa/instruction.h"

#include <sstream>

#include "isa/registers.h"
#include "support/bitops.h"
#include "support/error.h"

namespace cicmon::isa {

using support::bits;
using support::sign_extend;

std::int32_t Instruction::simm() const { return sign_extend(imm, 16); }

std::uint32_t Instruction::branch_target(std::uint32_t pc) const {
  return pc + 4 + (static_cast<std::uint32_t>(simm()) << 2);
}

std::uint32_t Instruction::jump_target(std::uint32_t pc) const {
  // Classic MIPS region jump: top 4 bits of PC+4 concatenated with target<<2.
  return ((pc + 4) & 0xF000'0000U) | (target << 2);
}

Instruction decode(std::uint32_t word) {
  Instruction out;
  out.raw = word;
  out.rs = static_cast<std::uint8_t>(bits(word, 21, 5));
  out.rt = static_cast<std::uint8_t>(bits(word, 16, 5));
  out.rd = static_cast<std::uint8_t>(bits(word, 11, 5));
  out.shamt = static_cast<std::uint8_t>(bits(word, 6, 5));
  out.imm = static_cast<std::uint16_t>(bits(word, 0, 16));
  out.target = bits(word, 0, 26);

  const std::uint8_t opcode = static_cast<std::uint8_t>(bits(word, 26, 6));
  const std::uint8_t funct = static_cast<std::uint8_t>(bits(word, 0, 6));

  out.mnemonic = Mnemonic::kInvalid;
  for (const OpcodeInfo& row : opcode_table()) {
    if (row.mnemonic == Mnemonic::kInvalid || row.opcode != opcode) continue;
    if (opcode == 0x00) {
      if (row.funct == funct) { out.mnemonic = row.mnemonic; break; }
    } else if (opcode == 0x01) {
      // REGIMM: the rt field selects bltz/bgez.
      if (row.funct == out.rt) { out.mnemonic = row.mnemonic; break; }
    } else {
      out.mnemonic = row.mnemonic;
      break;
    }
  }
  return out;
}

namespace {

std::uint32_t pack(std::uint8_t opcode, unsigned rs, unsigned rt, unsigned rd,
                   unsigned shamt, std::uint8_t funct) {
  return (static_cast<std::uint32_t>(opcode) << 26) | (rs << 21) | (rt << 16) |
         (rd << 11) | (shamt << 6) | funct;
}

void check_reg(unsigned r) { support::check(r < kNumGpr, "register index out of range"); }

}  // namespace

std::uint32_t encode_r(Mnemonic m, unsigned rd, unsigned rs, unsigned rt, unsigned shamt) {
  const OpcodeInfo& row = info(m);
  support::check(row.format == Format::kR, "encode_r: not an R-type mnemonic");
  check_reg(rd); check_reg(rs); check_reg(rt);
  support::check(shamt < 32, "shift amount out of range");
  return pack(row.opcode, rs, rt, rd, shamt, row.funct);
}

std::uint32_t encode_i(Mnemonic m, unsigned rt, unsigned rs, std::uint16_t imm) {
  const OpcodeInfo& row = info(m);
  support::check(row.format == Format::kI, "encode_i: not an I-type mnemonic");
  check_reg(rt); check_reg(rs);
  if (row.opcode == 0x01) {
    // REGIMM encodes the branch kind in the rt field.
    return pack(row.opcode, rs, row.funct, 0, 0, 0) | imm;
  }
  return (static_cast<std::uint32_t>(row.opcode) << 26) | (rs << 21) | (rt << 16) | imm;
}

std::uint32_t encode_j(Mnemonic m, std::uint32_t target_word_address) {
  const OpcodeInfo& row = info(m);
  support::check(row.format == Format::kJ, "encode_j: not a J-type mnemonic");
  support::check(target_word_address < (1U << 26), "jump target out of 26-bit range");
  return (static_cast<std::uint32_t>(row.opcode) << 26) | target_word_address;
}

std::string disassemble(const Instruction& in) {
  if (!in.valid()) return "<invalid>";
  if (in.raw == 0) return "nop";  // sll $zero,$zero,0 is the canonical NOP
  const OpcodeInfo& row = in.info();
  std::ostringstream out;
  out << row.name << ' ';
  switch (row.operands) {
    case OperandPattern::kRdRsRt:
      out << reg_name(in.rd) << ", " << reg_name(in.rs) << ", " << reg_name(in.rt);
      break;
    case OperandPattern::kRdRtShamt:
      out << reg_name(in.rd) << ", " << reg_name(in.rt) << ", " << unsigned{in.shamt};
      break;
    case OperandPattern::kRdRtRs:
      out << reg_name(in.rd) << ", " << reg_name(in.rt) << ", " << reg_name(in.rs);
      break;
    case OperandPattern::kRs:
      out << reg_name(in.rs);
      break;
    case OperandPattern::kRdRs:
      out << reg_name(in.rd) << ", " << reg_name(in.rs);
      break;
    case OperandPattern::kRd:
      out << reg_name(in.rd);
      break;
    case OperandPattern::kRsRt:
      out << reg_name(in.rs) << ", " << reg_name(in.rt);
      break;
    case OperandPattern::kRtRsImm:
      out << reg_name(in.rt) << ", " << reg_name(in.rs) << ", " << in.simm();
      break;
    case OperandPattern::kRsRtLabel:
      out << reg_name(in.rs) << ", " << reg_name(in.rt) << ", " << (in.simm() << 2);
      break;
    case OperandPattern::kRsLabel:
      out << reg_name(in.rs) << ", " << (in.simm() << 2);
      break;
    case OperandPattern::kRtImm:
      out << reg_name(in.rt) << ", " << in.uimm();
      break;
    case OperandPattern::kRtOffBase:
      out << reg_name(in.rt) << ", " << in.simm() << '(' << reg_name(in.rs) << ')';
      break;
    case OperandPattern::kLabel:
      out << "0x" << std::hex << (in.target << 2);
      break;
    case OperandPattern::kNone: {
      std::string text = out.str();
      if (!text.empty() && text.back() == ' ') text.pop_back();
      return text;
    }
  }
  return out.str();
}

}  // namespace cicmon::isa
