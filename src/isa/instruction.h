// Instruction word decode/encode.
//
// `Instruction` is a decoded view of a 32-bit instruction word. Decoding never
// fails: words that match no catalogue row decode to Mnemonic::kInvalid, which
// the pipeline reports as an illegal-opcode trap — the paper notes (§6.3) that
// some bit flips are caught by the baseline microarchitecture this way, and we
// measure exactly that in the fault campaigns.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcodes.h"

namespace cicmon::isa {

struct Instruction {
  std::uint32_t raw = 0;
  Mnemonic mnemonic = Mnemonic::kInvalid;
  // Decoded fields (valid per format; unused fields are zero).
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t rd = 0;
  std::uint8_t shamt = 0;
  std::uint16_t imm = 0;        // raw 16-bit immediate
  std::uint32_t target = 0;     // raw 26-bit jump target field

  const OpcodeInfo& info() const { return isa::info(mnemonic); }
  bool valid() const { return mnemonic != Mnemonic::kInvalid; }
  bool flow_control() const { return valid() && is_flow_control(info().cls); }

  // Sign-extended immediate (for addi/slti/loads/stores/branch offsets).
  std::int32_t simm() const;
  // Zero-extended immediate (for andi/ori/xori).
  std::uint32_t uimm() const { return imm; }

  // Branch destination given the address of this (branch) instruction.
  // PISA-style: target = PC + 4 + (signed offset << 2).
  std::uint32_t branch_target(std::uint32_t pc) const;
  // Jump destination for j/jal given the address of this instruction.
  std::uint32_t jump_target(std::uint32_t pc) const;
};

// Decodes a raw instruction word. Total: every word decodes to something.
Instruction decode(std::uint32_t word);

// True if `instr` consumes GPR `reg` in its ID or EX stage — the window in
// which a just-loaded value is not yet available without a bubble. Store
// data (rt of sb/sh/sw) is consumed in MEM and forwards without stalling.
// Shared by the cycle model and the threaded engine's translator (which
// precomputes the early-consumed registers per translated entry) so the two
// load-use accountings cannot drift.
inline bool consumes_early(const Instruction& instr, unsigned reg) {
  if (reg == 0 || !instr.valid()) return false;
  switch (instr.info().operands) {
    case OperandPattern::kRdRsRt:
    case OperandPattern::kRsRt:
    case OperandPattern::kRsRtLabel:
      return instr.rs == reg || instr.rt == reg;
    case OperandPattern::kRdRtShamt:
      return instr.rt == reg;
    case OperandPattern::kRdRtRs:
      return instr.rt == reg || instr.rs == reg;
    case OperandPattern::kRs:
    case OperandPattern::kRdRs:
    case OperandPattern::kRtRsImm:
    case OperandPattern::kRsLabel:
      return instr.rs == reg;
    case OperandPattern::kRtOffBase:
      return instr.rs == reg;  // address base; stored rt forwards at MEM
    case OperandPattern::kRd:
    case OperandPattern::kRtImm:
    case OperandPattern::kLabel:
    case OperandPattern::kNone:
      return false;
  }
  return false;
}

// --- Encoding helpers (used by the assembler and the builder API) ---
std::uint32_t encode_r(Mnemonic m, unsigned rd, unsigned rs, unsigned rt, unsigned shamt = 0);
std::uint32_t encode_i(Mnemonic m, unsigned rt, unsigned rs, std::uint16_t imm);
std::uint32_t encode_j(Mnemonic m, std::uint32_t target_word_address);

// Canonical textual form, e.g. "addu $t0, $t1, $t2" or "bne $a0, $zero, -12".
std::string disassemble(const Instruction& instr);
inline std::string disassemble(std::uint32_t word) { return disassemble(decode(word)); }

}  // namespace cicmon::isa
