// Architectural register names for the PISA-like ISA.
//
// The register file follows the MIPS/PISA convention: 32 general-purpose
// registers with r0 hard-wired to zero, plus HI/LO for multiply/divide
// results. The ABI aliases below are the ones the assembler accepts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cicmon::isa {

inline constexpr unsigned kNumGpr = 32;

// ABI role aliases (subset of the MIPS o32 convention, enough for the
// workload kernels and examples).
enum Reg : std::uint8_t {
  kZero = 0,  // always zero
  kAt = 1,    // assembler temporary
  kV0 = 2, kV1 = 3,                      // return values / syscall number
  kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7,    // arguments
  kT0 = 8, kT1 = 9, kT2 = 10, kT3 = 11,  // caller-saved temporaries
  kT4 = 12, kT5 = 13, kT6 = 14, kT7 = 15,
  kS0 = 16, kS1 = 17, kS2 = 18, kS3 = 19,  // callee-saved
  kS4 = 20, kS5 = 21, kS6 = 22, kS7 = 23,
  kT8 = 24, kT9 = 25,
  kK0 = 26, kK1 = 27,  // reserved for OS
  kGp = 28,            // global pointer
  kSp = 29,            // stack pointer
  kFp = 30,            // frame pointer
  kRa = 31,            // return address
};

// Canonical printable name ("$t0", "$sp", ...).
std::string reg_name(unsigned index);

// Parses "$5", "5", "$t0", "t0", "$sp", ... Returns nullopt if unknown.
std::optional<unsigned> parse_reg(std::string_view text);

}  // namespace cicmon::isa
