// Static check-region analysis over a program image.
//
// The hardware monitor hashes instruction words from the first fetch after a
// reset (the register STA latches that address) up to and including the
// flow-control instruction whose ID stage performs the IHT lookup (its
// address is in PPC). The static generator must therefore enumerate exactly
// the dynamic units the monitor will present:
//
//   check region = [leader, next flow-control instruction at or after leader]
//
// where a *leader* is any address the processor can start hashing from: the
// program entry point, every static branch/jump target, every fall-through
// successor of a flow-control instruction, and every named function entry
// (covering register-indirect calls; return addresses are fall-throughs of
// the jal and are thus already leaders).
//
// Several leaders inside one textbook basic block share the same end address
// — the monitor genuinely produces such overlapping regions when a block is
// entered mid-way (e.g. the backward-branch target of a loop whose header is
// also reached by fall-through), so the Full Hash Table must carry them all.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "casm/image.h"
#include "hash/hash_unit.h"

namespace cicmon::cfg {

// One statically enumerated monitoring unit: instructions in
// [start, end] inclusive, both instruction-word-aligned addresses, with the
// expected hash of that word sequence. This is the paper's IHT/FHT tuple
// (Addst, Addend, Hash).
struct CheckRegion {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  std::uint32_t hash = 0;

  // Number of instruction words covered.
  std::uint32_t length_words() const { return (end - start) / 4 + 1; }

  friend bool operator==(const CheckRegion&, const CheckRegion&) = default;
};

// All leader addresses of the image's text section, sorted ascending.
// Exposed separately from region enumeration so tests and the workload
// characterisation bench can inspect the control-flow structure.
std::vector<std::uint32_t> find_leaders(const casm_::Image& image);

// Enumerates every check region of the image (one per leader), computing
// expected hashes with `unit`. Regions are sorted by (start, end).
//
// A leader whose region would run past the end of the text section (no
// terminating flow-control instruction) is dropped: the monitor can never
// look such a region up, because lookups only happen in the ID stage of a
// flow-control instruction.
std::vector<CheckRegion> enumerate_check_regions(const casm_::Image& image,
                                                 const hash::HashFunctionUnit& unit);

// Recomputes the dynamic hash of an arbitrary address range from the image
// (what the hardware would accumulate fetching [start, end] in order).
std::uint32_t hash_range(const casm_::Image& image, const hash::HashFunctionUnit& unit,
                         std::uint32_t start, std::uint32_t end);

}  // namespace cicmon::cfg
