#include "cfg/fht.h"

#include <algorithm>

#include "support/error.h"

namespace cicmon::cfg {
namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'H', 'T', '1'};

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t value) {
  out->push_back(static_cast<std::uint8_t>(value));
  out->push_back(static_cast<std::uint8_t>(value >> 8));
  out->push_back(static_cast<std::uint8_t>(value >> 16));
  out->push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(bytes[offset]) |
         static_cast<std::uint32_t>(bytes[offset + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[offset + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[offset + 3]) << 24;
}

bool region_less(const CheckRegion& a, const CheckRegion& b) {
  return a.start != b.start ? a.start < b.start : a.end < b.end;
}

}  // namespace

FullHashTable::FullHashTable(std::vector<CheckRegion> records) : records_(std::move(records)) {
  std::sort(records_.begin(), records_.end(), region_less);
  for (std::size_t i = 1; i < records_.size(); ++i) {
    support::check(records_[i - 1].start != records_[i].start ||
                       records_[i - 1].end != records_[i].end,
                   "FullHashTable: duplicate (start, end) record");
  }
}

std::size_t FullHashTable::find(std::uint32_t start, std::uint32_t end) const {
  const CheckRegion key{start, end, 0};
  const auto it = std::lower_bound(records_.begin(), records_.end(), key, region_less);
  if (it == records_.end() || it->start != start || it->end != end) return npos;
  return static_cast<std::size_t>(it - records_.begin());
}

std::optional<std::uint32_t> FullHashTable::expected_hash(std::uint32_t start,
                                                          std::uint32_t end) const {
  const std::size_t index = find(start, end);
  if (index == npos) return std::nullopt;
  return records_[index].hash;
}

std::vector<std::uint8_t> FullHashTable::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + records_.size() * 12);
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u32(&out, static_cast<std::uint32_t>(records_.size()));
  for (const CheckRegion& r : records_) {
    put_u32(&out, r.start);
    put_u32(&out, r.end);
    put_u32(&out, r.hash);
  }
  return out;
}

FullHashTable FullHashTable::deserialize(std::span<const std::uint8_t> bytes) {
  support::check(bytes.size() >= 8, "FHT blob too short for header");
  support::check(std::equal(std::begin(kMagic), std::end(kMagic), bytes.begin()),
                 "FHT blob has wrong magic");
  const std::uint32_t count = get_u32(bytes, 4);
  support::check(bytes.size() == 8 + static_cast<std::size_t>(count) * 12,
                 "FHT blob length does not match record count");
  std::vector<CheckRegion> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t base = 8 + static_cast<std::size_t>(i) * 12;
    records.push_back(
        CheckRegion{get_u32(bytes, base), get_u32(bytes, base + 4), get_u32(bytes, base + 8)});
  }
  return FullHashTable(std::move(records));
}

FullHashTable build_fht(const casm_::Image& image, const hash::HashFunctionUnit& unit) {
  return FullHashTable(enumerate_check_regions(image, unit));
}

}  // namespace cicmon::cfg
