#include "cfg/check_region.h"

#include <algorithm>
#include <set>

#include "isa/instruction.h"
#include "support/error.h"

namespace cicmon::cfg {

std::vector<std::uint32_t> find_leaders(const casm_::Image& image) {
  std::set<std::uint32_t> leaders;
  const std::uint32_t text_end = image.text_end();

  auto add_if_text = [&](std::uint32_t address) {
    if (address >= image.text_base && address < text_end) leaders.insert(address);
  };

  add_if_text(image.entry);

  // Named function entries cover register-indirect transfers (jr/jalr through
  // function pointers); symbols outside text (data labels) are ignored.
  for (const auto& [name, address] : image.symbols) add_if_text(address);

  for (std::uint32_t addr = image.text_base; addr < text_end; addr += 4) {
    const isa::Instruction instr = isa::decode(image.word_at(addr));
    if (!instr.flow_control()) continue;
    // The instruction after a flow-control instruction starts a new region
    // whether or not the transfer is taken (no delay slots in this pipeline).
    add_if_text(addr + 4);
    switch (instr.info().cls) {
      case isa::InstrClass::kBranch:
        add_if_text(instr.branch_target(addr));
        break;
      case isa::InstrClass::kJump:
        add_if_text(instr.jump_target(addr));
        break;
      case isa::InstrClass::kJumpReg:
        break;  // targets covered by function symbols / fall-through leaders
      default:
        break;
    }
  }

  return {leaders.begin(), leaders.end()};
}

std::uint32_t hash_range(const casm_::Image& image, const hash::HashFunctionUnit& unit,
                         std::uint32_t start, std::uint32_t end) {
  support::check(image.contains_text(start) && image.contains_text(end) && start <= end,
                 "hash_range: address range outside the text section");
  std::uint32_t state = unit.init();
  for (std::uint32_t addr = start; addr <= end; addr += 4) {
    state = unit.step(state, image.word_at(addr));
  }
  return state;
}

std::vector<CheckRegion> enumerate_check_regions(const casm_::Image& image,
                                                 const hash::HashFunctionUnit& unit) {
  const std::uint32_t text_end = image.text_end();
  std::vector<CheckRegion> regions;

  for (std::uint32_t leader : find_leaders(image)) {
    // Walk forward to the terminating flow-control instruction.
    std::optional<std::uint32_t> end;
    for (std::uint32_t addr = leader; addr < text_end; addr += 4) {
      if (isa::decode(image.word_at(addr)).flow_control()) {
        end = addr;
        break;
      }
    }
    if (!end.has_value()) continue;  // falls off text: never looked up
    regions.push_back(CheckRegion{leader, *end, hash_range(image, unit, leader, *end)});
  }

  std::sort(regions.begin(), regions.end(), [](const CheckRegion& a, const CheckRegion& b) {
    return a.start != b.start ? a.start < b.start : a.end < b.end;
  });
  return regions;
}

}  // namespace cicmon::cfg
