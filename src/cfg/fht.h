// Full Hash Table (FHT).
//
// The complete set of expected (Addst, Addend, Hash) records for a program,
// "attached to the application code and data" (§3.3) and loaded into
// OS-managed memory when the application starts. The on-chip IHT acts as a
// cache of this table; the OS exception handler searches it on a hash miss.
//
// Lookup is keyed by (start, end): the handler must distinguish "record
// exists but the dynamic hash disagrees" (tampering → terminate) from
// "no record at all" (execution reached a block the static analysis never
// produced → terminate). Both outcomes need the record's identity, not its
// hash, so the hash is the payload, not part of the key.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cfg/check_region.h"
#include "hash/hash_unit.h"

namespace cicmon::cfg {

class FullHashTable {
 public:
  FullHashTable() = default;
  explicit FullHashTable(std::vector<CheckRegion> records);

  // Expected hash for the region [start, end], or nullopt if the static
  // analysis produced no such region.
  std::optional<std::uint32_t> expected_hash(std::uint32_t start, std::uint32_t end) const;

  // Records with start addresses in [from, to), in address order — the OS
  // refill handler uses this to prefetch the neighbourhood of a miss.
  std::span<const CheckRegion> records() const { return records_; }

  // Index of the record with the given (start, end), or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(std::uint32_t start, std::uint32_t end) const;

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const CheckRegion& record(std::size_t index) const { return records_[index]; }

  // --- Binary serialization (the bytes attached to the image) ---
  //
  // Layout: "FHT1" magic, uint32 record count, then (start, end, hash)
  // little-endian word triples. The loader rejects malformed blobs.
  std::vector<std::uint8_t> serialize() const;
  static FullHashTable deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<CheckRegion> records_;  // sorted by (start, end)
};

// Convenience: enumerate check regions of `image` under `unit` and build the
// table — the paper's "special program or OS application loader" that
// computes hashes after binary code is generated.
FullHashTable build_fht(const casm_::Image& image, const hash::HashFunctionUnit& unit);

}  // namespace cicmon::cfg
