// Golden-run snapshots and the shared post-loader image.
//
// Fault campaigns run one clean (golden) execution and thousands of faulty
// re-executions of the same binary. Two artifacts make the re-executions
// cheap:
//
//  * LoadedImage — everything loading produces, computed once and shared
//    read-only by every trial Cpu: the post-loader memory frozen into an
//    immutable copy-on-write page base, the (monitoring-embedded) uop spec,
//    and the recovered FHT. A trial Cpu built from it skips the loader and
//    the loader's whole-text hash computation.
//
//  * Snapshot — the complete determinism surface of a running Cpu at an
//    instruction boundary: architectural registers and special latches, the
//    accumulated RunResult (console, instruction/cycle/stall counters),
//    pipeline hazard state, monitor state (IHT entries + stats + clocks +
//    replacement RNG, latched lookup key, OS stats), I-cache lines, the
//    fetch-bus transfer count, and memory as a page delta against the
//    LoadedImage base. Restoring one and resuming is bit-identical to having
//    executed from instruction 0.
//
// Deliberately NOT in a snapshot: the predecode cache and the block
// translation cache. Both are tamper-safe (every entry is tagged by the raw
// fetched word, so any divergence misses and re-decodes), which makes a cold
// cache semantically identical to a warm one — the existing engine A/B tests
// enforce exactly that property. Recovery mode's block checkpoint is also
// excluded; snapshots refuse to operate with recovery enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "casm/image.h"
#include "cfg/fht.h"
#include "cpu/cpu.h"
#include "mem/fetch_path.h"
#include "mem/memory.h"
#include "uop/uop.h"

namespace cicmon::cpu {

struct LoadedImage {
  std::shared_ptr<const mem::Memory::PageMap> pages;  // frozen post-loader memory
  std::shared_ptr<const uop::IsaUopSpec> spec;        // monitoring-embedded when configured
  cfg::FullHashTable fht;                             // empty when monitoring is off
  bool fht_was_attached = false;
  std::uint32_t entry = 0;
};

// Runs the loader once for `config`/`image`: builds the uop spec (embedding
// the §5 monitoring pass when config.monitoring), loads text + data, recovers
// or computes the FHT, and freezes the memory into a shared page base.
LoadedImage preload_image(const CpuConfig& config, const casm_::Image& image);

struct Snapshot {
  std::uint64_t instructions = 0;   // == result.instructions, hoisted for search
  std::uint64_t bus_transfers = 0;  // words fetched over the bus so far

  std::array<std::uint32_t, isa::kNumGpr> gpr{};
  std::array<std::uint32_t, 7> special{};  // CPC/PPC/IREG/STA/RHASH/HI/LO
  RunResult result;                        // includes console-so-far

  // Inter-instruction pipeline/hazard state.
  bool pc_redirected = false;
  std::optional<std::uint8_t> pending_exc;
  std::uint64_t hilo_ready_cycle = 0;
  unsigned prev_load_dst = 0;

  // Monitor state (engaged iff the Cpu is monitored).
  std::optional<cic::CheckerState> checker;
  std::optional<os::OsMonitorStats> os_stats;

  // Fetch-path state (icache engaged iff configured).
  std::optional<mem::ICache::State> icache;
  std::uint64_t pending_stall_cycles = 0;

  // Pages touched since the LoadedImage base (copy-on-write overlay).
  mem::Memory::PageMap memory_delta;
};

}  // namespace cicmon::cpu
