// In-order single-issue CPU executing through microoperation programs.
//
// The simulator is timing-directed functional: instructions execute in
// program order, each running the IF..WB slices of its microoperation
// program against the Datapath, while a cycle model layers pipeline timing
// on top (branch redirect bubbles, load-use stalls, multi-cycle multiply/
// divide, I-cache refills, and OS monitoring-exception costs).
//
// Stage slices execute oldest-instruction-first, which encodes the hardware
// ordering the monitor relies on: the ID-stage lookup/reset microoperations
// of a flow-control instruction complete before the IF-stage hash step of
// the next fetched instruction, so RHASH covers exactly one check region.
// (A pipelined implementation achieves the same with same-cycle forwarding
// of the reset; the paper's Figure 4 presumes it.)
//
// Monitoring is enabled by constructing the CPU with CpuConfig::monitoring
// set: the ISA microoperation spec is passed through the embedding pass of
// Section 5, a CodeIntegrityChecker is instantiated, and an OsMonitor is
// attached to service its exceptions. The *binary is identical* in both
// configurations — the scheme's central claim.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "casm/builder.h"
#include "casm/image.h"
#include "isa/registers.h"
#include "cic/checker.h"
#include "mem/fetch_path.h"
#include "mem/memory.h"
#include "os/loader.h"
#include "os/monitor_os.h"
#include "uop/interp.h"
#include "uop/monitor_pass.h"
#include "uop/threaded.h"
#include "uop/translate_cache.h"
#include "uop/uop.h"

// Once-per-dynamic-instruction helpers are forced inline into the engine
// loops: GCC declines them at -O2 because they are called from every fused
// handler instantiation, but the call overhead is the hot path.
#if defined(__GNUC__)
#define CICMON_HOT_INLINE __attribute__((always_inline)) inline
#else
#define CICMON_HOT_INLINE inline
#endif

namespace cicmon::cpu {

// Execution engine. kSwitch is the PR 2 predecode interpreter (per-uop
// dispatch through execute_ops); kThreaded translates hot blocks into fused
// superinstruction handlers behind the tamper-safe translation cache. Both
// engines produce byte-identical results — the engine is a pure execution
// strategy, like the predecode cache or the job count.
enum class Engine : std::uint8_t { kSwitch, kThreaded };

// Process-wide defaults picked up by freshly constructed CpuConfig values.
// The sweep builders construct their configs deep inside per-cell lambdas, so
// the CLI applies `--engine` / `--translate-cache` here once, before the
// sweep is built. The built-in default is kThreaded in Release (NDEBUG)
// builds and kSwitch in Debug builds.
Engine default_engine();
void set_default_engine(Engine engine);
bool default_translate_cache();
void set_default_translate_cache(bool enabled);
bool default_chain();
void set_default_chain(bool enabled);

std::string_view engine_name(Engine engine);

// Pipeline timing parameters (single-issue, in-order; the paper's baseline
// is a 6-stage PISA pipeline — `frontend_stages` sets the fetch depth that
// determines the redirect bubble).
struct TimingConfig {
  unsigned frontend_stages = 2;      // IF stages before ID; redirect bubble = this value - 1
  unsigned load_use_stall = 1;       // bubble when a load's value is consumed next
  unsigned mult_latency = 4;         // cycles until HI/LO is readable after mult
  unsigned div_latency = 12;         // cycles until HI/LO is readable after div
};

// Architectural recovery (the paper's §7 future work): with recovery
// enabled, the CPU checkpoints architectural state (GPRs, HI/LO, a store
// undo-log, console length) at every check-region start. When the monitor
// terminates a block, the machine rolls the block back, invalidates the
// I-cache, and re-executes from the region start — a *transient* fetch-path
// fault (bus glitch, cache soft error) refetches clean code and the program
// completes correctly; *persistent* corruption (rewritten memory) fails
// again and terminates once the retry budget is exhausted.
struct RecoveryConfig {
  bool enabled = false;
  unsigned max_retries_per_block = 3;
  std::uint64_t recovery_cycles = 150;  // rollback + refetch cost per attempt
};

struct CpuConfig {
  bool monitoring = false;
  cic::CicConfig cic;
  os::OsConfig os;
  mem::ICacheConfig icache;          // disabled by default
  TimingConfig timing;
  RecoveryConfig recovery;
  std::uint64_t max_instructions = 200'000'000;  // watchdog for fault campaigns
  // Per-text-address predecode cache, tagged by the raw fetched word. A tag
  // match reuses the cached decode; any divergence of the fetched word (bus
  // tamper, cache-resident flips, memory rewrites, post-ID faults) misses the
  // tag and falls back to a fresh isa::decode, so every simulated result is
  // byte-identical with the cache on or off. Off exists for A/B tests.
  bool predecode_cache = true;
  // Execution engine and its block-level translation cache. The translation
  // cache is tagged per entry by the fetched word (same tamper-safety
  // contract as the predecode cache); disabling it retranslates every block
  // and exists for the same A/B byte-identity tests.
  Engine engine = default_engine();
  bool translate_cache = default_translate_cache();
  // Superblock chaining: cache verified taken/fall-through links between
  // translated blocks so the threaded engine flows block-to-block without a
  // dispatch-loop round trip. Pure execution strategy — byte-identical on or
  // off; every link is severed when either endpoint invalidates (tamper
  // safety). Off exists for the same A/B byte-identity tests.
  bool chain = default_chain();
};

enum class ExitReason : std::uint8_t {
  kExit,                // program ran sys_exit
  kMonitorTerminated,   // OS killed it on a monitoring exception
  kIllegalInstruction,  // baseline decode trap (invalid opcode)
  kWildPc,              // fetch left the text section (baseline crash)
  kSelfCheckFailed,     // workload's check_eq observed a wrong value
  kWatchdog,            // max_instructions exceeded
};

std::string_view exit_reason_name(ExitReason reason);

struct RunResult {
  bool operator==(const RunResult&) const = default;

  ExitReason reason = ExitReason::kExit;
  std::uint32_t exit_code = 0;
  os::TerminationCause monitor_cause = os::TerminationCause::kNone;

  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;          // total, including monitor exception cost
  std::uint64_t monitor_cycles = 0;  // portion charged by OS exception handling
  std::uint64_t recoveries = 0;      // successful block rollbacks (recovery mode)
  std::uint64_t branch_bubbles = 0;
  std::uint64_t load_use_stalls = 0;
  std::uint64_t muldiv_stalls = 0;
  std::uint64_t icache_stall_cycles = 0;

  cic::IhtStats iht;                 // zero when monitoring is off
  os::OsMonitorStats os;

  std::string console;               // syscall output
  std::uint32_t check_observed = 0;  // valid when reason == kSelfCheckFailed
  std::uint32_t check_expected = 0;

  // Cycles attributable to the application alone (what the "No CIC" baseline
  // of Table 1 reports when monitoring is off).
  std::uint64_t app_cycles() const { return cycles - monitor_cycles; }
};

// Post-decode fault: at dynamic instruction `index` (0-based), the pipeline
// latch downstream of ID XORs `xor_mask` into the instruction word —
// execution semantics change, but the IF-stage hash saw the clean word.
// Models the §3.2 limitation.
struct PostIdFault {
  std::uint64_t index = 0;
  std::uint32_t xor_mask = 1;
};

// Shared immutable artifacts of loading one image under one configuration
// (cpu/snapshot.h): the post-loader memory as a copy-on-write base, the
// monitoring-embedded microoperation spec, and the recovered FHT. Built once
// per campaign, shared read-only by every trial's Cpu.
struct LoadedImage;

// Complete determinism surface of a running Cpu at an instruction boundary
// (cpu/snapshot.h); save_snapshot/restore_snapshot fast-forward fault trials.
struct Snapshot;

class Cpu final : private uop::Datapath {
 public:
  // Loads `image` (text, data, attached FHT if present) and prepares the
  // configured machine. The image is not modified.
  Cpu(const CpuConfig& config, const casm_::Image& image);

  // As above, but skips the loader: memory reads through `loaded`'s frozen
  // page base (copy-on-write), the uop spec is shared, and the FHT is copied
  // instead of recomputed. `loaded` must have been built by preload_image
  // with a monitoring/cic configuration equivalent to `config`, and must
  // outlive the Cpu. Behaviour is bit-identical to the loading constructor.
  Cpu(const CpuConfig& config, const casm_::Image& image, const LoadedImage* loaded);
  ~Cpu() override;

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Runs to completion (or termination / watchdog). Callable once.
  RunResult run();

  // Single-step interface for tests: executes one instruction. Returns
  // nullopt while the program is still running.
  std::optional<RunResult> step();
  RunResult finish_result();  // result so far (after a terminal step)

  // --- Snapshots (cpu/snapshot.cc) ---
  //
  // Capture/restore the complete determinism surface at an instruction
  // boundary. The predecode and translation caches are deliberately excluded:
  // both are tamper-safe (tagged by the fetched word), so a cold cache
  // rebuilds to bit-identical results. Restore requires a Cpu constructed
  // from the same LoadedImage and configuration as the one that saved (the
  // memory delta is relative to the shared page base); recovery mode is not
  // supported (its block checkpoint is orthogonal in-run state).
  void save_snapshot(Snapshot* snapshot) const;
  void restore_snapshot(const Snapshot& snapshot);

  std::uint64_t instructions_retired() const { return result_.instructions; }

  // --- Fault-injection and observation hooks ---
  mem::Memory& memory() { return memory_; }
  mem::FetchPath& fetch_path() { return fetch_; }
  void set_post_id_fault(const PostIdFault& fault) { post_id_fault_ = fault; }
  // Invoked at every IHT lookup with (start, end) — the dynamic block trace.
  using LookupObserver = std::function<void(std::uint32_t, std::uint32_t)>;
  void set_lookup_observer(LookupObserver observer) { observer_ = std::move(observer); }

  // --- State inspection for tests ---
  std::uint32_t gpr(unsigned index) const { return gpr_[index]; }
  std::uint32_t special(uop::SpecialReg reg) const;
  const cic::CodeIntegrityChecker* checker() const { return cic_ ? &*cic_ : nullptr; }
  const os::OsMonitor* os_monitor() const { return os_ ? &*os_ : nullptr; }
  bool running() const { return running_; }
  // Null unless the threaded engine is active (its stats expose translation /
  // hit / invalidation counts for the tamper tests).
  const uop::TranslationCache* translation_cache() const { return tcache_.get(); }
  // Predecode-cache fills (cold slots or tag-mismatch redecodes). Hits are
  // instructions minus misses when the cache is on, so the hot path never
  // pays a per-hit count.
  std::uint64_t predecode_misses() const { return predecode_misses_; }
  // Translation-tag mismatches the threaded engine replayed via interpreter.
  std::uint64_t tcache_mismatches() const { return tcache_mismatches_; }
  // Block transitions that flowed through a cached chain link, and direct-edge
  // block exits that returned to the dispatch loop instead (unlinked edge).
  std::uint64_t chain_follows() const { return chain_follows_; }
  std::uint64_t chain_breaks() const { return chain_breaks_; }
  // Folds this run's engine counters (engine.* names) into the obs registry;
  // called once per finished run by the experiment and campaign layers.
  void publish_metrics() const;

 private:
  // The devirtualized interpreter drives the Datapath members below through
  // a concrete Cpu& (the class is final, so the calls statically bind and
  // inline into the dispatch switch).
  template <typename DP>
  friend void uop::execute_op(const uop::Uop& op, uop::ExecContext& ctx, DP& dp);

  // uop::Datapath implementation.
  std::uint32_t read_special(uop::SpecialReg r) override;
  void write_special(uop::SpecialReg r, std::uint32_t value) override;
  void reset_special(uop::SpecialReg r) override;
  std::uint32_t read_gpr(unsigned index) override;
  void write_gpr(unsigned index, std::uint32_t value) override;
  std::uint32_t fetch_instr(std::uint32_t address) override;
  std::uint32_t load(std::uint32_t address, uop::MemWidth width, bool sign) override;
  void store(std::uint32_t address, uop::MemWidth width, std::uint32_t value) override;
  std::uint32_t hash_step(std::uint32_t old_hash, std::uint32_t instr_word) override;
  uop::IhtLookupResult iht_lookup(std::uint32_t start, std::uint32_t end,
                                  std::uint32_t hash) override;
  void raise_monitor_exception(std::uint8_t code) override;
  void set_pc(std::uint32_t target) override;
  void syscall() override;
  void illegal_instruction() override;

  // Constructor tail for the LoadedImage path (cpu/snapshot.cc — the only
  // translation unit that sees the LoadedImage definition).
  void attach_loaded(const LoadedImage& loaded);

  void terminate(ExitReason reason, std::uint32_t code);
  CICMON_HOT_INLINE void run_fetch_stage();
  CICMON_HOT_INLINE void account_hazards(const isa::Instruction& instr);
  CICMON_HOT_INLINE void account_hazards_entry(const uop::TransEntry& entry);
  void handle_pending_monitor_exception();
  void checkpoint_block(std::uint32_t block_start);
  bool try_rollback();

  // Shared post-fetch tail of one dynamic instruction (ID..WB stages, pending
  // monitor exception, retirement) — the single definition both step() and
  // the threaded engine's interpreter fallback execute through, so the two
  // engines cannot drift. Requires ctx_.instr / ctx_.instr_addr to be set.
  enum class ExecStatus : std::uint8_t { kRetired, kTerminated, kRolledBack };
  ExecStatus exec_stages(const uop::InstrUops* program);

  // --- Threaded engine (fused superinstruction handlers) ---
  // What the block driver does after one fused entry: fall through to the
  // next entry, leave the block along its taken or fall-through edge (the
  // chain-follow candidates), return to the block loop (indirect edge, PC
  // redirect by a generic program, rollback, or tag mismatch handled), or
  // stop (program terminated).
  enum class FusedFlow : std::uint8_t { kNext, kTaken, kFall, kRestart, kDone };
  template <uop::FusedKind K>
  FusedFlow fused_step(const uop::TransEntry& entry);
  // Batched-accounting twin of fused_step for the straight-line kinds only:
  // skips the per-entry watchdog/recovery/post-ID checks (proven impossible
  // by the per-block precheck in run_threaded) and defers the retire/cycle
  // bump to flush_batch. The real fetch path and the tag compare are NOT
  // skipped — tamper safety stays per dynamic instruction.
  template <uop::FusedKind K>
  FusedFlow fused_fast(const uop::TransEntry& entry);
  // Folds the batched straight-line prefix ending just before `next` into
  // result_ (one retired instruction and one base cycle per entry, plus the
  // accumulated dynamic stalls in batch_extra_).
  CICMON_HOT_INLINE void flush_batch(const uop::TransEntry* next);
  // True cycle count after entry `e` retires, while its batch is unflushed.
  CICMON_HOT_INLINE std::uint64_t batched_cycles(const uop::TransEntry* e) const;
  FusedFlow tampered_entry(std::uint32_t word);
  void monitor_block_end();
  RunResult run_threaded();

  CpuConfig config_;
  // Immutable after construction; shared across trial Cpus when constructed
  // from a LoadedImage (building + monitoring-embedding the spec per Cpu is
  // measurable at campaign trial rates).
  std::shared_ptr<const uop::IsaUopSpec> spec_;
  mem::Memory memory_;
  mem::FetchPath fetch_;
  std::optional<cic::CodeIntegrityChecker> cic_;
  std::optional<os::OsMonitor> os_;
  LookupObserver observer_;

  // Reused across instructions: validate_spec guarantees def-before-use
  // within each dynamic instruction, so the temp file is never re-zeroed.
  uop::ExecContext ctx_;

  // Predecode cache, one slot per text word, tagged by the raw fetched word
  // (program == nullptr marks an empty slot).
  struct Predecoded {
    std::uint32_t word = 0;
    const uop::InstrUops* program = nullptr;
    isa::Instruction instr;
  };
  std::vector<Predecoded> predecode_;
  std::uint64_t predecode_misses_ = 0;
  std::uint64_t tcache_mismatches_ = 0;

  // True when the shared IF program structurally matches the canonical
  // Figure 1 shape (plus the Figure 3(b) monitoring tail when monitoring is
  // embedded), letting run_fetch_stage() execute it as straight-line code
  // instead of interpreting six-to-eleven microoperations per fetch. Any
  // other shape falls back to the interpreter, so the uop spec stays the
  // source of truth for machine behaviour.
  bool fast_fetch_ = false;

  // Threaded engine state: the per-mnemonic fused classification, the block
  // translation cache, and the start address of the block being executed
  // (the invalidation key on a tag mismatch). The engine only activates when
  // the IF program is canonical (fast_fetch_): a reshaped fetch program must
  // run through the interpreter.
  uop::FusedTable fused_{};
  std::unique_ptr<uop::TranslationCache> tcache_;
  bool threaded_ = false;
  std::uint32_t cur_block_start_ = 0;
  // Batched accounting state: start of the unflushed straight-line run and
  // the dynamic stall cycles (I-cache, load-use, muldiv) it accumulated.
  const uop::TransEntry* batch_base_ = nullptr;
  std::uint64_t batch_extra_ = 0;
  // Chain telemetry: block transitions that flowed through a cached link vs
  // direct-edge exits that had to return to the dispatch loop.
  std::uint64_t chain_follows_ = 0;
  std::uint64_t chain_breaks_ = 0;

  std::array<std::uint32_t, isa::kNumGpr> gpr_{};
  std::array<std::uint32_t, 7> special_{};  // indexed by SpecialReg

  RunResult result_;
  bool running_ = true;
  bool pc_redirected_ = false;               // set_pc ran this instruction
  std::optional<std::uint8_t> pending_exc_;  // monitor exception raised in ID
  std::optional<PostIdFault> post_id_fault_;
  std::uint64_t hilo_ready_cycle_ = 0;
  // Destination GPR of the immediately preceding load, for load-use stalls
  // (0 = none; register 0 can never be a true dependency).
  unsigned prev_load_dst_ = 0;
  std::uint32_t text_base_ = 0;
  std::uint32_t text_end_ = 0;

  // --- Block-granular checkpoint for recovery mode ---
  struct StoreUndo {
    std::uint32_t address;
    uop::MemWidth width;
    std::uint32_t old_value;
  };
  struct Checkpoint {
    bool valid = false;
    std::uint32_t block_start = 0;
    std::array<std::uint32_t, isa::kNumGpr> gpr{};
    std::uint32_t hi = 0;
    std::uint32_t lo = 0;
    std::size_t console_length = 0;
    std::vector<StoreUndo> store_log;
  };
  Checkpoint checkpoint_;
  bool rolled_back_ = false;
  std::uint32_t retry_block_ = 0;
  unsigned consecutive_retries_ = 0;
};

}  // namespace cicmon::cpu
