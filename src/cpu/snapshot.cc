#include "cpu/snapshot.h"

#include <utility>

#include "hash/hash_unit.h"
#include "os/loader.h"
#include "support/error.h"
#include "uop/monitor_pass.h"

namespace cicmon::cpu {

LoadedImage preload_image(const CpuConfig& config, const casm_::Image& image) {
  LoadedImage out;
  out.entry = image.entry;
  auto spec = std::make_shared<uop::IsaUopSpec>(uop::build_isa_uops());
  mem::Memory memory;
  if (config.monitoring) {
    uop::embed_monitoring(spec.get());
    const std::unique_ptr<hash::HashFunctionUnit> unit =
        hash::make_hash_unit(config.cic.hash_kind, config.cic.hash_key);
    os::LoadedProgram program = os::os_load(image, &memory, *unit);
    out.fht = std::move(program.fht);
    out.fht_was_attached = program.fht_was_attached;
  } else {
    memory.load_image(image);
  }
  out.spec = std::move(spec);
  out.pages = memory.freeze();
  return out;
}

void Cpu::attach_loaded(const LoadedImage& loaded) {
  support::check(loaded.pages != nullptr && loaded.spec != nullptr,
                 "Cpu: LoadedImage is not preloaded");
  support::check(loaded.spec->monitoring_embedded == config_.monitoring,
                 "Cpu: LoadedImage monitoring does not match the configuration");
  spec_ = loaded.spec;
  memory_.set_base(loaded.pages);
  if (config_.monitoring) {
    cic_.emplace(config_.cic);
    os_.emplace(config_.os, loaded.fht);
    special_[static_cast<std::size_t>(uop::SpecialReg::kRhash)] = cic_->rhash_init();
  }
}

void Cpu::save_snapshot(Snapshot* snapshot) const {
  support::check(snapshot != nullptr, "save_snapshot: null snapshot");
  support::check(!config_.recovery.enabled,
                 "snapshots do not support recovery mode (block checkpoints)");
  snapshot->instructions = result_.instructions;
  snapshot->bus_transfers = fetch_.bus_transfers();
  snapshot->gpr = gpr_;
  snapshot->special = special_;
  snapshot->result = result_;
  snapshot->pc_redirected = pc_redirected_;
  snapshot->pending_exc = pending_exc_;
  snapshot->hilo_ready_cycle = hilo_ready_cycle_;
  snapshot->prev_load_dst = prev_load_dst_;
  snapshot->checker.reset();
  if (cic_) snapshot->checker = cic_->save_state();
  snapshot->os_stats.reset();
  if (os_) snapshot->os_stats = os_->stats();
  snapshot->icache.reset();
  if (const mem::ICache* icache = fetch_.icache()) snapshot->icache = icache->save_state();
  snapshot->pending_stall_cycles = fetch_.pending_stall_cycles();
  snapshot->memory_delta = memory_.delta_pages();
}

void Cpu::restore_snapshot(const Snapshot& snapshot) {
  support::check(!config_.recovery.enabled,
                 "snapshots do not support recovery mode (block checkpoints)");
  support::check(snapshot.checker.has_value() == cic_.has_value() &&
                     snapshot.os_stats.has_value() == os_.has_value(),
                 "restore_snapshot: monitoring configuration mismatch");
  support::check(snapshot.icache.has_value() == (fetch_.icache() != nullptr),
                 "restore_snapshot: icache configuration mismatch");
  gpr_ = snapshot.gpr;
  special_ = snapshot.special;
  result_ = snapshot.result;
  running_ = true;
  pc_redirected_ = snapshot.pc_redirected;
  pending_exc_ = snapshot.pending_exc;
  hilo_ready_cycle_ = snapshot.hilo_ready_cycle;
  prev_load_dst_ = snapshot.prev_load_dst;
  if (cic_) cic_->restore_state(*snapshot.checker);
  if (os_) os_->restore_stats(*snapshot.os_stats);
  if (mem::ICache* icache = fetch_.icache()) icache->restore_state(*snapshot.icache);
  fetch_.set_pending_stall_cycles(snapshot.pending_stall_cycles);
  fetch_.set_bus_transfers(snapshot.bus_transfers);
  memory_.restore_pages(snapshot.memory_delta);
  // Predecode and translation caches are left as-is: both are tagged by the
  // fetched word, so stale entries miss and rebuild bit-identically.
}

}  // namespace cicmon::cpu
