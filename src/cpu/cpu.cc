#include "cpu/cpu.h"

#include "obs/metrics.h"
#include "support/bitops.h"
#include "support/error.h"

// Computed-goto threaded dispatch needs the GNU labels-as-values extension;
// CICMON_NO_COMPUTED_GOTO force-selects the devirtualized handler-table
// fallback so CI can keep that path compiled and byte-identical.
#if defined(__GNUC__) && !defined(CICMON_NO_COMPUTED_GOTO)
#define CICMON_THREADED_COMPUTED_GOTO 1
#else
#define CICMON_THREADED_COMPUTED_GOTO 0
#endif

namespace cicmon::cpu {
namespace {

Engine g_default_engine =
#ifdef NDEBUG
    Engine::kThreaded;
#else
    Engine::kSwitch;
#endif
bool g_default_translate_cache = true;
bool g_default_chain = true;

constexpr unsigned kV0 = 2;
constexpr unsigned kA0 = 4;
constexpr unsigned kA1 = 5;

std::size_t sp(uop::SpecialReg r) { return static_cast<std::size_t>(r); }

using isa::consumes_early;

// Structural check that the shared IF program is exactly the canonical
// Figure 1 shape (plus the Figure 3(b) monitoring tail when monitored).
// Checked once at construction; a match lets the fetch stage run as
// straight-line code with identical effects on temps and special registers.
bool is_canonical_fetch(const std::vector<uop::Uop>& fetch, bool monitored) {
  using K = uop::UopKind;
  using S = uop::SpecialReg;
  using G = uop::GuardKind;
  if (fetch.size() != (monitored ? 11U : 6U)) return false;
  const auto plain = [](const uop::Uop& op, K kind) {
    return op.kind == kind && op.stage == uop::Stage::kIF && op.guard == G::kAlways;
  };
  const uop::Uop* op = fetch.data();
  if (!(plain(op[0], K::kReadSpecial) && op[0].special == S::kCpc && op[0].dst == 0)) return false;
  if (!(plain(op[1], K::kFetchInstr) && op[1].dst == 1 && op[1].src_a == 0)) return false;
  if (!(plain(op[2], K::kWriteSpecial) && op[2].special == S::kIReg && op[2].src_a == 1)) return false;
  if (!(plain(op[3], K::kImm) && op[3].imm_kind == uop::ImmKind::kConst && op[3].literal == 4 &&
        op[3].dst == 2)) return false;
  if (!(plain(op[4], K::kAlu) && op[4].alu == uop::AluOp::kAdd && op[4].src_a == 0 &&
        op[4].src_b == 2 && op[4].dst == 3)) return false;
  if (!(plain(op[5], K::kWriteSpecial) && op[5].special == S::kCpc && op[5].src_a == 3)) return false;
  if (!monitored) return true;
  using MT = uop::MonitorTemps;
  if (!(plain(op[6], K::kReadSpecial) && op[6].special == S::kSta && op[6].dst == MT::kStartIf))
    return false;
  if (!(op[7].kind == K::kWriteSpecial && op[7].special == S::kSta && op[7].src_a == 0 &&
        op[7].guard == G::kIfZero && op[7].guard_tmp == MT::kStartIf)) return false;
  if (!(plain(op[8], K::kReadSpecial) && op[8].special == S::kRhash && op[8].dst == MT::kOldHash))
    return false;
  if (!(plain(op[9], K::kHashStep) && op[9].dst == MT::kNewHash && op[9].src_a == MT::kOldHash &&
        op[9].src_b == 1)) return false;
  if (!(plain(op[10], K::kWriteSpecial) && op[10].special == S::kRhash &&
        op[10].src_a == MT::kNewHash)) return false;
  return true;
}

}  // namespace

Engine default_engine() { return g_default_engine; }

void set_default_engine(Engine engine) { g_default_engine = engine; }

bool default_translate_cache() { return g_default_translate_cache; }

void set_default_translate_cache(bool enabled) { g_default_translate_cache = enabled; }

bool default_chain() { return g_default_chain; }

void set_default_chain(bool enabled) { g_default_chain = enabled; }

std::string_view engine_name(Engine engine) {
  return engine == Engine::kThreaded ? "threaded" : "switch";
}

std::string_view exit_reason_name(ExitReason reason) {
  switch (reason) {
    case ExitReason::kExit: return "exit";
    case ExitReason::kMonitorTerminated: return "monitor-terminated";
    case ExitReason::kIllegalInstruction: return "illegal-instruction";
    case ExitReason::kWildPc: return "wild-pc";
    case ExitReason::kSelfCheckFailed: return "self-check-failed";
    case ExitReason::kWatchdog: return "watchdog";
  }
  return "?";
}

Cpu::Cpu(const CpuConfig& config, const casm_::Image& image)
    : Cpu(config, image, nullptr) {}

Cpu::Cpu(const CpuConfig& config, const casm_::Image& image, const LoadedImage* loaded)
    : config_(config), memory_(), fetch_(&memory_, config.icache) {
  if (loaded != nullptr) {
    // Preloaded path: share the spec, read memory through the frozen page
    // base (copy-on-write), and copy the already-recovered FHT — no loader,
    // no hash recomputation. Bit-identical to the loading path below.
    attach_loaded(*loaded);
  } else {
    auto spec = std::make_shared<uop::IsaUopSpec>(uop::build_isa_uops());
    if (config_.monitoring) {
      uop::embed_monitoring(spec.get());
      cic_.emplace(config_.cic);
      os::LoadedProgram program = os::os_load(image, &memory_, cic_->hash_unit());
      os_.emplace(config_.os, std::move(program.fht));
      special_[sp(uop::SpecialReg::kRhash)] = cic_->rhash_init();
    } else {
      memory_.load_image(image);
    }
    spec_ = std::move(spec);
  }
  special_[sp(uop::SpecialReg::kCpc)] = image.entry;
  gpr_[isa::kSp] = casm_::kStackTop;
  gpr_[isa::kGp] = image.data_base;
  text_base_ = image.text_base;
  text_end_ = image.text_end();
  if (config_.predecode_cache) {
    predecode_.resize((text_end_ - text_base_) / 4);
  }
  fast_fetch_ = is_canonical_fetch(spec_->fetch, spec_->monitoring_embedded);
  if (config_.engine == Engine::kThreaded && fast_fetch_) {
    fused_ = uop::build_fused_table(*spec_);
    tcache_ = std::make_unique<uop::TranslationCache>(text_base_, text_end_,
                                                      config_.translate_cache);
    threaded_ = true;
  }
}

Cpu::~Cpu() = default;

std::uint32_t Cpu::special(uop::SpecialReg reg) const { return special_[sp(reg)]; }

std::uint32_t Cpu::read_special(uop::SpecialReg r) { return special_[sp(r)]; }

void Cpu::write_special(uop::SpecialReg r, std::uint32_t value) { special_[sp(r)] = value; }

void Cpu::reset_special(uop::SpecialReg r) {
  // RHASH resets to the HASHFU's initial state (the per-process key for the
  // keyed unit); everything else resets to zero.
  special_[sp(r)] =
      (r == uop::SpecialReg::kRhash && cic_) ? cic_->rhash_init() : 0;
}

std::uint32_t Cpu::read_gpr(unsigned index) { return gpr_[index & 31U]; }

void Cpu::write_gpr(unsigned index, std::uint32_t value) {
  if ((index & 31U) == 0) return;  // r0 is hard-wired to zero
  gpr_[index & 31U] = value;
}

std::uint32_t Cpu::fetch_instr(std::uint32_t address) { return fetch_.fetch(address); }

std::uint32_t Cpu::load(std::uint32_t address, uop::MemWidth width, bool sign) {
  switch (width) {
    case uop::MemWidth::kByte: {
      const std::uint8_t v = memory_.read8(address);
      return sign ? static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(v)))
                  : v;
    }
    case uop::MemWidth::kHalf: {
      const std::uint16_t v = memory_.read16(address);
      return sign
                 ? static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(v)))
                 : v;
    }
    case uop::MemWidth::kWord:
      return memory_.read32(address);
  }
  return 0;
}

void Cpu::store(std::uint32_t address, uop::MemWidth width, std::uint32_t value) {
  if (checkpoint_.valid) {
    std::uint32_t old = 0;
    switch (width) {
      case uop::MemWidth::kByte: old = memory_.read8(address); break;
      case uop::MemWidth::kHalf: old = memory_.read16(address); break;
      case uop::MemWidth::kWord: old = memory_.read32(address); break;
    }
    checkpoint_.store_log.push_back({address, width, old});
  }
  switch (width) {
    case uop::MemWidth::kByte:
      memory_.write8(address, static_cast<std::uint8_t>(value));
      break;
    case uop::MemWidth::kHalf:
      memory_.write16(address, static_cast<std::uint16_t>(value));
      break;
    case uop::MemWidth::kWord:
      memory_.write32(address, value);
      break;
  }
}

std::uint32_t Cpu::hash_step(std::uint32_t old_hash, std::uint32_t instr_word) {
  return cic_->hash_step(old_hash, instr_word);
}

uop::IhtLookupResult Cpu::iht_lookup(std::uint32_t start, std::uint32_t end,
                                     std::uint32_t hash) {
  if (observer_) observer_(start, end);
  return cic_->lookup(start, end, hash);
}

void Cpu::raise_monitor_exception(std::uint8_t code) { pending_exc_ = code; }

void Cpu::set_pc(std::uint32_t target) {
  special_[sp(uop::SpecialReg::kCpc)] = target;
  pc_redirected_ = true;
}

void Cpu::syscall() {
  const auto code = static_cast<casm_::Sys>(gpr_[kV0]);
  const std::uint32_t a0 = gpr_[kA0];
  const std::uint32_t a1 = gpr_[kA1];
  switch (code) {
    case casm_::Sys::kExit:
      terminate(ExitReason::kExit, a0);
      break;
    case casm_::Sys::kPutInt:
      result_.console += std::to_string(static_cast<std::int32_t>(a0));
      break;
    case casm_::Sys::kPutChar:
      result_.console += static_cast<char>(a0);
      break;
    case casm_::Sys::kCheck:
      if (a0 != a1) {
        result_.check_observed = a0;
        result_.check_expected = a1;
        terminate(ExitReason::kSelfCheckFailed, 1);
      }
      break;
  }
}

void Cpu::illegal_instruction() {
  // In recovery mode the decode trap is just another detection point inside
  // the checkpointed region: retry before giving up (a transient fetch fault
  // refetches a valid instruction).
  if (try_rollback()) return;
  terminate(ExitReason::kIllegalInstruction, 0);
}

void Cpu::terminate(ExitReason reason, std::uint32_t code) {
  running_ = false;
  result_.reason = reason;
  result_.exit_code = code;
  if (cic_) result_.iht = cic_->iht().stats();
  if (os_) result_.os = os_->stats();
}

void Cpu::checkpoint_block(std::uint32_t block_start) {
  checkpoint_.valid = true;
  checkpoint_.block_start = block_start;
  checkpoint_.gpr = gpr_;
  checkpoint_.hi = special_[sp(uop::SpecialReg::kHi)];
  checkpoint_.lo = special_[sp(uop::SpecialReg::kLo)];
  checkpoint_.console_length = result_.console.size();
  checkpoint_.store_log.clear();
}

bool Cpu::try_rollback() {
  if (!config_.recovery.enabled || !checkpoint_.valid) return false;
  if (checkpoint_.block_start == retry_block_) {
    if (consecutive_retries_ >= config_.recovery.max_retries_per_block) return false;
    ++consecutive_retries_;
  } else {
    retry_block_ = checkpoint_.block_start;
    consecutive_retries_ = 1;
  }

  // Undo the block's memory effects (reverse order), restore registers and
  // console output, refetch through a cold I-cache, and restart the block.
  for (auto it = checkpoint_.store_log.rbegin(); it != checkpoint_.store_log.rend(); ++it) {
    switch (it->width) {
      case uop::MemWidth::kByte:
        memory_.write8(it->address, static_cast<std::uint8_t>(it->old_value));
        break;
      case uop::MemWidth::kHalf:
        memory_.write16(it->address, static_cast<std::uint16_t>(it->old_value));
        break;
      case uop::MemWidth::kWord:
        memory_.write32(it->address, it->old_value);
        break;
    }
  }
  gpr_ = checkpoint_.gpr;
  special_[sp(uop::SpecialReg::kHi)] = checkpoint_.hi;
  special_[sp(uop::SpecialReg::kLo)] = checkpoint_.lo;
  result_.console.resize(checkpoint_.console_length);
  if (mem::ICache* icache = fetch_.icache()) icache->invalidate_all();

  special_[sp(uop::SpecialReg::kCpc)] = checkpoint_.block_start;
  special_[sp(uop::SpecialReg::kSta)] = 0;
  special_[sp(uop::SpecialReg::kRhash)] = cic_->rhash_init();
  checkpoint_.valid = false;  // a fresh checkpoint is taken on re-entry
  result_.cycles += config_.recovery.recovery_cycles;
  result_.monitor_cycles += config_.recovery.recovery_cycles;
  ++result_.recoveries;
  rolled_back_ = true;
  return true;
}

void Cpu::handle_pending_monitor_exception() {
  if (!pending_exc_.has_value()) return;
  const std::uint8_t code = *pending_exc_;
  pending_exc_.reset();
  const cic::LookupKey key = cic_->last_lookup();
  const os::ExceptionOutcome outcome = (code == uop::kExcHashMiss)
                                           ? os_->handle_hash_miss(key, &cic_->iht())
                                           : os_->handle_hash_mismatch(key);
  result_.cycles += outcome.cycles;
  result_.monitor_cycles += outcome.cycles;
  if (outcome.terminate) {
    // Recovery mode (§7 future work): attempt a block rollback before
    // giving up — transient fetch faults vanish on re-execution.
    if (try_rollback()) return;
    result_.monitor_cause = outcome.cause;
    terminate(ExitReason::kMonitorTerminated, 0);
  }
}

void Cpu::run_fetch_stage() {
  if (!fast_fetch_) {
    uop::execute_ops(std::span<const uop::Uop>(spec_->fetch), ctx_, *this);
    return;
  }
  // Straight-line equivalent of the canonical IF program, verified against
  // the spec at construction. Effects (temps written, special-register
  // traffic, fetch and hash calls) match the interpreter bit for bit.
  auto& t = ctx_.temps;
  const std::uint32_t pc = special_[sp(uop::SpecialReg::kCpc)];
  t[0] = pc;                                     // current_pc = CPC.read()
  const std::uint32_t word = fetch_.fetch(pc);   // instr = IMAU.read(current_pc)
  t[1] = word;
  special_[sp(uop::SpecialReg::kIReg)] = word;   // IReg.write(instr)
  t[2] = 4;
  const std::uint32_t next_pc = pc + 4;
  t[3] = next_pc;
  special_[sp(uop::SpecialReg::kCpc)] = next_pc;  // CPC.inc()
  if (spec_->monitoring_embedded) {
    // Figure 3(b): latch the block start, fold the word into the hash.
    const std::uint32_t start = special_[sp(uop::SpecialReg::kSta)];
    t[uop::MonitorTemps::kStartIf] = start;
    if (start == 0) special_[sp(uop::SpecialReg::kSta)] = pc;
    const std::uint32_t old_hash = special_[sp(uop::SpecialReg::kRhash)];
    t[uop::MonitorTemps::kOldHash] = old_hash;
    const std::uint32_t new_hash = cic_->hash_step(old_hash, word);
    t[uop::MonitorTemps::kNewHash] = new_hash;
    special_[sp(uop::SpecialReg::kRhash)] = new_hash;
  }
}

void Cpu::account_hazards(const isa::Instruction& instr) {
  // Redirect bubble: the front end refetches after a control transfer
  // resolves in ID.
  if (pc_redirected_ && config_.timing.frontend_stages > 1) {
    const std::uint64_t bubble = config_.timing.frontend_stages - 1;
    result_.cycles += bubble;
    result_.branch_bubbles += bubble;
  }

  // Load-use: the previous instruction was a load whose destination this
  // instruction consumes in ID/EX.
  if (prev_load_dst_ != 0 && consumes_early(instr, prev_load_dst_)) {
    result_.cycles += config_.timing.load_use_stall;
    result_.load_use_stalls += config_.timing.load_use_stall;
  }
  prev_load_dst_ = 0;
  if (instr.valid()) {
    const isa::InstrClass cls = instr.info().cls;
    if (cls == isa::InstrClass::kLoad) prev_load_dst_ = instr.rt;
    if (cls == isa::InstrClass::kMulDiv) {
      const bool is_div =
          instr.mnemonic == isa::Mnemonic::kDiv || instr.mnemonic == isa::Mnemonic::kDivu;
      hilo_ready_cycle_ =
          result_.cycles + (is_div ? config_.timing.div_latency : config_.timing.mult_latency);
    }
    if ((instr.mnemonic == isa::Mnemonic::kMfhi || instr.mnemonic == isa::Mnemonic::kMflo) &&
        result_.cycles < hilo_ready_cycle_) {
      const std::uint64_t stall = hilo_ready_cycle_ - result_.cycles;
      result_.cycles += stall;
      result_.muldiv_stalls += stall;
    }
  }
}

void Cpu::account_hazards_entry(const uop::TransEntry& e) {
  // account_hazards against the metadata precomputed at translation time.
  // Fused kinds always carry a valid instruction, so the valid() branch of
  // the generic version is folded into the precompute (invalid words travel
  // through the interpreter as kGeneric / kIllegal).
  if (pc_redirected_ && config_.timing.frontend_stages > 1) {
    const std::uint64_t bubble = config_.timing.frontend_stages - 1;
    result_.cycles += bubble;
    result_.branch_bubbles += bubble;
  }
  if (prev_load_dst_ != 0 &&
      (prev_load_dst_ == e.early_a || prev_load_dst_ == e.early_b)) {
    result_.cycles += config_.timing.load_use_stall;
    result_.load_use_stalls += config_.timing.load_use_stall;
  }
  prev_load_dst_ = e.load_dst;
  if (e.muldiv_lat != 0) {
    hilo_ready_cycle_ = result_.cycles + (e.muldiv_lat == 2 ? config_.timing.div_latency
                                                            : config_.timing.mult_latency);
  }
  if (e.is_mfhilo && result_.cycles < hilo_ready_cycle_) {
    const std::uint64_t stall = hilo_ready_cycle_ - result_.cycles;
    result_.cycles += stall;
    result_.muldiv_stalls += stall;
  }
}

std::optional<RunResult> Cpu::step() {
  if (!running_) return finish_result();

  if (result_.instructions >= config_.max_instructions) {
    terminate(ExitReason::kWatchdog, 0);
    return finish_result();
  }

  const std::uint32_t addr = special_[sp(uop::SpecialReg::kCpc)];
  if (addr < text_base_ || addr >= text_end_ || (addr & 3U) != 0) {
    terminate(ExitReason::kWildPc, 0);
    return finish_result();
  }

  ctx_.instr_addr = addr;

  // A zero STA means this fetch opens a new check region: checkpoint the
  // architectural state so the region can be rolled back (recovery mode).
  if (config_.recovery.enabled && config_.monitoring &&
      special_[sp(uop::SpecialReg::kSta)] == 0) {
    checkpoint_block(addr);
  }

  // --- IF: shared fetch program (hash step included when monitored) ---
  run_fetch_stage();
  const std::uint64_t icache_stall = fetch_.take_stall_cycles();
  result_.cycles += icache_stall;
  result_.icache_stall_cycles += icache_stall;

  std::uint32_t word = ctx_.temps[1];  // the fetched (possibly tampered) word
  if (post_id_fault_.has_value() && result_.instructions == post_id_fault_->index) {
    // The hash above saw the clean word; execution proceeds on the flipped
    // one — a fault in a latch downstream of the check point.
    word ^= post_id_fault_->xor_mask;
  }

  // Predecode cache: tagged by the word the pipeline actually carries, so
  // any tampered or refetched-differently word misses and decodes fresh.
  const uop::InstrUops* program;
  if (!predecode_.empty()) {
    Predecoded& slot = predecode_[(addr - text_base_) / 4];
    if (slot.program == nullptr || slot.word != word) {
      ++predecode_misses_;
      slot.word = word;
      slot.instr = isa::decode(word);
      slot.program = &spec_->program(slot.instr.mnemonic);
    }
    ctx_.instr = slot.instr;
    program = slot.program;
  } else {
    ctx_.instr = isa::decode(word);
    program = &spec_->program(ctx_.instr.mnemonic);
  }

  if (exec_stages(program) == ExecStatus::kTerminated) return finish_result();
  return std::nullopt;  // retired or rolled back; either way, still running
}

Cpu::ExecStatus Cpu::exec_stages(const uop::InstrUops* program) {
  // PPC tracks the instruction occupying ID (Figure 4 reads the block's end
  // address from it).
  special_[sp(uop::SpecialReg::kPpc)] = ctx_.instr_addr;

  pc_redirected_ = false;

  uop::execute_ops(program->stage(uop::Stage::kID), ctx_, *this);
  if (pending_exc_.has_value()) handle_pending_monitor_exception();
  if (!running_) return ExecStatus::kTerminated;
  if (rolled_back_) {
    // The faulting block was rewound; this instruction never happened.
    rolled_back_ = false;
    return ExecStatus::kRolledBack;
  }

  uop::execute_ops(program->stage(uop::Stage::kEX), ctx_, *this);
  if (!running_) return ExecStatus::kTerminated;
  if (const auto mem_ops = program->stage(uop::Stage::kMEM); !mem_ops.empty()) {
    uop::execute_ops(mem_ops, ctx_, *this);
  }
  if (const auto wb_ops = program->stage(uop::Stage::kWB); !wb_ops.empty()) {
    uop::execute_ops(wb_ops, ctx_, *this);
  }
  if (!running_) return ExecStatus::kTerminated;

  ++result_.instructions;
  ++result_.cycles;
  account_hazards(ctx_.instr);
  return ExecStatus::kRetired;
}

RunResult Cpu::finish_result() {
  if (cic_) result_.iht = cic_->iht().stats();
  if (os_) result_.os = os_->stats();
  return result_;
}

void Cpu::publish_metrics() const {
  static const obs::CounterId k_runs = obs::counter("engine.runs");
  static const obs::CounterId k_instructions = obs::counter("engine.instructions");
  static const obs::CounterId k_predecode_misses = obs::counter("engine.predecode.misses");
  static const obs::CounterId k_predecode_hits = obs::counter("engine.predecode.hits");
  static const obs::CounterId k_tcache_hits = obs::counter("engine.tcache.hits");
  static const obs::CounterId k_tcache_translations = obs::counter("engine.tcache.translations");
  static const obs::CounterId k_tcache_invalidations = obs::counter("engine.tcache.invalidations");
  static const obs::CounterId k_tcache_mismatches = obs::counter("engine.tcache.mismatches");
  obs::bump(k_runs);
  obs::bump(k_instructions, result_.instructions);
  if (!predecode_.empty()) {
    obs::bump(k_predecode_misses, predecode_misses_);
    // Hits are derived, not counted: a per-hit bump on the hottest branch in
    // the interpreter would be the whole telemetry overhead budget.
    obs::bump(k_predecode_hits, result_.instructions > predecode_misses_
                                    ? result_.instructions - predecode_misses_
                                    : 0);
  }
  if (tcache_ != nullptr) {
    static const obs::CounterId k_chain_follows = obs::counter("engine.chain.follows");
    static const obs::CounterId k_chain_breaks = obs::counter("engine.chain.breaks");
    static const obs::CounterId k_chain_severed = obs::counter("engine.chain.severed");
    const uop::TranslationCache::Stats& stats = tcache_->stats();
    obs::bump(k_tcache_hits, stats.hits);
    obs::bump(k_tcache_translations, stats.translations);
    obs::bump(k_tcache_invalidations, stats.invalidations);
    obs::bump(k_tcache_mismatches, tcache_mismatches_);
    obs::bump(k_chain_follows, chain_follows_);
    obs::bump(k_chain_breaks, chain_breaks_);
    obs::bump(k_chain_severed, stats.chain_severed);
  }
}

RunResult Cpu::run() {
  if (threaded_) return run_threaded();
  while (running_) {
    if (auto done = step(); done.has_value()) return *done;
  }
  return finish_result();
}

// --- Threaded engine -------------------------------------------------------
//
// One fused handler replaces the per-uop interpretation of one instruction.
// Every handler runs the same prologue as step() — watchdog, checkpoint,
// the real fetch path (hash step, bus, I-cache), stall accounting, post-ID
// fault — then compares the word the pipeline carries against the entry's
// translation tag. A mismatch means the text changed since translation (bus
// tamper, cache-resident flip, memory rewrite, post-ID latch fault): the
// block is invalidated and the fetched word executes through the interpreter,
// so every fault path is bit-identical with the switch engine.

void Cpu::monitor_block_end() {
  // The Figure 4 monitoring head of a flow-control instruction, verified
  // structurally by the classifier against the embedding pass:
  //   <found, match> = IHTbb.lookup(<STA, PPC, RHASH>)
  //   exception0 = [found == 0]; exception1 = [found && !match]
  //   STA.reset(); RHASH.reset()
  const std::uint32_t start = special_[sp(uop::SpecialReg::kSta)];
  const std::uint32_t end = special_[sp(uop::SpecialReg::kPpc)];
  const std::uint32_t hash = special_[sp(uop::SpecialReg::kRhash)];
  const uop::IhtLookupResult lr = iht_lookup(start, end, hash);
  if (!lr.found) {
    pending_exc_ = uop::kExcHashMiss;
  } else if (!lr.match) {
    pending_exc_ = uop::kExcHashMismatch;
  }
  special_[sp(uop::SpecialReg::kSta)] = 0;
  special_[sp(uop::SpecialReg::kRhash)] = cic_->rhash_init();
}

Cpu::FusedFlow Cpu::tampered_entry(std::uint32_t word) {
  // The fetched word diverged from the translation tag. Execute the word the
  // pipeline actually carries through the interpreter (its program carries
  // the monitoring extension, so flow control still checks the block), then
  // return to the block loop, which retranslates from current text.
  ++tcache_mismatches_;
  tcache_->invalidate(cur_block_start_);
  ctx_.instr = isa::decode(word);
  return exec_stages(&spec_->program(ctx_.instr.mnemonic)) == ExecStatus::kTerminated
             ? FusedFlow::kDone
             : FusedFlow::kRestart;
}

template <uop::FusedKind K>
Cpu::FusedFlow Cpu::fused_step(const uop::TransEntry& e) {
  using FK = uop::FusedKind;

  // Prologue: step()'s exact per-instruction order. Mid-block entries skip
  // the wild-PC check only — non-terminators never redirect, and translation
  // never crosses the text end, so e.addr is always a valid text address.
  if (result_.instructions >= config_.max_instructions) {
    terminate(ExitReason::kWatchdog, 0);
    return FusedFlow::kDone;
  }
  ctx_.instr_addr = e.addr;
  if (config_.recovery.enabled && config_.monitoring &&
      special_[sp(uop::SpecialReg::kSta)] == 0) {
    checkpoint_block(e.addr);
  }
  // IF: the real fetch path (bus, I-cache, hash step), exactly as step()
  // runs it. Fused kinds never read the IF temps, so the specialized path
  // keeps the fetched values in locals and skips the ctx_.temps stores;
  // kGeneric hands the entry to the interpreter, whose programs may read
  // them, so it runs the full shared fetch stage. e.addr == CPC here: the
  // block loop enters at CPC and every fall-through fetch set CPC = pc + 4.
  std::uint32_t word;
  [[maybe_unused]] std::uint32_t sta_before = 0, old_hash = 0, new_hash = 0;
  if constexpr (K == FK::kGeneric) {
    run_fetch_stage();
    word = ctx_.temps[1];
  } else {
    word = fetch_.fetch(e.addr);
    special_[sp(uop::SpecialReg::kIReg)] = word;
    special_[sp(uop::SpecialReg::kCpc)] = e.addr + 4;
    if (spec_->monitoring_embedded) {
      sta_before = special_[sp(uop::SpecialReg::kSta)];
      if (sta_before == 0) special_[sp(uop::SpecialReg::kSta)] = e.addr;
      old_hash = special_[sp(uop::SpecialReg::kRhash)];
      new_hash = cic_->hash_step(old_hash, word);
      special_[sp(uop::SpecialReg::kRhash)] = new_hash;
    }
  }
  const std::uint64_t icache_stall = fetch_.take_stall_cycles();
  result_.cycles += icache_stall;
  result_.icache_stall_cycles += icache_stall;

  [[maybe_unused]] const std::uint32_t clean_word = word;
  if (post_id_fault_.has_value() && result_.instructions == post_id_fault_->index) {
    word ^= post_id_fault_->xor_mask;
  }
  if (word != e.word) [[unlikely]] {
    if constexpr (K != FK::kGeneric) {
      // Rebuild the IF temps run_fetch_stage would have written — the
      // interpreter program the fallback runs may read them.
      auto& t = ctx_.temps;
      t[0] = e.addr;
      t[1] = clean_word;
      t[2] = 4;
      t[3] = e.addr + 4;
      if (spec_->monitoring_embedded) {
        t[uop::MonitorTemps::kStartIf] = sta_before;
        t[uop::MonitorTemps::kOldHash] = old_hash;
        t[uop::MonitorTemps::kNewHash] = new_hash;
      }
    }
    return tampered_entry(word);
  }

  special_[sp(uop::SpecialReg::kPpc)] = e.addr;
  pc_redirected_ = false;

  if constexpr (K == FK::kAluRR) {
    write_gpr(e.dst, uop::alu_eval(e.alu, gpr_[e.a], gpr_[e.b]));
  } else if constexpr (K == FK::kAluRI) {
    write_gpr(e.dst, uop::alu_eval(e.alu, gpr_[e.a], e.imm));
  } else if constexpr (K == FK::kImmWrite) {
    write_gpr(e.dst, e.imm);
  } else if constexpr (K == FK::kLoad) {
    write_gpr(e.dst, load(gpr_[e.a] + e.imm, e.width, e.sign_extend));
  } else if constexpr (K == FK::kStore) {
    store(gpr_[e.a] + e.imm, e.width, gpr_[e.b]);
  } else if constexpr (K == FK::kMulDiv) {
    const uop::HiLo r = uop::muldiv_eval(e.muldiv, gpr_[e.a], gpr_[e.b]);
    special_[sp(uop::SpecialReg::kHi)] = r.hi;
    special_[sp(uop::SpecialReg::kLo)] = r.lo;
  } else if constexpr (K == FK::kHiLoRead) {
    write_gpr(e.dst, special_[e.hilo]);
  } else if constexpr (K == FK::kHiLoWrite) {
    special_[e.hilo] = gpr_[e.a];
  } else if constexpr (K == FK::kBranch2 || K == FK::kBranch1 || K == FK::kJump ||
                       K == FK::kJumpReg) {
    // Flow control: the monitoring head runs first (ID order), then the
    // transfer, then the pending exception resolves before any link write —
    // exactly the interpreter's stage order, so a terminated or rolled-back
    // block never observes the link register update.
    if (spec_->monitoring_embedded) monitor_block_end();
    if constexpr (K == FK::kBranch2) {
      if (uop::alu_eval(e.alu, gpr_[e.a], gpr_[e.b]) != 0) set_pc(e.imm);
    } else if constexpr (K == FK::kBranch1) {
      if (uop::alu_eval(e.alu, gpr_[e.a], 0) != 0) set_pc(e.imm);
    } else if constexpr (K == FK::kJump) {
      set_pc(e.imm);
    } else {
      set_pc(gpr_[e.a]);  // target read before the link write: jalr $r, $r
    }
    if (pending_exc_.has_value()) handle_pending_monitor_exception();
    if (!running_) return FusedFlow::kDone;
    if (rolled_back_) {
      rolled_back_ = false;  // the block was rewound; this instruction never happened
      return FusedFlow::kRestart;
    }
    if (e.link) write_gpr(e.dst, e.addr + 4);
    ++result_.instructions;
    ++result_.cycles;
    account_hazards_entry(e);
    // Direct edges report which way the block exited so the block loop can
    // follow (or install) the matching chain link; the indirect jump-register
    // edge always returns to the loop for a fresh lookup.
    if constexpr (K == FK::kBranch2 || K == FK::kBranch1) {
      return pc_redirected_ ? FusedFlow::kTaken : FusedFlow::kFall;
    } else if constexpr (K == FK::kJump) {
      return FusedFlow::kTaken;
    } else {
      return FusedFlow::kRestart;
    }
  } else if constexpr (K == FK::kSyscall) {
    syscall();
    if (!running_) return FusedFlow::kDone;
    ++result_.instructions;
    ++result_.cycles;
    account_hazards_entry(e);
    return FusedFlow::kRestart;
  } else if constexpr (K == FK::kIllegal) {
    illegal_instruction();  // rolls the block back or terminates
    if (!running_) return FusedFlow::kDone;
    rolled_back_ = false;  // rollback succeeded; the trap never retired
    return FusedFlow::kRestart;
  } else {
    static_assert(K == FK::kGeneric);
    // Unmatched program shape (or a force-terminated block tail): run the
    // instruction through the interpreter, sharing exec_stages with step().
    // A retire without a PC redirect is a fall-through to the next word —
    // the chainable edge resolve_edges precomputed for generic terminators.
    ctx_.instr = e.instr;
    const ExecStatus status = exec_stages(e.program);
    if (status == ExecStatus::kTerminated) return FusedFlow::kDone;
    if (status == ExecStatus::kRolledBack) return FusedFlow::kRestart;
    return pc_redirected_ ? FusedFlow::kRestart : FusedFlow::kFall;
  }

  // Straight-line kinds retire here and fall through to the next entry.
  ++result_.instructions;
  ++result_.cycles;
  account_hazards_entry(e);
  return FusedFlow::kNext;
}

void Cpu::flush_batch(const uop::TransEntry* next) {
  // Entries [batch_base_, next) retired through the fast handlers: one
  // instruction and one base cycle each, plus the dynamic stalls (I-cache,
  // load-use, muldiv) accumulated in batch_extra_. The stat breakdown
  // counters (icache_stall_cycles, load_use_stalls, muldiv_stalls) were
  // bumped as they happened — only the aggregates were deferred.
  const std::uint64_t retired = static_cast<std::uint64_t>(next - batch_base_);
  result_.instructions += retired;
  result_.cycles += retired + batch_extra_;
  batch_base_ = next;
  batch_extra_ = 0;
}

std::uint64_t Cpu::batched_cycles(const uop::TransEntry* e) const {
  // The cycle count the slow path would show right after entry `e` retires
  // (base cycle per batched entry, dynamic stalls in batch_extra_) — the
  // clock the muldiv latency model runs on.
  return result_.cycles + static_cast<std::uint64_t>(e - batch_base_ + 1) + batch_extra_;
}

template <uop::FusedKind K>
Cpu::FusedFlow Cpu::fused_fast(const uop::TransEntry& e) {
  using FK = uop::FusedKind;
  static_assert(!uop::is_block_terminator(K));

  // Batched prologue. The per-block precheck in run_threaded proved the
  // watchdog cannot trip inside the straight-line run, no post-ID fault
  // lands on one of its dynamic indices, and recovery checkpointing is off;
  // straight-line kinds never redirect, raise, or read PPC/instr_addr. So
  // the per-entry watchdog/recovery/post-ID checks and the instr_addr/PPC/
  // pc_redirected_ stores are all skipped. The real fetch path and the tag
  // compare are NOT skipped — tamper safety stays per dynamic instruction.
  const std::uint32_t word = fetch_.fetch(e.addr);
  special_[sp(uop::SpecialReg::kIReg)] = word;
  special_[sp(uop::SpecialReg::kCpc)] = e.addr + 4;
  [[maybe_unused]] std::uint32_t sta_before = 0, old_hash = 0, new_hash = 0;
  if (spec_->monitoring_embedded) {
    sta_before = special_[sp(uop::SpecialReg::kSta)];
    if (sta_before == 0) special_[sp(uop::SpecialReg::kSta)] = e.addr;
    old_hash = special_[sp(uop::SpecialReg::kRhash)];
    new_hash = cic_->hash_step(old_hash, word);
    special_[sp(uop::SpecialReg::kRhash)] = new_hash;
  }
  if (const std::uint64_t icache_stall = fetch_.take_stall_cycles(); icache_stall != 0) {
    batch_extra_ += icache_stall;
    result_.icache_stall_cycles += icache_stall;
  }

  if (word != e.word) [[unlikely]] {
    // Same fallback as the slow handler: rebuild the IF temps the fallback
    // program may read, fold the batched prefix into result_ (this entry has
    // not retired), and replay the word through the interpreter.
    ctx_.instr_addr = e.addr;
    auto& t = ctx_.temps;
    t[0] = e.addr;
    t[1] = word;
    t[2] = 4;
    t[3] = e.addr + 4;
    if (spec_->monitoring_embedded) {
      t[uop::MonitorTemps::kStartIf] = sta_before;
      t[uop::MonitorTemps::kOldHash] = old_hash;
      t[uop::MonitorTemps::kNewHash] = new_hash;
    }
    flush_batch(&e);
    return tampered_entry(word);
  }

  if constexpr (K == FK::kAluRR) {
    write_gpr(e.dst, uop::alu_eval(e.alu, gpr_[e.a], gpr_[e.b]));
  } else if constexpr (K == FK::kAluRI) {
    write_gpr(e.dst, uop::alu_eval(e.alu, gpr_[e.a], e.imm));
  } else if constexpr (K == FK::kImmWrite) {
    write_gpr(e.dst, e.imm);
  } else if constexpr (K == FK::kLoad) {
    write_gpr(e.dst, load(gpr_[e.a] + e.imm, e.width, e.sign_extend));
  } else if constexpr (K == FK::kStore) {
    store(gpr_[e.a] + e.imm, e.width, gpr_[e.b]);
  } else if constexpr (K == FK::kMulDiv) {
    const uop::HiLo r = uop::muldiv_eval(e.muldiv, gpr_[e.a], gpr_[e.b]);
    special_[sp(uop::SpecialReg::kHi)] = r.hi;
    special_[sp(uop::SpecialReg::kLo)] = r.lo;
  } else if constexpr (K == FK::kHiLoRead) {
    write_gpr(e.dst, special_[e.hilo]);
  } else {
    static_assert(K == FK::kHiLoWrite);
    special_[e.hilo] = gpr_[e.a];
  }

  // account_hazards_entry against the deferred clock: stalls accumulate in
  // batch_extra_, the latency model reads batched_cycles (== what the slow
  // path's result_.cycles would be here), and the breakdown counters are
  // exact. No redirect bubble: straight-line kinds never redirect.
  if (prev_load_dst_ != 0 &&
      (prev_load_dst_ == e.early_a || prev_load_dst_ == e.early_b)) {
    batch_extra_ += config_.timing.load_use_stall;
    result_.load_use_stalls += config_.timing.load_use_stall;
  }
  prev_load_dst_ = e.load_dst;
  if constexpr (K == FK::kMulDiv) {
    hilo_ready_cycle_ = batched_cycles(&e) + (e.muldiv_lat == 2 ? config_.timing.div_latency
                                                                : config_.timing.mult_latency);
  }
  if constexpr (K == FK::kHiLoRead) {
    if (const std::uint64_t now = batched_cycles(&e); e.is_mfhilo && now < hilo_ready_cycle_) {
      const std::uint64_t stall = hilo_ready_cycle_ - now;
      batch_extra_ += stall;
      result_.muldiv_stalls += stall;
    }
  }
  return FusedFlow::kNext;
}

RunResult Cpu::run_threaded() {
  // Chaining requires a persistent cache: scratch blocks are re-used by the
  // next translation, so disabled-cache mode never links.
  const bool chain_on = config_.chain && tcache_->enabled();
  // Recovery checkpoints key on "STA == 0 at fetch", a per-instruction
  // predicate the batched prologue elides — recovery runs force the slow
  // handlers for every entry.
  const bool slow_only = config_.recovery.enabled && config_.monitoring;
  // A direct-edge block exit whose successor was not yet linked: the link is
  // installed right after the next lookup/translate produces that successor.
  uop::TranslatedBlock* link_from = nullptr;
  bool link_taken = false;
  while (running_) {
    if (result_.instructions >= config_.max_instructions) {
      terminate(ExitReason::kWatchdog, 0);
      break;
    }
    const std::uint32_t addr = special_[sp(uop::SpecialReg::kCpc)];
    if (addr < text_base_ || addr >= text_end_ || (addr & 3U) != 0) {
      terminate(ExitReason::kWildPc, 0);
      break;
    }

    uop::TranslatedBlock* block = tcache_->lookup(addr);
    if (block == nullptr) {
      // Translation peeks words straight out of memory: no bus traffic, no
      // I-cache fills, no hash folding. All architectural fetch effects
      // happen per entry inside fused_step, through the real fetch path.
      block = tcache_->translate(
          addr, *spec_, fused_, [this](std::uint32_t a) { return memory_.read32(a); });
    }
    if (link_from != nullptr) {
      // chain() re-verifies that this block really is the recorded edge
      // target before installing the link.
      if (chain_on) tcache_->chain(link_from, link_taken, block);
      link_from = nullptr;
    }

    FusedFlow flow = FusedFlow::kRestart;
    const uop::TransEntry* e;
    bool use_fast;
  enter_block:
    cur_block_start_ = block->start;
    e = block->entries.data();
    // Batched accounting is only valid when nothing can interrupt the
    // straight-line prefix: the watchdog must not trip inside it, no post-ID
    // fault may land on one of its dynamic indices, and recovery is off. The
    // terminator always runs its slow handler, which re-checks everything
    // against the flushed counters.
    use_fast = !slow_only &&
               result_.instructions + block->straight_len <= config_.max_instructions &&
               (!post_id_fault_.has_value() ||
                post_id_fault_->index < result_.instructions ||
                post_id_fault_->index >= result_.instructions + block->straight_len);
    batch_base_ = e;

#if CICMON_THREADED_COMPUTED_GOTO
    {
      // Threaded dispatch: each handler jumps straight to the next entry's
      // handler. Blocks always end in a terminator entry (the translator
      // force-converts capped tails to kGeneric), so ++e never runs off the
      // end. Both label tables must match the FusedKind enumerator order.
      static const void* const kSlowLabels[uop::kNumFusedKinds] = {
          &&l_alu_rr,  &&l_alu_ri,    &&l_imm_write,  &&l_load,    &&l_store,
          &&l_muldiv,  &&l_hilo_read, &&l_hilo_write, &&l_branch2, &&l_branch1,
          &&l_jump,    &&l_jump_reg,  &&l_syscall,    &&l_illegal, &&l_generic};
      // Fast table: batched handlers for the eight straight-line kinds; the
      // seven terminator kinds detour through l_flush, which folds the batch
      // into result_ and re-dispatches to the slow handler.
      static const void* const kFastLabels[uop::kNumFusedKinds] = {
          &&f_alu_rr,  &&f_alu_ri,    &&f_imm_write,  &&f_load,    &&f_store,
          &&f_muldiv,  &&f_hilo_read, &&f_hilo_write, &&l_flush,   &&l_flush,
          &&l_flush,   &&l_flush,     &&l_flush,      &&l_flush,   &&l_flush};
      const void* const* labels = use_fast ? kFastLabels : kSlowLabels;
      goto* labels[static_cast<unsigned>(e->kind)];
#define CICMON_HANDLE(label, fn, fk)                                \
  label:                                                            \
  flow = fn<uop::FusedKind::fk>(*e);                                \
  if (flow == FusedFlow::kNext) {                                   \
    ++e;                                                            \
    goto* labels[static_cast<unsigned>(e->kind)];                   \
  }                                                                 \
  goto block_done
      CICMON_HANDLE(l_alu_rr, fused_step, kAluRR);
      CICMON_HANDLE(l_alu_ri, fused_step, kAluRI);
      CICMON_HANDLE(l_imm_write, fused_step, kImmWrite);
      CICMON_HANDLE(l_load, fused_step, kLoad);
      CICMON_HANDLE(l_store, fused_step, kStore);
      CICMON_HANDLE(l_muldiv, fused_step, kMulDiv);
      CICMON_HANDLE(l_hilo_read, fused_step, kHiLoRead);
      CICMON_HANDLE(l_hilo_write, fused_step, kHiLoWrite);
      CICMON_HANDLE(l_branch2, fused_step, kBranch2);
      CICMON_HANDLE(l_branch1, fused_step, kBranch1);
      CICMON_HANDLE(l_jump, fused_step, kJump);
      CICMON_HANDLE(l_jump_reg, fused_step, kJumpReg);
      CICMON_HANDLE(l_syscall, fused_step, kSyscall);
      CICMON_HANDLE(l_illegal, fused_step, kIllegal);
      CICMON_HANDLE(l_generic, fused_step, kGeneric);
      CICMON_HANDLE(f_alu_rr, fused_fast, kAluRR);
      CICMON_HANDLE(f_alu_ri, fused_fast, kAluRI);
      CICMON_HANDLE(f_imm_write, fused_fast, kImmWrite);
      CICMON_HANDLE(f_load, fused_fast, kLoad);
      CICMON_HANDLE(f_store, fused_fast, kStore);
      CICMON_HANDLE(f_muldiv, fused_fast, kMulDiv);
      CICMON_HANDLE(f_hilo_read, fused_fast, kHiLoRead);
      CICMON_HANDLE(f_hilo_write, fused_fast, kHiLoWrite);
#undef CICMON_HANDLE
    l_flush:
      flush_batch(e);
      goto* kSlowLabels[static_cast<unsigned>(e->kind)];
    block_done:;
    }
#else
    // Devirtualized fallback: handler tables over the same fused_step /
    // fused_fast instantiations, so the two dispatch strategies cannot
    // diverge.
    {
      using Handler = FusedFlow (Cpu::*)(const uop::TransEntry&);
      static constexpr Handler kSlowHandlers[uop::kNumFusedKinds] = {
          &Cpu::fused_step<uop::FusedKind::kAluRR>,
          &Cpu::fused_step<uop::FusedKind::kAluRI>,
          &Cpu::fused_step<uop::FusedKind::kImmWrite>,
          &Cpu::fused_step<uop::FusedKind::kLoad>,
          &Cpu::fused_step<uop::FusedKind::kStore>,
          &Cpu::fused_step<uop::FusedKind::kMulDiv>,
          &Cpu::fused_step<uop::FusedKind::kHiLoRead>,
          &Cpu::fused_step<uop::FusedKind::kHiLoWrite>,
          &Cpu::fused_step<uop::FusedKind::kBranch2>,
          &Cpu::fused_step<uop::FusedKind::kBranch1>,
          &Cpu::fused_step<uop::FusedKind::kJump>,
          &Cpu::fused_step<uop::FusedKind::kJumpReg>,
          &Cpu::fused_step<uop::FusedKind::kSyscall>,
          &Cpu::fused_step<uop::FusedKind::kIllegal>,
          &Cpu::fused_step<uop::FusedKind::kGeneric>};
      // Fast handlers cover only the eight straight-line kinds (enumerator
      // indices 0..7); terminators flush the batch and run slow.
      static constexpr Handler kFastHandlers[8] = {
          &Cpu::fused_fast<uop::FusedKind::kAluRR>,
          &Cpu::fused_fast<uop::FusedKind::kAluRI>,
          &Cpu::fused_fast<uop::FusedKind::kImmWrite>,
          &Cpu::fused_fast<uop::FusedKind::kLoad>,
          &Cpu::fused_fast<uop::FusedKind::kStore>,
          &Cpu::fused_fast<uop::FusedKind::kMulDiv>,
          &Cpu::fused_fast<uop::FusedKind::kHiLoRead>,
          &Cpu::fused_fast<uop::FusedKind::kHiLoWrite>};
      for (;;) {
        const auto kind = static_cast<unsigned>(e->kind);
        if (use_fast) {
          if (uop::is_block_terminator(e->kind)) {
            flush_batch(e);
            flow = (this->*kSlowHandlers[kind])(*e);
          } else {
            flow = (this->*kFastHandlers[kind])(*e);
          }
        } else {
          flow = (this->*kSlowHandlers[kind])(*e);
        }
        if (flow != FusedFlow::kNext) break;
        ++e;
      }
    }
#endif

    if (flow == FusedFlow::kTaken || flow == FusedFlow::kFall) {
      const bool taken = flow == FusedFlow::kTaken;
      uop::TranslatedBlock* next = taken ? block->taken : block->fall;
      if (next != nullptr) {
        // Chain follow: flow straight into the successor. The watchdog is
        // covered by the per-block precheck plus the slow terminator
        // handlers, and the link target was verified to be a text address
        // when the edge was resolved — the outer loop's checks are
        // subsumed, not skipped.
        ++chain_follows_;
        block = next;
        goto enter_block;
      }
      if (chain_on) {
        ++chain_breaks_;
        if (taken ? block->has_taken : block->has_fall) {
          link_from = block;
          link_taken = taken;
        }
      }
    }
  }
  return finish_result();
}

}  // namespace cicmon::cpu
