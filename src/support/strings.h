// Small string utilities used by the assembler and reporters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cicmon::support {

// Removes leading/trailing whitespace.
std::string_view trim(std::string_view text);

// Splits on any character in `separators`, dropping empty fields.
std::vector<std::string_view> split(std::string_view text, std::string_view separators);

// Case-sensitive prefix test.
bool starts_with(std::string_view text, std::string_view prefix);

// Lower-cases ASCII.
std::string to_lower(std::string_view text);

// Parses a signed integer literal with optional 0x/0b prefix and +/- sign.
// Returns false on malformed input or overflow of int64.
bool parse_int(std::string_view text, std::int64_t* out);

// Strict decimal unsigned parse: the whole string must be digits, no sign,
// prefix, or trailing garbage. Returns false on malformed input or overflow.
// This is the validator for numeric fields of machine artifacts, where
// anything lax would let tampered values slip through as zero.
bool parse_u64(std::string_view text, std::uint64_t* out);

// printf-style hex rendering of a 32-bit word, e.g. "0x0040001c".
std::string hex32(std::uint32_t value);

// Levenshtein edit distance (insert/delete/substitute, unit costs). Used for
// "did you mean ...?" suggestions on mistyped CLI names.
std::size_t edit_distance(std::string_view a, std::string_view b);

}  // namespace cicmon::support
