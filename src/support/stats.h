// Lightweight statistics containers used by the simulator and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cicmon::support {

// Streaming mean / min / max / variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = (count_ == 1) ? x : std::min(min_, x);
    max_ = (count_ == 1) ? x : std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Integer-keyed histogram (e.g. reuse distances, basic-block lengths).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1) { bins_[key] += weight; }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, v] : bins_) t += v;
    return t;
  }

  // Fraction of total mass at keys <= `key`.
  double cdf_at(std::int64_t key) const {
    const std::uint64_t t = total();
    if (t == 0) return 0.0;
    std::uint64_t acc = 0;
    for (const auto& [k, v] : bins_) {
      if (k > key) break;
      acc += v;
    }
    return static_cast<double>(acc) / static_cast<double>(t);
  }

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
};

// Named monotonically increasing event counters, used for simulator stats.
class CounterSet {
 public:
  void bump(const std::string& name, std::uint64_t amount = 1) { counters_[name] += amount; }
  std::uint64_t value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace cicmon::support
