// Lightweight statistics containers used by the simulator and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cicmon::support {

// Streaming mean / min / max / variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = (count_ == 1) ? x : std::min(min_, x);
    max_ = (count_ == 1) ? x : std::max(max_, x);
  }

  // Combine another accumulator into this one (parallel Welford / Chan et
  // al.), as if every sample fed to `other` had been fed here too.
  void merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const std::uint64_t n = count_ + other.count_;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / static_cast<double>(n);
    mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Integer-keyed histogram (e.g. reuse distances, basic-block lengths).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1) { bins_[key] += weight; }

  // Bin-wise accumulation of another histogram into this one.
  void merge(const Histogram& other) {
    for (const auto& [k, v] : other.bins_) bins_[k] += v;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, v] : bins_) t += v;
    return t;
  }

  // Fraction of total mass at keys <= `key`.
  double cdf_at(std::int64_t key) const {
    const std::uint64_t t = total();
    if (t == 0) return 0.0;
    std::uint64_t acc = 0;
    for (const auto& [k, v] : bins_) {
      if (k > key) break;
      acc += v;
    }
    return static_cast<double>(acc) / static_cast<double>(t);
  }

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
};

// Named monotonically increasing event counters, used for simulator stats.
//
// Two access paths: the string API walks the name map on every call (fine
// for cold paths and reads), while `intern` returns a stable dense Id whose
// `bump(Id, n)` is one vector index — register once, bump O(1) forever.
class CounterSet {
 public:
  class Id {
   public:
    Id() = default;

   private:
    friend class CounterSet;
    explicit Id(std::size_t index) : index_(index) {}
    std::size_t index_ = static_cast<std::size_t>(-1);
  };

  // Returns a dense handle for `name`, creating the counter (at zero) on
  // first sight. Handles stay valid for the CounterSet's lifetime.
  Id intern(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, by_id_.size());
    if (inserted) {
      by_id_.push_back(0);
      names_.push_back(name);
    }
    return Id(it->second);
  }

  void bump(Id id, std::uint64_t amount = 1) { by_id_[id.index_] += amount; }
  std::uint64_t value(Id id) const { return by_id_[id.index_]; }

  void bump(const std::string& name, std::uint64_t amount = 1) { by_id_[intern(name).index_] += amount; }
  std::uint64_t value(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? 0 : by_id_[it->second];
  }
  std::map<std::string, std::uint64_t> all() const {
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < by_id_.size(); ++i) out.emplace(names_[i], by_id_[i]);
    return out;
  }

 private:
  std::map<std::string, std::size_t> ids_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> by_id_;
};

}  // namespace cicmon::support
