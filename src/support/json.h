// Deterministic JSON writing and a small reader for machine artifacts.
//
// Every machine-readable document the repo emits (the `cicmon-bench-v1`
// bench output, the `cicmon-shard-v1` partial-summary artifacts of the
// sweep engine) flows through JsonWriter, so formatting is byte-stable
// across subcommands and hosts: two-space indentation, keys in insertion
// order, integers in decimal, and doubles in shortest round-trip form
// (std::to_chars), which guarantees parse(format(x)) == x bitwise — the
// property the sweep engine's byte-identical merge rests on.
//
// JsonValue/parse_json is the matching reader, sized for those artifacts:
// the full JSON grammar, order-preserving objects, and numbers kept as raw
// token text so 64-bit integers survive beyond the double-exact range.
// Malformed input throws CicError with a byte offset, which the sweep
// engine surfaces as "corrupt artifact".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cicmon::support {

class JsonWriter {
 public:
  // --- Values (also used for array elements) ---
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void value(std::string_view text);  // quoted + escaped
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool boolean);
  void value_u64(std::uint64_t number);
  void value_i64(std::int64_t number);
  // Shortest form that parses back to exactly the same double.
  void value(double number);
  // Fixed-precision rendering ("%.3f") for host measurements where
  // readability beats round-tripping.
  void value_fixed(double number, int precision);

  // --- Object members: key() followed by exactly one value ---
  void key(std::string_view name);

  // The finished document (call after the outermost end_*). A trailing
  // newline is appended so artifacts are friendly to line tools.
  std::string take();

 private:
  void begin_item();  // comma/newline/indent bookkeeping before a value
  void append_escaped(std::string_view text);

  std::string out_;
  // One entry per open container: the count of items emitted so far, or -1
  // marking "a key was just written, the next value is inline".
  std::vector<int> stack_;
  bool after_key_ = false;
};

// --- Reader -----------------------------------------------------------

struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  // string payload, or the raw number token
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  // Typed accessors; each throws CicError naming the expected kind.
  bool as_bool() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_f64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  // Object member lookup; `at` throws CicError on a missing key, `find`
  // returns nullptr.
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;
};

// Parses one JSON document (trailing whitespace allowed, anything else is an
// error). Throws CicError with the byte offset of the problem.
JsonValue parse_json(std::string_view text);

}  // namespace cicmon::support
