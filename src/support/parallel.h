// Deterministic parallel execution engine.
//
// Every experiment in this repo (fault campaigns, the §6 table/figure
// sweeps) is a fan-out over independent cells whose results are gathered by
// index, so parallel execution can be — and here is required to be —
// bit-identical to the serial run. The engine therefore never lets thread
// scheduling touch result order or random-number consumption: callers
// pre-derive any per-cell RNG stream from (seed, index) and write results
// into index `i` of an output vector.
//
// `TaskPool` is a small work-stealing pool: each worker owns a deque, pushes
// and pops at its back, and steals from the front of the others when its own
// runs dry. `parallel_for` layers a blocked index loop on top and is the
// API almost all callers want.
//
// Job-count contract (`--jobs` / CICMON_JOBS): 0 means "resolve a default"
// (the CICMON_JOBS environment variable if set, otherwise hardware
// concurrency); 1 executes inline on the calling thread — the exact legacy
// serial path, no pool, no worker threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cicmon::support {

// Hard ceiling on worker threads: campaigns can ask for thousands of cells,
// and an unchecked job count that large would exhaust thread resources (and
// std::thread then throws, not returns). Oversubscription past this point
// has no upside for CPU-bound simulation anyway.
inline constexpr unsigned kMaxJobs = 256;

// Resolves a requested job count to an effective one. `requested` > 0 wins;
// otherwise the CICMON_JOBS environment variable (if a positive integer);
// otherwise std::thread::hardware_concurrency(). Never returns 0, never
// returns more than kMaxJobs.
unsigned resolve_jobs(unsigned requested = 0);

// Work-stealing thread pool. Construction spawns `threads` workers; tasks
// submitted before or after workers start are distributed round-robin and
// rebalance by stealing. `wait()` blocks until every submitted task has
// finished and rethrows the first task exception, if any (remaining tasks
// are skipped once a task has thrown).
class TaskPool {
 public:
  explicit TaskPool(unsigned threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  void submit(std::function<void()> task);
  void wait();
  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool pop_own(unsigned self, std::function<void()>& task);
  bool steal_other(unsigned self, std::function<void()>& task);
  void worker_loop(unsigned self);
  void run_task(const std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex control_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;     // submitted but not yet finished
  std::size_t next_queue_ = 0;  // round-robin submission cursor
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

// Invokes `body(i)` for every i in [0, n), spread over `jobs` threads
// (resolved via resolve_jobs). Indices are processed in contiguous blocks so
// per-index overhead stays small while stealing balances uneven cells.
// jobs == 1 runs the plain `for` loop on the caller's thread. The first
// exception thrown by any invocation is rethrown on the caller; pending
// blocks are abandoned. Determinism is the caller's side of the contract:
// `body` must derive everything it needs from `i` alone and write results
// only to slot `i`.
void parallel_for(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& body);

}  // namespace cicmon::support
