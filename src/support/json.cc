#include "support/json.h"

#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"

namespace cicmon::support {

// --- JsonWriter --------------------------------------------------------

void JsonWriter::begin_item() {
  if (after_key_) {
    after_key_ = false;
    return;  // value sits on the key's line
  }
  if (!stack_.empty()) {
    if (stack_.back() > 0) out_ += ',';
    ++stack_.back();
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
}

void JsonWriter::begin_object() {
  begin_item();
  out_ += '{';
  stack_.push_back(0);
}

void JsonWriter::end_object() {
  check(!stack_.empty() && !after_key_, "JsonWriter: unbalanced end_object");
  const bool empty = stack_.back() == 0;
  stack_.pop_back();
  if (!empty) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += '}';
}

void JsonWriter::begin_array() {
  begin_item();
  out_ += '[';
  stack_.push_back(0);
}

void JsonWriter::end_array() {
  check(!stack_.empty() && !after_key_, "JsonWriter: unbalanced end_array");
  const bool empty = stack_.back() == 0;
  stack_.pop_back();
  if (!empty) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += ']';
}

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::value(std::string_view text) {
  begin_item();
  append_escaped(text);
}

void JsonWriter::value(bool boolean) {
  begin_item();
  out_ += boolean ? "true" : "false";
}

void JsonWriter::value_u64(std::uint64_t number) {
  begin_item();
  out_ += std::to_string(number);
}

void JsonWriter::value_i64(std::int64_t number) {
  begin_item();
  out_ += std::to_string(number);
}

void JsonWriter::value(double number) {
  begin_item();
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, number);
  out_.append(buffer, result.ptr);
}

void JsonWriter::value_fixed(double number, int precision) {
  begin_item();
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, number);
  out_ += buffer;
}

void JsonWriter::key(std::string_view name) {
  check(!stack_.empty() && !after_key_, "JsonWriter: key outside an object");
  begin_item();
  append_escaped(name);
  out_ += ": ";
  after_key_ = true;
}

std::string JsonWriter::take() {
  check(stack_.empty() && !after_key_, "JsonWriter: document not closed");
  out_ += '\n';
  return std::move(out_);
}

// --- Reader ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw CicError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    // Containers recurse; bound the depth so a corrupt artifact full of
    // "[[[[..." throws instead of overflowing the stack.
    if (depth_ > kMaxDepth) fail("nesting deeper than 64 levels");
    ++depth_;
    JsonValue value = parse_value_inner();
    --depth_;
    return value;
  }

  JsonValue parse_value_inner() {
    skip_space();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue value;
        value.kind = JsonValue::Kind::kString;
        value.text = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.kind = JsonValue::Kind::kBool;
        value.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false")) fail("bad literal");
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Artifacts only escape control characters; encode BMP code points
          // as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > before;
    };
    if (!digits()) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail("bad number exponent");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.text = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  static constexpr unsigned kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned depth_ = 0;
};

[[noreturn]] void wrong_kind(const char* expected) {
  throw CicError(std::string("json: value is not ") + expected);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) wrong_kind("a bool");
  return boolean;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) wrong_kind("a number");
  std::uint64_t out = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    wrong_kind("an unsigned integer");
  }
  return out;
}

std::int64_t JsonValue::as_i64() const {
  if (kind != Kind::kNumber) wrong_kind("a number");
  std::int64_t out = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    wrong_kind("a signed integer");
  }
  return out;
}

double JsonValue::as_f64() const {
  if (kind != Kind::kNumber) wrong_kind("a number");
  // strtod over from_chars: glibc's strtod is correctly rounded, so the
  // shortest-form doubles JsonWriter emits parse back bit-exactly.
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) wrong_kind("a double");
  return out;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) wrong_kind("a string");
  return text;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind != Kind::kArray) wrong_kind("an array");
  return array;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind != Kind::kObject) wrong_kind("an object");
  return object;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) wrong_kind("an object");
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) throw CicError("json: missing key '" + std::string(key) + "'");
  return *value;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace cicmon::support
