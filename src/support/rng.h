// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (fault-injection sites, workload
// input generation, randomized replacement policies) draws from Xoroshiro128pp
// seeded explicitly, so experiment tables are bit-reproducible across runs and
// hosts. std::mt19937 is avoided because distribution implementations differ
// between standard libraries.
#pragma once

#include <cstdint>

#include "support/bitops.h"

namespace cicmon::support {

// SplitMix64 finalizer (Steele et al.), the mixing core of both Rng seeding
// and stream derivation.
constexpr std::uint64_t splitmix64_finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Derives an independent stream seed from a base seed and a stream index.
// Used by the parallel experiment engine to give every trial its own RNG, so
// results depend only on (seed, index) — never on which thread ran the trial
// or in what order.
constexpr std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream) {
  return splitmix64_finalize(seed + 0x9E3779B97F4A7C15ULL * (stream + 1));
}

// xoroshiro128++ (Blackman & Vigna). Small state, excellent statistical
// quality for simulation purposes, and fully portable output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, the reference recommendation for xoroshiro.
    auto next_seed = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      return splitmix64_finalize(seed);
    };
    state0_ = next_seed();
    state1_ = next_seed();
    if (state0_ == 0 && state1_ == 0) state1_ = 1;  // all-zero state is invalid
  }

  std::uint64_t next_u64() {
    const std::uint64_t s0 = state0_;
    std::uint64_t s1 = state1_;
    const std::uint64_t result = rotl64(s0 + s1, 17) + s0;
    s1 ^= s0;
    state0_ = rotl64(s0, 49) ^ s1 ^ (s1 << 21);
    state1_ = rotl64(s1, 28);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method for unbiased results.
  std::uint64_t below(std::uint64_t bound) {
    // For simulation purposes the tiny modulo bias of a single multiply-high
    // is already negligible, but rejection keeps results exactly uniform.
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool chance(double probability) { return next_double() < probability; }

  // Raw generator state, exposed so simulator snapshots can capture and
  // restore mid-stream RNGs (e.g. the IHT's random-replacement stream)
  // bit-exactly. Not for seeding — use the constructor for that.
  struct State {
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
    bool operator==(const State&) const = default;
  };
  State state() const { return {state0_, state1_}; }
  void set_state(const State& s) {
    state0_ = s.s0;
    state1_ = s.s1;
  }

 private:
  static constexpr std::uint64_t rotl64(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state0_;
  std::uint64_t state1_;
};

}  // namespace cicmon::support
