#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "support/error.h"

namespace cicmon::support {

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return std::min(requested, kMaxJobs);
  if (const char* env = std::getenv("CICMON_JOBS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<unsigned>(std::min<long>(value, kMaxJobs));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min(hw, kMaxJobs);
}

TaskPool::TaskPool(unsigned threads) {
  check(threads >= 1, "TaskPool needs at least one thread");
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard lock(control_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskPool::submit(std::function<void()> task) {
  unsigned target;
  {
    std::lock_guard lock(control_mutex_);
    ++pending_;
    target = static_cast<unsigned>(next_queue_++ % queues_.size());
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool TaskPool::pop_own(unsigned self, std::function<void()>& task) {
  WorkerQueue& queue = *queues_[self];
  std::lock_guard lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  task = std::move(queue.tasks.back());
  queue.tasks.pop_back();
  return true;
}

bool TaskPool::steal_other(unsigned self, std::function<void()>& task) {
  const unsigned n = static_cast<unsigned>(queues_.size());
  for (unsigned offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    std::lock_guard lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    return true;
  }
  return false;
}

void TaskPool::run_task(const std::function<void()>& task) {
  bool skip;
  {
    std::lock_guard lock(control_mutex_);
    skip = first_error_ != nullptr;  // fail fast: drop work after the first throw
  }
  if (!skip) {
    try {
      task();
    } catch (...) {
      std::lock_guard lock(control_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  {
    std::lock_guard lock(control_mutex_);
    if (--pending_ == 0) all_done_.notify_all();
  }
}

void TaskPool::worker_loop(unsigned self) {
  for (;;) {
    std::function<void()> task;
    if (pop_own(self, task) || steal_other(self, task)) {
      run_task(task);
      continue;
    }
    std::unique_lock lock(control_mutex_);
    work_available_.wait(lock, [&] {
      if (stopping_) return true;
      // Re-check under the control lock: a submit may have raced our scans.
      for (const auto& queue : queues_) {
        std::lock_guard inner(queue->mutex);
        if (!queue->tasks.empty()) return true;
      }
      return false;
    });
    if (stopping_) return;
  }
}

void TaskPool::wait() {
  std::unique_lock lock(control_mutex_);
  all_done_.wait(lock, [&] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void parallel_for(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const unsigned effective = std::min<std::size_t>(resolve_jobs(jobs), n);
  if (effective <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Blocked decomposition: a handful of blocks per worker keeps submission
  // overhead negligible while leaving the pool enough slack to steal around
  // uneven cells (a hang-classified fault trial runs ~4x a clean one).
  // The pool is created per call — microseconds of thread spawn against
  // cells that each simulate for milliseconds — which keeps the engine
  // stateless; revisit if a sweep ever issues many sub-millisecond calls.
  const std::size_t block = std::max<std::size_t>(1, n / (static_cast<std::size_t>(effective) * 8));
  TaskPool pool(effective);
  for (std::size_t begin = 0; begin < n; begin += block) {
    const std::size_t end = std::min(n, begin + block);
    pool.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait();
}

}  // namespace cicmon::support
