// Bit-manipulation helpers shared by the ISA, hash units, and fault models.
//
// All helpers are constexpr and operate on explicitly sized unsigned types so
// that hardware-width semantics (32-bit datapath registers) are preserved on
// any host.
#pragma once

#include <bit>
#include <cstdint>

namespace cicmon::support {

// Rotate left within a 32-bit word (hardware barrel-shifter semantics).
constexpr std::uint32_t rotl32(std::uint32_t value, unsigned amount) {
  return std::rotl(value, static_cast<int>(amount & 31U));
}

// Rotate right within a 32-bit word.
constexpr std::uint32_t rotr32(std::uint32_t value, unsigned amount) {
  return std::rotr(value, static_cast<int>(amount & 31U));
}

// Number of set bits.
constexpr unsigned popcount32(std::uint32_t value) {
  return static_cast<unsigned>(std::popcount(value));
}

// Even parity bit of a word: 1 if the number of set bits is odd.
constexpr unsigned parity32(std::uint32_t value) { return popcount32(value) & 1U; }

// Extract bits [lo, lo+width) of `value` (width <= 32, lo+width <= 32).
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned width) {
  const std::uint64_t mask = (width >= 32) ? 0xFFFF'FFFFULL : ((1ULL << width) - 1ULL);
  return static_cast<std::uint32_t>((value >> lo) & mask);
}

// Insert `field` (low `width` bits) into `value` at bit position `lo`.
constexpr std::uint32_t insert_bits(std::uint32_t value, unsigned lo, unsigned width,
                                    std::uint32_t field) {
  const std::uint64_t mask = ((width >= 32) ? 0xFFFF'FFFFULL : ((1ULL << width) - 1ULL)) << lo;
  return static_cast<std::uint32_t>((value & ~mask) | ((static_cast<std::uint64_t>(field) << lo) & mask));
}

// Sign-extend the low `width` bits of `value` to a signed 32-bit integer.
constexpr std::int32_t sign_extend(std::uint32_t value, unsigned width) {
  const std::uint32_t m = 1U << (width - 1);
  const std::uint32_t masked = bits(value, 0, width);
  return static_cast<std::int32_t>((masked ^ m) - m);
}

// Flip a single bit of a word (fault-injection primitive).
constexpr std::uint32_t flip_bit(std::uint32_t value, unsigned bit_index) {
  return value ^ (1U << (bit_index & 31U));
}

// True if `value` is aligned to `alignment` (power of two).
constexpr bool is_aligned(std::uint32_t value, std::uint32_t alignment) {
  return (value & (alignment - 1U)) == 0U;
}

}  // namespace cicmon::support
