#include "support/wire.h"

#include <algorithm>

#include "obs/metrics.h"
#include "support/error.h"

namespace cicmon::support {
namespace {

// Wire-layer telemetry. Counted here — the one chokepoint every frame and
// chunk passes through — so the session and orchestrator layers never have
// to remember to count their sends and receives.
void count_frame_sent(std::size_t frame_bytes) {
  static const obs::CounterId k_frames = obs::counter("wire.frames.sent");
  static const obs::CounterId k_bytes = obs::counter("wire.bytes.sent");
  obs::bump(k_frames);
  obs::bump(k_bytes, frame_bytes);
}

void count_frame_received(std::size_t frame_bytes) {
  static const obs::CounterId k_frames = obs::counter("wire.frames.received");
  static const obs::CounterId k_bytes = obs::counter("wire.bytes.received");
  obs::bump(k_frames);
  obs::bump(k_bytes, frame_bytes);
}

void count_violation() {
  static const obs::CounterId k_violations = obs::counter("wire.violations");
  obs::bump(k_violations);
}

void count_checksum_failure() {
  static const obs::CounterId k_checksum = obs::counter("wire.checksum_failures");
  obs::bump(k_checksum);
}

// The header line is tiny ("cicmon-wire-1 <= 7 digits, 16 hex"); a buffer
// with no newline in this many bytes is not a frame header at all.
constexpr std::size_t kMaxHeaderBytes = 64;

bool parse_hex_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

bool parse_dec_size(std::string_view text, std::size_t* out) {
  if (text.empty() || text.size() > 8) return false;  // 8 digits > kMaxWirePayload
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string text(16, '0');
  for (int i = 15; i >= 0; --i) {
    text[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return text;
}

// A peek at the offending bytes for teardown logs, with control characters
// masked so a binary-garbage frame cannot mangle the terminal.
std::string preview(std::string_view bytes) {
  std::string out;
  for (const char c : bytes.substr(0, 32)) {
    out += (c >= 0x20 && c < 0x7F) ? c : '.';
  }
  if (bytes.size() > 32) out += "...";
  return out;
}

}  // namespace

std::uint64_t wire_checksum(std::string_view payload) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const char c : payload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;  // FNV prime
  }
  return hash;
}

std::string wire_frame(std::string_view payload) {
  check(payload.size() <= kMaxWirePayload,
        "wire_frame: payload exceeds the " + std::to_string(kMaxWirePayload) +
            "-byte frame limit");
  std::string frame;
  frame.reserve(payload.size() + 48);
  frame += kWireMagic;
  frame += ' ';
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += hex16(wire_checksum(payload));
  frame += '\n';
  frame += payload;
  frame += '\n';
  count_frame_sent(frame.size());
  return frame;
}

void FrameReader::feed(std::string_view bytes) { buffer_.append(bytes); }

FrameReader::Status FrameReader::fail(std::string* error, std::string why) {
  count_violation();
  dead_ = true;
  dead_reason_ = std::move(why);
  buffer_.clear();
  if (error != nullptr) *error = dead_reason_;
  return Status::kBad;
}

FrameReader::Status FrameReader::next(std::string* payload, std::string* error) {
  if (dead_) {
    if (error != nullptr) *error = dead_reason_;
    return Status::kBad;
  }
  if (buffer_.empty()) return Status::kNeedMore;

  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      return fail(error, "unterminated frame header: '" + preview(buffer_) + "'");
    }
    return Status::kNeedMore;
  }
  const std::string_view header = std::string_view(buffer_).substr(0, newline);
  if (newline > kMaxHeaderBytes) {
    return fail(error, "oversized frame header: '" + preview(header) + "'");
  }

  // "cicmon-wire-1 <len> <checksum>" — strict: exactly three tokens, and the
  // magic mismatch message calls out version skew, the likeliest cause.
  const std::size_t sp1 = header.find(' ');
  if (header.substr(0, sp1) != kWireMagic) {
    return fail(error, "not a " + std::string(kWireMagic) + " frame: '" + preview(header) + "'");
  }
  const std::size_t sp2 = header.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || header.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(error, "malformed frame header: '" + preview(header) + "'");
  }
  std::size_t length = 0;
  if (!parse_dec_size(header.substr(sp1 + 1, sp2 - sp1 - 1), &length)) {
    return fail(error, "malformed frame length: '" + preview(header) + "'");
  }
  if (length > kMaxWirePayload) {
    return fail(error, "oversized frame: " + std::to_string(length) + " bytes (limit " +
                           std::to_string(kMaxWirePayload) + ")");
  }
  std::uint64_t expected = 0;
  if (!parse_hex_u64(header.substr(sp2 + 1), &expected)) {
    return fail(error, "malformed frame checksum: '" + preview(header) + "'");
  }

  // Header accepted; wait for payload + the closing newline.
  const std::size_t frame_end = newline + 1 + length + 1;
  if (buffer_.size() < frame_end) return Status::kNeedMore;
  if (buffer_[frame_end - 1] != '\n') {
    return fail(error, "frame payload not terminated by newline");
  }
  const std::string_view body = std::string_view(buffer_).substr(newline + 1, length);
  const std::uint64_t actual = wire_checksum(body);
  if (actual != expected) {
    count_checksum_failure();
    return fail(error, "frame checksum mismatch (expected " + hex16(expected) + ", got " +
                           hex16(actual) + ")");
  }
  payload->assign(body);
  buffer_.erase(0, frame_end);
  count_frame_received(frame_end);
  return Status::kFrame;
}

namespace {

// Data bytes per chunk: leave comfortable room for the chunk header line so
// the full chunk payload stays under the frame cap.
constexpr std::size_t kMaxChunkData = kMaxWirePayload - 64;

}  // namespace

std::vector<std::string> chunk_payloads(std::string_view blob) {
  const std::size_t total =
      blob.empty() ? 1 : (blob.size() + kMaxChunkData - 1) / kMaxChunkData;
  std::vector<std::string> chunks;
  chunks.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    const std::string_view data =
        blob.substr(index * kMaxChunkData,
                    std::min(kMaxChunkData, blob.size() - index * kMaxChunkData));
    std::string payload;
    payload.reserve(data.size() + 64);
    payload += kChunkMagic;
    payload += ' ';
    payload += std::to_string(index);
    payload += ' ';
    payload += std::to_string(total);
    payload += ' ';
    payload += hex16(wire_checksum(data));
    payload += '\n';
    payload.append(data);
    chunks.push_back(std::move(payload));
  }
  static const obs::CounterId k_chunks = obs::counter("wire.chunks.sent");
  obs::bump(k_chunks, total);
  return chunks;
}

ChunkAssembler::Status ChunkAssembler::fail(std::string* error, std::string why) {
  count_violation();
  dead_ = true;
  dead_reason_ = std::move(why);
  blob_.clear();
  if (error != nullptr) *error = dead_reason_;
  return Status::kBad;
}

ChunkAssembler::Status ChunkAssembler::feed(std::string_view payload, std::string* error) {
  if (dead_) {
    if (error != nullptr) *error = dead_reason_;
    return Status::kBad;
  }
  if (done_) {
    return fail(error, "chunk after the sequence completed");
  }

  const std::size_t newline = payload.find('\n');
  if (newline == std::string_view::npos || newline > kMaxHeaderBytes) {
    return fail(error, "malformed chunk header: '" + preview(payload) + "'");
  }
  const std::string_view header = payload.substr(0, newline);
  const std::size_t sp1 = header.find(' ');
  if (header.substr(0, sp1) != kChunkMagic) {
    return fail(error, "not a " + std::string(kChunkMagic) + " payload: '" +
                           preview(header) + "'");
  }
  const std::size_t sp2 = header.find(' ', sp1 + 1);
  const std::size_t sp3 =
      sp2 == std::string_view::npos ? sp2 : header.find(' ', sp2 + 1);
  if (sp2 == std::string_view::npos || sp3 == std::string_view::npos ||
      header.find(' ', sp3 + 1) != std::string_view::npos) {
    return fail(error, "malformed chunk header: '" + preview(header) + "'");
  }
  std::size_t index = 0;
  std::size_t total = 0;
  if (!parse_dec_size(header.substr(sp1 + 1, sp2 - sp1 - 1), &index) ||
      !parse_dec_size(header.substr(sp2 + 1, sp3 - sp2 - 1), &total) || total == 0) {
    return fail(error, "malformed chunk sequence numbers: '" + preview(header) + "'");
  }
  std::uint64_t expected = 0;
  if (!parse_hex_u64(header.substr(sp3 + 1), &expected)) {
    return fail(error, "malformed chunk checksum: '" + preview(header) + "'");
  }

  // Sequence validity: the first chunk fixes the total; every chunk must be
  // the next expected index. A duplicate, gap, or reordering shows up here
  // as index != received_ and kills the sequence.
  if (received_ == 0) {
    total_ = total;
  } else if (total != total_) {
    return fail(error, "chunk total changed mid-sequence (" + std::to_string(total_) +
                           " -> " + std::to_string(total) + ")");
  }
  if (index != received_) {
    return fail(error, "chunk out of sequence (expected " + std::to_string(received_) +
                           ", got " + std::to_string(index) + " of " +
                           std::to_string(total_) + ")");
  }

  const std::string_view data = payload.substr(newline + 1);
  const std::uint64_t actual = wire_checksum(data);
  if (actual != expected) {
    count_checksum_failure();
    return fail(error, "chunk checksum mismatch (expected " + hex16(expected) +
                           ", got " + hex16(actual) + ")");
  }

  static const obs::CounterId k_chunks = obs::counter("wire.chunks.received");
  obs::bump(k_chunks);
  blob_.append(data);
  ++received_;
  if (received_ == total_) {
    done_ = true;
    return Status::kDone;
  }
  return Status::kChunk;
}

}  // namespace cicmon::support
