// Length/checksum-framed record protocol for worker-session pipes.
//
// A persistent dispatch worker serves many shard assignments over its
// stdin/stdout, so the byte stream needs framing that survives the real
// failure modes of a pipe to a process that can die at any instant:
//
//  * truncation — the peer was killed mid-record; the partial frame at EOF
//    must be detected, never silently dropped or half-parsed;
//  * corruption — a stray printf into the protocol stream, a buggy wrapper,
//    or a bit flip must fail loudly, not decode as a different record;
//  * resource abuse — a babbling peer must not make the reader buffer an
//    arbitrarily large "record".
//
// Each frame is one header line followed by the payload bytes and a closing
// newline:
//
//     cicmon-wire-1 <payload-bytes> <fnv1a64-hex>\n<payload>\n
//
// The payload is an arbitrary byte string (a support::JsonWriter document
// for session records, raw binary for golden-state chunks); the length makes
// embedded newlines and binary bytes safe and the checksum makes corruption
// detectable. The magic token carries the framing version: a reader only
// accepts frames of its own version, so a future incompatible framing bumps
// the token and old/new peers fail the handshake instead of misparsing each
// other. (Message *content* versioning is layered on top: see
// kSessionProtocolVersion in dist/session.h.)
//
// Bulk records larger than one frame (golden-state shipping) are carried as
// a sequence of chunk payloads — see chunk_payloads / ChunkAssembler below.
// Each chunk is an ordinary frame whose payload leads with its own
// "cicmon-chunk <index> <total> <fnv1a64-hex>" header, so a reordered,
// duplicated, dropped, or corrupted chunk is a sticky violation at the
// assembler even if every individual frame arrived intact.
//
// FrameReader is push-based so one poll loop can multiplex many pipes: feed
// it whatever bytes arrived, then drain complete frames. It is strict by
// design — any malformed input poisons the reader permanently, because after
// a framing violation there is no way to know where the next record starts;
// the session owning the pipe must be torn down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cicmon::support {

// Framing-version magic leading every frame header.
inline constexpr std::string_view kWireMagic = "cicmon-wire-1";

// Hard cap on one frame's payload. Session *records* are small (a few
// hundred bytes of JSON), but bulk records — golden-state shipment chunks —
// legitimately run right up to this cap; anything past it is a corrupt
// length field or a hostile peer. Bulk data larger than one frame is split
// into a validated chunk sequence (chunk_payloads / ChunkAssembler), never
// into a bigger frame.
inline constexpr std::size_t kMaxWirePayload = 1 << 20;

// FNV-1a 64-bit — cheap, dependency-free, and plenty to catch truncation and
// accidental corruption (this is an integrity check, not authentication).
std::uint64_t wire_checksum(std::string_view payload);

// Encodes one payload as a complete frame. Throws CicError when the payload
// exceeds kMaxWirePayload (an internal bug, not a peer failure).
std::string wire_frame(std::string_view payload);

class FrameReader {
 public:
  enum class Status {
    kFrame,     // a complete, checksum-verified payload was produced
    kNeedMore,  // no complete frame buffered; feed more bytes
    kBad,       // framing violation; the reader (and its pipe) are dead
  };

  // Appends bytes received from the pipe. Cheap; no parsing happens here.
  void feed(std::string_view bytes);

  // Extracts the next complete frame into `payload`. On kBad, `error`
  // describes the violation and every future call returns kBad — tear the
  // session down. Call in a loop: one feed() may complete several frames.
  Status next(std::string* payload, std::string* error);

  // True when bytes are buffered that do not (yet) form a complete frame.
  // At EOF this distinguishes a clean close from a peer that died
  // mid-record.
  bool has_partial() const { return !dead_ && !buffer_.empty(); }

 private:
  Status fail(std::string* error, std::string why);

  std::string buffer_;
  std::string dead_reason_;  // sticky after the first violation
  bool dead_ = false;
};

// ---------------------------------------------------------------------------
// Chunked bulk records.
//
// A bulk blob (e.g. a cicmon-golden-v1 record) is split into frame payloads
// of the form
//
//     cicmon-chunk <index> <total> <fnv1a64-hex>\n<data>
//
// where <index> counts from 0, <total> is the chunk count, and the checksum
// covers <data> alone. Each chunk payload (header + data) fits under
// kMaxWirePayload, so chunks travel as ordinary frames. The per-chunk
// checksum is deliberately redundant with the frame checksum: the assembler
// validates content integrity and *sequence* integrity (index order, total
// consistency, no duplicates, no trailing chunks) independently of the
// framing layer, so a peer that re-frames, reorders, or drops a chunk still
// trips a sticky violation instead of assembling silent garbage.

// Chunk-sequence magic leading every chunk payload.
inline constexpr std::string_view kChunkMagic = "cicmon-chunk";

// Splits `blob` into chunk payloads, each ready to pass to wire_frame().
// Always returns at least one chunk (an empty blob is one empty-data chunk).
std::vector<std::string> chunk_payloads(std::string_view blob);

// Reassembles a chunk sequence. Strict and sticky like FrameReader: any
// violation (bad header, out-of-order index, inconsistent total, checksum
// mismatch, chunk after completion) poisons the assembler permanently — the
// session owning the stream must be torn down or fall back.
class ChunkAssembler {
 public:
  enum class Status {
    kChunk,  // chunk accepted; more expected
    kDone,   // final chunk accepted; blob() is complete
    kBad,    // sequence violation; the assembler is dead
  };

  // Feeds one chunk payload (as produced by chunk_payloads). On kBad,
  // `error` describes the violation and every future call returns kBad.
  Status feed(std::string_view payload, std::string* error);

  // The reassembled blob; meaningful only after kDone.
  const std::string& blob() const { return blob_; }

  // Chunks accepted so far / total announced by the first chunk (0 before).
  std::size_t received() const { return received_; }
  std::size_t total() const { return total_; }

 private:
  Status fail(std::string* error, std::string why);

  std::string blob_;
  std::size_t received_ = 0;
  std::size_t total_ = 0;
  std::string dead_reason_;
  bool dead_ = false;
  bool done_ = false;
};

}  // namespace cicmon::support
