// Length/checksum-framed record protocol for worker-session pipes.
//
// A persistent dispatch worker serves many shard assignments over its
// stdin/stdout, so the byte stream needs framing that survives the real
// failure modes of a pipe to a process that can die at any instant:
//
//  * truncation — the peer was killed mid-record; the partial frame at EOF
//    must be detected, never silently dropped or half-parsed;
//  * corruption — a stray printf into the protocol stream, a buggy wrapper,
//    or a bit flip must fail loudly, not decode as a different record;
//  * resource abuse — a babbling peer must not make the reader buffer an
//    arbitrarily large "record".
//
// Each frame is one header line followed by the payload bytes and a closing
// newline:
//
//     cicmon-wire-1 <payload-bytes> <fnv1a64-hex>\n<payload>\n
//
// The payload is an arbitrary byte string (in practice a support::JsonWriter
// document, newlines and all); the length makes embedded newlines safe and
// the checksum makes corruption detectable. The magic token carries the
// framing version: a reader only accepts frames of its own version, so a
// future incompatible framing bumps the token and old/new peers fail the
// handshake instead of misparsing each other. (Message *content* versioning
// is layered on top: see kSessionProtocolVersion in dist/session.h.)
//
// FrameReader is push-based so one poll loop can multiplex many pipes: feed
// it whatever bytes arrived, then drain complete frames. It is strict by
// design — any malformed input poisons the reader permanently, because after
// a framing violation there is no way to know where the next record starts;
// the session owning the pipe must be torn down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cicmon::support {

// Framing-version magic leading every frame header.
inline constexpr std::string_view kWireMagic = "cicmon-wire-1";

// Hard cap on one frame's payload. Session records are small (a few hundred
// bytes); anything near the cap is a corrupt length field or a hostile peer.
inline constexpr std::size_t kMaxWirePayload = 1 << 20;

// FNV-1a 64-bit — cheap, dependency-free, and plenty to catch truncation and
// accidental corruption (this is an integrity check, not authentication).
std::uint64_t wire_checksum(std::string_view payload);

// Encodes one payload as a complete frame. Throws CicError when the payload
// exceeds kMaxWirePayload (an internal bug, not a peer failure).
std::string wire_frame(std::string_view payload);

class FrameReader {
 public:
  enum class Status {
    kFrame,     // a complete, checksum-verified payload was produced
    kNeedMore,  // no complete frame buffered; feed more bytes
    kBad,       // framing violation; the reader (and its pipe) are dead
  };

  // Appends bytes received from the pipe. Cheap; no parsing happens here.
  void feed(std::string_view bytes);

  // Extracts the next complete frame into `payload`. On kBad, `error`
  // describes the violation and every future call returns kBad — tear the
  // session down. Call in a loop: one feed() may complete several frames.
  Status next(std::string* payload, std::string* error);

  // True when bytes are buffered that do not (yet) form a complete frame.
  // At EOF this distinguishes a clean close from a peer that died
  // mid-record.
  bool has_partial() const { return !dead_ && !buffer_.empty(); }

 private:
  Status fail(std::string* error, std::string why);

  std::string buffer_;
  std::string dead_reason_;  // sticky after the first violation
  bool dead_ = false;
};

}  // namespace cicmon::support
