// Subprocess spawn/reap helper for the dispatch orchestrator.
//
// A thin POSIX wrapper sized for process fan-out: spawn an argv vector
// without a shell, poll for exit without blocking (the orchestrator
// multiplexes many children from one thread), kill on timeout, and render
// exit statuses for failure reports. Exec failures surface as exit code 127
// (the shell convention) rather than an exception, because by then the
// failure belongs to the child.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace cicmon::support {

// Handle to one spawned child. Default-constructed handles are invalid;
// after poll()/wait() reports the exit, the handle is invalid again (the
// child has been reaped exactly once).
class ChildProcess {
 public:
  ChildProcess() = default;
  explicit ChildProcess(pid_t pid) : pid_(pid) {}

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  // Non-blocking reap: returns true once the child has exited and stores the
  // raw waitpid status in `raw_status`; false while it is still running.
  // Throws CicError when the handle is invalid or waitpid fails.
  bool poll(int* raw_status);

  // Blocking reap; returns the raw waitpid status.
  int wait();

  // SIGKILL. The caller still reaps the corpse via poll()/wait().
  void kill_hard();

 private:
  pid_t pid_ = -1;
};

// fork + execvp of `argv` (argv[0] is the program, PATH-resolved). Throws
// CicError when argv is empty or fork fails; an exec failure makes the child
// exit 127.
ChildProcess spawn_process(const std::vector<std::string>& argv);

// True when the status is a normal exit with code 0.
bool exit_ok(int raw_status);

// "exit code 3", "signal 9 (killed)" — for failure reports.
std::string describe_exit(int raw_status);

// Absolute path of the running binary (/proc/self/exe), falling back to
// `argv0` when the link cannot be read. Lets the orchestrator respawn
// itself as workers regardless of how it was invoked.
std::string current_executable(const char* argv0);

// POSIX-sh quoting: returns `word` unchanged when it is safe as a bare
// token, otherwise single-quoted (with embedded quotes escaped).
std::string shell_quote(std::string_view word);

// Space-joined shell_quote of every element — an argv as one sh command.
std::string shell_join(const std::vector<std::string>& argv);

}  // namespace cicmon::support
