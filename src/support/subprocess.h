// Subprocess spawn/reap helper for the dispatch orchestrator.
//
// A thin POSIX wrapper sized for process fan-out: spawn an argv vector
// without a shell, poll for exit without blocking (the orchestrator
// multiplexes many children from one thread), kill on timeout, and render
// exit statuses for failure reports. Exec failures surface as exit code 127
// (the shell convention) rather than an exception, because by then the
// failure belongs to the child.
//
// For persistent worker sessions the spawn can additionally leave a pipe
// connected to the child's stdin and stdout (spawn_process_piped); the
// parent end of the stdout pipe is non-blocking so the orchestrator's
// single-threaded poll loop can drain many sessions without stalling on a
// quiet one. Teardown prefers terminate_gracefully — SIGTERM, a short grace
// period, then SIGKILL — so a worker wrapped in a forwarding parent (an ssh
// client, a shell trap) gets a chance to propagate the kill to the real
// process; SIGKILL cannot be forwarded by anything.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace cicmon::support {

// Handle to one spawned child. Default-constructed handles are invalid;
// after poll()/wait() reports the exit, the handle is invalid again (the
// child has been reaped exactly once). The handle exclusively owns the
// parent ends of any stdio pipes, so it is move-only; destruction closes
// the pipes but never reaps (an abandoned child is the caller's bug, and
// blocking in a destructor would hide it).
class ChildProcess {
 public:
  ChildProcess() = default;
  explicit ChildProcess(pid_t pid) : pid_(pid) {}
  ChildProcess(pid_t pid, int stdin_fd, int stdout_fd)
      : pid_(pid), stdin_fd_(stdin_fd), stdout_fd_(stdout_fd) {}
  ~ChildProcess() { close_pipes(); }

  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ChildProcess(ChildProcess&& other) noexcept { *this = std::move(other); }
  ChildProcess& operator=(ChildProcess&& other) noexcept {
    if (this != &other) {
      close_pipes();
      pid_ = other.pid_;
      stdin_fd_ = other.stdin_fd_;
      stdout_fd_ = other.stdout_fd_;
      other.pid_ = -1;
      other.stdin_fd_ = -1;
      other.stdout_fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  // Parent ends of the child's stdio pipes; -1 when the child was spawned
  // with inherited stdio.
  int stdin_fd() const { return stdin_fd_; }
  int stdout_fd() const { return stdout_fd_; }

  // Closes the parent's write end of the child's stdin — the child sees EOF,
  // the idiomatic "no more requests" signal. Idempotent.
  void close_stdin();
  // Closes both pipe ends (stdin EOF + stop reading stdout). Idempotent;
  // called automatically by terminate_gracefully.
  void close_pipes();

  // Non-blocking reap: returns true once the child has exited and stores the
  // raw waitpid status in `raw_status`; false while it is still running.
  // Throws CicError when the handle is invalid or waitpid fails.
  bool poll(int* raw_status);

  // Blocking reap; returns the raw waitpid status.
  int wait();

  // SIGTERM — the polite half of teardown. The caller still reaps.
  void kill_soft();

  // SIGKILL. The caller still reaps the corpse via poll()/wait().
  void kill_hard();

  // Graceful teardown: close the pipes, SIGTERM, poll for up to
  // `grace_seconds`, then SIGKILL; blocks until the child is reaped and
  // returns the raw exit status. The grace period is what lets template
  // transports (ssh wrappers, shell traps) forward the termination to a
  // remote worker — see transport.h for the caveat on what SIGKILL reaches.
  int terminate_gracefully(double grace_seconds);

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
};

// fork + execvp of `argv` (argv[0] is the program, PATH-resolved). Throws
// CicError when argv is empty or fork fails; an exec failure makes the child
// exit 127.
ChildProcess spawn_process(const std::vector<std::string>& argv);

// Like spawn_process, but with pipes on the child's stdin and stdout (its
// stderr stays inherited, so worker diagnostics reach the operator). The
// parent's read end is O_NONBLOCK and both parent ends are close-on-exec so
// sibling workers cannot hold each other's pipes open.
ChildProcess spawn_process_piped(const std::vector<std::string>& argv);

// Writes all of `data` to `fd`, retrying short writes and EINTR. Returns
// false when the peer is gone (EPIPE & friends) — the caller tears the
// session down. SIGPIPE is disarmed process-wide on first use.
bool write_all(int fd, std::string_view data);

// Drains whatever is currently readable from a non-blocking `fd` into
// `out` (appending). Returns false once the peer has closed the pipe (EOF);
// true while the pipe is still open, whether or not bytes arrived.
bool read_available(int fd, std::string* out);

// True when the status is a normal exit with code 0.
bool exit_ok(int raw_status);

// "exit code 3", "signal 9 (killed)" — for failure reports.
std::string describe_exit(int raw_status);

// Absolute path of the running binary (/proc/self/exe), falling back to
// `argv0` when the link cannot be read. Lets the orchestrator respawn
// itself as workers regardless of how it was invoked.
std::string current_executable(const char* argv0);

// POSIX-sh quoting: returns `word` unchanged when it is safe as a bare
// token, otherwise single-quoted (with embedded quotes escaped).
std::string shell_quote(std::string_view word);

// Space-joined shell_quote of every element — an argv as one sh command.
std::string shell_join(const std::vector<std::string>& argv);

}  // namespace cicmon::support
