#include "support/subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/wait.h>
#include <unistd.h>

#include "support/error.h"

namespace cicmon::support {

bool ChildProcess::poll(int* raw_status) {
  check(valid(), "poll on an invalid child process handle");
  int status = 0;
  pid_t got = 0;
  do {
    got = ::waitpid(pid_, &status, WNOHANG);
  } while (got < 0 && errno == EINTR);
  if (got == 0) return false;
  check(got == pid_, std::string("waitpid failed: ") + std::strerror(errno));
  pid_ = -1;
  *raw_status = status;
  return true;
}

int ChildProcess::wait() {
  check(valid(), "wait on an invalid child process handle");
  int status = 0;
  pid_t got = 0;
  do {
    got = ::waitpid(pid_, &status, 0);
  } while (got < 0 && errno == EINTR);
  check(got == pid_, std::string("waitpid failed: ") + std::strerror(errno));
  pid_ = -1;
  return status;
}

void ChildProcess::kill_hard() {
  if (valid()) ::kill(pid_, SIGKILL);
}

ChildProcess spawn_process(const std::vector<std::string>& argv) {
  check(!argv.empty(), "spawn_process needs a non-empty argv");
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);

  const pid_t pid = ::fork();
  check(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::execvp(raw[0], raw.data());
    // Exec failed; 127 is the shell's "command not found" convention and is
    // what the orchestrator's retry reports will show.
    ::_exit(127);
  }
  return ChildProcess(pid);
}

bool exit_ok(int raw_status) {
  return WIFEXITED(raw_status) && WEXITSTATUS(raw_status) == 0;
}

std::string describe_exit(int raw_status) {
  if (WIFEXITED(raw_status)) {
    return "exit code " + std::to_string(WEXITSTATUS(raw_status));
  }
  if (WIFSIGNALED(raw_status)) {
    const int sig = WTERMSIG(raw_status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" + (name != nullptr ? name : "?") + ")";
  }
  return "status " + std::to_string(raw_status);
}

std::string current_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t got = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (got > 0) return std::string(buffer, static_cast<std::size_t>(got));
  return argv0 != nullptr ? std::string(argv0) : std::string("cicmon");
}

std::string shell_quote(std::string_view word) {
  const bool safe =
      !word.empty() &&
      word.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
          "._-+/=:,@%") == std::string_view::npos;
  if (safe) return std::string(word);
  std::string quoted = "'";
  for (const char c : word) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

std::string shell_join(const std::vector<std::string>& argv) {
  std::string joined;
  for (const std::string& arg : argv) {
    if (!joined.empty()) joined += ' ';
    joined += shell_quote(arg);
  }
  return joined;
}

}  // namespace cicmon::support
