#include "support/subprocess.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/error.h"

namespace cicmon::support {
namespace {

void close_fd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// A write to a session whose worker just died must surface as EPIPE, not
// kill the orchestrator; disarmed once, lazily, from write_all.
void ignore_sigpipe() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

std::vector<char*> raw_argv(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);
  return raw;
}

}  // namespace

bool ChildProcess::poll(int* raw_status) {
  check(valid(), "poll on an invalid child process handle");
  int status = 0;
  pid_t got = 0;
  do {
    got = ::waitpid(pid_, &status, WNOHANG);
  } while (got < 0 && errno == EINTR);
  if (got == 0) return false;
  check(got == pid_, std::string("waitpid failed: ") + std::strerror(errno));
  pid_ = -1;
  close_pipes();
  *raw_status = status;
  return true;
}

int ChildProcess::wait() {
  check(valid(), "wait on an invalid child process handle");
  int status = 0;
  pid_t got = 0;
  do {
    got = ::waitpid(pid_, &status, 0);
  } while (got < 0 && errno == EINTR);
  check(got == pid_, std::string("waitpid failed: ") + std::strerror(errno));
  pid_ = -1;
  close_pipes();
  return status;
}

void ChildProcess::close_stdin() { close_fd(&stdin_fd_); }

void ChildProcess::close_pipes() {
  close_fd(&stdin_fd_);
  close_fd(&stdout_fd_);
}

void ChildProcess::kill_soft() {
  if (valid()) ::kill(pid_, SIGTERM);
}

void ChildProcess::kill_hard() {
  if (valid()) ::kill(pid_, SIGKILL);
}

int ChildProcess::terminate_gracefully(double grace_seconds) {
  check(valid(), "terminate_gracefully on an invalid child process handle");
  close_pipes();
  kill_soft();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(grace_seconds));
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (poll(&status)) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill_hard();
  return wait();
}

ChildProcess spawn_process(const std::vector<std::string>& argv) {
  check(!argv.empty(), "spawn_process needs a non-empty argv");
  std::vector<char*> raw = raw_argv(argv);

  const pid_t pid = ::fork();
  check(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::execvp(raw[0], raw.data());
    // Exec failed; 127 is the shell's "command not found" convention and is
    // what the orchestrator's retry reports will show.
    ::_exit(127);
  }
  return ChildProcess(pid);
}

ChildProcess spawn_process_piped(const std::vector<std::string>& argv) {
  check(!argv.empty(), "spawn_process_piped needs a non-empty argv");
  int to_child[2] = {-1, -1};    // parent writes [1] -> child stdin [0]
  int from_child[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  check(::pipe(to_child) == 0, std::string("pipe failed: ") + std::strerror(errno));
  if (::pipe(from_child) != 0) {
    const int saved = errno;
    close_fd(&to_child[0]);
    close_fd(&to_child[1]);
    throw CicError(std::string("pipe failed: ") + std::strerror(saved));
  }
  std::vector<char*> raw = raw_argv(argv);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    close_fd(&to_child[0]);
    close_fd(&to_child[1]);
    close_fd(&from_child[0]);
    close_fd(&from_child[1]);
    throw CicError(std::string("fork failed: ") + std::strerror(saved));
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execvp(raw[0], raw.data());
    ::_exit(127);
  }
  close_fd(&to_child[0]);
  close_fd(&from_child[1]);
  // Close-on-exec keeps later-spawned siblings from holding this session's
  // pipes open (a dead worker must read as EOF, not hang); non-blocking read
  // lets one poll loop drain many quiet sessions.
  ::fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(from_child[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(from_child[0], F_SETFL, O_NONBLOCK);
  return ChildProcess(pid, to_child[1], from_child[0]);
}

bool write_all(int fd, std::string_view data) {
  ignore_sigpipe();
  if (fd < 0) return false;
  while (!data.empty()) {
    const ssize_t wrote = ::write(fd, data.data(), data.size());
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE, EBADF, ... — the session is gone either way
    }
    data.remove_prefix(static_cast<std::size_t>(wrote));
  }
  return true;
}

bool read_available(int fd, std::string* out) {
  if (fd < 0) return false;
  char buffer[4096];
  while (true) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got > 0) {
      out->append(buffer, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return false;  // EOF — the peer closed its end
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // open but quiet
    return false;  // EIO/EBADF/...: the pipe is unusable — same as peer gone
  }
}

bool exit_ok(int raw_status) {
  return WIFEXITED(raw_status) && WEXITSTATUS(raw_status) == 0;
}

std::string describe_exit(int raw_status) {
  if (WIFEXITED(raw_status)) {
    return "exit code " + std::to_string(WEXITSTATUS(raw_status));
  }
  if (WIFSIGNALED(raw_status)) {
    const int sig = WTERMSIG(raw_status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" + (name != nullptr ? name : "?") + ")";
  }
  return "status " + std::to_string(raw_status);
}

std::string current_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t got = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (got > 0) return std::string(buffer, static_cast<std::size_t>(got));
  return argv0 != nullptr ? std::string(argv0) : std::string("cicmon");
}

std::string shell_quote(std::string_view word) {
  const bool safe =
      !word.empty() &&
      word.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
          "._-+/=:,@%") == std::string_view::npos;
  if (safe) return std::string(word);
  std::string quoted = "'";
  for (const char c : word) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

std::string shell_join(const std::vector<std::string>& argv) {
  std::string joined;
  for (const std::string& arg : argv) {
    if (!joined.empty()) joined += ' ';
    joined += shell_quote(arg);
  }
  return joined;
}

}  // namespace cicmon::support
