#include "support/table.h"

#include <cstdio>
#include <sstream>

#include "support/error.h"

namespace cicmon::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(), "Table row arity must match the header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::fmt_u64(unsigned long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", value);
  return buf;
}

std::string Table::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };

  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace cicmon::support
