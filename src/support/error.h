// Error reporting for the cicmon library.
//
// Fatal misuse of the public API (malformed assembly, invalid configuration,
// out-of-range memory image accesses during *construction*) throws CicError
// with a formatted message. Run-time simulation outcomes that a caller is
// expected to handle (program terminated by the monitor, fault detected /
// escaped) are ordinary return values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace cicmon::support {

class CicError : public std::runtime_error {
 public:
  explicit CicError(std::string message) : std::runtime_error(std::move(message)) {}
};

// Throws CicError when `condition` is false. `message` should name the
// violated precondition from the caller's perspective.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw CicError(message);
}

}  // namespace cicmon::support
