#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>

namespace cicmon::support {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, std::string_view separators) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || separators.find(text[i]) != std::string_view::npos) {
      if (i > start) fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_int(std::string_view text, std::int64_t* out) {
  text = trim(text);
  if (text.empty()) return false;
  bool negative = false;
  if (text.front() == '+' || text.front() == '-') {
    negative = text.front() == '-';
    text.remove_prefix(1);
    if (text.empty()) return false;
  }
  int base = 10;
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
  } else if (starts_with(text, "0b") || starts_with(text, "0B")) {
    base = 2;
    text.remove_prefix(2);
  }
  if (text.empty()) return false;

  std::uint64_t magnitude = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    if (digit >= base) return false;
    const std::uint64_t next = magnitude * static_cast<std::uint64_t>(base) +
                               static_cast<std::uint64_t>(digit);
    if (next < magnitude) return false;  // overflow
    magnitude = next;
  }

  // Accept the full 32-bit unsigned range and the int64 range.
  if (!negative && magnitude > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
    return false;
  if (negative && magnitude > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
    return false;
  *out = negative ? -static_cast<std::int64_t>(magnitude) : static_cast<std::int64_t>(magnitude);
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  std::uint64_t value = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size() || text.empty()) {
    return false;
  }
  *out = value;
  return true;
}

std::string hex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", value);
  return buf;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // One rolling row of the classic dynamic program; the inputs are short
  // CLI tokens, so quadratic time is irrelevant.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min(std::min(row[j] + 1, row[j - 1] + 1), substitute);
    }
  }
  return row[b.size()];
}

}  // namespace cicmon::support
