// ASCII table rendering for experiment output.
//
// Every bench binary prints the rows of the corresponding paper table/figure
// through this class so the output format is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace cicmon::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Convenience formatting for numeric cells.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_u64(unsigned long long value);
  static std::string fmt_pct(double fraction, int precision = 1);

  // Renders with column alignment and a header rule.
  std::string render() const;

  // Renders as comma-separated values (headers + rows).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cicmon::support
