#include "cic/iht.h"

#include <algorithm>
#include <limits>

#include "support/error.h"

namespace cicmon::cic {

std::string_view replace_policy_name(ReplacePolicy policy) {
  switch (policy) {
    case ReplacePolicy::kLru: return "lru";
    case ReplacePolicy::kFifo: return "fifo";
    case ReplacePolicy::kRandom: return "random";
  }
  return "?";
}

Iht::Iht(unsigned num_entries, ReplacePolicy policy, std::uint64_t rng_seed)
    : entries_(num_entries), policy_(policy), rng_(rng_seed) {
  support::check(num_entries >= 1, "IHT must have at least one entry");
}

void Iht::fill(std::uint32_t start, std::uint32_t end, std::uint32_t hash) {
  ++fill_clock_;
  // Overwrite an existing record for the same range, if any.
  for (IhtEntry& entry : entries_) {
    if (entry.valid && entry.start == start && entry.end == end) {
      entry.hash = hash;
      entry.fill_order = fill_clock_;
      return;
    }
  }
  const std::size_t slot = victim_index();
  entries_[slot] =
      IhtEntry{start, end, hash, true, /*last_use=*/use_clock_, /*fill_order=*/fill_clock_};
}

std::size_t Iht::victim_index() {
  // Prefer an invalid slot.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) return i;
  }
  switch (policy_) {
    case ReplacePolicy::kLru: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].last_use < entries_[best].last_use) best = i;
      }
      return best;
    }
    case ReplacePolicy::kFifo: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].fill_order < entries_[best].fill_order) best = i;
      }
      return best;
    }
    case ReplacePolicy::kRandom:
      return static_cast<std::size_t>(rng_.below(entries_.size()));
  }
  return 0;
}

unsigned Iht::invalidate_victims(unsigned count) {
  unsigned invalidated = 0;
  for (; invalidated < count && valid_entries() > 0; ++invalidated) {
    // victim_index() never returns an invalid slot here because at least one
    // valid entry remains only if all slots are valid — otherwise we stop
    // invalidating early below.
    std::size_t victim = entries_.size();
    switch (policy_) {
      case ReplacePolicy::kLru: {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
          if (entries_[i].valid && entries_[i].last_use < best) {
            best = entries_[i].last_use;
            victim = i;
          }
        }
        break;
      }
      case ReplacePolicy::kFifo: {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
          if (entries_[i].valid && entries_[i].fill_order < best) {
            best = entries_[i].fill_order;
            victim = i;
          }
        }
        break;
      }
      case ReplacePolicy::kRandom: {
        // Uniform among valid entries.
        const unsigned valid = valid_entries();
        std::uint64_t pick = rng_.below(valid);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
          if (!entries_[i].valid) continue;
          if (pick == 0) {
            victim = i;
            break;
          }
          --pick;
        }
        break;
      }
    }
    if (victim == entries_.size()) break;
    entries_[victim].valid = false;
  }
  return invalidated;
}

void Iht::invalidate_all() {
  for (IhtEntry& entry : entries_) entry.valid = false;
}

void Iht::restore_state(const IhtState& s) {
  support::check(s.entries.size() == entries_.size(),
                 "Iht::restore_state: capacity mismatch");
  entries_ = s.entries;
  stats_ = s.stats;
  use_clock_ = s.use_clock;
  fill_clock_ = s.fill_clock;
  rng_.set_state(s.rng);
}

unsigned Iht::valid_entries() const {
  unsigned count = 0;
  for (const IhtEntry& entry : entries_) count += entry.valid ? 1U : 0U;
  return count;
}

}  // namespace cicmon::cic
