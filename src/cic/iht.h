// Internal Hash Table (IHTbb) — the on-chip CAM of expected-hash tuples.
//
// Each entry is the paper's (Addst, Addend, Hash) tuple. A lookup presents
// (start, end, hash): the CAM matches on the address pair and compares the
// hash, producing the two wires of Figure 4 — `found` (an entry with this
// address range exists) and `match` (its hash equals the dynamic hash).
//
// The table also carries the bookkeeping the OS refill handler needs:
// per-entry last-use stamps (for LRU-family victim selection) and fill
// order (for FIFO). Victim *selection* lives here because the hardware
// implements it (§3.3: "specific hardwares are designed to implement the
// replacement policy"); the *refill decision* — which FHT records to load —
// is OS policy and lives in src/os.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "support/rng.h"
#include "uop/interp.h"

namespace cicmon::cic {

// Victim-selection policy for refills when the table is full.
enum class ReplacePolicy : std::uint8_t {
  kLru,     // evict least-recently matched entries
  kFifo,    // evict oldest-filled entries
  kRandom,  // evict uniformly random valid entries
};

std::string_view replace_policy_name(ReplacePolicy policy);

struct IhtEntry {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  std::uint32_t hash = 0;
  bool valid = false;
  std::uint64_t last_use = 0;   // lookup stamp of the last address match
  std::uint64_t fill_order = 0; // monotone fill counter

  bool operator==(const IhtEntry&) const = default;
};

struct IhtStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;        // found && match
  std::uint64_t misses = 0;      // !found
  std::uint64_t mismatches = 0;  // found && !match

  double miss_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(lookups);
  }

  bool operator==(const IhtStats&) const = default;
};

// Complete mutable IHT state, for simulator snapshots: entries, statistics,
// the LRU/FIFO clocks, and the random-replacement RNG mid-stream. Capacity
// and policy are configuration, assumed identical on both sides.
struct IhtState {
  std::vector<IhtEntry> entries;
  IhtStats stats;
  std::uint64_t use_clock = 0;
  std::uint64_t fill_clock = 0;
  support::Rng::State rng;

  bool operator==(const IhtState&) const = default;
};

class Iht {
 public:
  // `num_entries` >= 1 (the paper evaluates 1/8/16/32).
  Iht(unsigned num_entries, ReplacePolicy policy, std::uint64_t rng_seed = 1);

  // The hardware lookup of Figure 4. Updates statistics and, on an address
  // match, the entry's LRU stamp. Inline: the monitored pipeline probes the
  // CAM once per executed basic block.
  uop::IhtLookupResult lookup(std::uint32_t start, std::uint32_t end, std::uint32_t hash) {
    ++stats_.lookups;
    ++use_clock_;
    for (IhtEntry& entry : entries_) {
      if (!entry.valid || entry.start != start || entry.end != end) continue;
      entry.last_use = use_clock_;
      if (entry.hash == hash) {
        ++stats_.hits;
        return {true, true};
      }
      ++stats_.mismatches;
      return {true, false};
    }
    ++stats_.misses;
    return {false, false};
  }

  // Fills an entry with an expected-hash record. If a (start, end) entry
  // already exists it is overwritten in place; otherwise an invalid slot is
  // used, or a victim chosen by the replacement policy.
  void fill(std::uint32_t start, std::uint32_t end, std::uint32_t hash);

  // Invalidates the `count` best victims under the policy (the OS "replace
  // half of the entries" step). Returns the number actually invalidated.
  unsigned invalidate_victims(unsigned count);

  void invalidate_all();

  unsigned num_entries() const { return static_cast<unsigned>(entries_.size()); }
  unsigned valid_entries() const;
  const std::vector<IhtEntry>& entries() const { return entries_; }
  const IhtStats& stats() const { return stats_; }
  void reset_stats() { stats_ = IhtStats{}; }

  IhtState save_state() const { return {entries_, stats_, use_clock_, fill_clock_, rng_.state()}; }
  void restore_state(const IhtState& s);

 private:
  std::size_t victim_index();

  std::vector<IhtEntry> entries_;
  ReplacePolicy policy_;
  support::Rng rng_;
  IhtStats stats_;
  std::uint64_t use_clock_ = 0;
  std::uint64_t fill_clock_ = 0;
};

}  // namespace cicmon::cic
