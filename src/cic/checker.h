// Code Integrity Checker (CIC) — the monitoring hardware of Figure 2.
//
// Bundles the datapath-visible monitoring resources: the HASHFU the IF-stage
// microoperations step the running hash through, the IHTbb CAM the ID-stage
// lookup microoperation probes, and the exception signals. The CPU's
// Datapath implementation forwards the three monitoring ports here.
//
// The CIC also latches the key of the most recent lookup: when the lookup
// raises a miss exception, the OS handler needs (start, end, dynamic hash)
// to search the FHT — in hardware these values are exactly what was driven
// onto the CAM's match lines, so latching them costs three registers.
//
// Chained block edges do not change what the CIC observes. The threaded
// engine's superblock chaining only short-circuits the software dispatch
// loop between translated blocks; the Figure 4 monitoring head still runs at
// every flow-control instruction (IHT lookup on <STA, PPC, RHASH>, then
// STA/RHASH reset), and the successor block's first fetch still latches STA
// and folds into RHASH through the real fetch path, whether control arrived
// via a chain link or via the dispatch loop. Per-region hash coverage, IHT
// contention, and exception timing are therefore identical with chaining on
// or off — enforced by the chain on/off byte-identity tests and CI axis.
#pragma once

#include <cstdint>
#include <memory>

#include "cic/iht.h"
#include "hash/hash_unit.h"
#include "support/bitops.h"
#include "uop/interp.h"

namespace cicmon::cic {

struct CicConfig {
  unsigned iht_entries = 8;
  ReplacePolicy replace_policy = ReplacePolicy::kLru;
  hash::HashKind hash_kind = hash::HashKind::kXor;
  std::uint32_t hash_key = 0;   // per-process random value (kRotXorKeyed)
  std::uint64_t rng_seed = 1;   // for ReplacePolicy::kRandom
};

// Key of an IHT lookup, latched for the exception handler.
struct LookupKey {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  std::uint32_t hash = 0;

  bool operator==(const LookupKey&) const = default;
};

// Mutable checker state for simulator snapshots: the IHT contents plus the
// latched lookup key. The HASHFU is stateless (its key is configuration).
struct CheckerState {
  IhtState iht;
  LookupKey last_lookup;

  bool operator==(const CheckerState&) const = default;
};

class CodeIntegrityChecker {
 public:
  explicit CodeIntegrityChecker(const CicConfig& config);

  // --- Monitoring ports (wired into uop::Datapath) ---
  //
  // The monitored fetch path calls hash_step once per dynamic instruction,
  // making the HASHFU's virtual `step` the last indirect call on that hot
  // path. The single-cycle units the paper's CIC8/CIC16 configurations ship
  // with (XOR, and the ADD/ROTXOR variants) are dispatched inline on the
  // kind latched at construction — their one-liner bodies duplicate the
  // `final` unit classes in hash_unit.cc bit for bit — while every other
  // kind, and all cold-path uses (FHT generation, the area model), still go
  // through the virtual unit, which remains the extension point.
  std::uint32_t hash_step(std::uint32_t old_hash, std::uint32_t instr_word) const {
    switch (kind_) {
      case hash::HashKind::kXor: return old_hash ^ instr_word;
      case hash::HashKind::kAdd: return old_hash + instr_word;
      case hash::HashKind::kRotXor:
      case hash::HashKind::kRotXorKeyed:
        return support::rotl32(old_hash, 1) ^ instr_word;
      default: return hashfu_->step(old_hash, instr_word);
    }
  }
  uop::IhtLookupResult lookup(std::uint32_t start, std::uint32_t end, std::uint32_t hash) {
    last_lookup_ = LookupKey{start, end, hash};
    return iht_.lookup(start, end, hash);
  }

  // --- OS-side access ---
  Iht& iht() { return iht_; }
  const Iht& iht() const { return iht_; }
  const LookupKey& last_lookup() const { return last_lookup_; }
  const hash::HashFunctionUnit& hash_unit() const { return *hashfu_; }
  const CicConfig& config() const { return config_; }

  // Hardware reset value of RHASH at the start of a basic block.
  std::uint32_t rhash_init() const { return hashfu_->init(); }

  CheckerState save_state() const { return {iht_.save_state(), last_lookup_}; }
  void restore_state(const CheckerState& s) {
    iht_.restore_state(s.iht);
    last_lookup_ = s.last_lookup;
  }

 private:
  CicConfig config_;
  std::unique_ptr<hash::HashFunctionUnit> hashfu_;
  hash::HashKind kind_;  // hashfu_->kind(), latched for the inline fast path
  Iht iht_;
  LookupKey last_lookup_;
};

}  // namespace cicmon::cic
