// Code Integrity Checker (CIC) — the monitoring hardware of Figure 2.
//
// Bundles the datapath-visible monitoring resources: the HASHFU the IF-stage
// microoperations step the running hash through, the IHTbb CAM the ID-stage
// lookup microoperation probes, and the exception signals. The CPU's
// Datapath implementation forwards the three monitoring ports here.
//
// The CIC also latches the key of the most recent lookup: when the lookup
// raises a miss exception, the OS handler needs (start, end, dynamic hash)
// to search the FHT — in hardware these values are exactly what was driven
// onto the CAM's match lines, so latching them costs three registers.
#pragma once

#include <cstdint>
#include <memory>

#include "cic/iht.h"
#include "hash/hash_unit.h"
#include "uop/interp.h"

namespace cicmon::cic {

struct CicConfig {
  unsigned iht_entries = 8;
  ReplacePolicy replace_policy = ReplacePolicy::kLru;
  hash::HashKind hash_kind = hash::HashKind::kXor;
  std::uint32_t hash_key = 0;   // per-process random value (kRotXorKeyed)
  std::uint64_t rng_seed = 1;   // for ReplacePolicy::kRandom
};

// Key of an IHT lookup, latched for the exception handler.
struct LookupKey {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  std::uint32_t hash = 0;
};

class CodeIntegrityChecker {
 public:
  explicit CodeIntegrityChecker(const CicConfig& config);

  // --- Monitoring ports (wired into uop::Datapath) ---
  std::uint32_t hash_step(std::uint32_t old_hash, std::uint32_t instr_word) const {
    return hashfu_->step(old_hash, instr_word);
  }
  uop::IhtLookupResult lookup(std::uint32_t start, std::uint32_t end, std::uint32_t hash);

  // --- OS-side access ---
  Iht& iht() { return iht_; }
  const Iht& iht() const { return iht_; }
  const LookupKey& last_lookup() const { return last_lookup_; }
  const hash::HashFunctionUnit& hash_unit() const { return *hashfu_; }
  const CicConfig& config() const { return config_; }

  // Hardware reset value of RHASH at the start of a basic block.
  std::uint32_t rhash_init() const { return hashfu_->init(); }

 private:
  CicConfig config_;
  std::unique_ptr<hash::HashFunctionUnit> hashfu_;
  Iht iht_;
  LookupKey last_lookup_;
};

}  // namespace cicmon::cic
