#include "cic/checker.h"

namespace cicmon::cic {

CodeIntegrityChecker::CodeIntegrityChecker(const CicConfig& config)
    : config_(config),
      hashfu_(hash::make_hash_unit(config.hash_kind, config.hash_key)),
      kind_(hashfu_->kind()),
      iht_(config.iht_entries, config.replace_policy, config.rng_seed) {}

}  // namespace cicmon::cic
