#include "cic/checker.h"

namespace cicmon::cic {

CodeIntegrityChecker::CodeIntegrityChecker(const CicConfig& config)
    : config_(config),
      hashfu_(hash::make_hash_unit(config.hash_kind, config.hash_key)),
      kind_(hashfu_->kind()),
      iht_(config.iht_entries, config.replace_policy, config.rng_seed) {}

uop::IhtLookupResult CodeIntegrityChecker::lookup(std::uint32_t start, std::uint32_t end,
                                                  std::uint32_t hash) {
  last_lookup_ = LookupKey{start, end, hash};
  return iht_.lookup(start, end, hash);
}

}  // namespace cicmon::cic
