// Instruction fetch path: memory -> bus -> (optional) I-cache -> pipeline.
//
// The paper's location argument (§3.2) is that checking must happen as late
// as possible — after the bus and the I-cache — so alterations anywhere on
// this path are caught. The fetch path is therefore modeled explicitly, with
// a tamper hook on the bus transfer and bit-flip access into cache-resident
// lines, so the fault campaigns can attack each location separately.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/memory.h"
#include "support/rng.h"

namespace cicmon::mem {

// Corruption hook applied to every word crossing the memory->processor bus.
class BusTamper {
 public:
  virtual ~BusTamper() = default;
  virtual std::uint32_t on_transfer(std::uint32_t address, std::uint32_t word) = 0;
};

struct ICacheConfig {
  bool enabled = false;
  unsigned num_lines = 64;        // direct-mapped
  unsigned words_per_line = 4;    // 16-byte lines
  unsigned miss_penalty = 4;      // cycles charged per refill
};

// Direct-mapped instruction cache. Kept deliberately simple: the paper's
// evaluation does not model cache timing, but the *existence* of a cached
// copy matters for the fault-location study.
class ICache {
 public:
  explicit ICache(const ICacheConfig& config);

  struct Access {
    std::uint32_t word = 0;
    bool hit = false;
  };

  // Returns the cached word; on miss, refills through `refill` (one call per
  // word in the line, in address order).
  template <typename RefillFn>
  Access access(std::uint32_t address, RefillFn&& refill) {
    const std::uint32_t line_index = (address / line_bytes_) % config_.num_lines;
    const std::uint32_t tag = address / line_bytes_ / config_.num_lines;
    Line& line = lines_[line_index];
    std::uint32_t* words = line_words(line_index);
    Access out;
    if (!line.valid || line.tag != tag) {
      const std::uint32_t base = address & ~(line_bytes_ - 1);
      for (unsigned w = 0; w < config_.words_per_line; ++w) {
        words[w] = refill(base + w * 4);
      }
      line.valid = true;
      line.tag = tag;
      ++misses_;
    } else {
      out.hit = true;
      ++hits_;
    }
    out.word = words[(address / 4) % config_.words_per_line];
    return out;
  }

  // Flips one random bit of one random *valid* line (cache-resident fault).
  // Returns false if no line is valid yet.
  bool flip_random_resident_bit(support::Rng& rng);

  void invalidate_all();
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  struct Line {
    bool valid = false;
    std::uint32_t tag = 0;
    bool operator==(const Line&) const = default;
  };

  // Complete mutable cache state, for simulator snapshots. Geometry is
  // configuration, not state: save/restore assume an identically configured
  // cache on both sides.
  struct State {
    std::vector<Line> lines;
    std::vector<std::uint32_t> words;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    bool operator==(const State&) const = default;
  };
  State save_state() const { return {lines_, words_, hits_, misses_}; }
  void restore_state(const State& s);

 private:

  // Line payloads live in one contiguous buffer (words_per_line words per
  // line) so a fetch hit costs no per-line heap indirection.
  std::uint32_t* line_words(std::uint32_t line_index) {
    return words_.data() + static_cast<std::size_t>(line_index) * config_.words_per_line;
  }

  ICacheConfig config_;
  std::uint32_t line_bytes_;
  std::vector<Line> lines_;
  std::vector<std::uint32_t> words_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// The complete fetch path the pipeline's IMAU reads through.
class FetchPath {
 public:
  FetchPath(Memory* memory, const ICacheConfig& icache_config = {});

  // Fetches an instruction word, applying bus tamper and cache effects.
  // Inline: this runs once per dynamic instruction, and on the common path
  // (no I-cache, no tamper hook) it folds into a bare Memory::read32.
  std::uint32_t fetch(std::uint32_t address) {
    if (!icache_enabled_) return bus_read(address);
    const ICache::Access access =
        icache_.access(address, [this](std::uint32_t a) { return bus_read(a); });
    if (!access.hit) pending_stall_cycles_ += miss_penalty_;
    return access.word;
  }

  void set_bus_tamper(BusTamper* tamper) { tamper_ = tamper; }
  ICache* icache() { return icache_enabled_ ? &icache_ : nullptr; }
  const ICache* icache() const { return icache_enabled_ ? &icache_ : nullptr; }

  // Extra cycles accrued by cache misses since the last call.
  std::uint64_t take_stall_cycles() {
    const std::uint64_t cycles = pending_stall_cycles_;
    pending_stall_cycles_ = 0;
    return cycles;
  }

  // Words that have crossed the memory->processor bus so far. Snapshots
  // record this so a restored trial can re-arm a transfer-counting bus
  // tamper relative to where the golden run already was.
  std::uint64_t bus_transfers() const { return bus_transfers_; }
  void set_bus_transfers(std::uint64_t n) { bus_transfers_ = n; }

  std::uint64_t pending_stall_cycles() const { return pending_stall_cycles_; }
  void set_pending_stall_cycles(std::uint64_t cycles) { pending_stall_cycles_ = cycles; }

 private:
  std::uint32_t bus_read(std::uint32_t address) {
    ++bus_transfers_;
    std::uint32_t word = memory_->fetch32(address);
    if (tamper_ != nullptr) word = tamper_->on_transfer(address, word);
    return word;
  }

  Memory* memory_;
  BusTamper* tamper_ = nullptr;
  bool icache_enabled_;
  ICache icache_;
  unsigned miss_penalty_;
  std::uint64_t pending_stall_cycles_ = 0;
  std::uint64_t bus_transfers_ = 0;
};

}  // namespace cicmon::mem
