// Byte-addressable main memory.
//
// Sparse, page-granular storage so that fault campaigns — where corrupted
// instructions may compute wild addresses before the monitor stops them —
// never crash the host. Reads of unbacked pages return zero; writes allocate.
// Little-endian, matching the ISA encodings.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "casm/image.h"

namespace cicmon::mem {

class Memory {
 public:
  Memory() = default;

  std::uint8_t read8(std::uint32_t address) const;
  std::uint16_t read16(std::uint32_t address) const;
  std::uint32_t read32(std::uint32_t address) const;
  void write8(std::uint32_t address, std::uint8_t value);
  void write16(std::uint32_t address, std::uint16_t value);
  void write32(std::uint32_t address, std::uint32_t value);

  // Copies text + data sections into memory (the loader's job).
  void load_image(const casm_::Image& image);

  // Fault-injection primitive: flips one bit of the byte at `address`.
  void flip_bit(std::uint32_t address, unsigned bit_index);

  std::size_t pages_allocated() const { return pages_.size(); }

 private:
  static constexpr std::uint32_t kPageBits = 12;  // 4 KiB pages
  static constexpr std::uint32_t kPageSize = 1U << kPageBits;

  using Page = std::vector<std::uint8_t>;

  const Page* find_page(std::uint32_t address) const;
  Page& ensure_page(std::uint32_t address);

  std::unordered_map<std::uint32_t, Page> pages_;  // key: address >> kPageBits

  // Most-recently-used page, short-circuiting the hash lookup on the
  // sequential access patterns of instruction fetch. Safe to cache: mapped
  // values in an unordered_map are pointer-stable and pages are never erased.
  // NOTE: updated by const reads, so a Memory is not thread-safe even for
  // concurrent readers — the engine's ownership model is one Memory per Cpu
  // per trial (shared golden state is the immutable casm_::Image, never a
  // Memory).
  mutable std::uint32_t mru_key_ = 0xFFFF'FFFFU;
  mutable const Page* mru_page_ = nullptr;
};

}  // namespace cicmon::mem
