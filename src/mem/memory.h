// Byte-addressable main memory.
//
// Sparse, page-granular storage so that fault campaigns — where corrupted
// instructions may compute wild addresses before the monitor stops them —
// never crash the host. Reads of unbacked pages return zero; writes allocate.
// Little-endian, matching the ISA encodings.
//
// A Memory can additionally sit on top of a shared immutable *base image*
// (copy-on-write): reads fall through to the base, the first write to a base
// page copies it into the private overlay. The fault-campaign engine freezes
// one post-loader Memory per campaign and shares it across every trial, so
// trials stop paying the loader (and its hash computation) per CPU, and
// snapshots only need to carry the overlay delta.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "casm/image.h"

namespace cicmon::mem {

class Memory {
 public:
  static constexpr std::uint32_t kPageBits = 12;  // 4 KiB pages
  static constexpr std::uint32_t kPageSize = 1U << kPageBits;

  using Page = std::vector<std::uint8_t>;
  using PageMap = std::unordered_map<std::uint32_t, Page>;  // key: address >> kPageBits

  Memory() = default;

  // The accessors live in the header: instruction fetch performs a read32 per
  // dynamic instruction, and keeping the whole page-cache fast path visible
  // to the caller is worth a few lines of header.
  std::uint8_t read8(std::uint32_t address) const {
    const Page* page = find_page(address);
    return page ? (*page)[address & (kPageSize - 1)] : 0;
  }

  std::uint16_t read16(std::uint32_t address) const {
    return static_cast<std::uint16_t>(read8(address) | (read8(address + 1) << 8));
  }

  std::uint32_t read32(std::uint32_t address) const {
    // Fast path: whole word within one page.
    const std::uint32_t offset = address & (kPageSize - 1);
    if (offset + 4 <= kPageSize) {
      const Page* page = find_page(address);
      if (!page) return 0;
      const std::uint8_t* p = page->data() + offset;
      return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
             (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    }
    return static_cast<std::uint32_t>(read16(address)) |
           (static_cast<std::uint32_t>(read16(address + 2)) << 16);
  }

  // read32 through a second MRU slot reserved for instruction fetch.
  // Identical bytes to read32; it only exists so the once-per-instruction
  // text-page access does not ping-pong the shared MRU slot against the
  // data-page loads and stores in between. Word-aligned addresses only
  // (instruction fetch guarantees it).
  std::uint32_t fetch32(std::uint32_t address) const {
    const std::uint32_t key = address >> kPageBits;
    if (key != fetch_mru_key_) {
      const Page* page = fetch_find_slow(key);
      if (page == nullptr) return 0;
    }
    const std::uint8_t* p = fetch_mru_page_->data() + (address & (kPageSize - 1));
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
  }

  void write8(std::uint32_t address, std::uint8_t value) {
    ensure_page(address)[address & (kPageSize - 1)] = value;
  }

  void write16(std::uint32_t address, std::uint16_t value) {
    write8(address, static_cast<std::uint8_t>(value));
    write8(address + 1, static_cast<std::uint8_t>(value >> 8));
  }

  void write32(std::uint32_t address, std::uint32_t value) {
    const std::uint32_t offset = address & (kPageSize - 1);
    if (offset + 4 <= kPageSize) {
      std::uint8_t* p = ensure_page(address).data() + offset;
      p[0] = static_cast<std::uint8_t>(value);
      p[1] = static_cast<std::uint8_t>(value >> 8);
      p[2] = static_cast<std::uint8_t>(value >> 16);
      p[3] = static_cast<std::uint8_t>(value >> 24);
      return;
    }
    write16(address, static_cast<std::uint16_t>(value));
    write16(address + 2, static_cast<std::uint16_t>(value >> 16));
  }

  // Copies text + data sections into memory (the loader's job).
  void load_image(const casm_::Image& image);

  // Fault-injection primitive: flips one bit of the byte at `address`.
  void flip_bit(std::uint32_t address, unsigned bit_index);

  // --- Copy-on-write base image ---
  //
  // freeze() moves the current contents into a shared immutable base and
  // leaves this Memory reading through it with an empty overlay. The
  // returned map can seed any number of other Memories via set_base();
  // each then copies pages privately on first write.
  std::shared_ptr<const PageMap> freeze();
  void set_base(std::shared_ptr<const PageMap> base);

  // The private overlay (pages touched since freeze/set_base/restore) —
  // exactly the delta a snapshot needs to carry.
  const PageMap& delta_pages() const { return pages_; }

  // Replaces the overlay wholesale (snapshot restore). The base is untouched.
  void restore_pages(PageMap delta);

  // Overlay pages only; base pages are shared, not allocations of this Memory.
  std::size_t pages_allocated() const { return pages_.size(); }

  // How many base pages this overlay copied on first write — the campaign
  // layer publishes it per trial as campaign.cow_pages_copied.
  std::uint64_t cow_pages_copied() const { return cow_pages_copied_; }

 private:
  const Page* find_page(std::uint32_t address) const {
    const std::uint32_t key = address >> kPageBits;
    if (key == mru_key_) return mru_page_;
    return find_page_slow(address);
  }

  const Page* find_page_slow(std::uint32_t address) const;
  const Page* fetch_find_slow(std::uint32_t key) const;
  Page& ensure_page(std::uint32_t address);

  void reset_mru() {
    mru_key_ = fetch_mru_key_ = 0xFFFF'FFFFU;
    mru_page_ = fetch_mru_page_ = nullptr;
  }

  PageMap pages_;  // private overlay (all pages when there is no base)
  std::uint64_t cow_pages_copied_ = 0;
  // Shared immutable post-loader image; null when this Memory stands alone.
  // Reads fall through to it, the first write to one of its pages copies the
  // page into the overlay (copy-on-write).
  std::shared_ptr<const PageMap> base_;

  // Most-recently-used page, short-circuiting the hash lookup on the
  // sequential access patterns of instruction fetch. Safe to cache: mapped
  // values in an unordered_map are pointer-stable, pages are never erased,
  // and ensure_page retargets both slots when a copy-on-write supersedes a
  // cached base page. NOTE: updated by const reads, so a Memory is not
  // thread-safe even for concurrent readers — the engine's ownership model is
  // one Memory per Cpu per trial (shared golden state is the immutable base
  // PageMap, which no Memory mutates).
  mutable std::uint32_t mru_key_ = 0xFFFF'FFFFU;
  mutable const Page* mru_page_ = nullptr;
  mutable std::uint32_t fetch_mru_key_ = 0xFFFF'FFFFU;
  mutable const Page* fetch_mru_page_ = nullptr;
};

}  // namespace cicmon::mem
