#include "mem/fetch_path.h"

#include "support/error.h"

namespace cicmon::mem {

ICache::ICache(const ICacheConfig& config) : config_(config) {
  support::check(config_.num_lines > 0 && (config_.num_lines & (config_.num_lines - 1)) == 0,
                 "ICache: num_lines must be a power of two");
  support::check(config_.words_per_line > 0 &&
                     (config_.words_per_line & (config_.words_per_line - 1)) == 0,
                 "ICache: words_per_line must be a power of two");
  line_bytes_ = config_.words_per_line * 4;
  lines_.resize(config_.num_lines);
  words_.resize(static_cast<std::size_t>(config_.num_lines) * config_.words_per_line, 0);
}

bool ICache::flip_random_resident_bit(support::Rng& rng) {
  std::vector<std::uint32_t> valid_lines;
  for (std::uint32_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].valid) valid_lines.push_back(i);
  }
  if (valid_lines.empty()) return false;
  const std::uint32_t line_index = valid_lines[rng.below(valid_lines.size())];
  const auto word_index = static_cast<std::uint32_t>(rng.below(config_.words_per_line));
  const auto bit = static_cast<unsigned>(rng.below(32));
  line_words(line_index)[word_index] ^= 1U << bit;
  return true;
}

void ICache::invalidate_all() {
  for (Line& line : lines_) line.valid = false;
}

void ICache::restore_state(const State& s) {
  support::check(s.lines.size() == lines_.size() && s.words.size() == words_.size(),
                 "ICache::restore_state: geometry mismatch");
  lines_ = s.lines;
  words_ = s.words;
  hits_ = s.hits;
  misses_ = s.misses;
}

FetchPath::FetchPath(Memory* memory, const ICacheConfig& icache_config)
    : memory_(memory),
      icache_enabled_(icache_config.enabled),
      icache_(icache_config),
      miss_penalty_(icache_config.miss_penalty) {
  support::check(memory_ != nullptr, "FetchPath: null memory");
}

}  // namespace cicmon::mem
