#include "mem/fetch_path.h"

#include "support/error.h"

namespace cicmon::mem {

ICache::ICache(const ICacheConfig& config) : config_(config) {
  support::check(config_.num_lines > 0 && (config_.num_lines & (config_.num_lines - 1)) == 0,
                 "ICache: num_lines must be a power of two");
  support::check(config_.words_per_line > 0 &&
                     (config_.words_per_line & (config_.words_per_line - 1)) == 0,
                 "ICache: words_per_line must be a power of two");
  line_bytes_ = config_.words_per_line * 4;
  lines_.resize(config_.num_lines);
  words_.resize(static_cast<std::size_t>(config_.num_lines) * config_.words_per_line, 0);
}

bool ICache::flip_random_resident_bit(support::Rng& rng) {
  std::vector<std::uint32_t> valid_lines;
  for (std::uint32_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].valid) valid_lines.push_back(i);
  }
  if (valid_lines.empty()) return false;
  const std::uint32_t line_index = valid_lines[rng.below(valid_lines.size())];
  const auto word_index = static_cast<std::uint32_t>(rng.below(config_.words_per_line));
  const auto bit = static_cast<unsigned>(rng.below(32));
  line_words(line_index)[word_index] ^= 1U << bit;
  return true;
}

void ICache::invalidate_all() {
  for (Line& line : lines_) line.valid = false;
}

FetchPath::FetchPath(Memory* memory, const ICacheConfig& icache_config)
    : memory_(memory),
      icache_enabled_(icache_config.enabled),
      icache_(icache_config),
      miss_penalty_(icache_config.miss_penalty) {
  support::check(memory_ != nullptr, "FetchPath: null memory");
}

std::uint32_t FetchPath::bus_read(std::uint32_t address) {
  std::uint32_t word = memory_->read32(address);
  if (tamper_ != nullptr) word = tamper_->on_transfer(address, word);
  return word;
}

std::uint32_t FetchPath::fetch(std::uint32_t address) {
  if (!icache_enabled_) return bus_read(address);
  const ICache::Access access =
      icache_.access(address, [this](std::uint32_t a) { return bus_read(a); });
  if (!access.hit) pending_stall_cycles_ += miss_penalty_;
  return access.word;
}

std::uint64_t FetchPath::take_stall_cycles() {
  const std::uint64_t cycles = pending_stall_cycles_;
  pending_stall_cycles_ = 0;
  return cycles;
}

}  // namespace cicmon::mem
