#include "mem/memory.h"

namespace cicmon::mem {

const Memory::Page* Memory::find_page(std::uint32_t address) const {
  const std::uint32_t key = address >> kPageBits;
  if (key == mru_key_) return mru_page_;
  auto it = pages_.find(key);
  if (it == pages_.end()) return nullptr;
  mru_key_ = key;
  mru_page_ = &it->second;
  return mru_page_;
}

Memory::Page& Memory::ensure_page(std::uint32_t address) {
  const std::uint32_t key = address >> kPageBits;
  Page& page = pages_[key];
  if (page.empty()) page.resize(kPageSize, 0);
  mru_key_ = key;
  mru_page_ = &page;
  return page;
}

std::uint8_t Memory::read8(std::uint32_t address) const {
  const Page* page = find_page(address);
  return page ? (*page)[address & (kPageSize - 1)] : 0;
}

std::uint16_t Memory::read16(std::uint32_t address) const {
  return static_cast<std::uint16_t>(read8(address) | (read8(address + 1) << 8));
}

std::uint32_t Memory::read32(std::uint32_t address) const {
  // Fast path: whole word within one page.
  const std::uint32_t offset = address & (kPageSize - 1);
  if (offset + 4 <= kPageSize) {
    const Page* page = find_page(address);
    if (!page) return 0;
    const std::uint8_t* p = page->data() + offset;
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
  }
  return static_cast<std::uint32_t>(read16(address)) |
         (static_cast<std::uint32_t>(read16(address + 2)) << 16);
}

void Memory::write8(std::uint32_t address, std::uint8_t value) {
  ensure_page(address)[address & (kPageSize - 1)] = value;
}

void Memory::write16(std::uint32_t address, std::uint16_t value) {
  write8(address, static_cast<std::uint8_t>(value));
  write8(address + 1, static_cast<std::uint8_t>(value >> 8));
}

void Memory::write32(std::uint32_t address, std::uint32_t value) {
  const std::uint32_t offset = address & (kPageSize - 1);
  if (offset + 4 <= kPageSize) {
    std::uint8_t* p = ensure_page(address).data() + offset;
    p[0] = static_cast<std::uint8_t>(value);
    p[1] = static_cast<std::uint8_t>(value >> 8);
    p[2] = static_cast<std::uint8_t>(value >> 16);
    p[3] = static_cast<std::uint8_t>(value >> 24);
    return;
  }
  write16(address, static_cast<std::uint16_t>(value));
  write16(address + 2, static_cast<std::uint16_t>(value >> 16));
}

void Memory::load_image(const casm_::Image& image) {
  std::uint32_t address = image.text_base;
  for (std::uint32_t word : image.text) {
    write32(address, word);
    address += 4;
  }
  address = image.data_base;
  for (std::uint8_t byte : image.data) {
    write8(address, byte);
    ++address;
  }
}

void Memory::flip_bit(std::uint32_t address, unsigned bit_index) {
  const std::uint8_t byte = read8(address);
  write8(address, static_cast<std::uint8_t>(byte ^ (1U << (bit_index & 7U))));
}

}  // namespace cicmon::mem
