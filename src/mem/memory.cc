#include "mem/memory.h"

#include <utility>

namespace cicmon::mem {

const Memory::Page* Memory::find_page_slow(std::uint32_t address) const {
  const std::uint32_t key = address >> kPageBits;
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    if (!base_) return nullptr;
    auto bit = base_->find(key);
    if (bit == base_->end()) return nullptr;
    mru_key_ = key;
    mru_page_ = &bit->second;
    return mru_page_;
  }
  mru_key_ = key;
  mru_page_ = &it->second;
  return mru_page_;
}

const Memory::Page* Memory::fetch_find_slow(std::uint32_t key) const {
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    if (!base_) return nullptr;
    auto bit = base_->find(key);
    if (bit == base_->end()) return nullptr;
    fetch_mru_key_ = key;
    fetch_mru_page_ = &bit->second;
    return fetch_mru_page_;
  }
  fetch_mru_key_ = key;
  fetch_mru_page_ = &it->second;
  return fetch_mru_page_;
}

Memory::Page& Memory::ensure_page(std::uint32_t address) {
  const std::uint32_t key = address >> kPageBits;
  auto [it, inserted] = pages_.try_emplace(key);
  Page& page = it->second;
  if (inserted) {
    // Copy-on-write: materialize the base page (or a zero page) privately.
    if (base_) {
      auto bit = base_->find(key);
      if (bit != base_->end()) {
        page = bit->second;
        ++cow_pages_copied_;
      }
    }
    if (page.empty()) page.resize(kPageSize, 0);
    // Either MRU slot may still point at the superseded base page; retarget
    // so subsequent reads observe the write.
    if (fetch_mru_key_ == key) fetch_mru_page_ = &page;
  }
  mru_key_ = key;
  mru_page_ = &page;
  return page;
}

void Memory::load_image(const casm_::Image& image) {
  std::uint32_t address = image.text_base;
  for (std::uint32_t word : image.text) {
    write32(address, word);
    address += 4;
  }
  address = image.data_base;
  for (std::uint8_t byte : image.data) {
    write8(address, byte);
    ++address;
  }
}

void Memory::flip_bit(std::uint32_t address, unsigned bit_index) {
  const std::uint8_t byte = read8(address);
  write8(address, static_cast<std::uint8_t>(byte ^ (1U << (bit_index & 7U))));
}

std::shared_ptr<const Memory::PageMap> Memory::freeze() {
  auto frozen = std::make_shared<PageMap>(std::move(pages_));
  // Pages already in the old base stay reachable through it: merge them in so
  // the new base is self-contained (freeze-of-a-frozen Memory keeps working).
  if (base_) {
    for (const auto& [key, page] : *base_) frozen->try_emplace(key, page);
  }
  base_ = std::move(frozen);
  pages_ = PageMap{};
  reset_mru();
  return base_;
}

void Memory::set_base(std::shared_ptr<const PageMap> base) {
  base_ = std::move(base);
  pages_.clear();
  reset_mru();
}

void Memory::restore_pages(PageMap delta) {
  pages_ = std::move(delta);
  reset_mru();
}

}  // namespace cicmon::mem
