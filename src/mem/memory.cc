#include "mem/memory.h"

namespace cicmon::mem {

const Memory::Page* Memory::find_page_slow(std::uint32_t address) const {
  const std::uint32_t key = address >> kPageBits;
  auto it = pages_.find(key);
  if (it == pages_.end()) return nullptr;
  mru_key_ = key;
  mru_page_ = &it->second;
  return mru_page_;
}

Memory::Page& Memory::ensure_page(std::uint32_t address) {
  const std::uint32_t key = address >> kPageBits;
  Page& page = pages_[key];
  if (page.empty()) page.resize(kPageSize, 0);
  mru_key_ = key;
  mru_page_ = &page;
  return page;
}

void Memory::load_image(const casm_::Image& image) {
  std::uint32_t address = image.text_base;
  for (std::uint32_t word : image.text) {
    write32(address, word);
    address += 4;
  }
  address = image.data_base;
  for (std::uint8_t byte : image.data) {
    write8(address, byte);
    ++address;
  }
}

void Memory::flip_bit(std::uint32_t address, unsigned bit_index) {
  const std::uint8_t byte = read8(address);
  write8(address, static_cast<std::uint8_t>(byte ^ (1U << (bit_index & 7U))));
}

}  // namespace cicmon::mem
