// Experiment runners for the paper's evaluation (§6).
//
// Each function reproduces the data behind one table or figure; the bench
// binaries format these rows, and the integration tests assert their
// shapes. All runs are deterministic for a given (scale, seed).
//
// The sweeps fan out per (workload, config) cell over the parallel engine
// (support/parallel.h) and gather results in input order, so every table
// and figure is byte-identical to the serial run at any job count. `jobs`
// follows the engine contract: 0 = CICMON_JOBS / hardware concurrency,
// 1 = the exact legacy serial path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu.h"
#include "support/stats.h"
#include "workloads/workloads.h"

namespace cicmon::sim {

// Canonical workload execution: builds the image at `scale` and runs it on
// the configured machine. Throws if the workload terminates abnormally
// (self-check failure, watchdog) — experiment data from a wrong simulation
// would be meaningless.
cpu::RunResult run_workload(std::string_view workload, const cpu::CpuConfig& config,
                            double scale = 1.0, std::uint64_t seed = 42);

// --- Figure 6: IHT miss rate vs table size -------------------------------
struct Fig6Row {
  std::string workload;
  std::vector<double> miss_rates;  // one per entry count, same order as input
};
std::vector<Fig6Row> fig6_miss_rates(const std::vector<unsigned>& entry_counts,
                                     double scale = 1.0, unsigned jobs = 0);

// --- Table 1: cycle-count overhead ---------------------------------------
struct Table1Row {
  std::string workload;
  std::uint64_t cycles_baseline = 0;  // monitoring off
  std::uint64_t cycles_cic8 = 0;
  std::uint64_t cycles_cic16 = 0;
  double overhead_cic8 = 0.0;   // fraction
  double overhead_cic16 = 0.0;
};
std::vector<Table1Row> table1_overheads(double scale = 1.0, unsigned jobs = 0);

// --- Workload characterisation (§6.1 block counts / locality) ------------
struct BlockStats {
  std::string workload;
  std::uint64_t static_regions = 0;    // FHT records
  std::uint64_t dynamic_keys = 0;      // distinct (start, end) keys executed
  std::uint64_t lookups = 0;
  double mean_block_instructions = 0.0;
  // LRU stack-distance profile of the block reference stream: the fraction
  // of lookups whose reuse distance is < the given capacities (i.e. the hit
  // rate of an ideal LRU table of that size).
  std::vector<double> lru_hit_rate;    // one per capacity in `capacities`
  std::vector<unsigned> capacities;
};
BlockStats characterize_blocks(std::string_view workload,
                               const std::vector<unsigned>& capacities,
                               double scale = 1.0);

// Characterisation of all nine workloads (Figure 6 order), one engine cell
// per workload. Each workload's reference stream is inherently serial; the
// fan-out is across workloads.
std::vector<BlockStats> characterize_all_blocks(const std::vector<unsigned>& capacities,
                                                double scale = 1.0, unsigned jobs = 0);

}  // namespace cicmon::sim
