// Experiment runners for the paper's evaluation (§6).
//
// Each function reproduces the data behind one table or figure; the bench
// binaries format these rows, and the integration tests assert their
// shapes. All runs are deterministic for a given (scale, seed).
//
// Every sweep is described as an exp::SweepSpec — a deterministic grid of
// (workload, config) cells — and executed by the unified sweep engine
// (exp/sweep.h), which provides the parallel fan-out, process sharding,
// partial-summary artifacts, resume, and byte-identical merge for all of
// them at once. The `*_sweep` builders expose the grids; the `*_rows`
// decoders rebuild typed rows from a full (possibly merged) cell vector;
// and the legacy entry points below are run-everything wrappers. `jobs`
// follows the engine contract: 0 = CICMON_JOBS / hardware concurrency,
// 1 = the exact legacy serial path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu.h"
#include "exp/sweep.h"
#include "support/stats.h"
#include "workloads/workloads.h"

namespace cicmon::sim {

// Canonical workload execution: builds the image at `scale` and runs it on
// the configured machine. Throws if the workload terminates abnormally
// (self-check failure, watchdog) — experiment data from a wrong simulation
// would be meaningless.
cpu::RunResult run_workload(std::string_view workload, const cpu::CpuConfig& config,
                            double scale = 1.0, std::uint64_t seed = 42);

// --- Figure 6: IHT miss rate vs table size -------------------------------
struct Fig6Row {
  std::string workload;
  std::vector<double> miss_rates;  // one per entry count, same order as input
};
// Grid: one cell per (workload, entry count), f64 = {miss_rate}.
exp::SweepSpec fig6_sweep(std::vector<unsigned> entry_counts, double scale = 1.0);
std::vector<Fig6Row> fig6_rows(const std::vector<exp::CellResult>& cells,
                               std::size_t per_workload);
std::vector<Fig6Row> fig6_miss_rates(const std::vector<unsigned>& entry_counts,
                                     double scale = 1.0, unsigned jobs = 0);

// --- Table 1: cycle-count overhead ---------------------------------------
struct Table1Row {
  std::string workload;
  std::uint64_t cycles_baseline = 0;  // monitoring off
  std::uint64_t cycles_cic8 = 0;
  std::uint64_t cycles_cic16 = 0;
  double overhead_cic8 = 0.0;   // fraction
  double overhead_cic16 = 0.0;
};
// Grid: three cells per workload (baseline, CIC8, CIC16), u64 = {cycles};
// the overheads are derived in the decoder once a workload's baseline and
// monitored cells are both in.
exp::SweepSpec table1_sweep(double scale = 1.0);
std::vector<Table1Row> table1_rows(const std::vector<exp::CellResult>& cells);
std::vector<Table1Row> table1_overheads(double scale = 1.0, unsigned jobs = 0);

// --- Workload characterisation (§6.1 block counts / locality) ------------
struct BlockStats {
  std::string workload;
  std::uint64_t static_regions = 0;    // FHT records
  std::uint64_t dynamic_keys = 0;      // distinct (start, end) keys executed
  std::uint64_t lookups = 0;
  std::uint64_t instructions = 0;      // dynamic instruction count of the run
  double mean_block_instructions = 0.0;
  // LRU stack-distance profile of the block reference stream: the fraction
  // of lookups whose reuse distance is < the given capacities (i.e. the hit
  // rate of an ideal LRU table of that size).
  std::vector<double> lru_hit_rate;    // one per capacity in `capacities`
  std::vector<unsigned> capacities;
};
BlockStats characterize_blocks(std::string_view workload,
                               const std::vector<unsigned>& capacities,
                               double scale = 1.0);

// Grid: one cell per workload (each workload's reference stream is
// inherently serial; the fan-out is across workloads). u64 =
// {static_regions, dynamic_keys, lookups, instructions}, f64 = one LRU hit
// rate per capacity.
exp::SweepSpec blocks_sweep(std::vector<unsigned> capacities, double scale = 1.0);
std::vector<BlockStats> blocks_rows(const std::vector<exp::CellResult>& cells,
                                    const std::vector<unsigned>& capacities);
std::vector<BlockStats> characterize_all_blocks(const std::vector<unsigned>& capacities,
                                                double scale = 1.0, unsigned jobs = 0);

// --- Simulator throughput bench ------------------------------------------
// Grid: two cells per workload (baseline, CIC16 monitored), u64 =
// {instructions, cycles}, f64 = {host wall ms}. The u64 slots are simulated
// results and deterministic; the wall clock is a host measurement and the
// one payload the byte-identical-merge guarantee does not cover. `best_of`
// repeats each cell's identical run N times and keeps the fastest wall clock
// (simulated payloads are unaffected).
exp::SweepSpec bench_sweep(double scale = 1.0, unsigned best_of = 1);

}  // namespace cicmon::sim
