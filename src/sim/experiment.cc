#include "sim/experiment.h"

#include <list>
#include <map>
#include <utility>

#include "cfg/fht.h"
#include "support/error.h"
#include "support/parallel.h"

namespace cicmon::sim {

cpu::RunResult run_workload(std::string_view workload, const cpu::CpuConfig& config,
                            double scale, std::uint64_t seed) {
  workloads::BuildOptions options;
  options.scale = scale;
  options.seed = seed;
  const casm_::Image image = workloads::build_workload(workload, options);
  cpu::Cpu cpu(config, image);
  const cpu::RunResult result = cpu.run();
  support::check(result.reason == cpu::ExitReason::kExit,
                 std::string(workload) + ": workload did not exit cleanly (" +
                     std::string(cpu::exit_reason_name(result.reason)) + ")");
  return result;
}

std::vector<Fig6Row> fig6_miss_rates(const std::vector<unsigned>& entry_counts, double scale,
                                     unsigned jobs) {
  const auto infos = workloads::all_workloads();
  const std::size_t per_workload = entry_counts.size();
  std::vector<double> miss_rates(infos.size() * per_workload);
  support::parallel_for(miss_rates.size(), jobs, [&](std::size_t cell) {
    const workloads::WorkloadInfo& info = infos[cell / per_workload];
    cpu::CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = entry_counts[cell % per_workload];
    miss_rates[cell] = run_workload(info.name, config, scale).iht.miss_rate();
  });

  std::vector<Fig6Row> rows;
  rows.reserve(infos.size());
  for (std::size_t w = 0; w < infos.size(); ++w) {
    Fig6Row row;
    row.workload = std::string(infos[w].name);
    row.miss_rates.assign(miss_rates.begin() + static_cast<std::ptrdiff_t>(w * per_workload),
                          miss_rates.begin() + static_cast<std::ptrdiff_t>((w + 1) * per_workload));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Table1Row> table1_overheads(double scale, unsigned jobs) {
  // Three cells per workload: baseline (monitoring off), CIC8, CIC16. The
  // overheads are derived after the gather, once a workload's baseline and
  // monitored cells are both in.
  static constexpr unsigned kVariants[] = {0U, 8U, 16U};
  static constexpr std::size_t kPerWorkload = std::size(kVariants);
  const auto infos = workloads::all_workloads();
  std::vector<std::uint64_t> cycles(infos.size() * kPerWorkload);
  support::parallel_for(cycles.size(), jobs, [&](std::size_t cell) {
    const workloads::WorkloadInfo& info = infos[cell / kPerWorkload];
    const unsigned entries = kVariants[cell % kPerWorkload];
    cpu::CpuConfig config;
    if (entries != 0) {
      config.monitoring = true;
      config.cic.iht_entries = entries;
    }
    cycles[cell] = run_workload(info.name, config, scale).cycles;
  });

  std::vector<Table1Row> rows;
  rows.reserve(infos.size());
  for (std::size_t w = 0; w < infos.size(); ++w) {
    Table1Row row;
    row.workload = std::string(infos[w].name);
    row.cycles_baseline = cycles[w * kPerWorkload];
    row.cycles_cic8 = cycles[w * kPerWorkload + 1];
    row.cycles_cic16 = cycles[w * kPerWorkload + 2];
    const double baseline = static_cast<double>(row.cycles_baseline);
    row.overhead_cic8 = static_cast<double>(row.cycles_cic8) / baseline - 1.0;
    row.overhead_cic16 = static_cast<double>(row.cycles_cic16) / baseline - 1.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

BlockStats characterize_blocks(std::string_view workload,
                               const std::vector<unsigned>& capacities, double scale) {
  workloads::BuildOptions options;
  options.scale = scale;
  const casm_::Image image = workloads::build_workload(workload, options);

  // A large IHT so capacity effects do not perturb the reference stream.
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 1024;

  // Exact LRU stack distances via a recency list (streams are short enough
  // that the O(n·k) scan is fine and keeps the computation transparent).
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  std::list<Key> recency;
  std::map<Key, std::list<Key>::iterator> where;
  support::Histogram distances;
  std::uint64_t lookups = 0;

  cpu::Cpu cpu(config, image);
  cpu.set_lookup_observer([&](std::uint32_t start, std::uint32_t end) {
    const Key key{start, end};
    ++lookups;
    auto it = where.find(key);
    if (it == where.end()) {
      distances.add(-1);  // cold reference
    } else {
      std::int64_t depth = 0;
      for (auto pos = recency.begin(); pos != it->second; ++pos) ++depth;
      distances.add(depth);
      recency.erase(it->second);
    }
    recency.push_front(key);
    where[key] = recency.begin();
  });
  const cpu::RunResult result = cpu.run();
  support::check(result.reason == cpu::ExitReason::kExit,
                 std::string(workload) + ": characterisation run did not exit cleanly");

  BlockStats stats;
  stats.workload = std::string(workload);
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  stats.static_regions = cfg::build_fht(image, *unit).size();
  stats.dynamic_keys = where.size();
  stats.lookups = lookups;
  stats.mean_block_instructions =
      lookups == 0 ? 0.0
                   : static_cast<double>(result.instructions) / static_cast<double>(lookups);
  stats.capacities = capacities;
  // Hit in an LRU table of C entries <=> stack distance in [0, C); the -1
  // bin holds cold references and is excluded.
  const double cold = distances.cdf_at(-1);
  for (unsigned capacity : capacities) {
    stats.lru_hit_rate.push_back(
        distances.cdf_at(static_cast<std::int64_t>(capacity) - 1) - cold);
  }
  return stats;
}

std::vector<BlockStats> characterize_all_blocks(const std::vector<unsigned>& capacities,
                                                double scale, unsigned jobs) {
  const auto infos = workloads::all_workloads();
  std::vector<BlockStats> rows(infos.size());
  support::parallel_for(infos.size(), jobs, [&](std::size_t w) {
    rows[w] = characterize_blocks(infos[w].name, capacities, scale);
  });
  return rows;
}

}  // namespace cicmon::sim
