#include "sim/experiment.h"

#include <list>
#include <map>
#include <utility>

#include "cfg/fht.h"
#include "support/error.h"

namespace cicmon::sim {

cpu::RunResult run_workload(std::string_view workload, const cpu::CpuConfig& config,
                            double scale, std::uint64_t seed) {
  workloads::BuildOptions options;
  options.scale = scale;
  options.seed = seed;
  const casm_::Image image = workloads::build_workload(workload, options);
  cpu::Cpu cpu(config, image);
  const cpu::RunResult result = cpu.run();
  support::check(result.reason == cpu::ExitReason::kExit,
                 std::string(workload) + ": workload did not exit cleanly (" +
                     std::string(cpu::exit_reason_name(result.reason)) + ")");
  return result;
}

std::vector<Fig6Row> fig6_miss_rates(const std::vector<unsigned>& entry_counts, double scale) {
  std::vector<Fig6Row> rows;
  for (const workloads::WorkloadInfo& info : workloads::all_workloads()) {
    Fig6Row row;
    row.workload = std::string(info.name);
    for (unsigned entries : entry_counts) {
      cpu::CpuConfig config;
      config.monitoring = true;
      config.cic.iht_entries = entries;
      const cpu::RunResult result = run_workload(info.name, config, scale);
      row.miss_rates.push_back(result.iht.miss_rate());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Table1Row> table1_overheads(double scale) {
  std::vector<Table1Row> rows;
  for (const workloads::WorkloadInfo& info : workloads::all_workloads()) {
    Table1Row row;
    row.workload = std::string(info.name);

    cpu::CpuConfig baseline;  // monitoring off
    row.cycles_baseline = run_workload(info.name, baseline, scale).cycles;

    for (unsigned entries : {8U, 16U}) {
      cpu::CpuConfig config;
      config.monitoring = true;
      config.cic.iht_entries = entries;
      const std::uint64_t cycles = run_workload(info.name, config, scale).cycles;
      const double overhead =
          static_cast<double>(cycles) / static_cast<double>(row.cycles_baseline) - 1.0;
      if (entries == 8) {
        row.cycles_cic8 = cycles;
        row.overhead_cic8 = overhead;
      } else {
        row.cycles_cic16 = cycles;
        row.overhead_cic16 = overhead;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

BlockStats characterize_blocks(std::string_view workload,
                               const std::vector<unsigned>& capacities, double scale) {
  workloads::BuildOptions options;
  options.scale = scale;
  const casm_::Image image = workloads::build_workload(workload, options);

  // A large IHT so capacity effects do not perturb the reference stream.
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 1024;

  // Exact LRU stack distances via a recency list (streams are short enough
  // that the O(n·k) scan is fine and keeps the computation transparent).
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  std::list<Key> recency;
  std::map<Key, std::list<Key>::iterator> where;
  support::Histogram distances;
  std::uint64_t lookups = 0;

  cpu::Cpu cpu(config, image);
  cpu.set_lookup_observer([&](std::uint32_t start, std::uint32_t end) {
    const Key key{start, end};
    ++lookups;
    auto it = where.find(key);
    if (it == where.end()) {
      distances.add(-1);  // cold reference
    } else {
      std::int64_t depth = 0;
      for (auto pos = recency.begin(); pos != it->second; ++pos) ++depth;
      distances.add(depth);
      recency.erase(it->second);
    }
    recency.push_front(key);
    where[key] = recency.begin();
  });
  const cpu::RunResult result = cpu.run();
  support::check(result.reason == cpu::ExitReason::kExit,
                 std::string(workload) + ": characterisation run did not exit cleanly");

  BlockStats stats;
  stats.workload = std::string(workload);
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  stats.static_regions = cfg::build_fht(image, *unit).size();
  stats.dynamic_keys = where.size();
  stats.lookups = lookups;
  stats.mean_block_instructions =
      lookups == 0 ? 0.0
                   : static_cast<double>(result.instructions) / static_cast<double>(lookups);
  stats.capacities = capacities;
  // Hit in an LRU table of C entries <=> stack distance in [0, C); the -1
  // bin holds cold references and is excluded.
  const double cold = distances.cdf_at(-1);
  for (unsigned capacity : capacities) {
    stats.lru_hit_rate.push_back(
        distances.cdf_at(static_cast<std::int64_t>(capacity) - 1) - cold);
  }
  return stats;
}

}  // namespace cicmon::sim
