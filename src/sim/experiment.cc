#include "sim/experiment.h"

#include <chrono>
#include <list>
#include <map>
#include <utility>

#include "cfg/fht.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace cicmon::sim {
namespace {

// Comma-joined list parameter ("1,8,16,32") for shard artifacts.
std::string join_list(const std::vector<unsigned>& values) {
  std::string out;
  for (const unsigned value : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(value);
  }
  return out;
}

}  // namespace

cpu::RunResult run_workload(std::string_view workload, const cpu::CpuConfig& config,
                            double scale, std::uint64_t seed) {
  workloads::BuildOptions options;
  options.scale = scale;
  options.seed = seed;
  const casm_::Image image = workloads::build_workload(workload, options);
  cpu::Cpu cpu(config, image);
  const cpu::RunResult result = cpu.run();
  cpu.publish_metrics();
  support::check(result.reason == cpu::ExitReason::kExit,
                 std::string(workload) + ": workload did not exit cleanly (" +
                     std::string(cpu::exit_reason_name(result.reason)) + ")");
  return result;
}

// --- Figure 6 -----------------------------------------------------------

exp::SweepSpec fig6_sweep(std::vector<unsigned> entry_counts, double scale) {
  const auto infos = workloads::all_workloads();
  const std::size_t per_workload = entry_counts.size();
  exp::SweepSpec spec;
  spec.sweep = "fig6";
  spec.params = {{"scale", exp::fmt_f64(scale)}, {"entries", join_list(entry_counts)}};
  spec.cells = infos.size() * per_workload;
  spec.cell_key = [infos, per_workload, entry_counts](std::size_t cell) {
    return std::string(infos[cell / per_workload].name) + "/entries" +
           std::to_string(entry_counts[cell % per_workload]);
  };
  spec.run_cell = [infos, per_workload, entry_counts, scale](std::size_t cell) {
    cpu::CpuConfig config;
    config.monitoring = true;
    config.cic.iht_entries = entry_counts[cell % per_workload];
    exp::CellResult result;
    result.f64 = {run_workload(infos[cell / per_workload].name, config, scale).iht.miss_rate()};
    return result;
  };
  return spec;
}

std::vector<Fig6Row> fig6_rows(const std::vector<exp::CellResult>& cells,
                               std::size_t per_workload) {
  const auto infos = workloads::all_workloads();
  support::check(per_workload > 0 && cells.size() == infos.size() * per_workload,
                 "fig6 cell vector does not match the workload grid");
  std::vector<Fig6Row> rows;
  rows.reserve(infos.size());
  for (std::size_t w = 0; w < infos.size(); ++w) {
    Fig6Row row;
    row.workload = std::string(infos[w].name);
    for (std::size_t e = 0; e < per_workload; ++e) {
      const exp::CellResult& cell = cells[w * per_workload + e];
      support::check(cell.f64.size() == 1, "fig6 cell payload has the wrong shape");
      row.miss_rates.push_back(cell.f64[0]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Fig6Row> fig6_miss_rates(const std::vector<unsigned>& entry_counts, double scale,
                                     unsigned jobs) {
  return fig6_rows(exp::run_all(fig6_sweep(entry_counts, scale), jobs), entry_counts.size());
}

// --- Table 1 ------------------------------------------------------------

namespace {
// Three cells per workload: baseline (monitoring off), CIC8, CIC16.
constexpr unsigned kTable1Variants[] = {0U, 8U, 16U};
constexpr std::size_t kTable1PerWorkload = std::size(kTable1Variants);
}  // namespace

exp::SweepSpec table1_sweep(double scale) {
  const auto infos = workloads::all_workloads();
  exp::SweepSpec spec;
  spec.sweep = "table1";
  spec.params = {{"scale", exp::fmt_f64(scale)}};
  spec.cells = infos.size() * kTable1PerWorkload;
  spec.cell_key = [infos](std::size_t cell) {
    const unsigned entries = kTable1Variants[cell % kTable1PerWorkload];
    return std::string(infos[cell / kTable1PerWorkload].name) + "/" +
           (entries == 0 ? "baseline" : "cic" + std::to_string(entries));
  };
  spec.run_cell = [infos, scale](std::size_t cell) {
    const unsigned entries = kTable1Variants[cell % kTable1PerWorkload];
    cpu::CpuConfig config;
    if (entries != 0) {
      config.monitoring = true;
      config.cic.iht_entries = entries;
    }
    exp::CellResult result;
    result.u64 = {run_workload(infos[cell / kTable1PerWorkload].name, config, scale).cycles};
    return result;
  };
  return spec;
}

std::vector<Table1Row> table1_rows(const std::vector<exp::CellResult>& cells) {
  const auto infos = workloads::all_workloads();
  support::check(cells.size() == infos.size() * kTable1PerWorkload,
                 "table1 cell vector does not match the workload grid");
  for (const exp::CellResult& cell : cells) {
    support::check(cell.u64.size() == 1, "table1 cell payload has the wrong shape");
  }
  std::vector<Table1Row> rows;
  rows.reserve(infos.size());
  for (std::size_t w = 0; w < infos.size(); ++w) {
    Table1Row row;
    row.workload = std::string(infos[w].name);
    row.cycles_baseline = cells[w * kTable1PerWorkload].u64[0];
    row.cycles_cic8 = cells[w * kTable1PerWorkload + 1].u64[0];
    row.cycles_cic16 = cells[w * kTable1PerWorkload + 2].u64[0];
    const double baseline = static_cast<double>(row.cycles_baseline);
    row.overhead_cic8 = static_cast<double>(row.cycles_cic8) / baseline - 1.0;
    row.overhead_cic16 = static_cast<double>(row.cycles_cic16) / baseline - 1.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Table1Row> table1_overheads(double scale, unsigned jobs) {
  return table1_rows(exp::run_all(table1_sweep(scale), jobs));
}

// --- Block characterisation ---------------------------------------------

BlockStats characterize_blocks(std::string_view workload,
                               const std::vector<unsigned>& capacities, double scale) {
  workloads::BuildOptions options;
  options.scale = scale;
  const casm_::Image image = workloads::build_workload(workload, options);

  // A large IHT so capacity effects do not perturb the reference stream.
  cpu::CpuConfig config;
  config.monitoring = true;
  config.cic.iht_entries = 1024;

  // Exact LRU stack distances via a recency list (streams are short enough
  // that the O(n·k) scan is fine and keeps the computation transparent).
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  std::list<Key> recency;
  std::map<Key, std::list<Key>::iterator> where;
  support::Histogram distances;
  std::uint64_t lookups = 0;

  cpu::Cpu cpu(config, image);
  cpu.set_lookup_observer([&](std::uint32_t start, std::uint32_t end) {
    const Key key{start, end};
    ++lookups;
    auto it = where.find(key);
    if (it == where.end()) {
      distances.add(-1);  // cold reference
    } else {
      std::int64_t depth = 0;
      for (auto pos = recency.begin(); pos != it->second; ++pos) ++depth;
      distances.add(depth);
      recency.erase(it->second);
    }
    recency.push_front(key);
    where[key] = recency.begin();
  });
  const cpu::RunResult result = cpu.run();
  cpu.publish_metrics();
  support::check(result.reason == cpu::ExitReason::kExit,
                 std::string(workload) + ": characterisation run did not exit cleanly");

  BlockStats stats;
  stats.workload = std::string(workload);
  const auto unit = hash::make_hash_unit(hash::HashKind::kXor);
  stats.static_regions = cfg::build_fht(image, *unit).size();
  stats.dynamic_keys = where.size();
  stats.lookups = lookups;
  stats.instructions = result.instructions;
  stats.mean_block_instructions =
      lookups == 0 ? 0.0
                   : static_cast<double>(result.instructions) / static_cast<double>(lookups);
  stats.capacities = capacities;
  // Hit in an LRU table of C entries <=> stack distance in [0, C); the -1
  // bin holds cold references and is excluded.
  const double cold = distances.cdf_at(-1);
  for (unsigned capacity : capacities) {
    stats.lru_hit_rate.push_back(
        distances.cdf_at(static_cast<std::int64_t>(capacity) - 1) - cold);
  }
  return stats;
}

exp::SweepSpec blocks_sweep(std::vector<unsigned> capacities, double scale) {
  const auto infos = workloads::all_workloads();
  exp::SweepSpec spec;
  spec.sweep = "blocks";
  spec.params = {{"scale", exp::fmt_f64(scale)}, {"capacities", join_list(capacities)}};
  spec.cells = infos.size();
  spec.cell_key = [infos](std::size_t cell) { return std::string(infos[cell].name); };
  spec.run_cell = [infos, capacities, scale](std::size_t cell) {
    const BlockStats stats = characterize_blocks(infos[cell].name, capacities, scale);
    exp::CellResult result;
    // The mean is derived in the decoder from the two exact integers.
    result.u64 = {stats.static_regions, stats.dynamic_keys, stats.lookups, stats.instructions};
    result.f64 = stats.lru_hit_rate;
    return result;
  };
  return spec;
}

std::vector<BlockStats> blocks_rows(const std::vector<exp::CellResult>& cells,
                                    const std::vector<unsigned>& capacities) {
  const auto infos = workloads::all_workloads();
  support::check(cells.size() == infos.size(),
                 "blocks cell vector does not match the workload grid");
  std::vector<BlockStats> rows;
  rows.reserve(cells.size());
  for (std::size_t w = 0; w < cells.size(); ++w) {
    support::check(cells[w].u64.size() == 4 && cells[w].f64.size() == capacities.size(),
                   "blocks cell payload has the wrong shape");
    BlockStats stats;
    stats.workload = std::string(infos[w].name);
    stats.static_regions = cells[w].u64[0];
    stats.dynamic_keys = cells[w].u64[1];
    stats.lookups = cells[w].u64[2];
    stats.instructions = cells[w].u64[3];
    stats.mean_block_instructions =
        stats.lookups == 0 ? 0.0
                           : static_cast<double>(stats.instructions) /
                                 static_cast<double>(stats.lookups);
    stats.lru_hit_rate = cells[w].f64;
    stats.capacities = capacities;
    rows.push_back(std::move(stats));
  }
  return rows;
}

std::vector<BlockStats> characterize_all_blocks(const std::vector<unsigned>& capacities,
                                                double scale, unsigned jobs) {
  return blocks_rows(exp::run_all(blocks_sweep(capacities, scale), jobs), capacities);
}

// --- Throughput bench ---------------------------------------------------

exp::SweepSpec bench_sweep(double scale, unsigned best_of) {
  const auto infos = workloads::all_workloads();
  if (best_of == 0) best_of = 1;
  exp::SweepSpec spec;
  spec.sweep = "bench";
  spec.params = {{"scale", exp::fmt_f64(scale)}, {"best_of", std::to_string(best_of)}};
  spec.cells = infos.size() * 2;
  spec.cell_key = [infos](std::size_t cell) {
    return std::string(infos[cell / 2].name) + "/" + (cell % 2 == 0 ? "baseline" : "cic16");
  };
  spec.run_cell = [infos, scale, best_of](std::size_t cell) {
    cpu::CpuConfig config;
    if (cell % 2 == 1) {
      config.monitoring = true;
      config.cic.iht_entries = 16;
    }
    // Best-of-N: repeat the identical run and keep the fastest wall clock —
    // the standard defense against first-run cache/page-fault noise that the
    // BENCH_*.json methodology used to script with ad-hoc shell loops. The
    // simulated results are deterministic, so every repeat retires the same
    // instruction/cycle counts; only the wall time varies.
    cpu::RunResult run;
    double wall_ms = 0.0;
    for (unsigned attempt = 0; attempt < best_of; ++attempt) {
      const auto start = std::chrono::steady_clock::now();
      run = run_workload(infos[cell / 2].name, config, scale);
      const double attempt_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      if (attempt == 0 || attempt_ms < wall_ms) wall_ms = attempt_ms;
    }
    static const obs::TimerId k_cell_ms = obs::timer("bench.cell_ms");
    static const obs::TimerId k_mips = obs::timer("bench.run_mips");
    obs::record(k_cell_ms, wall_ms);
    if (wall_ms > 0.0) {
      obs::record(k_mips, static_cast<double>(run.instructions) / (wall_ms * 1000.0));
    }
    exp::CellResult result;
    result.u64 = {run.instructions, run.cycles};
    result.f64 = {wall_ms};
    return result;
  };
  return spec;
}

}  // namespace cicmon::sim
