// OS application loader.
//
// Implements the paper's loading contract (§3.3): expected hash values are
// "simply attached to the application code and data and will be loaded into
// a section of memory managed by the OS when the application starts". The
// hashes "can even be computed after binary code is generated, e.g., by a
// special program or the OS application loader" — both paths exist here:
//
//  * attach_fht()  — the "special program" run at build/install time; it
//    serializes the FHT into the image's data section under "__fht__".
//  * os_load()     — copies text+data into memory, then recovers the FHT:
//    from the attached blob when present (reading it back out of loaded
//    memory, as a real loader would), otherwise by computing the hashes
//    itself from the loaded text.
//
// Either way the application binary's instructions are untouched — the
// scheme's headline property (no recompilation, no binary instrumentation).
#pragma once

#include "casm/image.h"
#include "cfg/fht.h"
#include "hash/hash_unit.h"
#include "mem/memory.h"

namespace cicmon::os {

inline constexpr const char* kFhtSymbol = "__fht__";

// Build/install-time path: computes the FHT of `image` under `unit` and
// appends the serialized blob to the image's data section, recording its
// address under the "__fht__" symbol. Throws if the image already has one.
void attach_fht(casm_::Image* image, const hash::HashFunctionUnit& unit);

struct LoadedProgram {
  std::uint32_t entry = 0;
  cfg::FullHashTable fht;
  bool fht_was_attached = false;  // true: parsed from the image; false: computed by the loader
};

// Loads the program into memory and recovers its Full Hash Table.
LoadedProgram os_load(const casm_::Image& image, mem::Memory* memory,
                      const hash::HashFunctionUnit& unit);

}  // namespace cicmon::os
