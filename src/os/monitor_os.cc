#include "os/monitor_os.h"

#include <algorithm>
#include <bit>

namespace cicmon::os {

std::string_view refill_mode_name(RefillMode mode) {
  switch (mode) {
    case RefillMode::kReplaceHalfPrefetch: return "replace-half-prefetch";
    case RefillMode::kReplaceHalfPrefetchBackward: return "replace-half-backward";
    case RefillMode::kSingleEntry: return "single-entry";
  }
  return "?";
}

std::string_view termination_cause_name(TerminationCause cause) {
  switch (cause) {
    case TerminationCause::kNone: return "none";
    case TerminationCause::kHashMismatch: return "hash-mismatch";
    case TerminationCause::kFhtHashMismatch: return "fht-hash-mismatch";
    case TerminationCause::kNotInFht: return "not-in-fht";
  }
  return "?";
}

OsMonitor::OsMonitor(const OsConfig& config, cfg::FullHashTable fht)
    : config_(config), fht_(std::move(fht)) {}

std::uint64_t OsMonitor::charge(std::uint64_t cycles) {
  stats_.cycles_charged += cycles;
  return cycles;
}

ExceptionOutcome OsMonitor::handle_hash_miss(const cic::LookupKey& key, cic::Iht* iht) {
  ++stats_.miss_exceptions;

  // FHT search. The table is sorted, so the software handler's probe count is
  // logarithmic; a linear-scan handler can be modelled by raising
  // fht_probe_cycles accordingly.
  const std::size_t index = fht_.find(key.start, key.end);
  const std::uint64_t probes =
      1 + static_cast<std::uint64_t>(fht_.empty() ? 0 : std::bit_width(fht_.size()));
  stats_.fht_probes += probes;
  const std::uint64_t cost =
      charge(config_.exception_cycles + probes * config_.fht_probe_cycles);

  ExceptionOutcome out;
  out.cycles = cost;
  if (index == cfg::FullHashTable::npos) {
    out.terminate = true;
    out.cause = TerminationCause::kNotInFht;
    return out;
  }
  if (fht_.record(index).hash != key.hash) {
    out.terminate = true;
    out.cause = TerminationCause::kFhtHashMismatch;
    return out;
  }

  refill(index, iht);
  return out;
}

ExceptionOutcome OsMonitor::handle_hash_mismatch(const cic::LookupKey&) {
  ++stats_.mismatch_exceptions;
  ExceptionOutcome out;
  out.cycles = charge(config_.exception_cycles);
  out.terminate = true;
  out.cause = TerminationCause::kHashMismatch;
  return out;
}

void OsMonitor::refill(std::size_t missed_index, cic::Iht* iht) {
  ++stats_.refills;
  const auto records = fht_.records();

  if (config_.refill_mode == RefillMode::kSingleEntry) {
    // Classic cache behaviour: Iht::fill evicts one victim by itself.
    const cfg::CheckRegion& r = records[missed_index];
    iht->fill(r.start, r.end, r.hash);
    ++stats_.records_loaded;
    return;
  }

  // "On each hash miss, the OS replaces half of the entries with hash
  // records from the FHT." The records chosen are the missed block plus the
  // blocks execution is about to reach: forward mode walks past each loaded
  // record's end address (skipping the overlapping mid-block sub-regions) to
  // the fall-through successor's record, stopping at a code gap — prefetching
  // across a gap would load another function's blocks and pollute the table.
  // Backward mode is the ablation variant that prefetches preceding blocks.
  const unsigned half = std::max(1U, iht->num_entries() / 2);
  const bool backward = config_.refill_mode == RefillMode::kReplaceHalfPrefetchBackward;
  constexpr std::uint32_t kMaxGapBytes = 16;

  std::vector<std::size_t> chosen;
  chosen.reserve(half);
  chosen.push_back(missed_index);
  std::size_t index = missed_index;
  std::uint32_t frontier = records[missed_index].end;
  while (chosen.size() < half) {
    if (backward) {
      if (index == 0) break;
      --index;
    } else {
      while (index < records.size() && records[index].start <= frontier) ++index;
      if (index == records.size() || records[index].start > frontier + kMaxGapBytes) break;
      frontier = records[index].end;
    }
    chosen.push_back(index);
  }

  // Evict only as many victims as we will actually load.
  iht->invalidate_victims(static_cast<unsigned>(chosen.size()));
  for (std::size_t record_index : chosen) {
    const cfg::CheckRegion& r = records[record_index];
    iht->fill(r.start, r.end, r.hash);
    ++stats_.records_loaded;
  }
}

}  // namespace cicmon::os
