#include "os/loader.h"

#include "support/error.h"

namespace cicmon::os {

void attach_fht(casm_::Image* image, const hash::HashFunctionUnit& unit) {
  support::check(image != nullptr, "attach_fht: null image");
  support::check(image->symbols.find(kFhtSymbol) == image->symbols.end(),
                 "attach_fht: image already carries a __fht__ section");

  const cfg::FullHashTable fht = cfg::build_fht(*image, unit);
  const std::vector<std::uint8_t> blob = fht.serialize();

  // Append word-aligned so the blob address is clean to read back.
  while (image->data.size() % 4 != 0) image->data.push_back(0);
  const std::uint32_t address =
      image->data_base + static_cast<std::uint32_t>(image->data.size());
  image->data.insert(image->data.end(), blob.begin(), blob.end());
  image->symbols[kFhtSymbol] = address;
}

LoadedProgram os_load(const casm_::Image& image, mem::Memory* memory,
                      const hash::HashFunctionUnit& unit) {
  support::check(memory != nullptr, "os_load: null memory");
  memory->load_image(image);

  LoadedProgram out;
  out.entry = image.entry;

  const auto it = image.symbols.find(kFhtSymbol);
  if (it == image.symbols.end()) {
    // No attached table: the loader computes the hashes itself from the
    // binary it just loaded (§3.3's alternative path).
    out.fht = cfg::build_fht(image, unit);
    out.fht_was_attached = false;
    return out;
  }

  // Read the blob back out of loaded memory — the loader trusts the memory
  // image, not the host-side Image object, so tests can corrupt the loaded
  // table and observe the consequences.
  const std::uint32_t base = it->second;
  std::vector<std::uint8_t> header(8);
  for (std::uint32_t i = 0; i < 8; ++i) header[i] = memory->read8(base + i);
  const std::uint32_t count = static_cast<std::uint32_t>(header[4]) |
                              static_cast<std::uint32_t>(header[5]) << 8 |
                              static_cast<std::uint32_t>(header[6]) << 16 |
                              static_cast<std::uint32_t>(header[7]) << 24;
  std::vector<std::uint8_t> blob(8 + static_cast<std::size_t>(count) * 12);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = memory->read8(base + static_cast<std::uint32_t>(i));
  }
  out.fht = cfg::FullHashTable::deserialize(blob);
  out.fht_was_attached = true;
  return out;
}

}  // namespace cicmon::os
