// OS model for monitoring exceptions (§3.3, OS-managed scheme).
//
// The paper assumes "an OS is in place to handle monitoring exceptions" and
// models its cost, not its instructions: each exception entry/exit charges a
// fixed cycle count (100 in §6.1). This module implements that contract:
//
//  * hash miss (exception0): search the Full Hash Table for the block.
//      - record found, expected hash equals the dynamic hash → refill the
//        IHT ("the OS replaces half of the entries with hash records from
//        the FHT") and resume the application;
//      - record found, hash differs → the code was altered: terminate;
//      - no record → execution reached a block the static analysis never
//        produced (corrupted control flow): terminate.
//  * hash mismatch (exception1): terminate immediately.
//
// Which FHT records refill the IHT is an OS policy choice the paper leaves
// open (and lists refining as future work); RefillMode enumerates the
// variants the ablation bench compares.
#pragma once

#include <cstdint>
#include <string_view>

#include "cfg/fht.h"
#include "cic/checker.h"

namespace cicmon::os {

// What the refill loads after victims are invalidated.
//
// The paper's handler "replaces half of the entries with hash records from
// the FHT" and lists refining the policy as future work (§7). In this
// reproduction the demand-fill variant (kSingleEntry) tracks the paper's
// Table 1 behaviour far better than bulk replacement — wholesale eviction
// destroys the LRU set that small IHTs depend on — so it is the default;
// the ablation_replacement bench quantifies the difference.
enum class RefillMode : std::uint8_t {
  // Evict one LRU victim, load only the missed record (default).
  kSingleEntry,
  // Paper's wording: invalidate half the IHT, load the missed record plus
  // the records for the code about to execute (forward prefetch that skips
  // overlapping sub-regions and stops at code gaps).
  kReplaceHalfPrefetch,
  // As above, but prefetching the records that precede the miss (loops
  // re-enter earlier blocks).
  kReplaceHalfPrefetchBackward,
};

std::string_view refill_mode_name(RefillMode mode);

struct OsConfig {
  // Cycles charged per monitoring-exception handling (paper: 100).
  std::uint64_t exception_cycles = 100;
  // Extra cycles per FHT record probed during the search (0 folds the search
  // into exception_cycles, matching the paper's flat accounting).
  std::uint64_t fht_probe_cycles = 0;
  RefillMode refill_mode = RefillMode::kSingleEntry;
};

// Why the OS terminated the application.
enum class TerminationCause : std::uint8_t {
  kNone,
  kHashMismatch,     // exception1: IHT entry present, dynamic hash differs
  kFhtHashMismatch,  // miss path: FHT record present, dynamic hash differs
  kNotInFht,         // miss path: no FHT record for the block
};

std::string_view termination_cause_name(TerminationCause cause);

struct ExceptionOutcome {
  bool terminate = false;
  TerminationCause cause = TerminationCause::kNone;
  std::uint64_t cycles = 0;  // handling cost to charge the application
};

struct OsMonitorStats {
  std::uint64_t miss_exceptions = 0;
  std::uint64_t mismatch_exceptions = 0;
  std::uint64_t refills = 0;
  std::uint64_t records_loaded = 0;
  std::uint64_t fht_probes = 0;
  std::uint64_t cycles_charged = 0;

  bool operator==(const OsMonitorStats&) const = default;
};

class OsMonitor {
 public:
  OsMonitor(const OsConfig& config, cfg::FullHashTable fht);

  // Handles exception0. On a benign capacity miss, refills `iht` and returns
  // terminate=false; otherwise returns the termination cause.
  ExceptionOutcome handle_hash_miss(const cic::LookupKey& key, cic::Iht* iht);

  // Handles exception1 (always terminates).
  ExceptionOutcome handle_hash_mismatch(const cic::LookupKey& key);

  const cfg::FullHashTable& fht() const { return fht_; }
  const OsMonitorStats& stats() const { return stats_; }
  const OsConfig& config() const { return config_; }

  // Stats are the OS model's only mutable state (the FHT is immutable after
  // load), so snapshot restore is a plain stats overwrite.
  void restore_stats(const OsMonitorStats& stats) { stats_ = stats; }

 private:
  std::uint64_t charge(std::uint64_t cycles);
  void refill(std::size_t missed_index, cic::Iht* iht);

  OsConfig config_;
  cfg::FullHashTable fht_;
  OsMonitorStats stats_;
};

}  // namespace cicmon::os
