// blowfish: the real 16-round Feistel network with the real F function
// (((S0[a] + S1[b]) ^ S2[c]) + S3[d]), encrypting then decrypting a block
// array in place and verifying the round trip.
//
// The P-array and S-boxes are deterministically generated instead of the
// standard digits-of-pi constants — the cipher's control structure (what the
// monitor observes) is identical; only key material differs (DESIGN.md §2).
//
// Register convention: bf_encrypt/bf_decrypt clobber s3..s6 and t9, preserve
// ra via the stack; bf_f is a leaf using t0..t3 only.
#include "workloads/workloads.h"

#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_blowfish(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned blocks = 12;
  const unsigned repeats = scaled(options.scale, 3);

  support::Rng rng(options.seed);
  refs::BlowfishRef ref;
  for (auto& p : ref.p) p = rng.next_u32();
  for (auto& box : ref.s) {
    for (auto& entry : box) entry = rng.next_u32();
  }
  std::vector<std::uint32_t> plain = random_words(rng, 2 * blocks);

  // Expected accumulator: per repeat, sum of ciphertext words plus sum of
  // round-tripped plaintext words (the round trip restores `plain`).
  std::uint32_t expected = 0;
  {
    std::uint32_t plain_sum = 0;
    for (std::uint32_t wv : plain) plain_sum += wv;
    std::vector<std::uint32_t> buf = plain;
    std::uint32_t cipher_sum = 0;
    for (unsigned b = 0; b < blocks; ++b) {
      ref.encrypt(&buf[2 * b], &buf[2 * b + 1]);
      cipher_sum += buf[2 * b] + buf[2 * b + 1];
    }
    expected = repeats * (cipher_sum + plain_sum);
  }

  casm_::Asm a;
  a.data_symbol("parr");
  a.data_words({ref.p.begin(), ref.p.end()});
  a.data_symbol("sbox");  // S0 | S1 | S2 | S3, 1 KiB each
  for (const auto& box : ref.s) a.data_words({box.begin(), box.end()});
  a.data_symbol("blocks");
  a.data_words(plain);

  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);
  casm_::Label outer = a.bound_label();

  // Encrypt every block, accumulating the ciphertext words.
  a.la(kS1, "blocks");
  a.li(kS2, blocks);
  casm_::Label enc = a.bound_label();
  a.move(kA0, kS1);
  a.call("bf_encrypt");
  a.lw(kT0, 0, kS1);
  a.addu(kS7, kS7, kT0);
  a.lw(kT0, 4, kS1);
  a.addu(kS7, kS7, kT0);
  a.addiu(kS1, kS1, 8);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, enc);

  // Decrypt back.
  a.la(kS1, "blocks");
  a.li(kS2, blocks);
  casm_::Label dec = a.bound_label();
  a.move(kA0, kS1);
  a.call("bf_decrypt");
  a.addiu(kS1, kS1, 8);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, dec);

  // Accumulate the restored plaintext words.
  a.la(kS1, "blocks");
  a.li(kS2, 2 * blocks);
  a.li(kT8, 0);
  casm_::Label acc = a.bound_label();
  a.lw(kT0, 0, kS1);
  a.addu(kT8, kT8, kT0);
  a.addiu(kS1, kS1, 4);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, acc);
  a.addu(kS7, kS7, kT8);

  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  // v0 = F(a0) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d].
  a.func("bf_f");
  {
    a.la(kT1, "sbox");
    a.srl(kT0, kA0, 24);
    a.sll(kT0, kT0, 2);
    a.addu(kT0, kT0, kT1);
    a.lw(kV0, 0, kT0);         // S0[a]
    a.srl(kT0, kA0, 16);
    a.andi(kT0, kT0, 255);
    a.sll(kT0, kT0, 2);
    a.addu(kT0, kT0, kT1);
    a.lw(kT2, 1024, kT0);      // S1[b]
    a.addu(kV0, kV0, kT2);
    a.srl(kT0, kA0, 8);
    a.andi(kT0, kT0, 255);
    a.sll(kT0, kT0, 2);
    a.addu(kT0, kT0, kT1);
    a.lw(kT2, 2048, kT0);      // S2[c]
    a.xor_(kV0, kV0, kT2);
    a.andi(kT0, kA0, 255);
    a.sll(kT0, kT0, 2);
    a.addu(kT0, kT0, kT1);
    a.lw(kT2, 3072, kT0);      // S3[d]
    a.addu(kV0, kV0, kT2);
    a.ret();
  }

  // Encrypts the two words at a0 in place: 8 unrolled round *pairs* (the
  // per-iteration swap folded into register-role alternation, as the
  // reference Blowfish sources macro-expand BF_ENC), with the F function
  // called — one encryption cycles through a working set of call-site
  // regions larger than a small IHT, the reason the paper's blowfish keeps
  // missing even at 16 entries.
  a.func("bf_encrypt");
  {
    a.push(kRa);
    a.move(kT9, kA0);
    a.lw(kS3, 0, kT9);   // A: holds L on even rounds
    a.lw(kS4, 4, kT9);   // B: holds R on even rounds
    a.la(kS5, "parr");
    a.li(kS6, 0);        // round pair index * 8 (P byte offset)
    casm_::Label pair = a.bound_label();
    a.addu(kT1, kS5, kS6);
    a.lw(kT0, 0, kT1);
    a.xor_(kS3, kS3, kT0);  // l ^= P[2k]
    a.move(kA0, kS3);
    a.call("bf_f");
    a.xor_(kS4, kS4, kV0);  // r ^= F(l)
    a.addu(kT1, kS5, kS6);
    a.lw(kT0, 4, kT1);
    a.xor_(kS4, kS4, kT0);  // (roles swapped) l ^= P[2k+1]
    a.move(kA0, kS4);
    a.call("bf_f");
    a.xor_(kS3, kS3, kV0);
    a.addiu(kS6, kS6, 8);
    a.li(kT0, 64);
    a.bne(kS6, kT0, pair);
    a.lw(kT0, 16 * 4, kS5);
    a.xor_(kS3, kS3, kT0);  // r ^= P[16]  (roles swapped after 16 rounds)
    a.lw(kT0, 17 * 4, kS5);
    a.xor_(kS4, kS4, kT0);  // l ^= P[17]
    a.sw(kS4, 0, kT9);
    a.sw(kS3, 4, kT9);
    a.pop(kRa);
    a.ret();
  }

  // Decrypts the two words at a0 in place (P applied in reverse), same
  // paired-round structure.
  a.func("bf_decrypt");
  {
    a.push(kRa);
    a.move(kT9, kA0);
    a.lw(kS3, 0, kT9);
    a.lw(kS4, 4, kT9);
    a.la(kS5, "parr");
    a.li(kS6, 17 * 4);  // P byte offset, walking down in pairs
    casm_::Label pair = a.bound_label();
    a.addu(kT1, kS5, kS6);
    a.lw(kT0, 0, kT1);
    a.xor_(kS3, kS3, kT0);  // l ^= P[17-2k]
    a.move(kA0, kS3);
    a.call("bf_f");
    a.xor_(kS4, kS4, kV0);
    a.addu(kT1, kS5, kS6);
    a.lw(kT0, -4, kT1);
    a.xor_(kS4, kS4, kT0);  // l ^= P[16-2k]
    a.move(kA0, kS4);
    a.call("bf_f");
    a.xor_(kS3, kS3, kV0);
    a.addiu(kS6, kS6, -8);
    a.li(kT0, 4);
    a.bne(kS6, kT0, pair);
    a.lw(kT0, 1 * 4, kS5);
    a.xor_(kS3, kS3, kT0);  // r ^= P[1]
    a.lw(kT0, 0, kS5);
    a.xor_(kS4, kS4, kT0);  // l ^= P[0]
    a.sw(kS4, 0, kT9);
    a.sw(kS3, 4, kT9);
    a.pop(kRa);
    a.ret();
  }

  return a.finalize();
}

}  // namespace cicmon::workloads
