// susan: USAN-style edge detection on a synthetic image (SUSAN's principle:
// a pixel whose "Univalue Segment Assimilating Nucleus" — the set of
// neighbours with brightness close to the centre — is small sits on an
// edge).
//
// The 3x3 neighbourhood comparison is fully unrolled and branchless (the
// real SUSAN code unrolls its brightness-mask accumulation the same way), so
// the pixel body is one long region and the hot working set is a handful of
// blocks — matching susan's near-zero overhead row in Table 1.
#include "workloads/workloads.h"

#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_susan(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned w = 24;
  const unsigned h = 24;
  const unsigned threshold = 20;
  const unsigned usan_limit = 5;
  const unsigned repeats = scaled(options.scale, 4);

  // Synthetic image: smooth gradient + noise + a bright rectangle, so real
  // edges exist and the edge count is nontrivial.
  support::Rng rng(options.seed);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(w) * h);
  for (unsigned y = 0; y < h; ++y) {
    for (unsigned x = 0; x < w; ++x) {
      unsigned v = 40 + 3 * x + 2 * y + static_cast<unsigned>(rng.below(12));
      if (x >= 8 && x < 16 && y >= 6 && y < 18) v += 90;  // rectangle
      image[static_cast<std::size_t>(y) * w + x] = static_cast<std::uint8_t>(v & 0xFF);
    }
  }
  const std::uint32_t expected =
      repeats * refs::susan_edge_count(image, w, h, threshold, usan_limit);

  casm_::Asm a;
  a.data_symbol("img");
  a.data_bytes(image);

  // Register roles: s1 = y counter, s2 = x counter, s3 = centre pixel
  // pointer, s4 = centre value, s5 = similar count, s7 = edge total.
  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);
  casm_::Label outer = a.bound_label();

  a.la(kS3, "img");
  a.addiu(kS3, kS3, w + 1);  // &img[1*w + 1]
  a.li(kS1, h - 2);
  casm_::Label yloop = a.bound_label();
  a.li(kS2, w - 2);
  casm_::Label xloop = a.bound_label();

  a.lbu(kS4, 0, kS3);
  a.li(kS5, 0);
  // Fully unrolled 3x3 USAN accumulation; every neighbour offset is a
  // compile-time constant relative to the centre pointer.
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const std::int32_t off = dy * static_cast<std::int32_t>(w) + dx;
      a.lbu(kT1, off, kS3);
      a.subu(kT2, kT1, kS4);
      a.sra(kT3, kT2, 31);      // abs via sign-mask
      a.xor_(kT2, kT2, kT3);
      a.subu(kT2, kT2, kT3);
      a.sltiu(kT2, kT2, threshold + 1);
      a.addu(kS5, kS5, kT2);
    }
  }
  // edges += (similar <= limit), branchless.
  a.sltiu(kT0, kS5, usan_limit + 1);
  a.addu(kS7, kS7, kT0);

  a.addiu(kS3, kS3, 1);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, xloop);
  a.addiu(kS3, kS3, 2);  // skip the border pair at a row boundary
  a.addiu(kS1, kS1, -1);
  a.bnez(kS1, yloop);

  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  return a.finalize();
}

}  // namespace cicmon::workloads
