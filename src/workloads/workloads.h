// The nine benchmark kernels of the paper's evaluation (§6.1, Figure 6 and
// Table 1), re-implemented for this ISA.
//
// The paper runs MiBench C sources through the ASIP's generated compiler; we
// have no C front end, so each kernel is written against the casm_::Asm
// builder API — real implementations of the same algorithms (a real Feistel
// network for blowfish, real AES rounds for rijndael, a real 80-round SHA-1,
// ...), not stand-ins. What the experiments depend on — the number of basic
// blocks executed and the temporal locality of block execution — comes from
// the algorithms' loop and call structure, which these kernels preserve.
//
// Every kernel verifies its own output against a host-side reference
// (refs.h) with check_eq traps, so a miscomputing simulation terminates with
// kSelfCheckFailed instead of producing plausible garbage.
#pragma once

#include <span>
#include <string_view>

#include "casm/image.h"

namespace cicmon::workloads {

// Work-scaling knob: 1.0 is the evaluation size used by the bench binaries;
// tests use smaller values. Builders clamp the derived iteration counts to
// at least one.
struct BuildOptions {
  double scale = 1.0;
  std::uint64_t seed = 42;  // input-data generator seed
};

using BuildFn = casm_::Image (*)(const BuildOptions&);

struct WorkloadInfo {
  std::string_view name;
  std::string_view description;
  BuildFn build;
};

// All nine kernels, in the paper's Figure 6 order.
std::span<const WorkloadInfo> all_workloads();

// Lookup by name; throws CicError for unknown names (the message lists the
// valid names and, when one is close, a "did you mean" suggestion).
const WorkloadInfo& find_workload(std::string_view name);
casm_::Image build_workload(std::string_view name, const BuildOptions& options = {});

// The registered workload closest to `name` by edit distance, or nullptr
// when nothing is plausibly a typo of it.
const WorkloadInfo* closest_workload(std::string_view name);

// Individual builders.
casm_::Image build_basicmath(const BuildOptions& options);
casm_::Image build_susan(const BuildOptions& options);
casm_::Image build_dijkstra(const BuildOptions& options);
casm_::Image build_patricia(const BuildOptions& options);
casm_::Image build_blowfish(const BuildOptions& options);
casm_::Image build_rijndael(const BuildOptions& options);
casm_::Image build_sha(const BuildOptions& options);
casm_::Image build_stringsearch(const BuildOptions& options);
casm_::Image build_bitcount(const BuildOptions& options);

}  // namespace cicmon::workloads
