// Host-side reference implementations for the workload kernels.
//
// Every workload self-checks: the builder computes the expected result with
// one of these references and plants `check_eq` traps in the generated
// program, so a simulation that silently computes wrong values fails loudly.
// The references are deliberately independent, plain C++ renderings of the
// same algorithms the assembly kernels implement.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace cicmon::workloads::refs {

// --- basicmath ---
std::uint32_t isqrt32(std::uint32_t value);          // floor(sqrt), bit-by-bit method
std::uint32_t gcd32(std::uint32_t a, std::uint32_t b);  // Euclid via remainders
// Fixed-point degrees→radians: (deg * 31416) / 1800000 in Q0 arithmetic.
std::uint32_t deg_to_rad_fixed(std::uint32_t deg);

// --- bitcount ---
unsigned popcount_sum(std::span<const std::uint32_t> values);

// --- dijkstra ---
// Single-source (node 0) shortest paths on a dense n*n weight matrix
// (row-major; weight 0 means no edge). Returns the sum of finite distances.
std::uint32_t dijkstra_distance_sum(std::span<const std::uint32_t> matrix, unsigned n);

// --- susan ---
// USAN-style edge count: a pixel of the w*h byte image (1-pixel border
// excluded) is an edge when at most `usan_limit` of its 3x3 neighbours are
// within `threshold` brightness of the centre.
unsigned susan_edge_count(std::span<const std::uint8_t> image, unsigned w, unsigned h,
                          unsigned threshold, unsigned usan_limit);

// --- stringsearch ---
// Boyer-Moore-Horspool occurrence count; on a match the window advances by
// the full pattern length (non-overlapping matches).
unsigned bmh_count(std::span<const std::uint8_t> text, std::span<const std::uint8_t> pattern);

// Naive forward scan with the same non-overlapping convention; the workload
// alternates the two searchers the way MiBench's stringsearch compares
// algorithms.
unsigned brute_count(std::span<const std::uint8_t> text, std::span<const std::uint8_t> pattern);

// --- blowfish ---
// Blowfish round structure with caller-supplied (non-standard) P/S tables —
// the workload uses deterministically generated tables so the 4 KiB of
// standard hex digits of pi need not be embedded. The Feistel network and
// round count are the real cipher's.
struct BlowfishRef {
  std::array<std::uint32_t, 18> p{};
  std::array<std::array<std::uint32_t, 256>, 4> s{};

  void encrypt(std::uint32_t* left, std::uint32_t* right) const;
  void decrypt(std::uint32_t* left, std::uint32_t* right) const;

 private:
  std::uint32_t f(std::uint32_t x) const;
};

// --- rijndael ---
// AES-128 (FIPS 197) block encryption, table-free except the S-box.
class Aes128Ref {
 public:
  explicit Aes128Ref(std::span<const std::uint8_t> key16);

  void encrypt_block(const std::uint8_t* in16, std::uint8_t* out16) const;

  // Expanded key schedule: 11 round keys * 16 bytes.
  std::span<const std::uint8_t> round_keys() const { return round_keys_; }
  static std::span<const std::uint8_t> sbox();  // 256 entries

 private:
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace cicmon::workloads::refs
