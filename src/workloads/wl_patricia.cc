// patricia: routing-table membership via a binary radix trie over 16-bit
// keys (MiBench's patricia maintains IP netmasks in a Patricia trie; the
// uncompressed binary trie preserves the pointer-chasing, bit-testing
// behaviour without the backtracking subtleties — see DESIGN.md for the
// substitution note).
//
// Execution profile: insert phase growing an arena of nodes, then a probe
// phase walking 16 levels per key with a data-dependent left/right branch at
// every level.
#include "workloads/workloads.h"

#include <set>

#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_patricia(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned inserts = 48;
  const unsigned probes = 96;
  const unsigned repeats = scaled(options.scale, 3);
  const unsigned bits = 16;

  support::Rng rng(options.seed);
  std::vector<std::uint32_t> keys(inserts);
  std::set<std::uint32_t> inserted;
  for (std::uint32_t& k : keys) {
    k = static_cast<std::uint32_t>(rng.below(1U << bits));
    inserted.insert(k);
  }
  // Probe mix: half known-present keys, half random (some hit by chance).
  std::vector<std::uint32_t> probe_keys(probes);
  unsigned expected_hits = 0;
  for (unsigned i = 0; i < probes; ++i) {
    probe_keys[i] = (i % 2 == 0) ? keys[rng.below(inserts)]
                                 : static_cast<std::uint32_t>(rng.below(1U << bits));
    if (inserted.count(probe_keys[i]) != 0) ++expected_hits;
  }
  const std::uint32_t expected = repeats * expected_hits;

  // Node: {left, right, present, pad} — 16 bytes so the walk loops index
  // with a shift. Node 0 is the root; worst case 1 + inserts*bits nodes.
  const unsigned max_nodes = 1 + inserts * bits + 8;

  casm_::Asm a;
  a.data_symbol("keys");
  a.data_words(keys);
  a.data_symbol("probes");
  a.data_words(probe_keys);
  a.data_symbol("arena");
  a.data_space(max_nodes * 16);
  a.data_symbol("arena_next");
  a.data_word(0);

  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);  // total hits
  casm_::Label outer = a.bound_label();

  // Reset the arena: clear node 0, next = 1.
  a.la(kT0, "arena");
  a.sw(kZero, 0, kT0);
  a.sw(kZero, 4, kT0);
  a.sw(kZero, 8, kT0);
  a.la(kT0, "arena_next");
  a.li(kT1, 1);
  a.sw(kT1, 0, kT0);

  // Insert phase.
  a.la(kS1, "keys");
  a.li(kS2, inserts);
  casm_::Label ins = a.bound_label();
  a.lw(kA0, 0, kS1);
  a.call("trie_insert");
  a.addiu(kS1, kS1, 4);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, ins);

  // Probe phase.
  a.la(kS1, "probes");
  a.li(kS2, probes);
  casm_::Label prb = a.bound_label();
  a.lw(kA0, 0, kS1);
  a.call("trie_lookup");
  a.addu(kS7, kS7, kV0);
  a.addiu(kS1, kS1, 4);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, prb);

  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  // Walks key a0 MSB-first, creating nodes as needed; marks the final node
  // present. Node index n lives at arena + n*12.
  a.func("trie_insert");
  {
    a.la(kT8, "arena");
    a.la(kT9, "arena_next");
    a.li(kT0, 0);         // node index
    a.li(kT1, bits - 1);  // bit position (signed down-counter)
    casm_::Label level = a.bound_label();
    casm_::Label walk_done = a.label();
    a.bltz(kT1, walk_done);

    // t2 = &arena[node] ; t3 = child slot offset (0 = left, 4 = right)
    a.sll(kT2, kT0, 4);
    a.addu(kT2, kT2, kT8);
    a.srlv(kT3, kA0, kT1);
    a.andi(kT3, kT3, 1);
    a.sll(kT3, kT3, 2);
    a.addu(kT2, kT2, kT3);  // &child pointer
    a.lw(kT4, 0, kT2);      // child index
    casm_::Label have_child = a.label();
    a.bnez(kT4, have_child);
    // Allocate a fresh node: index = arena_next++, cleared fields.
    a.lw(kT4, 0, kT9);
    a.addiu(kT6, kT4, 1);
    a.sw(kT6, 0, kT9);
    a.sw(kT4, 0, kT2);  // link from parent
    a.sll(kT6, kT4, 4);
    a.addu(kT6, kT6, kT8);
    a.sw(kZero, 0, kT6);
    a.sw(kZero, 4, kT6);
    a.sw(kZero, 8, kT6);
    a.bind(have_child);
    a.move(kT0, kT4);
    a.addiu(kT1, kT1, -1);
    a.b(level);

    a.bind(walk_done);
    // Mark present: arena[node].present = 1.
    a.sll(kT2, kT0, 4);
    a.addu(kT2, kT2, kT8);
    a.li(kT4, 1);
    a.sw(kT4, 8, kT2);
    a.ret();
  }

  // v0 = 1 if key a0 is present.
  a.func("trie_lookup");
  {
    a.la(kT8, "arena");
    a.li(kT0, 0);
    a.li(kT1, bits - 1);
    casm_::Label level = a.bound_label();
    casm_::Label walk_done = a.label();
    casm_::Label missing = a.label();
    a.bltz(kT1, walk_done);
    a.sll(kT2, kT0, 4);
    a.addu(kT2, kT2, kT8);
    a.srlv(kT3, kA0, kT1);
    a.andi(kT3, kT3, 1);
    a.sll(kT3, kT3, 2);
    a.addu(kT2, kT2, kT3);
    a.lw(kT4, 0, kT2);
    a.beqz(kT4, missing);
    a.move(kT0, kT4);
    a.addiu(kT1, kT1, -1);
    a.b(level);
    a.bind(walk_done);
    a.sll(kT2, kT0, 4);
    a.addu(kT2, kT2, kT8);
    a.lw(kV0, 8, kT2);  // present flag
    a.ret();
    a.bind(missing);
    a.li(kV0, 0);
    a.ret();
  }

  return a.finalize();
}

}  // namespace cicmon::workloads
