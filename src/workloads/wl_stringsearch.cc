// stringsearch: Boyer-Moore-Horspool and naive search of several patterns
// over a corpus of short text lines. MiBench's stringsearch scans a list of
// search lines per pattern the same way; this harness runs both searchers on
// every line (cross-checking the algorithms, which is what the original
// program's families of search routines are for).
//
// Execution profile: the lines are short, so scans terminate after a few
// iterations and execution keeps transitioning between the setup, line
// dispatch, scan, compare, and match/skip blocks of two different searchers.
// That is the paper's worst case: poor temporal block locality and the
// highest overhead at every IHT size.
#include "workloads/workloads.h"

#include <string>

#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_stringsearch(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned line_len = 32;
  const unsigned num_lines = 48;
  const unsigned text_len = line_len * num_lines;
  const unsigned repeats = scaled(options.scale, 3);

  // Text: limited alphabet so matches occur; patterns: in-line substrings
  // (guaranteed hits) plus absent strings.
  support::Rng rng(options.seed);
  std::vector<std::uint8_t> text = random_bytes(rng, text_len, 'a', 'f');
  std::vector<std::vector<std::uint8_t>> patterns;
  for (unsigned i = 0; i < 5; ++i) {
    const unsigned len = 3 + static_cast<unsigned>(rng.below(6));
    const unsigned line = static_cast<unsigned>(rng.below(num_lines));
    const unsigned pos = line * line_len + static_cast<unsigned>(rng.below(line_len - len));
    patterns.emplace_back(text.begin() + pos, text.begin() + pos + len);
  }
  patterns.push_back({'z', 'z', 'y'});  // absent (alphabet a..f)
  patterns.push_back({'a', 'b', 'c', 'a', 'b'});
  patterns.push_back({'f', 'e', 'd', 'c', 'b', 'a'});

  // Both searchers run on every (pattern, line) pair; they agree by
  // construction, so the expected total is simply twice the match count.
  std::uint32_t expected = 0;
  for (const auto& pattern : patterns) {
    for (unsigned line = 0; line < num_lines; ++line) {
      const std::span<const std::uint8_t> slice{text.data() + line * line_len, line_len};
      expected += refs::bmh_count(slice, pattern) + refs::brute_count(slice, pattern);
    }
  }
  expected *= repeats;

  casm_::Asm a;
  a.data_symbol("text");
  a.data_bytes(text);
  std::vector<std::string> pat_syms;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    pat_syms.push_back("pat" + std::to_string(i));
    a.data_symbol(pat_syms.back());
    a.data_bytes(patterns[i]);
  }
  a.data_symbol("pattab");  // (address, length) pairs
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    a.data_word(a.data_address(pat_syms[i]));
    a.data_word(static_cast<std::uint32_t>(patterns[i].size()));
  }
  a.data_symbol("skip");
  a.data_space(256 * 4);

  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);  // total match count
  casm_::Label outer = a.bound_label();
  a.la(kS1, "pattab");
  a.li(kS2, static_cast<std::uint32_t>(patterns.size()));
  casm_::Label per_pattern = a.bound_label();
  a.lw(kA0, 0, kS1);
  a.lw(kA1, 4, kS1);
  a.call("bmh_init");  // build the skip table once per pattern
  a.la(kS4, "text");   // line pointer
  a.li(kS5, num_lines);
  casm_::Label per_line = a.bound_label();
  a.lw(kA0, 0, kS1);
  a.lw(kA1, 4, kS1);
  a.move(kA2, kS4);
  a.call("bmh_line");
  a.addu(kS7, kS7, kV0);
  a.lw(kA0, 0, kS1);
  a.lw(kA1, 4, kS1);
  a.move(kA2, kS4);
  a.call("brute_line");
  a.addu(kS7, kS7, kV0);
  a.addiu(kS4, kS4, line_len);
  a.addiu(kS5, kS5, -1);
  a.bnez(kS5, per_line);
  a.addiu(kS1, kS1, 8);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, per_pattern);
  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  // Builds the Horspool skip table for pattern a0 (length a1).
  a.func("bmh_init");
  {
    a.la(kT9, "skip");
    a.move(kT0, kT9);
    a.li(kT1, 256);
    casm_::Label fill = a.bound_label();
    a.sw(kA1, 0, kT0);
    a.addiu(kT0, kT0, 4);
    a.addiu(kT1, kT1, -1);
    a.bnez(kT1, fill);
    a.li(kT1, 0);
    a.addiu(kT2, kA1, -1);
    casm_::Label pre = a.bound_label();
    casm_::Label pre_done = a.label();
    a.bgeu(kT1, kT2, pre_done);
    a.addu(kT3, kA0, kT1);
    a.lbu(kT3, 0, kT3);
    a.sll(kT3, kT3, 2);
    a.addu(kT3, kT3, kT9);
    a.subu(kT5, kT2, kT1);
    a.sw(kT5, 0, kT3);
    a.addiu(kT1, kT1, 1);
    a.b(pre);
    a.bind(pre_done);
    a.ret();
  }

  // v0 = Horspool occurrences of pattern a0 (length a1) in the line at a2.
  a.func("bmh_line");
  {
    a.la(kT9, "skip");
    a.li(kV0, 0);
    a.li(kT0, 0);  // pos
    a.li(kT6, line_len);
    a.subu(kT6, kT6, kA1);  // last valid pos
    casm_::Label scan = a.bound_label();
    casm_::Label done = a.label();
    a.bgt(kT0, kT6, done);
    a.move(kT1, kA1);  // j
    casm_::Label cmp = a.bound_label();
    casm_::Label match = a.label();
    casm_::Label mismatch = a.label();
    a.beqz(kT1, match);
    a.addu(kT2, kT0, kT1);
    a.addu(kT2, kT2, kA2);
    a.lbu(kT2, -1, kT2);  // line[pos+j-1]
    a.addu(kT3, kA0, kT1);
    a.lbu(kT3, -1, kT3);  // pat[j-1]
    a.bne(kT2, kT3, mismatch);
    a.addiu(kT1, kT1, -1);
    a.b(cmp);
    a.bind(match);
    a.addiu(kV0, kV0, 1);
    a.addu(kT0, kT0, kA1);  // advance past the match
    a.b(scan);
    a.bind(mismatch);
    a.addu(kT2, kT0, kA1);
    a.addu(kT2, kT2, kA2);
    a.lbu(kT2, -1, kT2);  // window's last byte
    a.sll(kT2, kT2, 2);
    a.addu(kT2, kT2, kT9);
    a.lw(kT2, 0, kT2);
    a.addu(kT0, kT0, kT2);  // pos += skip[last byte]
    a.b(scan);
    a.bind(done);
    a.ret();
  }

  // v0 = naive-scan occurrences of pattern a0 (length a1) in the line at a2.
  a.func("brute_line");
  {
    a.li(kV0, 0);
    a.li(kT0, 0);
    a.li(kT6, line_len);
    a.subu(kT6, kT6, kA1);
    casm_::Label scan = a.bound_label();
    casm_::Label done = a.label();
    a.bgt(kT0, kT6, done);
    a.li(kT1, 0);  // j
    casm_::Label cmp = a.bound_label();
    casm_::Label matched = a.label();
    casm_::Label advance1 = a.label();
    a.bgeu(kT1, kA1, matched);
    a.addu(kT2, kT0, kT1);
    a.addu(kT2, kT2, kA2);
    a.lbu(kT2, 0, kT2);
    a.addu(kT3, kA0, kT1);
    a.lbu(kT3, 0, kT3);
    a.bne(kT2, kT3, advance1);
    a.addiu(kT1, kT1, 1);
    a.b(cmp);
    a.bind(matched);
    a.addiu(kV0, kV0, 1);
    a.addu(kT0, kT0, kA1);
    a.b(scan);
    a.bind(advance1);
    a.addiu(kT0, kT0, 1);
    a.b(scan);
    a.bind(done);
    a.ret();
  }

  return a.finalize();
}

}  // namespace cicmon::workloads
