// Shared helpers for the workload kernel builders.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "casm/builder.h"
#include "isa/registers.h"
#include "support/rng.h"

namespace cicmon::workloads {

// Scales a base iteration count by BuildOptions::scale, never below one.
inline unsigned scaled(double scale, unsigned base) {
  const long value = std::lround(static_cast<double>(base) * scale);
  return static_cast<unsigned>(std::max(1L, value));
}

// Random word vector for kernel input data.
inline std::vector<std::uint32_t> random_words(support::Rng& rng, std::size_t count) {
  std::vector<std::uint32_t> out(count);
  for (std::uint32_t& w : out) w = rng.next_u32();
  return out;
}

// Random byte vector (e.g. image pixels, text corpora).
inline std::vector<std::uint8_t> random_bytes(support::Rng& rng, std::size_t count,
                                              std::uint8_t lo = 0, std::uint8_t hi = 255) {
  std::vector<std::uint8_t> out(count);
  for (std::uint8_t& b : out) {
    b = static_cast<std::uint8_t>(lo + rng.below(static_cast<std::uint64_t>(hi - lo) + 1));
  }
  return out;
}

}  // namespace cicmon::workloads
