// sha: the full 80-round SHA-1 compression over a generated message
// (MiBench's sha hashes file data the same way).
//
// The builder performs the byte-level padding host-side (data preparation);
// the generated program implements the message-schedule expansion and all
// four round families, so the hot code is the real compression function.
// The final digest is checked word-by-word against hash::Sha1.
#include "workloads/workloads.h"

#include "hash/sha1.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_sha(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned blocks = scaled(options.scale, 6);
  const unsigned msg_len = blocks * 64 - 9;  // pads to exactly `blocks` blocks

  support::Rng rng(options.seed);
  const std::vector<std::uint8_t> message = random_bytes(rng, msg_len);

  // Host-side SHA-1 padding: 0x80, zeros, 64-bit big-endian bit length.
  std::vector<std::uint8_t> padded = message;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0);
  const std::uint64_t bit_len = static_cast<std::uint64_t>(msg_len) * 8;
  for (int shift = 56; shift >= 0; shift -= 8) {
    padded.push_back(static_cast<std::uint8_t>(bit_len >> shift));
  }
  // Big-endian words, ready for direct lw.
  std::vector<std::uint32_t> words(padded.size() / 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = static_cast<std::uint32_t>(padded[4 * i]) << 24 |
               static_cast<std::uint32_t>(padded[4 * i + 1]) << 16 |
               static_cast<std::uint32_t>(padded[4 * i + 2]) << 8 |
               static_cast<std::uint32_t>(padded[4 * i + 3]);
  }

  hash::Sha1 ref;
  ref.update(message);
  const auto d = ref.digest();
  std::uint32_t expected[5];
  for (unsigned i = 0; i < 5; ++i) {
    expected[i] = static_cast<std::uint32_t>(d[4 * i]) << 24 |
                  static_cast<std::uint32_t>(d[4 * i + 1]) << 16 |
                  static_cast<std::uint32_t>(d[4 * i + 2]) << 8 |
                  static_cast<std::uint32_t>(d[4 * i + 3]);
  }

  casm_::Asm a;
  a.data_symbol("msg");
  a.data_words(words);
  a.data_symbol("hst");  // h0..h4
  a.data_words({0x67452301U, 0xEFCDAB89U, 0x98BADCFEU, 0x10325476U, 0xC3D2E1F0U});
  a.data_symbol("wbuf");
  a.data_space(80 * 4);

  // Register roles in the compression loop:
  //   s1..s5 = a,b,c,d,e   s6 = round index   s7 = &wbuf   s0 = block counter
  a.func("main");
  a.li(kS0, blocks);
  a.la(kT9, "msg");  // running block pointer (t9 survives: no calls made)

  casm_::Label per_block = a.bound_label();

  // --- W[0..15] = block words ---
  a.la(kS7, "wbuf");
  a.li(kT0, 16);
  a.move(kT1, kT9);
  a.move(kT2, kS7);
  casm_::Label copy = a.bound_label();
  a.lw(kT3, 0, kT1);
  a.sw(kT3, 0, kT2);
  a.addiu(kT1, kT1, 4);
  a.addiu(kT2, kT2, 4);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, copy);

  // --- W[16..79] = rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16]) ---
  a.li(kT0, 64);           // iterations
  a.addiu(kT1, kS7, 64);   // &W[16]
  casm_::Label extend = a.bound_label();
  a.lw(kT2, -12, kT1);     // W[t-3]
  a.lw(kT3, -32, kT1);     // W[t-8]
  a.xor_(kT2, kT2, kT3);
  a.lw(kT3, -56, kT1);     // W[t-14]
  a.xor_(kT2, kT2, kT3);
  a.lw(kT3, -64, kT1);     // W[t-16]
  a.xor_(kT2, kT2, kT3);
  a.sll(kT3, kT2, 1);
  a.srl(kT2, kT2, 31);
  a.or_(kT2, kT2, kT3);    // rotl1
  a.sw(kT2, 0, kT1);
  a.addiu(kT1, kT1, 4);
  a.addiu(kT0, kT0, -1);
  a.bnez(kT0, extend);

  // --- load working state ---
  a.la(kT0, "hst");
  a.lw(kS1, 0, kT0);
  a.lw(kS2, 4, kT0);
  a.lw(kS3, 8, kT0);
  a.lw(kS4, 12, kT0);
  a.lw(kS5, 16, kT0);

  // --- 80 rounds as four 20-round loops, one per round family (the shape
  // real SHA-1 implementations use; each loop body is one region) ---
  enum class Family { kChoose, kParity1, kMajority, kParity2 };
  const struct {
    Family family;
    std::uint32_t k;
  } families[4] = {{Family::kChoose, 0x5A827999U},
                   {Family::kParity1, 0x6ED9EBA1U},
                   {Family::kMajority, 0x8F1BBCDCU},
                   {Family::kParity2, 0xCA62C1D6U}};
  a.li(kS6, 0);  // round index, shared across the four loops
  for (const auto& fam : families) {
    a.li(kT8, 20);  // rounds left in this family
    casm_::Label loop = a.bound_label();
    switch (fam.family) {
      case Family::kChoose:  // f = (b & c) | (~b & d)
        a.and_(kT6, kS2, kS3);
        a.not_(kT0, kS2);
        a.and_(kT0, kT0, kS4);
        a.or_(kT6, kT6, kT0);
        break;
      case Family::kParity1:
      case Family::kParity2:  // f = b ^ c ^ d
        a.xor_(kT6, kS2, kS3);
        a.xor_(kT6, kT6, kS4);
        break;
      case Family::kMajority:  // f = (b&c) | (b&d) | (c&d)
        a.and_(kT6, kS2, kS3);
        a.and_(kT0, kS2, kS4);
        a.or_(kT6, kT6, kT0);
        a.and_(kT0, kS3, kS4);
        a.or_(kT6, kT6, kT0);
        break;
    }
    a.li(kT7, fam.k);
    // temp = rotl5(a) + f + e + k + W[t]
    a.sll(kT0, kS1, 5);
    a.srl(kT1, kS1, 27);
    a.or_(kT0, kT0, kT1);
    a.addu(kT0, kT0, kT6);
    a.addu(kT0, kT0, kS5);
    a.addu(kT0, kT0, kT7);
    a.sll(kT1, kS6, 2);
    a.addu(kT1, kT1, kS7);
    a.lw(kT1, 0, kT1);
    a.addu(kT0, kT0, kT1);
    // e = d; d = c; c = rotl30(b); b = a; a = temp
    a.move(kS5, kS4);
    a.move(kS4, kS3);
    a.sll(kT1, kS2, 30);
    a.srl(kT2, kS2, 2);
    a.or_(kS3, kT1, kT2);
    a.move(kS2, kS1);
    a.move(kS1, kT0);
    a.addiu(kS6, kS6, 1);
    a.addiu(kT8, kT8, -1);
    a.bnez(kT8, loop);
  }

  // --- h += working state ---
  a.la(kT0, "hst");
  for (unsigned i = 0; i < 5; ++i) {
    const unsigned reg = kS1 + i;
    a.lw(kT1, static_cast<std::int32_t>(4 * i), kT0);
    a.addu(kT1, kT1, reg);
    a.sw(kT1, static_cast<std::int32_t>(4 * i), kT0);
  }

  a.addiu(kT9, kT9, 64);
  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, per_block);

  // --- verify digest ---
  a.la(kT0, "hst");
  for (unsigned i = 0; i < 5; ++i) {
    a.lw(kT1, static_cast<std::int32_t>(4 * i), kT0);
    a.check_eq(kT1, expected[i]);
    a.la(kT0, "hst");  // check_eq clobbers a0/a1 only, but reload for clarity
  }
  a.sys_exit(0);

  return a.finalize();
}

}  // namespace cicmon::workloads
