// bitcount: population counts of a word array by three methods (MiBench's
// bitcnts exercises a family of counting routines the same way).
//
// The three methods are inlined into one element loop (as -O2 inlines the
// small static counters), so the hot working set is a handful of blocks —
// the paper's best case: 0% overhead at every IHT size.
#include "workloads/workloads.h"

#include "support/bitops.h"
#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_bitcount(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned n = 48;
  const unsigned repeats = scaled(options.scale, 24);

  support::Rng rng(options.seed);
  const std::vector<std::uint32_t> values = random_words(rng, n);
  const std::uint32_t expected = repeats * 3U * refs::popcount_sum(values);

  casm_::Asm a;
  a.data_symbol("arr");
  a.data_words(values);
  a.data_symbol("nibtab");
  for (std::uint32_t nibble = 0; nibble < 16; ++nibble) {
    a.data_word(support::popcount32(nibble));
  }

  // Register roles: s0 = repeats, s1 = &arr[i], s2 = words left, s3 = nibtab,
  // s7 = grand total.
  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);
  a.la(kS3, "nibtab");
  casm_::Label outer = a.bound_label();
  a.la(kS1, "arr");
  a.li(kS2, n);
  casm_::Label elem = a.bound_label();

  // Method 1: Kernighan (x &= x-1 until zero) — the only data-dependent loop.
  a.lw(kT0, 0, kS1);
  casm_::Label kern = a.bound_label();
  casm_::Label kern_done = a.label();
  a.beqz(kT0, kern_done);
  a.addiu(kT1, kT0, -1);
  a.and_(kT0, kT0, kT1);
  a.addiu(kS7, kS7, 1);
  a.b(kern);
  a.bind(kern_done);

  // Method 2: shift-and-test, unrolled four bits per step (8 steps).
  a.lw(kT0, 0, kS1);
  a.li(kT2, 8);
  casm_::Label shift = a.bound_label();
  for (int step = 0; step < 4; ++step) {
    a.andi(kT1, kT0, 1);
    a.addu(kS7, kS7, kT1);
    a.srl(kT0, kT0, 1);
  }
  a.addiu(kT2, kT2, -1);
  a.bnez(kT2, shift);

  // Method 3: eight 4-bit table lookups, fully unrolled (one region).
  a.lw(kT0, 0, kS1);
  for (int nibble = 0; nibble < 8; ++nibble) {
    a.andi(kT1, kT0, 15);
    a.sll(kT1, kT1, 2);
    a.addu(kT1, kT1, kS3);
    a.lw(kT1, 0, kT1);
    a.addu(kS7, kS7, kT1);
    a.srl(kT0, kT0, 4);
  }

  a.addiu(kS1, kS1, 4);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, elem);
  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  return a.finalize();
}

}  // namespace cicmon::workloads
