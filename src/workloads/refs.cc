#include "workloads/refs.h"

#include <algorithm>
#include <limits>

#include "support/bitops.h"
#include "support/error.h"

namespace cicmon::workloads::refs {

std::uint32_t isqrt32(std::uint32_t value) {
  std::uint32_t result = 0;
  std::uint32_t bit = 1U << 30;
  while (bit > value) bit >>= 2;
  while (bit != 0) {
    if (value >= result + bit) {
      value -= result + bit;
      result = (result >> 1) + bit;
    } else {
      result >>= 1;
    }
    bit >>= 2;
  }
  return result;
}

std::uint32_t gcd32(std::uint32_t a, std::uint32_t b) {
  while (b != 0) {
    const std::uint32_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

std::uint32_t deg_to_rad_fixed(std::uint32_t deg) { return (deg * 31416U) / 1800000U; }

unsigned popcount_sum(std::span<const std::uint32_t> values) {
  unsigned sum = 0;
  for (std::uint32_t v : values) sum += support::popcount32(v);
  return sum;
}

std::uint32_t dijkstra_distance_sum(std::span<const std::uint32_t> matrix, unsigned n) {
  support::check(matrix.size() == static_cast<std::size_t>(n) * n,
                 "dijkstra ref: matrix size mismatch");
  constexpr std::uint32_t kInf = 0x3FFF'FFFF;  // matches the kernel's sentinel
  std::vector<std::uint32_t> dist(n, kInf);
  std::vector<bool> visited(n, false);
  dist[0] = 0;
  for (unsigned round = 0; round < n; ++round) {
    unsigned best = n;
    std::uint32_t best_dist = kInf;
    for (unsigned i = 0; i < n; ++i) {
      if (!visited[i] && dist[i] < best_dist) {
        best_dist = dist[i];
        best = i;
      }
    }
    if (best == n) break;
    visited[best] = true;
    for (unsigned j = 0; j < n; ++j) {
      const std::uint32_t w = matrix[static_cast<std::size_t>(best) * n + j];
      if (w != 0 && dist[best] + w < dist[j]) dist[j] = dist[best] + w;
    }
  }
  std::uint32_t sum = 0;
  for (std::uint32_t d : dist) {
    if (d != kInf) sum += d;
  }
  return sum;
}

unsigned susan_edge_count(std::span<const std::uint8_t> image, unsigned w, unsigned h,
                          unsigned threshold, unsigned usan_limit) {
  support::check(image.size() == static_cast<std::size_t>(w) * h, "susan ref: image size");
  unsigned edges = 0;
  for (unsigned y = 1; y + 1 < h; ++y) {
    for (unsigned x = 1; x + 1 < w; ++x) {
      const int centre = image[static_cast<std::size_t>(y) * w + x];
      unsigned similar = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int pixel =
              image[static_cast<std::size_t>(y + dy) * w + (x + dx)];
          const int diff = pixel >= centre ? pixel - centre : centre - pixel;
          if (static_cast<unsigned>(diff) <= threshold) ++similar;
        }
      }
      if (similar <= usan_limit) ++edges;
    }
  }
  return edges;
}

unsigned bmh_count(std::span<const std::uint8_t> text, std::span<const std::uint8_t> pattern) {
  const std::size_t n = text.size();
  const std::size_t m = pattern.size();
  if (m == 0 || m > n) return 0;
  std::array<std::size_t, 256> skip;
  skip.fill(m);
  for (std::size_t i = 0; i + 1 < m; ++i) skip[pattern[i]] = m - 1 - i;

  unsigned count = 0;
  std::size_t pos = 0;
  while (pos + m <= n) {
    std::size_t j = m;
    while (j > 0 && text[pos + j - 1] == pattern[j - 1]) --j;
    if (j == 0) {
      ++count;
      pos += m;  // non-overlapping
    } else {
      pos += skip[text[pos + m - 1]];
    }
  }
  return count;
}

unsigned brute_count(std::span<const std::uint8_t> text, std::span<const std::uint8_t> pattern) {
  const std::size_t n = text.size();
  const std::size_t m = pattern.size();
  if (m == 0 || m > n) return 0;
  unsigned count = 0;
  std::size_t pos = 0;
  while (pos + m <= n) {
    std::size_t j = 0;
    while (j < m && text[pos + j] == pattern[j]) ++j;
    if (j == m) {
      ++count;
      pos += m;
    } else {
      ++pos;
    }
  }
  return count;
}

std::uint32_t BlowfishRef::f(std::uint32_t x) const {
  const std::uint32_t a = x >> 24;
  const std::uint32_t b = (x >> 16) & 0xFF;
  const std::uint32_t c = (x >> 8) & 0xFF;
  const std::uint32_t d = x & 0xFF;
  return ((s[0][a] + s[1][b]) ^ s[2][c]) + s[3][d];
}

void BlowfishRef::encrypt(std::uint32_t* left, std::uint32_t* right) const {
  std::uint32_t l = *left;
  std::uint32_t r = *right;
  for (int i = 0; i < 16; ++i) {
    l ^= p[i];
    r ^= f(l);
    std::swap(l, r);
  }
  std::swap(l, r);
  r ^= p[16];
  l ^= p[17];
  *left = l;
  *right = r;
}

void BlowfishRef::decrypt(std::uint32_t* left, std::uint32_t* right) const {
  std::uint32_t l = *left;
  std::uint32_t r = *right;
  for (int i = 17; i > 1; --i) {
    l ^= p[i];
    r ^= f(l);
    std::swap(l, r);
  }
  std::swap(l, r);
  r ^= p[1];
  l ^= p[0];
  *left = l;
  *right = r;
}

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16};

std::uint8_t xtime(std::uint8_t value) {
  return static_cast<std::uint8_t>((value << 1) ^ ((value & 0x80) ? 0x1b : 0x00));
}

}  // namespace

std::span<const std::uint8_t> Aes128Ref::sbox() { return {kSbox, 256}; }

Aes128Ref::Aes128Ref(std::span<const std::uint8_t> key16) {
  support::check(key16.size() == 16, "AES-128 key must be 16 bytes");
  std::copy(key16.begin(), key16.end(), round_keys_.begin());
  std::uint8_t rcon = 0x01;
  for (unsigned i = 16; i < 176; i += 4) {
    std::uint8_t temp[4];
    for (unsigned j = 0; j < 4; ++j) temp[j] = round_keys_[i - 4 + j];
    if (i % 16 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = xtime(rcon);
    }
    for (unsigned j = 0; j < 4; ++j) {
      round_keys_[i + j] = static_cast<std::uint8_t>(round_keys_[i - 16 + j] ^ temp[j]);
    }
  }
}

void Aes128Ref::encrypt_block(const std::uint8_t* in16, std::uint8_t* out16) const {
  std::uint8_t state[16];
  std::copy(in16, in16 + 16, state);

  auto add_round_key = [&](unsigned round) {
    for (unsigned i = 0; i < 16; ++i) state[i] ^= round_keys_[round * 16 + i];
  };
  auto sub_bytes = [&] {
    for (unsigned i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
  };
  auto shift_rows = [&] {
    // Column-major state: byte (row r, column c) lives at index c*4 + r.
    std::uint8_t tmp[16];
    for (unsigned c = 0; c < 4; ++c) {
      for (unsigned r = 0; r < 4; ++r) tmp[c * 4 + r] = state[((c + r) % 4) * 4 + r];
    }
    std::copy(tmp, tmp + 16, state);
  };
  auto mix_columns = [&] {
    for (unsigned c = 0; c < 4; ++c) {
      std::uint8_t* col = state + c * 4;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
      col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
      col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
      col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
      col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
    }
  };

  add_round_key(0);
  for (unsigned round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  std::copy(state, state + 16, out16);
}

}  // namespace cicmon::workloads::refs
