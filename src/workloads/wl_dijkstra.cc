// dijkstra: single-source shortest paths over a dense random graph, the
// classic O(n^2) selection formulation MiBench's dijkstra uses (adjacency
// matrix, repeated min-scan, relaxation sweep).
//
// The min-scan and relaxation loops are emitted branchless (mask-and-select
// idiom), the way an optimizing MIPS compiler lowers them — one region per
// loop body. Execution profile: a small set of long hot blocks — the paper
// shows dijkstra's miss rate collapsing by 8 IHT entries.
#include "workloads/workloads.h"

#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_dijkstra(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned n = 20;
  const unsigned repeats = scaled(options.scale, 4);
  constexpr std::uint32_t kInf = 0x3FFF'FFFF;

  support::Rng rng(options.seed);
  std::vector<std::uint32_t> matrix(static_cast<std::size_t>(n) * n, 0);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < n; ++j) {
      if (i == j) continue;
      // ~70% dense with weights 1..15.
      if (rng.chance(0.7)) matrix[static_cast<std::size_t>(i) * n + j] = 1 + rng.below(15);
    }
  }
  const std::uint32_t expected = repeats * refs::dijkstra_distance_sum(matrix, n);

  casm_::Asm a;
  a.data_symbol("adj");
  a.data_words(matrix);
  a.data_symbol("dist");
  a.data_space(n * 4);
  a.data_symbol("visited");
  a.data_space(n * 4);

  // Register roles: s4 = &dist, s5 = &visited, s6 = &adj, t9 = n (no calls
  // are made, so t9 is stable); s2/s3 = best index/distance during scans.
  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);
  a.la(kS4, "dist");
  a.la(kS5, "visited");
  a.la(kS6, "adj");
  a.li(kT9, n);
  casm_::Label outer = a.bound_label();

  // --- init: dist[i] = INF (dist[0] = 0), visited[i] = 0 ---
  a.move(kT0, kS4);
  a.move(kT1, kS5);
  a.li(kT2, n);
  a.li(kT3, kInf);
  casm_::Label init = a.bound_label();
  a.sw(kT3, 0, kT0);
  a.sw(kZero, 0, kT1);
  a.addiu(kT0, kT0, 4);
  a.addiu(kT1, kT1, 4);
  a.addiu(kT2, kT2, -1);
  a.bnez(kT2, init);
  a.sw(kZero, 0, kS4);

  // --- n rounds of select-min + relax ---
  a.li(kS1, n);
  casm_::Label round = a.bound_label();

  // Branchless min-scan: for each i, cond = !visited[i] & (dist[i] < best);
  // best/bestidx updated through an all-ones/zero mask.
  a.li(kS2, n);     // best index (n = none)
  a.li(kS3, kInf);  // best distance
  a.li(kT0, 0);     // i
  a.move(kT1, kS4); // &dist[i]
  a.move(kT2, kS5); // &visited[i]
  casm_::Label scan = a.bound_label();
  a.lw(kT3, 0, kT2);       // visited[i]
  a.lw(kT4, 0, kT1);       // dist[i]
  a.sltu(kT5, kT4, kS3);   // dist[i] < best
  a.sltiu(kT6, kT3, 1);    // !visited[i]
  a.and_(kT5, kT5, kT6);
  a.subu(kT6, kZero, kT5); // mask
  a.xor_(kT7, kT4, kS3);
  a.and_(kT7, kT7, kT6);
  a.xor_(kS3, kS3, kT7);   // best = cond ? dist[i] : best
  a.xor_(kT7, kT0, kS2);
  a.and_(kT7, kT7, kT6);
  a.xor_(kS2, kS2, kT7);   // bestidx = cond ? i : bestidx
  a.addiu(kT0, kT0, 1);
  a.addiu(kT1, kT1, 4);
  a.addiu(kT2, kT2, 4);
  a.bne(kT0, kT9, scan);

  casm_::Label rounds_done = a.label();
  a.beq(kS2, kT9, rounds_done);  // nothing reachable left

  // visited[best] = 1
  a.sll(kT2, kS2, 2);
  a.addu(kT2, kT2, kS5);
  a.li(kT3, 1);
  a.sw(kT3, 0, kT2);

  // Branchless relaxation sweep over row `best`.
  a.li(kT4, n * 4);
  a.multu(kS2, kT4);
  a.mflo(kT4);
  a.addu(kT5, kS6, kT4);  // row pointer
  a.li(kT0, 0);           // j
  a.move(kT1, kS4);       // &dist[j]
  casm_::Label relax = a.bound_label();
  a.lw(kT2, 0, kT5);       // w
  a.lw(kT3, 0, kT1);       // dist[j]
  a.addu(kT4, kT2, kS3);   // cand = dist[best] + w
  a.sltu(kT6, kT4, kT3);   // cand < dist[j]
  a.sltu(kT7, kZero, kT2); // w != 0
  a.and_(kT6, kT6, kT7);
  a.subu(kT6, kZero, kT6); // mask
  a.xor_(kT7, kT4, kT3);
  a.and_(kT7, kT7, kT6);
  a.xor_(kT3, kT3, kT7);   // dist[j] = cond ? cand : dist[j]
  a.sw(kT3, 0, kT1);
  a.addiu(kT0, kT0, 1);
  a.addiu(kT1, kT1, 4);
  a.addiu(kT5, kT5, 4);
  a.bne(kT0, kT9, relax);

  a.addiu(kS1, kS1, -1);
  a.bnez(kS1, round);
  a.bind(rounds_done);

  // --- sum finite distances (branchless accumulate) ---
  a.move(kT0, kS4);
  a.li(kT1, n);
  a.li(kT3, kInf);
  casm_::Label sum = a.bound_label();
  a.lw(kT2, 0, kT0);
  a.sltu(kT4, kT2, kT3);   // finite?
  a.subu(kT4, kZero, kT4);
  a.and_(kT2, kT2, kT4);
  a.addu(kS7, kS7, kT2);
  a.addiu(kT0, kT0, 4);
  a.addiu(kT1, kT1, -1);
  a.bnez(kT1, sum);

  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  return a.finalize();
}

}  // namespace cicmon::workloads
