#include "workloads/workloads.h"

#include <algorithm>
#include <array>

#include "support/error.h"
#include "support/strings.h"

namespace cicmon::workloads {
namespace {

constexpr std::array<WorkloadInfo, 9> kWorkloads = {{
    {"basicmath", "integer sqrt / gcd / fixed-point conversions", &build_basicmath},
    {"susan", "USAN-style edge detection on a synthetic image", &build_susan},
    {"dijkstra", "dense-graph single-source shortest paths", &build_dijkstra},
    {"patricia", "binary-trie routing-table insert/lookup", &build_patricia},
    {"blowfish", "16-round Feistel cipher encrypt/decrypt round trip", &build_blowfish},
    {"rijndael", "AES-128 block encryption", &build_rijndael},
    {"sha", "SHA-1 over a generated message", &build_sha},
    {"stringsearch", "Boyer-Moore-Horspool multi-pattern search", &build_stringsearch},
    {"bitcount", "population counts by three methods", &build_bitcount},
}};

}  // namespace

std::span<const WorkloadInfo> all_workloads() { return kWorkloads; }

const WorkloadInfo& find_workload(std::string_view name) {
  for (const WorkloadInfo& info : kWorkloads) {
    if (info.name == name) return info;
  }
  std::string message = "unknown workload '";
  message.append(name);
  message.append("'");
  if (const WorkloadInfo* close = closest_workload(name)) {
    message.append("; did you mean '");
    message.append(close->name);
    message.append("'?");
  }
  message.append(" (valid:");
  for (const WorkloadInfo& info : kWorkloads) {
    message.append(" ");
    message.append(info.name);
  }
  message.append(")");
  throw support::CicError(message);
}

const WorkloadInfo* closest_workload(std::string_view name) {
  const std::string lowered = support::to_lower(name);
  const WorkloadInfo* best = nullptr;
  std::size_t best_distance = 0;
  for (const WorkloadInfo& info : kWorkloads) {
    const std::size_t distance = support::edit_distance(lowered, info.name);
    if (best == nullptr || distance < best_distance) {
      best = &info;
      best_distance = distance;
    }
  }
  // A suggestion only helps when the name is plausibly a typo: allow one
  // edit per three characters, minimum two.
  const std::size_t budget = std::max<std::size_t>(2, lowered.size() / 3);
  return best_distance <= budget ? best : nullptr;
}

casm_::Image build_workload(std::string_view name, const BuildOptions& options) {
  return find_workload(name).build(options);
}

}  // namespace cicmon::workloads
