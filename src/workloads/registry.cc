#include "workloads/workloads.h"

#include <array>

#include "support/error.h"

namespace cicmon::workloads {
namespace {

constexpr std::array<WorkloadInfo, 9> kWorkloads = {{
    {"basicmath", "integer sqrt / gcd / fixed-point conversions", &build_basicmath},
    {"susan", "USAN-style edge detection on a synthetic image", &build_susan},
    {"dijkstra", "dense-graph single-source shortest paths", &build_dijkstra},
    {"patricia", "binary-trie routing-table insert/lookup", &build_patricia},
    {"blowfish", "16-round Feistel cipher encrypt/decrypt round trip", &build_blowfish},
    {"rijndael", "AES-128 block encryption", &build_rijndael},
    {"sha", "SHA-1 over a generated message", &build_sha},
    {"stringsearch", "Boyer-Moore-Horspool multi-pattern search", &build_stringsearch},
    {"bitcount", "population counts by three methods", &build_bitcount},
}};

}  // namespace

std::span<const WorkloadInfo> all_workloads() { return kWorkloads; }

const WorkloadInfo& find_workload(std::string_view name) {
  for (const WorkloadInfo& info : kWorkloads) {
    if (info.name == name) return info;
  }
  throw support::CicError("unknown workload: " + std::string(name));
}

casm_::Image build_workload(std::string_view name, const BuildOptions& options) {
  return find_workload(name).build(options);
}

}  // namespace cicmon::workloads
