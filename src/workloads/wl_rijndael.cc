// rijndael: AES-128 (FIPS 197) block encryption — real SubBytes/ShiftRows/
// MixColumns/AddRoundKey rounds over a column-major state, with the key
// schedule expanded host-side and planted in the data section (key expansion
// is setup; the paper's evaluation measures the encryption kernel).
//
// Execution profile: per round, four short loops plus the branchy inline
// xtime of MixColumns — a working set of blocks that fits a 16-entry IHT
// but spills an 8-entry one, matching the paper's rijndael row (20.7%
// overhead at 8 entries, 0% at 16).
//
// Register convention: aes_encrypt_block clobbers s3/s4 and preserves ra;
// the stage helpers are leaves using t registers only.
#include "workloads/workloads.h"

#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {
namespace {

using namespace cicmon::isa;

// Emits xtime(t5) -> t5 (GF(2^8) doubling), clobbering t7. Branchless: the
// polynomial reduction is applied through a mask derived from bit 8, the
// standard constant-time lowering.
void emit_xtime(casm_::Asm& a) {
  a.sll(kT5, kT5, 1);
  a.srl(kT7, kT5, 8);
  a.andi(kT7, kT7, 1);
  a.subu(kT7, kZero, kT7);   // mask
  a.andi(kT7, kT7, 0x11b);
  a.xor_(kT5, kT5, kT7);     // clears bit 8, folds in the AES polynomial
  a.andi(kT5, kT5, 0xFF);
}

}  // namespace

casm_::Image build_rijndael(const BuildOptions& options) {
  const unsigned blocks = 8;
  const unsigned repeats = scaled(options.scale, 3);

  support::Rng rng(options.seed);
  std::vector<std::uint8_t> key = random_bytes(rng, 16);
  std::vector<std::uint8_t> plain = random_bytes(rng, blocks * 16);
  const refs::Aes128Ref ref(key);

  // Expected: per repeat, every block is re-encrypted in place (chained), and
  // the byte sum of the array is accumulated.
  std::uint32_t expected = 0;
  {
    std::vector<std::uint8_t> buf = plain;
    for (unsigned r = 0; r < repeats; ++r) {
      for (unsigned b = 0; b < blocks; ++b) {
        ref.encrypt_block(&buf[16 * b], &buf[16 * b]);
      }
      for (std::uint8_t byte : buf) expected += byte;
    }
  }

  casm_::Asm a;
  a.data_symbol("aes_sbox");
  a.data_bytes(refs::Aes128Ref::sbox());
  a.data_symbol("rk");
  a.data_bytes(ref.round_keys());
  a.data_symbol("blocks");
  a.data_bytes(plain);
  a.data_symbol("state");
  a.data_space(16);
  a.data_symbol("tmpst");
  a.data_space(16);

  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);
  casm_::Label outer = a.bound_label();
  a.la(kS1, "blocks");
  a.li(kS2, blocks);
  casm_::Label per_block = a.bound_label();
  a.move(kA0, kS1);
  a.call("aes_encrypt_block");
  a.addiu(kS1, kS1, 16);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, per_block);
  // Byte-sum the whole array.
  a.la(kT0, "blocks");
  a.li(kT1, blocks * 16);
  casm_::Label sum = a.bound_label();
  a.lbu(kT2, 0, kT0);
  a.addu(kS7, kS7, kT2);
  a.addiu(kT0, kT0, 1);
  a.addiu(kT1, kT1, -1);
  a.bnez(kT1, sum);
  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  // state[i] ^= rk[a0*16 + i]
  a.func("aes_ark");
  {
    a.sll(kT0, kA0, 4);
    a.la(kT1, "rk");
    a.addu(kT1, kT1, kT0);
    a.la(kT2, "state");
    a.li(kT0, 16);
    casm_::Label loop = a.bound_label();
    a.lbu(kT3, 0, kT2);
    a.lbu(kT4, 0, kT1);
    a.xor_(kT3, kT3, kT4);
    a.sb(kT3, 0, kT2);
    a.addiu(kT1, kT1, 1);
    a.addiu(kT2, kT2, 1);
    a.addiu(kT0, kT0, -1);
    a.bnez(kT0, loop);
    a.ret();
  }

  // state[i] = sbox[state[i]]
  a.func("aes_sub");
  {
    a.la(kT1, "aes_sbox");
    a.la(kT2, "state");
    a.li(kT0, 16);
    casm_::Label loop = a.bound_label();
    a.lbu(kT3, 0, kT2);
    a.addu(kT3, kT3, kT1);
    a.lbu(kT3, 0, kT3);
    a.sb(kT3, 0, kT2);
    a.addiu(kT2, kT2, 1);
    a.addiu(kT0, kT0, -1);
    a.bnez(kT0, loop);
    a.ret();
  }

  // Cyclic row rotation: tmp[c*4+r] = state[((c+r)%4)*4+r], then copy back
  // word-wise — the whole permutation is one straight-line region.
  a.func("aes_shift");
  {
    a.la(kT1, "state");
    a.la(kT2, "tmpst");
    for (unsigned c = 0; c < 4; ++c) {
      for (unsigned r = 0; r < 4; ++r) {
        const unsigned src = ((c + r) % 4) * 4 + r;
        a.lbu(kT3, static_cast<std::int32_t>(src), kT1);
        a.sb(kT3, static_cast<std::int32_t>(c * 4 + r), kT2);
      }
    }
    for (unsigned word = 0; word < 4; ++word) {
      a.lw(kT3, static_cast<std::int32_t>(word * 4), kT2);
      a.sw(kT3, static_cast<std::int32_t>(word * 4), kT1);
    }
    a.ret();
  }

  // MixColumns over the four columns (t9 = column pointer, t8 = counter).
  a.func("aes_mix");
  {
    a.la(kT9, "state");
    a.li(kT8, 4);
    casm_::Label col = a.bound_label();
    a.lbu(kT0, 0, kT9);
    a.lbu(kT1, 1, kT9);
    a.lbu(kT2, 2, kT9);
    a.lbu(kT3, 3, kT9);
    a.xor_(kT4, kT0, kT1);
    a.xor_(kT4, kT4, kT2);
    a.xor_(kT4, kT4, kT3);  // a0^a1^a2^a3
    // out[r] = a[r] ^ all ^ xtime(a[r] ^ a[r+1])
    const unsigned regs[4] = {kT0, kT1, kT2, kT3};
    for (unsigned r = 0; r < 4; ++r) {
      a.xor_(kT5, regs[r], regs[(r + 1) % 4]);
      emit_xtime(a);
      a.xor_(kT6, regs[r], kT4);
      a.xor_(kT6, kT6, kT5);
      a.sb(kT6, static_cast<std::int32_t>(r), kT9);
    }
    a.addiu(kT9, kT9, 4);
    a.addiu(kT8, kT8, -1);
    a.bnez(kT8, col);
    a.ret();
  }

  // Encrypts the 16 bytes at a0 in place.
  a.func("aes_encrypt_block");
  {
    a.push(kRa);
    a.move(kS4, kA0);  // block pointer
    // state <- block (word copies; both are 4-byte aligned)
    a.la(kT2, "state");
    for (unsigned word = 0; word < 4; ++word) {
      a.lw(kT3, static_cast<std::int32_t>(word * 4), kS4);
      a.sw(kT3, static_cast<std::int32_t>(word * 4), kT2);
    }

    a.li(kA0, 0);
    a.call("aes_ark");
    a.li(kS3, 1);
    casm_::Label round = a.bound_label();
    casm_::Label final_round = a.label();
    a.li(kT0, 9);
    a.bgt(kS3, kT0, final_round);
    a.call("aes_sub");
    a.call("aes_shift");
    a.call("aes_mix");
    a.move(kA0, kS3);
    a.call("aes_ark");
    a.addiu(kS3, kS3, 1);
    a.b(round);
    a.bind(final_round);
    a.call("aes_sub");
    a.call("aes_shift");
    a.li(kA0, 10);
    a.call("aes_ark");

    // block <- state
    a.la(kT1, "state");
    for (unsigned word = 0; word < 4; ++word) {
      a.lw(kT3, static_cast<std::int32_t>(word * 4), kT1);
      a.sw(kT3, static_cast<std::int32_t>(word * 4), kS4);
    }

    a.pop(kRa);
    a.ret();
  }

  return a.finalize();
}

}  // namespace cicmon::workloads
