// basicmath: integer square roots, Euclid GCDs, and fixed-point angle
// conversion over an input array (MiBench's basicmath runs the same kinds of
// "simple math the hardware lacks" kernels).
//
// Exercises the multiply/divide datapath (gcd remainders, fixed-point
// scaling) alongside branchy bit arithmetic (isqrt).
#include "workloads/workloads.h"

#include "workloads/refs.h"
#include "workloads/wl_common.h"

namespace cicmon::workloads {

casm_::Image build_basicmath(const BuildOptions& options) {
  using namespace cicmon::isa;
  const unsigned n = 32;
  const unsigned repeats = scaled(options.scale, 10);

  support::Rng rng(options.seed);
  std::vector<std::uint32_t> values = random_words(rng, n);
  for (std::uint32_t& v : values) v |= 1;  // keep gcd inputs nonzero

  std::uint32_t expected = 0;
  for (unsigned r = 0; r < repeats; ++r) {
    for (unsigned i = 0; i + 1 < n; ++i) {
      expected += refs::isqrt32(values[i]);
      expected += refs::gcd32(values[i], values[i + 1]);
      expected += refs::deg_to_rad_fixed(values[i] % 360);
    }
  }

  casm_::Asm a;
  a.data_symbol("arr");
  a.data_words(values);

  a.func("main");
  a.li(kS0, repeats);
  a.li(kS7, 0);  // accumulator
  casm_::Label outer = a.bound_label();
  a.la(kS1, "arr");
  a.li(kS2, n - 1);
  casm_::Label elem = a.bound_label();
  a.lw(kA0, 0, kS1);
  a.call("isqrt");
  a.addu(kS7, kS7, kV0);
  a.lw(kA0, 0, kS1);
  a.lw(kA1, 4, kS1);
  a.call("gcd");
  a.addu(kS7, kS7, kV0);
  a.lw(kA0, 0, kS1);
  a.li(kT0, 360);
  a.divu(kA0, kT0);
  a.mfhi(kA0);  // a0 = value % 360
  a.call("deg2rad");
  a.addu(kS7, kS7, kV0);
  a.addiu(kS1, kS1, 4);
  a.addiu(kS2, kS2, -1);
  a.bnez(kS2, elem);
  a.addiu(kS0, kS0, -1);
  a.bnez(kS0, outer);
  a.check_eq(kS7, expected);
  a.sys_exit(0);

  // v0 = floor(sqrt(a0)), bit-by-bit, with the conditional subtract lowered
  // to a branchless mask-select (as a compiler would emit it).
  a.func("isqrt");
  {
    a.li(kV0, 0);         // result
    a.li(kT0, 1);
    a.sll(kT0, kT0, 30);  // bit = 1 << 30
    casm_::Label shrink = a.bound_label();
    casm_::Label mainloop = a.label();
    a.bgeu(kA0, kT0, mainloop);  // until bit <= a0
    a.srl(kT0, kT0, 2);
    a.b(shrink);
    a.bind(mainloop);
    a.addu(kT1, kV0, kT0);   // trial = result + bit
    a.sltu(kT2, kA0, kT1);   // trial too big?
    a.addiu(kT3, kT2, -1);   // mask = ~0 when the trial subtract applies
    a.and_(kT4, kT1, kT3);
    a.subu(kA0, kA0, kT4);   // value -= trial (or 0)
    a.srl(kV0, kV0, 1);
    a.and_(kT4, kT0, kT3);
    a.addu(kV0, kV0, kT4);   // result = (result >> 1) + (bit or 0)
    a.srl(kT0, kT0, 2);
    a.bnez(kT0, mainloop);
    a.ret();
  }

  // v0 = gcd(a0, a1) by Euclid's remainder chain. Bottom-tested so the whole
  // iteration is one region (inputs are nonzero by construction).
  a.func("gcd");
  {
    casm_::Label loop = a.bound_label();
    a.divu(kA0, kA1);
    a.move(kA0, kA1);
    a.mfhi(kA1);  // remainder
    a.bnez(kA1, loop);
    a.move(kV0, kA0);
    a.ret();
  }

  // v0 = (a0 * 31416) / 1800000 — degrees to radians in fixed point.
  a.func("deg2rad");
  {
    a.li(kT0, 31416);
    a.multu(kA0, kT0);
    a.mflo(kT1);
    a.li(kT0, 1800000);
    a.divu(kT1, kT0);
    a.mflo(kV0);
    a.ret();
  }

  return a.finalize();
}

}  // namespace cicmon::workloads
