// Pretty-printer producing the paper's microoperation notation (Figures 1,
// 3(b), 4). Used by the design-flow example and by the golden tests that pin
// the embedded monitoring sequences to the published figures.
#include <sstream>

#include "uop/monitor_pass.h"
#include "uop/uop.h"

namespace cicmon::uop {
namespace {

const char* special_name(SpecialReg r) {
  switch (r) {
    case SpecialReg::kCpc: return "CPC";
    case SpecialReg::kPpc: return "PPC";
    case SpecialReg::kIReg: return "IReg";
    case SpecialReg::kSta: return "STA";
    case SpecialReg::kRhash: return "RHASH";
    case SpecialReg::kHi: return "HI";
    case SpecialReg::kLo: return "LO";
  }
  return "?";
}

// Conventional names for the well-known temp slots, matching the paper's
// variable names; anonymous temps print as tN.
std::string temp_name(std::uint8_t t) {
  switch (t) {
    case 0: return "current_pc";
    case 1: return "instr";
    case MonitorTemps::kStartIf: return "start";
    case MonitorTemps::kOldHash: return "ohashv";
    case MonitorTemps::kNewHash: return "nhashv";
    case MonitorTemps::kStartId: return "start";
    case MonitorTemps::kEnd: return "end";
    case MonitorTemps::kHashV: return "hashv";
    case MonitorTemps::kFound: return "found";
    case MonitorTemps::kMatch: return "match";
    default: return "t" + std::to_string(t);
  }
}

const char* alu_name(AluOp op) {
  switch (op) {
    case AluOp::kAdd: return "add";
    case AluOp::kSub: return "sub";
    case AluOp::kAnd: return "and";
    case AluOp::kOr: return "or";
    case AluOp::kXor: return "xor";
    case AluOp::kNor: return "nor";
    case AluOp::kSll: return "sll";
    case AluOp::kSrl: return "srl";
    case AluOp::kSra: return "sra";
    case AluOp::kSltSigned: return "slt";
    case AluOp::kSltUnsigned: return "sltu";
    case AluOp::kCmpEq: return "eq";
    case AluOp::kCmpNe: return "ne";
    case AluOp::kCmpLeZ: return "lez";
    case AluOp::kCmpGtZ: return "gtz";
    case AluOp::kCmpLtZ: return "ltz";
    case AluOp::kCmpGeZ: return "gez";
  }
  return "?";
}

const char* sel_name(GprSel sel) {
  switch (sel) {
    case GprSel::kRs: return "rs";
    case GprSel::kRt: return "rt";
    case GprSel::kRd: return "rd";
    case GprSel::kRa31: return "r31";
  }
  return "?";
}

std::string guard_prefix(const Uop& op) {
  switch (op.guard) {
    case GuardKind::kAlways: return "";
    case GuardKind::kIfZero: return "[" + temp_name(op.guard_tmp) + "==0]";
    case GuardKind::kIfNonZero: return "[" + temp_name(op.guard_tmp) + "!=0]";
  }
  return "";
}

}  // namespace

std::string to_string(const Uop& op) {
  std::ostringstream out;
  const std::string guard = guard_prefix(op);
  switch (op.kind) {
    case UopKind::kReadSpecial:
      out << temp_name(op.dst) << " = " << special_name(op.special) << ".read();";
      break;
    case UopKind::kWriteSpecial:
      out << "null = " << guard << special_name(op.special) << ".write("
          << temp_name(op.src_a) << ");";
      break;
    case UopKind::kResetSpecial:
      out << "null = " << special_name(op.special) << ".reset();";
      break;
    case UopKind::kReadGpr:
      out << temp_name(op.dst) << " = GPR.read(" << sel_name(op.sel) << ");";
      break;
    case UopKind::kWriteGpr:
      out << "null = GPR.write(" << sel_name(op.sel) << ", " << temp_name(op.src_a) << ");";
      break;
    case UopKind::kImm:
      out << temp_name(op.dst) << " = ";
      switch (op.imm_kind) {
        case ImmKind::kSignedImm: out << "sext(imm);"; break;
        case ImmKind::kZeroImm: out << "zext(imm);"; break;
        case ImmKind::kShamt: out << "shamt;"; break;
        case ImmKind::kBranchTarget: out << "btarget(CPC, imm);"; break;
        case ImmKind::kJumpTarget: out << "jtarget(CPC, instr);"; break;
        case ImmKind::kLinkAddr: out << "link(CPC);"; break;
        case ImmKind::kConst: out << "'" << op.literal << "';"; break;
      }
      break;
    case UopKind::kAlu:
      out << temp_name(op.dst) << " = ALU." << alu_name(op.alu) << "("
          << temp_name(op.src_a);
      if (op.src_b != kNoTemp) out << ", " << temp_name(op.src_b);
      out << ");";
      break;
    case UopKind::kMulDiv:
      out << "<HI,LO> = MDU.ope(" << temp_name(op.src_a) << ", " << temp_name(op.src_b) << ");";
      break;
    case UopKind::kFetchInstr:
      out << temp_name(op.dst) << " = IMAU.read(" << temp_name(op.src_a) << ");";
      break;
    case UopKind::kLoad:
      out << temp_name(op.dst) << " = DMAU.read(" << temp_name(op.src_a) << ");";
      break;
    case UopKind::kStore:
      out << "null = DMAU.write(" << temp_name(op.src_a) << ", " << temp_name(op.src_b) << ");";
      break;
    case UopKind::kSetPc:
      out << "null = " << guard << "CPC.write(" << temp_name(op.src_a) << ");";
      break;
    case UopKind::kHashStep:
      out << temp_name(op.dst) << " = HASHFU.ope(" << temp_name(op.src_a) << ", "
          << temp_name(op.src_b) << ");";
      break;
    case UopKind::kIhtLookup:
      out << "<found,match> = IHTbb.lookup(<" << temp_name(op.src_a) << ","
          << temp_name(op.src_b) << "," << temp_name(op.src_c) << ">);";
      break;
    case UopKind::kRaiseExc:
      out << "exception" << unsigned{op.exc_code} << " = " << guard << "'1';";
      break;
    case UopKind::kSyscall:
      out << "null = OS.syscall();";
      break;
    case UopKind::kIllegal:
      out << "null = TRAP.illegal();";
      break;
  }
  return out.str();
}

std::string dump_stage(const std::vector<Uop>& ops, Stage stage) {
  std::ostringstream out;
  for (const Uop& op : ops) {
    if (op.stage != stage) continue;
    out << to_string(op) << '\n';
  }
  return out.str();
}

}  // namespace cicmon::uop
