#include "uop/interp.h"

#include <limits>

#include "support/error.h"

namespace cicmon::uop {
namespace {

unsigned resolve_gpr(GprSel sel, const isa::Instruction& instr) {
  switch (sel) {
    case GprSel::kRs: return instr.rs;
    case GprSel::kRt: return instr.rt;
    case GprSel::kRd: return instr.rd;
    case GprSel::kRa31: return 31;
  }
  return 0;
}

std::uint32_t materialize(const Uop& op, const ExecContext& ctx) {
  switch (op.imm_kind) {
    case ImmKind::kSignedImm: return static_cast<std::uint32_t>(ctx.instr.simm());
    case ImmKind::kZeroImm: return ctx.instr.uimm();
    case ImmKind::kShamt: return ctx.instr.shamt;
    case ImmKind::kBranchTarget: return ctx.instr.branch_target(ctx.instr_addr);
    case ImmKind::kJumpTarget: return ctx.instr.jump_target(ctx.instr_addr);
    case ImmKind::kLinkAddr: return ctx.instr_addr + 4;
    case ImmKind::kConst: return op.literal;
  }
  return 0;
}

bool guard_passes(const Uop& op, const ExecContext& ctx) {
  switch (op.guard) {
    case GuardKind::kAlways: return true;
    case GuardKind::kIfZero: return ctx.temps[op.guard_tmp] == 0;
    case GuardKind::kIfNonZero: return ctx.temps[op.guard_tmp] != 0;
  }
  return true;
}

}  // namespace

std::uint32_t alu_eval(AluOp op, std::uint32_t a, std::uint32_t b) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (op) {
    case AluOp::kAdd: return a + b;
    case AluOp::kSub: return a - b;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kNor: return ~(a | b);
    case AluOp::kSll: return a << (b & 31U);
    case AluOp::kSrl: return a >> (b & 31U);
    case AluOp::kSra: return static_cast<std::uint32_t>(sa >> (b & 31U));
    case AluOp::kSltSigned: return sa < sb ? 1U : 0U;
    case AluOp::kSltUnsigned: return a < b ? 1U : 0U;
    case AluOp::kCmpEq: return a == b ? 1U : 0U;
    case AluOp::kCmpNe: return a != b ? 1U : 0U;
    case AluOp::kCmpLeZ: return sa <= 0 ? 1U : 0U;
    case AluOp::kCmpGtZ: return sa > 0 ? 1U : 0U;
    case AluOp::kCmpLtZ: return sa < 0 ? 1U : 0U;
    case AluOp::kCmpGeZ: return sa >= 0 ? 1U : 0U;
  }
  return 0;
}

HiLo muldiv_eval(MulDivOp op, std::uint32_t a, std::uint32_t b) {
  HiLo out;
  switch (op) {
    case MulDivOp::kMult: {
      const std::int64_t product = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                                   static_cast<std::int64_t>(static_cast<std::int32_t>(b));
      out.lo = static_cast<std::uint32_t>(product);
      out.hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(product) >> 32);
      break;
    }
    case MulDivOp::kMultu: {
      const std::uint64_t product = static_cast<std::uint64_t>(a) * b;
      out.lo = static_cast<std::uint32_t>(product);
      out.hi = static_cast<std::uint32_t>(product >> 32);
      break;
    }
    case MulDivOp::kDiv: {
      const auto sa = static_cast<std::int32_t>(a);
      const auto sb = static_cast<std::int32_t>(b);
      if (sb == 0) {
        out.lo = 0xFFFF'FFFFU;
        out.hi = a;
      } else if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1) {
        // Overflowing quotient wraps (two's-complement hardware behaviour).
        out.lo = a;
        out.hi = 0;
      } else {
        out.lo = static_cast<std::uint32_t>(sa / sb);
        out.hi = static_cast<std::uint32_t>(sa % sb);
      }
      break;
    }
    case MulDivOp::kDivu: {
      if (b == 0) {
        out.lo = 0xFFFF'FFFFU;
        out.hi = a;
      } else {
        out.lo = a / b;
        out.hi = a % b;
      }
      break;
    }
  }
  return out;
}

void execute_stage(std::span<const Uop> ops, Stage stage, ExecContext& ctx, Datapath& dp) {
  for (const Uop& op : ops) {
    if (op.stage != stage) continue;
    if (!guard_passes(op, ctx)) continue;
    switch (op.kind) {
      case UopKind::kReadSpecial:
        ctx.temps[op.dst] = dp.read_special(op.special);
        break;
      case UopKind::kWriteSpecial:
        dp.write_special(op.special, ctx.temps[op.src_a]);
        break;
      case UopKind::kResetSpecial:
        dp.reset_special(op.special);
        break;
      case UopKind::kReadGpr:
        ctx.temps[op.dst] = dp.read_gpr(resolve_gpr(op.sel, ctx.instr));
        break;
      case UopKind::kWriteGpr:
        dp.write_gpr(resolve_gpr(op.sel, ctx.instr), ctx.temps[op.src_a]);
        break;
      case UopKind::kImm:
        ctx.temps[op.dst] = materialize(op, ctx);
        break;
      case UopKind::kAlu:
        ctx.temps[op.dst] = alu_eval(op.alu, ctx.temps[op.src_a],
                                     op.src_b == kNoTemp ? 0 : ctx.temps[op.src_b]);
        break;
      case UopKind::kMulDiv: {
        const HiLo result = muldiv_eval(op.muldiv, ctx.temps[op.src_a], ctx.temps[op.src_b]);
        dp.write_special(SpecialReg::kHi, result.hi);
        dp.write_special(SpecialReg::kLo, result.lo);
        break;
      }
      case UopKind::kFetchInstr:
        ctx.temps[op.dst] = dp.fetch_instr(ctx.temps[op.src_a]);
        break;
      case UopKind::kLoad:
        ctx.temps[op.dst] = dp.load(ctx.temps[op.src_a], op.width, op.sign_extend);
        break;
      case UopKind::kStore:
        dp.store(ctx.temps[op.src_a], op.width, ctx.temps[op.src_b]);
        break;
      case UopKind::kSetPc:
        dp.set_pc(ctx.temps[op.src_a]);
        break;
      case UopKind::kHashStep:
        ctx.temps[op.dst] = dp.hash_step(ctx.temps[op.src_a], ctx.temps[op.src_b]);
        break;
      case UopKind::kIhtLookup: {
        const IhtLookupResult result =
            dp.iht_lookup(ctx.temps[op.src_a], ctx.temps[op.src_b],
                          ctx.temps[op.literal]);
        ctx.temps[op.dst] = result.found ? 1U : 0U;
        ctx.temps[op.dst2] = result.match ? 1U : 0U;
        break;
      }
      case UopKind::kRaiseExc:
        dp.raise_monitor_exception(op.exc_code);
        break;
      case UopKind::kSyscall:
        dp.syscall();
        break;
      case UopKind::kIllegal:
        dp.illegal_instruction();
        break;
    }
  }
}

}  // namespace cicmon::uop
