#include "uop/interp.h"

namespace cicmon::uop {

void execute_stage(std::span<const Uop> ops, Stage stage, ExecContext& ctx, Datapath& dp) {
  for (const Uop& op : ops) {
    if (op.stage != stage) continue;
    if (!detail::guard_passes(op, ctx)) continue;
    execute_op(op, ctx, dp);
  }
}

}  // namespace cicmon::uop
