// Microoperation model.
//
// The paper's key idea is that monitoring is expressed *below* the ISA, as
// microoperations ("elementary operations performed on data stored in
// datapath registers", §4.1) embedded into the pipeline-stage behaviour of
// machine instructions. This module defines that microoperation language:
//
//  * a common IF-stage program shared by all instructions (Figure 1),
//  * per-mnemonic programs for the ID/EX/MEM/WB stages,
//  * a transform pass (monitor_pass.h) that embeds the Code Integrity
//    Checker microoperations of Figures 3(b) and 4, and
//  * an interpreter (interp.h) the cycle simulator executes through.
//
// Because the simulator runs instruction semantics through these programs,
// adding or removing the monitoring microoperations changes machine behaviour
// exactly the way re-generating the ASIP with/without the CIC would.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/opcodes.h"

namespace cicmon::uop {

// Pipeline stages that can host microoperations. (A 6-stage timing variant
// duplicates EX for timing purposes only; microoperations live in these five.)
enum class Stage : std::uint8_t { kIF, kID, kEX, kMEM, kWB };
inline constexpr unsigned kNumStages = 5;

// Datapath special registers (the paper's CPC, PPC, IReg, STA, RHASH, HI/LO).
enum class SpecialReg : std::uint8_t { kCpc, kPpc, kIReg, kSta, kRhash, kHi, kLo };

// Which instruction field selects a GPR for read/write microoperations.
enum class GprSel : std::uint8_t { kRs, kRt, kRd, kRa31 };

enum class AluOp : std::uint8_t {
  kAdd, kSub, kAnd, kOr, kXor, kNor,
  kSll, kSrl, kSra,
  kSltSigned, kSltUnsigned,
  kCmpEq, kCmpNe,          // two-operand comparisons producing 0/1
  kCmpLeZ, kCmpGtZ, kCmpLtZ, kCmpGeZ,  // one-operand (src_a) comparisons
};

enum class MulDivOp : std::uint8_t { kMult, kMultu, kDiv, kDivu };

// Immediate/value materialization kinds.
enum class ImmKind : std::uint8_t {
  kSignedImm,     // sign-extended 16-bit immediate
  kZeroImm,       // zero-extended 16-bit immediate
  kShamt,         // shift amount field
  kBranchTarget,  // PC + 4 + (simm << 2)
  kJumpTarget,    // region jump target
  kLinkAddr,      // PC + 4 (no delay slots in this pipeline)
  kConst,         // literal from Uop::literal
};

enum class MemWidth : std::uint8_t { kByte, kHalf, kWord };

enum class GuardKind : std::uint8_t { kAlways, kIfZero, kIfNonZero };

enum class UopKind : std::uint8_t {
  kReadSpecial,   // dst <- special
  kWriteSpecial,  // special <- src_a (guarded)
  kResetSpecial,  // special <- 0
  kReadGpr,       // dst <- GPR[sel]
  kWriteGpr,      // GPR[sel] <- src_a
  kImm,           // dst <- materialized value (imm_kind)
  kAlu,           // dst <- alu(src_a, src_b)
  kMulDiv,        // HI/LO <- muldiv(src_a, src_b)
  kFetchInstr,    // dst <- IMAU.read(src_a)
  kLoad,          // dst <- DMAU.read(src_a)   (width, sign_extend)
  kStore,         // DMAU.write(src_a, src_b)  (width)
  kSetPc,         // CPC <- src_a (control transfer; guarded for branches)
  kHashStep,      // dst <- HASHFU.ope(src_a, src_b)          [monitoring]
  kIhtLookup,     // (dst=found, dst2=match) <- IHTbb.lookup   [monitoring]
  kRaiseExc,      // monitor exception `exc_code` (guarded)    [monitoring]
  kSyscall,       // OS service request
  kIllegal,       // illegal-opcode trap
};

inline constexpr std::uint8_t kNoTemp = 0xFF;

// Size of the per-instruction temporary file (ExecContext::temps). The
// validation pass guarantees every temp operand is below this bound and
// written before it is read, so the interpreter never range-checks.
inline constexpr unsigned kMaxTemps = 32;

// One microoperation. Operands reference per-instruction temporaries, which
// model the values travelling through pipeline latches.
struct Uop {
  UopKind kind{};
  Stage stage = Stage::kIF;
  std::uint8_t dst = kNoTemp;
  std::uint8_t dst2 = kNoTemp;   // second result (IHT lookup: match)
  std::uint8_t src_a = kNoTemp;
  std::uint8_t src_b = kNoTemp;
  std::uint8_t src_c = kNoTemp;  // third operand (IHT lookup: hash value)
  SpecialReg special = SpecialReg::kCpc;
  GprSel sel = GprSel::kRs;
  AluOp alu = AluOp::kAdd;
  MulDivOp muldiv = MulDivOp::kMult;
  ImmKind imm_kind = ImmKind::kConst;
  std::uint32_t literal = 0;
  MemWidth width = MemWidth::kWord;
  bool sign_extend = false;
  GuardKind guard = GuardKind::kAlways;
  std::uint8_t guard_tmp = kNoTemp;
  std::uint8_t exc_code = 0;
  bool monitoring = false;       // true for microoperations added by the CIC pass
};

// Per-mnemonic microoperation program covering ID..WB (IF is shared).
//
// The ops vector is stage-sliced at build time: finalize_program() stable-
// sorts it by stage and records the slice boundaries, so the pipeline pulls
// each stage as one contiguous span instead of rescanning the whole program
// with a per-op stage filter five times per dynamic instruction.
struct InstrUops {
  std::vector<Uop> ops;          // stage-sorted; order within a stage preserved
  // ops[stage_begin[s] .. stage_begin[s+1]) is the Stage(s) slice.
  std::array<std::uint8_t, kNumStages + 1> stage_begin{};
  std::uint8_t num_temps = 0;    // temporaries used (shared namespace with IF)

  std::span<const Uop> stage(Stage s) const {
    const auto i = static_cast<std::size_t>(s);
    return {ops.data() + stage_begin[i],
            static_cast<std::size_t>(stage_begin[i + 1] - stage_begin[i])};
  }
};

// Complete microoperation specification of the ISA.
struct IsaUopSpec {
  std::vector<Uop> fetch;        // common IF program (Figure 1; Figure 3(b) when monitored)
  std::uint8_t fetch_temps = 0;  // temporaries consumed by the fetch program
  std::vector<InstrUops> per_instr;  // indexed by Mnemonic value
  bool monitoring_embedded = false;

  const InstrUops& program(isa::Mnemonic m) const {
    return per_instr[static_cast<std::size_t>(m)];
  }
};

// Builds the canonical (un-monitored) microoperation specification. The
// result is stage-sliced and validated.
IsaUopSpec build_isa_uops();

// Stage-slices `prog` (stable sort by stage + slice offsets) and recomputes
// num_temps from the highest temp index any op references. Must be re-run
// after inserting or removing ops (the monitoring pass does).
void finalize_program(InstrUops* prog);

// Rejects malformed microoperation programs with a CicError: temp operands
// out of the kMaxTemps file, required operands missing (e.g. a guard without
// guard_tmp), stage slices inconsistent with op tags, and temps read before
// any earlier microoperation of the same dynamic instruction (IF program
// first, then the per-instruction stages) has written them. The last rule is
// what lets the interpreter reuse one temp file across instructions without
// zero-filling it per instruction.
void validate_spec(const IsaUopSpec& spec);

// Renders a microoperation in the paper's notation, e.g.
//   "null = [start==0]STA.write(current_pc);"
std::string to_string(const Uop& op);

// Renders a whole stage program, one microoperation per line.
std::string dump_stage(const std::vector<Uop>& ops, Stage stage);

}  // namespace cicmon::uop
