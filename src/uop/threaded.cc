// Structural matchers binding fused handlers to canonical microoperation
// programs. Each matcher checks the exact sequence uop_build.cc emits —
// kinds, stages, temp numbers (instruction temps start at 8), operand
// selectors, and guards — because the fused handler re-implements precisely
// those effects. Matching against a freshly built spec would be vacuous;
// these encode the semantics independently.
#include "uop/threaded.h"

#include "uop/monitor_pass.h"

namespace cicmon::uop {
namespace {

constexpr std::uint8_t kT0 = 8;  // kInstrTempBase: first per-instruction temp
constexpr std::uint8_t kT1 = 9;
constexpr std::uint8_t kT2 = 10;
constexpr std::uint8_t kT3 = 11;

bool plain(const Uop& op, UopKind kind, Stage stage) {
  return op.kind == kind && op.stage == stage && op.guard == GuardKind::kAlways;
}

bool read_gpr(const Uop& op, Stage stage, std::uint8_t dst) {
  return plain(op, UopKind::kReadGpr, stage) && op.dst == dst;
}

bool imm(const Uop& op, Stage stage, ImmKind kind, std::uint8_t dst) {
  return plain(op, UopKind::kImm, stage) && op.imm_kind == kind && op.dst == dst;
}

bool alu2(const Uop& op, Stage stage, std::uint8_t a, std::uint8_t b, std::uint8_t dst) {
  return plain(op, UopKind::kAlu, stage) && op.src_a == a && op.src_b == b && op.dst == dst;
}

bool write_gpr(const Uop& op, Stage stage, GprSel sel, std::uint8_t src) {
  return plain(op, UopKind::kWriteGpr, stage) && op.sel == sel && op.src_a == src;
}

bool read_special(const Uop& op, Stage stage, SpecialReg special, std::uint8_t dst) {
  return plain(op, UopKind::kReadSpecial, stage) && op.special == special && op.dst == dst;
}

// The shapes below mirror the builders in uop_build.cc one-for-one. Every
// matcher consumes the whole span (size checked first), so a program with
// extra or missing microoperations can never bind a fused handler.

bool match_alu_rr(std::span<const Uop> t, FusedOp* out) {
  // ID: a = GPR.read(A); b = GPR.read(B); EX: r = alu(a, b); WB: GPR[rd] = r.
  // Covers alu_rrr (A=rs, B=rt) and shift_var (A=rt, B=rs — operand order is
  // part of the semantics: sllv shifts rt by rs).
  if (t.size() != 4) return false;
  if (!read_gpr(t[0], Stage::kID, kT0) || !read_gpr(t[1], Stage::kID, kT1)) return false;
  if (!alu2(t[2], Stage::kEX, kT0, kT1, kT2)) return false;
  if (!write_gpr(t[3], Stage::kWB, GprSel::kRd, kT2)) return false;
  out->kind = FusedKind::kAluRR;
  out->a_sel = t[0].sel;
  out->b_sel = t[1].sel;
  out->alu = t[2].alu;
  out->dst_sel = GprSel::kRd;
  return true;
}

bool match_alu_ri(std::span<const Uop> t, FusedOp* out) {
  // ID: a = GPR.read(A); i = imm; EX: r = alu(a, i); WB: GPR[W] = r.
  // Covers alu_imm (rt <- rs op imm) and shift_imm (rd <- rt op shamt).
  if (t.size() != 4) return false;
  if (!read_gpr(t[0], Stage::kID, kT0)) return false;
  if (t[1].kind != UopKind::kImm || t[1].stage != Stage::kID || t[1].dst != kT1 ||
      t[1].guard != GuardKind::kAlways)
    return false;
  if (t[1].imm_kind != ImmKind::kSignedImm && t[1].imm_kind != ImmKind::kZeroImm &&
      t[1].imm_kind != ImmKind::kShamt)
    return false;
  if (!alu2(t[2], Stage::kEX, kT0, kT1, kT2)) return false;
  if (t[3].kind != UopKind::kWriteGpr || t[3].stage != Stage::kWB || t[3].src_a != kT2 ||
      t[3].guard != GuardKind::kAlways)
    return false;
  out->kind = FusedKind::kAluRI;
  out->a_sel = t[0].sel;
  out->imm_kind = t[1].imm_kind;
  out->alu = t[2].alu;
  out->dst_sel = t[3].sel;
  return true;
}

bool match_lui(std::span<const Uop> t, FusedOp* out) {
  // ID: i = zimm; s = 16; EX: r = sll(i, s); WB: GPR[W] = r. The fused form
  // precomputes uimm << 16, so only the exact const-16 shift may bind.
  if (t.size() != 4) return false;
  if (!imm(t[0], Stage::kID, ImmKind::kZeroImm, kT0)) return false;
  if (!imm(t[1], Stage::kID, ImmKind::kConst, kT1) || t[1].literal != 16) return false;
  if (!alu2(t[2], Stage::kEX, kT0, kT1, kT2) || t[2].alu != AluOp::kSll) return false;
  if (t[3].kind != UopKind::kWriteGpr || t[3].stage != Stage::kWB || t[3].src_a != kT2 ||
      t[3].guard != GuardKind::kAlways)
    return false;
  out->kind = FusedKind::kImmWrite;
  out->dst_sel = t[3].sel;
  return true;
}

bool match_load(std::span<const Uop> t, FusedOp* out) {
  // ID: base, off; EX: addr = base + off; MEM: v = load(addr); WB: GPR[W] = v.
  if (t.size() != 5) return false;
  if (!read_gpr(t[0], Stage::kID, kT0)) return false;
  if (!imm(t[1], Stage::kID, ImmKind::kSignedImm, kT1)) return false;
  if (!alu2(t[2], Stage::kEX, kT0, kT1, kT2) || t[2].alu != AluOp::kAdd) return false;
  if (!plain(t[3], UopKind::kLoad, Stage::kMEM) || t[3].src_a != kT2 || t[3].dst != kT3)
    return false;
  if (t[4].kind != UopKind::kWriteGpr || t[4].stage != Stage::kWB || t[4].src_a != kT3 ||
      t[4].guard != GuardKind::kAlways)
    return false;
  out->kind = FusedKind::kLoad;
  out->a_sel = t[0].sel;
  out->width = t[3].width;
  out->sign_extend = t[3].sign_extend;
  out->dst_sel = t[4].sel;
  return true;
}

bool match_store(std::span<const Uop> t, FusedOp* out) {
  // ID: base, off, value; EX: addr = base + off; MEM: store(addr, value).
  if (t.size() != 5) return false;
  if (!read_gpr(t[0], Stage::kID, kT0)) return false;
  if (!imm(t[1], Stage::kID, ImmKind::kSignedImm, kT1)) return false;
  if (!read_gpr(t[2], Stage::kID, kT2)) return false;
  if (!alu2(t[3], Stage::kEX, kT0, kT1, kT3) || t[3].alu != AluOp::kAdd) return false;
  if (!plain(t[4], UopKind::kStore, Stage::kMEM) || t[4].src_a != kT3 || t[4].src_b != kT2)
    return false;
  out->kind = FusedKind::kStore;
  out->a_sel = t[0].sel;  // address base
  out->b_sel = t[2].sel;  // store data
  out->width = t[4].width;
  return true;
}

bool match_branch2(std::span<const Uop> t, FusedOp* out) {
  // ID: a, b; cond = cmp(a, b); tgt = branch_target; [cond!=0] CPC = tgt.
  if (t.size() != 5) return false;
  if (!read_gpr(t[0], Stage::kID, kT0) || !read_gpr(t[1], Stage::kID, kT1)) return false;
  if (!alu2(t[2], Stage::kID, kT0, kT1, kT2)) return false;
  if (!imm(t[3], Stage::kID, ImmKind::kBranchTarget, kT3)) return false;
  if (t[4].kind != UopKind::kSetPc || t[4].stage != Stage::kID || t[4].src_a != kT3 ||
      t[4].guard != GuardKind::kIfNonZero || t[4].guard_tmp != kT2)
    return false;
  out->kind = FusedKind::kBranch2;
  out->a_sel = t[0].sel;
  out->b_sel = t[1].sel;
  out->alu = t[2].alu;
  return true;
}

bool match_branch1(std::span<const Uop> t, FusedOp* out) {
  // ID: a; cond = cmp(a); tgt = branch_target; [cond!=0] CPC = tgt.
  if (t.size() != 4) return false;
  if (!read_gpr(t[0], Stage::kID, kT0)) return false;
  if (!alu2(t[1], Stage::kID, kT0, kNoTemp, kT1)) return false;
  if (!imm(t[2], Stage::kID, ImmKind::kBranchTarget, kT2)) return false;
  if (t[3].kind != UopKind::kSetPc || t[3].stage != Stage::kID || t[3].src_a != kT2 ||
      t[3].guard != GuardKind::kIfNonZero || t[3].guard_tmp != kT1)
    return false;
  out->kind = FusedKind::kBranch1;
  out->a_sel = t[0].sel;
  out->alu = t[1].alu;
  return true;
}

bool match_jump(std::span<const Uop> t, FusedOp* out) {
  // j:   ID: tgt = jump_target; CPC = tgt.
  // jal: ID: tgt; link = PC+4; CPC = tgt; WB: GPR[ra] = link.
  if (t.size() == 2) {
    if (!imm(t[0], Stage::kID, ImmKind::kJumpTarget, kT0)) return false;
    if (!plain(t[1], UopKind::kSetPc, Stage::kID) || t[1].src_a != kT0) return false;
    out->kind = FusedKind::kJump;
    out->link = false;
    return true;
  }
  if (t.size() == 4) {
    if (!imm(t[0], Stage::kID, ImmKind::kJumpTarget, kT0)) return false;
    if (!imm(t[1], Stage::kID, ImmKind::kLinkAddr, kT1)) return false;
    if (!plain(t[2], UopKind::kSetPc, Stage::kID) || t[2].src_a != kT0) return false;
    if (!write_gpr(t[3], Stage::kWB, GprSel::kRa31, kT1)) return false;
    out->kind = FusedKind::kJump;
    out->link = true;
    out->dst_sel = GprSel::kRa31;
    return true;
  }
  return false;
}

bool match_jump_reg(std::span<const Uop> t, FusedOp* out) {
  // jr:   ID: tgt = GPR.read(rs); CPC = tgt.
  // jalr: ID: tgt; link = PC+4; CPC = tgt; WB: GPR[rd] = link. The target is
  // read before the link write, so `jalr $r, $r` keeps the old value.
  if (t.size() == 2) {
    if (!read_gpr(t[0], Stage::kID, kT0)) return false;
    if (!plain(t[1], UopKind::kSetPc, Stage::kID) || t[1].src_a != kT0) return false;
    out->kind = FusedKind::kJumpReg;
    out->a_sel = t[0].sel;
    out->link = false;
    return true;
  }
  if (t.size() == 4) {
    if (!read_gpr(t[0], Stage::kID, kT0)) return false;
    if (!imm(t[1], Stage::kID, ImmKind::kLinkAddr, kT1)) return false;
    if (!plain(t[2], UopKind::kSetPc, Stage::kID) || t[2].src_a != kT0) return false;
    if (t[3].kind != UopKind::kWriteGpr || t[3].stage != Stage::kWB || t[3].src_a != kT1 ||
        t[3].guard != GuardKind::kAlways)
      return false;
    out->kind = FusedKind::kJumpReg;
    out->a_sel = t[0].sel;
    out->link = true;
    out->dst_sel = t[3].sel;
    return true;
  }
  return false;
}

bool match_muldiv(std::span<const Uop> t, FusedOp* out) {
  // ID: a, b; EX: HI/LO = muldiv(a, b).
  if (t.size() != 3) return false;
  if (!read_gpr(t[0], Stage::kID, kT0) || !read_gpr(t[1], Stage::kID, kT1)) return false;
  if (!plain(t[2], UopKind::kMulDiv, Stage::kEX) || t[2].src_a != kT0 || t[2].src_b != kT1)
    return false;
  out->kind = FusedKind::kMulDiv;
  out->a_sel = t[0].sel;
  out->b_sel = t[1].sel;
  out->muldiv = t[2].muldiv;
  return true;
}

bool match_hilo_read(std::span<const Uop> t, FusedOp* out) {
  // EX: v = HI/LO.read(); WB: GPR[rd] = v.
  if (t.size() != 2) return false;
  if (!read_special(t[0], Stage::kEX, t[0].special, kT0)) return false;
  if (t[0].special != SpecialReg::kHi && t[0].special != SpecialReg::kLo) return false;
  if (!write_gpr(t[1], Stage::kWB, GprSel::kRd, kT0)) return false;
  out->kind = FusedKind::kHiLoRead;
  out->hilo = t[0].special;
  out->dst_sel = GprSel::kRd;
  return true;
}

bool match_hilo_write(std::span<const Uop> t, FusedOp* out) {
  // ID: v = GPR.read(rs); EX: HI/LO.write(v).
  if (t.size() != 2) return false;
  if (!read_gpr(t[0], Stage::kID, kT0)) return false;
  if (!plain(t[1], UopKind::kWriteSpecial, Stage::kEX) || t[1].src_a != kT0) return false;
  if (t[1].special != SpecialReg::kHi && t[1].special != SpecialReg::kLo) return false;
  out->kind = FusedKind::kHiLoWrite;
  out->a_sel = t[0].sel;
  out->hilo = t[1].special;
  return true;
}

bool match_syscall(std::span<const Uop> t, FusedOp* out) {
  if (t.size() != 1 || !plain(t[0], UopKind::kSyscall, Stage::kEX)) return false;
  out->kind = FusedKind::kSyscall;
  return true;
}

bool match_illegal(std::span<const Uop> t, FusedOp* out) {
  if (t.size() != 1 || !plain(t[0], UopKind::kIllegal, Stage::kID)) return false;
  out->kind = FusedKind::kIllegal;
  return true;
}

}  // namespace

bool is_monitor_head(std::span<const Uop> ops) {
  using MT = MonitorTemps;
  if (ops.size() != 11) return false;
  if (!read_special(ops[0], Stage::kID, SpecialReg::kSta, MT::kStartId)) return false;
  if (!read_special(ops[1], Stage::kID, SpecialReg::kPpc, MT::kEnd)) return false;
  if (!read_special(ops[2], Stage::kID, SpecialReg::kRhash, MT::kHashV)) return false;
  const Uop& lk = ops[3];
  if (!plain(lk, UopKind::kIhtLookup, Stage::kID) || lk.dst != MT::kFound ||
      lk.dst2 != MT::kMatch || lk.src_a != MT::kStartId || lk.src_b != MT::kEnd ||
      lk.src_c != MT::kHashV)
    return false;
  const Uop& miss = ops[4];
  if (miss.kind != UopKind::kRaiseExc || miss.stage != Stage::kID ||
      miss.exc_code != kExcHashMiss || miss.guard != GuardKind::kIfZero ||
      miss.guard_tmp != MT::kFound)
    return false;
  if (!imm(ops[5], Stage::kID, ImmKind::kConst, MT::kZero) || ops[5].literal != 0) return false;
  if (!alu2(ops[6], Stage::kID, MT::kMatch, MT::kZero, MT::kMatchIsZero) ||
      ops[6].alu != AluOp::kCmpEq)
    return false;
  if (!alu2(ops[7], Stage::kID, MT::kFound, MT::kMatchIsZero, MT::kMismatch) ||
      ops[7].alu != AluOp::kAnd)
    return false;
  const Uop& mm = ops[8];
  if (mm.kind != UopKind::kRaiseExc || mm.stage != Stage::kID ||
      mm.exc_code != kExcHashMismatch || mm.guard != GuardKind::kIfNonZero ||
      mm.guard_tmp != MT::kMismatch)
    return false;
  if (!plain(ops[9], UopKind::kResetSpecial, Stage::kID) || ops[9].special != SpecialReg::kSta)
    return false;
  if (!plain(ops[10], UopKind::kResetSpecial, Stage::kID) ||
      ops[10].special != SpecialReg::kRhash)
    return false;
  return true;
}

FusedOp classify_program(const InstrUops& prog, isa::InstrClass cls,
                         bool monitoring_embedded) {
  FusedOp out;  // defaults to kGeneric
  std::span<const Uop> tail(prog.ops);

  // A monitored flow-control program must carry the Figure-4 head ahead of
  // its own ID operations (the stable stage sort of the embedding pass keeps
  // it there); the fused flow handlers re-create its effects, so a missing
  // or reshaped head demotes the program to the interpreter.
  if (isa::is_flow_control(cls)) {
    if (monitoring_embedded) {
      if (tail.size() < 11 || !is_monitor_head(tail.subspan(0, 11))) return out;
      tail = tail.subspan(11);
    }
    FusedOp flow;
    if (match_branch2(tail, &flow) || match_branch1(tail, &flow) ||
        match_jump(tail, &flow) || match_jump_reg(tail, &flow)) {
      return flow;
    }
    return out;
  }

  // Non-flow programs never carry monitoring microoperations; a shape that
  // contains any will simply fail every matcher below.
  FusedOp fused;
  if (match_alu_rr(tail, &fused) || match_alu_ri(tail, &fused) || match_lui(tail, &fused) ||
      match_load(tail, &fused) || match_store(tail, &fused) || match_muldiv(tail, &fused) ||
      match_hilo_read(tail, &fused) || match_hilo_write(tail, &fused) ||
      match_syscall(tail, &fused) || match_illegal(tail, &fused)) {
    return fused;
  }
  return out;
}

FusedTable build_fused_table(const IsaUopSpec& spec) {
  FusedTable table;
  for (std::size_t m = 0; m < table.size(); ++m) {
    const auto mnemonic = static_cast<isa::Mnemonic>(m);
    table[m] = classify_program(spec.program(mnemonic), isa::info(mnemonic).cls,
                                spec.monitoring_embedded);
  }
  return table;
}

}  // namespace cicmon::uop
