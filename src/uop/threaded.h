// Fused superinstruction classification for the threaded execution engine.
//
// The predecode engine (PR 2) removed the per-instruction decode; every
// microoperation still round-trips through the central dispatch switch of
// execute_ops<DP>. The threaded engine collapses each instruction's whole
// stage-sliced program into one fused handler — but only after *structurally
// verifying* that the program matches the canonical builder shape the handler
// implements (exact microoperation sequence, temp numbers, guards, stages,
// plus the Figure-4 monitoring head for flow control when the CIC pass is
// embedded). The uop spec stays the source of truth for machine behaviour:
// any program this classifier does not recognise — a mutated spec, a future
// instruction with a new shape — executes through the interpreter (kGeneric),
// never through a handler whose semantics were not proven to match.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "isa/opcodes.h"
#include "uop/uop.h"

namespace cicmon::uop {

// One handler per shape, not per mnemonic: the canonical builders of
// uop_build.cc produce a handful of shapes parameterized by ALU op, operand
// selectors, and widths, and the fused handlers carry those parameters.
//
// The enumerator order is load-bearing: the threaded engine's dispatch tables
// (computed-goto labels and the devirtualized handler table) are indexed by
// this value.
enum class FusedKind : std::uint8_t {
  kAluRR,      // GPR[dst] <- alu(GPR[a], GPR[b])        (alu_rrr, shift_var)
  kAluRI,      // GPR[dst] <- alu(GPR[a], imm)           (alu_imm, shift_imm)
  kImmWrite,   // GPR[dst] <- imm                        (lui)
  kLoad,       // GPR[dst] <- mem[GPR[a] + off]
  kStore,      // mem[GPR[a] + off] <- GPR[b]
  kMulDiv,     // HI/LO <- muldiv(GPR[a], GPR[b])
  kHiLoRead,   // GPR[dst] <- HI or LO
  kHiLoWrite,  // HI or LO <- GPR[a]
  kBranch2,    // if alu(GPR[a], GPR[b]) then CPC <- target
  kBranch1,    // if alu(GPR[a]) then CPC <- target
  kJump,       // CPC <- target [, GPR[dst] <- link]
  kJumpReg,    // CPC <- GPR[a] [, GPR[dst] <- link]
  kSyscall,
  kIllegal,
  kGeneric,    // unmatched shape: full interpreter fallback
};
inline constexpr unsigned kNumFusedKinds = 15;

// Kinds that end a translated block. Flow control ends the basic block (the
// paper's check-region boundary); syscall/illegal/generic can terminate the
// run or redirect the PC, so the engine returns to the block loop after them.
inline constexpr bool is_block_terminator(FusedKind kind) {
  switch (kind) {
    case FusedKind::kBranch2:
    case FusedKind::kBranch1:
    case FusedKind::kJump:
    case FusedKind::kJumpReg:
    case FusedKind::kSyscall:
    case FusedKind::kIllegal:
    case FusedKind::kGeneric:
      return true;
    case FusedKind::kAluRR:
    case FusedKind::kAluRI:
    case FusedKind::kImmWrite:
    case FusedKind::kLoad:
    case FusedKind::kStore:
    case FusedKind::kMulDiv:
    case FusedKind::kHiLoRead:
    case FusedKind::kHiLoWrite:
      return false;
  }
  return true;
}

// Per-mnemonic classification result: the shape plus the parameters the
// fused handler needs. Operand selectors are kept symbolic (GprSel) — the
// translator resolves them against each decoded word.
struct FusedOp {
  FusedKind kind = FusedKind::kGeneric;
  AluOp alu = AluOp::kAdd;
  MulDivOp muldiv = MulDivOp::kMult;
  ImmKind imm_kind = ImmKind::kConst;  // kAluRI immediate source
  MemWidth width = MemWidth::kWord;
  bool sign_extend = false;
  bool link = false;                   // jal / jalr write a link register
  SpecialReg hilo = SpecialReg::kHi;   // kHiLoRead / kHiLoWrite
  GprSel a_sel = GprSel::kRs;
  GprSel b_sel = GprSel::kRt;
  GprSel dst_sel = GprSel::kRd;
};

using FusedTable =
    std::array<FusedOp, static_cast<std::size_t>(isa::Mnemonic::kInvalid) + 1>;

// True if `ops` is exactly the Figure-4 monitoring head the CIC pass prepends
// to flow-control ID programs (eleven microoperations: the three special
// reads, the IHT lookup, both guarded exceptions, and the STA/RHASH resets).
bool is_monitor_head(std::span<const Uop> ops);

// Structurally matches `prog` against the canonical shapes. `cls` supplies
// the flow-control property: when `monitoring_embedded` is set, flow-control
// programs must carry the verified monitoring head ahead of their own ID
// operations, and the fused handler re-creates its effects; any other
// divergence from the canonical shape yields kGeneric.
FusedOp classify_program(const InstrUops& prog, isa::InstrClass cls,
                         bool monitoring_embedded);

// Classifies every mnemonic of `spec` (including kInvalid, whose illegal-trap
// program terminates blocks).
FusedTable build_fused_table(const IsaUopSpec& spec);

}  // namespace cicmon::uop
