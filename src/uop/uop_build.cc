// Canonical microoperation programs for every instruction in the ISA.
//
// Temporary-slot convention (per dynamic instruction):
//   0..3   fetch program (current_pc, instr, const4, next_pc)
//   4..7   reserved for the IF-stage monitoring extension (Figure 3(b))
//   8..15  per-instruction ID/EX/MEM/WB temporaries
//   16..23 reserved for the ID-stage monitoring extension (Figure 4)
#include "uop/uop.h"

#include <algorithm>
#include <string>

#include "support/error.h"

namespace cicmon::uop {

namespace {

using isa::Mnemonic;

// Temp-slot names used by the canonical fetch program.
constexpr std::uint8_t kTmpCurrentPc = 0;
constexpr std::uint8_t kTmpInstr = 1;
constexpr std::uint8_t kTmpConst4 = 2;
constexpr std::uint8_t kTmpNextPc = 3;
constexpr std::uint8_t kInstrTempBase = 8;

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Stage stage) : stage_(stage) {}

  void set_stage(Stage stage) { stage_ = stage; }

  std::uint8_t temp() {
    support::check(next_temp_ < 16, "per-instruction temp budget exceeded");
    return next_temp_++;
  }

  Uop& push(UopKind kind) {
    Uop op;
    op.kind = kind;
    op.stage = stage_;
    ops_.push_back(op);
    return ops_.back();
  }

  std::uint8_t read_gpr(GprSel sel) {
    const std::uint8_t t = temp();
    Uop& op = push(UopKind::kReadGpr);
    op.dst = t;
    op.sel = sel;
    return t;
  }

  std::uint8_t imm(ImmKind kind, std::uint32_t literal = 0) {
    const std::uint8_t t = temp();
    Uop& op = push(UopKind::kImm);
    op.dst = t;
    op.imm_kind = kind;
    op.literal = literal;
    return t;
  }

  std::uint8_t alu(AluOp a, std::uint8_t lhs, std::uint8_t rhs = kNoTemp) {
    const std::uint8_t t = temp();
    Uop& op = push(UopKind::kAlu);
    op.dst = t;
    op.alu = a;
    op.src_a = lhs;
    op.src_b = rhs;
    return t;
  }

  void write_gpr(GprSel sel, std::uint8_t src) {
    Uop& op = push(UopKind::kWriteGpr);
    op.sel = sel;
    op.src_a = src;
  }

  void set_pc(std::uint8_t target, GuardKind guard = GuardKind::kAlways,
              std::uint8_t guard_tmp = kNoTemp) {
    Uop& op = push(UopKind::kSetPc);
    op.src_a = target;
    op.guard = guard;
    op.guard_tmp = guard_tmp;
  }

  InstrUops finish() {
    InstrUops out;
    out.ops = std::move(ops_);
    finalize_program(&out);
    return out;
  }

 private:
  Stage stage_;
  std::vector<Uop> ops_;
  std::uint8_t next_temp_ = kInstrTempBase;
};

// R-type three-register ALU op: ID reads, EX computes, WB writes rd.
InstrUops alu_rrr(AluOp op) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto c = b.read_gpr(GprSel::kRt);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, a, c);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, r);
  return b.finish();
}

// Immediate-shift: sll/srl/sra rd, rt, shamt.
InstrUops shift_imm(AluOp op) {
  ProgramBuilder b(Stage::kID);
  const auto v = b.read_gpr(GprSel::kRt);
  const auto s = b.imm(ImmKind::kShamt);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, v, s);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, r);
  return b.finish();
}

// Variable shift: sllv/srlv/srav rd, rt, rs.
InstrUops shift_var(AluOp op) {
  ProgramBuilder b(Stage::kID);
  const auto v = b.read_gpr(GprSel::kRt);
  const auto s = b.read_gpr(GprSel::kRs);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, v, s);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, r);
  return b.finish();
}

// I-type ALU op: addi/slti/andi/... rt, rs, imm.
InstrUops alu_imm(AluOp op, ImmKind imm_kind) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto i = b.imm(imm_kind);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, a, i);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRt, r);
  return b.finish();
}

InstrUops lui_program() {
  ProgramBuilder b(Stage::kID);
  const auto i = b.imm(ImmKind::kZeroImm);
  const auto s = b.imm(ImmKind::kConst, 16);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(AluOp::kSll, i, s);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRt, r);
  return b.finish();
}

InstrUops load_program(MemWidth width, bool sign) {
  ProgramBuilder b(Stage::kID);
  const auto base = b.read_gpr(GprSel::kRs);
  const auto off = b.imm(ImmKind::kSignedImm);
  b.set_stage(Stage::kEX);
  const auto addr = b.alu(AluOp::kAdd, base, off);
  b.set_stage(Stage::kMEM);
  const auto val = b.temp();
  {
    Uop& op = b.push(UopKind::kLoad);
    op.dst = val;
    op.src_a = addr;
    op.width = width;
    op.sign_extend = sign;
  }
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRt, val);
  return b.finish();
}

InstrUops store_program(MemWidth width) {
  ProgramBuilder b(Stage::kID);
  const auto base = b.read_gpr(GprSel::kRs);
  const auto off = b.imm(ImmKind::kSignedImm);
  const auto val = b.read_gpr(GprSel::kRt);
  b.set_stage(Stage::kEX);
  const auto addr = b.alu(AluOp::kAdd, base, off);
  b.set_stage(Stage::kMEM);
  {
    Uop& op = b.push(UopKind::kStore);
    op.src_a = addr;
    op.src_b = val;
    op.width = width;
  }
  return b.finish();
}

// Two-operand conditional branch (beq/bne). Resolved in ID, matching the
// paper's placement of end-of-basic-block processing in the ID stage.
InstrUops branch2(AluOp cmp) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto c = b.read_gpr(GprSel::kRt);
  const auto cond = b.alu(cmp, a, c);
  const auto tgt = b.imm(ImmKind::kBranchTarget);
  b.set_pc(tgt, GuardKind::kIfNonZero, cond);
  return b.finish();
}

// One-operand conditional branch (blez/bgtz/bltz/bgez).
InstrUops branch1(AluOp cmp) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto cond = b.alu(cmp, a);
  const auto tgt = b.imm(ImmKind::kBranchTarget);
  b.set_pc(tgt, GuardKind::kIfNonZero, cond);
  return b.finish();
}

InstrUops jump_program(bool link) {
  ProgramBuilder b(Stage::kID);
  const auto tgt = b.imm(ImmKind::kJumpTarget);
  std::uint8_t ret = kNoTemp;
  if (link) ret = b.imm(ImmKind::kLinkAddr);
  b.set_pc(tgt);
  if (link) {
    b.set_stage(Stage::kWB);
    b.write_gpr(GprSel::kRa31, ret);
  }
  return b.finish();
}

InstrUops jump_reg_program(bool link) {
  // Figure 4's tail: "target = GPR.read(rs); null = CPC.write(target)".
  ProgramBuilder b(Stage::kID);
  const auto tgt = b.read_gpr(GprSel::kRs);
  std::uint8_t ret = kNoTemp;
  if (link) ret = b.imm(ImmKind::kLinkAddr);
  b.set_pc(tgt);
  if (link) {
    b.set_stage(Stage::kWB);
    b.write_gpr(GprSel::kRd, ret);
  }
  return b.finish();
}

InstrUops muldiv_program(MulDivOp op) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto c = b.read_gpr(GprSel::kRt);
  b.set_stage(Stage::kEX);
  Uop& md = b.push(UopKind::kMulDiv);
  md.muldiv = op;
  md.src_a = a;
  md.src_b = c;
  return b.finish();
}

InstrUops hilo_read(SpecialReg which) {
  ProgramBuilder b(Stage::kEX);
  const auto t = b.temp();
  Uop& rd = b.push(UopKind::kReadSpecial);
  rd.dst = t;
  rd.special = which;
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, t);
  return b.finish();
}

InstrUops hilo_write(SpecialReg which) {
  ProgramBuilder b(Stage::kID);
  const auto t = b.read_gpr(GprSel::kRs);
  b.set_stage(Stage::kEX);
  Uop& wr = b.push(UopKind::kWriteSpecial);
  wr.special = which;
  wr.src_a = t;
  return b.finish();
}

InstrUops simple(UopKind kind, Stage stage) {
  ProgramBuilder b(stage);
  b.push(kind);
  return b.finish();
}

// --- Stage slicing and build-time validation -------------------------------

// Temps an op reads (kNoTemp entries are "no operand"). src_b of kAlu is
// genuinely optional (one-operand comparisons); everything else listed here
// is required and checked by validate_spec.
struct OperandUse {
  std::uint8_t reads[4] = {kNoTemp, kNoTemp, kNoTemp, kNoTemp};
  std::uint8_t writes[2] = {kNoTemp, kNoTemp};
  bool src_b_optional = false;
};

OperandUse operand_use(const Uop& op) {
  OperandUse use;
  switch (op.kind) {
    case UopKind::kReadSpecial:
    case UopKind::kReadGpr:
      use.writes[0] = op.dst;
      break;
    case UopKind::kImm:
      use.writes[0] = op.dst;
      break;
    case UopKind::kWriteSpecial:
    case UopKind::kWriteGpr:
    case UopKind::kSetPc:
      use.reads[0] = op.src_a;
      break;
    case UopKind::kAlu:
      use.reads[0] = op.src_a;
      use.reads[1] = op.src_b;
      use.writes[0] = op.dst;
      use.src_b_optional = true;
      break;
    case UopKind::kMulDiv:
    case UopKind::kStore:
      use.reads[0] = op.src_a;
      use.reads[1] = op.src_b;
      break;
    case UopKind::kFetchInstr:
    case UopKind::kLoad:
      use.reads[0] = op.src_a;
      use.writes[0] = op.dst;
      break;
    case UopKind::kHashStep:
      use.reads[0] = op.src_a;
      use.reads[1] = op.src_b;
      use.writes[0] = op.dst;
      break;
    case UopKind::kIhtLookup:
      use.reads[0] = op.src_a;
      use.reads[1] = op.src_b;
      use.reads[2] = op.src_c;
      use.writes[0] = op.dst;
      use.writes[1] = op.dst2;
      break;
    case UopKind::kResetSpecial:
    case UopKind::kRaiseExc:
    case UopKind::kSyscall:
    case UopKind::kIllegal:
      break;
  }
  if (op.guard != GuardKind::kAlways) use.reads[3] = op.guard_tmp;
  return use;
}

std::uint8_t max_temp_plus_one(const Uop& op) {
  std::uint8_t highest = 0;
  for (const std::uint8_t t :
       {op.dst, op.dst2, op.src_a, op.src_b, op.src_c, op.guard_tmp}) {
    if (t != kNoTemp) highest = std::max<std::uint8_t>(highest, t + 1);
  }
  return highest;
}

// Bounds and def-before-use checks over one program, updating the running
// set of defined temps (`defined` is a bitmask over the kMaxTemps file).
void validate_ops(std::span<const Uop> ops, std::uint32_t* defined, const std::string& where) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Uop& op = ops[i];
    const std::string at = where + " op " + std::to_string(i);
    support::check(op.guard == GuardKind::kAlways || op.guard_tmp != kNoTemp,
                   at + ": guarded microoperation without guard_tmp");
    const OperandUse use = operand_use(op);
    for (const std::uint8_t t : use.reads) {
      if (t == kNoTemp) continue;
      support::check(t < kMaxTemps, at + ": source temp index out of range");
      support::check((*defined >> t) & 1U, at + ": temp read before written");
    }
    for (const std::uint8_t t : use.writes) {
      if (t == kNoTemp) continue;
      support::check(t < kMaxTemps, at + ": destination temp index out of range");
      // A guard-skipped write leaves the temp holding whatever the previous
      // dynamic instruction left there (the temp file is not re-zeroed), so
      // only unconditional writes may satisfy later reads.
      if (op.guard == GuardKind::kAlways) *defined |= 1U << t;
    }
  }
}

// Required-operand check separated from the def-before-use walk so the error
// messages stay precise.
void validate_required(std::span<const Uop> ops, const std::string& where) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Uop& op = ops[i];
    const std::string at = where + " op " + std::to_string(i);
    switch (op.kind) {
      case UopKind::kReadSpecial:
      case UopKind::kReadGpr:
      case UopKind::kImm:
        support::check(op.dst != kNoTemp, at + ": missing destination temp");
        break;
      case UopKind::kWriteSpecial:
      case UopKind::kWriteGpr:
      case UopKind::kSetPc:
        support::check(op.src_a != kNoTemp, at + ": missing src_a");
        break;
      case UopKind::kAlu:
      case UopKind::kFetchInstr:
      case UopKind::kLoad:
        support::check(op.dst != kNoTemp, at + ": missing destination temp");
        support::check(op.src_a != kNoTemp, at + ": missing src_a");
        break;
      case UopKind::kMulDiv:
      case UopKind::kStore:
        support::check(op.src_a != kNoTemp && op.src_b != kNoTemp,
                       at + ": missing src_a/src_b");
        break;
      case UopKind::kHashStep:
        support::check(op.dst != kNoTemp, at + ": missing destination temp");
        support::check(op.src_a != kNoTemp && op.src_b != kNoTemp,
                       at + ": missing src_a/src_b");
        break;
      case UopKind::kIhtLookup:
        support::check(op.src_a != kNoTemp && op.src_b != kNoTemp && op.src_c != kNoTemp,
                       at + ": IHT lookup needs src_a/src_b/src_c");
        support::check(op.dst != kNoTemp && op.dst2 != kNoTemp,
                       at + ": IHT lookup needs dst and dst2");
        break;
      case UopKind::kResetSpecial:
      case UopKind::kRaiseExc:
      case UopKind::kSyscall:
      case UopKind::kIllegal:
        break;
    }
  }
}

}  // namespace

void finalize_program(InstrUops* prog) {
  support::check(prog != nullptr, "finalize_program: null program");
  support::check(prog->ops.size() <= 0xFF, "finalize_program: program too long");
  std::stable_sort(prog->ops.begin(), prog->ops.end(), [](const Uop& a, const Uop& b) {
    return static_cast<unsigned>(a.stage) < static_cast<unsigned>(b.stage);
  });
  std::size_t next = 0;
  std::uint8_t num_temps = 0;
  for (unsigned s = 0; s < kNumStages; ++s) {
    prog->stage_begin[s] = static_cast<std::uint8_t>(next);
    while (next < prog->ops.size() &&
           static_cast<unsigned>(prog->ops[next].stage) == s) {
      num_temps = std::max(num_temps, max_temp_plus_one(prog->ops[next]));
      ++next;
    }
  }
  prog->stage_begin[kNumStages] = static_cast<std::uint8_t>(next);
  prog->num_temps = num_temps;
}

void validate_spec(const IsaUopSpec& spec) {
  // Fetch program: IF-only, defines its temps from scratch.
  std::uint32_t fetch_defined = 0;
  for (const Uop& op : spec.fetch) {
    support::check(op.stage == Stage::kIF, "fetch program: non-IF microoperation");
  }
  validate_required(spec.fetch, "fetch");
  validate_ops(spec.fetch, &fetch_defined, "fetch");

  for (std::size_t m = 0; m < spec.per_instr.size(); ++m) {
    const InstrUops& prog = spec.per_instr[m];
    const std::string name(isa::info(static_cast<isa::Mnemonic>(m)).name);
    // Slice offsets must partition the stage-sorted ops vector.
    support::check(prog.stage_begin[0] == 0 &&
                       prog.stage_begin[kNumStages] == prog.ops.size(),
                   name + ": stage slices do not cover the program");
    for (unsigned s = 0; s < kNumStages; ++s) {
      support::check(prog.stage_begin[s] <= prog.stage_begin[s + 1],
                     name + ": stage slice offsets not monotone");
      for (const Uop& op : prog.stage(static_cast<Stage>(s))) {
        support::check(op.stage == static_cast<Stage>(s),
                       name + ": op filed under the wrong stage slice");
      }
    }
    support::check(prog.num_temps <= kMaxTemps, name + ": temp file overflow");
    validate_required(prog.ops, name);
    // The IF program runs first every dynamic instruction, so its defs are
    // live when the per-instruction stages execute.
    std::uint32_t defined = fetch_defined;
    validate_ops(prog.ops, &defined, name);
  }
}

IsaUopSpec build_isa_uops() {
  IsaUopSpec spec;

  // --- Common IF program (Figure 1) ---
  //   current_pc = CPC.read();
  //   instr = IMAU.read(current_pc);
  //   null = IReg.write(instr);
  //   null = CPC.inc();
  {
    Uop op;
    op.stage = Stage::kIF;

    op.kind = UopKind::kReadSpecial;
    op.special = SpecialReg::kCpc;
    op.dst = kTmpCurrentPc;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kFetchInstr;
    op.dst = kTmpInstr;
    op.src_a = kTmpCurrentPc;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kWriteSpecial;
    op.special = SpecialReg::kIReg;
    op.src_a = kTmpInstr;
    spec.fetch.push_back(op);

    // CPC.inc() expressed as const-4 add, the way a datapath would implement it.
    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kImm;
    op.imm_kind = ImmKind::kConst;
    op.literal = 4;
    op.dst = kTmpConst4;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kAlu;
    op.alu = AluOp::kAdd;
    op.src_a = kTmpCurrentPc;
    op.src_b = kTmpConst4;
    op.dst = kTmpNextPc;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kWriteSpecial;
    op.special = SpecialReg::kCpc;
    op.src_a = kTmpNextPc;
    spec.fetch.push_back(op);

    spec.fetch_temps = 4;
  }

  // --- Per-instruction programs ---
  const auto count = static_cast<std::size_t>(Mnemonic::kInvalid) + 1;
  spec.per_instr.resize(count);
  auto set = [&spec](Mnemonic m, InstrUops prog) {
    spec.per_instr[static_cast<std::size_t>(m)] = std::move(prog);
  };

  set(Mnemonic::kSll, shift_imm(AluOp::kSll));
  set(Mnemonic::kSrl, shift_imm(AluOp::kSrl));
  set(Mnemonic::kSra, shift_imm(AluOp::kSra));
  set(Mnemonic::kSllv, shift_var(AluOp::kSll));
  set(Mnemonic::kSrlv, shift_var(AluOp::kSrl));
  set(Mnemonic::kSrav, shift_var(AluOp::kSra));
  set(Mnemonic::kJr, jump_reg_program(/*link=*/false));
  set(Mnemonic::kJalr, jump_reg_program(/*link=*/true));
  set(Mnemonic::kSyscall, simple(UopKind::kSyscall, Stage::kEX));
  set(Mnemonic::kBreak, simple(UopKind::kIllegal, Stage::kID));
  set(Mnemonic::kMfhi, hilo_read(SpecialReg::kHi));
  set(Mnemonic::kMthi, hilo_write(SpecialReg::kHi));
  set(Mnemonic::kMflo, hilo_read(SpecialReg::kLo));
  set(Mnemonic::kMtlo, hilo_write(SpecialReg::kLo));
  set(Mnemonic::kMult, muldiv_program(MulDivOp::kMult));
  set(Mnemonic::kMultu, muldiv_program(MulDivOp::kMultu));
  set(Mnemonic::kDiv, muldiv_program(MulDivOp::kDiv));
  set(Mnemonic::kDivu, muldiv_program(MulDivOp::kDivu));
  set(Mnemonic::kAdd, alu_rrr(AluOp::kAdd));
  set(Mnemonic::kAddu, alu_rrr(AluOp::kAdd));
  set(Mnemonic::kSub, alu_rrr(AluOp::kSub));
  set(Mnemonic::kSubu, alu_rrr(AluOp::kSub));
  set(Mnemonic::kAnd, alu_rrr(AluOp::kAnd));
  set(Mnemonic::kOr, alu_rrr(AluOp::kOr));
  set(Mnemonic::kXor, alu_rrr(AluOp::kXor));
  set(Mnemonic::kNor, alu_rrr(AluOp::kNor));
  set(Mnemonic::kSlt, alu_rrr(AluOp::kSltSigned));
  set(Mnemonic::kSltu, alu_rrr(AluOp::kSltUnsigned));
  set(Mnemonic::kBltz, branch1(AluOp::kCmpLtZ));
  set(Mnemonic::kBgez, branch1(AluOp::kCmpGeZ));
  set(Mnemonic::kBeq, branch2(AluOp::kCmpEq));
  set(Mnemonic::kBne, branch2(AluOp::kCmpNe));
  set(Mnemonic::kBlez, branch1(AluOp::kCmpLeZ));
  set(Mnemonic::kBgtz, branch1(AluOp::kCmpGtZ));
  set(Mnemonic::kAddi, alu_imm(AluOp::kAdd, ImmKind::kSignedImm));
  set(Mnemonic::kAddiu, alu_imm(AluOp::kAdd, ImmKind::kSignedImm));
  set(Mnemonic::kSlti, alu_imm(AluOp::kSltSigned, ImmKind::kSignedImm));
  set(Mnemonic::kSltiu, alu_imm(AluOp::kSltUnsigned, ImmKind::kSignedImm));
  set(Mnemonic::kAndi, alu_imm(AluOp::kAnd, ImmKind::kZeroImm));
  set(Mnemonic::kOri, alu_imm(AluOp::kOr, ImmKind::kZeroImm));
  set(Mnemonic::kXori, alu_imm(AluOp::kXor, ImmKind::kZeroImm));
  set(Mnemonic::kLui, lui_program());
  set(Mnemonic::kLb, load_program(MemWidth::kByte, true));
  set(Mnemonic::kLh, load_program(MemWidth::kHalf, true));
  set(Mnemonic::kLw, load_program(MemWidth::kWord, false));
  set(Mnemonic::kLbu, load_program(MemWidth::kByte, false));
  set(Mnemonic::kLhu, load_program(MemWidth::kHalf, false));
  set(Mnemonic::kSb, store_program(MemWidth::kByte));
  set(Mnemonic::kSh, store_program(MemWidth::kHalf));
  set(Mnemonic::kSw, store_program(MemWidth::kWord));
  set(Mnemonic::kJ, jump_program(/*link=*/false));
  set(Mnemonic::kJal, jump_program(/*link=*/true));
  set(Mnemonic::kInvalid, simple(UopKind::kIllegal, Stage::kID));

  validate_spec(spec);
  return spec;
}

}  // namespace cicmon::uop
