// Canonical microoperation programs for every instruction in the ISA.
//
// Temporary-slot convention (per dynamic instruction):
//   0..3   fetch program (current_pc, instr, const4, next_pc)
//   4..7   reserved for the IF-stage monitoring extension (Figure 3(b))
//   8..15  per-instruction ID/EX/MEM/WB temporaries
//   16..23 reserved for the ID-stage monitoring extension (Figure 4)
#include "uop/uop.h"

#include "support/error.h"

namespace cicmon::uop {

namespace {

using isa::Mnemonic;

// Temp-slot names used by the canonical fetch program.
constexpr std::uint8_t kTmpCurrentPc = 0;
constexpr std::uint8_t kTmpInstr = 1;
constexpr std::uint8_t kTmpConst4 = 2;
constexpr std::uint8_t kTmpNextPc = 3;
constexpr std::uint8_t kInstrTempBase = 8;

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Stage stage) : stage_(stage) {}

  void set_stage(Stage stage) { stage_ = stage; }

  std::uint8_t temp() {
    support::check(next_temp_ < 16, "per-instruction temp budget exceeded");
    return next_temp_++;
  }

  Uop& push(UopKind kind) {
    Uop op;
    op.kind = kind;
    op.stage = stage_;
    ops_.push_back(op);
    return ops_.back();
  }

  std::uint8_t read_gpr(GprSel sel) {
    const std::uint8_t t = temp();
    Uop& op = push(UopKind::kReadGpr);
    op.dst = t;
    op.sel = sel;
    return t;
  }

  std::uint8_t imm(ImmKind kind, std::uint32_t literal = 0) {
    const std::uint8_t t = temp();
    Uop& op = push(UopKind::kImm);
    op.dst = t;
    op.imm_kind = kind;
    op.literal = literal;
    return t;
  }

  std::uint8_t alu(AluOp a, std::uint8_t lhs, std::uint8_t rhs = kNoTemp) {
    const std::uint8_t t = temp();
    Uop& op = push(UopKind::kAlu);
    op.dst = t;
    op.alu = a;
    op.src_a = lhs;
    op.src_b = rhs;
    return t;
  }

  void write_gpr(GprSel sel, std::uint8_t src) {
    Uop& op = push(UopKind::kWriteGpr);
    op.sel = sel;
    op.src_a = src;
  }

  void set_pc(std::uint8_t target, GuardKind guard = GuardKind::kAlways,
              std::uint8_t guard_tmp = kNoTemp) {
    Uop& op = push(UopKind::kSetPc);
    op.src_a = target;
    op.guard = guard;
    op.guard_tmp = guard_tmp;
  }

  InstrUops finish() {
    InstrUops out;
    out.ops = std::move(ops_);
    out.num_temps = next_temp_;
    return out;
  }

 private:
  Stage stage_;
  std::vector<Uop> ops_;
  std::uint8_t next_temp_ = kInstrTempBase;
};

// R-type three-register ALU op: ID reads, EX computes, WB writes rd.
InstrUops alu_rrr(AluOp op) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto c = b.read_gpr(GprSel::kRt);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, a, c);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, r);
  return b.finish();
}

// Immediate-shift: sll/srl/sra rd, rt, shamt.
InstrUops shift_imm(AluOp op) {
  ProgramBuilder b(Stage::kID);
  const auto v = b.read_gpr(GprSel::kRt);
  const auto s = b.imm(ImmKind::kShamt);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, v, s);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, r);
  return b.finish();
}

// Variable shift: sllv/srlv/srav rd, rt, rs.
InstrUops shift_var(AluOp op) {
  ProgramBuilder b(Stage::kID);
  const auto v = b.read_gpr(GprSel::kRt);
  const auto s = b.read_gpr(GprSel::kRs);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, v, s);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, r);
  return b.finish();
}

// I-type ALU op: addi/slti/andi/... rt, rs, imm.
InstrUops alu_imm(AluOp op, ImmKind imm_kind) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto i = b.imm(imm_kind);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(op, a, i);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRt, r);
  return b.finish();
}

InstrUops lui_program() {
  ProgramBuilder b(Stage::kID);
  const auto i = b.imm(ImmKind::kZeroImm);
  const auto s = b.imm(ImmKind::kConst, 16);
  b.set_stage(Stage::kEX);
  const auto r = b.alu(AluOp::kSll, i, s);
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRt, r);
  return b.finish();
}

InstrUops load_program(MemWidth width, bool sign) {
  ProgramBuilder b(Stage::kID);
  const auto base = b.read_gpr(GprSel::kRs);
  const auto off = b.imm(ImmKind::kSignedImm);
  b.set_stage(Stage::kEX);
  const auto addr = b.alu(AluOp::kAdd, base, off);
  b.set_stage(Stage::kMEM);
  const auto val = b.temp();
  {
    Uop& op = b.push(UopKind::kLoad);
    op.dst = val;
    op.src_a = addr;
    op.width = width;
    op.sign_extend = sign;
  }
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRt, val);
  return b.finish();
}

InstrUops store_program(MemWidth width) {
  ProgramBuilder b(Stage::kID);
  const auto base = b.read_gpr(GprSel::kRs);
  const auto off = b.imm(ImmKind::kSignedImm);
  const auto val = b.read_gpr(GprSel::kRt);
  b.set_stage(Stage::kEX);
  const auto addr = b.alu(AluOp::kAdd, base, off);
  b.set_stage(Stage::kMEM);
  {
    Uop& op = b.push(UopKind::kStore);
    op.src_a = addr;
    op.src_b = val;
    op.width = width;
  }
  return b.finish();
}

// Two-operand conditional branch (beq/bne). Resolved in ID, matching the
// paper's placement of end-of-basic-block processing in the ID stage.
InstrUops branch2(AluOp cmp) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto c = b.read_gpr(GprSel::kRt);
  const auto cond = b.alu(cmp, a, c);
  const auto tgt = b.imm(ImmKind::kBranchTarget);
  b.set_pc(tgt, GuardKind::kIfNonZero, cond);
  return b.finish();
}

// One-operand conditional branch (blez/bgtz/bltz/bgez).
InstrUops branch1(AluOp cmp) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto cond = b.alu(cmp, a);
  const auto tgt = b.imm(ImmKind::kBranchTarget);
  b.set_pc(tgt, GuardKind::kIfNonZero, cond);
  return b.finish();
}

InstrUops jump_program(bool link) {
  ProgramBuilder b(Stage::kID);
  const auto tgt = b.imm(ImmKind::kJumpTarget);
  std::uint8_t ret = kNoTemp;
  if (link) ret = b.imm(ImmKind::kLinkAddr);
  b.set_pc(tgt);
  if (link) {
    b.set_stage(Stage::kWB);
    b.write_gpr(GprSel::kRa31, ret);
  }
  return b.finish();
}

InstrUops jump_reg_program(bool link) {
  // Figure 4's tail: "target = GPR.read(rs); null = CPC.write(target)".
  ProgramBuilder b(Stage::kID);
  const auto tgt = b.read_gpr(GprSel::kRs);
  std::uint8_t ret = kNoTemp;
  if (link) ret = b.imm(ImmKind::kLinkAddr);
  b.set_pc(tgt);
  if (link) {
    b.set_stage(Stage::kWB);
    b.write_gpr(GprSel::kRd, ret);
  }
  return b.finish();
}

InstrUops muldiv_program(MulDivOp op) {
  ProgramBuilder b(Stage::kID);
  const auto a = b.read_gpr(GprSel::kRs);
  const auto c = b.read_gpr(GprSel::kRt);
  b.set_stage(Stage::kEX);
  Uop& md = b.push(UopKind::kMulDiv);
  md.muldiv = op;
  md.src_a = a;
  md.src_b = c;
  return b.finish();
}

InstrUops hilo_read(SpecialReg which) {
  ProgramBuilder b(Stage::kEX);
  const auto t = b.temp();
  Uop& rd = b.push(UopKind::kReadSpecial);
  rd.dst = t;
  rd.special = which;
  b.set_stage(Stage::kWB);
  b.write_gpr(GprSel::kRd, t);
  return b.finish();
}

InstrUops hilo_write(SpecialReg which) {
  ProgramBuilder b(Stage::kID);
  const auto t = b.read_gpr(GprSel::kRs);
  b.set_stage(Stage::kEX);
  Uop& wr = b.push(UopKind::kWriteSpecial);
  wr.special = which;
  wr.src_a = t;
  return b.finish();
}

InstrUops simple(UopKind kind, Stage stage) {
  ProgramBuilder b(stage);
  b.push(kind);
  return b.finish();
}

}  // namespace

IsaUopSpec build_isa_uops() {
  IsaUopSpec spec;

  // --- Common IF program (Figure 1) ---
  //   current_pc = CPC.read();
  //   instr = IMAU.read(current_pc);
  //   null = IReg.write(instr);
  //   null = CPC.inc();
  {
    Uop op;
    op.stage = Stage::kIF;

    op.kind = UopKind::kReadSpecial;
    op.special = SpecialReg::kCpc;
    op.dst = kTmpCurrentPc;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kFetchInstr;
    op.dst = kTmpInstr;
    op.src_a = kTmpCurrentPc;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kWriteSpecial;
    op.special = SpecialReg::kIReg;
    op.src_a = kTmpInstr;
    spec.fetch.push_back(op);

    // CPC.inc() expressed as const-4 add, the way a datapath would implement it.
    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kImm;
    op.imm_kind = ImmKind::kConst;
    op.literal = 4;
    op.dst = kTmpConst4;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kAlu;
    op.alu = AluOp::kAdd;
    op.src_a = kTmpCurrentPc;
    op.src_b = kTmpConst4;
    op.dst = kTmpNextPc;
    spec.fetch.push_back(op);

    op = Uop{};
    op.stage = Stage::kIF;
    op.kind = UopKind::kWriteSpecial;
    op.special = SpecialReg::kCpc;
    op.src_a = kTmpNextPc;
    spec.fetch.push_back(op);

    spec.fetch_temps = 4;
  }

  // --- Per-instruction programs ---
  const auto count = static_cast<std::size_t>(Mnemonic::kInvalid) + 1;
  spec.per_instr.resize(count);
  auto set = [&spec](Mnemonic m, InstrUops prog) {
    spec.per_instr[static_cast<std::size_t>(m)] = std::move(prog);
  };

  set(Mnemonic::kSll, shift_imm(AluOp::kSll));
  set(Mnemonic::kSrl, shift_imm(AluOp::kSrl));
  set(Mnemonic::kSra, shift_imm(AluOp::kSra));
  set(Mnemonic::kSllv, shift_var(AluOp::kSll));
  set(Mnemonic::kSrlv, shift_var(AluOp::kSrl));
  set(Mnemonic::kSrav, shift_var(AluOp::kSra));
  set(Mnemonic::kJr, jump_reg_program(/*link=*/false));
  set(Mnemonic::kJalr, jump_reg_program(/*link=*/true));
  set(Mnemonic::kSyscall, simple(UopKind::kSyscall, Stage::kEX));
  set(Mnemonic::kBreak, simple(UopKind::kIllegal, Stage::kID));
  set(Mnemonic::kMfhi, hilo_read(SpecialReg::kHi));
  set(Mnemonic::kMthi, hilo_write(SpecialReg::kHi));
  set(Mnemonic::kMflo, hilo_read(SpecialReg::kLo));
  set(Mnemonic::kMtlo, hilo_write(SpecialReg::kLo));
  set(Mnemonic::kMult, muldiv_program(MulDivOp::kMult));
  set(Mnemonic::kMultu, muldiv_program(MulDivOp::kMultu));
  set(Mnemonic::kDiv, muldiv_program(MulDivOp::kDiv));
  set(Mnemonic::kDivu, muldiv_program(MulDivOp::kDivu));
  set(Mnemonic::kAdd, alu_rrr(AluOp::kAdd));
  set(Mnemonic::kAddu, alu_rrr(AluOp::kAdd));
  set(Mnemonic::kSub, alu_rrr(AluOp::kSub));
  set(Mnemonic::kSubu, alu_rrr(AluOp::kSub));
  set(Mnemonic::kAnd, alu_rrr(AluOp::kAnd));
  set(Mnemonic::kOr, alu_rrr(AluOp::kOr));
  set(Mnemonic::kXor, alu_rrr(AluOp::kXor));
  set(Mnemonic::kNor, alu_rrr(AluOp::kNor));
  set(Mnemonic::kSlt, alu_rrr(AluOp::kSltSigned));
  set(Mnemonic::kSltu, alu_rrr(AluOp::kSltUnsigned));
  set(Mnemonic::kBltz, branch1(AluOp::kCmpLtZ));
  set(Mnemonic::kBgez, branch1(AluOp::kCmpGeZ));
  set(Mnemonic::kBeq, branch2(AluOp::kCmpEq));
  set(Mnemonic::kBne, branch2(AluOp::kCmpNe));
  set(Mnemonic::kBlez, branch1(AluOp::kCmpLeZ));
  set(Mnemonic::kBgtz, branch1(AluOp::kCmpGtZ));
  set(Mnemonic::kAddi, alu_imm(AluOp::kAdd, ImmKind::kSignedImm));
  set(Mnemonic::kAddiu, alu_imm(AluOp::kAdd, ImmKind::kSignedImm));
  set(Mnemonic::kSlti, alu_imm(AluOp::kSltSigned, ImmKind::kSignedImm));
  set(Mnemonic::kSltiu, alu_imm(AluOp::kSltUnsigned, ImmKind::kSignedImm));
  set(Mnemonic::kAndi, alu_imm(AluOp::kAnd, ImmKind::kZeroImm));
  set(Mnemonic::kOri, alu_imm(AluOp::kOr, ImmKind::kZeroImm));
  set(Mnemonic::kXori, alu_imm(AluOp::kXor, ImmKind::kZeroImm));
  set(Mnemonic::kLui, lui_program());
  set(Mnemonic::kLb, load_program(MemWidth::kByte, true));
  set(Mnemonic::kLh, load_program(MemWidth::kHalf, true));
  set(Mnemonic::kLw, load_program(MemWidth::kWord, false));
  set(Mnemonic::kLbu, load_program(MemWidth::kByte, false));
  set(Mnemonic::kLhu, load_program(MemWidth::kHalf, false));
  set(Mnemonic::kSb, store_program(MemWidth::kByte));
  set(Mnemonic::kSh, store_program(MemWidth::kHalf));
  set(Mnemonic::kSw, store_program(MemWidth::kWord));
  set(Mnemonic::kJ, jump_program(/*link=*/false));
  set(Mnemonic::kJal, jump_program(/*link=*/true));
  set(Mnemonic::kInvalid, simple(UopKind::kIllegal, Stage::kID));

  return spec;
}

}  // namespace cicmon::uop
