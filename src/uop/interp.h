// Microoperation interpreter.
//
// The pipeline executes each in-flight instruction by running the stage
// slices of its microoperation program against a Datapath implementation.
// Datapath is the hardware boundary: the CPU provides registers/memory; the
// Code Integrity Checker provides HASHFU / IHTbb / exception ports.
//
// Two entry points share one definition of the operator semantics:
//  * execute_ops<DP>() — the hot path. A template over the concrete datapath
//    type, so when DP is a final class (cpu::Cpu) the register/memory/hash
//    accessors devirtualize and inline into the dispatch switch.
//  * execute_stage() — the virtual-dispatch compatibility path over an
//    unsliced program, filtering by stage tag. Tests and tools use it with
//    mock datapaths; it instantiates the same template with DP = Datapath.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

#include "isa/instruction.h"
#include "uop/uop.h"

namespace cicmon::uop {

struct IhtLookupResult {
  bool found = false;
  bool match = false;
};

// Hardware resources visible to microoperations.
class Datapath {
 public:
  virtual ~Datapath() = default;

  virtual std::uint32_t read_special(SpecialReg r) = 0;
  virtual void write_special(SpecialReg r, std::uint32_t value) = 0;
  // Hardware reset of a special register (the paper's STA.reset / RHASH.reset
  // microoperations). Defaults to zero; a keyed HASHFU overrides this so
  // RHASH resets to the per-process random value (§6.3).
  virtual void reset_special(SpecialReg r) { write_special(r, 0); }
  virtual std::uint32_t read_gpr(unsigned index) = 0;
  virtual void write_gpr(unsigned index, std::uint32_t value) = 0;

  // IMAU: instruction fetch (this is where fetch-path faults manifest).
  virtual std::uint32_t fetch_instr(std::uint32_t address) = 0;
  // DMAU: data memory.
  virtual std::uint32_t load(std::uint32_t address, MemWidth width, bool sign) = 0;
  virtual void store(std::uint32_t address, MemWidth width, std::uint32_t value) = 0;

  // Monitoring resources (CIC). Unmonitored datapaths never receive these.
  virtual std::uint32_t hash_step(std::uint32_t old_hash, std::uint32_t instr_word) = 0;
  virtual IhtLookupResult iht_lookup(std::uint32_t start, std::uint32_t end,
                                     std::uint32_t hash) = 0;
  virtual void raise_monitor_exception(std::uint8_t code) = 0;

  // Control transfer out of the ID stage.
  virtual void set_pc(std::uint32_t target) = 0;
  virtual void syscall() = 0;
  virtual void illegal_instruction() = 0;
};

// Per-dynamic-instruction state: the values travelling through pipeline
// latches (temps) plus the decoded instruction and its address. The temp file
// is safe to reuse across instructions without re-zeroing: validate_spec
// guarantees every temp is written by an earlier microoperation of the same
// dynamic instruction before it is read.
struct ExecContext {
  std::array<std::uint32_t, kMaxTemps> temps{};
  isa::Instruction instr;
  std::uint32_t instr_addr = 0;
};

// Evaluates a pure ALU microoperation (also shared with the bench and test
// layers so every path agrees on operator semantics).
inline std::uint32_t alu_eval(AluOp op, std::uint32_t a, std::uint32_t b) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (op) {
    case AluOp::kAdd: return a + b;
    case AluOp::kSub: return a - b;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kNor: return ~(a | b);
    case AluOp::kSll: return a << (b & 31U);
    case AluOp::kSrl: return a >> (b & 31U);
    case AluOp::kSra: return static_cast<std::uint32_t>(sa >> (b & 31U));
    case AluOp::kSltSigned: return sa < sb ? 1U : 0U;
    case AluOp::kSltUnsigned: return a < b ? 1U : 0U;
    case AluOp::kCmpEq: return a == b ? 1U : 0U;
    case AluOp::kCmpNe: return a != b ? 1U : 0U;
    case AluOp::kCmpLeZ: return sa <= 0 ? 1U : 0U;
    case AluOp::kCmpGtZ: return sa > 0 ? 1U : 0U;
    case AluOp::kCmpLtZ: return sa < 0 ? 1U : 0U;
    case AluOp::kCmpGeZ: return sa >= 0 ? 1U : 0U;
  }
  return 0;
}

// HI/LO results of a multiply/divide. Division by zero is defined
// deterministically: quotient = 0xFFFFFFFF, remainder = dividend.
struct HiLo {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
};

inline HiLo muldiv_eval(MulDivOp op, std::uint32_t a, std::uint32_t b) {
  HiLo out;
  switch (op) {
    case MulDivOp::kMult: {
      const std::int64_t product = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                                   static_cast<std::int64_t>(static_cast<std::int32_t>(b));
      out.lo = static_cast<std::uint32_t>(product);
      out.hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(product) >> 32);
      break;
    }
    case MulDivOp::kMultu: {
      const std::uint64_t product = static_cast<std::uint64_t>(a) * b;
      out.lo = static_cast<std::uint32_t>(product);
      out.hi = static_cast<std::uint32_t>(product >> 32);
      break;
    }
    case MulDivOp::kDiv: {
      const auto sa = static_cast<std::int32_t>(a);
      const auto sb = static_cast<std::int32_t>(b);
      if (sb == 0) {
        out.lo = 0xFFFF'FFFFU;
        out.hi = a;
      } else if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1) {
        // Overflowing quotient wraps (two's-complement hardware behaviour).
        out.lo = a;
        out.hi = 0;
      } else {
        out.lo = static_cast<std::uint32_t>(sa / sb);
        out.hi = static_cast<std::uint32_t>(sa % sb);
      }
      break;
    }
    case MulDivOp::kDivu: {
      if (b == 0) {
        out.lo = 0xFFFF'FFFFU;
        out.hi = a;
      } else {
        out.lo = a / b;
        out.hi = a % b;
      }
      break;
    }
  }
  return out;
}

namespace detail {

inline unsigned resolve_gpr(GprSel sel, const isa::Instruction& instr) {
  switch (sel) {
    case GprSel::kRs: return instr.rs;
    case GprSel::kRt: return instr.rt;
    case GprSel::kRd: return instr.rd;
    case GprSel::kRa31: return 31;
  }
  return 0;
}

inline std::uint32_t materialize(const Uop& op, const ExecContext& ctx) {
  switch (op.imm_kind) {
    case ImmKind::kSignedImm: return static_cast<std::uint32_t>(ctx.instr.simm());
    case ImmKind::kZeroImm: return ctx.instr.uimm();
    case ImmKind::kShamt: return ctx.instr.shamt;
    case ImmKind::kBranchTarget: return ctx.instr.branch_target(ctx.instr_addr);
    case ImmKind::kJumpTarget: return ctx.instr.jump_target(ctx.instr_addr);
    case ImmKind::kLinkAddr: return ctx.instr_addr + 4;
    case ImmKind::kConst: return op.literal;
  }
  return 0;
}

inline bool guard_passes(const Uop& op, const ExecContext& ctx) {
  switch (op.guard) {
    case GuardKind::kAlways: return true;
    case GuardKind::kIfZero: return ctx.temps[op.guard_tmp] == 0;
    case GuardKind::kIfNonZero: return ctx.temps[op.guard_tmp] != 0;
  }
  return true;
}

}  // namespace detail

// Executes one microoperation (guard already checked). Templated over the
// concrete datapath so a final DP statically binds and inlines its accessors.
template <typename DP>
inline void execute_op(const Uop& op, ExecContext& ctx, DP& dp) {
  switch (op.kind) {
    case UopKind::kReadSpecial:
      ctx.temps[op.dst] = dp.read_special(op.special);
      break;
    case UopKind::kWriteSpecial:
      dp.write_special(op.special, ctx.temps[op.src_a]);
      break;
    case UopKind::kResetSpecial:
      dp.reset_special(op.special);
      break;
    case UopKind::kReadGpr:
      ctx.temps[op.dst] = dp.read_gpr(detail::resolve_gpr(op.sel, ctx.instr));
      break;
    case UopKind::kWriteGpr:
      dp.write_gpr(detail::resolve_gpr(op.sel, ctx.instr), ctx.temps[op.src_a]);
      break;
    case UopKind::kImm:
      ctx.temps[op.dst] = detail::materialize(op, ctx);
      break;
    case UopKind::kAlu:
      ctx.temps[op.dst] = alu_eval(op.alu, ctx.temps[op.src_a],
                                   op.src_b == kNoTemp ? 0 : ctx.temps[op.src_b]);
      break;
    case UopKind::kMulDiv: {
      const HiLo result = muldiv_eval(op.muldiv, ctx.temps[op.src_a], ctx.temps[op.src_b]);
      dp.write_special(SpecialReg::kHi, result.hi);
      dp.write_special(SpecialReg::kLo, result.lo);
      break;
    }
    case UopKind::kFetchInstr:
      ctx.temps[op.dst] = dp.fetch_instr(ctx.temps[op.src_a]);
      break;
    case UopKind::kLoad:
      ctx.temps[op.dst] = dp.load(ctx.temps[op.src_a], op.width, op.sign_extend);
      break;
    case UopKind::kStore:
      dp.store(ctx.temps[op.src_a], op.width, ctx.temps[op.src_b]);
      break;
    case UopKind::kSetPc:
      dp.set_pc(ctx.temps[op.src_a]);
      break;
    case UopKind::kHashStep:
      ctx.temps[op.dst] = dp.hash_step(ctx.temps[op.src_a], ctx.temps[op.src_b]);
      break;
    case UopKind::kIhtLookup: {
      const IhtLookupResult result = dp.iht_lookup(ctx.temps[op.src_a], ctx.temps[op.src_b],
                                                   ctx.temps[op.src_c]);
      ctx.temps[op.dst] = result.found ? 1U : 0U;
      ctx.temps[op.dst2] = result.match ? 1U : 0U;
      break;
    }
    case UopKind::kRaiseExc:
      dp.raise_monitor_exception(op.exc_code);
      break;
    case UopKind::kSyscall:
      dp.syscall();
      break;
    case UopKind::kIllegal:
      dp.illegal_instruction();
      break;
  }
}

// Executes every microoperation of a (stage-sliced) span in order.
template <typename DP>
inline void execute_ops(std::span<const Uop> ops, ExecContext& ctx, DP& dp) {
  for (const Uop& op : ops) {
    if (!detail::guard_passes(op, ctx)) continue;
    execute_op(op, ctx, dp);
  }
}

// Compatibility path: executes, in order, every microoperation of `ops`
// whose stage equals `stage`, through the virtual Datapath interface.
void execute_stage(std::span<const Uop> ops, Stage stage, ExecContext& ctx, Datapath& dp);

}  // namespace cicmon::uop
