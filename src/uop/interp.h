// Microoperation interpreter.
//
// The pipeline executes each in-flight instruction by running the stage slice
// of its microoperation program against a Datapath implementation. Datapath
// is the hardware boundary: the CPU provides registers/memory; the Code
// Integrity Checker provides HASHFU / IHTbb / exception ports.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "isa/instruction.h"
#include "uop/uop.h"

namespace cicmon::uop {

struct IhtLookupResult {
  bool found = false;
  bool match = false;
};

// Hardware resources visible to microoperations.
class Datapath {
 public:
  virtual ~Datapath() = default;

  virtual std::uint32_t read_special(SpecialReg r) = 0;
  virtual void write_special(SpecialReg r, std::uint32_t value) = 0;
  // Hardware reset of a special register (the paper's STA.reset / RHASH.reset
  // microoperations). Defaults to zero; a keyed HASHFU overrides this so
  // RHASH resets to the per-process random value (§6.3).
  virtual void reset_special(SpecialReg r) { write_special(r, 0); }
  virtual std::uint32_t read_gpr(unsigned index) = 0;
  virtual void write_gpr(unsigned index, std::uint32_t value) = 0;

  // IMAU: instruction fetch (this is where fetch-path faults manifest).
  virtual std::uint32_t fetch_instr(std::uint32_t address) = 0;
  // DMAU: data memory.
  virtual std::uint32_t load(std::uint32_t address, MemWidth width, bool sign) = 0;
  virtual void store(std::uint32_t address, MemWidth width, std::uint32_t value) = 0;

  // Monitoring resources (CIC). Unmonitored datapaths never receive these.
  virtual std::uint32_t hash_step(std::uint32_t old_hash, std::uint32_t instr_word) = 0;
  virtual IhtLookupResult iht_lookup(std::uint32_t start, std::uint32_t end,
                                     std::uint32_t hash) = 0;
  virtual void raise_monitor_exception(std::uint8_t code) = 0;

  // Control transfer out of the ID stage.
  virtual void set_pc(std::uint32_t target) = 0;
  virtual void syscall() = 0;
  virtual void illegal_instruction() = 0;
};

// Per-dynamic-instruction state: the values travelling through pipeline
// latches (temps) plus the decoded instruction and its address.
struct ExecContext {
  std::array<std::uint32_t, 32> temps{};
  isa::Instruction instr;
  std::uint32_t instr_addr = 0;
};

// Evaluates a pure ALU microoperation (also used by the direct-execution
// fast path so both paths share one definition of operator semantics).
std::uint32_t alu_eval(AluOp op, std::uint32_t a, std::uint32_t b);

// HI/LO results of a multiply/divide. Division by zero is defined
// deterministically: quotient = 0xFFFFFFFF, remainder = dividend.
struct HiLo {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
};
HiLo muldiv_eval(MulDivOp op, std::uint32_t a, std::uint32_t b);

// Executes, in order, every microoperation of `ops` whose stage equals
// `stage`, updating `ctx` and the datapath.
void execute_stage(std::span<const Uop> ops, Stage stage, ExecContext& ctx, Datapath& dp);

}  // namespace cicmon::uop
