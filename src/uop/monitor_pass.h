// The monitoring-embedding pass (design step of Section 5).
//
// Transforms a canonical IsaUopSpec into the self-monitoring variant:
//  * extends the common IF-stage program of *all* instructions with the
//    dynamic-hash microoperations of Figure 3(b), and
//  * prepends the IHT-lookup / exception / reset microoperations of Figure 4
//    to the ID-stage program of every flow-control instruction.
//
// The pass operates purely on the microoperation representation — no
// instruction encodings change, which is precisely why the scheme needs no
// recompilation or binary instrumentation.
#pragma once

#include "uop/uop.h"

namespace cicmon::uop {

// Temp slots used by the embedded monitoring microoperations.
struct MonitorTemps {
  static constexpr std::uint8_t kStartIf = 4;   // STA.read() result in IF
  static constexpr std::uint8_t kOldHash = 5;
  static constexpr std::uint8_t kNewHash = 6;
  static constexpr std::uint8_t kStartId = 16;  // STA.read() result in ID
  static constexpr std::uint8_t kEnd = 17;
  static constexpr std::uint8_t kHashV = 18;
  static constexpr std::uint8_t kFound = 19;
  static constexpr std::uint8_t kMatch = 20;
  static constexpr std::uint8_t kZero = 21;
  static constexpr std::uint8_t kMatchIsZero = 22;
  static constexpr std::uint8_t kMismatch = 23;
};

// Monitor exception codes (the paper's exception0 / exception1).
inline constexpr std::uint8_t kExcHashMiss = 0;      // block not in IHT
inline constexpr std::uint8_t kExcHashMismatch = 1;  // block found, hash differs

// Embeds the monitoring microoperations. Idempotent: calling on an already
// monitored spec is an error (checked).
void embed_monitoring(IsaUopSpec* spec);

}  // namespace cicmon::uop
