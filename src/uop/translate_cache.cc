#include "uop/translate_cache.h"

namespace cicmon::uop {
namespace {

std::uint8_t resolve(GprSel sel, const isa::Instruction& instr) {
  switch (sel) {
    case GprSel::kRs: return instr.rs;
    case GprSel::kRt: return instr.rt;
    case GprSel::kRd: return instr.rd;
    case GprSel::kRa31: return 31;
  }
  return 0;
}

}  // namespace

TransEntry make_entry(std::uint32_t addr, std::uint32_t word, const IsaUopSpec& spec,
                      const FusedTable& fused) {
  TransEntry e;
  e.addr = addr;
  e.word = word;
  e.instr = isa::decode(word);
  e.program = &spec.program(e.instr.mnemonic);

  const FusedOp& op = fused[static_cast<std::size_t>(e.instr.mnemonic)];
  e.kind = op.kind;
  e.alu = op.alu;
  e.muldiv = op.muldiv;
  e.width = op.width;
  e.sign_extend = op.sign_extend;
  e.link = op.link;
  e.hilo = static_cast<std::uint8_t>(op.hilo);
  e.a = resolve(op.a_sel, e.instr);
  e.b = resolve(op.b_sel, e.instr);
  e.dst = resolve(op.dst_sel, e.instr);

  // Hazard metadata for the fused retire path. consumes_early only ever
  // matches rs or rt, so probing those two covers every operand pattern;
  // register 0 can never be a true dependency, so 0 doubles as "none".
  if (e.instr.valid()) {
    e.early_a = isa::consumes_early(e.instr, e.instr.rs) ? e.instr.rs : 0;
    e.early_b = isa::consumes_early(e.instr, e.instr.rt) ? e.instr.rt : 0;
    const isa::InstrClass cls = e.instr.info().cls;
    if (cls == isa::InstrClass::kLoad) e.load_dst = e.instr.rt;
    if (cls == isa::InstrClass::kMulDiv) {
      const bool is_div = e.instr.mnemonic == isa::Mnemonic::kDiv ||
                          e.instr.mnemonic == isa::Mnemonic::kDivu;
      e.muldiv_lat = is_div ? 2 : 1;
    }
    e.is_mfhilo = e.instr.mnemonic == isa::Mnemonic::kMfhi ||
                  e.instr.mnemonic == isa::Mnemonic::kMflo;
  }

  switch (op.kind) {
    case FusedKind::kAluRI:
      switch (op.imm_kind) {
        case ImmKind::kSignedImm: e.imm = static_cast<std::uint32_t>(e.instr.simm()); break;
        case ImmKind::kZeroImm: e.imm = e.instr.uimm(); break;
        case ImmKind::kShamt: e.imm = e.instr.shamt; break;
        default: break;  // classifier admits only the three kinds above
      }
      break;
    case FusedKind::kImmWrite:
      e.imm = e.instr.uimm() << 16;  // lui: the verified const-16 shift
      break;
    case FusedKind::kLoad:
    case FusedKind::kStore:
      e.imm = static_cast<std::uint32_t>(e.instr.simm());
      break;
    case FusedKind::kBranch2:
    case FusedKind::kBranch1:
      e.imm = e.instr.branch_target(addr);
      break;
    case FusedKind::kJump:
      e.imm = e.instr.jump_target(addr);
      break;
    default:
      break;
  }
  return e;
}

void TranslationCache::resolve_edges(TranslatedBlock* block) const {
  const auto in_text = [this](std::uint32_t t) {
    return t >= text_base_ && t < text_end_ && (t & 3U) == 0;
  };
  const TransEntry& last = block->entries.back();
  switch (last.kind) {
    case FusedKind::kBranch2:
    case FusedKind::kBranch1:
      // Direct conditional branch: both edges are static.
      block->has_taken = in_text(last.imm);
      block->taken_target = last.imm;
      block->has_fall = in_text(last.addr + 4);
      block->fall_target = last.addr + 4;
      break;
    case FusedKind::kJump:
      block->has_taken = in_text(last.imm);
      block->taken_target = last.imm;
      break;
    case FusedKind::kGeneric:
      // Force-split tails and unmatched shapes execute through the
      // interpreter; when they retire without redirecting the PC, the
      // successor is the next word. (A redirecting generic returns to the
      // dispatch loop instead — the engine reports kRestart, not kFall.)
      block->has_fall = in_text(last.addr + 4);
      block->fall_target = last.addr + 4;
      break;
    case FusedKind::kJumpReg:
    case FusedKind::kSyscall:
    case FusedKind::kIllegal:
    default:
      break;  // indirect or terminating: no static successor
  }
}

void TranslationCache::chain(TranslatedBlock* from, bool taken_edge, TranslatedBlock* to) {
  if (!enabled_) return;
  if (taken_edge) {
    if (!from->has_taken || from->taken != nullptr || to->start != from->taken_target) return;
    from->taken = to;
  } else {
    if (!from->has_fall || from->fall != nullptr || to->start != from->fall_target) return;
    from->fall = to;
  }
  to->preds.emplace_back(from, taken_edge);
}

void TranslationCache::sever_links(TranslatedBlock* block) {
  // Outbound: the dying block must vanish from its successors' pred lists so
  // no successor ever holds a pointer to freed memory. (A self-loop shows up
  // in its own preds and is handled here, before the inbound walk.)
  const auto drop_outbound = [this, block](TranslatedBlock* succ, bool taken_edge) {
    if (succ == nullptr) return;
    std::erase(succ->preds, std::pair<TranslatedBlock*, bool>{block, taken_edge});
    ++stats_.chain_severed;
  };
  drop_outbound(block->taken, true);
  drop_outbound(block->fall, false);
  block->taken = nullptr;
  block->fall = nullptr;
  // Inbound: every predecessor whose edge points here loses the link — the
  // next execution of that edge goes back through lookup/translate and
  // re-verifies before re-chaining.
  for (const auto& [pred, taken_edge] : block->preds) {
    if (taken_edge) {
      if (pred->taken == block) pred->taken = nullptr;
    } else {
      if (pred->fall == block) pred->fall = nullptr;
    }
    ++stats_.chain_severed;
  }
  block->preds.clear();
}

}  // namespace cicmon::uop
