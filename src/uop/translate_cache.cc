#include "uop/translate_cache.h"

namespace cicmon::uop {
namespace {

std::uint8_t resolve(GprSel sel, const isa::Instruction& instr) {
  switch (sel) {
    case GprSel::kRs: return instr.rs;
    case GprSel::kRt: return instr.rt;
    case GprSel::kRd: return instr.rd;
    case GprSel::kRa31: return 31;
  }
  return 0;
}

}  // namespace

TransEntry make_entry(std::uint32_t addr, std::uint32_t word, const IsaUopSpec& spec,
                      const FusedTable& fused) {
  TransEntry e;
  e.addr = addr;
  e.word = word;
  e.instr = isa::decode(word);
  e.program = &spec.program(e.instr.mnemonic);

  const FusedOp& op = fused[static_cast<std::size_t>(e.instr.mnemonic)];
  e.kind = op.kind;
  e.alu = op.alu;
  e.muldiv = op.muldiv;
  e.width = op.width;
  e.sign_extend = op.sign_extend;
  e.link = op.link;
  e.hilo = static_cast<std::uint8_t>(op.hilo);
  e.a = resolve(op.a_sel, e.instr);
  e.b = resolve(op.b_sel, e.instr);
  e.dst = resolve(op.dst_sel, e.instr);

  // Hazard metadata for the fused retire path. consumes_early only ever
  // matches rs or rt, so probing those two covers every operand pattern;
  // register 0 can never be a true dependency, so 0 doubles as "none".
  if (e.instr.valid()) {
    e.early_a = isa::consumes_early(e.instr, e.instr.rs) ? e.instr.rs : 0;
    e.early_b = isa::consumes_early(e.instr, e.instr.rt) ? e.instr.rt : 0;
    const isa::InstrClass cls = e.instr.info().cls;
    if (cls == isa::InstrClass::kLoad) e.load_dst = e.instr.rt;
    if (cls == isa::InstrClass::kMulDiv) {
      const bool is_div = e.instr.mnemonic == isa::Mnemonic::kDiv ||
                          e.instr.mnemonic == isa::Mnemonic::kDivu;
      e.muldiv_lat = is_div ? 2 : 1;
    }
    e.is_mfhilo = e.instr.mnemonic == isa::Mnemonic::kMfhi ||
                  e.instr.mnemonic == isa::Mnemonic::kMflo;
  }

  switch (op.kind) {
    case FusedKind::kAluRI:
      switch (op.imm_kind) {
        case ImmKind::kSignedImm: e.imm = static_cast<std::uint32_t>(e.instr.simm()); break;
        case ImmKind::kZeroImm: e.imm = e.instr.uimm(); break;
        case ImmKind::kShamt: e.imm = e.instr.shamt; break;
        default: break;  // classifier admits only the three kinds above
      }
      break;
    case FusedKind::kImmWrite:
      e.imm = e.instr.uimm() << 16;  // lui: the verified const-16 shift
      break;
    case FusedKind::kLoad:
    case FusedKind::kStore:
      e.imm = static_cast<std::uint32_t>(e.instr.simm());
      break;
    case FusedKind::kBranch2:
    case FusedKind::kBranch1:
      e.imm = e.instr.branch_target(addr);
      break;
    case FusedKind::kJump:
      e.imm = e.instr.jump_target(addr);
      break;
    default:
      break;
  }
  return e;
}

}  // namespace cicmon::uop
