#include "uop/monitor_pass.h"

#include <algorithm>

#include "support/error.h"

namespace cicmon::uop {
namespace {

Uop make(UopKind kind, Stage stage) {
  Uop op;
  op.kind = kind;
  op.stage = stage;
  op.monitoring = true;
  return op;
}

// Figure 3(b): the five microoperations appended to the IF stage of every
// instruction.
std::vector<Uop> if_extension() {
  std::vector<Uop> ops;

  // start = STA.read();
  Uop op = make(UopKind::kReadSpecial, Stage::kIF);
  op.special = SpecialReg::kSta;
  op.dst = MonitorTemps::kStartIf;
  ops.push_back(op);

  // null = [start==0] STA.write(current_pc);
  op = make(UopKind::kWriteSpecial, Stage::kIF);
  op.special = SpecialReg::kSta;
  op.src_a = 0;  // fetch temp 0 = current_pc
  op.guard = GuardKind::kIfZero;
  op.guard_tmp = MonitorTemps::kStartIf;
  ops.push_back(op);

  // ohashv = RHASH.read();
  op = make(UopKind::kReadSpecial, Stage::kIF);
  op.special = SpecialReg::kRhash;
  op.dst = MonitorTemps::kOldHash;
  ops.push_back(op);

  // nhashv = HASHFU.ope(ohashv, instr);
  op = make(UopKind::kHashStep, Stage::kIF);
  op.dst = MonitorTemps::kNewHash;
  op.src_a = MonitorTemps::kOldHash;
  op.src_b = 1;  // fetch temp 1 = instr
  ops.push_back(op);

  // null = RHASH.write(nhashv);
  op = make(UopKind::kWriteSpecial, Stage::kIF);
  op.special = SpecialReg::kRhash;
  op.src_a = MonitorTemps::kNewHash;
  ops.push_back(op);

  return ops;
}

// Figure 4 head: the microoperations prepended to the ID stage of every
// flow-control instruction.
std::vector<Uop> id_extension() {
  std::vector<Uop> ops;

  // start = STA.read();
  Uop op = make(UopKind::kReadSpecial, Stage::kID);
  op.special = SpecialReg::kSta;
  op.dst = MonitorTemps::kStartId;
  ops.push_back(op);

  // end = PPC.read();
  op = make(UopKind::kReadSpecial, Stage::kID);
  op.special = SpecialReg::kPpc;
  op.dst = MonitorTemps::kEnd;
  ops.push_back(op);

  // hashv = RHASH.read();
  op = make(UopKind::kReadSpecial, Stage::kID);
  op.special = SpecialReg::kRhash;
  op.dst = MonitorTemps::kHashV;
  ops.push_back(op);

  // <found, match> = IHTbb.lookup(<start, end, hashv>);
  op = make(UopKind::kIhtLookup, Stage::kID);
  op.dst = MonitorTemps::kFound;
  op.dst2 = MonitorTemps::kMatch;
  op.src_a = MonitorTemps::kStartId;
  op.src_b = MonitorTemps::kEnd;
  op.src_c = MonitorTemps::kHashV;
  ops.push_back(op);

  // exception0 = [found==0] '1';
  op = make(UopKind::kRaiseExc, Stage::kID);
  op.exc_code = kExcHashMiss;
  op.guard = GuardKind::kIfZero;
  op.guard_tmp = MonitorTemps::kFound;
  ops.push_back(op);

  // exception1 = [found==1 & match==0] '1';  -- computed in two ALU steps.
  op = make(UopKind::kImm, Stage::kID);
  op.imm_kind = ImmKind::kConst;
  op.literal = 0;
  op.dst = MonitorTemps::kZero;
  ops.push_back(op);

  op = make(UopKind::kAlu, Stage::kID);
  op.alu = AluOp::kCmpEq;
  op.src_a = MonitorTemps::kMatch;
  op.src_b = MonitorTemps::kZero;
  op.dst = MonitorTemps::kMatchIsZero;
  ops.push_back(op);

  op = make(UopKind::kAlu, Stage::kID);
  op.alu = AluOp::kAnd;
  op.src_a = MonitorTemps::kFound;
  op.src_b = MonitorTemps::kMatchIsZero;
  op.dst = MonitorTemps::kMismatch;
  ops.push_back(op);

  op = make(UopKind::kRaiseExc, Stage::kID);
  op.exc_code = kExcHashMismatch;
  op.guard = GuardKind::kIfNonZero;
  op.guard_tmp = MonitorTemps::kMismatch;
  ops.push_back(op);

  // null = STA.reset();  null = RHASH.reset();
  op = make(UopKind::kResetSpecial, Stage::kID);
  op.special = SpecialReg::kSta;
  ops.push_back(op);

  op = make(UopKind::kResetSpecial, Stage::kID);
  op.special = SpecialReg::kRhash;
  ops.push_back(op);

  return ops;
}

}  // namespace

void embed_monitoring(IsaUopSpec* spec) {
  support::check(spec != nullptr, "embed_monitoring: null spec");
  support::check(!spec->monitoring_embedded, "monitoring already embedded in this ISA spec");

  // Extend the shared IF program (all instructions).
  const std::vector<Uop> if_ext = if_extension();
  spec->fetch.insert(spec->fetch.end(), if_ext.begin(), if_ext.end());
  spec->fetch_temps = std::max<std::uint8_t>(spec->fetch_temps, MonitorTemps::kNewHash + 1);

  // Prepend the Figure 4 head to the ID program of flow-control instructions.
  // finalize_program restores the stage slices: the stable sort keeps the
  // prepended monitoring head ahead of the instruction's own ID operations,
  // so the lookup and resets still run before the control transfer.
  const std::vector<Uop> id_ext = id_extension();
  for (const isa::OpcodeInfo& row : isa::opcode_table()) {
    if (row.mnemonic == isa::Mnemonic::kInvalid) continue;
    if (!isa::is_flow_control(row.cls)) continue;
    InstrUops& prog = spec->per_instr[static_cast<std::size_t>(row.mnemonic)];
    prog.ops.insert(prog.ops.begin(), id_ext.begin(), id_ext.end());
    finalize_program(&prog);
  }

  spec->monitoring_embedded = true;
  validate_spec(*spec);
}

}  // namespace cicmon::uop
