// Block-level translation cache for the threaded execution engine.
//
// A translated block is a straight-line run of fused entries starting at a
// text address and ending at the first block terminator (flow control,
// syscall, illegal/unmatched program) or at the text end / length cap. Each
// entry is tagged with the word it was translated from — the same tamper-safe
// keying as the per-word predecode cache. Translation peeks words straight
// from memory (no bus, no I-cache, no hash: translation must be free of
// architectural side effects); at execution time every dynamic instruction
// still goes through the real fetch path, and the engine compares the fetched
// (and possibly tampered) word against the entry tag. Any divergence — bus
// tamper, cache-resident flip, memory rewrite, post-ID latch fault — misses
// the tag, invalidates the block, executes that one instruction through the
// interpreter on the word the pipeline actually carries, and retranslates.
//
// Superblock chaining: a block whose terminator has statically known
// successors (direct branches: taken target and fall-through; jumps: target;
// generic straight-line tails: fall-through) records those edge addresses at
// translation time. Once both blocks exist in the cache, the engine links
// them (`chain`) and later executions flow straight from the terminator into
// the successor without a dispatch-loop round trip or a cache lookup. The
// severing invariant that keeps this tamper-safe: a non-null link always
// points at a live cached block whose start equals the verified edge target.
// `invalidate` (and any slot replacement) severs every inbound and outbound
// link of the dying block first — a stale chain pointer into retranslated
// text would be a correctness bug, not a slow path. Indirect edges
// (jump-register, syscall, illegal) always return to the dispatch loop.
//
// Disabled mode (`CpuConfig::translate_cache = false`) translates every block
// into a scratch slot and never caches: the A/B configuration for the
// byte-identity tests, exactly like `predecode_cache = false`. Scratch blocks
// are never chained (their storage is reused by the next translation).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "isa/instruction.h"
#include "uop/threaded.h"
#include "uop/uop.h"

namespace cicmon::uop {

// Translated blocks never exceed this many entries; a longer straight-line
// run is split (the forced last entry executes through the interpreter and
// the next block picks up at the following word).
inline constexpr std::size_t kMaxBlockEntries = 64;

// One translated instruction: the fused shape with operands resolved against
// the decoded word and immediates/targets precomputed against the address.
struct TransEntry {
  std::uint32_t addr = 0;
  std::uint32_t word = 0;  // tag: the word this entry was translated from
  FusedKind kind = FusedKind::kGeneric;
  AluOp alu = AluOp::kAdd;
  MulDivOp muldiv = MulDivOp::kMult;
  MemWidth width = MemWidth::kWord;
  bool sign_extend = false;
  bool link = false;
  std::uint8_t a = 0;     // resolved GPR indices
  std::uint8_t b = 0;
  std::uint8_t dst = 0;
  std::uint8_t hilo = 0;  // SpecialReg index for kHiLoRead / kHiLoWrite
  std::uint32_t imm = 0;  // immediate / branch target / jump target / lui value
  // Hazard metadata, precomputed so the retire path never re-inspects the
  // decoded instruction (mirrors Cpu::account_hazards bit for bit):
  std::uint8_t early_a = 0;     // GPRs consumed in ID/EX (0 = none) — the
  std::uint8_t early_b = 0;     //   load-use comparison targets
  std::uint8_t load_dst = 0;    // rt when this is a load, else 0
  std::uint8_t muldiv_lat = 0;  // 0 = not muldiv, 1 = mult latency, 2 = div latency
  bool is_mfhilo = false;       // mfhi/mflo: stalls until HI/LO is ready
  isa::Instruction instr;            // for the interpreter fallback
  const InstrUops* program = nullptr;  // interpreter program (kGeneric, tamper)
};

struct TranslatedBlock {
  std::uint32_t start = 0;
  std::vector<TransEntry> entries;
  // Entries before the terminator (= entries.size() - 1): the straight-line
  // run whose per-instruction retire/cycle contribution is statically known,
  // the basis of the engine's per-block batched accounting.
  std::uint32_t straight_len = 0;
  // Statically resolved successor edges of the terminator. `has_*` marks an
  // edge whose target is a valid text address; `*_target` is that address.
  // `taken`/`fall` are the live chain links — null until `chain` verifies
  // and installs them, nulled again whenever either endpoint invalidates.
  bool has_taken = false;
  bool has_fall = false;
  std::uint32_t taken_target = 0;
  std::uint32_t fall_target = 0;
  TranslatedBlock* taken = nullptr;
  TranslatedBlock* fall = nullptr;
  // Inbound links: every (pred, is-taken-edge) whose `taken`/`fall` points
  // here, so invalidation can sever them in O(inbound degree).
  std::vector<std::pair<TranslatedBlock*, bool>> preds;
};

// Translates one word at `addr`: decode, fused-table lookup, operand
// resolution, immediate precomputation.
TransEntry make_entry(std::uint32_t addr, std::uint32_t word, const IsaUopSpec& spec,
                      const FusedTable& fused);

class TranslationCache {
 public:
  struct Stats {
    std::uint64_t translations = 0;   // blocks translated
    std::uint64_t hits = 0;           // block lookups served from the cache
    std::uint64_t invalidations = 0;  // blocks dropped on a tag mismatch
    std::uint64_t chain_severed = 0;  // chain links cut by invalidations
  };

  TranslationCache(std::uint32_t text_base, std::uint32_t text_end, bool enabled)
      : text_base_(text_base), text_end_(text_end), enabled_(enabled) {
    if (enabled_) slots_.resize((text_end_ - text_base_) / 4);
  }

  // Returns the cached block starting at `addr`, or nullptr (always nullptr
  // when caching is disabled — every block retranslates).
  TranslatedBlock* lookup(std::uint32_t addr) {
    if (!enabled_) return nullptr;
    TranslatedBlock* block = slots_[index(addr)].get();
    if (block != nullptr) ++stats_.hits;
    return block;
  }

  // Translates the block starting at `addr`, reading text words through
  // `peek` (which must be free of architectural side effects), and returns
  // it (cached, or scratch when caching is disabled). `addr` must be a valid
  // text address.
  template <typename PeekFn>
  TranslatedBlock* translate(std::uint32_t addr, const IsaUopSpec& spec,
                             const FusedTable& fused, PeekFn&& peek) {
    TranslatedBlock block;
    block.start = addr;
    for (std::uint32_t a = addr;; a += 4) {
      block.entries.push_back(make_entry(a, peek(a), spec, fused));
      if (is_block_terminator(block.entries.back().kind)) break;
      if (a + 4 >= text_end_ || block.entries.size() >= kMaxBlockEntries) {
        // Force-terminate: the final entry runs through the interpreter,
        // which retires it and hands control back to the block loop.
        block.entries.back().kind = FusedKind::kGeneric;
        break;
      }
    }
    block.straight_len = static_cast<std::uint32_t>(block.entries.size() - 1);
    ++stats_.translations;
    if (!enabled_) {
      scratch_ = std::move(block);
      return &scratch_;
    }
    resolve_edges(&block);
    auto& slot = slots_[index(addr)];
    // A live block in this slot (it should have been invalidated first, but
    // never trust that) must drop out of the chain before it is freed.
    if (slot != nullptr) sever_links(slot.get());
    slot = std::make_unique<TranslatedBlock>(std::move(block));
    return slot.get();
  }

  // Links `from`'s taken or fall-through edge to `to`, after verifying that
  // the edge exists, is not already linked, and that `to` really is the
  // block at the precomputed target address. No-op when caching is disabled
  // (scratch blocks must never be linked — their storage is reused).
  void chain(TranslatedBlock* from, bool taken_edge, TranslatedBlock* to);

  // Drops the block starting at `block_start` (a tag mismatched during its
  // execution), severing every chain link into and out of it first. Other
  // cached blocks overlapping the rewritten word are caught by their own
  // entry tags when they next execute.
  void invalidate(std::uint32_t block_start) {
    ++stats_.invalidations;
    if (!enabled_) return;
    auto& slot = slots_[index(block_start)];
    if (slot != nullptr) {
      sever_links(slot.get());
      slot.reset();
    }
  }

  bool enabled() const { return enabled_; }
  const Stats& stats() const { return stats_; }

 private:
  std::size_t index(std::uint32_t addr) const { return (addr - text_base_) / 4; }

  // Computes the terminator's static successor edges (translate-time).
  void resolve_edges(TranslatedBlock* block) const;
  // Cuts every inbound and outbound chain link of `block` (invalidation).
  void sever_links(TranslatedBlock* block);

  std::uint32_t text_base_;
  std::uint32_t text_end_;
  bool enabled_;
  std::vector<std::unique_ptr<TranslatedBlock>> slots_;
  TranslatedBlock scratch_;
  Stats stats_;
};

}  // namespace cicmon::uop
