// Block-level translation cache for the threaded execution engine.
//
// A translated block is a straight-line run of fused entries starting at a
// text address and ending at the first block terminator (flow control,
// syscall, illegal/unmatched program) or at the text end / length cap. Each
// entry is tagged with the word it was translated from — the same tamper-safe
// keying as the per-word predecode cache. Translation peeks words straight
// from memory (no bus, no I-cache, no hash: translation must be free of
// architectural side effects); at execution time every dynamic instruction
// still goes through the real fetch path, and the engine compares the fetched
// (and possibly tampered) word against the entry tag. Any divergence — bus
// tamper, cache-resident flip, memory rewrite, post-ID latch fault — misses
// the tag, invalidates the block, executes that one instruction through the
// interpreter on the word the pipeline actually carries, and retranslates.
//
// Disabled mode (`CpuConfig::translate_cache = false`) translates every block
// into a scratch slot and never caches: the A/B configuration for the
// byte-identity tests, exactly like `predecode_cache = false`.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "isa/instruction.h"
#include "uop/threaded.h"
#include "uop/uop.h"

namespace cicmon::uop {

// Translated blocks never exceed this many entries; a longer straight-line
// run is split (the forced last entry executes through the interpreter and
// the next block picks up at the following word).
inline constexpr std::size_t kMaxBlockEntries = 64;

// One translated instruction: the fused shape with operands resolved against
// the decoded word and immediates/targets precomputed against the address.
struct TransEntry {
  std::uint32_t addr = 0;
  std::uint32_t word = 0;  // tag: the word this entry was translated from
  FusedKind kind = FusedKind::kGeneric;
  AluOp alu = AluOp::kAdd;
  MulDivOp muldiv = MulDivOp::kMult;
  MemWidth width = MemWidth::kWord;
  bool sign_extend = false;
  bool link = false;
  std::uint8_t a = 0;     // resolved GPR indices
  std::uint8_t b = 0;
  std::uint8_t dst = 0;
  std::uint8_t hilo = 0;  // SpecialReg index for kHiLoRead / kHiLoWrite
  std::uint32_t imm = 0;  // immediate / branch target / jump target / lui value
  // Hazard metadata, precomputed so the retire path never re-inspects the
  // decoded instruction (mirrors Cpu::account_hazards bit for bit):
  std::uint8_t early_a = 0;     // GPRs consumed in ID/EX (0 = none) — the
  std::uint8_t early_b = 0;     //   load-use comparison targets
  std::uint8_t load_dst = 0;    // rt when this is a load, else 0
  std::uint8_t muldiv_lat = 0;  // 0 = not muldiv, 1 = mult latency, 2 = div latency
  bool is_mfhilo = false;       // mfhi/mflo: stalls until HI/LO is ready
  isa::Instruction instr;            // for the interpreter fallback
  const InstrUops* program = nullptr;  // interpreter program (kGeneric, tamper)
};

struct TranslatedBlock {
  std::uint32_t start = 0;
  std::vector<TransEntry> entries;
};

// Translates one word at `addr`: decode, fused-table lookup, operand
// resolution, immediate precomputation.
TransEntry make_entry(std::uint32_t addr, std::uint32_t word, const IsaUopSpec& spec,
                      const FusedTable& fused);

class TranslationCache {
 public:
  struct Stats {
    std::uint64_t translations = 0;   // blocks translated
    std::uint64_t hits = 0;           // block lookups served from the cache
    std::uint64_t invalidations = 0;  // blocks dropped on a tag mismatch
  };

  TranslationCache(std::uint32_t text_base, std::uint32_t text_end, bool enabled)
      : text_base_(text_base), text_end_(text_end), enabled_(enabled) {
    if (enabled_) slots_.resize((text_end_ - text_base_) / 4);
  }

  // Returns the cached block starting at `addr`, or nullptr (always nullptr
  // when caching is disabled — every block retranslates).
  const TranslatedBlock* lookup(std::uint32_t addr) {
    if (!enabled_) return nullptr;
    const TranslatedBlock* block = slots_[index(addr)].get();
    if (block != nullptr) ++stats_.hits;
    return block;
  }

  // Translates the block starting at `addr`, reading text words through
  // `peek` (which must be free of architectural side effects), and returns
  // it (cached, or scratch when caching is disabled). `addr` must be a valid
  // text address.
  template <typename PeekFn>
  const TranslatedBlock* translate(std::uint32_t addr, const IsaUopSpec& spec,
                                   const FusedTable& fused, PeekFn&& peek) {
    TranslatedBlock block;
    block.start = addr;
    for (std::uint32_t a = addr;; a += 4) {
      block.entries.push_back(make_entry(a, peek(a), spec, fused));
      if (is_block_terminator(block.entries.back().kind)) break;
      if (a + 4 >= text_end_ || block.entries.size() >= kMaxBlockEntries) {
        // Force-terminate: the final entry runs through the interpreter,
        // which retires it and hands control back to the block loop.
        block.entries.back().kind = FusedKind::kGeneric;
        break;
      }
    }
    ++stats_.translations;
    if (!enabled_) {
      scratch_ = std::move(block);
      return &scratch_;
    }
    auto& slot = slots_[index(addr)];
    slot = std::make_unique<TranslatedBlock>(std::move(block));
    return slot.get();
  }

  // Drops the block starting at `block_start` (a tag mismatched during its
  // execution). Other cached blocks overlapping the rewritten word are caught
  // by their own entry tags when they next execute.
  void invalidate(std::uint32_t block_start) {
    ++stats_.invalidations;
    if (!enabled_) return;
    slots_[index(block_start)].reset();
  }

  bool enabled() const { return enabled_; }
  const Stats& stats() const { return stats_; }

 private:
  std::size_t index(std::uint32_t addr) const { return (addr - text_base_) / 4; }

  std::uint32_t text_base_;
  std::uint32_t text_end_;
  bool enabled_;
  std::vector<std::unique_ptr<TranslatedBlock>> slots_;
  TranslatedBlock scratch_;
  Stats stats_;
};

}  // namespace cicmon::uop
