// Loadable program image.
//
// The output of both assembler front ends. The image is what the OS loader
// consumes; the static hash generator (src/cfg) reads `text` to build the
// Full Hash Table that gets attached to the image — mirroring the paper's
// "hash values ... attached to the application code and data" (§3.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cicmon::casm_ {

// Default memory map (PISA/SimpleScalar-like).
inline constexpr std::uint32_t kTextBase = 0x0040'0000;
inline constexpr std::uint32_t kDataBase = 0x1000'0000;
inline constexpr std::uint32_t kStackTop = 0x7FFF'FF00;

struct Image {
  std::uint32_t entry = kTextBase;
  std::uint32_t text_base = kTextBase;
  std::vector<std::uint32_t> text;  // instruction words
  std::uint32_t data_base = kDataBase;
  std::vector<std::uint8_t> data;
  std::map<std::string, std::uint32_t> symbols;  // name -> address

  std::uint32_t text_end() const {
    return text_base + static_cast<std::uint32_t>(text.size()) * 4;
  }
  bool contains_text(std::uint32_t address) const {
    return address >= text_base && address < text_end() && (address & 3U) == 0;
  }
  std::uint32_t word_at(std::uint32_t address) const {
    return text[(address - text_base) / 4];
  }
};

}  // namespace cicmon::casm_
