// Programmatic assembler (builder API).
//
// The workload kernels (src/workloads) are written against this API: it
// plays the role MiBench's C sources + gcc played for the paper. It offers
// labels with forward references, named functions, a data section, the full
// hardware instruction set, and the usual assembler pseudo-instructions
// (li/la/move/bgt/... expanded exactly as a MIPS assembler would, using $at).
//
// Example:
//   Asm a;
//   a.func("main");
//   a.li(isa::kT0, 10);
//   Label loop = a.bound_label();
//   a.addiu(isa::kT0, isa::kT0, -1);
//   a.bne(isa::kT0, isa::kZero, loop);
//   a.sys_exit(0);
//   Image image = a.finalize();
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "casm/image.h"
#include "isa/instruction.h"
#include "isa/registers.h"

namespace cicmon::casm_ {

// System-call codes (placed in $v0; argument in $a0).
enum class Sys : std::uint32_t {
  kExit = 0,     // a0 = exit code
  kPutInt = 1,   // a0 = signed integer to print
  kPutChar = 2,  // a0 = character to print
  kCheck = 3,    // a0 = observed value, a1 = expected value (self-check trap)
};

struct Label {
  std::uint32_t id = 0;
};

class Asm {
 public:
  Asm();

  // --- Labels and symbols ---
  Label label();                 // fresh, unbound
  void bind(Label l);            // bind at the current text address
  Label bound_label();           // fresh label bound here
  void func(const std::string& name);  // define a function entry here
  std::uint32_t here() const;    // current text address

  // --- Raw emission ---
  void emit(std::uint32_t word);

  // --- R-type ---
  void sll(unsigned rd, unsigned rt, unsigned shamt);
  void srl(unsigned rd, unsigned rt, unsigned shamt);
  void sra(unsigned rd, unsigned rt, unsigned shamt);
  void sllv(unsigned rd, unsigned rt, unsigned rs);
  void srlv(unsigned rd, unsigned rt, unsigned rs);
  void srav(unsigned rd, unsigned rt, unsigned rs);
  void jr(unsigned rs);
  void jalr(unsigned rd, unsigned rs);
  void syscall();
  void break_();
  void mfhi(unsigned rd);
  void mthi(unsigned rs);
  void mflo(unsigned rd);
  void mtlo(unsigned rs);
  void mult(unsigned rs, unsigned rt);
  void multu(unsigned rs, unsigned rt);
  void div(unsigned rs, unsigned rt);
  void divu(unsigned rs, unsigned rt);
  void addu(unsigned rd, unsigned rs, unsigned rt);
  void subu(unsigned rd, unsigned rs, unsigned rt);
  void and_(unsigned rd, unsigned rs, unsigned rt);
  void or_(unsigned rd, unsigned rs, unsigned rt);
  void xor_(unsigned rd, unsigned rs, unsigned rt);
  void nor(unsigned rd, unsigned rs, unsigned rt);
  void slt(unsigned rd, unsigned rs, unsigned rt);
  void sltu(unsigned rd, unsigned rs, unsigned rt);

  // --- I-type ---
  void addiu(unsigned rt, unsigned rs, std::int32_t imm);
  void slti(unsigned rt, unsigned rs, std::int32_t imm);
  void sltiu(unsigned rt, unsigned rs, std::int32_t imm);
  void andi(unsigned rt, unsigned rs, std::uint32_t imm);
  void ori(unsigned rt, unsigned rs, std::uint32_t imm);
  void xori(unsigned rt, unsigned rs, std::uint32_t imm);
  void lui(unsigned rt, std::uint32_t imm);
  void lb(unsigned rt, std::int32_t offset, unsigned base);
  void lbu(unsigned rt, std::int32_t offset, unsigned base);
  void lh(unsigned rt, std::int32_t offset, unsigned base);
  void lhu(unsigned rt, std::int32_t offset, unsigned base);
  void lw(unsigned rt, std::int32_t offset, unsigned base);
  void sb(unsigned rt, std::int32_t offset, unsigned base);
  void sh(unsigned rt, std::int32_t offset, unsigned base);
  void sw(unsigned rt, std::int32_t offset, unsigned base);
  void beq(unsigned rs, unsigned rt, Label target);
  void bne(unsigned rs, unsigned rt, Label target);
  void blez(unsigned rs, Label target);
  void bgtz(unsigned rs, Label target);
  void bltz(unsigned rs, Label target);
  void bgez(unsigned rs, Label target);

  // --- J-type ---
  void j(Label target);
  void jal(Label target);
  void jal(const std::string& function);  // forward references allowed

  // --- Pseudo-instructions (expanded like a MIPS assembler, $at scratch) ---
  void nop();
  void move(unsigned rd, unsigned rs);
  void li(unsigned rt, std::uint32_t value);
  void la(unsigned rt, const std::string& data_symbol);
  void neg(unsigned rd, unsigned rs);
  void not_(unsigned rd, unsigned rs);
  void b(Label target);                         // unconditional branch
  void beqz(unsigned rs, Label target);
  void bnez(unsigned rs, Label target);
  void blt(unsigned rs, unsigned rt, Label target);
  void bge(unsigned rs, unsigned rt, Label target);
  void bgt(unsigned rs, unsigned rt, Label target);
  void ble(unsigned rs, unsigned rt, Label target);
  void bltu(unsigned rs, unsigned rt, Label target);
  void bgeu(unsigned rs, unsigned rt, Label target);

  // --- Calling convention helpers ---
  void push(unsigned reg);              // sp -= 4; [sp] = reg
  void pop(unsigned reg);               // reg = [sp]; sp += 4
  void call(const std::string& function) { jal(function); }
  void ret() { jr(isa::kRa); }

  // --- System calls ---
  void sys(Sys code);
  void sys_exit(std::uint32_t code);
  void sys_print_int(unsigned reg);
  void sys_print_char(char c);
  // Traps (via Sys::kCheck) if reg != expected; workloads use this to verify
  // their own output so a silently-wrong simulation fails tests.
  void check_eq(unsigned reg, std::uint32_t expected);

  // --- Data section ---
  std::uint32_t data_word(std::uint32_t value);
  std::uint32_t data_words(std::span<const std::uint32_t> values);
  std::uint32_t data_words(std::initializer_list<std::uint32_t> values);
  std::uint32_t data_bytes(std::span<const std::uint8_t> bytes);
  std::uint32_t data_asciiz(const std::string& text);
  std::uint32_t data_space(std::uint32_t size_bytes, std::uint8_t fill = 0);
  void data_symbol(const std::string& name);  // name the current data address
  std::uint32_t data_address(const std::string& name) const;

  // --- Finalization ---
  // Patches all fixups; throws CicError on unbound labels, undefined
  // functions, or out-of-range branch offsets. Entry point is "main" if
  // defined, else the first instruction.
  Image finalize();

 private:
  struct Fixup {
    enum class Kind { kBranch, kJump } kind;
    std::uint32_t text_index;
    std::uint32_t label_id;
  };

  std::uint32_t addr_of(std::uint32_t text_index) const;
  Label func_label(const std::string& name);
  void patch(const Fixup& fixup);

  Image image_;
  std::vector<std::int64_t> label_addr_;  // -1 = unbound
  std::vector<Fixup> fixups_;
  std::map<std::string, Label> func_labels_;
  bool finalized_ = false;
};

}  // namespace cicmon::casm_
