#include "casm/builder.h"

#include "support/error.h"
#include "support/strings.h"

namespace cicmon::casm_ {

using isa::Mnemonic;
using isa::encode_i;
using isa::encode_j;
using isa::encode_r;
using support::check;

namespace {

std::uint16_t imm16_signed(std::int32_t value) {
  check(value >= -32768 && value <= 32767, "signed 16-bit immediate out of range");
  return static_cast<std::uint16_t>(value);
}

std::uint16_t imm16_unsigned(std::uint32_t value) {
  check(value <= 0xFFFFU, "unsigned 16-bit immediate out of range");
  return static_cast<std::uint16_t>(value);
}

}  // namespace

Asm::Asm() = default;

Label Asm::label() {
  label_addr_.push_back(-1);
  return Label{static_cast<std::uint32_t>(label_addr_.size() - 1)};
}

void Asm::bind(Label l) {
  check(l.id < label_addr_.size(), "bind: unknown label");
  check(label_addr_[l.id] < 0, "bind: label already bound");
  label_addr_[l.id] = here();
}

Label Asm::bound_label() {
  Label l = label();
  bind(l);
  return l;
}

void Asm::func(const std::string& name) {
  Label l = func_label(name);
  bind(l);
  image_.symbols[name] = here();
}

std::uint32_t Asm::here() const {
  return image_.text_base + static_cast<std::uint32_t>(image_.text.size()) * 4;
}

void Asm::emit(std::uint32_t word) {
  check(!finalized_, "emit after finalize()");
  image_.text.push_back(word);
}

// --- R-type ---
void Asm::sll(unsigned rd, unsigned rt, unsigned shamt) { emit(encode_r(Mnemonic::kSll, rd, 0, rt, shamt)); }
void Asm::srl(unsigned rd, unsigned rt, unsigned shamt) { emit(encode_r(Mnemonic::kSrl, rd, 0, rt, shamt)); }
void Asm::sra(unsigned rd, unsigned rt, unsigned shamt) { emit(encode_r(Mnemonic::kSra, rd, 0, rt, shamt)); }
void Asm::sllv(unsigned rd, unsigned rt, unsigned rs) { emit(encode_r(Mnemonic::kSllv, rd, rs, rt)); }
void Asm::srlv(unsigned rd, unsigned rt, unsigned rs) { emit(encode_r(Mnemonic::kSrlv, rd, rs, rt)); }
void Asm::srav(unsigned rd, unsigned rt, unsigned rs) { emit(encode_r(Mnemonic::kSrav, rd, rs, rt)); }
void Asm::jr(unsigned rs) { emit(encode_r(Mnemonic::kJr, 0, rs, 0)); }
void Asm::jalr(unsigned rd, unsigned rs) { emit(encode_r(Mnemonic::kJalr, rd, rs, 0)); }
void Asm::syscall() { emit(encode_r(Mnemonic::kSyscall, 0, 0, 0)); }
void Asm::break_() { emit(encode_r(Mnemonic::kBreak, 0, 0, 0)); }
void Asm::mfhi(unsigned rd) { emit(encode_r(Mnemonic::kMfhi, rd, 0, 0)); }
void Asm::mthi(unsigned rs) { emit(encode_r(Mnemonic::kMthi, 0, rs, 0)); }
void Asm::mflo(unsigned rd) { emit(encode_r(Mnemonic::kMflo, rd, 0, 0)); }
void Asm::mtlo(unsigned rs) { emit(encode_r(Mnemonic::kMtlo, 0, rs, 0)); }
void Asm::mult(unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kMult, 0, rs, rt)); }
void Asm::multu(unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kMultu, 0, rs, rt)); }
void Asm::div(unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kDiv, 0, rs, rt)); }
void Asm::divu(unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kDivu, 0, rs, rt)); }
void Asm::addu(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kAddu, rd, rs, rt)); }
void Asm::subu(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kSubu, rd, rs, rt)); }
void Asm::and_(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kAnd, rd, rs, rt)); }
void Asm::or_(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kOr, rd, rs, rt)); }
void Asm::xor_(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kXor, rd, rs, rt)); }
void Asm::nor(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kNor, rd, rs, rt)); }
void Asm::slt(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kSlt, rd, rs, rt)); }
void Asm::sltu(unsigned rd, unsigned rs, unsigned rt) { emit(encode_r(Mnemonic::kSltu, rd, rs, rt)); }

// --- I-type ---
void Asm::addiu(unsigned rt, unsigned rs, std::int32_t imm) { emit(encode_i(Mnemonic::kAddiu, rt, rs, imm16_signed(imm))); }
void Asm::slti(unsigned rt, unsigned rs, std::int32_t imm) { emit(encode_i(Mnemonic::kSlti, rt, rs, imm16_signed(imm))); }
void Asm::sltiu(unsigned rt, unsigned rs, std::int32_t imm) { emit(encode_i(Mnemonic::kSltiu, rt, rs, imm16_signed(imm))); }
void Asm::andi(unsigned rt, unsigned rs, std::uint32_t imm) { emit(encode_i(Mnemonic::kAndi, rt, rs, imm16_unsigned(imm))); }
void Asm::ori(unsigned rt, unsigned rs, std::uint32_t imm) { emit(encode_i(Mnemonic::kOri, rt, rs, imm16_unsigned(imm))); }
void Asm::xori(unsigned rt, unsigned rs, std::uint32_t imm) { emit(encode_i(Mnemonic::kXori, rt, rs, imm16_unsigned(imm))); }
void Asm::lui(unsigned rt, std::uint32_t imm) { emit(encode_i(Mnemonic::kLui, rt, 0, imm16_unsigned(imm))); }
void Asm::lb(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kLb, rt, base, imm16_signed(offset))); }
void Asm::lbu(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kLbu, rt, base, imm16_signed(offset))); }
void Asm::lh(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kLh, rt, base, imm16_signed(offset))); }
void Asm::lhu(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kLhu, rt, base, imm16_signed(offset))); }
void Asm::lw(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kLw, rt, base, imm16_signed(offset))); }
void Asm::sb(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kSb, rt, base, imm16_signed(offset))); }
void Asm::sh(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kSh, rt, base, imm16_signed(offset))); }
void Asm::sw(unsigned rt, std::int32_t offset, unsigned base) { emit(encode_i(Mnemonic::kSw, rt, base, imm16_signed(offset))); }

namespace {
// Placeholder immediate patched by Asm::patch.
constexpr std::uint16_t kPending = 0;
}  // namespace

void Asm::beq(unsigned rs, unsigned rt, Label target) {
  fixups_.push_back({Fixup::Kind::kBranch, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_i(Mnemonic::kBeq, rt, rs, kPending));
}
void Asm::bne(unsigned rs, unsigned rt, Label target) {
  fixups_.push_back({Fixup::Kind::kBranch, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_i(Mnemonic::kBne, rt, rs, kPending));
}
void Asm::blez(unsigned rs, Label target) {
  fixups_.push_back({Fixup::Kind::kBranch, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_i(Mnemonic::kBlez, 0, rs, kPending));
}
void Asm::bgtz(unsigned rs, Label target) {
  fixups_.push_back({Fixup::Kind::kBranch, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_i(Mnemonic::kBgtz, 0, rs, kPending));
}
void Asm::bltz(unsigned rs, Label target) {
  fixups_.push_back({Fixup::Kind::kBranch, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_i(Mnemonic::kBltz, 0, rs, kPending));
}
void Asm::bgez(unsigned rs, Label target) {
  fixups_.push_back({Fixup::Kind::kBranch, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_i(Mnemonic::kBgez, 0, rs, kPending));
}

void Asm::j(Label target) {
  fixups_.push_back({Fixup::Kind::kJump, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_j(Mnemonic::kJ, 0));
}
void Asm::jal(Label target) {
  fixups_.push_back({Fixup::Kind::kJump, static_cast<std::uint32_t>(image_.text.size()), target.id});
  emit(encode_j(Mnemonic::kJal, 0));
}
void Asm::jal(const std::string& function) { jal(func_label(function)); }

// --- Pseudo-instructions ---
void Asm::nop() { emit(0); }
void Asm::move(unsigned rd, unsigned rs) { addu(rd, rs, isa::kZero); }

void Asm::li(unsigned rt, std::uint32_t value) {
  const std::int32_t signed_value = static_cast<std::int32_t>(value);
  if (signed_value >= -32768 && signed_value <= 32767) {
    addiu(rt, isa::kZero, signed_value);
  } else if ((value & 0xFFFFU) == 0) {
    lui(rt, value >> 16);
  } else if (value <= 0xFFFFU) {
    ori(rt, isa::kZero, value);
  } else {
    lui(rt, value >> 16);
    ori(rt, rt, value & 0xFFFFU);
  }
}

void Asm::la(unsigned rt, const std::string& data_symbol) { li(rt, data_address(data_symbol)); }
void Asm::neg(unsigned rd, unsigned rs) { subu(rd, isa::kZero, rs); }
void Asm::not_(unsigned rd, unsigned rs) { nor(rd, rs, isa::kZero); }
void Asm::b(Label target) { beq(isa::kZero, isa::kZero, target); }
void Asm::beqz(unsigned rs, Label target) { beq(rs, isa::kZero, target); }
void Asm::bnez(unsigned rs, Label target) { bne(rs, isa::kZero, target); }

void Asm::blt(unsigned rs, unsigned rt, Label target) {
  slt(isa::kAt, rs, rt);
  bnez(isa::kAt, target);
}
void Asm::bge(unsigned rs, unsigned rt, Label target) {
  slt(isa::kAt, rs, rt);
  beqz(isa::kAt, target);
}
void Asm::bgt(unsigned rs, unsigned rt, Label target) { blt(rt, rs, target); }
void Asm::ble(unsigned rs, unsigned rt, Label target) { bge(rt, rs, target); }
void Asm::bltu(unsigned rs, unsigned rt, Label target) {
  sltu(isa::kAt, rs, rt);
  bnez(isa::kAt, target);
}
void Asm::bgeu(unsigned rs, unsigned rt, Label target) {
  sltu(isa::kAt, rs, rt);
  beqz(isa::kAt, target);
}

void Asm::push(unsigned reg) {
  addiu(isa::kSp, isa::kSp, -4);
  sw(reg, 0, isa::kSp);
}
void Asm::pop(unsigned reg) {
  lw(reg, 0, isa::kSp);
  addiu(isa::kSp, isa::kSp, 4);
}

// --- System calls ---
void Asm::sys(Sys code) {
  li(isa::kV0, static_cast<std::uint32_t>(code));
  syscall();
}
void Asm::sys_exit(std::uint32_t code) {
  li(isa::kA0, code);
  sys(Sys::kExit);
}
void Asm::sys_print_int(unsigned reg) {
  if (reg != isa::kA0) move(isa::kA0, reg);
  sys(Sys::kPutInt);
}
void Asm::sys_print_char(char c) {
  li(isa::kA0, static_cast<std::uint8_t>(c));
  sys(Sys::kPutChar);
}
void Asm::check_eq(unsigned reg, std::uint32_t expected) {
  if (reg != isa::kA0) move(isa::kA0, reg);
  li(isa::kA1, expected);
  sys(Sys::kCheck);
}

// --- Data section ---
std::uint32_t Asm::data_word(std::uint32_t value) { return data_words({&value, 1}); }

std::uint32_t Asm::data_words(std::span<const std::uint32_t> values) {
  // Word data is always word-aligned.
  while (image_.data.size() % 4 != 0) image_.data.push_back(0);
  const std::uint32_t address = image_.data_base + static_cast<std::uint32_t>(image_.data.size());
  for (std::uint32_t v : values) {
    image_.data.push_back(static_cast<std::uint8_t>(v));
    image_.data.push_back(static_cast<std::uint8_t>(v >> 8));
    image_.data.push_back(static_cast<std::uint8_t>(v >> 16));
    image_.data.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  return address;
}

std::uint32_t Asm::data_words(std::initializer_list<std::uint32_t> values) {
  return data_words(std::span<const std::uint32_t>(values.begin(), values.size()));
}

std::uint32_t Asm::data_bytes(std::span<const std::uint8_t> bytes) {
  const std::uint32_t address = image_.data_base + static_cast<std::uint32_t>(image_.data.size());
  image_.data.insert(image_.data.end(), bytes.begin(), bytes.end());
  return address;
}

std::uint32_t Asm::data_asciiz(const std::string& text) {
  const std::uint32_t address = image_.data_base + static_cast<std::uint32_t>(image_.data.size());
  for (char c : text) image_.data.push_back(static_cast<std::uint8_t>(c));
  image_.data.push_back(0);
  return address;
}

std::uint32_t Asm::data_space(std::uint32_t size_bytes, std::uint8_t fill) {
  while (image_.data.size() % 4 != 0) image_.data.push_back(0);
  const std::uint32_t address = image_.data_base + static_cast<std::uint32_t>(image_.data.size());
  image_.data.insert(image_.data.end(), size_bytes, fill);
  return address;
}

void Asm::data_symbol(const std::string& name) {
  while (image_.data.size() % 4 != 0) image_.data.push_back(0);
  image_.symbols[name] = image_.data_base + static_cast<std::uint32_t>(image_.data.size());
}

std::uint32_t Asm::data_address(const std::string& name) const {
  auto it = image_.symbols.find(name);
  check(it != image_.symbols.end(), "undefined data symbol: " + name);
  return it->second;
}

// --- Finalization ---
std::uint32_t Asm::addr_of(std::uint32_t text_index) const {
  return image_.text_base + text_index * 4;
}

Label Asm::func_label(const std::string& name) {
  auto it = func_labels_.find(name);
  if (it != func_labels_.end()) return it->second;
  Label l = label();
  func_labels_.emplace(name, l);
  return l;
}

void Asm::patch(const Fixup& fixup) {
  check(fixup.label_id < label_addr_.size(), "patch: unknown label");
  const std::int64_t target = label_addr_[fixup.label_id];
  check(target >= 0, "unbound label referenced by instruction at " +
                         support::hex32(addr_of(fixup.text_index)));
  std::uint32_t& word = image_.text[fixup.text_index];
  if (fixup.kind == Fixup::Kind::kBranch) {
    const std::int64_t offset_words =
        (target - static_cast<std::int64_t>(addr_of(fixup.text_index)) - 4) / 4;
    check(offset_words >= -32768 && offset_words <= 32767, "branch offset out of range");
    word = (word & 0xFFFF'0000U) | (static_cast<std::uint32_t>(offset_words) & 0xFFFFU);
  } else {
    const auto target_field = static_cast<std::uint32_t>(target) >> 2;
    check(target_field < (1U << 26), "jump target out of range");
    word = (word & 0xFC00'0000U) | target_field;
  }
}

Image Asm::finalize() {
  check(!finalized_, "finalize() called twice");
  for (const auto& [name, l] : func_labels_) {
    check(label_addr_[l.id] >= 0, "undefined function: " + name);
  }
  for (const Fixup& fixup : fixups_) patch(fixup);
  finalized_ = true;
  auto main_it = image_.symbols.find("main");
  image_.entry = main_it != image_.symbols.end() ? main_it->second : image_.text_base;
  return image_;
}

}  // namespace cicmon::casm_
