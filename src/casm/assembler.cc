#include "casm/assembler.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "isa/instruction.h"
#include "isa/registers.h"
#include "support/error.h"
#include "support/strings.h"

namespace cicmon::casm_ {

using isa::Mnemonic;
using isa::OperandPattern;
using support::CicError;
using support::check;

namespace {

struct Statement {
  int line = 0;
  std::string mnemonic;               // lower-case opcode or directive
  std::vector<std::string> operands;  // raw operand strings
  std::uint32_t address = 0;          // assigned in pass 1
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw CicError("asm line " + std::to_string(line) + ": " + message);
}

unsigned parse_reg_or_fail(std::string_view text, int line) {
  auto reg = isa::parse_reg(text);
  if (!reg) fail(line, "bad register '" + std::string(text) + "'");
  return *reg;
}

// Splits operands on commas, respecting that offsets like 8($sp) contain no
// commas. Quoted strings (for .asciiz) are kept intact.
std::vector<std::string> split_operands(std::string_view text, int line) {
  std::vector<std::string> out;
  std::string current;
  bool in_quote = false;
  for (char c : text) {
    if (c == '"') in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      const auto trimmed = support::trim(current);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quote) fail(line, "unterminated string literal");
  const auto trimmed = support::trim(current);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

// How many hardware instructions a (pseudo-)statement expands to.
unsigned statement_size(const Statement& s) {
  if (s.mnemonic == "li" || s.mnemonic == "la") return 2;  // fixed lui+ori form
  if (s.mnemonic == "blt" || s.mnemonic == "bge" || s.mnemonic == "bgt" ||
      s.mnemonic == "ble")
    return 2;  // slt + branch
  return 1;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source) : source_(source) {}

  Image run() {
    parse();
    layout();
    encode();
    auto main_it = image_.symbols.find("main");
    image_.entry = main_it != image_.symbols.end() ? main_it->second : image_.text_base;
    return std::move(image_);
  }

 private:
  enum class Section { kText, kData };

  void parse() {
    int line_number = 0;
    std::size_t pos = 0;
    Section section = Section::kText;
    while (pos <= source_.size()) {
      const std::size_t eol = source_.find('\n', pos);
      std::string_view line = source_.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? source_.size() + 1 : eol + 1;
      ++line_number;

      // Strip comments.
      for (std::string_view marker : {"#", "//", ";"}) {
        const std::size_t c = line.find(marker);
        if (c != std::string_view::npos) line = line.substr(0, c);
      }
      line = support::trim(line);
      if (line.empty()) continue;

      // Labels (possibly several per line).
      while (true) {
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view name = support::trim(line.substr(0, colon));
        if (name.empty() || name.find(' ') != std::string_view::npos) break;
        pending_labels_.emplace_back(std::string(name), section, line_number);
        line = support::trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      const std::size_t space = line.find_first_of(" \t");
      std::string head = support::to_lower(
          space == std::string_view::npos ? line : line.substr(0, space));
      const std::string_view rest =
          space == std::string_view::npos ? std::string_view{} : support::trim(line.substr(space));

      if (head == ".text") { flush_labels(Section::kText); section = Section::kText; continue; }
      if (head == ".data") { flush_labels(Section::kData); section = Section::kData; continue; }
      if (head == ".globl" || head == ".global" || head == ".align") continue;

      Statement s;
      s.line = line_number;
      s.mnemonic = head;
      s.operands = split_operands(rest, line_number);
      if (section == Section::kText) {
        attach_labels_to_text();
        text_statements_.push_back(std::move(s));
      } else {
        attach_labels_to_data();
        data_statements_.push_back(std::move(s));
      }
    }
    // Trailing labels bind to the end of their section.
    attach_labels_to_text();
    attach_labels_to_data();
  }

  // Labels seen before any statement of a section bind to the next statement
  // in that section; flush when the section switches.
  void flush_labels(Section) {}

  void attach_labels_to_text() {
    for (auto& [name, section, line] : pending_labels_) {
      if (section == Section::kText)
        text_labels_.emplace_back(name, static_cast<std::uint32_t>(text_statements_.size()));
    }
    drop_pending(Section::kText);
  }

  void attach_labels_to_data() {
    for (auto& [name, section, line] : pending_labels_) {
      if (section == Section::kData)
        data_labels_.emplace_back(name, static_cast<std::uint32_t>(data_statements_.size()));
    }
    drop_pending(Section::kData);
  }

  void drop_pending(Section section) {
    std::vector<std::tuple<std::string, Section, int>> keep;
    for (auto& entry : pending_labels_) {
      if (std::get<1>(entry) != section) keep.push_back(std::move(entry));
    }
    pending_labels_ = std::move(keep);
  }

  void layout() {
    // Text addresses.
    std::uint32_t address = image_.text_base;
    std::vector<std::uint32_t> stmt_addr;
    for (Statement& s : text_statements_) {
      s.address = address;
      stmt_addr.push_back(address);
      address += statement_size(s) * 4;
    }
    stmt_addr.push_back(address);
    for (const auto& [name, index] : text_labels_) {
      define_symbol(name, stmt_addr[index]);
    }

    // Data: emit now (data layout is independent of label addresses), noting
    // addresses of data labels as we go.
    std::map<std::uint32_t, std::vector<std::string>> labels_at;
    for (const auto& [name, index] : data_labels_) labels_at[index].push_back(name);
    for (std::uint32_t i = 0; i <= data_statements_.size(); ++i) {
      auto it = labels_at.find(i);
      if (it != labels_at.end()) {
        while (image_.data.size() % 4 != 0) image_.data.push_back(0);
        for (const std::string& name : it->second) {
          define_symbol(name, image_.data_base + static_cast<std::uint32_t>(image_.data.size()));
        }
      }
      if (i < data_statements_.size()) emit_data(data_statements_[i]);
    }
  }

  void define_symbol(const std::string& name, std::uint32_t address) {
    if (!image_.symbols.emplace(name, address).second) {
      throw CicError("duplicate label: " + name);
    }
  }

  void emit_data(const Statement& s) {
    if (s.mnemonic == ".word") {
      while (image_.data.size() % 4 != 0) image_.data.push_back(0);
      for (const std::string& op : s.operands) {
        std::int64_t v = 0;
        if (!support::parse_int(op, &v)) fail(s.line, "bad .word value '" + op + "'");
        const auto w = static_cast<std::uint32_t>(v);
        image_.data.push_back(static_cast<std::uint8_t>(w));
        image_.data.push_back(static_cast<std::uint8_t>(w >> 8));
        image_.data.push_back(static_cast<std::uint8_t>(w >> 16));
        image_.data.push_back(static_cast<std::uint8_t>(w >> 24));
      }
    } else if (s.mnemonic == ".byte") {
      for (const std::string& op : s.operands) {
        std::int64_t v = 0;
        if (!support::parse_int(op, &v)) fail(s.line, "bad .byte value '" + op + "'");
        image_.data.push_back(static_cast<std::uint8_t>(v));
      }
    } else if (s.mnemonic == ".asciiz") {
      if (s.operands.size() != 1 || s.operands[0].size() < 2 || s.operands[0].front() != '"' ||
          s.operands[0].back() != '"')
        fail(s.line, ".asciiz requires one quoted string");
      for (std::size_t i = 1; i + 1 < s.operands[0].size(); ++i)
        image_.data.push_back(static_cast<std::uint8_t>(s.operands[0][i]));
      image_.data.push_back(0);
    } else if (s.mnemonic == ".space") {
      std::int64_t v = 0;
      if (s.operands.size() != 1 || !support::parse_int(s.operands[0], &v) || v < 0)
        fail(s.line, ".space requires a non-negative size");
      image_.data.insert(image_.data.end(), static_cast<std::size_t>(v), 0);
    } else {
      fail(s.line, "unknown data directive '" + s.mnemonic + "'");
    }
  }

  std::uint32_t symbol_or_value(const std::string& text, int line) const {
    auto it = image_.symbols.find(text);
    if (it != image_.symbols.end()) return it->second;
    std::int64_t v = 0;
    if (!support::parse_int(text, &v)) fail(line, "unknown symbol '" + text + "'");
    return static_cast<std::uint32_t>(v);
  }

  std::int32_t imm_or_fail(const std::string& text, int line) const {
    std::int64_t v = 0;
    if (!support::parse_int(text, &v)) {
      // Allow symbols as immediates (e.g. lui of a symbol's high half is rare
      // in hand-written code; labels mostly appear in branches).
      auto it = image_.symbols.find(text);
      if (it == image_.symbols.end()) fail(line, "bad immediate '" + text + "'");
      return static_cast<std::int32_t>(it->second);
    }
    return static_cast<std::int32_t>(v);
  }

  std::uint16_t branch_offset(const std::string& target, std::uint32_t branch_addr,
                              int line) const {
    std::int64_t delta;
    auto it = image_.symbols.find(target);
    if (it != image_.symbols.end()) {
      delta = (static_cast<std::int64_t>(it->second) - branch_addr - 4) / 4;
    } else {
      std::int64_t v = 0;
      if (!support::parse_int(target, &v)) fail(line, "unknown branch target '" + target + "'");
      delta = v / 4;  // numeric byte offset relative to PC+4
    }
    if (delta < -32768 || delta > 32767) fail(line, "branch target out of range");
    return static_cast<std::uint16_t>(delta);
  }

  // Parses "off($base)" into {offset, base}.
  std::pair<std::int32_t, unsigned> mem_operand(const std::string& text, int line) const {
    const std::size_t open = text.find('(');
    const std::size_t close = text.find(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      fail(line, "bad memory operand '" + text + "'");
    const std::string offset_text(support::trim(std::string_view(text).substr(0, open)));
    const unsigned base =
        parse_reg_or_fail(std::string_view(text).substr(open + 1, close - open - 1), line);
    std::int32_t offset = 0;
    if (!offset_text.empty()) {
      std::int64_t v = 0;
      if (!support::parse_int(offset_text, &v)) fail(line, "bad offset '" + offset_text + "'");
      offset = static_cast<std::int32_t>(v);
    }
    return {offset, base};
  }

  void encode() {
    for (const Statement& s : text_statements_) {
      if (encode_pseudo(s)) continue;
      auto m = isa::mnemonic_by_name(s.mnemonic);
      if (!m) fail(s.line, "unknown instruction '" + s.mnemonic + "'");
      encode_hw(*m, s);
    }
  }

  void want_ops(const Statement& s, std::size_t n) {
    if (s.operands.size() != n)
      fail(s.line, s.mnemonic + " expects " + std::to_string(n) + " operand(s)");
  }

  bool encode_pseudo(const Statement& s) {
    const auto& ops = s.operands;
    if (s.mnemonic == "nop") {
      emit(0);
      return true;
    }
    if (s.mnemonic == "move") {
      want_ops(s, 2);
      emit(isa::encode_r(Mnemonic::kAddu, parse_reg_or_fail(ops[0], s.line),
                         parse_reg_or_fail(ops[1], s.line), isa::kZero));
      return true;
    }
    if (s.mnemonic == "li" || s.mnemonic == "la") {
      want_ops(s, 2);
      const unsigned rt = parse_reg_or_fail(ops[0], s.line);
      const std::uint32_t value = s.mnemonic == "la"
                                      ? symbol_or_value(ops[1], s.line)
                                      : static_cast<std::uint32_t>(imm_or_fail(ops[1], s.line));
      emit(isa::encode_i(Mnemonic::kLui, rt, 0, static_cast<std::uint16_t>(value >> 16)));
      emit(isa::encode_i(Mnemonic::kOri, rt, rt, static_cast<std::uint16_t>(value & 0xFFFFU)));
      return true;
    }
    if (s.mnemonic == "b") {
      want_ops(s, 1);
      emit(isa::encode_i(Mnemonic::kBeq, 0, 0, branch_offset(ops[0], s.address, s.line)));
      return true;
    }
    if (s.mnemonic == "beqz" || s.mnemonic == "bnez") {
      want_ops(s, 2);
      const unsigned rs = parse_reg_or_fail(ops[0], s.line);
      const Mnemonic m = s.mnemonic == "beqz" ? Mnemonic::kBeq : Mnemonic::kBne;
      emit(isa::encode_i(m, 0, rs, branch_offset(ops[1], s.address, s.line)));
      return true;
    }
    if (s.mnemonic == "blt" || s.mnemonic == "bge" || s.mnemonic == "bgt" ||
        s.mnemonic == "ble") {
      want_ops(s, 3);
      unsigned rs = parse_reg_or_fail(ops[0], s.line);
      unsigned rt = parse_reg_or_fail(ops[1], s.line);
      if (s.mnemonic == "bgt" || s.mnemonic == "ble") std::swap(rs, rt);
      emit(isa::encode_r(Mnemonic::kSlt, isa::kAt, rs, rt));
      const Mnemonic m = (s.mnemonic == "blt" || s.mnemonic == "bgt") ? Mnemonic::kBne
                                                                      : Mnemonic::kBeq;
      // The branch is the second instruction of the pair.
      emit(isa::encode_i(m, 0, isa::kAt, branch_offset(ops[2], s.address + 4, s.line)));
      return true;
    }
    return false;
  }

  void encode_hw(Mnemonic m, const Statement& s) {
    const isa::OpcodeInfo& row = isa::info(m);
    const auto& ops = s.operands;
    auto reg = [&](std::size_t i) { return parse_reg_or_fail(ops[i], s.line); };
    switch (row.operands) {
      case OperandPattern::kRdRsRt:
        want_ops(s, 3);
        emit(isa::encode_r(m, reg(0), reg(1), reg(2)));
        break;
      case OperandPattern::kRdRtShamt: {
        want_ops(s, 3);
        const std::int32_t shamt = imm_or_fail(ops[2], s.line);
        if (shamt < 0 || shamt > 31) fail(s.line, "shift amount out of range");
        emit(isa::encode_r(m, reg(0), 0, reg(1), static_cast<unsigned>(shamt)));
        break;
      }
      case OperandPattern::kRdRtRs:
        want_ops(s, 3);
        emit(isa::encode_r(m, reg(0), reg(2), reg(1)));
        break;
      case OperandPattern::kRs:
        want_ops(s, 1);
        emit(isa::encode_r(m, 0, reg(0), 0));
        break;
      case OperandPattern::kRdRs:
        want_ops(s, 2);
        emit(isa::encode_r(m, reg(0), reg(1), 0));
        break;
      case OperandPattern::kRd:
        want_ops(s, 1);
        emit(isa::encode_r(m, reg(0), 0, 0));
        break;
      case OperandPattern::kRsRt:
        want_ops(s, 2);
        emit(isa::encode_r(m, 0, reg(0), reg(1)));
        break;
      case OperandPattern::kRtRsImm: {
        want_ops(s, 3);
        const std::int32_t imm = imm_or_fail(ops[2], s.line);
        if (imm < -32768 || imm > 65535) fail(s.line, "immediate out of range");
        emit(isa::encode_i(m, reg(0), reg(1), static_cast<std::uint16_t>(imm)));
        break;
      }
      case OperandPattern::kRsRtLabel:
        want_ops(s, 3);
        emit(isa::encode_i(m, reg(1), reg(0), branch_offset(ops[2], s.address, s.line)));
        break;
      case OperandPattern::kRsLabel:
        want_ops(s, 2);
        emit(isa::encode_i(m, 0, reg(0), branch_offset(ops[1], s.address, s.line)));
        break;
      case OperandPattern::kRtImm: {
        want_ops(s, 2);
        const std::int32_t imm = imm_or_fail(ops[1], s.line);
        if (imm < 0 || imm > 65535) fail(s.line, "lui immediate out of range");
        emit(isa::encode_i(m, reg(0), 0, static_cast<std::uint16_t>(imm)));
        break;
      }
      case OperandPattern::kRtOffBase: {
        want_ops(s, 2);
        const auto [offset, base] = mem_operand(ops[1], s.line);
        if (offset < -32768 || offset > 32767) fail(s.line, "memory offset out of range");
        emit(isa::encode_i(m, reg(0), base, static_cast<std::uint16_t>(offset)));
        break;
      }
      case OperandPattern::kLabel: {
        want_ops(s, 1);
        const std::uint32_t target = symbol_or_value(ops[0], s.line);
        if ((target & 3U) != 0) fail(s.line, "jump target must be word aligned");
        emit(isa::encode_j(m, target >> 2));
        break;
      }
      case OperandPattern::kNone:
        want_ops(s, 0);
        emit(isa::encode_r(m, 0, 0, 0));
        break;
    }
  }

  void emit(std::uint32_t word) { image_.text.push_back(word); }

  std::string_view source_;
  Image image_;
  std::vector<Statement> text_statements_;
  std::vector<Statement> data_statements_;
  std::vector<std::pair<std::string, std::uint32_t>> text_labels_;  // name -> stmt index
  std::vector<std::pair<std::string, std::uint32_t>> data_labels_;
  std::vector<std::tuple<std::string, Section, int>> pending_labels_;
};

}  // namespace

Image assemble(std::string_view source) { return Assembler(source).run(); }

}  // namespace cicmon::casm_
