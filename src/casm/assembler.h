// Text assembler front end.
//
// Assembles a MIPS-flavoured assembly dialect into an Image. Supported
// syntax:
//
//   .text / .data            section switches
//   label:                   labels (text or data)
//   .word  v, v, ...         32-bit data values
//   .byte  v, v, ...         8-bit data values
//   .asciiz "text"           NUL-terminated string
//   .space N                 N zero bytes
//   addu $rd, $rs, $rt       hardware instructions (full opcode catalogue)
//   beq  $rs, $rt, label     branch targets as labels or numeric offsets
//   li / la / move / nop / b / beqz / bnez   common pseudo-instructions
//   # comment, // comment
//
// Errors are reported with 1-based line numbers via CicError.
#pragma once

#include <string_view>

#include "casm/image.h"

namespace cicmon::casm_ {

Image assemble(std::string_view source);

}  // namespace cicmon::casm_
