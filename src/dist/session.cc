#include "dist/session.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "support/error.h"
#include "support/json.h"

namespace cicmon::dist {
namespace {

const char* type_name(SessionMessage::Type type) {
  switch (type) {
    case SessionMessage::Type::kHello: return "hello";
    case SessionMessage::Type::kGoldenOffer: return "golden_offer";
    case SessionMessage::Type::kGoldenAck: return "golden_ack";
    case SessionMessage::Type::kReady: return "ready";
    case SessionMessage::Type::kAssign: return "assign";
    case SessionMessage::Type::kDone: return "done";
    case SessionMessage::Type::kError: return "error";
    case SessionMessage::Type::kShutdown: return "shutdown";
  }
  return "?";
}

void encode_shard(support::JsonWriter& json, const exp::Shard& shard) {
  json.key("shard");
  json.value_u64(shard.index);
  json.key("shard_count");
  json.value_u64(shard.count);
}

exp::Shard decode_shard(const support::JsonValue& root) {
  exp::Shard shard;
  shard.index = static_cast<unsigned>(root.at("shard").as_u64());
  shard.count = static_cast<unsigned>(root.at("shard_count").as_u64());
  support::check(shard.count >= 1 && shard.index >= 1 && shard.index <= shard.count,
                 "session record has invalid shard coordinates");
  return shard;
}

std::string finish(support::JsonWriter& json) {
  json.end_object();
  return json.take();
}

support::JsonWriter begin(const char* type) {
  support::JsonWriter json;
  json.begin_object();
  json.key("type");
  json.value(type);
  return json;
}

// The deterministic worker-death hook (see serve_worker's contract). Returns
// only when this assignment is not the sabotage target; otherwise the
// process dies mid-record and never comes back.
void maybe_die_mid_record(const exp::Shard& shard) {
  const char* target = std::getenv("CICMON_WORKER_FLAKY");
  const char* marker_dir = std::getenv("CICMON_WORKER_FLAKY_MARKER");
  if (target == nullptr || marker_dir == nullptr) return;
  const std::string text = std::to_string(shard.index) + "/" + std::to_string(shard.count);
  if (text != target) return;
  std::error_code ec;
  std::filesystem::create_directories(marker_dir, ec);
  const std::string marker = std::string(marker_dir) + "/" + std::to_string(shard.index) +
                             "of" + std::to_string(shard.count);
  // O_EXCL: only the first worker to reach the shard sabotages; the retry
  // (and every later run against the same marker directory) behaves.
  const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return;
  ::close(fd);
  const std::string frame = support::wire_frame(encode_done(shard, "", false, 0));
  support::write_all(STDOUT_FILENO, std::string_view(frame).substr(0, frame.size() / 2));
  ::raise(SIGKILL);
}

// The deterministic mid-golden-chunk death hook: the first worker (across
// every process sharing the marker directory) to have a golden chunk in hand
// dies on the spot, so the orchestrator's chunk write or its wait for the
// ready record fails and the session teardown/retry path runs for real.
void maybe_die_mid_golden_chunk() {
  const char* flag = std::getenv("CICMON_WORKER_FLAKY_GOLDEN");
  const char* marker_dir = std::getenv("CICMON_WORKER_FLAKY_MARKER");
  if (flag == nullptr || marker_dir == nullptr || std::strcmp(flag, "1") != 0) return;
  std::error_code ec;
  std::filesystem::create_directories(marker_dir, ec);
  const std::string marker = std::string(marker_dir) + "/golden";
  const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return;
  ::close(fd);
  ::raise(SIGKILL);
}

// Blocking frame reads over this process's stdin, for the worker side.
// kRecord hands back one complete payload; kEof is a clean end of input
// (call has_partial() to tell orderly close from mid-record death); kDead
// covers framing violations and read errors, already reported on stderr.
class StdinFrames {
 public:
  enum class Status : std::uint8_t { kRecord, kEof, kDead };

  Status next(std::string* payload) {
    char buffer[4096];
    while (true) {
      std::string error;
      const support::FrameReader::Status status = reader_.next(payload, &error);
      if (status == support::FrameReader::Status::kBad) {
        std::fprintf(stderr, "cicmon worker: bad frame from orchestrator: %s\n",
                     error.c_str());
        return Status::kDead;
      }
      if (status == support::FrameReader::Status::kFrame) return Status::kRecord;
      const ssize_t got = ::read(STDIN_FILENO, buffer, sizeof buffer);
      if (got < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "cicmon worker: read failed: %s\n", std::strerror(errno));
        return Status::kDead;
      }
      if (got == 0) return Status::kEof;
      reader_.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
    }
  }

  bool has_partial() const { return reader_.has_partial(); }

 private:
  support::FrameReader reader_;
};

}  // namespace

std::string encode_hello(const std::string& sweep, const std::string& golden_key) {
  support::JsonWriter json = begin("hello");
  json.key("protocol");
  json.value_u64(kSessionProtocolVersion);
  json.key("sweep");
  json.value(sweep);
  json.key("golden_key");
  json.value(golden_key);
  return finish(json);
}

std::string encode_golden_offer(const std::string& key, std::uint64_t bytes,
                                std::uint64_t chunks) {
  support::JsonWriter json = begin("golden_offer");
  json.key("key");
  json.value(key);
  json.key("bytes");
  json.value_u64(bytes);
  json.key("chunks");
  json.value_u64(chunks);
  return finish(json);
}

std::string encode_golden_ack(bool accept) {
  support::JsonWriter json = begin("golden_ack");
  json.key("accept");
  json.value(accept);
  return finish(json);
}

std::string encode_ready(const exp::SweepSpec& spec, const std::string& golden_source) {
  support::JsonWriter json = begin("ready");
  json.key("sweep");
  json.value(spec.sweep);
  json.key("cells");
  json.value_u64(spec.cells);
  json.key("params");
  json.begin_object();
  for (const auto& [name, value] : spec.params) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("golden");
  json.value(golden_source);
  return finish(json);
}

std::string encode_assign(const exp::Shard& shard, const std::string& out, bool force) {
  support::JsonWriter json = begin("assign");
  encode_shard(json, shard);
  json.key("out");
  json.value(out);
  json.key("force");
  json.value(force);
  return finish(json);
}

std::string encode_done(const exp::Shard& shard, const std::string& out, bool reused,
                        std::uint64_t wall_ms,
                        const std::vector<std::pair<std::string, std::uint64_t>>& metrics) {
  support::JsonWriter json = begin("done");
  encode_shard(json, shard);
  json.key("out");
  json.value(out);
  json.key("reused");
  json.value(reused);
  json.key("wall_ms");
  json.value_u64(wall_ms);
  if (!metrics.empty()) {
    json.key("metrics");
    json.begin_object();
    for (const auto& [name, value] : metrics) {
      json.key(name);
      json.value_u64(value);
    }
    json.end_object();
  }
  return finish(json);
}

std::string encode_session_error(const exp::Shard& shard, const std::string& message) {
  support::JsonWriter json = begin("error");
  encode_shard(json, shard);
  json.key("message");
  json.value(message);
  return finish(json);
}

std::string encode_shutdown() {
  support::JsonWriter json = begin("shutdown");
  return finish(json);
}

SessionMessage decode_session_message(std::string_view payload) {
  support::JsonValue root;
  try {
    root = support::parse_json(payload);
  } catch (const support::CicError& error) {
    throw support::CicError(std::string("session record is not valid JSON: ") + error.what());
  }
  SessionMessage msg;
  const std::string& type = root.at("type").as_string();
  if (type == "hello") {
    msg.type = SessionMessage::Type::kHello;
    msg.protocol = root.at("protocol").as_u64();
    msg.sweep = root.at("sweep").as_string();
    msg.golden_key = root.at("golden_key").as_string();
  } else if (type == "golden_offer") {
    msg.type = SessionMessage::Type::kGoldenOffer;
    msg.offer_key = root.at("key").as_string();
    msg.golden_bytes = root.at("bytes").as_u64();
    msg.golden_chunks = root.at("chunks").as_u64();
    support::check(msg.offer_key.empty() == (msg.golden_chunks == 0),
                   "golden_offer key and chunk count disagree");
  } else if (type == "golden_ack") {
    msg.type = SessionMessage::Type::kGoldenAck;
    msg.accept = root.at("accept").as_bool();
  } else if (type == "ready") {
    msg.type = SessionMessage::Type::kReady;
    msg.sweep = root.at("sweep").as_string();
    msg.cells = root.at("cells").as_u64();
    for (const auto& [name, value] : root.at("params").as_object()) {
      msg.params.emplace_back(name, value.as_string());
    }
    msg.golden_source = root.at("golden").as_string();
  } else if (type == "assign") {
    msg.type = SessionMessage::Type::kAssign;
    msg.shard = decode_shard(root);
    msg.artifact_path = root.at("out").as_string();
    msg.force = root.at("force").as_bool();
  } else if (type == "done") {
    msg.type = SessionMessage::Type::kDone;
    msg.shard = decode_shard(root);
    msg.artifact_path = root.at("out").as_string();
    msg.reused = root.at("reused").as_bool();
    msg.wall_ms = root.at("wall_ms").as_u64();
    // Additive v2 field: absent in records from pre-telemetry peers.
    if (const support::JsonValue* metrics = root.find("metrics")) {
      for (const auto& [name, value] : metrics->as_object()) {
        msg.metrics.emplace_back(name, value.as_u64());
      }
    }
  } else if (type == "error") {
    msg.type = SessionMessage::Type::kError;
    msg.shard = decode_shard(root);
    msg.message = root.at("message").as_string();
  } else if (type == "shutdown") {
    msg.type = SessionMessage::Type::kShutdown;
  } else {
    throw support::CicError("unknown session record type '" + type + "'");
  }
  return msg;
}

std::string hello_mismatch(const SessionMessage& hello, const exp::SweepSpec& spec) {
  if (hello.protocol != kSessionProtocolVersion) {
    return "worker speaks session protocol v" + std::to_string(hello.protocol) +
           ", this orchestrator speaks v" + std::to_string(kSessionProtocolVersion);
  }
  if (hello.sweep != spec.sweep) {
    return "worker serves sweep '" + hello.sweep + "', expected '" + spec.sweep + "'";
  }
  return "";
}

std::string ready_mismatch(const SessionMessage& ready, const exp::SweepSpec& spec) {
  if (ready.sweep != spec.sweep) {
    return "worker derived sweep '" + ready.sweep + "', expected '" + spec.sweep + "'";
  }
  if (ready.cells != spec.cells) {
    return "worker derived " + std::to_string(ready.cells) + " cells, expected " +
           std::to_string(spec.cells);
  }
  if (ready.params != spec.params) {
    return "worker derived different sweep parameters (flag round-trip mismatch)";
  }
  return "";
}

GoldenShipment make_golden_shipment(std::string key, std::string_view blob) {
  GoldenShipment shipment;
  shipment.key = std::move(key);
  shipment.bytes = blob.size();
  for (const std::string& payload : support::chunk_payloads(blob)) {
    shipment.frames.push_back(support::wire_frame(payload));
  }
  return shipment;
}

// --- worker side ---------------------------------------------------------

int serve_worker(const WorkerSweepSource& source, unsigned jobs) {
  if (!support::write_all(STDOUT_FILENO,
                          support::wire_frame(encode_hello(source.sweep, source.golden_key)))) {
    std::fprintf(stderr, "cicmon worker: cannot write the hello record\n");
    return 1;
  }
  StdinFrames frames;
  std::string payload;

  // Golden exchange: offer, ack, then exactly offer.chunks chunk frames.
  StdinFrames::Status status = frames.next(&payload);
  if (status == StdinFrames::Status::kDead) return 1;
  if (status == StdinFrames::Status::kEof) {
    if (frames.has_partial()) {
      std::fprintf(stderr, "cicmon worker: orchestrator died mid-record\n");
      return 1;
    }
    return 0;  // orchestrator left before offering anything; nothing lost
  }
  SessionMessage offer;
  try {
    offer = decode_session_message(payload);
  } catch (const support::CicError& err) {
    std::fprintf(stderr, "cicmon worker: %s\n", err.what());
    return 1;
  }
  if (offer.type == SessionMessage::Type::kShutdown) return 0;
  if (offer.type != SessionMessage::Type::kGoldenOffer) {
    std::fprintf(stderr, "cicmon worker: expected golden_offer, got %s\n",
                 type_name(offer.type));
    return 1;
  }
  const bool accept = !source.golden_key.empty() && offer.offer_key == source.golden_key &&
                      offer.golden_chunks > 0;
  if (!support::write_all(STDOUT_FILENO, support::wire_frame(encode_golden_ack(accept)))) {
    std::fprintf(stderr, "cicmon worker: orchestrator went away\n");
    return 1;
  }
  std::string shipped;
  bool have_shipped = false;
  if (accept) {
    // Drain every promised chunk even if one is corrupt: the stream position
    // must stay in sync for the records that follow. Corruption downgrades
    // to local derivation, it does not kill the session.
    support::ChunkAssembler assembler;
    std::string chunk_error;
    for (std::uint64_t i = 0; i < offer.golden_chunks; ++i) {
      status = frames.next(&payload);
      if (status != StdinFrames::Status::kRecord) {
        if (status == StdinFrames::Status::kEof) {
          std::fprintf(stderr, "cicmon worker: orchestrator went away mid-golden-chunk\n");
        }
        return 1;
      }
      if (!payload.starts_with(support::kChunkMagic)) {
        // A session record where a chunk was promised: the streams are out
        // of sync and nothing after this point can be trusted.
        std::fprintf(stderr, "cicmon worker: expected a golden chunk, got another record\n");
        return 1;
      }
      maybe_die_mid_golden_chunk();
      if (chunk_error.empty()) {
        std::string err;
        if (assembler.feed(payload, &err) == support::ChunkAssembler::Status::kBad) {
          chunk_error = err;
        }
      }
    }
    if (chunk_error.empty()) {
      shipped = assembler.blob();
      have_shipped = true;
    } else {
      std::fprintf(stderr, "cicmon worker: golden shipment rejected (%s); deriving locally\n",
                   chunk_error.c_str());
    }
  }

  // Derivation: import the shipped state or fall back to doing the work.
  std::string golden_source;
  exp::SweepSpec spec;
  try {
    spec = source.derive(have_shipped ? &shipped : nullptr, &golden_source);
  } catch (const support::CicError& err) {
    std::fprintf(stderr, "cicmon worker: cannot derive the sweep: %s\n", err.what());
    return 1;
  }
  if (!support::write_all(STDOUT_FILENO,
                          support::wire_frame(encode_ready(spec, golden_source)))) {
    std::fprintf(stderr, "cicmon worker: orchestrator went away\n");
    return 1;
  }

  // Serve assignments until shutdown or EOF.
  std::size_t served = 0;
  while (true) {
    status = frames.next(&payload);
    if (status == StdinFrames::Status::kDead) return 1;
    if (status == StdinFrames::Status::kEof) {
      // Orchestrator closed our stdin: the clean "no more work" signal.
      if (frames.has_partial()) {
        std::fprintf(stderr, "cicmon worker: orchestrator died mid-record\n");
        return 1;
      }
      return 0;
    }
    SessionMessage msg;
    try {
      msg = decode_session_message(payload);
    } catch (const support::CicError& err) {
      std::fprintf(stderr, "cicmon worker: %s\n", err.what());
      return 1;
    }
    if (msg.type == SessionMessage::Type::kShutdown) {
      std::fprintf(stderr, "cicmon worker: served %zu shard(s), shutting down\n", served);
      return 0;
    }
    if (msg.type != SessionMessage::Type::kAssign) {
      std::fprintf(stderr, "cicmon worker: unexpected %s record\n", type_name(msg.type));
      return 1;
    }
    maybe_die_mid_record(msg.shard);
    std::string ack;
    try {
      bool reused = false;
      // Per-assignment counter deltas ride the done record so the
      // orchestrator can fold worker-side engine/campaign activity into its
      // fleet totals. All parallel work joins inside run_or_load_shard, so
      // the after-snapshot observes every bump from this assignment.
      const std::vector<std::uint64_t> before = obs::counter_values();
      const auto started = std::chrono::steady_clock::now();
      exp::run_or_load_shard(spec, msg.shard, jobs, msg.artifact_path, msg.force, &reused);
      const auto wall = std::chrono::steady_clock::now() - started;
      const auto wall_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(wall).count());
      ack = encode_done(msg.shard, msg.artifact_path, reused, wall_ms,
                        obs::counter_delta(before));
      ++served;
    } catch (const support::CicError& err) {
      // A shard-level failure is the orchestrator's retry decision, not a
      // reason to lose the session (and the golden state it amortises).
      ack = encode_session_error(msg.shard, err.what());
    }
    if (!support::write_all(STDOUT_FILENO, support::wire_frame(ack))) {
      std::fprintf(stderr, "cicmon worker: orchestrator went away\n");
      return 1;
    }
  }
}

// --- orchestrator side -----------------------------------------------------

WorkerSession::WorkerSession(support::ChildProcess child, const GoldenShipment* golden,
                             Clock::time_point deadline, double grace_seconds)
    : child_(std::move(child)), golden_(golden), deadline_(deadline),
      grace_seconds_(grace_seconds) {}

WorkItem WorkerSession::take_item() {
  support::check(has_item_, "take_item on a session with no assignment");
  has_item_ = false;
  return std::move(item_);
}

bool WorkerSession::assign(WorkItem& item, bool force, Clock::time_point deadline) {
  support::check(state_ == State::kIdle, "assign on a session that is not idle");
  const std::string frame =
      support::wire_frame(encode_assign(item.shard, item.artifact_path, force));
  if (!support::write_all(child_.stdin_fd(), frame)) {
    // The pipe is gone; `item` is untouched and stays with the caller.
    // Reap quietly — the process is dead or dying.
    child_.terminate_gracefully(grace_seconds_);
    state_ = State::kDead;
    return false;
  }
  item_ = std::move(item);
  has_item_ = true;
  deadline_ = deadline;
  state_ = State::kBusy;
  return true;
}

WorkerSession::Event WorkerSession::fail(std::string reason) {
  if (child_.valid()) {
    const int status = child_.terminate_gracefully(grace_seconds_);
    reason += " (" + support::describe_exit(status) + ")";
  }
  state_ = State::kDead;
  Event event;
  event.kind = Event::Kind::kFailed;
  event.reason = std::move(reason);
  return event;
}

WorkerSession::Event WorkerSession::pump(const exp::SweepSpec& spec, Clock::time_point now) {
  if (state_ == State::kDead) return {};
  std::string bytes;
  const bool open = support::read_available(child_.stdout_fd(), &bytes);
  reader_.feed(bytes);

  std::string payload;
  std::string error;
  while (true) {
    const support::FrameReader::Status status = reader_.next(&payload, &error);
    if (status == support::FrameReader::Status::kBad) {
      return fail("protocol violation: " + error);
    }
    if (status == support::FrameReader::Status::kNeedMore) break;

    SessionMessage msg;
    try {
      msg = decode_session_message(payload);
    } catch (const support::CicError& err) {
      return fail(std::string("protocol violation: ") + err.what());
    }
    switch (state_) {
      case State::kHandshaking: {
        if (msg.type != SessionMessage::Type::kHello) {
          return fail(std::string("expected hello, got ") + type_name(msg.type));
        }
        if (std::string why = hello_mismatch(msg, spec); !why.empty()) {
          return fail("handshake rejected: " + std::move(why));
        }
        // Offer the shipment only when the worker computes the same canonical
        // key: skew (different binary, different flags) downgrades to local
        // derivation on the worker's side of the wire.
        offered_ = golden_ != nullptr && !golden_->empty() && !msg.golden_key.empty() &&
                   msg.golden_key == golden_->key;
        const std::string frame = support::wire_frame(
            offered_ ? encode_golden_offer(golden_->key, golden_->bytes,
                                           golden_->frames.size())
                     : encode_golden_offer("", 0, 0));
        if (!support::write_all(child_.stdin_fd(), frame)) {
          return fail("worker went away before the golden offer");
        }
        state_ = State::kShipping;
        continue;  // the ack may already be buffered
      }
      case State::kShipping: {
        if (msg.type != SessionMessage::Type::kGoldenAck) {
          return fail(std::string("expected golden_ack, got ") + type_name(msg.type));
        }
        if (msg.accept) {
          if (!offered_) {
            return fail("worker accepted an empty golden offer");
          }
          // Blocking writes: the whole shipment streams here. A worker that
          // dies mid-stream surfaces as a failed write (EPIPE) and the
          // session is torn down with nothing in flight.
          for (const std::string& frame : golden_->frames) {
            if (!support::write_all(child_.stdin_fd(), frame)) {
              return fail("worker died mid-golden-chunk");
            }
          }
        }
        state_ = State::kDeriving;
        continue;
      }
      case State::kDeriving: {
        if (msg.type != SessionMessage::Type::kReady) {
          return fail(std::string("expected ready, got ") + type_name(msg.type));
        }
        if (std::string why = ready_mismatch(msg, spec); !why.empty()) {
          return fail("handshake rejected: " + std::move(why));
        }
        state_ = State::kIdle;
        deadline_ = Clock::time_point::max();  // idle has no deadline; assign() sets one
        Event event;
        event.kind = Event::Kind::kReady;
        event.golden = msg.golden_source;
        return event;  // leftover buffered frames (babble) surface next pump
      }
      case State::kIdle:
        return fail(std::string("unexpected ") + type_name(msg.type) +
                    " record from an idle worker");
      case State::kBusy: {
        if (msg.type == SessionMessage::Type::kDone || msg.type == SessionMessage::Type::kError) {
          if (msg.shard.index != item_.shard.index || msg.shard.count != item_.shard.count) {
            return fail(std::string(type_name(msg.type)) + " ack for shard " +
                            std::to_string(msg.shard.index) + "/" +
                            std::to_string(msg.shard.count) + ", expected " +
                            std::to_string(item_.shard.index) + "/" +
                            std::to_string(item_.shard.count));
          }
          state_ = State::kIdle;
          deadline_ = Clock::time_point::max();  // the assignment's deadline dies with it
          Event event;
          if (msg.type == SessionMessage::Type::kDone) {
            event.kind = Event::Kind::kDone;
            event.reused = msg.reused;
            event.wall_ms = msg.wall_ms;
            event.metrics = std::move(msg.metrics);
          } else {
            event.kind = Event::Kind::kError;
            event.reason = "worker reported: " + msg.message;
          }
          return event;
        }
        return fail(std::string("expected done/error, got ") + type_name(msg.type));
      }
      case State::kDead:
        return {};
    }
  }

  if (!open) {
    // EOF after draining every complete frame: the worker is gone. A partial
    // frame left behind is the mid-record death signature.
    return fail(reader_.has_partial() ? "worker died mid-record"
                                     : "worker closed the session");
  }
  if (now >= deadline_) {
    return fail(pre_ready() ? "handshake timed out" : "assignment timed out");
  }
  return {};
}

void WorkerSession::shutdown(double grace_seconds) {
  if (state_ == State::kDead) return;
  if (child_.valid()) {
    if (state_ == State::kIdle || state_ == State::kBusy || state_ == State::kDeriving) {
      // A worker this far along is in (or headed for) the record loop, where
      // a shutdown record is the polite exit. Earlier phases get plain EOF —
      // a mid-chunk worker would read a record where a chunk was promised.
      support::write_all(child_.stdin_fd(), support::wire_frame(encode_shutdown()));
    }
    // One bounded budget, escalating: stdin EOF is the polite exit signal
    // (a healthy worker is gone in milliseconds), SIGTERM fires halfway
    // through the grace window, SIGKILL ends it. Never more than
    // `grace_seconds` of blocking per session, even for a wedged worker.
    child_.close_stdin();
    auto after = [](double seconds) {
      return std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(seconds));
    };
    const Clock::time_point start = Clock::now();
    const Clock::time_point term_at = start + after(grace_seconds / 2);
    const Clock::time_point kill_at = start + after(grace_seconds);
    int status = 0;
    bool exited = false;
    bool termed = false;
    while (!(exited = child_.poll(&status))) {
      const Clock::time_point now = Clock::now();
      if (now >= kill_at) break;
      if (!termed && now >= term_at) {
        child_.kill_soft();
        termed = true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!exited) {
      child_.kill_hard();
      child_.wait();
    }
  }
  state_ = State::kDead;
}

}  // namespace cicmon::dist
