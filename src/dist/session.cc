#include "dist/session.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "support/error.h"
#include "support/json.h"

namespace cicmon::dist {
namespace {

const char* type_name(SessionMessage::Type type) {
  switch (type) {
    case SessionMessage::Type::kHello: return "hello";
    case SessionMessage::Type::kAssign: return "assign";
    case SessionMessage::Type::kDone: return "done";
    case SessionMessage::Type::kError: return "error";
    case SessionMessage::Type::kShutdown: return "shutdown";
  }
  return "?";
}

void encode_shard(support::JsonWriter& json, const exp::Shard& shard) {
  json.key("shard");
  json.value_u64(shard.index);
  json.key("shard_count");
  json.value_u64(shard.count);
}

exp::Shard decode_shard(const support::JsonValue& root) {
  exp::Shard shard;
  shard.index = static_cast<unsigned>(root.at("shard").as_u64());
  shard.count = static_cast<unsigned>(root.at("shard_count").as_u64());
  support::check(shard.count >= 1 && shard.index >= 1 && shard.index <= shard.count,
                 "session record has invalid shard coordinates");
  return shard;
}

std::string finish(support::JsonWriter& json) {
  json.end_object();
  return json.take();
}

support::JsonWriter begin(const char* type) {
  support::JsonWriter json;
  json.begin_object();
  json.key("type");
  json.value(type);
  return json;
}

// The deterministic worker-death hook (see serve_worker's contract). Returns
// only when this assignment is not the sabotage target; otherwise the
// process dies mid-record and never comes back.
void maybe_die_mid_record(const exp::Shard& shard) {
  const char* target = std::getenv("CICMON_WORKER_FLAKY");
  const char* marker_dir = std::getenv("CICMON_WORKER_FLAKY_MARKER");
  if (target == nullptr || marker_dir == nullptr) return;
  const std::string text = std::to_string(shard.index) + "/" + std::to_string(shard.count);
  if (text != target) return;
  std::error_code ec;
  std::filesystem::create_directories(marker_dir, ec);
  const std::string marker = std::string(marker_dir) + "/" + std::to_string(shard.index) +
                             "of" + std::to_string(shard.count);
  // O_EXCL: only the first worker to reach the shard sabotages; the retry
  // (and every later run against the same marker directory) behaves.
  const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return;
  ::close(fd);
  const std::string frame = support::wire_frame(encode_done(shard, "", false));
  support::write_all(STDOUT_FILENO, std::string_view(frame).substr(0, frame.size() / 2));
  ::raise(SIGKILL);
}

}  // namespace

std::string encode_hello(const exp::SweepSpec& spec) {
  support::JsonWriter json = begin("hello");
  json.key("protocol");
  json.value_u64(kSessionProtocolVersion);
  json.key("sweep");
  json.value(spec.sweep);
  json.key("cells");
  json.value_u64(spec.cells);
  json.key("params");
  json.begin_object();
  for (const auto& [name, value] : spec.params) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  return finish(json);
}

std::string encode_assign(const exp::Shard& shard, const std::string& out, bool force) {
  support::JsonWriter json = begin("assign");
  encode_shard(json, shard);
  json.key("out");
  json.value(out);
  json.key("force");
  json.value(force);
  return finish(json);
}

std::string encode_done(const exp::Shard& shard, const std::string& out, bool reused) {
  support::JsonWriter json = begin("done");
  encode_shard(json, shard);
  json.key("out");
  json.value(out);
  json.key("reused");
  json.value(reused);
  return finish(json);
}

std::string encode_session_error(const exp::Shard& shard, const std::string& message) {
  support::JsonWriter json = begin("error");
  encode_shard(json, shard);
  json.key("message");
  json.value(message);
  return finish(json);
}

std::string encode_shutdown() {
  support::JsonWriter json = begin("shutdown");
  return finish(json);
}

SessionMessage decode_session_message(std::string_view payload) {
  support::JsonValue root;
  try {
    root = support::parse_json(payload);
  } catch (const support::CicError& error) {
    throw support::CicError(std::string("session record is not valid JSON: ") + error.what());
  }
  SessionMessage msg;
  const std::string& type = root.at("type").as_string();
  if (type == "hello") {
    msg.type = SessionMessage::Type::kHello;
    msg.protocol = root.at("protocol").as_u64();
    msg.sweep = root.at("sweep").as_string();
    msg.cells = root.at("cells").as_u64();
    for (const auto& [name, value] : root.at("params").as_object()) {
      msg.params.emplace_back(name, value.as_string());
    }
  } else if (type == "assign") {
    msg.type = SessionMessage::Type::kAssign;
    msg.shard = decode_shard(root);
    msg.artifact_path = root.at("out").as_string();
    msg.force = root.at("force").as_bool();
  } else if (type == "done") {
    msg.type = SessionMessage::Type::kDone;
    msg.shard = decode_shard(root);
    msg.artifact_path = root.at("out").as_string();
    msg.reused = root.at("reused").as_bool();
  } else if (type == "error") {
    msg.type = SessionMessage::Type::kError;
    msg.shard = decode_shard(root);
    msg.message = root.at("message").as_string();
  } else if (type == "shutdown") {
    msg.type = SessionMessage::Type::kShutdown;
  } else {
    throw support::CicError("unknown session record type '" + type + "'");
  }
  return msg;
}

std::string hello_mismatch(const SessionMessage& hello, const exp::SweepSpec& spec) {
  if (hello.protocol != kSessionProtocolVersion) {
    return "worker speaks session protocol v" + std::to_string(hello.protocol) +
           ", this orchestrator speaks v" + std::to_string(kSessionProtocolVersion);
  }
  if (hello.sweep != spec.sweep) {
    return "worker derived sweep '" + hello.sweep + "', expected '" + spec.sweep + "'";
  }
  if (hello.cells != spec.cells) {
    return "worker derived " + std::to_string(hello.cells) + " cells, expected " +
           std::to_string(spec.cells);
  }
  if (hello.params != spec.params) {
    return "worker derived different sweep parameters (flag round-trip mismatch)";
  }
  return "";
}

// --- worker side ---------------------------------------------------------

int serve_worker(const exp::SweepSpec& spec, unsigned jobs) {
  if (!support::write_all(STDOUT_FILENO, support::wire_frame(encode_hello(spec)))) {
    std::fprintf(stderr, "cicmon worker: cannot write the hello record\n");
    return 1;
  }
  support::FrameReader reader;
  char buffer[4096];
  std::size_t served = 0;
  while (true) {
    std::string payload;
    std::string error;
    const support::FrameReader::Status status = reader.next(&payload, &error);
    if (status == support::FrameReader::Status::kBad) {
      std::fprintf(stderr, "cicmon worker: bad frame from orchestrator: %s\n", error.c_str());
      return 1;
    }
    if (status == support::FrameReader::Status::kNeedMore) {
      const ssize_t got = ::read(STDIN_FILENO, buffer, sizeof buffer);
      if (got < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "cicmon worker: read failed: %s\n", std::strerror(errno));
        return 1;
      }
      if (got == 0) {
        // Orchestrator closed our stdin: the clean "no more work" signal.
        if (reader.has_partial()) {
          std::fprintf(stderr, "cicmon worker: orchestrator died mid-record\n");
          return 1;
        }
        return 0;
      }
      reader.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
      continue;
    }

    SessionMessage msg;
    try {
      msg = decode_session_message(payload);
    } catch (const support::CicError& err) {
      std::fprintf(stderr, "cicmon worker: %s\n", err.what());
      return 1;
    }
    if (msg.type == SessionMessage::Type::kShutdown) {
      std::fprintf(stderr, "cicmon worker: served %zu shard(s), shutting down\n", served);
      return 0;
    }
    if (msg.type != SessionMessage::Type::kAssign) {
      std::fprintf(stderr, "cicmon worker: unexpected %s record\n", type_name(msg.type));
      return 1;
    }
    maybe_die_mid_record(msg.shard);
    std::string ack;
    try {
      bool reused = false;
      exp::run_or_load_shard(spec, msg.shard, jobs, msg.artifact_path, msg.force, &reused);
      ack = encode_done(msg.shard, msg.artifact_path, reused);
      ++served;
    } catch (const support::CicError& err) {
      // A shard-level failure is the orchestrator's retry decision, not a
      // reason to lose the session (and the golden run it amortises).
      ack = encode_session_error(msg.shard, err.what());
    }
    if (!support::write_all(STDOUT_FILENO, support::wire_frame(ack))) {
      std::fprintf(stderr, "cicmon worker: orchestrator went away\n");
      return 1;
    }
  }
}

// --- orchestrator side -----------------------------------------------------

WorkerSession::WorkerSession(const std::vector<std::string>& argv, Clock::time_point deadline,
                             double grace_seconds)
    : child_(support::spawn_process_piped(argv)), deadline_(deadline),
      grace_seconds_(grace_seconds) {}

WorkItem WorkerSession::take_item() {
  support::check(has_item_, "take_item on a session with no assignment");
  has_item_ = false;
  return std::move(item_);
}

bool WorkerSession::assign(WorkItem& item, bool force, Clock::time_point deadline) {
  support::check(state_ == State::kIdle, "assign on a session that is not idle");
  const std::string frame =
      support::wire_frame(encode_assign(item.shard, item.artifact_path, force));
  if (!support::write_all(child_.stdin_fd(), frame)) {
    // The pipe is gone; `item` is untouched and stays with the caller.
    // Reap quietly — the process is dead or dying.
    child_.terminate_gracefully(grace_seconds_);
    state_ = State::kDead;
    return false;
  }
  item_ = std::move(item);
  has_item_ = true;
  deadline_ = deadline;
  state_ = State::kBusy;
  return true;
}

WorkerSession::Event WorkerSession::fail(std::string reason) {
  if (child_.valid()) {
    const int status = child_.terminate_gracefully(grace_seconds_);
    reason += " (" + support::describe_exit(status) + ")";
  }
  state_ = State::kDead;
  Event event;
  event.kind = Event::Kind::kFailed;
  event.reason = std::move(reason);
  return event;
}

WorkerSession::Event WorkerSession::pump(const exp::SweepSpec& spec, Clock::time_point now) {
  if (state_ == State::kDead) return {};
  std::string bytes;
  const bool open = support::read_available(child_.stdout_fd(), &bytes);
  reader_.feed(bytes);

  std::string payload;
  std::string error;
  while (true) {
    const support::FrameReader::Status status = reader_.next(&payload, &error);
    if (status == support::FrameReader::Status::kBad) {
      return fail("protocol violation: " + error);
    }
    if (status == support::FrameReader::Status::kNeedMore) break;

    SessionMessage msg;
    try {
      msg = decode_session_message(payload);
    } catch (const support::CicError& err) {
      return fail(std::string("protocol violation: ") + err.what());
    }
    switch (state_) {
      case State::kHandshaking: {
        if (msg.type != SessionMessage::Type::kHello) {
          return fail(std::string("expected hello, got ") + type_name(msg.type));
        }
        if (std::string why = hello_mismatch(msg, spec); !why.empty()) {
          return fail("handshake rejected: " + std::move(why));
        }
        state_ = State::kIdle;
        deadline_ = Clock::time_point::max();  // idle has no deadline; assign() sets one
        Event event;
        event.kind = Event::Kind::kReady;
        return event;  // leftover buffered frames (babble) surface next pump
      }
      case State::kIdle:
        return fail(std::string("unexpected ") + type_name(msg.type) +
                    " record from an idle worker");
      case State::kBusy: {
        if (msg.type == SessionMessage::Type::kDone || msg.type == SessionMessage::Type::kError) {
          if (msg.shard.index != item_.shard.index || msg.shard.count != item_.shard.count) {
            return fail(std::string(type_name(msg.type)) + " ack for shard " +
                            std::to_string(msg.shard.index) + "/" +
                            std::to_string(msg.shard.count) + ", expected " +
                            std::to_string(item_.shard.index) + "/" +
                            std::to_string(item_.shard.count));
          }
          state_ = State::kIdle;
          deadline_ = Clock::time_point::max();  // the assignment's deadline dies with it
          Event event;
          if (msg.type == SessionMessage::Type::kDone) {
            event.kind = Event::Kind::kDone;
            event.reused = msg.reused;
          } else {
            event.kind = Event::Kind::kError;
            event.reason = "worker reported: " + msg.message;
          }
          return event;
        }
        return fail(std::string("expected done/error, got ") + type_name(msg.type));
      }
      case State::kDead:
        return {};
    }
  }

  if (!open) {
    // EOF after draining every complete frame: the worker is gone. A partial
    // frame left behind is the mid-record death signature.
    return fail(reader_.has_partial() ? "worker died mid-record"
                                     : "worker closed the session");
  }
  if (now >= deadline_) {
    return fail(state_ == State::kHandshaking ? "handshake timed out"
                                            : "assignment timed out");
  }
  return {};
}

void WorkerSession::shutdown(double grace_seconds) {
  if (state_ == State::kDead) return;
  if (child_.valid()) {
    if (state_ != State::kHandshaking) {
      support::write_all(child_.stdin_fd(), support::wire_frame(encode_shutdown()));
    }
    // One bounded budget, escalating: stdin EOF is the polite exit signal
    // (a healthy worker is gone in milliseconds), SIGTERM fires halfway
    // through the grace window, SIGKILL ends it. Never more than
    // `grace_seconds` of blocking per session, even for a wedged worker.
    child_.close_stdin();
    auto after = [](double seconds) {
      return std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(seconds));
    };
    const Clock::time_point start = Clock::now();
    const Clock::time_point term_at = start + after(grace_seconds / 2);
    const Clock::time_point kill_at = start + after(grace_seconds);
    int status = 0;
    bool exited = false;
    bool termed = false;
    while (!(exited = child_.poll(&status))) {
      const Clock::time_point now = Clock::now();
      if (now >= kill_at) break;
      if (!termed && now >= term_at) {
        child_.kill_soft();
        termed = true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!exited) {
      child_.kill_hard();
      child_.wait();
    }
  }
  state_ = State::kDead;
}

}  // namespace cicmon::dist
