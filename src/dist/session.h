// Persistent worker sessions: the protocol and both ends of the pipe.
//
// PR 4's orchestrator spawned one `cicmon <sweep> --shard I/N` process per
// work item, so every item paid a process start-up and — for campaigns —
// a full golden run before doing any monitored work. A persistent session
// amortises both: the orchestrator spawns `cicmon worker <sweep> ...` once
// per worker slot, the worker derives its SweepSpec (golden run included)
// once, and shard assignments then stream over the worker's stdin with
// completed-artifact acks coming back over its stdout.
//
// The conversation, as length/checksum-framed JSON records (support/wire.h):
//
//   worker  -> orchestrator   hello    {protocol, sweep, cells, params}
//   orchestrator -> worker    assign   {shard, shard_count, out, force}
//   worker  -> orchestrator   done     {shard, shard_count, out, reused}
//                         or  error    {shard, shard_count, message}
//   orchestrator -> worker    shutdown {}        (or just EOF on stdin)
//
// The hello is the handshake: the orchestrator checks the protocol version
// AND that the worker derived the exact same sweep identity (name, cell
// count, every parameter) it did — a worker built from skewed flags or a
// different binary fails here, before any shard is wasted on it. The
// artifact on disk stays the real output: a done ack only tells the
// orchestrator *when* to validate the artifact with the same merge-time
// checks the exec path uses. Trust nothing framed: any malformed frame,
// unexpected message, EOF mid-record, or deadline overrun kills the whole
// session, because after a protocol violation there is no way to know what
// the worker actually did — the in-flight shard is re-enqueued through the
// ordinary retry budget and a fresh session takes the slot.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/work_queue.h"
#include "exp/sweep.h"
#include "support/subprocess.h"
#include "support/wire.h"

namespace cicmon::dist {

// Message-content version, carried in the hello record. Bumped when record
// semantics change incompatibly; the framing has its own version token
// (support::kWireMagic).
inline constexpr std::uint64_t kSessionProtocolVersion = 1;

// One decoded protocol record. Which fields are meaningful depends on type.
struct SessionMessage {
  enum class Type : std::uint8_t { kHello, kAssign, kDone, kError, kShutdown };

  Type type = Type::kShutdown;
  // hello
  std::uint64_t protocol = 0;
  std::string sweep;
  exp::SweepParams params;
  std::uint64_t cells = 0;
  // assign / done / error
  exp::Shard shard;
  std::string artifact_path;  // assign / done
  bool force = false;         // assign
  bool reused = false;        // done
  std::string message;        // error
};

// Record encoders (payloads; wrap with support::wire_frame to transmit).
std::string encode_hello(const exp::SweepSpec& spec);
std::string encode_assign(const exp::Shard& shard, const std::string& out, bool force);
std::string encode_done(const exp::Shard& shard, const std::string& out, bool reused);
std::string encode_session_error(const exp::Shard& shard, const std::string& message);
std::string encode_shutdown();

// Parses and structurally validates one record payload (known type, required
// fields, shard bounds). Throws CicError describing the violation.
SessionMessage decode_session_message(std::string_view payload);

// Empty when `hello` is a protocol-compatible worker serving exactly `spec`;
// otherwise the reason the handshake must be rejected.
std::string hello_mismatch(const SessionMessage& hello, const exp::SweepSpec& spec);

// --- worker side ---------------------------------------------------------

// Serves shard assignments for `spec` over this process's stdin/stdout until
// a shutdown record or EOF; returns the process exit code. stdout belongs to
// the protocol — diagnostics go to stderr. A CicError while running a shard
// is reported as an error record and the session keeps serving (the
// orchestrator owns the retry policy); a malformed inbound frame is fatal,
// mirroring the orchestrator's own trust rules.
//
// Fault-injection hook for tests and CI: when CICMON_WORKER_FLAKY=I/N and
// CICMON_WORKER_FLAKY_MARKER=DIR are set and DIR/IofN does not exist yet,
// the first assignment of shard I/N creates the marker, writes a
// deliberately truncated done record, and raises SIGKILL — a worker dying
// mid-record, the nastiest teardown path, made deterministic.
int serve_worker(const exp::SweepSpec& spec, unsigned jobs);

// --- orchestrator side -----------------------------------------------------

// One persistent worker process plus its protocol state, driven by the
// orchestrator's single-threaded poll loop. The session never decides retry
// policy: it reports events and hands back the in-flight item; the caller
// re-enqueues through the work queue's budget.
class WorkerSession {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State : std::uint8_t {
    kHandshaking,  // spawned, waiting for a valid hello
    kIdle,         // handshake done, no assignment outstanding
    kBusy,         // an assignment is in flight
    kDead,         // torn down; take_item() recovers any in-flight work
  };

  struct Event {
    enum class Kind : std::uint8_t {
      kNone,    // nothing new
      kReady,   // handshake completed; the session can take assignments
      kDone,    // the in-flight assignment acked an artifact (validate it!)
      kError,   // the worker reported a shard failure; session stays usable
      kFailed,  // the session died: reason set, in-flight item recoverable
    };
    Kind kind = Kind::kNone;
    bool reused = false;  // kDone: the worker resumed an existing artifact
    std::string reason;   // kError / kFailed
  };

  // Spawns the worker with piped stdin/stdout. Throws CicError when the
  // process cannot be started. `deadline` bounds the handshake;
  // `grace_seconds` is the SIGTERM-to-SIGKILL window every teardown uses
  // (see support::ChildProcess::terminate_gracefully).
  WorkerSession(const std::vector<std::string>& argv, Clock::time_point deadline,
                double grace_seconds);

  State state() const { return state_; }
  bool has_item() const { return has_item_; }
  const WorkItem& item() const { return item_; }
  // Recovers the in-flight item after kFailed/kDone/kError. Clears it.
  WorkItem take_item();

  // Sends an assignment (kIdle -> kBusy) with a completion deadline. The
  // item is consumed (moved from) only on success; on a failed pipe write
  // the session is dead, `item` is left intact, and the caller re-enqueues
  // it.
  bool assign(WorkItem& item, bool force, Clock::time_point deadline);

  // Drains the worker's stdout, advances the protocol, enforces deadlines.
  // At most one meaningful event is returned per call; call repeatedly from
  // the poll loop. `spec` is what hellos are validated against.
  Event pump(const exp::SweepSpec& spec, Clock::time_point now);

  // Polite shutdown of a live session: shutdown record + stdin EOF, then
  // SIGTERM-with-grace teardown. Safe in any state; reaps the process.
  void shutdown(double grace_seconds);

 private:
  Event fail(std::string reason);

  support::ChildProcess child_;
  support::FrameReader reader_;
  State state_ = State::kHandshaking;
  WorkItem item_;
  bool has_item_ = false;
  Clock::time_point deadline_;
  double grace_seconds_ = 0.0;
};

}  // namespace cicmon::dist
